// The transport seam: the same algorithm layer (dist/algorithms.h)
// must produce bit-identical collectives, identical traffic ledgers,
// and identical failure semantics whether the wire is the in-process
// mailbox hub or a real TCP mesh of SocketTransport endpoints — and
// DistTrainer::run_rank over sockets must reproduce DistTrainer::run
// loss-for-loss, byte for byte.
//
// This suite matches the ^dist_ sanitizer regex in scripts/check.sh,
// so everything here (including the SimClock charge hammer and the
// socket fault sweeps) also runs under TSan and ASan.

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/dist_trainer.h"
#include "data/dataset_spec.h"
#include "dist/comm.h"
#include "dist/transport_inprocess.h"
#include "dist/transport_socket.h"

namespace pgti::dist {
namespace {

/// Adversarial payload: mixed magnitudes so any deviation from the
/// strict rank-ordered accumulation shows up in the low bits.
std::vector<float> rank_payload(int rank, std::int64_t n) {
  std::mt19937 rng(static_cast<unsigned>(911 + 31 * rank));
  std::normal_distribution<float> normal(0.0f, 1.0f);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = normal(rng) * (i % 2 == 0 ? 1e6f : 1e-3f);
  }
  return v;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

/// One mixed collective script; returns rank 0's view of every result
/// so two harnesses can be compared bit for bit.
struct ScriptResult {
  std::vector<float> reduced;
  std::vector<float> averaged;
  std::vector<float> bcast;
  double scalar = 0.0;
  std::vector<double> gathered;
};

template <typename ClusterT>
ScriptResult run_script(ClusterT& cluster, std::int64_t n) {
  const int w = cluster.world();
  ScriptResult out;
  std::vector<ScriptResult> per_rank(static_cast<std::size_t>(w));
  cluster.run([&](Communicator& comm) {
    const int r = comm.rank();
    ScriptResult mine;
    mine.reduced = rank_payload(r, n);
    comm.allreduce_sum(mine.reduced.data(), n);
    mine.averaged = rank_payload(r + 100, n);
    comm.allreduce_mean(mine.averaged.data(), n);
    mine.bcast = r == 1 % w ? rank_payload(7, n)
                            : std::vector<float>(static_cast<std::size_t>(n), 0.0f);
    comm.broadcast(mine.bcast.data(), n, /*root=*/1 % w);
    mine.scalar = comm.allreduce_scalar_sum(0.1 + r);
    mine.gathered = comm.allgather(static_cast<double>(r) * 1.5 - 0.25);
    comm.barrier();
    per_rank[static_cast<std::size_t>(r)] = std::move(mine);
  });
  // Every rank must hold identical bits; return rank 0's.
  for (int r = 1; r < w; ++r) {
    const auto& mine = per_rank[static_cast<std::size_t>(r)];
    EXPECT_TRUE(bits_equal(mine.reduced, per_rank[0].reduced)) << "rank " << r;
    EXPECT_TRUE(bits_equal(mine.averaged, per_rank[0].averaged)) << "rank " << r;
    EXPECT_TRUE(bits_equal(mine.bcast, per_rank[0].bcast)) << "rank " << r;
    EXPECT_EQ(mine.scalar, per_rank[0].scalar) << "rank " << r;
    EXPECT_EQ(mine.gathered, per_rank[0].gathered) << "rank " << r;
  }
  out = std::move(per_rank[0]);
  return out;
}

// ------------------------------------------------- bit-identity

TEST(SocketCollectives, BitIdenticalToInProcessAcrossWorldsAndSizes) {
  // n sweeps past world (empty trailing chunks), equal, and large.
  for (int w : {1, 2, 3, 5}) {
    for (std::int64_t n : {std::int64_t{0}, std::int64_t{3}, std::int64_t{97},
                           std::int64_t{1024}}) {
      Cluster inproc(w);
      SocketCluster socket(w);
      const ScriptResult a = run_script(inproc, n);
      const ScriptResult b = run_script(socket, n);
      EXPECT_TRUE(bits_equal(a.reduced, b.reduced)) << "w=" << w << " n=" << n;
      EXPECT_TRUE(bits_equal(a.averaged, b.averaged)) << "w=" << w << " n=" << n;
      EXPECT_TRUE(bits_equal(a.bcast, b.bcast)) << "w=" << w << " n=" << n;
      EXPECT_EQ(a.scalar, b.scalar) << "w=" << w << " n=" << n;
      EXPECT_EQ(a.gathered, b.gathered) << "w=" << w << " n=" << n;
    }
  }
}

TEST(SocketCollectives, AllreduceMatchesFlatRankOrderedReference) {
  const int w = 4;
  const std::int64_t n = 257;  // non-divisible => ragged last chunk
  std::vector<float> expect(static_cast<std::size_t>(n), 0.0f);
  for (int r = 0; r < w; ++r) {
    const std::vector<float> p = rank_payload(r, n);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      expect[i] = r == 0 ? p[i] : expect[i] + p[i];
    }
  }
  SocketCluster cluster(w);
  cluster.run([&](Communicator& comm) {
    std::vector<float> mine = rank_payload(comm.rank(), n);
    comm.allreduce_sum(mine.data(), n);
    EXPECT_TRUE(bits_equal(mine, expect)) << "rank " << comm.rank();
  });
}

// ------------------------------------------------- stats parity

TEST(SocketCollectives, TrafficLedgerMatchesInProcessFieldForField) {
  const int w = 3;
  const std::int64_t n = 64;
  Cluster inproc(w);
  SocketCluster socket(w);
  run_script(inproc, n);
  run_script(socket, n);
  const CommStats a = inproc.stats();
  const CommStats b = socket.stats();
  EXPECT_EQ(a.allreduce_count, b.allreduce_count);
  EXPECT_EQ(a.allreduce_bytes, b.allreduce_bytes);
  EXPECT_EQ(a.broadcast_count, b.broadcast_count);
  EXPECT_EQ(a.broadcast_bytes, b.broadcast_bytes);
  EXPECT_EQ(a.allgather_count, b.allgather_count);
  EXPECT_EQ(a.allgather_bytes, b.allgather_bytes);
  EXPECT_EQ(a.barrier_count, b.barrier_count);
  EXPECT_EQ(a.barrier_bytes, b.barrier_bytes);
  // The new satellite fields count symmetrically with the old ones:
  // one allgather moves each rank's double to the other w-1 ranks; one
  // barrier moves 2(w-1) control frames of frame::kHeaderBytes.
  EXPECT_EQ(a.allgather_bytes,
            sizeof(double) * static_cast<std::uint64_t>(w) *
                static_cast<std::uint64_t>(w - 1));
  EXPECT_EQ(a.barrier_bytes, 2u * static_cast<std::uint64_t>(w - 1) *
                                 frame::kHeaderBytes);
  EXPECT_EQ(a.allgather_count, 1u);
  EXPECT_EQ(a.barrier_count, 1u);
}

TEST(DistResultSurface, CarriesAllgatherAndBarrierTraffic) {
  // DistTrainer allgathers the step count and barriers every epoch, so
  // a real run must surface nonzero satellite traffic through
  // DistResult::comm.
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = core::DistMode::kDistributedIndex;
  cfg.world = 2;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 1;
  cfg.max_val_batches = 1;
  cfg.seed = 7;
  const core::DistResult r = core::DistTrainer(cfg).run();
  EXPECT_GT(r.comm.allgather_count, 0u);
  EXPECT_EQ(r.comm.allgather_bytes,
            r.comm.allgather_count * sizeof(double) * 2u * 1u);
  EXPECT_GT(r.comm.barrier_count, 0u);
  EXPECT_EQ(r.comm.barrier_bytes,
            r.comm.barrier_count * 2u * frame::kHeaderBytes);
}

// ------------------------------------------------- failure semantics

/// Sweeps an injected fault over every sync point of one collective
/// script on the socket backend: rank w-1 throws at its nth sync
/// entry; no survivor may complete the collective, every survivor must
/// unwind (PeerFailureError, absorbed by the harness), and run() must
/// rethrow the ORIGINAL error — never hang a socket read.
template <typename Fn>
void sweep_socket_faults(int w, int sync_points, const char* what, Fn&& body) {
  for (int nth = 0; nth < sync_points; ++nth) {
    SocketCluster cluster(w);
    cluster.inject_fault_at_sync_point(w - 1, static_cast<std::uint64_t>(nth),
                                       "socket fault");
    try {
      cluster.run([&](Communicator& comm) {
        body(comm);
        if (comm.rank() == w - 1) {
          ADD_FAILURE() << what << ": faulted rank completed, w=" << w
                        << " nth=" << nth;
        }
      });
      FAIL() << what << ": expected fault to propagate, w=" << w
             << " nth=" << nth;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "socket fault") << what << " w=" << w
                                             << " nth=" << nth;
    }
  }
}

TEST(SocketFailure, PeersReleasedAtEverySyncPointOfEveryCollective) {
  const std::int64_t n = 96;
  for (int w : {2, 3, 4}) {
    sweep_socket_faults(w, Cluster::allreduce_sync_points(w), "allreduce",
                        [n](Communicator& comm) {
                          std::vector<float> v = rank_payload(comm.rank(), n);
                          comm.allreduce_sum(v.data(), n);
                        });
    sweep_socket_faults(w, Cluster::broadcast_sync_points(w), "broadcast",
                        [n](Communicator& comm) {
                          std::vector<float> v = rank_payload(0, n);
                          comm.broadcast(v.data(), n, /*root=*/0);
                        });
    sweep_socket_faults(w, alg::kScalarSumSyncPoints, "scalar_sum",
                        [](Communicator& comm) {
                          comm.allreduce_scalar_sum(1.0 + comm.rank());
                        });
    sweep_socket_faults(w, alg::kAllgatherSyncPoints, "allgather",
                        [](Communicator& comm) {
                          comm.allgather(static_cast<double>(comm.rank()));
                        });
    sweep_socket_faults(w, alg::kBarrierSyncPoints, "barrier",
                        [](Communicator& comm) { comm.barrier(); });
  }
}

TEST(SocketFailure, DeathBetweenCollectivesReleasesPeersAndRethrowsOriginal) {
  const int w = 4;
  SocketCluster cluster(w);
  try {
    cluster.run([&](Communicator& comm) {
      float v = 1.0f;
      comm.allreduce_sum(&v, 1);
      if (comm.rank() == 2) throw std::logic_error("oom in rank 2");
      for (int i = 0; i < 50; ++i) comm.allreduce_sum(&v, 1);
      ADD_FAILURE() << "survivor completed past a dead peer";
    });
    FAIL() << "expected the worker error to propagate";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "oom in rank 2");
  }
}

TEST(SocketFailure, InjectedFaultIsOneShotAcrossRuns) {
  SocketCluster cluster(3);
  cluster.inject_fault_at_sync_point(2, 0, "boom");
  EXPECT_THROW(cluster.run([](Communicator& comm) { comm.barrier(); }),
               std::runtime_error);
  // Disarmed by the failed run: a fresh mesh must complete cleanly.
  cluster.run([](Communicator& comm) {
    float v = static_cast<float>(comm.rank());
    comm.allreduce_sum(&v, 1);
    EXPECT_EQ(v, 3.0f);
  });
}

// ------------------------------------------------- framing contract

TEST(Framing, HeaderLayoutIsPinned) {
  EXPECT_EQ(frame::kHeaderBytes, 16u);
  frame::Header h{frame::kMagic, static_cast<std::uint16_t>(frame::Type::kData),
                  3, 42};
  char buf[16];
  std::memcpy(buf, &h, sizeof(h));
  std::uint32_t magic;
  std::memcpy(&magic, buf, 4);
  EXPECT_EQ(magic, frame::kMagic);
}

TEST(Framing, InProcessLengthMismatchIsProtocolError) {
  InProcessHub hub(2);
  InProcessTransport a(hub, 0);
  InProcessTransport b(hub, 1);
  const float payload = 1.0f;
  a.send(1, &payload, sizeof(payload));
  double wrong;
  EXPECT_THROW(b.recv(0, &wrong, sizeof(wrong)), TransportError);
}

TEST(Framing, SocketLengthMismatchIsProtocolError) {
  auto [listen_fd, port] = socket_listen("127.0.0.1", 0, 2);
  std::thread sender([&] {
    SocketOptions opt;
    opt.rank = 0;
    opt.world = 2;
    opt.listen_fd = listen_fd;
    SocketTransport t(opt);
    const float payload = 2.0f;
    t.send(1, &payload, sizeof(payload));
    // Keep the endpoint alive until the receiver read the bad frame.
    char ok = 0;
    t.recv(1, &ok, 1);
  });
  SocketOptions opt;
  opt.rank = 1;
  opt.world = 2;
  opt.port = port;
  SocketTransport t(opt);
  double wrong;
  EXPECT_THROW(t.recv(0, &wrong, sizeof(wrong)), TransportError);
  const char ok = 1;
  t.send(0, &ok, 1);
  sender.join();
}

// ------------------------------------------------- SimClock thread-safety

TEST(SimClockSafety, ConcurrentChargesFromRanksAndMainAreExact) {
  // charge_seconds is documented lock-free-atomic (runtime/timer.h);
  // this hammer runs under TSan via scripts/check.sh.  Increments are
  // dyadic rationals, so the expected total is exact in any order.
  const int w = 8;
  const int per_rank = 2000;
  Cluster cluster(w);
  std::thread outsider;
  cluster.run([&](Communicator& comm) {
    if (comm.rank() == 0) {
      // Main-thread-style charger racing the rank workers, as the
      // DistStore prefetch plumbing does.
      outsider = std::thread([&cluster] {
        for (int i = 0; i < per_rank; ++i) cluster.charge_seconds(0.25);
      });
    }
    comm.barrier();
    for (int i = 0; i < per_rank; ++i) comm.charge_seconds(0.5);
  });
  outsider.join();
  EXPECT_EQ(cluster.modeled_comm_seconds(),
            w * per_rank * 0.5 + per_rank * 0.25);
}

// ------------------------------------------------- trainer parity

core::DistConfig socket_cfg(core::DistMode mode, int world, int depth) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 2;
  cfg.max_val_batches = 1;
  cfg.seed = 53;
  cfg.prefetch_depth = depth;
  return cfg;
}

core::DistResult run_over_sockets(const core::DistConfig& cfg) {
  SocketCluster cluster(cfg.world);
  core::DistResult rank0;
  std::mutex mu;
  cluster.run([&](Communicator& comm) {
    core::DistTrainer trainer(cfg);
    core::DistResult r = trainer.run_rank(comm);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      rank0 = std::move(r);
    }
  });
  return rank0;
}

TEST(SocketTrainer, RunRankMatchesInProcessLossesBitForBit) {
  // The acceptance bar of the transport swap: the same job over a real
  // TCP mesh must reproduce every loss byte of the in-process path,
  // for both index strategies and prefetch depths {0, 2}.
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kGeneralizedIndex}) {
    for (int depth : {0, 2}) {
      const core::DistConfig cfg = socket_cfg(mode, /*world=*/2, depth);
      const core::DistResult inproc = core::DistTrainer(cfg).run();
      const core::DistResult socket = run_over_sockets(cfg);
      ASSERT_EQ(socket.curve.size(), inproc.curve.size());
      for (std::size_t e = 0; e < inproc.curve.size(); ++e) {
        EXPECT_EQ(std::memcmp(&socket.curve[e].train_mae,
                              &inproc.curve[e].train_mae, sizeof(double)),
                  0)
            << "mode=" << static_cast<int>(mode) << " depth=" << depth
            << " epoch=" << e;
        EXPECT_EQ(std::memcmp(&socket.curve[e].val_mae,
                              &inproc.curve[e].val_mae, sizeof(double)),
                  0)
            << "mode=" << static_cast<int>(mode) << " depth=" << depth
            << " epoch=" << e;
      }
      // Traffic is charged by rank 0 either way, so the ledgers agree.
      EXPECT_EQ(socket.comm.allreduce_count, inproc.comm.allreduce_count);
      EXPECT_EQ(socket.comm.allreduce_bytes, inproc.comm.allreduce_bytes);
      EXPECT_EQ(socket.comm.broadcast_bytes, inproc.comm.broadcast_bytes);
    }
  }
}

TEST(SocketTrainer, StrictOverlapCommThreadDrivesSocketCollectives) {
  // OverlappedGradBucket's per-rank comm thread must be able to issue
  // its ready-bucket all-reduces through a SocketTransport endpoint
  // (one collective thread per rank at a time — the drain/flush chain
  // orders the handoff) and still match the serial path bit for bit.
  core::DistConfig cfg =
      socket_cfg(core::DistMode::kDistributedIndex, /*world=*/2, /*depth=*/0);
  cfg.grad_overlap = core::GradOverlap::kOff;
  const core::DistResult off = run_over_sockets(cfg);
  cfg.grad_overlap = core::GradOverlap::kStrict;
  const core::DistResult strict = run_over_sockets(cfg);
  ASSERT_EQ(strict.curve.size(), off.curve.size());
  for (std::size_t e = 0; e < off.curve.size(); ++e) {
    EXPECT_EQ(strict.curve[e].train_mae, off.curve[e].train_mae) << e;
    EXPECT_EQ(strict.curve[e].val_mae, off.curve[e].val_mae) << e;
  }
}

TEST(SocketTrainer, StoreBackedModesAreRejected) {
  const core::DistConfig cfg = socket_cfg(core::DistMode::kBaselineDdp, 2, 0);
  EXPECT_THROW(run_over_sockets(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pgti::dist
