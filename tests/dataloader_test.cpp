#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/dataloader.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace pgti::data {
namespace {

DatasetSpec small_spec() {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  spec.batch_size = 16;
  return spec;
}

std::vector<std::int64_t> sorted(std::vector<std::int64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------------- samplers

TEST(Sampler, NoneIsSequentialChunk) {
  SamplerOptions opt{ShuffleMode::kNone, 1, 4, 1, 8};
  const auto idx = sample_epoch(0, 100, opt, 0);
  ASSERT_EQ(idx.size(), 25u);
  EXPECT_EQ(idx.front(), 25);
  EXPECT_EQ(idx.back(), 49);
}

TEST(Sampler, GlobalShuffleCoversRangeAcrossRanks) {
  std::vector<std::int64_t> all;
  for (int r = 0; r < 4; ++r) {
    SamplerOptions opt{ShuffleMode::kGlobal, r, 4, 7, 8};
    const auto part = sample_epoch(0, 103, opt, 3);
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), 103u);
  const auto s = sorted(all);
  for (std::int64_t i = 0; i < 103; ++i) EXPECT_EQ(s[static_cast<std::size_t>(i)], i);
}

TEST(Sampler, GlobalShuffleDisjointAcrossRanks) {
  std::set<std::int64_t> seen;
  for (int r = 0; r < 3; ++r) {
    SamplerOptions opt{ShuffleMode::kGlobal, r, 3, 5, 8};
    for (std::int64_t i : sample_epoch(10, 70, opt, 1)) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
    }
  }
}

TEST(Sampler, GlobalShuffleSameSeedSamePermutation) {
  SamplerOptions a{ShuffleMode::kGlobal, 0, 2, 9, 8};
  SamplerOptions b{ShuffleMode::kGlobal, 1, 2, 9, 8};
  // Concatenating both ranks' chunks reconstructs one permutation, and
  // it is identical when recomputed (communication-free agreement).
  auto a0 = sample_epoch(0, 50, a, 4);
  auto a1 = sample_epoch(0, 50, a, 4);
  EXPECT_EQ(a0, a1);
  auto b0 = sample_epoch(0, 50, b, 4);
  for (std::int64_t i : b0) {
    EXPECT_EQ(std::count(a0.begin(), a0.end(), i), 0) << "rank overlap";
  }
}

TEST(Sampler, GlobalShuffleChangesAcrossEpochs) {
  SamplerOptions opt{ShuffleMode::kGlobal, 0, 1, 11, 8};
  EXPECT_NE(sample_epoch(0, 64, opt, 0), sample_epoch(0, 64, opt, 1));
}

TEST(Sampler, LocalPartitionIsFixedAcrossEpochs) {
  SamplerOptions opt{ShuffleMode::kLocalPartition, 1, 4, 13, 8};
  const auto e0 = sorted(sample_epoch(0, 100, opt, 0));
  const auto e5 = sorted(sample_epoch(0, 100, opt, 5));
  EXPECT_EQ(e0, e5) << "local shuffling must keep the partition fixed";
  // But the order within the partition changes.
  EXPECT_NE(sample_epoch(0, 100, opt, 0), sample_epoch(0, 100, opt, 5));
}

TEST(Sampler, LocalPartitionDiffersByRank) {
  SamplerOptions a{ShuffleMode::kLocalPartition, 0, 2, 13, 8};
  SamplerOptions b{ShuffleMode::kLocalPartition, 1, 2, 13, 8};
  const auto pa = sorted(sample_epoch(0, 40, a, 0));
  const auto pb = sorted(sample_epoch(0, 40, b, 0));
  EXPECT_EQ(pa.back(), 19);
  EXPECT_EQ(pb.front(), 20);
}

TEST(Sampler, BatchLevelKeepsBatchContents) {
  SamplerOptions opt{ShuffleMode::kBatchLevel, 0, 1, 17, 8};
  const auto idx = sample_epoch(0, 64, opt, 2);
  ASSERT_EQ(idx.size(), 64u);
  // Every aligned group of 8 must be a contiguous run (fixed batch
  // contents), though batch order is shuffled.
  for (std::size_t b = 0; b < 8; ++b) {
    for (std::size_t i = 1; i < 8; ++i) {
      EXPECT_EQ(idx[b * 8 + i], idx[b * 8] + static_cast<std::int64_t>(i));
    }
  }
}

TEST(Sampler, BatchLevelShufflesBatchOrder) {
  SamplerOptions opt{ShuffleMode::kBatchLevel, 0, 1, 17, 8};
  const auto e0 = sample_epoch(0, 64, opt, 0);
  const auto e1 = sample_epoch(0, 64, opt, 1);
  EXPECT_NE(e0, e1);
  EXPECT_EQ(sorted(e0), sorted(e1));
}

TEST(Sampler, BadRankRejected) {
  SamplerOptions opt{ShuffleMode::kGlobal, 4, 4, 1, 8};
  EXPECT_THROW(sample_epoch(0, 10, opt, 0), std::invalid_argument);
}

TEST(Sampler, EmptyRange) {
  SamplerOptions opt{ShuffleMode::kGlobal, 0, 1, 1, 8};
  EXPECT_TRUE(sample_epoch(5, 5, opt, 0).empty());
}

// ------------------------------------------------------------- loader

class LoaderTest : public ::testing::Test {
 protected:
  LoaderTest() : spec_(small_spec()) {
    SensorNetwork net = network_for(spec_);
    raw_ = generate_signal(spec_, net, 55);
    ds_ = std::make_unique<IndexDataset>(raw_, spec_);
    source_ = std::make_unique<IndexSource>(*ds_);
  }

  DatasetSpec spec_;
  Tensor raw_;
  std::unique_ptr<IndexDataset> ds_;
  std::unique_ptr<IndexSource> source_;
};

TEST_F(LoaderTest, BatchShapes) {
  LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 8};
  DataLoader loader(*source_, opt, 0, 100);
  loader.start_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  EXPECT_EQ(b.x.shape(), (Shape{8, spec_.horizon, spec_.nodes, spec_.features}));
  EXPECT_EQ(b.y.shape(), (Shape{8, spec_.horizon, spec_.nodes, 1}));
  EXPECT_EQ(b.size, 8);
  EXPECT_EQ(b.indices.size(), 8u);
}

TEST_F(LoaderTest, DropLastSkipsPartialBatch) {
  LoaderOptions opt;
  opt.batch_size = 16;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 16};
  opt.drop_last = true;
  DataLoader loader(*source_, opt, 0, 40);
  loader.start_epoch(0);
  Batch b;
  int batches = 0;
  while (loader.next(b)) ++batches;
  EXPECT_EQ(batches, 2);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
}

TEST_F(LoaderTest, KeepLastWhenNotDropping) {
  LoaderOptions opt;
  opt.batch_size = 16;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 16};
  opt.drop_last = false;
  DataLoader loader(*source_, opt, 0, 40);
  loader.start_epoch(0);
  Batch b;
  std::int64_t total = 0;
  while (loader.next(b)) total += b.size;
  EXPECT_EQ(total, 40);
}

TEST_F(LoaderTest, BatchContentMatchesSnapshots) {
  LoaderOptions opt;
  opt.batch_size = 4;
  opt.sampler = SamplerOptions{ShuffleMode::kGlobal, 0, 1, 3, 4};
  DataLoader loader(*source_, opt, 0, 200);
  loader.start_epoch(1);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  for (std::int64_t i = 0; i < b.size; ++i) {
    const auto [x, y] = ds_->get(b.indices[static_cast<std::size_t>(i)]);
    EXPECT_EQ(ops::max_abs_diff(b.x.select(0, i).contiguous(), x.contiguous()), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(b.y.select(0, i).contiguous(),
                                y.slice(-1, 0, 1).contiguous()),
              0.0f);
  }
}

TEST_F(LoaderTest, HostDataDeviceComputeTransfersEveryBatch) {
  SimDevice& gpu = DeviceManager::instance().gpu(2);
  gpu.reset_stats();
  LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 8};
  opt.device = &gpu;
  DataLoader loader(*source_, opt, 0, 80);
  loader.start_epoch(0);
  Batch b;
  int batches = 0;
  while (loader.next(b)) {
    EXPECT_EQ(b.x.space(), gpu.space());
    ++batches;
  }
  // Two uploads per batch: x and y.
  EXPECT_EQ(gpu.stats().h2d_count, static_cast<std::uint64_t>(2 * batches));
}

TEST_F(LoaderTest, DeviceResidentDataTransfersNothing) {
  SimDevice& gpu = DeviceManager::instance().gpu(3);
  IndexDataset gpu_ds(raw_, spec_, gpu);
  IndexSource gpu_source(gpu_ds);
  gpu.reset_stats();  // discard the upfront upload
  LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 8};
  opt.device = &gpu;
  DataLoader loader(gpu_source, opt, 0, 80);
  loader.start_epoch(0);
  Batch b;
  while (loader.next(b)) {
    EXPECT_EQ(b.x.space(), gpu.space());
  }
  EXPECT_EQ(gpu.stats().h2d_count, 0u)
      << "GPU-index-batching must not cross PCIe during training";
}

TEST_F(LoaderTest, BuffersAreReusedAcrossBatches) {
  LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = SamplerOptions{ShuffleMode::kNone, 0, 1, 1, 8};
  DataLoader loader(*source_, opt, 0, 80);
  loader.start_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(b));
  const std::size_t after_first = MemoryTracker::instance().current(kHostSpace);
  while (loader.next(b)) {
  }
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), after_first)
      << "batch staging buffers must be reused, not reallocated";
}

TEST_F(LoaderTest, BadRangeRejected) {
  LoaderOptions opt;
  EXPECT_THROW(DataLoader(*source_, opt, -1, 10), std::out_of_range);
  EXPECT_THROW(DataLoader(*source_, opt, 0, source_->num_snapshots() + 1),
               std::out_of_range);
}

TEST_F(LoaderTest, SamplesPerEpochSplitsEvenly) {
  LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = SamplerOptions{ShuffleMode::kGlobal, 2, 4, 1, 8};
  DataLoader loader(*source_, opt, 0, 103);
  EXPECT_EQ(loader.samples_per_epoch(), 26);  // ceil(103/4) chunking
}

}  // namespace
}  // namespace pgti::data
