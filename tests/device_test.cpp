#include <gtest/gtest.h>

#include "device/device.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

TEST(PcieModel, TransferTimeHasLatencyFloor) {
  PcieModel model;
  EXPECT_GE(model.transfer_seconds(0), model.latency_s);
  EXPECT_GT(model.transfer_seconds(1 << 30), model.transfer_seconds(1 << 20));
}

TEST(PcieModel, BandwidthTermDominatesLargeTransfers) {
  PcieModel model;
  const double t = model.transfer_seconds(16'000'000'000LL);
  EXPECT_NEAR(t, 1.0, 0.01);  // 16 GB at 16 GB/s
}

TEST(SimDevice, UploadMovesDataAndRecords) {
  SimDevice& gpu = DeviceManager::instance().gpu(4);
  gpu.reset_stats();
  Tensor host = Tensor::arange(100);
  Tensor dev = gpu.upload(host);
  EXPECT_EQ(dev.space(), gpu.space());
  EXPECT_EQ(dev.at({42}), 42.0f);
  const TransferStats s = gpu.stats();
  EXPECT_EQ(s.h2d_count, 1u);
  EXPECT_EQ(s.h2d_bytes, 400u);
  EXPECT_GT(s.modeled_seconds, 0.0);
}

TEST(SimDevice, DownloadRoundTrip) {
  SimDevice& gpu = DeviceManager::instance().gpu(4);
  gpu.reset_stats();
  Tensor host = Tensor::arange(64);
  Tensor dev = gpu.upload(host);
  Tensor back = gpu.download(dev);
  EXPECT_EQ(back.space(), kHostSpace);
  EXPECT_EQ(ops::max_abs_diff(host, back), 0.0f);
  EXPECT_EQ(gpu.stats().d2h_count, 1u);
}

TEST(SimDevice, UploadIntoReusesBuffer) {
  SimDevice& gpu = DeviceManager::instance().gpu(4);
  Tensor dev = Tensor::zeros({32}, gpu.space());
  gpu.reset_stats();
  Tensor host = Tensor::arange(32);
  const std::size_t before = MemoryTracker::instance().current(gpu.space());
  gpu.upload_into(host, dev);
  EXPECT_EQ(MemoryTracker::instance().current(gpu.space()), before);
  EXPECT_EQ(dev.at({31}), 31.0f);
  EXPECT_EQ(gpu.stats().h2d_count, 1u);
}

TEST(SimDevice, CapacityEnforced) {
  SimDevice& gpu = DeviceManager::instance().gpu(5);
  gpu.set_capacity(256);
  EXPECT_THROW(Tensor::zeros({1000}, gpu.space()), OutOfMemoryError);
  EXPECT_NO_THROW(Tensor::zeros({16}, gpu.space()));
  gpu.set_capacity(0);
}

TEST(SimDevice, DeviceMemoryTrackedSeparatelyFromHost) {
  SimDevice& gpu = DeviceManager::instance().gpu(4);
  const std::size_t host_before = MemoryTracker::instance().current(kHostSpace);
  const std::size_t dev_before = MemoryTracker::instance().current(gpu.space());
  {
    Tensor dev = Tensor::zeros({1024}, gpu.space());
    EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), host_before);
    EXPECT_EQ(MemoryTracker::instance().current(gpu.space()), dev_before + 4096);
  }
  EXPECT_EQ(MemoryTracker::instance().current(gpu.space()), dev_before);
}

TEST(DeviceManager, DevicesArePersistentSingletons) {
  SimDevice& a = DeviceManager::instance().gpu(6);
  SimDevice& b = DeviceManager::instance().gpu(6);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "gpu6");
  EXPECT_GE(DeviceManager::instance().device_count(), 7);
}

TEST(SimDevice, ModeledSecondsAccumulate) {
  SimDevice& gpu = DeviceManager::instance().gpu(4);
  gpu.reset_stats();
  Tensor host = Tensor::zeros({1 << 20});
  gpu.upload(host);
  const double one = gpu.stats().modeled_seconds;
  gpu.upload(host);
  EXPECT_NEAR(gpu.stats().modeled_seconds, 2.0 * one, 1e-12);
}

TEST(SimDevice, CustomPcieModel) {
  SimDevice& gpu = DeviceManager::instance().gpu(7);
  PcieModel slow;
  slow.bandwidth_bytes_per_s = 1.0e6;
  slow.latency_s = 0.0;
  gpu.set_pcie(slow);
  gpu.reset_stats();
  gpu.upload(Tensor::zeros({250'000}));  // 1 MB at 1 MB/s
  EXPECT_NEAR(gpu.stats().modeled_seconds, 1.0, 1e-9);
}

}  // namespace
}  // namespace pgti
