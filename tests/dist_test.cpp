#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "autograd/ops.h"
#include "data/dataset_spec.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "dist/cluster_model.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "dist/dist_store.h"
#include "tensor/tensor_ops.h"

namespace pgti::dist {
namespace {

// --------------------------------------------------------------- comm

TEST(Cluster, RunsEveryRankOnce) {
  Cluster cluster(4);
  std::atomic<int> count{0};
  std::array<std::atomic<bool>, 4> seen{};
  cluster.run([&](Communicator& comm) {
    seen[static_cast<std::size_t>(comm.rank())] = true;
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
  for (const auto& s : seen) EXPECT_TRUE(s.load());
}

TEST(Cluster, PropagatesWorkerException) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
                 if (comm.rank() == 0) return;
                 throw std::runtime_error("worker died");
               }),
               std::runtime_error);
}

TEST(Cluster, WorkerDeathDoesNotDeadlockPeersInCollectives) {
  // Rank 2 dies before the collective; the others must unwind via
  // PeerFailureError instead of blocking at the barrier forever, and
  // run() must rethrow the ORIGINAL error.
  Cluster cluster(4);
  try {
    cluster.run([](Communicator& comm) {
      if (comm.rank() == 2) throw std::runtime_error("oom in worker 2");
      float v = 1.0f;
      for (int i = 0; i < 100; ++i) comm.allreduce_sum(&v, 1);
    });
    FAIL() << "expected the worker error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "oom in worker 2");
  }
}

TEST(Cluster, MidTrainingDeathUnwindsCleanly) {
  Cluster cluster(3);
  EXPECT_THROW(cluster.run([](Communicator& comm) {
                 float v = static_cast<float>(comm.rank());
                 for (int step = 0;; ++step) {
                   comm.allreduce_sum(&v, 1);
                   if (step == 5 && comm.rank() == 1) {
                     throw std::runtime_error("died at step 5");
                   }
                 }
               }),
               std::runtime_error);
}

class AllreduceWorlds : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceWorlds, SumsAcrossRanks) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(64);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(comm.rank() + 1);
    }
    comm.allreduce_sum(data.data(), static_cast<std::int64_t>(data.size()));
    const float expected = static_cast<float>(w * (w + 1) / 2);
    for (float v : data) ASSERT_EQ(v, expected);
  });
}

TEST_P(AllreduceWorlds, MeanDividesByWorld) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(8, static_cast<float>(comm.rank()));
    comm.allreduce_mean(data.data(), 8);
    const float expected = static_cast<float>(w - 1) / 2.0f;
    for (float v : data) ASSERT_NEAR(v, expected, 1e-6f);
  });
}

INSTANTIATE_TEST_SUITE_P(Worlds, AllreduceWorlds, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Comm, AllreduceBitIdenticalAcrossRanks) {
  // Rank-ordered accumulation: every rank must see the same bits even
  // for values where float addition order matters.
  Cluster cluster(4);
  std::array<std::vector<float>, 4> results;
  cluster.run([&](Communicator& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 1);
    std::vector<float> data(128);
    for (auto& v : data) v = static_cast<float>(rng.normal()) * 1e4f;
    comm.allreduce_sum(data.data(), 128);
    results[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (int r = 1; r < 4; ++r) {
    ASSERT_EQ(results[0], results[static_cast<std::size_t>(r)]);
  }
}

TEST(Comm, ScalarSum) {
  Cluster cluster(5);
  cluster.run([&](Communicator& comm) {
    const double total = comm.allreduce_scalar_sum(static_cast<double>(comm.rank()));
    ASSERT_DOUBLE_EQ(total, 10.0);
  });
}

TEST(Comm, BroadcastFromRoot) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(16, comm.rank() == 2 ? 7.5f : 0.0f);
    comm.broadcast(data.data(), 16, /*root=*/2);
    for (float v : data) ASSERT_EQ(v, 7.5f);
  });
}

TEST(Comm, TreeBroadcastFromEveryRootEveryWorld) {
  // The prefix-doubling delivery must reach every rank from any root,
  // including non-power-of-two worlds, and leave root's exact bits.
  for (int w : {1, 2, 3, 5, 8}) {
    for (int root = 0; root < w; ++root) {
      Cluster cluster(w);
      cluster.run([&](Communicator& comm) {
        std::vector<float> data(33, static_cast<float>(comm.rank()) - 100.0f);
        if (comm.rank() == root) {
          for (std::size_t i = 0; i < data.size(); ++i) {
            data[i] = static_cast<float>(root * 1000 + static_cast<int>(i));
          }
        }
        comm.broadcast(data.data(), 33, root);
        for (std::size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], static_cast<float>(root * 1000 + static_cast<int>(i)))
              << "w=" << w << " root=" << root << " rank=" << comm.rank();
        }
      });
    }
  }
}

TEST(Comm, BroadcastBytesCountPayloadTimesReceivers) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(16, comm.rank() == 1 ? 3.0f : 0.0f);
    comm.broadcast(data.data(), 16, /*root=*/1);
  });
  const CommStats stats = cluster.stats();
  EXPECT_EQ(stats.broadcast_count, 1u);
  EXPECT_EQ(stats.broadcast_bytes, 16u * sizeof(float) * 3u);
}

TEST(Comm, BroadcastReleasesPeersAtEveryTreeStage) {
  // Mirrors TreeFailure.PeersReleasedAtEveryTreeDepth for the
  // broadcast tree: the last rank dies upon entering sync point
  // `depth` of a broadcast; peers must unwind via PeerFailureError at
  // every delivery stage and run() must rethrow the original error.
  for (int w : {2, 3, 5, 8}) {
    const int points = Cluster::broadcast_sync_points(w);
    ASSERT_GE(points, 2) << "w=" << w;
    for (int depth = 0; depth < points; ++depth) {
      Cluster cluster(w);
      cluster.inject_fault_at_sync_point(w - 1, static_cast<std::uint64_t>(depth),
                                         "broadcast fault");
      try {
        cluster.run([&](Communicator& comm) {
          std::vector<float> data(8, static_cast<float>(comm.rank()));
          comm.broadcast(data.data(), 8, /*root=*/0);
          ADD_FAILURE() << "rank " << comm.rank()
                        << " completed the broadcast past a dead peer (w=" << w
                        << ", depth=" << depth << ")";
        });
        FAIL() << "expected the original error (w=" << w << ", depth=" << depth
               << ")";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "broadcast fault") << "w=" << w << ", depth=" << depth;
      }
    }
  }
}

TEST(Comm, AllgatherOrdersByRank) {
  Cluster cluster(3);
  cluster.run([&](Communicator& comm) {
    const auto all = comm.allgather(static_cast<double>(comm.rank() * 10));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 10.0);
  });
}

TEST(Comm, StatsAndModeledTime) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data(256, 1.0f);
    comm.allreduce_sum(data.data(), 256);
    comm.allreduce_sum(data.data(), 256);
  });
  const CommStats stats = cluster.stats();
  EXPECT_EQ(stats.allreduce_count, 2u);
  EXPECT_EQ(stats.allreduce_bytes, 2u * 256 * 4 * 4);
  EXPECT_GT(cluster.modeled_comm_seconds(), 0.0);
}

TEST(Comm, ModeledTimeIsPerRun) {
  // Regression: sim_clock_ used to accumulate across run() calls, so a
  // reused Cluster reported the SUM of all runs' modeled comm time.
  Cluster cluster(4);
  const auto job = [](Communicator& comm) {
    std::vector<float> data(256, 1.0f);
    comm.allreduce_sum(data.data(), 256);
  };
  cluster.run(job);
  const double first = cluster.modeled_comm_seconds();
  EXPECT_GT(first, 0.0);
  cluster.run(job);
  EXPECT_DOUBLE_EQ(cluster.modeled_comm_seconds(), first)
      << "back-to-back runs must report independent modeled times";
  // Traffic stats, by contrast, do accumulate (documented behaviour).
  EXPECT_EQ(cluster.stats().allreduce_count, 2u);
}

TEST(Comm, TreeScheduleShape) {
  EXPECT_EQ(Cluster::allreduce_stages(1), 1);
  EXPECT_EQ(Cluster::allreduce_stages(2), 1);
  EXPECT_EQ(Cluster::allreduce_stages(3), 2);
  EXPECT_EQ(Cluster::allreduce_stages(4), 2);
  EXPECT_EQ(Cluster::allreduce_stages(5), 3);
  EXPECT_EQ(Cluster::allreduce_stages(8), 3);
  EXPECT_EQ(Cluster::allreduce_stages(9), 4);
  EXPECT_EQ(Cluster::allreduce_sync_points(8), Cluster::allreduce_stages(8) + 3);
}

TEST(Comm, InjectedFaultIsOneShotAcrossRuns) {
  // A reused Cluster must recover after a fault-injection pass: run()
  // disarms the injection on completion.
  Cluster cluster(3);
  cluster.inject_fault_at_sync_point(2, 0, "one-shot fault");
  const auto job = [](Communicator& comm) {
    float v = static_cast<float>(comm.rank());
    comm.allreduce_sum(&v, 1);
  };
  EXPECT_THROW(cluster.run(job), std::runtime_error);
  cluster.run(job);  // recovery pass: must complete cleanly
}

TEST(Comm, RepeatedCollectivesStressBarrier) {
  Cluster cluster(8);
  cluster.run([&](Communicator& comm) {
    float v = static_cast<float>(comm.rank());
    for (int i = 0; i < 200; ++i) {
      float x = v;
      comm.allreduce_sum(&x, 1);
      ASSERT_EQ(x, 28.0f);  // 0+..+7
      comm.barrier();
    }
  });
}

// -------------------------------------------------------------- network model

TEST(NetworkModel, AllreduceGrowsWithBytes) {
  NetworkModel net;
  EXPECT_LT(net.allreduce_seconds(1024, 4), net.allreduce_seconds(1 << 20, 4));
}

TEST(NetworkModel, SingleWorkerIsFree) {
  NetworkModel net;
  EXPECT_EQ(net.allreduce_seconds(1 << 20, 1), 0.0);
}

TEST(NetworkModel, InterNodeSlowerThanIntra) {
  NetworkModel net;
  EXPECT_GT(net.allreduce_seconds(1 << 24, 8),   // crosses nodes
            net.allreduce_seconds(1 << 24, 4));  // single node
}

TEST(NetworkModel, RingAsymptoteBoundedBy2x) {
  // Ring all-reduce moves at most 2x the buffer regardless of W.
  NetworkModel net;
  net.latency_s = 0.0;
  const double t128 = net.allreduce_seconds(1 << 20, 128);
  const double bound = 2.0 * static_cast<double>(1 << 20) / net.effective_bw(128);
  EXPECT_LE(t128, bound * 1.001);
}

// ------------------------------------------------------------------- store

TEST(DistStore, ContiguousOwnership) {
  DistStore store(100, 1000, 4, NetworkModel{});
  EXPECT_EQ(store.owner(0), 0);
  EXPECT_EQ(store.owner(24), 0);
  EXPECT_EQ(store.owner(25), 1);
  EXPECT_EQ(store.owner(99), 3);
  EXPECT_THROW(store.owner(100), std::out_of_range);
  const auto [lo, hi] = store.partition(2);
  EXPECT_EQ(lo, 50);
  EXPECT_EQ(hi, 75);
}

TEST(DistStore, LocalFetchesAreFree) {
  DistStore store(100, 1000, 4, NetworkModel{});
  const double s = store.fetch_batch(0, {0, 1, 2, 24});
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(store.stats().remote_snapshots, 0u);
  EXPECT_EQ(store.stats().local_snapshots, 4u);
}

TEST(DistStore, RemoteFetchesCountBytes) {
  DistStore store(100, 1000, 4, NetworkModel{});
  store.fetch_batch(0, {30, 31, 60});
  const StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 3u);
  EXPECT_EQ(st.remote_bytes, 3000u);
  EXPECT_GT(st.modeled_seconds, 0.0);
}

TEST(DistStore, ConsolidatedRequestsOnePerOwner) {
  DistStore store(100, 1000, 4, NetworkModel{}, /*consolidate=*/true);
  store.fetch_batch(0, {30, 31, 32, 60, 61});  // owners 1 and 2
  EXPECT_EQ(store.stats().request_messages, 2u);
}

TEST(DistStore, PerItemRequestsWithoutConsolidation) {
  DistStore store(100, 1000, 4, NetworkModel{}, /*consolidate=*/false);
  store.fetch_batch(0, {30, 31, 32, 60, 61});
  EXPECT_EQ(store.stats().request_messages, 5u);
}

TEST(DistStore, ConsolidationIsCheaper) {
  // The paper's baseline optimization: batch requests beat per-item.
  NetworkModel net;
  DistStore batched(10000, 100000, 8, net, true);
  DistStore per_item(10000, 100000, 8, net, false);
  std::vector<std::int64_t> batch;
  for (std::int64_t i = 5000; i < 5064; ++i) batch.push_back(i);
  const double t_batched = batched.fetch_batch(0, batch);
  const double t_item = per_item.fetch_batch(0, batch);
  EXPECT_LT(t_batched, t_item);
}

// ------------------------------------------------- store (materialized)

data::StandardDataset tiny_dataset() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, /*seed=*/11);
  return data::StandardDataset(raw, spec);
}

TEST(DistStoreMaterialized, LocalFetchIsZeroCopyShardView) {
  data::StandardDataset ds = tiny_dataset();
  DistStore store(ds, 4, NetworkModel{});
  ASSERT_TRUE(store.materialized());
  const auto [lo, hi] = store.partition(1);
  ASSERT_LT(lo, hi);
  const auto [x, y] = store.fetch(/*rank=*/1, lo);
  EXPECT_TRUE(x.shares_storage_with(store.shard_x(1)));
  EXPECT_TRUE(y.shares_storage_with(store.shard_y(1)));
  const StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 0u);
  EXPECT_EQ(st.bytes_copied, 0u);
}

TEST(DistStoreMaterialized, RemoteFetchMovesRealBytesBitExactly) {
  data::StandardDataset ds = tiny_dataset();
  DistStore store(ds, 4, NetworkModel{});
  const auto [lo1, hi1] = store.partition(1);
  std::vector<std::int64_t> batch{lo1, lo1 + 1, hi1 - 1};
  const double seconds = store.fetch_batch(/*rank=*/0, batch);
  EXPECT_GT(seconds, 0.0);

  const StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 3u);
  EXPECT_EQ(st.cache_hits, 0u);
  // The ledger's modeled bytes are now backed by bytes that really
  // moved into rank 0's cache.
  EXPECT_GT(st.bytes_copied, 0u);
  EXPECT_EQ(st.bytes_copied, st.remote_bytes);
  EXPECT_EQ(st.remote_bytes,
            3u * static_cast<std::uint64_t>(store.snapshot_bytes()));

  // The copies are bit-identical to the owner's data but do NOT alias
  // it — the bytes crossed the simulated network.
  for (std::int64_t id : batch) {
    const auto [x, y] = store.fetch(/*rank=*/0, id);
    const auto [ox, oy] = store.fetch(/*rank=*/1, id);
    EXPECT_FALSE(x.shares_storage_with(ox));
    EXPECT_EQ(ops::max_abs_diff(x, ox.contiguous()), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(y, oy.contiguous()), 0.0f);
  }
}

TEST(DistStoreMaterialized, CacheHitsAbsorbRepeatedFetches) {
  data::StandardDataset ds = tiny_dataset();
  DistStore store(ds, 4, NetworkModel{});
  const auto [lo1, hi1] = store.partition(1);
  (void)hi1;
  std::vector<std::int64_t> batch{lo1, lo1 + 1};
  store.fetch_batch(0, batch);
  const std::uint64_t copied_once = store.stats().bytes_copied;
  store.fetch_batch(0, batch);  // second epoch touching the same ids
  const StoreStats st = store.stats();
  EXPECT_EQ(st.bytes_copied, copied_once) << "cached snapshots must not re-copy";
  EXPECT_EQ(st.cache_hits, 2u);
  // The model still prices every remote access; the invariant splits
  // it into physically-copied and cache-absorbed bytes exactly.
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
}

TEST(DistStoreMaterialized, LruEvictsLeastRecentlyUsed) {
  data::StandardDataset ds = tiny_dataset();
  DistStore store(ds, 4, NetworkModel{}, /*consolidate=*/true,
                  /*cache_snapshots_per_rank=*/2);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  // The loader protocol: each announced snapshot is consumed by one
  // fetch() (announced-but-unconsumed snapshots are pinned and exempt
  // from eviction, so capacity only bites once batches are consumed).
  const auto touch = [&](std::int64_t id) {
    store.fetch_batch(0, {id});
    store.fetch(0, id);
  };
  touch(lo1);          // cache: {lo1}
  touch(lo1 + 1);      // cache: {lo1+1, lo1}
  touch(lo1 + 2);      // evicts lo1
  EXPECT_EQ(store.stats().cache_evictions, 1u);
  touch(lo1 + 1);      // still cached -> hit
  EXPECT_EQ(store.stats().cache_hits, 1u);
  touch(lo1);          // evicted -> copied again
  const StoreStats st = store.stats();
  EXPECT_EQ(st.cache_evictions, 2u);
  EXPECT_EQ(st.bytes_copied,
            4u * static_cast<std::uint64_t>(store.snapshot_bytes()));
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
}

TEST(DistStoreMaterialized, UnannouncedRemoteGetFaultsInAsOwnRequest) {
  data::StandardDataset ds = tiny_dataset();
  DistStore store(ds, 4, NetworkModel{});
  const auto [lo2, hi2] = store.partition(2);
  (void)hi2;
  const auto [x, y] = store.fetch(/*rank=*/0, lo2);  // no prefetch_batch first
  EXPECT_GT(x.numel(), 0);
  EXPECT_GT(y.numel(), 0);
  const StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 1u);
  EXPECT_EQ(st.request_messages, 1u);
  EXPECT_EQ(st.bytes_copied, st.remote_bytes);
  EXPECT_GT(store.drain_modeled_seconds(0), 0.0);
  EXPECT_EQ(store.drain_modeled_seconds(0), 0.0) << "drain must reset";
}

TEST(DistStoreMaterialized, LedgerOnlyStoreRefusesDataAccess) {
  DistStore store(100, 1000, 4, NetworkModel{});
  EXPECT_FALSE(store.materialized());
  EXPECT_THROW(store.fetch(0, 30), std::logic_error);
  EXPECT_THROW(store.shard_x(0), std::logic_error);
  EXPECT_THROW(store.scaler(), std::logic_error);
}

// ---------------------------------------------------------------- DDP bucket

TEST(GradBucket, AveragesGradientsAcrossRanks) {
  Cluster cluster(4);
  cluster.run([&](Communicator& comm) {
    Variable p(Tensor::zeros({8}), true);
    p.grad().fill_(static_cast<float>(comm.rank()));
    std::vector<Variable> params{p};
    GradBucket bucket(params);
    bucket.allreduce_average(comm, params);
    for (std::int64_t i = 0; i < 8; ++i) ASSERT_NEAR(p.grad().at({i}), 1.5f, 1e-6f);
  });
}

TEST(GradBucket, HandlesMissingGrads) {
  Cluster cluster(2);
  cluster.run([&](Communicator& comm) {
    Variable with(Tensor::zeros({4}), true);
    Variable without(Tensor::zeros({4}), true);
    with.grad().fill_(2.0f);
    std::vector<Variable> params{with, without};
    GradBucket bucket(params);
    EXPECT_EQ(bucket.numel(), 8);
    bucket.allreduce_average(comm, params);
    ASSERT_NEAR(with.grad().at({0}), 2.0f, 1e-6f);
    ASSERT_EQ(without.grad().at({0}), 0.0f);
  });
}

TEST(Ddp, DistributedGradEqualsLargeBatchGrad) {
  // The DDP invariant: averaging per-worker gradients over disjoint
  // half-batches equals the gradient of the full batch.
  Rng rng(77);
  Tensor x_full = Tensor::randn({8, 4}, rng);
  Tensor target = Tensor::randn({8, 2}, rng);
  Tensor w_init = Tensor::randn({4, 2}, rng);

  // Reference: single worker, full batch.
  Variable w_ref(w_init.clone(), true);
  ag::mse_loss(ag::matmul(Variable(x_full, false), w_ref), target).backward();

  // Two workers, half batches each.
  Tensor dist_grad;
  Cluster cluster(2);
  cluster.run([&](Communicator& comm) {
    const std::int64_t lo = comm.rank() * 4;
    Variable w(w_init.clone(), true);
    Tensor xb = x_full.slice(0, lo, 4).clone();
    Tensor yb = target.slice(0, lo, 4).clone();
    ag::mse_loss(ag::matmul(Variable(xb, false), w), yb).backward();
    std::vector<Variable> params{w};
    allreduce_gradients(comm, params);
    if (comm.rank() == 0) dist_grad = w.grad().clone();
  });
  EXPECT_LT(ops::max_abs_diff(dist_grad, w_ref.grad()), 1e-5f);
}

TEST(Ddp, BroadcastParametersSynchronizesReplicas) {
  Cluster cluster(3);
  cluster.run([&](Communicator& comm) {
    Rng rng(static_cast<std::uint64_t>(comm.rank() + 100));
    Variable p(Tensor::randn({16}, rng), true);
    std::vector<Variable> params{p};
    broadcast_parameters(comm, params, 0);
    const double sum = ops::sum(p.value());
    const auto all = comm.allgather(sum);
    for (double v : all) ASSERT_DOUBLE_EQ(v, all[0]);
  });
}

// ----------------------------------------------------------- cluster model

ClusterModelParams pems_like_params() {
  ClusterModelParams p;
  p.train_samples = 73560;
  p.batch_per_worker = 64;
  p.model_parameters = 250000;
  p.sample_bytes = 2 * 12 * 11126 * 2 * 4;
  p.dataset_bytes = static_cast<std::int64_t>(105120) * 11126 * 2 * 4;
  p.epochs = 30;
  p.t_sample = 333.58 * 60.0 / 30.0 / 73560.0;  // Table 4 calibration
  return p;
}

TEST(ClusterModel, DistIndexHasZeroDataComm) {
  ClusterModel model(pems_like_params());
  const ScalingPoint pt = model.evaluate(32, DistStrategy::kDistributedIndex);
  EXPECT_EQ(pt.data_comm_s, 0.0);
  EXPECT_GT(pt.compute_s, 0.0);
}

TEST(ClusterModel, ComputeScalesInverselyWithWorld) {
  ClusterModel model(pems_like_params());
  const double c4 = model.evaluate(4, DistStrategy::kDistributedIndex).compute_s;
  const double c64 = model.evaluate(64, DistStrategy::kDistributedIndex).compute_s;
  EXPECT_NEAR(c4 / c64, 16.0, 1.0);
}

TEST(ClusterModel, DdpSlowerThanDistIndexEverywhere) {
  ClusterModel model(pems_like_params());
  for (int w : {4, 8, 16, 32, 64, 128}) {
    const double ddp = model.evaluate(w, DistStrategy::kBaselineDdp).total_s();
    const double idx = model.evaluate(w, DistStrategy::kDistributedIndex).total_s();
    EXPECT_GT(ddp, idx) << "w=" << w;
  }
}

TEST(ClusterModel, SpeedupGapWidensWithScale) {
  // Paper: 2.16x at 4 GPUs -> 11.78x at 128 GPUs.
  ClusterModel model(pems_like_params());
  const double r4 = model.evaluate(4, DistStrategy::kBaselineDdp).total_s() /
                    model.evaluate(4, DistStrategy::kDistributedIndex).total_s();
  const double r128 = model.evaluate(128, DistStrategy::kBaselineDdp).total_s() /
                      model.evaluate(128, DistStrategy::kDistributedIndex).total_s();
  EXPECT_GT(r128, r4);
}

TEST(ClusterModel, GeneralizedIndexMovesLessDataThanDdp) {
  ClusterModel model(pems_like_params());
  for (int w : {4, 32, 128}) {
    EXPECT_LT(model.evaluate(w, DistStrategy::kGeneralizedIndex).data_comm_s,
              model.evaluate(w, DistStrategy::kBaselineDdpBatchShuffle).data_comm_s)
        << "w=" << w;
  }
}

TEST(ClusterModel, IndexPreprocessConstantDdpGrows) {
  ClusterModel model(pems_like_params());
  EXPECT_EQ(model.evaluate(4, DistStrategy::kDistributedIndex).preprocess_s,
            model.evaluate(128, DistStrategy::kDistributedIndex).preprocess_s);
  EXPECT_GT(model.evaluate(128, DistStrategy::kBaselineDdp).preprocess_s,
            model.evaluate(4, DistStrategy::kBaselineDdp).preprocess_s);
}

TEST(ClusterModel, StrongScalingSublinearAtHighWorld) {
  // Fixed costs erode efficiency at 128 GPUs (paper §5.3.1).
  ClusterModel model(pems_like_params());
  const double t1 = model.evaluate(1, DistStrategy::kDistributedIndex).total_s();
  const double t128 = model.evaluate(128, DistStrategy::kDistributedIndex).total_s();
  const double speedup = t1 / t128;
  EXPECT_GT(speedup, 40.0);
  EXPECT_LT(speedup, 128.0);
}

}  // namespace
}  // namespace pgti::dist
