#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/memory_tracker.h"
#include "runtime/rng.h"
#include "runtime/thread_pool.h"
#include "runtime/timer.h"

namespace pgti {
namespace {

// ---------------------------------------------------------------- memory

TEST(MemoryTracker, HostSpaceIsZero) {
  EXPECT_EQ(MemoryTracker::instance().register_space("host"), kHostSpace);
}

TEST(MemoryTracker, RegisterIsIdempotent) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId a = t.register_space("idempotent-space");
  const MemorySpaceId b = t.register_space("idempotent-space");
  EXPECT_EQ(a, b);
}

TEST(MemoryTracker, TracksCurrentAndPeak) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("peak-space");
  const std::size_t base = t.current(s);
  t.on_alloc(s, 1000);
  t.on_alloc(s, 500);
  EXPECT_EQ(t.current(s), base + 1500);
  t.on_free(s, 500);
  EXPECT_EQ(t.current(s), base + 1000);
  EXPECT_GE(t.peak(s), base + 1500);
  t.on_free(s, 1000);
}

TEST(MemoryTracker, ResetPeakDropsToCurrent) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("reset-peak-space");
  t.on_alloc(s, 4096);
  t.on_free(s, 4096);
  t.reset_peak(s);
  EXPECT_EQ(t.peak(s), t.current(s));
}

TEST(MemoryTracker, LimitEnforcedWithOom) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("limited-space");
  t.set_limit(s, 1024);
  t.on_alloc(s, 512);
  EXPECT_THROW(t.on_alloc(s, 1024), OutOfMemoryError);
  // A failed allocation must not change usage.
  EXPECT_EQ(t.current(s), 512u);
  t.on_free(s, 512);
  t.set_limit(s, 0);
}

TEST(MemoryTracker, OomCarriesDiagnostics) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("oom-diag-space");
  t.set_limit(s, 100);
  try {
    t.on_alloc(s, 200);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.requested(), 200u);
    EXPECT_EQ(e.limit(), 100u);
  }
  t.set_limit(s, 0);
}

TEST(MemoryTracker, ZeroLimitMeansUnlimited) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("unlimited-space");
  t.set_limit(s, 0);
  EXPECT_NO_THROW(t.on_alloc(s, 1ull << 30));
  t.on_free(s, 1ull << 30);
}

TEST(MemoryTracker, TimelineRecordsSamples) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("timeline-space");
  t.clear_timeline(s);
  t.on_alloc(s, 100);
  t.sample(s, 0.5, "mid");
  t.on_free(s, 100);
  t.sample(s, 1.0, "end");
  const auto tl = t.timeline(s);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].label, "mid");
  EXPECT_GE(tl[0].bytes, 100u);
  EXPECT_LT(tl[1].bytes, tl[0].bytes);
}

TEST(MemoryTracker, ScopedPeakWatch) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("scoped-space");
  ScopedPeakWatch watch(s);
  t.on_alloc(s, 9999);
  t.on_free(s, 9999);
  EXPECT_GE(watch.peak_bytes(), 9999u);
}

TEST(MemoryTracker, ConcurrentAllocFree) {
  auto& t = MemoryTracker::instance();
  const MemorySpaceId s = t.register_space("concurrent-space");
  const std::size_t before = t.current(s);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) {
        t.on_alloc(s, 64);
        t.on_free(s, 64);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(s), before);
}

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(45.75e9), "45.75 GB");
  EXPECT_EQ(format_bytes(419.46e9), "419.46 GB");
}

// ---------------------------------------------------------------- thread pool

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  std::atomic<int> sum{0};
  parallel_for(0, 3, 100, [&](std::int64_t lo, std::int64_t hi) {
    sum += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<double> v(100000);
  std::iota(v.begin(), v.end(), 0.0);
  std::atomic<long long> psum{0};
  parallel_for(0, static_cast<std::int64_t>(v.size()), 1024,
               [&](std::int64_t lo, std::int64_t hi) {
                 long long local = 0;
                 for (std::int64_t i = lo; i < hi; ++i) {
                   local += static_cast<long long>(v[static_cast<std::size_t>(i)]);
                 }
                 psum += local;
               });
  EXPECT_EQ(psum.load(), 100000LL * 99999 / 2);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      ThreadPool::global().parallel_for(0, 1000,
                                        [](std::int64_t lo, std::int64_t) {
                                          if (lo >= 0) throw std::runtime_error("boom");
                                        }),
      std::runtime_error);
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  std::atomic<int> total{0};
  std::thread a([&] {
    parallel_for(0, 500, 1, [&](std::int64_t lo, std::int64_t hi) {
      total += static_cast<int>(hi - lo);
    });
  });
  std::thread b([&] {
    parallel_for(0, 500, 1, [&](std::int64_t lo, std::int64_t hi) {
      total += static_cast<int>(hi - lo);
    });
  });
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 1000);
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a(50), b(50);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  Rng ra(9), rb(9);
  ra.shuffle(a);
  rb.shuffle(b);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------- clocks

TEST(SimClock, AccumulatesAcrossThreads) {
  SimClock clock;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) clock.add(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(clock.seconds(), 4.0, 1e-9);
  clock.reset();
  EXPECT_EQ(clock.seconds(), 0.0);
}

TEST(WallTimer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

}  // namespace
}  // namespace pgti
