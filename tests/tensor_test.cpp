#include <gtest/gtest.h>

#include "runtime/memory_tracker.h"
#include "tensor/tensor.h"

namespace pgti {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({3}), 3);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({5, 0, 2}), 0);
}

TEST(Shape, ToString) { EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]"); }

TEST(Tensor, DefaultUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ZerosInitialized) {
  Tensor t = Tensor::zeros({4, 5});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) EXPECT_EQ(t.at({i, j}), 0.0f);
  }
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::full({3}, 2.5f).at({1}), 2.5f);
  EXPECT_EQ(Tensor::ones({2, 2}).at({1, 1}), 1.0f);
}

TEST(Tensor, ArangeValues) {
  Tensor t = Tensor::arange(5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at({i}), static_cast<float>(i));
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.numel(), 3);
  EXPECT_EQ(t.at({2}), 3.0f);
}

TEST(Tensor, RandnDeterministicInSeed) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::randn({100}, r1);
  Tensor b = Tensor::randn({100}, r2);
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(a.at({i}), b.at({i}));
}

TEST(Tensor, SizeNegativeIndex) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.size(-1), 4);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), std::out_of_range);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_EQ(Tensor::full({1}, 7.0f).item(), 7.0f);
  EXPECT_THROW(Tensor::zeros({2}).item(), std::logic_error);
}

// ----------------------------------------------------------------- views

TEST(TensorView, SliceAliasesStorage) {
  Tensor t = Tensor::arange(10);
  Tensor v = t.slice(0, 3, 4);
  EXPECT_TRUE(v.shares_storage_with(t));
  EXPECT_EQ(v.numel(), 4);
  EXPECT_EQ(v.at({0}), 3.0f);
  // Writing through the view is visible in the parent (zero copy).
  v.at({0}) = 99.0f;
  EXPECT_EQ(t.at({3}), 99.0f);
}

TEST(TensorView, SliceDoesNotAllocate) {
  Tensor t = Tensor::zeros({1000, 10});
  const std::size_t before = MemoryTracker::instance().current(kHostSpace);
  Tensor v = t.slice(0, 100, 500);
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), before);
  EXPECT_EQ(v.size(0), 500);
}

TEST(TensorView, SliceOutOfBoundsThrows) {
  Tensor t = Tensor::zeros({5});
  EXPECT_THROW(t.slice(0, 4, 2), std::out_of_range);
  EXPECT_THROW(t.slice(0, -1, 2), std::out_of_range);
  EXPECT_THROW(t.slice(1, 0, 1), std::out_of_range);
}

TEST(TensorView, SliceNegativeDim) {
  Tensor t = Tensor::zeros({2, 6});
  Tensor v = t.slice(-1, 2, 3);
  EXPECT_EQ(v.size(1), 3);
  EXPECT_FALSE(v.is_contiguous());
}

TEST(TensorView, LeadingSliceStaysContiguous) {
  Tensor t = Tensor::zeros({10, 4, 3});
  EXPECT_TRUE(t.slice(0, 2, 5).is_contiguous());
  EXPECT_FALSE(t.slice(1, 0, 2).is_contiguous());
}

TEST(TensorView, SelectDropsDim) {
  Tensor t = Tensor::arange(12).reshape({3, 4});
  Tensor row = t.select(0, 1);
  EXPECT_EQ(row.dim(), 1);
  EXPECT_EQ(row.at({0}), 4.0f);
  Tensor col = t.select(1, 2);
  EXPECT_EQ(col.at({1}), 6.0f);
  EXPECT_FALSE(col.is_contiguous());
}

TEST(TensorView, TransposeSwapsStrides) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor tt = t.transpose(0, 1);
  EXPECT_EQ(tt.size(0), 3);
  EXPECT_EQ(tt.at({2, 1}), t.at({1, 2}));
  EXPECT_TRUE(tt.shares_storage_with(t));
}

TEST(TensorView, ContiguousCopiesStridedData) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor tt = t.transpose(0, 1).contiguous();
  EXPECT_TRUE(tt.is_contiguous());
  EXPECT_EQ(tt.at({0, 1}), 3.0f);
  EXPECT_FALSE(tt.shares_storage_with(t));
}

TEST(TensorView, ReshapeRequiresContiguous) {
  Tensor t = Tensor::zeros({4, 6});
  EXPECT_NO_THROW(t.reshape({24}));
  EXPECT_THROW(t.transpose(0, 1).reshape({24}), std::logic_error);
  EXPECT_THROW(t.reshape({23}), std::invalid_argument);
}

TEST(TensorView, ChainedSliceOfSlice) {
  Tensor t = Tensor::arange(100);
  Tensor v = t.slice(0, 10, 50).slice(0, 5, 10);
  EXPECT_EQ(v.at({0}), 15.0f);
  EXPECT_TRUE(v.shares_storage_with(t));
}

// ----------------------------------------------------------------- copies

TEST(TensorCopy, CloneIsDeep) {
  Tensor t = Tensor::arange(4);
  Tensor c = t.clone();
  c.at({0}) = 42.0f;
  EXPECT_EQ(t.at({0}), 0.0f);
  EXPECT_FALSE(c.shares_storage_with(t));
}

TEST(TensorCopy, CopyFromStridedSource) {
  Tensor t = Tensor::arange(12).reshape({3, 4});
  Tensor dst = Tensor::zeros({4, 3});
  dst.copy_from(t.transpose(0, 1));
  EXPECT_EQ(dst.at({0, 2}), 8.0f);
  EXPECT_EQ(dst.at({3, 1}), 7.0f);
}

TEST(TensorCopy, CopyIntoStridedDest) {
  Tensor t = Tensor::zeros({4, 4});
  Tensor sub = t.slice(1, 1, 2);  // strided view
  sub.copy_from(Tensor::ones({4, 2}));
  EXPECT_EQ(t.at({0, 1}), 1.0f);
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({3, 2}), 1.0f);
  EXPECT_EQ(t.at({3, 3}), 0.0f);
}

TEST(TensorCopy, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW(a.copy_from(b), std::invalid_argument);
}

TEST(TensorCopy, FillStridedView) {
  Tensor t = Tensor::zeros({3, 3});
  t.slice(1, 0, 1).fill_(5.0f);
  EXPECT_EQ(t.at({2, 0}), 5.0f);
  EXPECT_EQ(t.at({2, 1}), 0.0f);
}

// ----------------------------------------------------------- memory spaces

TEST(TensorMemory, AllocationTracked) {
  const std::size_t before = MemoryTracker::instance().current(kHostSpace);
  {
    Tensor t = Tensor::zeros({1024});
    EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), before + 4096);
  }
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), before);
}

TEST(TensorMemory, ViewsShareOneAllocation) {
  const std::size_t before = MemoryTracker::instance().current(kHostSpace);
  Tensor t = Tensor::zeros({256});
  std::vector<Tensor> views;
  for (int i = 0; i < 10; ++i) views.push_back(t.slice(0, 0, 128));
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), before + 1024);
}

TEST(TensorMemory, ToMovesBetweenSpaces) {
  auto& tracker = MemoryTracker::instance();
  const MemorySpaceId space = tracker.register_space("tensor-test-space");
  const std::size_t before = tracker.current(space);
  Tensor host = Tensor::arange(16);
  Tensor dev = host.to(space);
  EXPECT_EQ(tracker.current(space), before + 64);
  EXPECT_EQ(dev.space(), space);
  EXPECT_EQ(dev.at({7}), 7.0f);
}

TEST(TensorMemory, AllocOverLimitThrows) {
  auto& tracker = MemoryTracker::instance();
  const MemorySpaceId space = tracker.register_space("tensor-oom-space");
  tracker.set_limit(space, 1000);
  EXPECT_THROW(Tensor::zeros({10000}, space), OutOfMemoryError);
  // Failed construction leaks nothing.
  EXPECT_EQ(tracker.current(space), 0u);
  tracker.set_limit(space, 0);
}

TEST(TensorMemory, StorageBytes) {
  Tensor t = Tensor::zeros({100});
  EXPECT_EQ(t.storage_bytes(), 400);
  EXPECT_EQ(t.slice(0, 0, 10).storage_bytes(), 400);  // whole storage
}

// Parameterized: view reconstruction round-trips for many shapes.
class TensorShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TensorShapeTest, CloneRoundTrip) {
  Rng rng(17);
  Tensor t = Tensor::randn(GetParam(), rng);
  Tensor c = t.clone();
  ASSERT_EQ(c.shape(), t.shape());
  const float* a = t.data();
  const float* b = c.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(TensorShapeTest, TransposeTwiceIsIdentity) {
  Rng rng(23);
  Tensor t = Tensor::randn(GetParam(), rng);
  if (t.dim() < 2) GTEST_SKIP();
  Tensor round = t.transpose(0, 1).transpose(0, 1).contiguous();
  const float* a = t.data();
  const float* b = round.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorShapeTest,
                         ::testing::Values(Shape{1}, Shape{7}, Shape{3, 5},
                                           Shape{2, 3, 4}, Shape{4, 1, 6},
                                           Shape{2, 2, 2, 2}, Shape{1, 9, 1}));

}  // namespace
}  // namespace pgti
