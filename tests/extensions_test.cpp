// Tests for the paper's optional / future-work extensions: masked and
// Huber losses, missing-data injection, LR schedules, checkpointing,
// prefetching, scheduled sampling, and dynamic graphs with temporal
// signal (paper §7).
#include <gtest/gtest.h>

#include <cstdio>

#include "autograd/gradcheck.h"
#include "core/pgt_i.h"
#include "data/dynamic_graph.h"
#include "data/prefetch.h"
#include "nn/serialize.h"
#include "optim/optim.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

// ------------------------------------------------------------ masked loss

TEST(MaskedMae, IgnoresNullEntries) {
  Variable pred(Tensor::from_vector({1.0f, 5.0f, 3.0f}), true);
  Tensor target = Tensor::from_vector({2.0f, 0.0f, 1.0f});  // middle missing
  Variable loss = ag::masked_mae_loss(pred, target, 0.0f);
  EXPECT_FLOAT_EQ(loss.value().item(), 1.5f);  // (1 + 2) / 2
  loss.backward();
  EXPECT_EQ(pred.grad().at({1}), 0.0f) << "missing entry must get no gradient";
  EXPECT_NE(pred.grad().at({0}), 0.0f);
}

TEST(MaskedMae, AllMissingIsZeroLoss) {
  Variable pred(Tensor::from_vector({1.0f, 2.0f}), true);
  Variable loss = ag::masked_mae_loss(pred, Tensor::zeros({2}), 0.0f);
  EXPECT_EQ(loss.value().item(), 0.0f);
  loss.backward();
  EXPECT_EQ(ops::max_abs(pred.grad()), 0.0f);
}

TEST(MaskedMae, EqualsPlainMaeWithoutNulls) {
  Rng rng(1);
  Variable pred(Tensor::randn({4, 5}, rng), true);
  Tensor target = ops::add_scalar(Tensor::randn({4, 5}, rng), 10.0f);  // never 0
  EXPECT_FLOAT_EQ(ag::masked_mae_loss(pred, target, 0.0f).value().item(),
                  ag::mae_loss(pred, target).value().item());
}

TEST(HuberLoss, QuadraticInsideLinearOutside) {
  Variable pred(Tensor::from_vector({0.5f, 3.0f}), true);
  Tensor target = Tensor::zeros({2});
  Variable loss = ag::huber_loss(pred, target, 1.0f);
  // (0.5*0.25 + (3 - 0.5)) / 2
  EXPECT_NEAR(loss.value().item(), (0.125f + 2.5f) / 2.0f, 1e-6f);
  loss.backward();
  EXPECT_NEAR(pred.grad().at({0}), 0.25f, 1e-6f);  // d/dx 0.5x^2 / n
  EXPECT_NEAR(pred.grad().at({1}), 0.5f, 1e-6f);   // clipped at delta / n
}

TEST(HuberLoss, GradCheck) {
  Rng rng(2);
  Variable pred(Tensor::randn({3, 4}, rng), true);
  Tensor target = Tensor::randn({3, 4}, rng);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::huber_loss(x, target, 0.7f); }, pred, 1e-3f);
  EXPECT_LT(res.max_rel_err, 3e-2);
}

// ------------------------------------------------------- missing data

TEST(MissingData, InjectsRequestedFraction) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(16);
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 3);
  data::inject_missing_data(raw, 0.1, 8, 7);
  std::int64_t zeros = 0;
  const float* p = raw.data();
  for (std::int64_t i = 0; i < raw.numel(); ++i) zeros += p[i] == 0.0f;
  const double frac = static_cast<double>(zeros) / static_cast<double>(raw.numel());
  EXPECT_GT(frac, 0.03);
  EXPECT_LT(frac, 0.25);
}

TEST(MissingData, ZeroFractionIsNoop) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kChickenpoxHungary);
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 4);
  Tensor before = raw.clone();
  data::inject_missing_data(raw, 0.0, 8, 7);
  EXPECT_EQ(ops::max_abs_diff(raw, before), 0.0f);
}

TEST(MissingData, DropoutsComeInRuns) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(32);
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 5);
  data::inject_missing_data(raw, 0.1, 12, 9);
  // Count zero->zero transitions vs isolated zeros on node 0: runs mean
  // most zero entries are followed by another zero.
  std::int64_t zz = 0, z = 0;
  for (std::int64_t t = 0; t + 1 < spec.entries; ++t) {
    if (raw.at({t, 0, 0}) == 0.0f) {
      ++z;
      if (raw.at({t + 1, 0, 0}) == 0.0f) ++zz;
    }
  }
  if (z > 10) {
    EXPECT_GT(static_cast<double>(zz) / static_cast<double>(z), 0.6);
  }
}

// ------------------------------------------------------------ schedules

TEST(StepDecay, HalvesEverySteps) {
  optim::StepDecaySchedule sched(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(9), 1.0f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(10), 0.5f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(25), 0.25f);
}

TEST(Cosine, StartsHighEndsLow) {
  optim::CosineSchedule sched(1.0f, 0.1f, 11);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(0), 1.0f);
  EXPECT_NEAR(sched.lr_for_epoch(5), 0.55f, 1e-5f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(10), 0.1f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(50), 0.1f);  // clamps past the end
}

TEST(Cosine, MonotoneNonIncreasing) {
  optim::CosineSchedule sched(0.01f, 0.0001f, 30);
  for (int e = 1; e < 30; ++e) {
    EXPECT_LE(sched.lr_for_epoch(e), sched.lr_for_epoch(e - 1) + 1e-9f);
  }
}

// ---------------------------------------------------------- checkpoints

TEST(Checkpoint, SaveLoadRoundTrip) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = data::network_for(spec);
  auto a = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 8, 1, 1, 11);
  auto b = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 8, 1, 1, 99);

  const std::string path = "/tmp/pgti_ckpt_test.bin";
  nn::save_checkpoint(*a.model, path);
  nn::load_checkpoint(*b.model, path);
  auto pa = a.model->parameters();
  auto pb = b.model->parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i].value(), pb[i].value()), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ShapeMismatchRejected) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = data::network_for(spec);
  auto a = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 8, 1, 1, 11);
  auto b = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 16, 1, 1, 11);
  const std::string path = "/tmp/pgti_ckpt_mismatch.bin";
  nn::save_checkpoint(*a.model, path);
  EXPECT_THROW(nn::load_checkpoint(*b.model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileRejected) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = data::network_for(spec);
  auto a = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 8, 1, 1, 11);
  EXPECT_THROW(nn::load_checkpoint(*a.model, "/tmp/does_not_exist_pgti.bin"),
               std::runtime_error);
}

// ------------------------------------------------------------- prefetch

TEST(Prefetch, SameBatchSequenceAsInnerLoader) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 6);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 3, 8};

  data::DataLoader plain(source, opt, 0, 200);
  std::vector<std::vector<std::int64_t>> expected;
  plain.start_epoch(2);
  data::Batch b;
  while (plain.next(b)) expected.push_back(b.indices);

  data::DataLoader inner(source, opt, 0, 200);
  data::PrefetchLoader prefetch(inner);
  prefetch.start_epoch(2);
  std::size_t i = 0;
  while (prefetch.next(b)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(b.indices, expected[i]);
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(Prefetch, SurvivesMultipleEpochs) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 7);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 16;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 3, 16};
  data::DataLoader inner(source, opt, 0, 100);
  data::PrefetchLoader prefetch(inner);
  data::Batch b;
  for (int epoch = 0; epoch < 3; ++epoch) {
    prefetch.start_epoch(epoch);
    int count = 0;
    while (prefetch.next(b)) ++count;
    EXPECT_EQ(count, 6);
  }
}

TEST(Prefetch, BatchContentsMatchSnapshots) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 8);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 4;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kNone, 0, 1, 1, 4};
  data::DataLoader inner(source, opt, 0, 40);
  data::PrefetchLoader prefetch(inner);
  prefetch.start_epoch(0);
  data::Batch b;
  while (prefetch.next(b)) {
    for (std::int64_t i = 0; i < b.size; ++i) {
      const auto [x, y] = ds.get(b.indices[static_cast<std::size_t>(i)]);
      EXPECT_EQ(ops::max_abs_diff(b.x.select(0, i).contiguous(), x.contiguous()), 0.0f);
    }
  }
}

// ----------------------------------------------------- scheduled sampling

TEST(ScheduledSampling, FullTeacherForcingDiffersFromFree) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  auto bundle = core::make_model(core::ModelKind::kDcrnn, spec, net, 8, 1, 1, 13);
  auto* dcrnn = dynamic_cast<nn::DCRNN*>(bundle.model.get());
  ASSERT_NE(dcrnn, nullptr);
  Rng xr(14);
  Tensor x = Tensor::randn({2, 4, spec.nodes, spec.features}, xr);
  Tensor y = Tensor::randn({2, 4, spec.nodes, 1}, xr);
  Rng coin1(1), coin2(2);
  auto free_run = dcrnn->forward_seq(x);
  auto forced = dcrnn->forward_seq_scheduled(x, y, 1.0f, coin1);
  auto never = dcrnn->forward_seq_scheduled(x, y, 0.0f, coin2);
  // Step 0 is identical (no previous target yet)...
  EXPECT_EQ(ops::max_abs_diff(free_run[0].value(), forced[0].value()), 0.0f);
  // ...later steps differ under teacher forcing but match without it.
  EXPECT_GT(ops::max_abs_diff(free_run[2].value(), forced[2].value()), 0.0f);
  EXPECT_EQ(ops::max_abs_diff(free_run[2].value(), never[2].value()), 0.0f);
}

// -------------------------------------------- dynamic graphs (paper §7)

data::DatasetSpec dyn_spec() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kMetrLa).scaled(24);
  spec.horizon = 4;
  return spec;
}

TEST(DynamicGraph, GeneratorProducesOneGraphPerStep) {
  data::DatasetSpec spec = dyn_spec();
  auto series = data::generate_dynamic_graph_signal(spec, 5);
  EXPECT_EQ(static_cast<std::int64_t>(series.graphs.size()), spec.entries);
  EXPECT_EQ(series.signal.shape(), (Shape{spec.entries, spec.nodes, 1}));
}

TEST(DynamicGraph, TopologyActuallyEvolves) {
  data::DatasetSpec spec = dyn_spec();
  auto series = data::generate_dynamic_graph_signal(spec, 5);
  data::DynamicIndexDataset ds(std::move(series), spec);
  EXPECT_GT(ds.distinct_graphs(), 1u);
  // But far fewer distinct graphs than steps (shared within periods).
  EXPECT_LT(ds.distinct_graphs(), static_cast<std::size_t>(spec.entries) / 4);
}

TEST(DynamicGraph, SnapshotsAreViewsWithGraphSpans) {
  data::DatasetSpec spec = dyn_spec();
  auto series = data::generate_dynamic_graph_signal(spec, 6);
  data::DynamicIndexDataset ds(std::move(series), spec);
  const auto snap = ds.get(10);
  EXPECT_TRUE(snap.x.shares_storage_with(ds.data()));
  EXPECT_TRUE(snap.y.shares_storage_with(ds.data()));
  EXPECT_EQ(static_cast<std::int64_t>(snap.graphs.size()), spec.horizon);
}

TEST(DynamicGraph, OutOfRangeThrows) {
  data::DatasetSpec spec = dyn_spec();
  auto series = data::generate_dynamic_graph_signal(spec, 7);
  data::DynamicIndexDataset ds(std::move(series), spec);
  EXPECT_THROW(ds.get(ds.num_snapshots()), std::out_of_range);
}

TEST(DynamicGraph, DcgruRunsWithPerStepSupports) {
  data::DatasetSpec spec = dyn_spec();
  auto series = data::generate_dynamic_graph_signal(spec, 8);
  data::DynamicIndexDataset ds(std::move(series), spec);

  // Build the cell against the step-0 supports; run it with each
  // step's own supports (the dynamic-topology forward).
  const auto snap0 = ds.get(0);
  auto base_supports = nn::GraphSupports::from(dual_random_walk_supports(*snap0.graphs[0]));
  Rng rng(15);
  nn::DCGRUCell cell(spec.features, 8, base_supports, 1, rng);

  const auto snap = ds.get(3);
  Variable h(Tensor::zeros({1, spec.nodes, 8}), false);
  for (std::int64_t t = 0; t < spec.horizon; ++t) {
    auto step_supports = nn::GraphSupports::from(
        dual_random_walk_supports(*snap.graphs[static_cast<std::size_t>(t)]));
    Tensor xt = snap.x.select(0, t).contiguous().reshape({1, spec.nodes, spec.features});
    h = cell.forward(Variable(xt, false), h, step_supports);
  }
  EXPECT_EQ(h.value().shape(), (Shape{1, spec.nodes, 8}));
  EXPECT_GT(ops::max_abs(h.value()), 0.0f);
  // Gradients flow through the dynamic path too.
  ag::mean_all(h).backward();
  for (Variable& p : cell.parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(DynamicGraph, SupportCountMismatchRejected) {
  data::DatasetSpec spec = dyn_spec();
  SensorNetwork net = data::network_for(spec);
  auto dual = nn::GraphSupports::from(dual_random_walk_supports(net.adjacency));
  Rng rng(16);
  nn::DCGRUCell cell(spec.features, 4, dual, 1, rng);
  std::vector<Csr> single;
  single.push_back(net.adjacency.row_normalized());
  auto one = nn::GraphSupports::from(std::move(single));
  Variable x(Tensor::zeros({1, spec.nodes, spec.features}), false);
  Variable h(Tensor::zeros({1, spec.nodes, 4}), false);
  EXPECT_THROW(cell.forward(x, h, one), std::invalid_argument);
}

}  // namespace
}  // namespace pgti
