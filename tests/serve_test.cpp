// The serving tier (DESIGN.md §17): micro-batch coalescing is
// bit-exact (a batch of N requests is byte-identical to N sequential
// single-request forwards, at every coalescing window and horizon),
// copy-on-publish snapshots isolate in-flight requests from a
// concurrently training model, the bounded queue sheds load and fails
// expired requests with typed errors without touching memory, stop()
// drains deterministically, serving batches replay alloc-free after
// the planning batch, and a DistStore reader rank's hot-window
// announcements keep the freshest snapshots cache-resident under
// pressure.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/epoch_engine.h"
#include "core/pgt_i.h"
#include "data/snapshot_provider.h"
#include "serve/engine.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"
#include "serve/types.h"

namespace pgti {
namespace {

using namespace std::chrono_literals;

constexpr std::int64_t kHidden = 8;
constexpr int kDiffusion = 1;
constexpr int kLayers = 1;
constexpr std::uint64_t kSeed = 13;

data::DatasetSpec serve_spec(std::int64_t horizon) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = horizon;
  return spec;
}

/// One self-contained serving fixture: a synthetic dataset behind a
/// local IndexProvider, a live (trainable) model, and a SnapshotSlot
/// built from the same recipe.
struct Rig {
  data::DatasetSpec spec;
  SensorNetwork net;
  Tensor raw;
  data::IndexDataset ds;
  data::IndexProvider provider;
  core::ModelBundle live;
  serve::SnapshotSlot slot;

  explicit Rig(std::int64_t horizon = 4)
      : spec(serve_spec(horizon)),
        net(data::network_for(spec)),
        raw(data::generate_signal(spec, net, 11)),
        ds(raw, spec),
        provider(ds),
        live(core::make_model(core::ModelKind::kPgtDcrnn, spec, net, kHidden,
                              kDiffusion, kLayers, kSeed)),
        slot(core::ModelKind::kPgtDcrnn, spec, net, kHidden, kDiffusion, kLayers,
             kSeed) {}

  std::int64_t head() const { return provider.num_snapshots() - 1; }
};

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// The bit-parity reference: a batch-of-one forward against `snap`,
/// gathered exactly the way the engine gathers (same select/copy
/// composition), so any batched-vs-single divergence is the kernels'.
Tensor single_forward(const serve::ModelSnapshot& snap, const Rig& rig,
                      std::int64_t id, int horizon,
                      const std::vector<std::int64_t>& nodes) {
  const data::DatasetSpec& spec = rig.spec;
  Tensor x = Tensor::empty({1, spec.horizon, spec.nodes, spec.features}, kHostSpace);
  auto [window, y] = rig.ds.get(id);
  (void)y;
  x.select(0, 0).copy_from(window);
  const std::vector<Variable> outputs = snap.model().forward_seq(x);
  const std::int64_t n_out =
      nodes.empty() ? spec.nodes : static_cast<std::int64_t>(nodes.size());
  Tensor pred = Tensor::empty({horizon, n_out, snap.model().output_dim()}, kHostSpace);
  for (int s = 0; s < horizon; ++s) {
    const Tensor row = outputs[static_cast<std::size_t>(s)].value().select(0, 0);
    Tensor dst = pred.select(0, s);
    if (nodes.empty()) {
      dst.copy_from(row);
    } else {
      for (std::int64_t j = 0; j < n_out; ++j) {
        dst.select(0, j).copy_from(row.select(0, nodes[static_cast<std::size_t>(j)]));
      }
    }
  }
  return pred;
}

// ---------------------------------------------------------------- bit parity

TEST(ServeBitParity, CoalescedBatchMatchesSequentialForwards) {
  // Five concurrent requests — explicit head, head-resolved (-1), an
  // older window, a duplicate window with a node subset, a single-node
  // slice — coalesce into ONE fused forward; each forecast must be
  // byte-identical to its own batch-of-one forward.  Swept over the
  // horizon (= input window) and every coalescing window the issue
  // names, including 0 (batch only what is already queued).
  for (const std::int64_t horizon : {std::int64_t{1}, std::int64_t{3}, std::int64_t{12}}) {
    Rig rig(horizon);
    const auto snap = rig.slot.publish(*rig.live.model, /*epoch=*/0);
    const std::int64_t head = rig.head();
    struct Spec {
      std::int64_t snapshot;
      std::vector<std::int64_t> nodes;
    };
    const std::vector<Spec> reqs = {
        {head, {}},
        {-1, {}},  // resolves to head
        {head - 3, {}},
        {head, {0, 5, rig.spec.nodes - 1}},
        {head - 3, {2}},
    };
    for (const auto window : {0us, 1000us, 8000us}) {
      serve::EngineConfig cfg;
      cfg.coalesce_window = window;
      serve::InferenceEngine engine(rig.slot, rig.provider, /*rank=*/0, cfg);
      // Queue everything BEFORE the worker exists: coalescing is then
      // deterministic (one batch of 5) at every window, including 0.
      std::vector<std::future<serve::Forecast>> futs;
      for (const Spec& r : reqs) {
        serve::ForecastRequest req;
        req.snapshot = r.snapshot;
        req.horizon = static_cast<int>(horizon);
        req.nodes = r.nodes;
        futs.push_back(engine.submit(req));
      }
      engine.start();
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        serve::Forecast f = futs[i].get();
        EXPECT_EQ(f.coalesced_batch, static_cast<std::int64_t>(reqs.size()));
        EXPECT_EQ(f.snapshot_version, 1u);
        const std::int64_t id = reqs[i].snapshot < 0 ? head : reqs[i].snapshot;
        const Tensor ref = single_forward(*snap, rig, id,
                                          static_cast<int>(horizon), reqs[i].nodes);
        EXPECT_TRUE(same_bits(f.prediction, ref))
            << "horizon " << horizon << " window " << window.count()
            << "us request " << i;
      }
      engine.stop();
      const serve::ServeStats s = engine.stats();
      EXPECT_EQ(s.batches, 1u);
      EXPECT_EQ(s.completed, reqs.size());
      EXPECT_EQ(s.max_coalesced, reqs.size());
      EXPECT_EQ(s.coalesced_requests, reqs.size());
      EXPECT_EQ(s.failed, 0u);
    }
  }
}

TEST(ServeBitParity, ServingBatchesReplayAllocFreeAfterPlanning) {
  // The alloc-free steady state extends to serving: the first batch of
  // a shape plans the worker arena's pool demand, every later batch of
  // that shape replays without touching the heap (the forecast tensor
  // recycles once the caller drops it).
  Rig rig;
  rig.slot.publish(*rig.live.model, 0);
  serve::InferenceEngine engine(rig.slot, rig.provider, 0);
  engine.start();
  const auto serve_one = [&] {
    serve::ForecastRequest req;
    req.snapshot = rig.head();
    req.horizon = 4;
    serve::Forecast f = engine.submit(req).get();
    EXPECT_EQ(f.prediction.shape()[0], 4);
  };  // forecast dropped here -> its arena block recycles
  serve_one();  // planning batch
  serve_one();  // one full recycle pass
  const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
  for (int i = 0; i < 4; ++i) serve_one();
  EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  EXPECT_GT(engine.arena_stats().pool_hits, 0u);
  engine.stop();
}

// --------------------------------------------------------- snapshot isolation

TEST(ServeSnapshot, PublishFromTrainingThreadIsolatesVersions) {
  // A trainer mutates the live model and publishes at every epoch end
  // (EpochEngine::Hooks::on_epoch_end) while the engine serves.  Every
  // forecast must be byte-identical to a single forward against the
  // exact snapshot version it claims — proof that a publish never
  // bleeds into an in-flight batch — versions must be non-decreasing
  // in completion order, and a request submitted after training
  // finishes must see the final version.
  Rig rig;
  const auto first = rig.slot.publish(*rig.live.model, 0);
  EXPECT_EQ(first->version(), 1u);

  std::mutex pub_mu;
  std::vector<std::shared_ptr<const serve::ModelSnapshot>> published = {first};

  serve::EngineConfig cfg;
  cfg.coalesce_window = 200us;
  serve::InferenceEngine engine(rig.slot, rig.provider, 0, cfg);
  engine.start();

  // Before training starts the only version is 1.
  {
    serve::ForecastRequest req;
    req.horizon = 2;
    EXPECT_EQ(engine.submit(req).get().snapshot_version, 1u);
  }

  constexpr int kEpochs = 3;
  std::thread trainer([&] {
    std::vector<Variable> params = rig.live.model->parameters();
    optim::Adam opt(params, optim::Adam::Options{});
    core::EpochEngine::Hooks hooks;
    hooks.on_epoch_end = [&](int epoch, std::int64_t) {
      auto snap = rig.slot.publish(*rig.live.model, epoch);
      std::lock_guard<std::mutex> lk(pub_mu);
      published.push_back(std::move(snap));
    };
    core::EpochEngine eng(*rig.live.model, opt, hooks);
    data::IndexSource source(rig.ds);
    const data::SplitRanges& splits = rig.ds.splits();
    data::LoaderOptions opt_l;
    opt_l.batch_size = 8;
    opt_l.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, kSeed, 8};
    data::DataLoader loader(source, opt_l, splits.train_begin, splits.train_end);
    core::BatchPipeline pipe(loader, /*prefetch_depth=*/0);
    for (int e = 0; e < kEpochs; ++e) eng.train_epoch(pipe, e, /*max_steps=*/4);
  });

  // Stream requests while epochs end underneath them.
  std::vector<serve::Forecast> served;
  for (int i = 0; i < 24; ++i) {
    serve::ForecastRequest req;
    req.snapshot = rig.head() - (i % 3);
    req.horizon = 2;
    served.push_back(engine.submit(req).get());
    std::this_thread::sleep_for(1ms);
  }
  trainer.join();

  // One more after training: must see the final published version.
  {
    serve::ForecastRequest req;
    req.horizon = 2;
    served.push_back(engine.submit(req).get());
  }
  engine.stop();

  ASSERT_EQ(published.size(), static_cast<std::size_t>(1 + kEpochs));
  EXPECT_EQ(rig.slot.version(), static_cast<std::uint64_t>(1 + kEpochs));
  EXPECT_EQ(served.back().snapshot_version, static_cast<std::uint64_t>(1 + kEpochs));

  std::uint64_t prev = 0;
  int idx = 0;
  for (const serve::Forecast& f : served) {
    EXPECT_GE(f.snapshot_version, prev);  // staleness is bounded and monotone
    prev = f.snapshot_version;
    ASSERT_GE(f.snapshot_version, 1u);
    ASSERT_LE(f.snapshot_version, published.size());
    const auto& snap = published[static_cast<std::size_t>(f.snapshot_version - 1)];
    ASSERT_EQ(snap->version(), f.snapshot_version);
    // Reconstruct the request this forecast answered.
    const std::int64_t id = idx < 24 ? rig.head() - (idx % 3) : rig.head();
    const Tensor ref = single_forward(*snap, rig, id, 2, {});
    EXPECT_TRUE(same_bits(f.prediction, ref)) << "forecast " << idx << " vs version "
                                              << f.snapshot_version;
    ++idx;
  }
  // Training really moved the weights: version 1 and the final version
  // disagree on the same input, so matching "its own" version is a
  // real isolation property, not a vacuous one.
  EXPECT_FALSE(same_bits(single_forward(*published.front(), rig, rig.head(), 2, {}),
                         single_forward(*published.back(), rig, rig.head(), 2, {})));
}

// ------------------------------------------------------------ queue semantics

TEST(ServeQueue, BackpressureRejectsBeyondCapacity) {
  Rig rig;
  rig.slot.publish(*rig.live.model, 0);
  serve::EngineConfig cfg;
  cfg.queue_capacity = 4;
  serve::InferenceEngine engine(rig.slot, rig.provider, 0, cfg);
  // No worker: the queue really fills.
  std::vector<std::future<serve::Forecast>> futs;
  serve::ForecastRequest req;
  req.horizon = 2;
  for (int i = 0; i < 4; ++i) futs.push_back(engine.submit(req));
  EXPECT_THROW(engine.submit(req), serve::QueueFullError);
  const serve::ServeStats mid = engine.stats();
  EXPECT_EQ(mid.submitted, 4u);
  EXPECT_EQ(mid.rejected, 1u);
  // stop() without start() drains inline: all four accepted requests
  // still complete.
  engine.stop();
  for (auto& f : futs) EXPECT_EQ(f.get().coalesced_batch, 4);
  EXPECT_EQ(engine.stats().completed, 4u);
}

TEST(ServeQueue, ExpiredDeadlineFailsTypedAndTouchesNoMemory) {
  Rig rig;
  rig.slot.publish(*rig.live.model, 0);
  serve::InferenceEngine engine(rig.slot, rig.provider, 0);
  serve::ForecastRequest req;
  req.horizon = 2;
  req.deadline = std::chrono::steady_clock::now() - 1ms;
  std::vector<std::future<serve::Forecast>> futs;
  futs.push_back(engine.submit(req));
  futs.push_back(engine.submit(req));
  // The deadline path must allocate nothing: no forward, no forecast
  // tensor, no arena block — the typed error is the whole response.
  const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
  const std::size_t b0 = MemoryTracker::instance().current(kHostSpace);
  engine.stop();  // inline drain
  EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), b0);
  for (auto& f : futs) EXPECT_THROW(f.get(), serve::DeadlineExceededError);
  const serve::ServeStats s = engine.stats();
  EXPECT_EQ(s.timed_out, 2u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.batches, 0u);
}

TEST(ServeQueue, StopDrainsEveryQueuedFutureDeterministically) {
  Rig rig;
  rig.slot.publish(*rig.live.model, 0);
  serve::InferenceEngine engine(rig.slot, rig.provider, 0);
  engine.start();
  std::vector<std::future<serve::Forecast>> futs;
  for (int i = 0; i < 12; ++i) {
    serve::ForecastRequest req;
    req.horizon = 1 + (i % 2);  // two horizon classes -> several batches
    futs.push_back(engine.submit(req));
  }
  engine.stop();
  // When stop() returns, every accepted future is ready — served, not
  // abandoned.
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    EXPECT_GT(f.get().prediction.numel(), 0);
  }
  EXPECT_EQ(engine.stats().completed, 12u);
  // Closed for business afterwards, idempotently.
  serve::ForecastRequest late;
  late.horizon = 1;
  EXPECT_THROW(engine.submit(late), serve::EngineStoppedError);
  EXPECT_THROW(engine.start(), serve::EngineStoppedError);
  engine.stop();  // no-op
}

TEST(ServeQueue, FailureModesAreTypedPerRequest) {
  Rig rig;
  {
    // Before any publish: SnapshotUnavailableError, request-scoped.
    serve::InferenceEngine engine(rig.slot, rig.provider, 0);
    serve::ForecastRequest req;
    req.horizon = 2;
    auto fut = engine.submit(req);
    engine.stop();
    EXPECT_THROW(fut.get(), serve::SnapshotUnavailableError);
    EXPECT_EQ(engine.stats().failed, 1u);
  }
  rig.slot.publish(*rig.live.model, 0);
  {
    serve::InferenceEngine engine(rig.slot, rig.provider, 0);
    EXPECT_THROW(
        {
          serve::ForecastRequest bad;
          bad.horizon = 0;
          engine.submit(bad);
        },
        std::invalid_argument);
    serve::ForecastRequest bad_id;
    bad_id.horizon = 2;
    bad_id.snapshot = rig.provider.num_snapshots();  // one past the end
    auto f_id = engine.submit(bad_id);
    serve::ForecastRequest bad_node;
    bad_node.horizon = 2;
    bad_node.nodes = {rig.spec.nodes};  // one past the end
    auto f_node = engine.submit(bad_node);
    serve::ForecastRequest bad_h;
    bad_h.horizon = static_cast<int>(rig.spec.horizon) + 1;  // > output steps
    auto f_h = engine.submit(bad_h);
    serve::ForecastRequest good;
    good.horizon = 2;
    auto f_good = engine.submit(good);
    engine.stop();
    EXPECT_THROW(f_id.get(), serve::ServeError);
    EXPECT_THROW(f_node.get(), serve::ServeError);
    EXPECT_THROW(f_h.get(), serve::ServeError);
    // A bad neighbor never takes the batch down.
    EXPECT_EQ(f_good.get().snapshot_version, 1u);
  }
}

// ----------------------------------------------------- hot-window store cache

TEST(ServeHotWindow, ReaderRankKeepsHotWindowResidentUnderPressure) {
  // Serving traffic runs through a read-only DistStore reader rank:
  // the reader owns no partition (training shards are untouched), and
  // the engine's hot-window schedule announcements repurpose the
  // store's schedule-aware eviction so the freshest windows survive
  // cache pressure from stale-window requests.
  Rig rig;
  rig.slot.publish(*rig.live.model, 0);
  const auto serve_ids = [&](serve::InferenceEngine& engine,
                             std::int64_t first, std::int64_t count,
                             std::int64_t step) {
    for (std::int64_t i = 0; i < count; ++i) {
      serve::ForecastRequest req;
      req.snapshot = first + step * i;
      req.horizon = 2;
      (void)engine.submit(req).get();
    }
  };

  // Hot-window engine: window of 8 against a 10-snapshot cache (the
  // window plus slack for in-flight stale fetches).
  std::uint64_t hot_recopy = 0;
  {
    data::StandardDataset dsa(rig.raw, rig.spec);
    dist::DistStore store(std::move(dsa), /*world=*/2, dist::NetworkModel{},
                          /*consolidate=*/true, /*cache_snapshots=*/10,
                          /*cache_bytes=*/0, /*async_prefetch=*/false);
    const int reader = store.add_reader();
    EXPECT_EQ(reader, 2);
    const auto [lo, hi] = store.partition(reader);
    EXPECT_EQ(lo, hi);  // readers own nothing
    serve::EngineConfig cfg;
    cfg.hot_window = 8;
    serve::InferenceEngine engine(rig.slot, store, reader, cfg);
    engine.start();
    const std::int64_t head = store.num_snapshots() - 1;
    serve_ids(engine, head - 7, 8, 1);  // warm the hot window
    const std::uint64_t warm = store.stats().bytes_copied;
    serve_ids(engine, head - 40, 6, -1);  // stale-window pressure
    const std::uint64_t pressured = store.stats().bytes_copied;
    EXPECT_GT(pressured, warm);  // the stale fetches really copied
    serve_ids(engine, head - 7, 8, 1);  // re-serve the hot window
    hot_recopy = store.stats().bytes_copied - pressured;
    EXPECT_EQ(hot_recopy, 0u);  // every hot window was still resident
    EXPECT_GE(store.stats().cache_hits, 8u);
    engine.stop();
  }

  // Control: the identical traffic with hot_window = 0 loses the
  // retention priority, so pressure evicts the fresh windows and the
  // re-serve copies again — proving the zero above is the hot-window
  // announcements and not cache capacity.
  {
    data::StandardDataset dsb(rig.raw, rig.spec);
    dist::DistStore store(std::move(dsb), /*world=*/2, dist::NetworkModel{},
                          /*consolidate=*/true, /*cache_snapshots=*/10,
                          /*cache_bytes=*/0, /*async_prefetch=*/false);
    const int reader = store.add_reader();
    serve::EngineConfig cfg;
    cfg.hot_window = 0;
    serve::InferenceEngine engine(rig.slot, store, reader, cfg);
    engine.start();
    const std::int64_t head = store.num_snapshots() - 1;
    serve_ids(engine, head - 7, 8, 1);
    serve_ids(engine, head - 40, 6, -1);
    const std::uint64_t pressured = store.stats().bytes_copied;
    serve_ids(engine, head - 7, 8, 1);
    EXPECT_GT(store.stats().bytes_copied - pressured, 0u);
    engine.stop();
  }
}

}  // namespace
}  // namespace pgti
