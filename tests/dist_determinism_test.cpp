// Determinism guarantees of the dist subsystem, beyond the functional
// coverage in dist_test.cpp:
//
//  * The tree all-reduce is bit-exact across repeated runs and across
//    thread schedules, and bit-identical to the flat rank-ordered
//    reference, for world sizes 1..9 (non-powers-of-two included) —
//    the property that makes W-worker training reproduce single-worker
//    training (paper §5.3).
//  * A worker that dies mid-collective releases its peers with
//    PeerFailureError from EVERY internal sync point of the staged
//    tree all-reduce, not just the first.
//  * DistStore never counts a remote fetch when every rank touches only
//    its own partition — the access pattern generalized-distributed-
//    index-batching (paper §5.4) guarantees by construction.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dist/comm.h"
#include "dist/dist_store.h"
#include "runtime/rng.h"

namespace pgti::dist {
namespace {

// Adversarial float values: large magnitude spread, so accumulation
// order visibly changes the low-order bits if it is ever unordered.
std::vector<float> rank_payload(int rank, std::size_t n) {
  Rng rng(static_cast<std::uint64_t>(rank) * 1315423911ULL + 7);
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rng.normal()) *
              (i % 2 == 0 ? 1e6f : 1e-3f);
  }
  return data;
}

std::vector<std::vector<float>> run_allreduce_once(int world, std::size_t n) {
  Cluster cluster(world);
  std::vector<std::vector<float>> results(static_cast<std::size_t>(world));
  cluster.run([&](Communicator& comm) {
    std::vector<float> data =
        rank_payload(comm.rank(), n);
    // Repeated collectives on evolving data catch schedule-dependent
    // accumulation, not just single-shot luck.
    for (int iter = 0; iter < 5; ++iter) comm.allreduce_sum(data.data(), static_cast<std::int64_t>(n));
    results[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });
  return results;
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

class DeterminismWorlds : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismWorlds, AllreduceBitExactAcrossRepeatedRuns) {
  const int w = GetParam();
  const std::size_t n = 512;
  const auto first = run_allreduce_once(w, n);
  for (int rep = 0; rep < 4; ++rep) {
    const auto again = run_allreduce_once(w, n);
    for (int r = 0; r < w; ++r) {
      EXPECT_TRUE(bit_identical(first[static_cast<std::size_t>(r)],
                                again[static_cast<std::size_t>(r)]))
          << "run " << rep << ", rank " << r;
    }
  }
}

TEST_P(DeterminismWorlds, AllRanksAgreeBitwiseWithOrderedReference) {
  const int w = GetParam();
  const std::size_t n = 256;
  // Rank-ordered sequential reference: what the collective contract
  // promises every rank computes.
  std::vector<float> expected = rank_payload(0, n);
  for (int r = 1; r < w; ++r) {
    const std::vector<float> other = rank_payload(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += other[i];
  }

  Cluster cluster(w);
  cluster.run([&](Communicator& comm) {
    std::vector<float> data = rank_payload(comm.rank(), n);
    comm.allreduce_sum(data.data(), static_cast<std::int64_t>(n));
    ASSERT_TRUE(bit_identical(data, expected)) << "rank " << comm.rank();
  });
}

TEST_P(DeterminismWorlds, ScalarSumAndAllgatherAreRunInvariant) {
  const int w = GetParam();
  double first_sum = 0.0;
  std::vector<double> first_gather;
  for (int rep = 0; rep < 3; ++rep) {
    Cluster cluster(w);
    double sum = 0.0;
    std::vector<double> gather;
    cluster.run([&](Communicator& comm) {
      Rng rng(static_cast<std::uint64_t>(comm.rank()) + 13);
      const double mine = rng.normal() * 1e8;
      const double total = comm.allreduce_scalar_sum(mine);
      const auto all = comm.allgather(mine);
      if (comm.rank() == 0) {
        sum = total;
        gather = all;
      }
    });
    if (rep == 0) {
      first_sum = sum;
      first_gather = gather;
    } else {
      EXPECT_EQ(sum, first_sum);
      EXPECT_EQ(gather, first_gather);
    }
  }
}

// 1..9 covers one rank, powers of two, and the non-power-of-two world
// sizes (3, 5, 6, 7, 9) where a sloppy tree schedule would change
// accumulation order.
INSTANTIATE_TEST_SUITE_P(Worlds, DeterminismWorlds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9));

// ------------------------------------------------------ tree failure depth

TEST(TreeFailure, PeersReleasedAtEveryTreeDepth) {
  // The staged all-reduce passes through allreduce_sync_points(w)
  // internal sync points (scratch sizing, input staging, one per tree
  // stage, final gather).  The injected fault makes the last rank die
  // upon ENTERING sync point `depth`, leaving its peers blocked at
  // exactly that depth inside the tree reduction.  They must unwind
  // via PeerFailureError at every depth, and run() must always rethrow
  // the original (injected) error.
  for (int w : {2, 3, 5, 8}) {
    const int points = Cluster::allreduce_sync_points(w);
    ASSERT_GE(points, 4) << "w=" << w;
    for (int depth = 0; depth < points; ++depth) {
      Cluster cluster(w);
      cluster.inject_fault_at_sync_point(w - 1, static_cast<std::uint64_t>(depth),
                                         "fault injection");
      try {
        cluster.run([&](Communicator& comm) {
          std::vector<float> data(64, static_cast<float>(comm.rank()));
          comm.allreduce_sum(data.data(), 64);
          ADD_FAILURE() << "rank " << comm.rank()
                        << " completed the collective past a dead peer (w=" << w
                        << ", depth=" << depth << ")";
        });
        FAIL() << "expected the original error (w=" << w << ", depth=" << depth
               << ")";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "fault injection")
            << "w=" << w << ", depth=" << depth;
      }
    }
  }
}

TEST(TreeFailure, DeathBetweenCollectivesStillReleasesDeepStages) {
  // A rank that dies after k complete all-reduces while peers are in
  // collective k+1: peers sit at an arbitrary tree stage of a LATER
  // collective and must still unwind.
  for (int w : {3, 4, 7}) {
    Cluster cluster(w);
    try {
      cluster.run([&](Communicator& comm) {
        std::vector<float> data(32, 1.0f);
        for (int k = 0;; ++k) {
          if (k == 3 && comm.rank() == w - 1) {
            throw std::runtime_error("died between collectives");
          }
          comm.allreduce_sum(data.data(), 32);
        }
      });
      FAIL() << "expected the original error (w=" << w << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "died between collectives") << "w=" << w;
    }
  }
}

// ---------------------------------------------------------------- store

TEST(DistStoreLocality, PartitionLocalAccessNeverFetches) {
  // Generalized-index access pattern: every rank reads only snapshots
  // it owns.  The ledger must show zero remote traffic and zero
  // modeled seconds.
  const std::int64_t snapshots = 1000;
  const int world = 4;
  DistStore store(snapshots, 4096, world, NetworkModel{});
  for (int rank = 0; rank < world; ++rank) {
    const auto [lo, hi] = store.partition(rank);
    std::vector<std::int64_t> batch;
    for (std::int64_t s = lo; s < hi; s += 7) batch.push_back(s);
    EXPECT_EQ(store.fetch_batch(rank, batch), 0.0) << "rank " << rank;
  }
  const StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 0u);
  EXPECT_EQ(st.remote_bytes, 0u);
  EXPECT_EQ(st.request_messages, 0u);
  EXPECT_EQ(st.modeled_seconds, 0.0);
  EXPECT_GT(st.local_snapshots, 0u);
}

TEST(DistStoreLocality, PartitionsTileTheStoreExactly) {
  const std::int64_t snapshots = 997;  // prime: uneven tail chunk
  const int world = 8;
  DistStore store(snapshots, 128, world, NetworkModel{});
  std::int64_t covered = 0;
  for (int rank = 0; rank < world; ++rank) {
    const auto [lo, hi] = store.partition(rank);
    EXPECT_EQ(lo, covered);
    for (std::int64_t s = lo; s < hi; ++s) EXPECT_EQ(store.owner(s), rank);
    covered = hi;
  }
  EXPECT_EQ(covered, snapshots);
}

}  // namespace
}  // namespace pgti::dist
