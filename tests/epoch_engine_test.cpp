// The shared Trainer/DistTrainer epoch pipeline (DESIGN.md §12):
//
//  * BatchPipeline delivers the inner loader's exact batch sequence at
//    every prefetch depth (the bit-identical-losses contract);
//  * the single-process Trainer runs the same engine at depth 0/1/2/4
//    with identical losses for kIndex AND kGpuIndex, and a prefetched
//    device run hides part of the modeled PCIe leg
//    (exposed_transfer_seconds <= modeled_transfer_seconds);
//  * depth-N PrefetchLoader abort/restart stress — a TSan/ASan target:
//    this suite runs under both sanitizer passes via scripts/check.sh.
#include <gtest/gtest.h>

#include <vector>

#include "core/epoch_engine.h"
#include "core/pgt_i.h"
#include "data/prefetch.h"
#include "data/synthetic.h"

namespace pgti::core {
namespace {

TrainConfig engine_config(BatchingMode mode) {
  TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.model = ModelKind::kPgtDcrnn;
  cfg.mode = mode;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 6;
  cfg.max_val_batches = 3;
  cfg.seed = 99;
  return cfg;
}

void expect_identical_curves(const TrainResult& a, const TrainResult& b,
                             const char* what) {
  ASSERT_EQ(a.curve.size(), b.curve.size()) << what;
  for (std::size_t e = 0; e < a.curve.size(); ++e) {
    EXPECT_EQ(a.curve[e].train_mae, b.curve[e].train_mae) << what << " epoch " << e;
    EXPECT_EQ(a.curve[e].val_mae, b.curve[e].val_mae) << what << " epoch " << e;
  }
  EXPECT_EQ(a.final_test_mse, b.final_test_mse) << what;
}

// ------------------------------------------------- BatchPipeline

TEST(BatchPipeline, DeliversExactSequenceAtEveryDepth) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 7);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 5, 8};

  std::vector<std::vector<std::int64_t>> expected;
  data::DataLoader plain(source, opt, 0, 120);
  plain.start_epoch(3);
  data::Batch b;
  while (plain.next(b)) expected.push_back(b.indices);
  ASSERT_FALSE(expected.empty());

  for (int depth : {0, 1, 2, 4}) {
    data::LoaderOptions dopt = opt;
    dopt.prefetch_lookahead = depth;
    data::DataLoader inner(source, dopt, 0, 120);
    BatchPipeline pipe(inner, depth);
    pipe.start_epoch(3);
    std::size_t i = 0;
    while (pipe.next(b)) {
      ASSERT_LT(i, expected.size()) << "depth " << depth;
      EXPECT_EQ(b.indices, expected[i]) << "depth " << depth << " batch " << i;
      ++i;
    }
    EXPECT_EQ(i, expected.size()) << "depth " << depth;
  }
}

TEST(BatchPipeline, PerBatchHookFiresOncePerDeliveredBatch) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 7);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kNone, 0, 1, 1, 8};
  opt.prefetch_lookahead = 2;
  data::DataLoader inner(source, opt, 0, 64);
  int fired = 0;
  BatchPipeline pipe(inner, 2, [&] { ++fired; });
  pipe.start_epoch(0, /*max_batches=*/5);
  data::Batch b;
  int delivered = 0;
  while (delivered < 5 && pipe.next(b)) ++delivered;
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(fired, 5);
}

// ------------------------------------------------- Trainer depth sweep

TEST(EngineDepthSweep, IndexLossesBitIdenticalAcrossDepths) {
  TrainConfig cfg = engine_config(BatchingMode::kIndex);
  const TrainResult base = Trainer(cfg).run();
  for (int depth : {1, 2, 4}) {
    TrainConfig dcfg = cfg;
    dcfg.prefetch_depth = depth;
    const TrainResult r = Trainer(dcfg).run();
    expect_identical_curves(base, r, ("kIndex depth " + std::to_string(depth)).c_str());
  }
}

TEST(EngineDepthSweep, GpuIndexLossesBitIdenticalAcrossDepths) {
  TrainConfig cfg = engine_config(BatchingMode::kGpuIndex);
  const TrainResult base = Trainer(cfg).run();
  for (int depth : {1, 2, 4}) {
    TrainConfig dcfg = cfg;
    dcfg.prefetch_depth = depth;
    const TrainResult r = Trainer(dcfg).run();
    expect_identical_curves(base, r,
                            ("kGpuIndex depth " + std::to_string(depth)).c_str());
    // GPU-index assembly is device-local: the prefetch worker stages
    // into device-space slots and the per-batch PCIe ledger stays at
    // the single upfront parameter upload, fully exposed.
    EXPECT_EQ(r.transfers.h2d_count, base.transfers.h2d_count);
  }
}

TEST(EngineDepthSweep, PrefetchHidesPartOfTheModeledPcieLeg) {
  // Host-resident index data + device compute: every batch crosses
  // PCIe.  At depth 0 the whole modeled leg is exposed; with a
  // prefetch pipeline the worker uploads ahead of compute and only the
  // remainder stays on the critical path.
  TrainConfig cfg = engine_config(BatchingMode::kIndex);
  const TrainResult sync_r = Trainer(cfg).run();
  ASSERT_GT(sync_r.modeled_transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(sync_r.exposed_transfer_seconds, sync_r.modeled_transfer_seconds);

  TrainConfig pf_cfg = cfg;
  pf_cfg.prefetch_depth = 2;
  const TrainResult pf_r = Trainer(pf_cfg).run();
  // The ledger itself is identical (same batches, same uploads)...
  EXPECT_EQ(pf_r.transfers.h2d_bytes, sync_r.transfers.h2d_bytes);
  EXPECT_NEAR(pf_r.modeled_transfer_seconds, sync_r.modeled_transfer_seconds, 1e-9);
  // ...but part of it hid behind compute.
  EXPECT_LT(pf_r.exposed_transfer_seconds, pf_r.modeled_transfer_seconds);
  EXPECT_GE(pf_r.exposed_transfer_seconds, 0.0);
}

TEST(EngineDepthSweep, StandardModeRunsThroughTheEngineAtDepth) {
  // The engine serves every BatchingMode, not just the index family.
  TrainConfig cfg = engine_config(BatchingMode::kStandard);
  const TrainResult base = Trainer(cfg).run();
  TrainConfig dcfg = cfg;
  dcfg.prefetch_depth = 2;
  const TrainResult r = Trainer(dcfg).run();
  expect_identical_curves(base, r, "kStandard depth 2");
}

// ------------------------------------------------- depth-N stress

TEST(DepthNPrefetchStress, AbortRestartStormKeepsSequencesExactAtDepth3) {
  // The depth-1 storm lives in dist_prefetch_test; this hammers the
  // ring generalization: repeated partial consumption + restarts with
  // three batches of producer lead.
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 9);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 5, 8};

  std::vector<std::vector<std::vector<std::int64_t>>> expected(3);
  data::DataLoader plain(source, opt, 0, 200);
  for (int epoch = 0; epoch < 3; ++epoch) {
    plain.start_epoch(epoch);
    data::Batch b;
    while (plain.next(b)) expected[static_cast<std::size_t>(epoch)].push_back(b.indices);
  }

  data::DataLoader inner(source, opt, 0, 200);
  data::PrefetchLoader prefetch(inner, /*depth=*/3);
  ASSERT_EQ(prefetch.depth(), 3);
  data::Batch b;
  for (int iter = 0; iter < 60; ++iter) {
    const int epoch = iter % 3;
    prefetch.start_epoch(epoch);
    const int consume = iter % 7;  // 0..6 batches, then abandon mid-epoch
    for (int k = 0; k < consume; ++k) {
      ASSERT_TRUE(prefetch.next(b)) << "iter " << iter << " batch " << k;
      ASSERT_EQ(b.indices,
                expected[static_cast<std::size_t>(epoch)][static_cast<std::size_t>(k)])
          << "iter " << iter << " batch " << k;
    }
  }
  // After the storm a full epoch still delivers the exact sequence.
  prefetch.start_epoch(2);
  std::size_t i = 0;
  while (prefetch.next(b)) {
    ASSERT_LT(i, expected[2].size());
    EXPECT_EQ(b.indices, expected[2][i]);
    ++i;
  }
  EXPECT_EQ(i, expected[2].size());
}

}  // namespace
}  // namespace pgti::core
