#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "graph/csr.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

constexpr double kTol = 2e-2;  // float32 central differences

Variable leaf(const Shape& shape, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Variable(Tensor::randn(shape, rng, scale), /*requires_grad=*/true);
}

// ------------------------------------------------------------ mechanics

TEST(Autograd, LeafRequiresGrad) {
  Variable v(Tensor::zeros({2}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_TRUE(v.needs_grad());
}

TEST(Autograd, ConstantHasNoTape) {
  Variable c(Tensor::zeros({2}), false);
  Variable d = ag::mul_scalar(c, 2.0f);
  EXPECT_FALSE(d.needs_grad());
}

TEST(Autograd, BackwardRequiresScalar) {
  Variable v = leaf({3}, 1);
  EXPECT_THROW(v.backward(), std::logic_error);
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  Variable v = leaf({2}, 2);
  Variable loss = ag::sum_all(v);
  loss.backward();
  loss.backward();
  EXPECT_EQ(v.grad().at({0}), 2.0f);
  v.zero_grad();
  EXPECT_EQ(v.grad().at({0}), 0.0f);
}

TEST(Autograd, SharedSubexpressionGradSums) {
  // loss = sum(v + v) -> dv = 2
  Variable v = leaf({3}, 3);
  Variable loss = ag::sum_all(ag::add(v, v));
  loss.backward();
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(v.grad().at({i}), 2.0f, 1e-6f);
}

TEST(Autograd, DetachCutsTape) {
  Variable v = leaf({2}, 4);
  Variable d = v.detach();
  Variable loss = ag::sum_all(ag::mul(d, d));
  loss.backward();
  EXPECT_FALSE(v.has_grad());
}

TEST(Autograd, DiamondGraph) {
  // loss = sum(a*b + a) with both paths through a.
  Variable a(Tensor::full({2}, 3.0f), true);
  Variable b(Tensor::full({2}, 5.0f), true);
  Variable loss = ag::sum_all(ag::add(ag::mul(a, b), a));
  loss.backward();
  EXPECT_NEAR(a.grad().at({0}), 6.0f, 1e-6f);  // b + 1
  EXPECT_NEAR(b.grad().at({0}), 3.0f, 1e-6f);  // a
}

// ------------------------------------------------------------ gradchecks

TEST(GradCheck, Add) {
  Variable a = leaf({3, 4}, 10);
  Variable b = leaf({3, 4}, 11);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::add(x, b)); }, a);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, SubRhs) {
  Variable a = leaf({3, 4}, 12);
  Variable b = leaf({3, 4}, 13);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::sub(a, x)); }, b);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, Mul) {
  Variable a = leaf({2, 5}, 14);
  Variable b = leaf({2, 5}, 15);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::mean_all(ag::mul(x, b)); }, a);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, MatmulLhs) {
  Variable a = leaf({3, 4}, 16);
  Variable b = leaf({4, 2}, 17);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::matmul(x, b)); }, a);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, MatmulRhs) {
  Variable a = leaf({3, 4}, 18);
  Variable b = leaf({4, 2}, 19);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::mean_all(ag::matmul(a, x)); }, b);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, AddBiasBoth) {
  Variable m = leaf({4, 3}, 20);
  Variable bias = leaf({3}, 21);
  auto rm = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::add_bias(x, bias)); }, m);
  EXPECT_LT(rm.max_rel_err, kTol);
  auto rb = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::add_bias(m, x)); }, bias);
  EXPECT_LT(rb.max_rel_err, kTol);
}

TEST(GradCheck, MulColvec) {
  Variable m = leaf({4, 3}, 22);
  Variable col = leaf({4, 1}, 23);
  auto rm = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::mul_colvec(x, col)); }, m);
  EXPECT_LT(rm.max_rel_err, kTol);
  auto rc = ag::gradcheck(
      [&](const Variable& x) { return ag::sum_all(ag::mul_colvec(m, x)); }, col);
  EXPECT_LT(rc.max_rel_err, kTol);
}

class ActivationGradCheck : public ::testing::TestWithParam<int> {};

TEST_P(ActivationGradCheck, MatchesFiniteDifferences) {
  Variable v = leaf({3, 5}, 24 + static_cast<std::uint64_t>(GetParam()));
  const int which = GetParam();
  auto fn = [which](const Variable& x) {
    switch (which) {
      case 0: return ag::sum_all(ag::sigmoid(x));
      case 1: return ag::sum_all(ag::tanh(x));
      case 2: return ag::sum_all(ag::relu(x));
      default: return ag::sum_all(ag::neg(x));
    }
  };
  auto res = ag::gradcheck(fn, v);
  EXPECT_LT(res.max_rel_err, kTol);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGradCheck, ::testing::Range(0, 4));

TEST(GradCheck, Reshape) {
  Variable v = leaf({2, 6}, 30);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        return ag::sum_all(ag::mul(ag::reshape(x, {3, 4}), ag::reshape(x, {3, 4})));
      },
      v);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, ConcatLastdim) {
  Variable a = leaf({3, 2}, 31);
  Variable b = leaf({3, 4}, 32);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        Variable cat = ag::concat_lastdim({x, b});
        return ag::sum_all(ag::mul(cat, cat));
      },
      a);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, SliceDim0) {
  Variable v = leaf({6, 3}, 33);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        Variable s = ag::slice_dim0(x, 1, 3);
        return ag::sum_all(ag::mul(s, s));
      },
      v);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, SliceLastdim) {
  Variable v = leaf({4, 6}, 34);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        Variable s = ag::slice_lastdim(x, 2, 3);
        return ag::sum_all(ag::mul(s, s));
      },
      v);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, SoftmaxLastdim) {
  Variable v = leaf({3, 4}, 35);
  Rng rng(99);
  Tensor w = Tensor::randn({3, 4}, rng);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        return ag::sum_all(ag::mul(ag::softmax_lastdim(x), Variable(w, false)));
      },
      v);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, LayerNormInput) {
  Variable v = leaf({4, 6}, 36);
  Variable gamma(Tensor::ones({6}), true);
  Variable beta(Tensor::zeros({6}), true);
  Rng rng(100);
  Tensor w = Tensor::randn({4, 6}, rng);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        return ag::sum_all(ag::mul(ag::layer_norm(x, gamma, beta), Variable(w, false)));
      },
      v, /*eps=*/3e-3f);
  EXPECT_LT(res.max_rel_err, 6e-2);
}

TEST(GradCheck, LayerNormAffineParams) {
  Variable v = leaf({4, 6}, 37);
  Variable gamma(Tensor::ones({6}), true);
  Variable beta(Tensor::zeros({6}), true);
  Rng rng(101);
  Tensor w = Tensor::randn({4, 6}, rng);
  auto fn = [&](const Variable&) {
    return ag::sum_all(ag::mul(ag::layer_norm(v, gamma, beta), Variable(w, false)));
  };
  auto rg = ag::gradcheck([&](const Variable&) { return fn(gamma); }, gamma);
  EXPECT_LT(rg.max_rel_err, kTol);
  auto rb = ag::gradcheck([&](const Variable&) { return fn(beta); }, beta);
  EXPECT_LT(rb.max_rel_err, kTol);
}

TEST(GradCheck, Spmm2d) {
  Csr p = Csr::from_coo(3, 3, {{0, 1, 0.5f}, {1, 0, 0.25f}, {1, 2, 0.75f}, {2, 2, 1.0f}});
  Csr pt = p.transpose();
  Variable x = leaf({3, 4}, 38);
  auto res = ag::gradcheck(
      [&](const Variable& v) {
        Variable y = ag::spmm(p, pt, v);
        return ag::sum_all(ag::mul(y, y));
      },
      x);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, SpmmBatched) {
  Csr p = Csr::from_coo(3, 3, {{0, 1, 0.5f}, {1, 0, 0.25f}, {2, 1, 0.5f}, {2, 2, 1.0f}});
  Csr pt = p.transpose();
  Variable x = leaf({2, 3, 2}, 39);
  auto res = ag::gradcheck(
      [&](const Variable& v) {
        Variable y = ag::spmm(p, pt, v);
        return ag::sum_all(ag::mul(y, y));
      },
      x);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, BatchedAttentionQkv) {
  const std::int64_t batch = 2, tokens = 3, dim = 4;
  Variable q = leaf({batch * tokens, dim}, 40, 0.5f);
  Variable k = leaf({batch * tokens, dim}, 41, 0.5f);
  Variable v = leaf({batch * tokens, dim}, 42, 0.5f);
  Rng rng(102);
  Tensor w = Tensor::randn({batch * tokens, dim}, rng);
  auto make_fn = [&](Variable& target) {
    return ag::gradcheck(
        [&](const Variable&) {
          Variable out = ag::batched_attention(q, k, v, batch, tokens);
          return ag::sum_all(ag::mul(out, Variable(w, false)));
        },
        target, /*eps=*/3e-3f);
  };
  EXPECT_LT(make_fn(q).max_rel_err, 6e-2);
  EXPECT_LT(make_fn(k).max_rel_err, 6e-2);
  EXPECT_LT(make_fn(v).max_rel_err, 6e-2);
}

TEST(GradCheck, MaeLoss) {
  // Keep inputs away from the |.| kink.
  Variable pred(Tensor::from_vector({1.0f, -2.0f, 3.0f}), true);
  Tensor target = Tensor::from_vector({0.0f, 0.0f, 0.0f});
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::mae_loss(x, target); }, pred, 1e-4f);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, MseLoss) {
  Variable pred = leaf({4, 3}, 43);
  Rng rng(103);
  Tensor target = Tensor::randn({4, 3}, rng);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::mse_loss(x, target); }, pred);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, MeanAll) {
  Variable v = leaf({5}, 44);
  auto res = ag::gradcheck(
      [&](const Variable& x) { return ag::mean_all(ag::mul(x, x)); }, v);
  EXPECT_LT(res.max_rel_err, kTol);
}

TEST(GradCheck, DeepChain) {
  Variable v = leaf({3, 3}, 45, 0.3f);
  auto res = ag::gradcheck(
      [&](const Variable& x) {
        Variable h = x;
        for (int i = 0; i < 5; ++i) h = ag::tanh(ag::add(ag::mul(h, h), x));
        return ag::mean_all(h);
      },
      v);
  EXPECT_LT(res.max_rel_err, 5e-2);
}

// Numerical identities.

TEST(AutogradValues, SpmmMatchesDense) {
  Csr p = Csr::from_coo(4, 4, {{0, 1, 2.0f}, {1, 2, 3.0f}, {2, 0, 1.0f}, {3, 3, 0.5f}});
  Rng rng(200);
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor via_sparse = p.spmm(x);
  Tensor via_dense = ops::matmul(p.to_dense(), x);
  EXPECT_LT(ops::max_abs_diff(via_sparse, via_dense), 1e-5f);
}

TEST(AutogradValues, AttentionRowsMixValues) {
  // With identical queries/keys, attention averages values per batch.
  const std::int64_t batch = 1, tokens = 3, dim = 2;
  Variable q(Tensor::zeros({tokens, dim}), false);
  Variable k(Tensor::zeros({tokens, dim}), false);
  Tensor vals = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape({3, 2});
  Variable v(vals, false);
  Variable out = ag::batched_attention(q, k, v, batch, tokens);
  // uniform attention -> each row = column means (3, 4)
  for (std::int64_t t = 0; t < tokens; ++t) {
    EXPECT_NEAR(out.value().at({t, 0}), 3.0f, 1e-5f);
    EXPECT_NEAR(out.value().at({t, 1}), 4.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace pgti
