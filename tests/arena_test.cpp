// The alloc-free steady state (DESIGN.md §16): TensorArena bucket
// reuse and high-water planning, ArenaScope nesting and exception
// unwinding, MemoryTracker limits enforced through the arena,
// WorkspaceCache recycling for the matmul_nt transpose scratch, the
// fused backward epilogue's bit-parity and gradcheck, and the
// end-to-end claims — losses bit-identical arena-on vs arena-off for
// every strategy x world x prefetch depth, and zero heap allocations
// per train step after the first (planning) step.
#include <gtest/gtest.h>

#include <cstring>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "core/dist_trainer.h"
#include "core/pgt_i.h"
#include "data/dataset_spec.h"
#include "data/prefetch.h"
#include "runtime/arena.h"
#include "runtime/workspace.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

using runtime::ArenaScope;
using runtime::TensorArena;
using runtime::WorkspaceCache;

// Restores the process-wide arena toggle even if a test fails mid-way.
struct ArenaToggleGuard {
  explicit ArenaToggleGuard(bool enabled) { runtime::set_arena_enabled(enabled); }
  ~ArenaToggleGuard() { runtime::set_arena_enabled(true); }
};

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

// -------------------------------------------------------------- arena core

TEST(TensorArena, FirstStepPlansLaterStepsRecycle) {
  TensorArena arena;
  const auto step = [&arena] {
    ArenaScope scope(arena);
    Tensor a = Tensor::empty({100});        // 128-float bucket
    Tensor b = Tensor::empty({100});        // second live 128-float block
    Tensor c = Tensor::empty({1000});       // 1024-float bucket
    Tensor d = ops::add(a, b);              // third 128-float block
    (void)c;
    (void)d;
  };

  const std::uint64_t heap_before = MemoryTracker::instance().heap_allocs_total();
  step();  // planning: everything comes from the heap
  const runtime::ArenaStats planned = arena.stats();
  EXPECT_EQ(planned.heap_blocks, 4u);
  EXPECT_EQ(planned.pool_hits, 0u);
  EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - heap_before, 4u);

  // High-water demand was recorded per bucket: three simultaneous
  // 128-float blocks, one 1024-float block, everything back in the pool.
  ASSERT_EQ(planned.buckets.size(), 2u);
  for (const runtime::ArenaBucketStats& b : planned.buckets) {
    EXPECT_EQ(b.outstanding, 0u);
    EXPECT_EQ(b.pooled, b.heap_blocks);
    EXPECT_EQ(b.high_water, b.capacity == 128 ? 3u : 1u);
  }

  // Steady state: identical steps replay against the pool — zero heap.
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
    step();
    EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  }
  const runtime::ArenaStats warm = arena.stats();
  EXPECT_EQ(warm.heap_blocks, 4u);
  EXPECT_EQ(warm.pool_hits, 12u);
  EXPECT_EQ(warm.bytes_reserved, (3u * 128u + 1024u) * sizeof(float));
}

TEST(TensorArena, TrackerChargeIsExactAndRefunded) {
  TensorArena arena;
  auto& tracker = MemoryTracker::instance();
  const std::size_t base = tracker.current(kHostSpace);
  {
    ArenaScope scope(arena);
    Tensor t = Tensor::empty({100});  // bucket rounds to 128 floats...
    // ...but the paper's accounting charges the requested tensor bytes.
    EXPECT_EQ(tracker.current(kHostSpace), base + 100 * sizeof(float));
  }
  EXPECT_EQ(tracker.current(kHostSpace), base);  // refunded on release
  {
    ArenaScope scope(arena);
    Tensor t = Tensor::empty({100});  // pool hit charges the same bytes
    EXPECT_EQ(tracker.current(kHostSpace), base + 100 * sizeof(float));
  }
  EXPECT_EQ(tracker.current(kHostSpace), base);
}

TEST(TensorArena, BlocksOutliveScopeAndArena) {
  Tensor survivor;
  {
    TensorArena arena;
    ArenaScope scope(arena);
    survivor = Tensor::full({64}, 3.5f);
  }  // scope AND arena destroyed; the block keeps the pool state alive
  for (std::int64_t i = 0; i < survivor.numel(); ++i) {
    EXPECT_EQ(survivor.data()[i], 3.5f);
  }
  survivor = Tensor();  // last release frees the dead arena's pool
}

TEST(ArenaScope, NestingRestoresThePreviousArena) {
  EXPECT_EQ(runtime::current_arena(), nullptr);
  TensorArena outer, inner;
  {
    ArenaScope s1(outer);
    EXPECT_EQ(runtime::current_arena(), &outer);
    {
      ArenaScope s2(inner);
      EXPECT_EQ(runtime::current_arena(), &inner);
    }
    EXPECT_EQ(runtime::current_arena(), &outer);
  }
  EXPECT_EQ(runtime::current_arena(), nullptr);
}

TEST(ArenaScope, ExceptionUnwindReleasesBlocksAndRestoresScope) {
  TensorArena arena;
  try {
    ArenaScope scope(arena);
    Tensor t = Tensor::empty({256});
    throw std::runtime_error("mid-step failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(runtime::current_arena(), nullptr);
  const runtime::ArenaStats s = arena.stats();
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_EQ(s.buckets[0].outstanding, 0u);  // unwound back to the pool
  EXPECT_EQ(s.buckets[0].pooled, 1u);
  {
    ArenaScope scope(arena);
    Tensor t = Tensor::empty({256});  // recycles the unwound block
  }
  EXPECT_EQ(arena.stats().pool_hits, 1u);
}

TEST(ArenaScope, DisabledToggleFallsBackToHeap) {
  ArenaToggleGuard off(false);
  TensorArena arena;
  ArenaScope scope(arena);
  EXPECT_EQ(runtime::current_arena(), nullptr);
  const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
  Tensor t = Tensor::empty({128});
  EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - h0, 1u);
  EXPECT_EQ(arena.stats().heap_blocks, 0u);
}

TEST(TensorArena, MemoryTrackerLimitEnforcedThroughArena) {
  auto& tracker = MemoryTracker::instance();
  const MemorySpaceId space = tracker.register_space("arena-limit-space");
  TensorArena arena;

  tracker.set_limit(space, 100);  // below the 256-float request
  {
    ArenaScope scope(arena);
    EXPECT_THROW(Tensor::empty({256}, space), OutOfMemoryError);
  }
  EXPECT_EQ(tracker.current(space), 0u);  // failed charge left no usage
  EXPECT_EQ(arena.stats().heap_blocks, 0u);  // and no block was taken

  tracker.set_limit(space, 4096);
  {
    ArenaScope scope(arena);
    Tensor ok = Tensor::empty({256}, space);
  }
  // The pool now holds a fitting block, but the limit applies to the
  // charge, not the heap: a pool-served acquisition must still OOM.
  tracker.set_limit(space, 100);
  {
    ArenaScope scope(arena);
    EXPECT_THROW(Tensor::empty({256}, space), OutOfMemoryError);
  }
  EXPECT_EQ(tracker.current(space), 0u);
  EXPECT_EQ(arena.stats().buckets[0].pooled, 1u);  // pool intact
  tracker.set_limit(space, 0);
}

// --------------------------------------------------------- workspace cache

TEST(WorkspaceCache, MatmulNtScratchOneAllocationAcross100BackwardSteps) {
  // Deliberately odd shapes so this key is unique to the test.
  Rng rng(7);
  const Tensor g = Tensor::randn({31, 37}, rng);
  const Tensor w = Tensor::randn({23, 37}, rng);
  const auto before = WorkspaceCache::instance().stats();
  Tensor first = ops::matmul_nt(g, w);
  for (int i = 0; i < 99; ++i) {
    Tensor da = ops::matmul_nt(g, w);
    ASSERT_TRUE(same_bits(da, first));
  }
  const auto after = WorkspaceCache::instance().stats();
  EXPECT_EQ(after.acquires - before.acquires, 100u);
  EXPECT_EQ(after.allocations - before.allocations, 1u);
}

TEST(WorkspaceCache, ConcurrentLeasesOfOneKeyGetDistinctBuffers) {
  auto h1 = WorkspaceCache::instance().acquire("arena-test-key", 512);
  auto h2 = WorkspaceCache::instance().acquire("arena-test-key", 512);
  EXPECT_NE(h1.data(), h2.data());
  float* p1 = h1.data();
  h1.reset();
  auto h3 = WorkspaceCache::instance().acquire("arena-test-key", 512);
  EXPECT_EQ(h3.data(), p1);  // released buffer is recycled
}

// ------------------------------------------------- fused backward epilogue

TEST(FusedEpilogue, BitIdenticalToReferenceCompositionAllActivations) {
  Rng rng(11);
  const std::int64_t M = 33, K = 17, N = 29;
  for (ops::Act act : {ops::Act::kSigmoid, ops::Act::kTanh, ops::Act::kRelu,
                       ops::Act::kIdentity}) {
    const Tensor g = Tensor::randn({M, K}, rng);
    Tensor y = Tensor::randn({M, K}, rng);
    ops::apply_act_(y, act);  // saved forward output (activation range)
    const Tensor w = Tensor::randn({N, K}, rng);

    const Tensor dz_ref = ops::act_backward(g, y, act);
    const Tensor da_ref = ops::matmul_nt(dz_ref, w);

    Tensor dz = Tensor::empty({M, K});
    const Tensor da = ops::matmul_nt_act_backward(g, y, act, w, dz);
    EXPECT_TRUE(same_bits(da, da_ref)) << "act " << static_cast<int>(act);
    EXPECT_TRUE(same_bits(dz, dz_ref)) << "act " << static_cast<int>(act);
  }
}

TEST(FusedEpilogue, GradcheckMatmulBiasActThroughFusedBackward) {
  for (ops::Act act : {ops::Act::kSigmoid, ops::Act::kTanh}) {
    Rng rng(13 + static_cast<std::uint64_t>(act));
    Variable a(Tensor::randn({5, 4}, rng, 0.5f), true);
    Variable w(Tensor::randn({4, 3}, rng, 0.5f), true);
    Variable bias(Tensor::randn({3}, rng, 0.5f), true);
    const auto fn_a = [&](const Variable& x) {
      return ag::sum_all(ag::matmul_bias_act(x, w, bias, act));
    };
    EXPECT_LT(ag::gradcheck(fn_a, a).max_rel_err, 2e-2);
    const auto fn_w = [&](const Variable& x) {
      return ag::sum_all(ag::matmul_bias_act(a, x, bias, act));
    };
    EXPECT_LT(ag::gradcheck(fn_w, w).max_rel_err, 2e-2);
    const auto fn_b = [&](const Variable& x) {
      return ag::sum_all(ag::matmul_bias_act(a, w, x, act));
    };
    EXPECT_LT(ag::gradcheck(fn_b, bias).max_rel_err, 2e-2);
  }
}

// ------------------------------------------------------- end-to-end claims

core::TrainConfig tiny_train() {
  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = core::BatchingMode::kIndex;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 6;
  cfg.max_val_batches = 3;
  cfg.use_device = false;
  cfg.seed = 99;
  return cfg;
}

TEST(ArenaTrainer, SteadyStateTrainStepIsAllocFree) {
  core::TrainResult r = core::Trainer(tiny_train()).run();
  ASSERT_EQ(r.curve.size(), 2u);
  // Epoch 2 replays epoch 1's shapes: by the final step every tensor of
  // the step — batch assembly included — comes from the arena pool.
  EXPECT_EQ(r.allocs_last_step, 0u);
}

TEST(ArenaTrainer, ArenaOffMatchesSeedAllocatorButAllocates) {
  ArenaToggleGuard off(false);
  core::TrainResult r = core::Trainer(tiny_train()).run();
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_GT(r.allocs_last_step, 0u);  // every step pays heap traffic
}

core::DistConfig tiny_dist(core::DistMode mode, int world, int depth) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.prefetch_depth = depth;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 2;
  cfg.max_val_batches = 1;
  cfg.seed = 53;
  return cfg;
}

TEST(ArenaTrainer, LossesBitIdenticalArenaOnVsOffAllStrategiesWorldsDepths) {
  // The determinism gate for this PR: recycling blocks (uninitialized
  // on reuse) must not perturb a single loss bit anywhere — if any
  // kernel read memory it had not written, this sweep would diverge.
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kBaselineDdp,
        core::DistMode::kGeneralizedIndex,
        core::DistMode::kBaselineDdpBatchShuffle}) {
    for (int world : {1, 2, 4}) {
      for (int depth : {0, 2}) {
        core::DistResult off, on;
        {
          ArenaToggleGuard guard(false);
          off = core::DistTrainer(tiny_dist(mode, world, depth)).run();
        }
        on = core::DistTrainer(tiny_dist(mode, world, depth)).run();
        ASSERT_EQ(on.curve.size(), off.curve.size());
        for (std::size_t e = 0; e < off.curve.size(); ++e) {
          EXPECT_EQ(on.curve[e].train_mae, off.curve[e].train_mae)
              << "mode " << static_cast<int>(mode) << " world " << world
              << " depth " << depth << " epoch " << e;
          EXPECT_EQ(on.curve[e].val_mae, off.curve[e].val_mae)
              << "mode " << static_cast<int>(mode) << " world " << world
              << " depth " << depth << " epoch " << e;
        }
      }
    }
  }
}

// -------------------------------------------- staging-thread arena scopes

TEST(ArenaStaging, PrefetchWorkerStagingAllocFreeAfterPlanningEpoch) {
  // The prefetch worker's staging buffers (the inner loader's reusable
  // batch tensors and the ring slots' deep copies) allocate on the
  // worker thread.  drop_last=false makes the tail batch a second
  // shape, so every epoch re-allocates slot buffers when the shapes
  // alternate — unless the worker runs under an ArenaScope, in which
  // case the first epoch plans both size classes and every later epoch
  // stages from the pool.
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 7);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.drop_last = false;  // tail batch: a second staging shape per epoch
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 5, 8};

  const auto run_epochs = [&](data::PrefetchLoader& pf, int first, int count) {
    data::Batch b;
    for (int e = first; e < first + count; ++e) {
      pf.start_epoch(e);
      while (pf.next(b)) {
      }
    }
  };

  std::uint64_t steady_with_arena = 0;
  {
    data::DataLoader inner(source, opt, 0, 100);  // 100 % 8 != 0 -> real tail
    data::PrefetchLoader pf(inner, /*depth=*/2);
    run_epochs(pf, 0, 2);  // planning epoch + one full recycle pass
    const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
    run_epochs(pf, 2, 3);
    steady_with_arena = MemoryTracker::instance().heap_allocs_total() - h0;
    EXPECT_EQ(steady_with_arena, 0u);
    EXPECT_GT(pf.arena_stats().pool_hits, 0u);
  }

  // Control: the identical pipeline with the arena feature off keeps
  // hitting the heap every epoch (the tail-batch shape churn), proving
  // the assertion above measures the worker's scope and not some other
  // buffer reuse.
  {
    ArenaToggleGuard guard(false);
    data::DataLoader inner(source, opt, 0, 100);
    data::PrefetchLoader pf(inner, /*depth=*/2);
    run_epochs(pf, 0, 2);
    const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
    run_epochs(pf, 2, 3);
    EXPECT_GT(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  }
}

TEST(ArenaStaging, DistStoreStagerRecyclesRemoteCloneBlocks) {
  // The async store's staging thread clones remote snapshots every
  // epoch; a zero-capacity cache evicts each copy right after its
  // consume, so without the stager's ArenaScope every cycle re-clones
  // from the heap.  With the scope, cycle 1 plans and later cycles
  // pool-hit.
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 7);

  const auto cycles = [&](dist::DistStore& store, int rank, int count) {
    // Remote ids for rank 0: rank 1's shard.
    const auto [lo, hi] = store.partition(1);
    std::vector<std::int64_t> ids;
    for (std::int64_t i = lo; i < std::min(hi, lo + 6); ++i) ids.push_back(i);
    for (int c = 0; c < count; ++c) {
      store.prefetch_batch(rank, ids);
      for (std::int64_t i : ids) (void)store.fetch(rank, i);
    }
  };

  {
    data::StandardDataset dsa(raw, spec);
    dist::DistStore store(std::move(dsa), /*world=*/2, dist::NetworkModel{},
                          /*consolidate=*/true, /*cache_snapshots=*/0,
                          /*cache_bytes=*/0, /*async_prefetch=*/true);
    cycles(store, 0, 2);  // planning cycle + one recycle pass
    const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
    cycles(store, 0, 4);
    EXPECT_EQ(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  }

  {
    ArenaToggleGuard guard(false);
    data::StandardDataset dsb(raw, spec);
    dist::DistStore store(std::move(dsb), /*world=*/2, dist::NetworkModel{},
                          /*consolidate=*/true, /*cache_snapshots=*/0,
                          /*cache_bytes=*/0, /*async_prefetch=*/true);
    cycles(store, 0, 2);
    const std::uint64_t h0 = MemoryTracker::instance().heap_allocs_total();
    cycles(store, 0, 4);
    EXPECT_GT(MemoryTracker::instance().heap_allocs_total() - h0, 0u);
  }
}

}  // namespace
}  // namespace pgti
