#include <gtest/gtest.h>

#include <cmath>

#include "graph/csr.h"
#include "graph/spatial.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

TEST(Csr, FromCooBasics) {
  Csr m = Csr::from_coo(2, 3, {{0, 1, 2.0f}, {1, 0, 3.0f}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 2);
  Tensor d = m.to_dense();
  EXPECT_EQ(d.at({0, 1}), 2.0f);
  EXPECT_EQ(d.at({1, 0}), 3.0f);
  EXPECT_EQ(d.at({0, 0}), 0.0f);
}

TEST(Csr, DuplicatesSummed) {
  Csr m = Csr::from_coo(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.to_dense().at({0, 0}), 3.5f);
}

TEST(Csr, OutOfBoundsEntryThrows) {
  EXPECT_THROW(Csr::from_coo(2, 2, {{2, 0, 1.0f}}), std::out_of_range);
}

TEST(Csr, Identity) {
  Csr i = Csr::identity(3);
  Rng rng(1);
  Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_LT(ops::max_abs_diff(i.spmm(x), x), 1e-7f);
}

TEST(Csr, TransposeCorrect) {
  Csr m = Csr::from_coo(2, 3, {{0, 2, 5.0f}, {1, 1, 7.0f}});
  Csr t = m.transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.to_dense().at({2, 0}), 5.0f);
  EXPECT_EQ(t.to_dense().at({1, 1}), 7.0f);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  Csr m = Csr::from_coo(3, 3, {{0, 1, 1.0f}, {1, 2, 2.0f}, {2, 0, 3.0f}});
  EXPECT_LT(ops::max_abs_diff(m.transpose().transpose().to_dense(), m.to_dense()), 0.0f + 1e-9f);
}

TEST(Csr, RowNormalizedIsStochastic) {
  Csr m = Csr::from_coo(3, 3,
                        {{0, 0, 2.0f}, {0, 1, 2.0f}, {1, 2, 5.0f}, {2, 0, 1.0f},
                         {2, 1, 1.0f}, {2, 2, 2.0f}});
  const auto sums = m.row_normalized().row_sums();
  for (float s : sums) EXPECT_NEAR(s, 1.0f, 1e-6f);
}

TEST(Csr, RowNormalizedKeepsZeroRows) {
  Csr m = Csr::from_coo(2, 2, {{0, 0, 3.0f}});
  const auto sums = m.row_normalized().row_sums();
  EXPECT_NEAR(sums[0], 1.0f, 1e-6f);
  EXPECT_EQ(sums[1], 0.0f);
}

TEST(Csr, SpmmMatchesDense) {
  Csr m = Csr::from_coo(3, 4, {{0, 0, 1.0f}, {0, 3, 2.0f}, {1, 1, 3.0f}, {2, 2, 4.0f}});
  Rng rng(2);
  Tensor x = Tensor::randn({4, 5}, rng);
  EXPECT_LT(ops::max_abs_diff(m.spmm(x), ops::matmul(m.to_dense(), x)), 1e-5f);
}

TEST(Csr, SpmmShapeChecked) {
  Csr m = Csr::identity(3);
  EXPECT_THROW(m.spmm(Tensor::zeros({4, 2})), std::invalid_argument);
  EXPECT_THROW(m.spmm_batched(Tensor::zeros({2, 4, 2})), std::invalid_argument);
}

TEST(Csr, SpmmBatchedMatchesPerItem) {
  Csr m = Csr::from_coo(3, 3, {{0, 1, 0.5f}, {1, 0, 0.5f}, {2, 2, 1.0f}});
  Rng rng(3);
  Tensor x = Tensor::randn({4, 3, 2}, rng);
  Tensor batched = m.spmm_batched(x);
  for (std::int64_t b = 0; b < 4; ++b) {
    Tensor single = m.spmm(x.select(0, b).contiguous());
    EXPECT_LT(ops::max_abs_diff(batched.select(0, b).contiguous(), single), 1e-6f);
  }
}

// --------------------------------------------------------------- spatial

TEST(SensorNetwork, DeterministicInSeed) {
  SensorNetworkOptions opt;
  opt.num_nodes = 30;
  opt.seed = 5;
  SensorNetwork a = build_sensor_network(opt);
  SensorNetwork b = build_sensor_network(opt);
  EXPECT_EQ(a.adjacency.nnz(), b.adjacency.nnz());
  EXPECT_EQ(a.x, b.x);
}

TEST(SensorNetwork, HasSelfLoopsAndNeighbors) {
  SensorNetworkOptions opt;
  opt.num_nodes = 20;
  opt.k_neighbors = 4;
  SensorNetwork net = build_sensor_network(opt);
  Tensor d = net.adjacency.to_dense();
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(d.at({i, i}), 1.0f, 1e-6f);  // self distance 0 -> weight 1
  }
  EXPECT_GT(net.adjacency.nnz(), 20);  // more than just self loops
}

TEST(SensorNetwork, WeightsDecayWithDistance) {
  SensorNetworkOptions opt;
  opt.num_nodes = 50;
  opt.seed = 9;
  SensorNetwork net = build_sensor_network(opt);
  // Every off-diagonal weight equals exp(-d^2/sigma^2) for its edge.
  const float sigma2 = opt.kernel_sigma * opt.kernel_sigma;
  for (std::int64_t r = 0; r < 5; ++r) {
    for (std::int64_t k = net.adjacency.row_ptr()[static_cast<std::size_t>(r)];
         k < net.adjacency.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = net.adjacency.col_idx()[static_cast<std::size_t>(k)];
      const float dx = net.x[static_cast<std::size_t>(r)] - net.x[static_cast<std::size_t>(c)];
      const float dy = net.y[static_cast<std::size_t>(r)] - net.y[static_cast<std::size_t>(c)];
      const float expected = std::exp(-(dx * dx + dy * dy) / sigma2);
      EXPECT_NEAR(net.adjacency.values()[static_cast<std::size_t>(k)], expected, 1e-5f);
    }
  }
}

TEST(SensorNetwork, ThresholdDropsWeakEdges) {
  SensorNetworkOptions opt;
  opt.num_nodes = 40;
  opt.weight_threshold = 0.5f;
  SensorNetwork net = build_sensor_network(opt);
  for (float v : net.adjacency.values()) EXPECT_GE(v, 0.5f);
}

TEST(Supports, DualRandomWalkAreStochastic) {
  SensorNetworkOptions opt;
  opt.num_nodes = 25;
  SensorNetwork net = build_sensor_network(opt);
  const auto supports = dual_random_walk_supports(net.adjacency);
  ASSERT_EQ(supports.size(), 2u);
  for (const Csr& s : supports) {
    for (float sum : s.row_sums()) {
      if (sum != 0.0f) {
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
      }
    }
  }
}

TEST(Supports, SymNormSymmetricForSymmetricInput) {
  // Build a symmetric adjacency and verify D^-1/2 (W+I) D^-1/2 symmetry.
  Csr w = Csr::from_coo(3, 3, {{0, 1, 2.0f}, {1, 0, 2.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  Tensor d = sym_norm_adjacency(w).to_dense();
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(d.at({i, j}), d.at({j, i}), 1e-6f);
    }
  }
}

TEST(Supports, SymNormEigenvaluesBounded) {
  // Power iteration: spectral radius of sym-norm adjacency is <= 1.
  SensorNetworkOptions opt;
  opt.num_nodes = 30;
  SensorNetwork net = build_sensor_network(opt);
  Csr a = sym_norm_adjacency(net.adjacency);
  Rng rng(7);
  Tensor v = Tensor::randn({30, 1}, rng);
  for (int it = 0; it < 50; ++it) {
    v = a.spmm(v);
    const float norm = std::sqrt(static_cast<float>(ops::sum(ops::mul(v, v))));
    ASSERT_GT(norm, 0.0f);
    ops::scale_(v, 1.0f / norm);
  }
  Tensor av = a.spmm(v);
  const float lambda = static_cast<float>(ops::sum(ops::mul(v, av)));
  EXPECT_LE(std::fabs(lambda), 1.0f + 1e-3f);
}

class SupportSizes : public ::testing::TestWithParam<int> {};

TEST_P(SupportSizes, TransitionPreservesConstantVector) {
  // Row-stochastic P maps the all-ones vector to itself.
  SensorNetworkOptions opt;
  opt.num_nodes = GetParam();
  SensorNetwork net = build_sensor_network(opt);
  Csr p = net.adjacency.row_normalized();
  Tensor ones = Tensor::ones({GetParam(), 1});
  EXPECT_LT(ops::max_abs_diff(p.spmm(ones), ones), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SupportSizes, ::testing::Values(8, 16, 64, 128));

// ---- exactness of the counting transpose / single-pass row kernels ----
// The O(nnz) counting transpose and the fused row_sums/row_normalized
// sweep must reproduce the old COO-round-trip / per-row double-loop
// results EXACTLY (same arrays, same bits), since normalized supports
// feed the bit-determinism suites.

Csr random_sparse(std::int64_t rows, std::int64_t cols, std::int64_t nnz,
                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(nnz));
  for (std::int64_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(cols)));
    entries.push_back(CooEntry{r, c, static_cast<float>(rng.uniform(0.1, 1.1))});
  }
  return Csr::from_coo(rows, cols, std::move(entries));
}

// The pre-optimization transpose: emit swapped COO entries, rebuild.
Csr coo_round_trip_transpose(const Csr& m) {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(m.nnz()));
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    for (std::int64_t k = m.row_ptr()[static_cast<std::size_t>(r)];
         k < m.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      entries.push_back(CooEntry{m.col_idx()[static_cast<std::size_t>(k)], r,
                                 m.values()[static_cast<std::size_t>(k)]});
    }
  }
  return Csr::from_coo(m.cols(), m.rows(), std::move(entries));
}

TEST(Csr, CountingTransposeExactlyMatchesCooRoundTrip) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Csr m = random_sparse(37, 53, 400, seed);
    const Csr got = m.transpose();
    const Csr want = coo_round_trip_transpose(m);
    EXPECT_EQ(got.rows(), want.rows());
    EXPECT_EQ(got.cols(), want.cols());
    EXPECT_EQ(got.row_ptr(), want.row_ptr());
    EXPECT_EQ(got.col_idx(), want.col_idx());
    ASSERT_EQ(got.values().size(), want.values().size());
    for (std::size_t i = 0; i < got.values().size(); ++i) {
      // Bitwise, not approximate: the scatter must move each value
      // untouched into the canonical sorted position.
      EXPECT_EQ(got.values()[i], want.values()[i]) << "value " << i;
    }
  }
}

TEST(Csr, CountingTransposeHandlesEmptyRowsAndCols) {
  // Row 1 empty; column 0 never referenced -> empty row in transpose.
  const Csr m = Csr::from_coo(3, 4, {{0, 2, 1.0f}, {2, 1, 2.0f}, {2, 3, 3.0f}});
  const Csr t = m.transpose();
  const Csr want = coo_round_trip_transpose(m);
  EXPECT_EQ(t.row_ptr(), want.row_ptr());
  EXPECT_EQ(t.col_idx(), want.col_idx());
  EXPECT_EQ(t.values(), want.values());
}

TEST(Csr, RowSumsExactlyMatchPerRowLoop) {
  const Csr m = random_sparse(41, 41, 300, 9);
  const std::vector<float> got = m.row_sums();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(m.rows()));
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    // Old path: left-to-right float accumulation within each row.
    float want = 0.0f;
    for (std::int64_t k = m.row_ptr()[static_cast<std::size_t>(r)];
         k < m.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      want += m.values()[static_cast<std::size_t>(k)];
    }
    EXPECT_EQ(got[static_cast<std::size_t>(r)], want) << "row " << r;
  }
}

TEST(Csr, RowNormalizedExactlyMatchesPerRowScaling) {
  Csr m = random_sparse(29, 29, 200, 10);
  const Csr got = m.row_normalized();
  const std::vector<float> sums = m.row_sums();
  EXPECT_EQ(got.row_ptr(), m.row_ptr());
  EXPECT_EQ(got.col_idx(), m.col_idx());
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    const float s = sums[static_cast<std::size_t>(r)];
    for (std::int64_t k = m.row_ptr()[static_cast<std::size_t>(r)];
         k < m.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const float want = s == 0.0f
                             ? m.values()[static_cast<std::size_t>(k)]
                             : m.values()[static_cast<std::size_t>(k)] * (1.0f / s);
      EXPECT_EQ(got.values()[static_cast<std::size_t>(k)], want)
          << "row " << r << " entry " << k;
    }
  }
}

}  // namespace
}  // namespace pgti
