// The prefetch/caching data path, end to end:
//
//  * regression: a zero/tiny-capacity cache must never double-price an
//    announced consolidated fetch (announced snapshots are pinned
//    until consumed);
//  * the bytes-bounded LRU mode;
//  * the async per-rank staging pipeline: identical ledger to the
//    synchronous path, bit-exact data, and the overlapped/exposed
//    split of modeled fetch time;
//  * PrefetchLoader abort/restart stress (a TSan target — this suite
//    runs under PGTI_SANITIZE=thread via scripts/check.sh);
//  * DistTrainer with prefetch on vs off: bit-identical losses,
//    strictly lower exposed fetch time, ledger invariant intact;
//  * the depth-N generalization: losses bit-identical across
//    prefetch_depth in {0, 1, 2, 4} for all four strategies, the
//    priced ledger independent of depth, truncated-epoch
//    reconciliation at depth > 1, and the schedule-aware eviction
//    policy (a snapshot scheduled for a nearer-future batch outlives
//    already-consumed residue).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/dist_trainer.h"
#include "data/prefetch.h"
#include "data/snapshot_provider.h"
#include "data/synthetic.h"
#include "dist/dist_store.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

data::StandardDataset tiny_dataset() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, /*seed=*/21);
  return data::StandardDataset(raw, spec);
}

// --------------------------------------------- pinning / tiny caches

TEST(StoreCache, ZeroCapacityCacheDoesNotDoublePriceAnnouncedBatch) {
  // Regression: with cache_snapshots_per_rank = 0 the just-staged
  // snapshot used to be evicted inside the staging pass, so the
  // subsequent fetch() missed and was re-priced as its own
  // single-snapshot request — double-counting remote traffic versus
  // the consolidated model.
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/0);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  const std::vector<std::int64_t> batch{lo1, lo1 + 1, lo1 + 2};
  const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());

  for (int epoch = 0; epoch < 2; ++epoch) {
    store.fetch_batch(0, batch);
    for (std::int64_t id : batch) {
      const auto [x, y] = store.fetch(0, id);
      const auto [ox, oy] = store.fetch(1, id);
      EXPECT_EQ(ops::max_abs_diff(x, ox.contiguous()), 0.0f);
      EXPECT_EQ(ops::max_abs_diff(y, oy.contiguous()), 0.0f);
    }
    const dist::StoreStats st = store.stats();
    const std::uint64_t e = static_cast<std::uint64_t>(epoch + 1);
    EXPECT_EQ(st.remote_snapshots, 3u * e) << "every remote access priced ONCE";
    EXPECT_EQ(st.request_messages, 1u * e) << "one consolidated request per batch";
    EXPECT_EQ(st.remote_bytes, 3u * sb * e);
    // Nothing survives a zero-capacity cache between epochs: every
    // epoch re-copies, and the ledger still decomposes exactly.
    EXPECT_EQ(st.bytes_copied, 3u * sb * e);
    EXPECT_EQ(st.cache_hits, 0u);
    EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  }
  // Consumed snapshots were dropped immediately (capacity 0).
  EXPECT_EQ(store.stats().cache_evictions, 6u);
}

TEST(StoreCache, AnnouncedSnapshotsArePinnedUntilConsumed) {
  // Capacity 1, batch of 3: all three staged snapshots must coexist
  // (pinned) until fetch() consumes them, then capacity bites.
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/1);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  const std::vector<std::int64_t> batch{lo1, lo1 + 1, lo1 + 2};
  const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());

  store.fetch_batch(0, batch);
  for (std::int64_t id : batch) {
    const auto [x, y] = store.fetch(0, id);
    EXPECT_GT(x.numel(), 0);
    EXPECT_GT(y.numel(), 0);
  }
  const dist::StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 3u);
  EXPECT_EQ(st.request_messages, 1u);
  EXPECT_EQ(st.bytes_copied, 3u * sb) << "no announced snapshot was re-fetched";
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
}

TEST(StoreCache, BytesBoundedModeEvictsByBytes) {
  data::StandardDataset ds = tiny_dataset();
  const std::int64_t sb = 2 * ds.spec().horizon * ds.spec().nodes *
                          ds.spec().features *
                          static_cast<std::int64_t>(sizeof(float));
  // Count bound slack (the whole store), byte budget of two snapshots:
  // the byte bound is what evicts.
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/ds.num_snapshots(),
                        /*cache_bytes_per_rank=*/2 * sb);
  ASSERT_EQ(store.snapshot_bytes(), sb);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  const auto touch = [&](std::int64_t id) {
    store.fetch_batch(0, {id});
    store.fetch(0, id);
  };
  touch(lo1);      // bytes: 1*sb
  touch(lo1 + 1);  // bytes: 2*sb
  touch(lo1 + 2);  // bytes would be 3*sb -> evicts lo1
  EXPECT_EQ(store.stats().cache_evictions, 1u);
  touch(lo1 + 1);  // still resident -> hit
  EXPECT_EQ(store.stats().cache_hits, 1u);
  touch(lo1);      // evicted -> copied again
  const dist::StoreStats st = store.stats();
  EXPECT_EQ(st.cache_evictions, 2u);
  EXPECT_EQ(st.bytes_copied, 4u * static_cast<std::uint64_t>(sb));
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
}

// --------------------------------------------- async staging pipeline

TEST(AsyncPrefetch, StagesAnnouncedBatchBitExactly) {
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        dist::DistStore::kDefaultCacheSnapshots,
                        /*cache_bytes_per_rank=*/0, /*async_prefetch=*/true);
  ASSERT_TRUE(store.async_prefetch());
  const auto [lo1, hi1] = store.partition(1);
  const std::vector<std::int64_t> batch{lo1, lo1 + 1, hi1 - 1};
  const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());

  store.prefetch_batch(0, batch);
  // Give the staging thread a real compute window to hide the modeled
  // time behind before the consumer asks.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (std::int64_t id : batch) {
    const auto [x, y] = store.fetch(0, id);
    const auto [ox, oy] = store.fetch(1, id);
    EXPECT_FALSE(x.shares_storage_with(ox));
    EXPECT_EQ(ops::max_abs_diff(x, ox.contiguous()), 0.0f);
    EXPECT_EQ(ops::max_abs_diff(y, oy.contiguous()), 0.0f);
  }

  const dist::StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 3u);
  EXPECT_EQ(st.request_messages, 1u);
  EXPECT_EQ(st.remote_bytes, 3u * sb);
  EXPECT_EQ(st.bytes_copied, 3u * sb);
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  EXPECT_GT(st.modeled_seconds, 0.0);
  // The ~20ms window was hidden; the rest stays exposed.
  EXPECT_GT(st.overlapped_seconds, 0.015);
  EXPECT_LT(st.exposed_seconds, st.modeled_seconds);
  EXPECT_NEAR(st.overlapped_seconds + st.exposed_seconds, st.modeled_seconds, 1e-9);
  // drain hands back only the exposed share, once.
  const double drained = store.drain_modeled_seconds(0);
  EXPECT_NEAR(drained, st.exposed_seconds, 1e-9);
  EXPECT_EQ(store.drain_modeled_seconds(0), 0.0);
}

TEST(AsyncPrefetch, LedgerIdenticalToSynchronousPath) {
  data::StandardDataset ds_sync = tiny_dataset();
  data::StandardDataset ds_async = tiny_dataset();
  dist::DistStore sync_store(ds_sync, 4, dist::NetworkModel{});
  dist::DistStore async_store(ds_async, 4, dist::NetworkModel{},
                              /*consolidate=*/true,
                              dist::DistStore::kDefaultCacheSnapshots,
                              /*cache_bytes_per_rank=*/0, /*async_prefetch=*/true);
  const auto [lo1, hi1] = sync_store.partition(1);
  const auto [lo2, hi2] = sync_store.partition(2);
  (void)hi1;
  (void)hi2;
  const std::vector<std::vector<std::int64_t>> batches{
      {lo1, lo1 + 1, lo2},          // two owners -> two messages
      {lo1, lo2 + 1, lo2 + 2},      // lo1 cached -> hit
  };
  for (dist::DistStore* store : {&sync_store, &async_store}) {
    for (const auto& batch : batches) {
      store->prefetch_batch(0, batch);
      for (std::int64_t id : batch) store->fetch(0, id);
    }
  }
  const dist::StoreStats a = sync_store.stats();
  const dist::StoreStats b = async_store.stats();
  EXPECT_EQ(a.local_snapshots, b.local_snapshots);
  EXPECT_EQ(a.remote_snapshots, b.remote_snapshots);
  EXPECT_EQ(a.remote_bytes, b.remote_bytes);
  EXPECT_EQ(a.request_messages, b.request_messages);
  EXPECT_EQ(a.bytes_copied, b.bytes_copied);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_hit_bytes, b.cache_hit_bytes);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
  // Sync exposes everything; async must never expose more.
  EXPECT_DOUBLE_EQ(a.exposed_seconds, a.modeled_seconds);
  EXPECT_DOUBLE_EQ(a.overlapped_seconds, 0.0);
  EXPECT_LE(b.exposed_seconds, b.modeled_seconds);
}

TEST(AsyncPrefetch, AbandonReleasesOrphanedAnnouncements) {
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/0,
                        /*cache_bytes_per_rank=*/0, /*async_prefetch=*/true);
  const auto [lo1, hi1] = store.partition(1);
  (void)hi1;
  const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());

  store.prefetch_batch(0, {lo1, lo1 + 1});  // announced, never consumed
  store.abandon_prefetches(0);              // epoch truncated

  dist::StoreStats st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 2u);
  EXPECT_EQ(st.remote_bytes, 2u * sb);
  // Orphans still moved their bytes (the ledger stays backed by real
  // movement) but were never waited on: fully overlapped, and — with a
  // zero-capacity cache — dropped as soon as their pins released.
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  EXPECT_DOUBLE_EQ(st.exposed_seconds, 0.0);
  EXPECT_NEAR(st.overlapped_seconds, st.modeled_seconds, 1e-9);
  EXPECT_EQ(st.cache_evictions, 2u);
  EXPECT_EQ(store.drain_modeled_seconds(0), 0.0);

  // A later fetch of an abandoned id is a fresh unannounced request.
  store.fetch(0, lo1);
  st = store.stats();
  EXPECT_EQ(st.remote_snapshots, 3u);
  EXPECT_EQ(st.request_messages, 2u);
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  EXPECT_GT(store.drain_modeled_seconds(0), 0.0);
}

// ------------------------------------------ PrefetchLoader stress

TEST(PrefetchStress, AbortRestartStormKeepsSequencesExact) {
  // Repeated partial consumption + immediate restarts: the abort path,
  // the slot handoff, and the epoch_ handoff all get hammered.  Run
  // under PGTI_SANITIZE=thread (scripts/check.sh) this is the data-race
  // regression test for PrefetchLoader::worker_loop reading epoch_.
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 9);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 5, 8};

  std::vector<std::vector<std::vector<std::int64_t>>> expected(3);
  data::DataLoader plain(source, opt, 0, 200);
  for (int epoch = 0; epoch < 3; ++epoch) {
    plain.start_epoch(epoch);
    data::Batch b;
    while (plain.next(b)) expected[static_cast<std::size_t>(epoch)].push_back(b.indices);
  }

  data::DataLoader inner(source, opt, 0, 200);
  data::PrefetchLoader prefetch(inner);
  data::Batch b;
  for (int iter = 0; iter < 60; ++iter) {
    const int epoch = iter % 3;
    prefetch.start_epoch(epoch);
    const int consume = iter % 5;  // 0..4 batches, then abandon mid-epoch
    for (int k = 0; k < consume; ++k) {
      ASSERT_TRUE(prefetch.next(b)) << "iter " << iter << " batch " << k;
      ASSERT_EQ(b.indices,
                expected[static_cast<std::size_t>(epoch)][static_cast<std::size_t>(k)])
          << "iter " << iter << " batch " << k;
    }
  }
  // After the storm a full epoch still delivers the exact sequence.
  prefetch.start_epoch(1);
  std::size_t i = 0;
  while (prefetch.next(b)) {
    ASSERT_LT(i, expected[1].size());
    EXPECT_EQ(b.indices, expected[1][i]);
    ++i;
  }
  EXPECT_EQ(i, expected[1].size());
}

// Wraps a local dataset but fails exactly one get() call — the shape
// of a staging failure surfaced by a remote-backed source.
class ThrowOnceSource final : public data::SnapshotSource {
 public:
  ThrowOnceSource(const data::IndexDataset& d, std::int64_t throw_at_call)
      : d_(&d), countdown_(throw_at_call) {}
  std::pair<Tensor, Tensor> get(std::int64_t i) const override {
    if (countdown_ >= 0 && countdown_-- == 0) {
      throw std::runtime_error("synthetic staging failure");
    }
    return d_->get(i);
  }
  std::int64_t num_snapshots() const override { return d_->num_snapshots(); }
  MemorySpaceId space() const override { return d_->space(); }
  const data::StandardScaler& scaler() const override { return d_->scaler(); }
  const data::SplitRanges& splits() const override { return d_->splits(); }
  const data::DatasetSpec& spec() const override { return d_->spec(); }

 private:
  const data::IndexDataset* d_;
  mutable std::int64_t countdown_;
};

TEST(PrefetchStress, WorkerExceptionSurfacesOnConsumerAndRestartRecovers) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 11);
  data::IndexDataset ds(raw, spec);
  ThrowOnceSource source(ds, /*throw_at_call=*/12);  // mid second batch
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kNone, 0, 1, 1, 8};
  data::DataLoader inner(source, opt, 0, 48);
  data::PrefetchLoader prefetch(inner);
  prefetch.start_epoch(0);
  data::Batch b;
  EXPECT_THROW(
      {
        while (prefetch.next(b)) {
        }
      },
      std::runtime_error)
      << "the worker-thread failure must surface on the consumer";
  // Restart is explicit recovery: the full epoch delivers again.
  prefetch.start_epoch(0);
  int count = 0;
  while (prefetch.next(b)) ++count;
  EXPECT_EQ(count, 6);
}

TEST(PrefetchStress, ProductionCapGoesQuiescentAndRedelivers) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, 10);
  data::IndexDataset ds(raw, spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = 16;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 3, 16};
  data::DataLoader inner(source, opt, 0, 100);
  data::PrefetchLoader prefetch(inner);
  data::Batch b;
  for (int epoch = 0; epoch < 3; ++epoch) {
    prefetch.start_epoch(epoch, /*max_batches=*/2);
    int count = 0;
    while (prefetch.next(b)) ++count;
    EXPECT_EQ(count, 2) << "epoch " << epoch;
  }
  prefetch.start_epoch(0);  // uncapped again
  int count = 0;
  while (prefetch.next(b)) ++count;
  EXPECT_EQ(count, 6);
}

// ------------------------------------------ DistTrainer end to end

core::DistConfig prefetch_dist(core::DistMode mode) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = 2;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  cfg.seed = 47;
  return cfg;
}

TEST(DistPrefetch, BaselineLossesBitIdenticalAndExposedStrictlyLower) {
  core::DistConfig cfg = prefetch_dist(core::DistMode::kBaselineDdp);
  cfg.prefetch_depth = 0;
  const core::DistResult off = core::DistTrainer(cfg).run();
  cfg.prefetch_depth = 1;
  const core::DistResult on = core::DistTrainer(cfg).run();

  // The pipeline must not perturb training by a single bit.
  ASSERT_EQ(on.curve.size(), off.curve.size());
  for (std::size_t e = 0; e < off.curve.size(); ++e) {
    EXPECT_EQ(on.curve[e].train_mae, off.curve[e].train_mae) << "epoch " << e;
    EXPECT_EQ(on.curve[e].val_mae, off.curve[e].val_mae) << "epoch " << e;
  }

  // Without prefetch everything is exposed; with prefetch the compute
  // window between announcement and first need is hidden.
  EXPECT_GT(off.modeled_fetch_seconds, 0.0);
  EXPECT_NEAR(off.modeled_fetch_seconds, off.store.modeled_seconds, 1e-9);
  EXPECT_LT(on.modeled_fetch_seconds, off.modeled_fetch_seconds);
  EXPECT_GT(on.store.overlapped_seconds, 0.0);
  EXPECT_NEAR(on.store.overlapped_seconds + on.store.exposed_seconds,
              on.store.modeled_seconds, 1e-9);

  // Lookahead may announce (and stage) batches a truncated epoch never
  // consumed — never fewer than the synchronous run, and the ledger
  // must stay backed by real byte movement in both.
  EXPECT_GE(on.store.remote_snapshots, off.store.remote_snapshots);
  EXPECT_EQ(off.store.remote_bytes,
            off.store.bytes_copied + off.store.cache_hit_bytes);
  EXPECT_EQ(on.store.remote_bytes,
            on.store.bytes_copied + on.store.cache_hit_bytes);
}

TEST(DistPrefetch, ZeroCapacityCacheTrainsWithExactLedger) {
  core::DistConfig cfg = prefetch_dist(core::DistMode::kBaselineDdp);
  cfg.prefetch_depth = 1;
  cfg.store_cache_snapshots = 0;
  const core::DistResult r = core::DistTrainer(cfg).run();
  ASSERT_GT(r.store.remote_snapshots, 0u);
  EXPECT_EQ(r.store.remote_bytes, r.store.bytes_copied + r.store.cache_hit_bytes);
  EXPECT_GT(r.store.overlapped_seconds, 0.0);
}

TEST(DistPrefetch, BytesBoundedCacheTrainsWithExactLedger) {
  core::DistConfig cfg = prefetch_dist(core::DistMode::kBaselineDdpBatchShuffle);
  cfg.prefetch_depth = 1;
  cfg.store_cache_snapshots = 1 << 20;  // count bound slack
  cfg.store_cache_bytes =
      4 * 2 * cfg.spec.horizon * cfg.spec.nodes * cfg.spec.features *
      static_cast<std::int64_t>(sizeof(float));  // four snapshots' worth
  const core::DistResult r = core::DistTrainer(cfg).run();
  ASSERT_GT(r.store.remote_snapshots, 0u);
  EXPECT_EQ(r.store.remote_bytes, r.store.bytes_copied + r.store.cache_hit_bytes);
}

TEST(DistPrefetch, IndexModesBitIdenticalWithPrefetch) {
  // The loader-level double buffering alone (no store in these modes)
  // must also leave every loss bit-identical.
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kGeneralizedIndex}) {
    core::DistConfig cfg = prefetch_dist(mode);
    cfg.epochs = 1;
    cfg.prefetch_depth = 0;
    const core::DistResult off = core::DistTrainer(cfg).run();
    cfg.prefetch_depth = 1;
    const core::DistResult on = core::DistTrainer(cfg).run();
    ASSERT_EQ(on.curve.size(), off.curve.size());
    for (std::size_t e = 0; e < off.curve.size(); ++e) {
      EXPECT_EQ(on.curve[e].train_mae, off.curve[e].train_mae)
          << "mode " << static_cast<int>(mode) << " epoch " << e;
      EXPECT_EQ(on.curve[e].val_mae, off.curve[e].val_mae)
          << "mode " << static_cast<int>(mode) << " epoch " << e;
    }
    EXPECT_EQ(on.modeled_fetch_seconds, 0.0);
  }
}

// ------------------------------------------ schedule-aware eviction

TEST(ScheduleAwareEviction, NearerScheduledSnapshotOutlivesConsumedResidue) {
  // A resident snapshot the announced schedule still needs must not be
  // evicted while already-consumed residue (unscheduled, or scheduled
  // only in the past) is available — the victim plain LRU would pick
  // here is exactly the wrong one.
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/2);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  const std::int64_t a = lo1, b = lo1 + 1, c = lo1 + 2;
  const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());
  const auto touch = [&](std::int64_t id) {
    store.fetch_batch(0, {id});
    store.fetch(0, id);
  };

  // Epoch 1, schedule [b, a]: both consumed; LRU now front=a, back=b.
  std::vector<std::int64_t> epoch1{b, a};
  store.announce_schedule(0, epoch1);
  touch(b);
  touch(a);
  EXPECT_EQ(store.stats().bytes_copied, 2u * sb);
  EXPECT_EQ(store.stats().cache_evictions, 0u);

  // Epoch 2, schedule [c, b]: b is needed again one batch from now but
  // is NOT yet announced (beyond the lookahead window); a is residue.
  std::vector<std::int64_t> epoch2{c, b};
  store.announce_schedule(0, epoch2);
  touch(c);  // staging c overflows capacity 2 -> one eviction
  EXPECT_EQ(store.stats().cache_evictions, 1u);
  // Plain LRU would have evicted b (least recently used); the schedule
  // says b is nearer-future, so a must have been the victim...
  touch(b);
  const dist::StoreStats st = store.stats();
  EXPECT_EQ(st.cache_hits, 1u) << "b must still be resident (a was evicted)";
  EXPECT_EQ(st.bytes_copied, 3u * sb) << "a, b, c copied exactly once each";
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
}

TEST(ScheduleAwareEviction, CrossEpochScheduleKeepsBoundaryResidueHot) {
  // Boundary blindness fix: loaders announce the current epoch's order
  // PLUS the next one's, so end-of-epoch eviction sees that a resident
  // snapshot the coming epoch reuses has a future position — instead
  // of treating everything consumed as dead residue and evicting by
  // plain LRU, which at tight capacity is exactly backwards.
  data::StandardDataset ds = tiny_dataset();
  const auto touch = [](dist::DistStore& store, std::int64_t id) {
    store.fetch_batch(0, {id});
    store.fetch(0, id);
  };

  // Cross-epoch announcement [n, r, x | n]: epoch 1 consumes n then r,
  // and staging x (pinned, never consumed — the truncated tail)
  // overflows capacity 2.  n carries a future position from the next
  // epoch's head, so the victim must be r.
  {
    dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                          /*cache_snapshots_per_rank=*/2);
    const auto [lo1, hi1] = store.partition(1);
    ASSERT_GE(hi1 - lo1, 3);
    const std::int64_t n = lo1, r = lo1 + 1, x = lo1 + 2;
    const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());
    store.announce_schedule(0, {n, r, x, n});
    touch(store, n);
    touch(store, r);
    store.fetch_batch(0, {x});  // boundary eviction: r out, n protected
    EXPECT_EQ(store.stats().cache_evictions, 1u);
    store.abandon_prefetches(0);  // schedule survives the boundary
    store.announce_schedule(0, {n});  // epoch 2 re-announces as usual
    touch(store, n);
    const dist::StoreStats st = store.stats();
    EXPECT_EQ(st.cache_hits, 1u)
        << "n must still be resident across the epoch boundary";
    EXPECT_EQ(st.bytes_copied, 3u * sb) << "n, r, x copied exactly once each";
    EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  }

  // Control: the same traffic with an epoch-local announcement.  By
  // eviction time everything consumed is residue, LRU picks the oldest
  // — n — and the boundary reuse pays a second copy.
  {
    dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                          /*cache_snapshots_per_rank=*/2);
    const auto [lo1, hi1] = store.partition(1);
    const std::int64_t n = lo1, r = lo1 + 1, x = lo1 + 2;
    (void)r;
    const std::uint64_t sb = static_cast<std::uint64_t>(store.snapshot_bytes());
    store.announce_schedule(0, {n, r, x});
    touch(store, n);
    touch(store, r);
    store.fetch_batch(0, {x});
    EXPECT_EQ(store.stats().cache_evictions, 1u);
    store.abandon_prefetches(0);
    store.announce_schedule(0, {n});
    touch(store, n);
    const dist::StoreStats st = store.stats();
    EXPECT_EQ(st.cache_hits, 0u) << "epoch-local schedule loses n at the boundary";
    EXPECT_EQ(st.bytes_copied, 4u * sb) << "n copied twice";
  }
}

TEST(ScheduleAwareEviction, WithoutScheduleEvictionDegradesToPlainLru) {
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 4, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/2);
  const auto [lo1, hi1] = store.partition(1);
  ASSERT_GE(hi1 - lo1, 3);
  const auto touch = [&](std::int64_t id) {
    store.fetch_batch(0, {id});
    store.fetch(0, id);
  };
  touch(lo1);      // LRU back
  touch(lo1 + 1);  // LRU front
  touch(lo1 + 2);  // evicts lo1 (no schedule announced)
  EXPECT_EQ(store.stats().cache_evictions, 1u);
  touch(lo1 + 1);  // still resident -> hit
  EXPECT_EQ(store.stats().cache_hits, 1u);
}

// ------------------------------------------ depth-N generalization

TEST(DepthNPrefetch, LossesBitIdenticalAcrossDepthsAllStrategies) {
  // The acceptance bar of the depth-N pipeline: per-epoch losses
  // bit-identical across prefetch_depth in {off, 1, 2, 4} for every
  // distribution strategy.
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kBaselineDdp,
        core::DistMode::kGeneralizedIndex,
        core::DistMode::kBaselineDdpBatchShuffle}) {
    core::DistConfig cfg = prefetch_dist(mode);
    cfg.prefetch_depth = 0;
    const core::DistResult base = core::DistTrainer(cfg).run();
    for (int depth : {1, 2, 4}) {
      core::DistConfig dcfg = cfg;
      dcfg.prefetch_depth = depth;
      const core::DistResult r = core::DistTrainer(dcfg).run();
      ASSERT_EQ(r.curve.size(), base.curve.size());
      for (std::size_t e = 0; e < base.curve.size(); ++e) {
        EXPECT_EQ(r.curve[e].train_mae, base.curve[e].train_mae)
            << "mode " << static_cast<int>(mode) << " depth " << depth
            << " epoch " << e;
        EXPECT_EQ(r.curve[e].val_mae, base.curve[e].val_mae)
            << "mode " << static_cast<int>(mode) << " depth " << depth
            << " epoch " << e;
      }
    }
  }
}

TEST(DepthNPrefetch, PricedLedgerIndependentOfDepth) {
  // Production caps keep every announced batch consumed, so the priced
  // fetch model must not depend on how deep the pipeline runs; only
  // the cache's copied/hit split may shift (eviction timing differs
  // with N batches pinned), and it must always decompose exactly.
  core::DistConfig cfg = prefetch_dist(core::DistMode::kBaselineDdp);
  cfg.prefetch_depth = 0;
  const core::DistResult sync_r = core::DistTrainer(cfg).run();
  ASSERT_GT(sync_r.store.remote_snapshots, 0u);
  for (int depth : {1, 2, 4}) {
    core::DistConfig dcfg = cfg;
    dcfg.prefetch_depth = depth;
    const core::DistResult r = core::DistTrainer(dcfg).run();
    EXPECT_EQ(r.store.local_snapshots, sync_r.store.local_snapshots) << depth;
    EXPECT_EQ(r.store.remote_snapshots, sync_r.store.remote_snapshots) << depth;
    EXPECT_EQ(r.store.remote_bytes, sync_r.store.remote_bytes) << depth;
    EXPECT_EQ(r.store.request_messages, sync_r.store.request_messages) << depth;
    EXPECT_NEAR(r.store.modeled_seconds, sync_r.store.modeled_seconds, 1e-9)
        << depth;
    EXPECT_EQ(r.store.remote_bytes,
              r.store.bytes_copied + r.store.cache_hit_bytes)
        << depth;
    EXPECT_NEAR(r.store.overlapped_seconds + r.store.exposed_seconds,
                r.store.modeled_seconds, 1e-9)
        << depth;
    EXPECT_LE(r.modeled_fetch_seconds, sync_r.modeled_fetch_seconds) << depth;
  }
}

TEST(DepthNPrefetch, TruncatedEpochReconciliationAtDepthFour) {
  // A consumer that walks away mid-epoch leaves up to depth announced
  // batches in flight; the next start_epoch abandons them.  Orphans
  // still move their bytes (the ledger stays backed by real movement)
  // and count as fully overlapped; afterwards the stats decompose
  // exactly and the pipeline delivers clean epochs again.
  data::StandardDataset ds = tiny_dataset();
  dist::DistStore store(ds, 2, dist::NetworkModel{}, /*consolidate=*/true,
                        /*cache_snapshots_per_rank=*/0,
                        /*cache_bytes_per_rank=*/0, /*async_prefetch=*/true);
  data::RankSource source(store, /*rank=*/0);
  data::LoaderOptions opt;
  opt.batch_size = 8;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 13, 8};
  opt.prefetch_lookahead = 4;
  const std::int64_t n = store.num_snapshots();
  data::DataLoader inner(source, opt, 0, n);
  data::PrefetchLoader prefetch(inner, /*depth=*/4);

  data::Batch b;
  for (int epoch = 0; epoch < 3; ++epoch) {
    prefetch.start_epoch(epoch);  // abandons the previous epoch's leftovers
    ASSERT_TRUE(prefetch.next(b)) << epoch;  // consume one batch, walk away
  }
  // Quiesce the worker (a zero-batch epoch assembles nothing; its
  // start abandons epoch 2's leftovers) and close the split: whatever
  // was announced but never consumed was never waited on.
  prefetch.start_epoch(0, /*max_batches=*/0);
  EXPECT_FALSE(prefetch.next(b));
  store.abandon_prefetches(0);
  store.drain_modeled_seconds(0);
  const dist::StoreStats st = store.stats();
  ASSERT_GT(st.remote_snapshots, 0u);
  EXPECT_EQ(st.remote_bytes, st.bytes_copied + st.cache_hit_bytes);
  EXPECT_NEAR(st.overlapped_seconds + st.exposed_seconds, st.modeled_seconds, 1e-9);

  // The pipeline recovers: a full epoch delivers the exact sequence.
  data::DataLoader plain_loader(source, data::LoaderOptions{opt.batch_size,
                                                            opt.sampler, true},
                                0, n);
  plain_loader.start_epoch(7);
  std::vector<std::vector<std::int64_t>> expected;
  while (plain_loader.next(b)) expected.push_back(b.indices);
  store.abandon_prefetches(0);  // release the plain loader's announcements
  prefetch.start_epoch(7);
  std::size_t i = 0;
  while (prefetch.next(b)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(b.indices, expected[i]);
    ++i;
  }
  EXPECT_EQ(i, expected.size());
  const dist::StoreStats final_st = store.stats();
  EXPECT_EQ(final_st.remote_bytes,
            final_st.bytes_copied + final_st.cache_hit_bytes);
}

}  // namespace
}  // namespace pgti
