#include <gtest/gtest.h>

#include "autograd/gradcheck.h"
#include "core/model_factory.h"
#include "data/synthetic.h"
#include "nn/a3tgcn.h"
#include "nn/dcrnn.h"
#include "nn/stllm.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

nn::GraphSupports small_supports(std::int64_t n, std::uint64_t seed = 7) {
  SensorNetworkOptions opt;
  opt.num_nodes = n;
  opt.k_neighbors = 3;
  opt.seed = seed;
  SensorNetwork net = build_sensor_network(opt);
  return nn::GraphSupports::from(dual_random_walk_supports(net.adjacency));
}

// ----------------------------------------------------------------- Module

TEST(Module, ParameterRegistrationOrderStable) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  auto named = lin.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(lin.parameter_count(), 4 * 3 + 3);
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(2);
  nn::Linear lin(2, 2, rng);
  Variable x(Tensor::ones({3, 2}), false);
  ag::sum_all(lin.forward(x)).backward();
  auto params = lin.parameters();
  EXPECT_GT(ops::max_abs(params[0].grad()), 0.0f);
  lin.zero_grad();
  EXPECT_EQ(ops::max_abs(params[0].grad()), 0.0f);
}

TEST(Module, ToSpaceMovesParameters) {
  auto& tracker = MemoryTracker::instance();
  const MemorySpaceId space = tracker.register_space("nn-test-space");
  Rng rng(3);
  nn::Linear lin(4, 4, rng);
  lin.to_space(space);
  for (const Variable& p : lin.parameters()) EXPECT_EQ(p.value().space(), space);
}

// ----------------------------------------------------------------- Linear

TEST(Linear, ForwardMatchesManual) {
  Rng rng(4);
  nn::Linear lin(3, 2, rng);
  Variable x(Tensor::ones({1, 3}), false);
  Tensor out = lin.forward(x).value();
  auto named = lin.named_parameters();
  const Tensor& w = named[0].second.value();
  float expect0 = 0.0f;
  for (std::int64_t i = 0; i < 3; ++i) expect0 += w.at({i, 0});
  EXPECT_NEAR(out.at({0, 0}), expect0, 1e-5f);
}

TEST(Linear, RejectsWrongWidth) {
  Rng rng(5);
  nn::Linear lin(3, 2, rng);
  Variable x(Tensor::ones({1, 4}), false);
  EXPECT_THROW(lin.forward(x), std::invalid_argument);
}

TEST(Linear, DeterministicInit) {
  Rng r1(9), r2(9);
  nn::Linear a(5, 5, r1), b(5, 5, r2);
  EXPECT_EQ(ops::max_abs_diff(a.parameters()[0].value(), b.parameters()[0].value()), 0.0f);
}

// ----------------------------------------------------------- DiffusionConv

TEST(DiffusionConv, OutputShape) {
  auto supports = small_supports(6);
  Rng rng(6);
  nn::DiffusionConv conv(3, 5, supports, 2, rng);
  Variable x(Tensor::ones({2, 6, 3}), false);
  Tensor out = conv.forward(x).value();
  EXPECT_EQ(out.shape(), (Shape{2, 6, 5}));
}

TEST(DiffusionConv, ParamCountMatchesFormula) {
  auto supports = small_supports(6);
  Rng rng(7);
  const int k = 2;
  nn::DiffusionConv conv(3, 5, supports, k, rng);
  // (1 + S*K) * Cin * Cout + Cout
  EXPECT_EQ(conv.parameter_count(), (1 + 2 * k) * 3 * 5 + 5);
}

TEST(DiffusionConv, KZeroIsPlainLinear) {
  auto supports = small_supports(4);
  Rng rng(8);
  nn::DiffusionConv conv(2, 3, supports, 0, rng);
  // With K=0 only the identity term remains: out = x W + b per node.
  EXPECT_EQ(conv.parameter_count(), 2 * 3 + 3);
  Variable x(Tensor::ones({1, 4, 2}), false);
  EXPECT_EQ(conv.forward(x).value().shape(), (Shape{1, 4, 3}));
}

TEST(DiffusionConv, GradCheckThroughGraph) {
  auto supports = small_supports(4);
  Rng rng(9);
  nn::DiffusionConv conv(2, 2, supports, 1, rng);
  Rng xr(10);
  Variable x(Tensor::randn({1, 4, 2}, xr), true);
  auto res = ag::gradcheck(
      [&](const Variable& v) { return ag::mean_all(conv.forward(v)); }, x);
  EXPECT_LT(res.max_rel_err, 2e-2);
}

TEST(DiffusionConv, RejectsWrongChannels) {
  auto supports = small_supports(4);
  Rng rng(11);
  nn::DiffusionConv conv(2, 2, supports, 1, rng);
  Variable x(Tensor::ones({1, 4, 3}), false);
  EXPECT_THROW(conv.forward(x), std::invalid_argument);
}

// ----------------------------------------------------------------- DCGRU

TEST(DCGRUCell, HiddenShapePreserved) {
  auto supports = small_supports(5);
  Rng rng(12);
  nn::DCGRUCell cell(2, 8, supports, 2, rng);
  Variable x(Tensor::ones({3, 5, 2}), false);
  Variable h(Tensor::zeros({3, 5, 8}), false);
  Tensor out = cell.forward(x, h).value();
  EXPECT_EQ(out.shape(), (Shape{3, 5, 8}));
}

TEST(DCGRUCell, OutputBounded) {
  // GRU state is a convex mix of tanh candidates: |h| <= 1 from zero init.
  auto supports = small_supports(5);
  Rng rng(13);
  nn::DCGRUCell cell(2, 4, supports, 1, rng);
  Rng xr(14);
  Variable h(Tensor::zeros({2, 5, 4}), false);
  for (int t = 0; t < 5; ++t) {
    Variable x(Tensor::randn({2, 5, 2}, xr, 3.0f), false);
    h = cell.forward(x, h);
  }
  EXPECT_LE(ops::max_abs(h.value()), 1.0f + 1e-5f);
}

TEST(DCGRUCell, GradFlowsToAllParams) {
  auto supports = small_supports(4);
  Rng rng(15);
  nn::DCGRUCell cell(2, 3, supports, 1, rng);
  Rng xr(16);
  Variable x(Tensor::randn({1, 4, 2}, xr), false);
  Variable h(Tensor::zeros({1, 4, 3}), false);
  ag::mean_all(cell.forward(x, h)).backward();
  for (Variable& p : cell.parameters()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_GT(ops::max_abs(p.grad()), 0.0f) << "dead parameter";
  }
}

// --------------------------------------------------------------- PGTDCRNN

TEST(PgtDcrnn, OneOutputPerInputStep) {
  auto supports = small_supports(6);
  nn::PgtDcrnnOptions opt;
  opt.num_nodes = 6;
  opt.input_dim = 2;
  opt.hidden_dim = 8;
  nn::PGTDCRNN model(opt, supports);
  Rng xr(17);
  Tensor x = Tensor::randn({2, 5, 6, 2}, xr);
  auto outs = model.forward_seq(x);
  ASSERT_EQ(outs.size(), 5u);
  for (const Variable& o : outs) EXPECT_EQ(o.value().shape(), (Shape{2, 6, 1}));
}

TEST(PgtDcrnn, DeterministicForSeed) {
  auto supports = small_supports(4);
  nn::PgtDcrnnOptions opt;
  opt.num_nodes = 4;
  opt.seed = 77;
  nn::PGTDCRNN a(opt, supports), b(opt, supports);
  Rng xr(18);
  Tensor x = Tensor::randn({1, 3, 4, 2}, xr);
  EXPECT_EQ(ops::max_abs_diff(a.forward_seq(x)[2].value(), b.forward_seq(x)[2].value()),
            0.0f);
}

TEST(PgtDcrnn, TrainingStepReducesLoss) {
  auto supports = small_supports(5);
  nn::PgtDcrnnOptions opt;
  opt.num_nodes = 5;
  opt.hidden_dim = 8;
  nn::PGTDCRNN model(opt, supports);
  Rng xr(19);
  Tensor x = Tensor::randn({4, 4, 5, 2}, xr);
  Tensor y = Tensor::randn({4, 4, 5, 1}, xr);
  auto params = model.parameters();
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 30; ++it) {
    auto outs = model.forward_seq(x);
    Variable loss;
    for (std::size_t t = 0; t < outs.size(); ++t) {
      Variable l = ag::mse_loss(outs[t], y.select(1, static_cast<std::int64_t>(t)).contiguous());
      loss = t == 0 ? l : ag::add(loss, l);
    }
    if (it == 0) first = loss.value().item();
    last = loss.value().item();
    model.zero_grad();
    loss.backward();
    for (Variable& p : params) {
      ops::axpy_(-0.05f, p.grad(), p.mutable_value());
    }
  }
  EXPECT_LT(last, first * 0.8) << "model failed to overfit a tiny batch";
}

// ------------------------------------------------------------------ DCRNN

TEST(Dcrnn, DecoderEmitsHorizonSteps) {
  auto supports = small_supports(5);
  nn::DcrnnOptions opt;
  opt.num_nodes = 5;
  opt.horizon = 7;
  opt.num_layers = 2;
  opt.hidden_dim = 6;
  nn::DCRNN model(opt, supports);
  Rng xr(20);
  Tensor x = Tensor::randn({2, 4, 5, 2}, xr);
  auto outs = model.forward_seq(x);
  ASSERT_EQ(outs.size(), 7u);
  EXPECT_EQ(outs[0].value().shape(), (Shape{2, 5, 1}));
}

TEST(Dcrnn, DeeperThanPgtVariant) {
  auto supports = small_supports(4);
  nn::DcrnnOptions opt;
  opt.num_nodes = 4;
  opt.hidden_dim = 8;
  nn::DCRNN full(opt, supports);
  nn::PgtDcrnnOptions lite_opt;
  lite_opt.num_nodes = 4;
  lite_opt.hidden_dim = 8;
  nn::PGTDCRNN lite(lite_opt, supports);
  EXPECT_GT(full.parameter_count(), 2 * lite.parameter_count());
}

// ----------------------------------------------------------------- A3TGCN

TEST(A3tgcn, AttentionWeightsSumToOne) {
  std::vector<Csr> sym;
  SensorNetworkOptions nopt;
  nopt.num_nodes = 5;
  SensorNetwork net = build_sensor_network(nopt);
  sym.push_back(sym_norm_adjacency(net.adjacency));
  auto supports = nn::GraphSupports::from(std::move(sym));
  nn::A3tgcnOptions opt;
  opt.num_nodes = 5;
  opt.horizon = 4;
  nn::A3TGCN model(opt, supports);
  Rng xr(21);
  Tensor x = Tensor::randn({2, 6, 5, 2}, xr);
  auto outs = model.forward_seq(x);
  ASSERT_EQ(outs.size(), 4u);
  const Tensor& alpha = model.last_attention();
  ASSERT_EQ(alpha.shape(), (Shape{2 * 5, 6}));
  for (std::int64_t r = 0; r < alpha.size(0); ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < alpha.size(1); ++c) sum += alpha.at({r, c});
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
}

TEST(A3tgcn, GradFlowsToAttention) {
  std::vector<Csr> sym;
  SensorNetworkOptions nopt;
  nopt.num_nodes = 4;
  SensorNetwork net = build_sensor_network(nopt);
  sym.push_back(sym_norm_adjacency(net.adjacency));
  auto supports = nn::GraphSupports::from(std::move(sym));
  nn::A3tgcnOptions opt;
  opt.num_nodes = 4;
  opt.horizon = 3;
  nn::A3TGCN model(opt, supports);
  Rng xr(22);
  Tensor x = Tensor::randn({1, 4, 4, 2}, xr);
  auto outs = model.forward_seq(x);
  Variable loss = ag::mean_all(outs[0]);
  for (std::size_t t = 1; t < outs.size(); ++t) loss = ag::add(loss, ag::mean_all(outs[t]));
  loss.backward();
  for (auto& [name, p] : model.named_parameters()) {
    ASSERT_TRUE(p.has_grad()) << name;
    if (name == "att_vec.bias") {
      // The attention-score bias shifts every logit equally; softmax is
      // shift-invariant, so its gradient is exactly zero by design.
      EXPECT_NEAR(ops::max_abs(p.grad()), 0.0f, 1e-6f) << name;
    } else {
      EXPECT_GT(ops::max_abs(p.grad()), 0.0f) << "dead parameter: " << name;
    }
  }
}

// ------------------------------------------------------------------ STLLM

TEST(Stllm, ForwardShapes) {
  nn::StllmOptions opt;
  opt.num_nodes = 6;
  opt.input_dim = 2;
  opt.input_steps = 4;
  opt.model_dim = 16;
  opt.ffn_dim = 32;
  opt.num_layers = 2;
  opt.horizon = 4;
  nn::STLLM model(opt);
  Rng xr(23);
  Tensor x = Tensor::randn({3, 4, 6, 2}, xr);
  auto outs = model.forward_seq(x);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs[1].value().shape(), (Shape{3, 6, 1}));
}

TEST(Stllm, RejectsMismatchedWindow) {
  nn::StllmOptions opt;
  opt.num_nodes = 6;
  opt.input_steps = 4;
  nn::STLLM model(opt);
  Tensor x = Tensor::zeros({1, 5, 6, 2});
  EXPECT_THROW(model.forward_seq(x), std::invalid_argument);
}

TEST(Stllm, AllParametersReceiveGradient) {
  nn::StllmOptions opt;
  opt.num_nodes = 4;
  opt.input_steps = 3;
  opt.model_dim = 8;
  opt.ffn_dim = 16;
  opt.num_layers = 1;
  opt.horizon = 3;
  nn::STLLM model(opt);
  Rng xr(24);
  Tensor x = Tensor::randn({2, 3, 4, 2}, xr);
  auto outs = model.forward_seq(x);
  Variable loss = ag::mean_all(outs[0]);
  for (std::size_t t = 1; t < outs.size(); ++t) loss = ag::add(loss, ag::mean_all(outs[t]));
  loss.backward();
  for (auto& [name, p] : model.named_parameters()) {
    ASSERT_TRUE(p.has_grad()) << name;
    EXPECT_GT(ops::max_abs(p.grad()), 0.0f) << "dead parameter: " << name;
  }
}

// ----------------------------------------------------------- model factory

TEST(ModelFactory, BuildsEveryKind) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = data::network_for(spec);
  for (auto kind : {core::ModelKind::kPgtDcrnn, core::ModelKind::kDcrnn,
                    core::ModelKind::kA3tgcn, core::ModelKind::kStllm}) {
    auto bundle = core::make_model(kind, spec, net, 8, 1, 1, 5);
    ASSERT_NE(bundle.model, nullptr);
    Rng xr(25);
    Tensor x = Tensor::randn({2, spec.horizon, spec.nodes, spec.features}, xr);
    auto outs = bundle.model->forward_seq(x);
    EXPECT_EQ(static_cast<std::int64_t>(outs.size()),
              bundle.model->output_steps(spec.horizon));
  }
}

TEST(ModelFactory, ReplicasAreBitIdentical) {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kMetrLa).scaled(32);
  SensorNetwork net = data::network_for(spec);
  auto a = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 16, 2, 2, 123);
  auto b = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 16, 2, 2, 123);
  auto pa = a.model->parameters();
  auto pb = b.model->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(ops::max_abs_diff(pa[i].value(), pb[i].value()), 0.0f);
  }
}

}  // namespace
}  // namespace pgti
