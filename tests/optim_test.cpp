#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/optim.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

// Minimize ||x - target||^2 and return the final distance.
template <typename MakeOpt>
double minimize_quadratic(MakeOpt make_opt, int steps) {
  Variable x(Tensor::from_vector({5.0f, -3.0f, 2.0f}), true);
  Tensor target = Tensor::from_vector({1.0f, 1.0f, 1.0f});
  std::vector<Variable> params{x};
  auto opt = make_opt(params);
  for (int i = 0; i < steps; ++i) {
    Variable loss = ag::mse_loss(x, target);
    opt->zero_grad();
    loss.backward();
    opt->step();
  }
  return ops::mae(x.value(), target);
}

TEST(Sgd, ConvergesOnQuadratic) {
  const double err = minimize_quadratic(
      [](std::vector<Variable>& p) { return std::make_unique<optim::Sgd>(p, 0.1f); }, 250);
  EXPECT_LT(err, 1e-3);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
  const double plain = minimize_quadratic(
      [](std::vector<Variable>& p) { return std::make_unique<optim::Sgd>(p, 0.02f); }, 40);
  const double momentum = minimize_quadratic(
      [](std::vector<Variable>& p) {
        return std::make_unique<optim::Sgd>(p, 0.02f, 0.9f);
      },
      40);
  EXPECT_LT(momentum, plain);
}

TEST(Adam, ConvergesOnQuadratic) {
  const double err = minimize_quadratic(
      [](std::vector<Variable>& p) {
        optim::Adam::Options o;
        o.lr = 0.2f;
        return std::make_unique<optim::Adam>(p, o);
      },
      200);
  EXPECT_LT(err, 1e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Variable x(Tensor::from_vector({10.0f}), true);
  std::vector<Variable> params{x};
  optim::Adam::Options o;
  o.lr = 0.5f;
  optim::Adam opt(params, o);
  Variable loss = ag::mse_loss(x, Tensor::zeros({1}));
  loss.backward();
  opt.step();
  EXPECT_NEAR(x.value().at({0}), 9.5f, 1e-3f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Variable x(Tensor::from_vector({1.0f}), true);
  std::vector<Variable> params{x};
  optim::Adam::Options o;
  o.lr = 0.01f;
  o.weight_decay = 1.0f;
  optim::Adam opt(params, o);
  for (int i = 0; i < 50; ++i) {
    // Zero data gradient: only decay acts.
    Variable loss = ag::mul_scalar(ag::sum_all(x), 0.0f);
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(x.value().at({0}), 0.7f);
}

TEST(Adam, SkipsParamsWithoutGrad) {
  Variable used(Tensor::from_vector({1.0f}), true);
  Variable unused(Tensor::from_vector({7.0f}), true);
  std::vector<Variable> params{used, unused};
  optim::Adam::Options o;
  optim::Adam opt(params, o);
  Variable loss = ag::mse_loss(used, Tensor::zeros({1}));
  loss.backward();
  opt.step();
  EXPECT_EQ(unused.value().at({0}), 7.0f);
}

TEST(Optimizer, SetLrTakesEffect) {
  Variable x(Tensor::from_vector({1.0f}), true);
  std::vector<Variable> params{x};
  optim::Sgd opt(params, 0.0f);
  Variable loss = ag::mse_loss(x, Tensor::zeros({1}));
  loss.backward();
  opt.step();
  EXPECT_EQ(x.value().at({0}), 1.0f);  // lr 0: no movement
  opt.set_lr(0.5f);
  opt.step();
  EXPECT_LT(x.value().at({0}), 1.0f);
}

TEST(LinearScaling, WarmupRampsToScaledLr) {
  optim::LinearScalingSchedule sched(0.01f, 8, 4);
  EXPECT_LT(sched.lr_for_epoch(0), 0.08f);
  EXPECT_GT(sched.lr_for_epoch(0), 0.01f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(4), 0.08f);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(100), 0.08f);
}

TEST(LinearScaling, SingleWorkerIsIdentity) {
  optim::LinearScalingSchedule sched(0.02f, 1, 3);
  EXPECT_FLOAT_EQ(sched.lr_for_epoch(10), 0.02f);
}

}  // namespace
}  // namespace pgti
