// Tests of the paper's core contribution: index-batching produces the
// SAME snapshots as standard preprocessing while holding one copy of
// the data and serving zero-copy views (paper §4.1, Fig. 4).
#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/index_dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace pgti::data {
namespace {

DatasetSpec small_spec(std::int64_t horizon = 6) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = horizon;
  return spec;
}

Tensor raw_for(const DatasetSpec& spec, std::uint64_t seed = 21) {
  SensorNetwork net = network_for(spec);
  return generate_signal(spec, net, seed);
}

TEST(IndexDataset, SnapshotCountMatchesFormula) {
  DatasetSpec spec = small_spec();
  IndexDataset ds(raw_for(spec), spec);
  EXPECT_EQ(ds.num_snapshots(), spec.num_snapshots());
  EXPECT_EQ(static_cast<std::int64_t>(ds.starts().size()), spec.num_snapshots());
}

TEST(IndexDataset, SnapshotsAreViewsNotCopies) {
  DatasetSpec spec = small_spec();
  IndexDataset ds(raw_for(spec), spec);
  const std::size_t before = MemoryTracker::instance().current(kHostSpace);
  for (std::int64_t i = 0; i < ds.num_snapshots(); i += 17) {
    const auto [x, y] = ds.get(i);
    EXPECT_TRUE(x.shares_storage_with(ds.data()));
    EXPECT_TRUE(y.shares_storage_with(ds.data()));
  }
  EXPECT_EQ(MemoryTracker::instance().current(kHostSpace), before)
      << "snapshot reconstruction must not allocate";
}

TEST(IndexDataset, YIsHorizonShiftedView) {
  DatasetSpec spec = small_spec(4);
  IndexDataset ds(raw_for(spec), spec);
  const auto [x0, y0] = ds.get(0);
  const auto [x4, y4] = ds.get(4);
  // y of snapshot 0 covers the same entries as x of snapshot horizon.
  EXPECT_EQ(ops::max_abs_diff(y0.contiguous(), x4.contiguous()), 0.0f);
}

TEST(IndexDataset, OutOfRangeThrows) {
  DatasetSpec spec = small_spec();
  IndexDataset ds(raw_for(spec), spec);
  EXPECT_THROW(ds.get(-1), std::out_of_range);
  EXPECT_THROW(ds.get(ds.num_snapshots()), std::out_of_range);
}

// THE key paper property: identical snapshots from both pipelines.
class PipelineIdentity : public ::testing::TestWithParam<int> {};

TEST_P(PipelineIdentity, IndexAndStandardBatchesAreBitIdentical) {
  DatasetSpec spec = small_spec(GetParam());
  Tensor raw = raw_for(spec, 33);
  StandardDataset standard(raw, spec);
  IndexDataset index(raw, spec);
  ASSERT_EQ(standard.num_snapshots(), index.num_snapshots());
  for (std::int64_t i = 0; i < index.num_snapshots(); i += 11) {
    const auto [sx, sy] = standard.get(i);
    const auto [ix, iy] = index.get(i);
    EXPECT_EQ(ops::max_abs_diff(sx.contiguous(), ix.contiguous()), 0.0f) << "x @" << i;
    EXPECT_EQ(ops::max_abs_diff(sy.contiguous(), iy.contiguous()), 0.0f) << "y @" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Horizons, PipelineIdentity, ::testing::Values(2, 4, 6, 12));

TEST(PipelineIdentity, ScalersAgree) {
  DatasetSpec spec = small_spec();
  Tensor raw = raw_for(spec, 34);
  StandardDataset standard(raw, spec);
  IndexDataset index(raw, spec);
  EXPECT_DOUBLE_EQ(standard.scaler().mean, index.scaler().mean);
  EXPECT_DOUBLE_EQ(standard.scaler().stddev, index.scaler().stddev);
}

TEST(PipelineIdentity, MeasuredMemoryRatioTracksEq1OverEq2) {
  DatasetSpec spec = small_spec(12);
  Tensor raw = raw_for(spec, 35);
  auto& tracker = MemoryTracker::instance();

  tracker.reset_peak(kHostSpace);
  const std::size_t base = tracker.current(kHostSpace);
  std::size_t standard_peak;
  {
    StandardDataset ds(raw, spec);
    standard_peak = tracker.peak(kHostSpace) - base;
  }
  tracker.reset_peak(kHostSpace);
  std::size_t index_peak;
  {
    IndexDataset ds(raw, spec);
    index_peak = tracker.peak(kHostSpace) - base;
  }
  // Standard materializes 2*h*s*n*f floats (plus the transient windows
  // list); index holds ~1 copy of the raw data.  The measured ratio
  // must be at least the horizon (analytically it is ~4*horizon with
  // the transient, ~2*horizon without).
  EXPECT_GT(static_cast<double>(standard_peak) / static_cast<double>(index_peak),
            static_cast<double>(spec.horizon));
}

TEST(PipelineIdentity, StandardPeakIncludesTransientStackSpike) {
  // The reference implementation's list-then-stack doubles the peak.
  DatasetSpec spec = small_spec(8);
  Tensor raw = raw_for(spec, 36);
  auto& tracker = MemoryTracker::instance();
  tracker.reset_peak(kHostSpace);
  const std::size_t base = tracker.current(kHostSpace);
  std::size_t peak, final_size;
  {
    StandardDataset ds(raw, spec);
    peak = tracker.peak(kHostSpace) - base;
    final_size = tracker.current(kHostSpace) - base;
  }
  EXPECT_GT(peak, final_size + final_size / 2) << "transient spike missing";
}

// ------------------------------------------------------ GPU-index-batching

TEST(GpuIndex, SingleUpfrontTransfer) {
  DatasetSpec spec = small_spec();
  Tensor raw = raw_for(spec, 37);
  SimDevice& gpu = DeviceManager::instance().gpu(0);
  gpu.reset_stats();
  IndexDataset ds(raw, spec, gpu);
  const TransferStats stats = gpu.stats();
  EXPECT_EQ(stats.h2d_count, 1u) << "GPU-index-batching must upload exactly once";
  EXPECT_EQ(stats.h2d_bytes,
            static_cast<std::uint64_t>(raw.numel()) * sizeof(float));
  EXPECT_EQ(ds.space(), gpu.space());
}

TEST(GpuIndex, SnapshotsResideOnDevice) {
  DatasetSpec spec = small_spec();
  Tensor raw = raw_for(spec, 38);
  SimDevice& gpu = DeviceManager::instance().gpu(0);
  IndexDataset ds(raw, spec, gpu);
  const auto [x, y] = ds.get(5);
  EXPECT_EQ(x.space(), gpu.space());
  EXPECT_EQ(y.space(), gpu.space());
}

TEST(GpuIndex, MatchesCpuIndexValues) {
  DatasetSpec spec = small_spec(4);
  Tensor raw = raw_for(spec, 39);
  SimDevice& gpu = DeviceManager::instance().gpu(0);
  IndexDataset cpu_ds(raw, spec);
  IndexDataset gpu_ds(raw, spec, gpu);
  for (std::int64_t i = 0; i < cpu_ds.num_snapshots(); i += 29) {
    const auto [cx, cy] = cpu_ds.get(i);
    const auto [gx, gy] = gpu_ds.get(i);
    EXPECT_EQ(ops::max_abs_diff(cx.contiguous(), gx.to(kHostSpace)), 0.0f);
  }
}

TEST(GpuIndex, RespectsDeviceCapacity) {
  DatasetSpec spec = small_spec();
  Tensor raw = raw_for(spec, 40);
  SimDevice& gpu = DeviceManager::instance().gpu(1);
  gpu.set_capacity(1024);  // tiny "GPU"
  EXPECT_THROW(IndexDataset(raw, spec, gpu), OutOfMemoryError);
  gpu.set_capacity(0);
}

// ------------------------------------------------- partitioned (generalized)

TEST(PartitionedIndex, ServesOwnRangeOnly) {
  DatasetSpec spec = small_spec(4);
  Tensor raw = raw_for(spec, 41);
  StandardScaler scaler;
  {
    Tensor stage1 = add_time_feature(raw, spec);
    scaler = fit_scaler(stage1, spec);
  }
  const std::int64_t lo = 100, hi = 200;
  const std::int64_t entry_lo = lo;
  const std::int64_t entry_len = (hi - 1 + 2 * spec.horizon) - entry_lo;
  IndexDataset part(raw.slice(0, entry_lo, entry_len).clone(), spec, entry_lo, scaler,
                    lo, hi);
  EXPECT_EQ(part.num_snapshots(), hi - lo);
  EXPECT_NO_THROW(part.get(0));
  EXPECT_NO_THROW(part.get(hi - lo - 1));
  EXPECT_THROW(part.get(hi - lo), std::out_of_range);
}

TEST(PartitionedIndex, MatchesFullDatasetValues) {
  DatasetSpec spec = small_spec(4);
  Tensor raw = raw_for(spec, 42);
  IndexDataset full(raw, spec);
  StandardScaler scaler = full.scaler();
  const std::int64_t lo = 50, hi = 120;
  const std::int64_t entry_len = (hi - 1 + 2 * spec.horizon) - lo;
  IndexDataset part(raw.slice(0, lo, entry_len).clone(), spec, lo, scaler, lo, hi);
  for (std::int64_t i = 0; i < hi - lo; i += 13) {
    const auto [fx, fy] = full.get(lo + i);
    const auto [px, py] = part.get(i);
    EXPECT_LT(ops::max_abs_diff(fx.contiguous(), px.contiguous()), 1e-6f);
    EXPECT_LT(ops::max_abs_diff(fy.contiguous(), py.contiguous()), 1e-6f);
  }
}

TEST(PartitionedIndex, TimeFeatureUsesGlobalClock) {
  DatasetSpec spec = small_spec(4);
  Tensor raw = raw_for(spec, 43);
  IndexDataset full(raw, spec);
  const std::int64_t lo = 77;
  const std::int64_t entry_len = 60;
  IndexDataset part(raw.slice(0, lo, entry_len).clone(), spec, lo, full.scaler(), lo,
                    lo + 20);
  // Time-of-day feature of the first partition entry must equal the
  // full dataset's at global position lo, not 0.
  EXPECT_EQ(part.data().at({0, 0, 1}), full.data().at({lo, 0, 1}));
}

}  // namespace
}  // namespace pgti::data
