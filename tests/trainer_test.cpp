// End-to-end workflow tests over the public PGT-I API.
#include <gtest/gtest.h>

#include "core/pgt_i.h"

namespace pgti::core {
namespace {

TrainConfig tiny_config(BatchingMode mode) {
  TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.model = ModelKind::kPgtDcrnn;
  cfg.mode = mode;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 6;
  cfg.max_val_batches = 3;
  cfg.seed = 99;
  return cfg;
}

TEST(Trainer, IndexModeTrains) {
  TrainResult r = Trainer(tiny_config(BatchingMode::kIndex)).run();
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_GT(r.model_parameters, 0);
  EXPECT_GT(r.curve[0].train_mae, 0.0);
  EXPECT_LT(r.best_val_mae, 1e29);
}

TEST(Trainer, LossDecreasesOverEpochs) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.epochs = 4;
  cfg.max_batches_per_epoch = 12;
  TrainResult r = Trainer(cfg).run();
  EXPECT_LT(r.curve.back().train_mae, r.curve.front().train_mae);
}

TEST(Trainer, IndexAndStandardProduceIdenticalCurves) {
  // The paper's core accuracy claim: index-batching feeds the model the
  // exact same snapshots, so seeded training trajectories match.
  TrainResult std_r = Trainer(tiny_config(BatchingMode::kStandard)).run();
  TrainResult idx_r = Trainer(tiny_config(BatchingMode::kIndex)).run();
  ASSERT_EQ(std_r.curve.size(), idx_r.curve.size());
  for (std::size_t e = 0; e < std_r.curve.size(); ++e) {
    EXPECT_DOUBLE_EQ(std_r.curve[e].train_mae, idx_r.curve[e].train_mae) << e;
    EXPECT_DOUBLE_EQ(std_r.curve[e].val_mae, idx_r.curve[e].val_mae) << e;
  }
}

TEST(Trainer, GpuIndexMatchesCpuIndexCurves) {
  TrainConfig gpu_cfg = tiny_config(BatchingMode::kGpuIndex);
  TrainResult gpu_r = Trainer(gpu_cfg).run();
  TrainResult cpu_r = Trainer(tiny_config(BatchingMode::kIndex)).run();
  ASSERT_EQ(gpu_r.curve.size(), cpu_r.curve.size());
  for (std::size_t e = 0; e < gpu_r.curve.size(); ++e) {
    EXPECT_NEAR(gpu_r.curve[e].train_mae, cpu_r.curve[e].train_mae, 1e-9) << e;
  }
}

TEST(Trainer, IndexUsesLessHostMemoryThanStandard) {
  TrainResult std_r = Trainer(tiny_config(BatchingMode::kStandard)).run();
  TrainResult idx_r = Trainer(tiny_config(BatchingMode::kIndex)).run();
  EXPECT_LT(idx_r.peak_host_bytes * 2, std_r.peak_host_bytes);
  EXPECT_LT(idx_r.resident_host_bytes * 2, std_r.resident_host_bytes);
}

TEST(Trainer, GpuIndexEliminatesPerBatchTransfers) {
  TrainResult idx_r = Trainer(tiny_config(BatchingMode::kIndex)).run();
  TrainResult gpu_r = Trainer(tiny_config(BatchingMode::kGpuIndex)).run();
  // CPU-index: 2 uploads per batch + parameter uploads.  GPU-index: one
  // raw upload + parameter uploads only.
  EXPECT_GT(idx_r.transfers.h2d_count, gpu_r.transfers.h2d_count * 4);
  EXPECT_LT(gpu_r.modeled_transfer_seconds, idx_r.modeled_transfer_seconds);
  // And the dataset lives on the device instead of the host.
  EXPECT_GT(gpu_r.peak_device_bytes, idx_r.peak_device_bytes);
  EXPECT_LT(gpu_r.resident_host_bytes, idx_r.resident_host_bytes);
}

TEST(Trainer, StandardModeOomsUnderMemoryLimit) {
  // Paper Fig. 2: the standard pipeline crashes while index-batching
  // survives under the same cap.
  TrainConfig cfg = tiny_config(BatchingMode::kStandard);
  auto& tracker = MemoryTracker::instance();
  // Cap host memory below the standard pipeline's needs but far above
  // index-batching's.
  TrainResult idx_probe = Trainer(tiny_config(BatchingMode::kIndex)).run();
  const std::size_t cap = idx_probe.peak_host_bytes * 4;
  tracker.set_limit(kHostSpace, tracker.current(kHostSpace) + cap);
  EXPECT_THROW(Trainer(cfg).run(), OutOfMemoryError);
  tracker.set_limit(kHostSpace, 0);
  // Index path fits comfortably under the same cap.
  tracker.set_limit(kHostSpace, tracker.current(kHostSpace) + cap);
  EXPECT_NO_THROW(Trainer(tiny_config(BatchingMode::kIndex)).run());
  tracker.set_limit(kHostSpace, 0);
}

TEST(Trainer, PaddedModeUsesMostMemory) {
  TrainResult pad_r = Trainer(tiny_config(BatchingMode::kPadded)).run();
  TrainResult std_r = Trainer(tiny_config(BatchingMode::kStandard)).run();
  EXPECT_GT(pad_r.resident_host_bytes, std_r.resident_host_bytes);
}

TEST(Trainer, TimelineRecordsWhenRequested) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.record_timeline = true;
  cfg.max_batches_per_epoch = 20;
  Trainer(cfg).run();
  EXPECT_GE(MemoryTracker::instance().timeline(kHostSpace).size(), 2u);
}

TEST(Trainer, HostOnlyModeWorks) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.use_device = false;
  TrainResult r = Trainer(cfg).run();
  EXPECT_EQ(r.transfers.h2d_count, 0u);
  EXPECT_EQ(r.peak_device_bytes, 0u);
  EXPECT_GT(r.curve.back().train_mae, 0.0);
}

TEST(Trainer, A3tgcnWorkflowRuns) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.model = ModelKind::kA3tgcn;
  TrainResult r = Trainer(cfg).run();
  EXPECT_GT(r.final_test_mse, 0.0);
}

TEST(Trainer, StllmWorkflowRuns) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.model = ModelKind::kStllm;
  cfg.hidden_dim = 16;
  TrainResult r = Trainer(cfg).run();
  EXPECT_EQ(r.curve.size(), 2u);
}

TEST(Trainer, FullDcrnnWorkflowRuns) {
  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.model = ModelKind::kDcrnn;
  cfg.num_layers = 1;
  cfg.max_batches_per_epoch = 3;
  TrainResult r = Trainer(cfg).run();
  EXPECT_GT(r.model_parameters, 0);
}

// ----------------------------------------------------------- distributed

DistConfig tiny_dist(DistMode mode, int world) {
  DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  cfg.seed = 31;
  return cfg;
}

TEST(DistTrainer, DistributedIndexRuns) {
  DistResult r = DistTrainer(tiny_dist(DistMode::kDistributedIndex, 4)).run();
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_GT(r.comm.allreduce_count, 0u);
  EXPECT_EQ(r.store.remote_snapshots, 0u) << "dist-index must not fetch remotely";
  EXPECT_EQ(r.modeled_fetch_seconds, 0.0);
}

TEST(DistTrainer, BaselineDdpAccountsRemoteFetches) {
  DistResult r = DistTrainer(tiny_dist(DistMode::kBaselineDdp, 4)).run();
  EXPECT_GT(r.store.remote_snapshots, 0u);
  EXPECT_GT(r.modeled_fetch_seconds, 0.0);
  // Remote snapshots now physically move; the modeled ledger must
  // decompose exactly into copied + cache-absorbed bytes.
  EXPECT_GT(r.store.bytes_copied, 0u);
  EXPECT_EQ(r.store.remote_bytes,
            r.store.bytes_copied + r.store.cache_hit_bytes);
}

TEST(DistTrainer, DdpLedgerEqualsBytesActuallyCopied) {
  // One full epoch from a cold cache: every rank touches each of its
  // snapshot ids at most once (disjoint permutation chunks; the val
  // range is disjoint from train), so no fetch can be served by the
  // cache and the modeled byte count must EQUAL the bytes physically
  // copied — the fetch model validated against real movement.
  DistConfig cfg = tiny_dist(DistMode::kBaselineDdp, 4);
  cfg.epochs = 1;
  cfg.max_batches_per_epoch = 0;  // whole shard: a full DDP baseline epoch
  cfg.max_val_batches = 0;
  DistResult r = DistTrainer(cfg).run();
  ASSERT_GT(r.store.remote_snapshots, 0u);
  EXPECT_EQ(r.store.cache_hits, 0u);
  EXPECT_EQ(r.store.bytes_copied, r.store.remote_bytes);
  EXPECT_EQ(r.store.remote_bytes,
            r.store.remote_snapshots *
                (2u * 4u * static_cast<std::uint64_t>(
                               cfg.spec.horizon * cfg.spec.nodes * cfg.spec.features)));
}

TEST(DistTrainer, TinyConfiguredCacheStillPricesConsolidatedModelExactly) {
  // Caches smaller than one batch (even zero-capacity) used to evict
  // announced snapshots before the loader staged them, double-pricing
  // every remote fetch as its own single-snapshot request.  Announced
  // snapshots are now pinned until consumed, so any configured
  // capacity is honored exactly and the consolidated model still
  // decomposes into real byte movement.
  for (std::int64_t capacity : {std::int64_t{1}, std::int64_t{0}}) {
    DistConfig cfg = tiny_dist(DistMode::kBaselineDdp, 4);
    cfg.epochs = 1;
    cfg.store_cache_snapshots = capacity;  // below batch_size = 8
    DistResult r = DistTrainer(cfg).run();
    ASSERT_GT(r.store.remote_snapshots, 0u) << "capacity=" << capacity;
    EXPECT_EQ(r.store.cache_hits, 0u) << "capacity=" << capacity;
    EXPECT_EQ(r.store.bytes_copied, r.store.remote_bytes) << "capacity=" << capacity;
  }
}

TEST(DistTrainer, GeneralizedIndexStaysLocal) {
  DistResult r = DistTrainer(tiny_dist(DistMode::kGeneralizedIndex, 4)).run();
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_EQ(r.store.remote_snapshots, 0u);
  EXPECT_GT(r.curve.back().train_mae, 0.0);
}

TEST(DistTrainer, BatchShuffleBaselineRuns) {
  DistResult r = DistTrainer(tiny_dist(DistMode::kBaselineDdpBatchShuffle, 2)).run();
  EXPECT_EQ(r.curve.size(), 2u);
}

TEST(DistTrainer, SingleWorkerMatchesTrainer) {
  // W=1 dist-index must match the single-GPU index workflow exactly
  // (same shuffles, same gradients, no collectives change anything).
  DistConfig dcfg = tiny_dist(DistMode::kDistributedIndex, 1);
  DistResult dr = DistTrainer(dcfg).run();

  TrainConfig cfg = tiny_config(BatchingMode::kIndex);
  cfg.seed = dcfg.seed;
  cfg.spec = dcfg.spec;
  cfg.epochs = dcfg.epochs;
  cfg.hidden_dim = dcfg.hidden_dim;
  cfg.diffusion_steps = dcfg.diffusion_steps;
  cfg.max_batches_per_epoch = dcfg.max_batches_per_epoch;
  cfg.max_val_batches = dcfg.max_val_batches;
  cfg.use_device = false;
  TrainResult tr = Trainer(cfg).run();
  ASSERT_EQ(dr.curve.size(), tr.curve.size());
  for (std::size_t e = 0; e < dr.curve.size(); ++e) {
    EXPECT_NEAR(dr.curve[e].train_mae, tr.curve[e].train_mae, 1e-6) << e;
  }
}

TEST(DistTrainer, DistIndexMemoryGrowsWithWorld) {
  // Each worker holds a full copy (paper §5.3.2: DDP's footprint is
  // smaller than dist-index's at high worker counts).
  DistResult w1 = DistTrainer(tiny_dist(DistMode::kDistributedIndex, 1)).run();
  DistResult w4 = DistTrainer(tiny_dist(DistMode::kDistributedIndex, 4)).run();
  EXPECT_GT(w4.peak_host_bytes, w1.peak_host_bytes);
}

TEST(DistTrainer, LrScalingChangesTrajectory) {
  DistConfig base = tiny_dist(DistMode::kDistributedIndex, 2);
  DistConfig scaled = base;
  scaled.scale_lr = true;
  DistResult rb = DistTrainer(base).run();
  DistResult rs = DistTrainer(scaled).run();
  EXPECT_NE(rb.curve.back().train_mae, rs.curve.back().train_mae);
}

}  // namespace
}  // namespace pgti::core
