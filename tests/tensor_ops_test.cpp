#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

Tensor make(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn(shape, rng);
}

TEST(Elementwise, AddSubMulDiv) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4});
  Tensor b = Tensor::from_vector({4, 3, 2, 1});
  EXPECT_EQ(ops::add(a, b).at({0}), 5.0f);
  EXPECT_EQ(ops::sub(a, b).at({0}), -3.0f);
  EXPECT_EQ(ops::mul(a, b).at({1}), 6.0f);
  EXPECT_EQ(ops::div(a, b).at({3}), 4.0f);
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW(ops::add(a, b), std::invalid_argument);
}

TEST(Elementwise, ScalarOps) {
  Tensor a = Tensor::from_vector({1, 2});
  EXPECT_EQ(ops::add_scalar(a, 0.5f).at({0}), 1.5f);
  EXPECT_EQ(ops::mul_scalar(a, 3.0f).at({1}), 6.0f);
}

TEST(Elementwise, InPlaceOps) {
  Tensor a = Tensor::from_vector({1, 2});
  Tensor b = Tensor::from_vector({10, 20});
  ops::add_(a, b);
  EXPECT_EQ(a.at({1}), 22.0f);
  ops::sub_(a, b);
  EXPECT_EQ(a.at({1}), 2.0f);
  ops::scale_(a, 2.0f);
  EXPECT_EQ(a.at({0}), 2.0f);
  ops::axpy_(0.5f, b, a);
  EXPECT_EQ(a.at({0}), 7.0f);
  ops::mul_(a, b);
  EXPECT_EQ(a.at({0}), 70.0f);
}

TEST(Unary, Activations) {
  Tensor a = Tensor::from_vector({-1.0f, 0.0f, 1.0f});
  EXPECT_NEAR(ops::sigmoid(a).at({0}), 1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
  EXPECT_NEAR(ops::tanh(a).at({2}), std::tanh(1.0f), 1e-6f);
  EXPECT_EQ(ops::relu(a).at({0}), 0.0f);
  EXPECT_EQ(ops::relu(a).at({2}), 1.0f);
  EXPECT_NEAR(ops::exp(a).at({1}), 1.0f, 1e-6f);
  EXPECT_EQ(ops::abs(a).at({0}), 1.0f);
  EXPECT_EQ(ops::neg(a).at({2}), -1.0f);
}

// -------------------------------------------------------------- matmul

TEST(Matmul, KnownValues) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape({2, 3});
  Tensor b = Tensor::from_vector({7, 8, 9, 10, 11, 12}).reshape({3, 2});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Matmul, IncompatibleShapesThrow) {
  EXPECT_THROW(ops::matmul(Tensor::zeros({2, 3}), Tensor::zeros({2, 3})),
               std::invalid_argument);
}

TEST(Matmul, TnMatchesExplicitTranspose) {
  Tensor a = make({5, 3}, 1);
  Tensor b = make({5, 4}, 2);
  Tensor via_tn = ops::matmul_tn(a, b);
  Tensor via_t = ops::matmul(a.transpose(0, 1).contiguous(), b);
  EXPECT_LT(ops::max_abs_diff(via_tn, via_t), 1e-5f);
}

TEST(Matmul, NtMatchesExplicitTranspose) {
  Tensor a = make({4, 6}, 3);
  Tensor b = make({5, 6}, 4);
  Tensor via_nt = ops::matmul_nt(a, b);
  Tensor via_t = ops::matmul(a, b.transpose(0, 1).contiguous());
  EXPECT_LT(ops::max_abs_diff(via_nt, via_t), 1e-5f);
}

class MatmulSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = make({m, k}, 10);
  Tensor b = make({k, n}, 11);
  Tensor c = ops::matmul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += a.at({i, kk}) * b.at({kk, j});
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4f) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSizes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 7, 3},
                                           std::tuple{16, 16, 16}, std::tuple{33, 5, 9},
                                           std::tuple{64, 3, 1}, std::tuple{5, 64, 5}));

// ----------------------------------------------------- broadcast helpers

TEST(Broadcast, AddBias) {
  Tensor m = Tensor::zeros({3, 2});
  Tensor bias = Tensor::from_vector({1.0f, 2.0f});
  Tensor out = ops::add_bias(m, bias);
  EXPECT_EQ(out.at({2, 0}), 1.0f);
  EXPECT_EQ(out.at({0, 1}), 2.0f);
}

TEST(Broadcast, AddBiasRank3) {
  Tensor m = Tensor::zeros({2, 3, 2});
  Tensor out = ops::add_bias(m, Tensor::from_vector({5.0f, 6.0f}));
  EXPECT_EQ(out.at({1, 2, 1}), 6.0f);
}

TEST(Broadcast, AddBiasWrongSizeThrows) {
  EXPECT_THROW(ops::add_bias(Tensor::zeros({2, 3}), Tensor::zeros({2})),
               std::invalid_argument);
}

TEST(Broadcast, MulColvec) {
  Tensor m = Tensor::ones({2, 3});
  Tensor col = Tensor::from_vector({2.0f, 3.0f}).reshape({2, 1});
  Tensor out = ops::mul_colvec(m, col);
  EXPECT_EQ(out.at({0, 2}), 2.0f);
  EXPECT_EQ(out.at({1, 0}), 3.0f);
}

// ------------------------------------------------------------- reductions

TEST(Reduce, SumMean) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(ops::sum(t), 10.0);
  EXPECT_DOUBLE_EQ(ops::mean(t), 2.5);
}

TEST(Reduce, MaxAbs) {
  EXPECT_EQ(ops::max_abs(Tensor::from_vector({-5, 2, 3})), 5.0f);
}

TEST(Reduce, ColsumRowsum) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape({2, 3});
  Tensor cs = ops::colsum(t);
  EXPECT_EQ(cs.at({0}), 5.0f);
  EXPECT_EQ(cs.at({2}), 9.0f);
  Tensor rs = ops::rowsum(t);
  EXPECT_EQ(rs.at({0, 0}), 6.0f);
  EXPECT_EQ(rs.at({1, 0}), 15.0f);
}

// ------------------------------------------------------------- concat

TEST(Concat, LastDim) {
  Tensor a = Tensor::from_vector({1, 2, 3, 4}).reshape({2, 2});
  Tensor b = Tensor::from_vector({5, 6}).reshape({2, 1});
  Tensor c = ops::concat_lastdim({a, b});
  ASSERT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.at({0, 2}), 5.0f);
  EXPECT_EQ(c.at({1, 0}), 3.0f);
}

TEST(Concat, ThreeParts) {
  Tensor a = Tensor::ones({2, 1});
  Tensor b = ops::mul_scalar(Tensor::ones({2, 2}), 2.0f);
  Tensor c = ops::mul_scalar(Tensor::ones({2, 1}), 3.0f);
  Tensor out = ops::concat_lastdim({a, b, c});
  ASSERT_EQ(out.shape(), (Shape{2, 4}));
  EXPECT_EQ(out.at({1, 0}), 1.0f);
  EXPECT_EQ(out.at({1, 2}), 2.0f);
  EXPECT_EQ(out.at({1, 3}), 3.0f);
}

TEST(Concat, MismatchThrows) {
  EXPECT_THROW(ops::concat_lastdim({Tensor::zeros({2, 2}), Tensor::zeros({3, 2})}),
               std::invalid_argument);
  EXPECT_THROW(ops::concat_lastdim({}), std::invalid_argument);
}

// ------------------------------------------------------------- softmax

TEST(Softmax, RowsSumToOne) {
  Tensor t = make({5, 7}, 99);
  Tensor s = ops::softmax_lastdim(t);
  for (int r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int c = 0; c < 7; ++c) {
      const float v = s.at({r, c});
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor t = Tensor::from_vector({1000.0f, 1000.0f});
  Tensor s = ops::softmax_lastdim(t.reshape({1, 2}));
  EXPECT_NEAR(s.at({0, 0}), 0.5f, 1e-6f);
}

TEST(Softmax, ShiftInvariant) {
  Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f}).reshape({1, 3});
  Tensor shifted = ops::add_scalar(t, 100.0f);
  EXPECT_LT(ops::max_abs_diff(ops::softmax_lastdim(t), ops::softmax_lastdim(shifted)),
            1e-6f);
}

// ------------------------------------------------------------- metrics

TEST(Metrics, MaeMse) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({2, 2, 1});
  EXPECT_DOUBLE_EQ(ops::mae(a, b), 1.0);
  EXPECT_NEAR(ops::mse(a, b), 5.0 / 3.0, 1e-12);
}

TEST(Metrics, MaxAbsDiffHandlesViews) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  EXPECT_EQ(ops::max_abs_diff(a.transpose(0, 1), a.transpose(0, 1)), 0.0f);
}

TEST(Metrics, NonContiguousInputRejectedByKernels) {
  Tensor t = Tensor::zeros({4, 4});
  EXPECT_THROW(ops::add(t.slice(1, 0, 2), t.slice(1, 2, 2)), std::logic_error);
}

}  // namespace
}  // namespace pgti
