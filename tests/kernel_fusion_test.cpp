// Parity and gradient coverage for the fused/blocked kernel layer
// (DESIGN.md §14).  Every fused op must be BIT-IDENTICAL to the
// retained reference composition — not merely close — because the
// repo's determinism suites compare losses across world sizes and
// strategies with exact equality.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "autograd/gradcheck.h"
#include "autograd/ops.h"
#include "graph/csr.h"
#include "graph/spatial.h"
#include "nn/dcgru.h"
#include "tensor/tensor_ops.h"

namespace pgti {
namespace {

constexpr double kTol = 2e-2;  // float32 central differences

Tensor randn(const Shape& shape, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::randn(shape, rng, scale);
}

Variable leaf(const Shape& shape, std::uint64_t seed, float scale = 1.0f) {
  return Variable(randn(shape, seed, scale), /*requires_grad=*/true);
}

void expect_bits(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  const Tensor ca = a.contiguous();
  const Tensor cb = b.contiguous();
  EXPECT_EQ(std::memcmp(ca.data(), cb.data(),
                        sizeof(float) * static_cast<std::size_t>(ca.numel())),
            0);
}

Csr random_csr(std::int64_t n, std::uint64_t seed) {
  SensorNetworkOptions opt;
  opt.num_nodes = n;
  opt.k_neighbors = 3;
  opt.seed = seed;
  return build_sensor_network(opt).adjacency;
}

// ------------------------------------------------- blocked matmul family

TEST(BlockedMatmul, BitIdenticalToReference) {
  // Shapes chosen to hit full 4x64 register blocks, ragged row tails,
  // ragged j-panels, and tiny degenerate sizes.
  const std::vector<Shape> cases = {
      {64, 64}, {256, 256}, {5, 7}, {130, 37}, {1, 1}, {3, 200}, {67, 96}};
  for (const Shape& mk : cases) {
    for (std::int64_t n : {1LL, 9LL, 64LL, 130LL}) {
      Tensor a = randn({mk[0], mk[1]}, 11 + static_cast<std::uint64_t>(n));
      Tensor b = randn({mk[1], n}, 13 + static_cast<std::uint64_t>(n));
      expect_bits(ops::matmul(a, b), ops::matmul_reference(a, b));
    }
  }
}

TEST(BlockedMatmul, ReferenceZeroSkipParityWithZeros) {
  // The reference kernel skips aik == 0 terms; the blocked kernel adds
  // 0 * b[k, j].  For finite inputs both accumulate identical bits.
  Tensor a = randn({33, 17}, 3);
  float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); i += 3) pa[i] = 0.0f;
  Tensor b = randn({17, 70}, 4);
  expect_bits(ops::matmul(a, b), ops::matmul_reference(a, b));
}

TEST(BlockedMatmul, TnBitIdenticalToScalarLoop) {
  const std::int64_t K = 37, M = 30, N = 70;
  Tensor a = randn({K, M}, 5);
  Tensor b = randn({K, N}, 6);
  Tensor want = Tensor::zeros({M, N});
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += a.data()[k * M + m] * b.data()[k * N + n];
      }
      want.data()[m * N + n] = acc;
    }
  }
  expect_bits(ops::matmul_tn(a, b), want);
}

TEST(BlockedMatmul, NtBitIdenticalToScalarLoop) {
  const std::int64_t M = 30, K = 41, N = 27;
  Tensor a = randn({M, K}, 7);
  Tensor b = randn({N, K}, 8);
  Tensor want = Tensor::zeros({M, N});
  for (std::int64_t m = 0; m < M; ++m) {
    for (std::int64_t n = 0; n < N; ++n) {
      float acc = 0.0f;
      for (std::int64_t k = 0; k < K; ++k) {
        acc += a.data()[m * K + k] * b.data()[n * K + k];
      }
      want.data()[m * N + n] = acc;
    }
  }
  expect_bits(ops::matmul_nt(a, b), want);
}

TEST(FusedMatmul, BiasActMatchesUnfusedComposition) {
  Tensor a = randn({45, 19}, 9);
  Tensor b = randn({19, 33}, 10);
  Tensor bias = randn({33}, 11);
  for (ops::Act act : {ops::Act::kIdentity, ops::Act::kSigmoid, ops::Act::kTanh,
                       ops::Act::kRelu}) {
    Tensor unfused = ops::add_bias(ops::matmul(a, b), bias);
    ops::apply_act_(unfused, act);
    expect_bits(ops::matmul_bias_act(a, b, bias, act), unfused);
  }
}

// ----------------------------------------------------------- fused SpMM

TEST(FusedSpmm, BatchedBitIdenticalToReference) {
  const Csr m = random_csr(40, 21);
  Tensor x = randn({6, 40, 9}, 22);
  expect_bits(m.spmm_batched(x), m.spmm_batched_reference(x));
}

TEST(FusedSpmm, BiasActMatchesUnfusedComposition2D) {
  const Csr m = random_csr(30, 23);
  Tensor x = randn({30, 7}, 24);
  Tensor bias = randn({7}, 25);
  for (ops::Act act : {ops::Act::kIdentity, ops::Act::kSigmoid, ops::Act::kTanh,
                       ops::Act::kRelu}) {
    Tensor unfused = ops::add_bias(m.spmm(x), bias);
    ops::apply_act_(unfused, act);
    expect_bits(m.spmm_bias_act(x, bias, act), unfused);
  }
}

TEST(FusedSpmm, BiasActMatchesUnfusedCompositionBatched) {
  const Csr m = random_csr(25, 26);
  Tensor x = randn({4, 25, 5}, 27);
  Tensor bias = randn({5}, 28);
  Tensor unfused = ops::add_bias(m.spmm_batched(x), bias);
  ops::apply_act_(unfused, ops::Act::kSigmoid);
  expect_bits(m.spmm_bias_act(x, bias, ops::Act::kSigmoid), unfused);
}

// ----------------------------------------------------- fused GRU kernels

TEST(FusedGru, GatesMatchSigmoidSliceMul) {
  const std::int64_t H = 12;
  Tensor pre = randn({7, 5, 2 * H}, 31);
  Tensor h = randn({7, 5, H}, 32);
  Tensor r = Tensor::empty(h.shape(), h.space());
  Tensor u = Tensor::empty(h.shape(), h.space());
  Tensor rh = Tensor::empty(h.shape(), h.space());
  ops::gru_gates(pre, h, r, u, rh);

  Tensor ru = ops::sigmoid(pre);
  Tensor want_r = ru.slice(2, 0, H).contiguous();
  Tensor want_u = ru.slice(2, H, H).contiguous();
  expect_bits(r, want_r);
  expect_bits(u, want_u);
  expect_bits(rh, ops::mul(want_r, h));
}

TEST(FusedGru, StateMatchesAddMulSub) {
  Tensor c = randn({9, 14}, 33);
  Tensor u = randn({9, 14}, 34);
  Tensor h = randn({9, 14}, 35);
  expect_bits(ops::gru_state(c, u, h), ops::add(c, ops::mul(u, ops::sub(h, c))));
}

// ------------------------------------- in-place / output-reusing variants

TEST(ElementwiseVariants, IntoAndInplaceMatchAllocating) {
  Tensor a = randn({300}, 41);
  Tensor b = randn({300}, 42);
  Tensor out = Tensor::empty(a.shape(), a.space());
  ops::add_into(a, b, out);
  expect_bits(out, ops::add(a, b));
  ops::sub_into(a, b, out);
  expect_bits(out, ops::sub(a, b));
  ops::mul_into(a, b, out);
  expect_bits(out, ops::mul(a, b));

  // Aliasing: out == a must behave like the pure op.
  Tensor a2 = a.clone();
  ops::sub_into(a2, b, a2);
  expect_bits(a2, ops::sub(a, b));

  Tensor s = a.clone();
  ops::sigmoid_(s);
  expect_bits(s, ops::sigmoid(a));
  Tensor t = a.clone();
  ops::tanh_(t);
  expect_bits(t, ops::tanh(a));
  Tensor r = a.clone();
  ops::relu_(r);
  expect_bits(r, ops::relu(a));
  Tensor i = a.clone();
  ops::apply_act_(i, ops::Act::kIdentity);
  expect_bits(i, a);
}

// ------------------------------------------- contiguity guards (satellite)

TEST(ContiguityGuards, InplaceOpsRejectNonContiguous) {
  Tensor base = randn({4, 6}, 51);
  Tensor view = base.slice(1, 0, 3);  // non-contiguous [4, 3] view
  ASSERT_FALSE(view.is_contiguous());
  Tensor other = randn({4, 3}, 52);
  EXPECT_THROW(ops::add_(view, other), std::logic_error);
  EXPECT_THROW(ops::sub_(view, other), std::logic_error);
  EXPECT_THROW(ops::mul_(view, other), std::logic_error);
  EXPECT_THROW(ops::scale_(view, 2.0f), std::logic_error);
  EXPECT_THROW(ops::axpy_(1.0f, other, view), std::logic_error);
  Tensor dst = Tensor::empty({4, 3});
  EXPECT_THROW(ops::add_into(view, other, dst), std::logic_error);
}

// ------------------------------------------------ autograd: gradchecks

TEST(FusedAutograd, MatmulBiasActGradcheck) {
  for (ops::Act act : {ops::Act::kIdentity, ops::Act::kSigmoid, ops::Act::kTanh,
                       ops::Act::kRelu}) {
    Variable a = leaf({5, 4}, 61);
    Variable w = leaf({4, 3}, 62);
    Variable b = leaf({3}, 63);
    auto check = [&](Variable& wrt) {
      auto res = ag::gradcheck(
          [&](const Variable&) {
            return ag::sum_all(ag::matmul_bias_act(a, w, b, act));
          },
          wrt);
      EXPECT_LT(res.max_rel_err, kTol);
    };
    check(a);
    check(w);
    check(b);
  }
}

TEST(FusedAutograd, SpmmBiasActGradcheck) {
  const Csr m = random_csr(12, 64);
  const Csr mt = m.transpose();
  Variable x = leaf({12, 3}, 65);
  Variable b = leaf({3}, 66);
  for (Variable* wrt : {&x, &b}) {
    auto res = ag::gradcheck(
        [&](const Variable&) {
          return ag::sum_all(ag::spmm_bias_act(m, mt, x, b, ops::Act::kTanh));
        },
        *wrt);
    EXPECT_LT(res.max_rel_err, kTol);
  }
}

TEST(FusedAutograd, SpmmBiasActGradcheckBatched) {
  const Csr m = random_csr(8, 67);
  const Csr mt = m.transpose();
  Variable x = leaf({2, 8, 3}, 68);
  Variable b = leaf({3}, 69);
  for (Variable* wrt : {&x, &b}) {
    auto res = ag::gradcheck(
        [&](const Variable&) {
          return ag::sum_all(ag::spmm_bias_act(m, mt, x, b, ops::Act::kSigmoid));
        },
        *wrt);
    EXPECT_LT(res.max_rel_err, kTol);
  }
}

TEST(FusedAutograd, GruGatesGradcheck) {
  const std::int64_t H = 4;
  Variable pre = leaf({6, 2 * H}, 71);
  Variable h = leaf({6, H}, 72);
  for (Variable* wrt : {&pre, &h}) {
    auto res = ag::gradcheck(
        [&](const Variable&) {
          auto [rh, u] = ag::gru_gates(pre, h);
          return ag::sum_all(ag::add(rh, u));
        },
        *wrt);
    EXPECT_LT(res.max_rel_err, kTol);
  }
}

TEST(FusedAutograd, GruStateGradcheck) {
  Variable c = leaf({6, 5}, 73);
  Variable u = leaf({6, 5}, 74);
  Variable h = leaf({6, 5}, 75);
  for (Variable* wrt : {&c, &u, &h}) {
    auto res = ag::gradcheck(
        [&](const Variable&) { return ag::sum_all(ag::gru_state(c, u, h)); }, *wrt);
    EXPECT_LT(res.max_rel_err, kTol);
  }
}

// ------------------------------- autograd: fused vs reference, bit-exact

TEST(FusedAutograd, MatmulBiasActGradsMatchReferenceComposition) {
  for (ops::Act act : {ops::Act::kIdentity, ops::Act::kSigmoid, ops::Act::kTanh,
                       ops::Act::kRelu}) {
    Variable a1 = leaf({20, 11}, 81), w1 = leaf({11, 8}, 82), b1 = leaf({8}, 83);
    Variable a2 = leaf({20, 11}, 81), w2 = leaf({11, 8}, 82), b2 = leaf({8}, 83);

    Variable fused = ag::matmul_bias_act(a1, w1, b1, act);
    Variable pre = ag::add_bias(ag::matmul_reference(a2, w2), b2);
    Variable ref = act == ops::Act::kSigmoid  ? ag::sigmoid(pre)
                   : act == ops::Act::kTanh   ? ag::tanh(pre)
                   : act == ops::Act::kRelu   ? ag::relu(pre)
                                              : pre;
    expect_bits(fused.value(), ref.value());

    ag::sum_all(fused).backward();
    ag::sum_all(ref).backward();
    expect_bits(a1.grad(), a2.grad());
    expect_bits(w1.grad(), w2.grad());
    expect_bits(b1.grad(), b2.grad());
  }
}

TEST(FusedAutograd, GruChainGradsMatchReferenceComposition) {
  // Mirrors DCGRUCell's tape: pre -> gates -> candidate-style tanh ->
  // state update, with h consumed by gates and state exactly as in the
  // cell.  Grads on pre and h must match the unfused chain bit-for-bit.
  const std::int64_t H = 6;
  Variable pre1 = leaf({10, 2 * H}, 84), h1 = leaf({10, H}, 85),
           c1 = leaf({10, H}, 86);
  Variable pre2 = leaf({10, 2 * H}, 84), h2 = leaf({10, H}, 85),
           c2 = leaf({10, H}, 86);

  auto [rh1, u1] = ag::gru_gates(pre1, h1);
  Variable cand1 = ag::tanh(ag::add(c1, rh1));
  Variable out1 = ag::gru_state(cand1, u1, h1);

  Variable ru = ag::sigmoid(pre2);
  Variable r = ag::slice_lastdim(ru, 0, H);
  Variable u2 = ag::slice_lastdim(ru, H, H);
  Variable cand2 = ag::tanh(ag::add(c2, ag::mul(r, h2)));
  Variable out2 = ag::add(cand2, ag::mul(u2, ag::sub(h2, cand2)));

  expect_bits(out1.value(), out2.value());
  ag::sum_all(out1).backward();
  ag::sum_all(out2).backward();
  expect_bits(pre1.grad(), pre2.grad());
  expect_bits(h1.grad(), h2.grad());
  expect_bits(c1.grad(), c2.grad());
}

// --------------------------------------- cell-level toggle parity

TEST(DcgruFusion, CellForwardBackwardBitIdenticalToReferencePath) {
  SensorNetworkOptions opt;
  opt.num_nodes = 10;
  opt.k_neighbors = 3;
  opt.seed = 91;
  auto supports =
      nn::GraphSupports::from(dual_random_walk_supports(build_sensor_network(opt).adjacency));
  Rng rng(92);
  nn::DCGRUCell cell(3, 8, supports, 2, rng);
  Tensor x = randn({4, 10, 3}, 93);
  Tensor h0 = randn({4, 10, 8}, 94);

  ASSERT_TRUE(nn::gru_fusion_enabled());
  Variable h_fused(h0.clone(), /*requires_grad=*/true);
  Variable out_fused = cell.forward(Variable(x, false), h_fused);
  // Two chained steps so the hidden state is consumed by a later cell
  // too (the recurrent accumulation-order case).
  out_fused = cell.forward(Variable(x, false), out_fused);
  ag::sum_all(out_fused).backward();
  std::vector<Tensor> grads_fused;
  for (const Variable& p : cell.parameters()) grads_fused.push_back(p.grad().clone());
  Tensor h_grad_fused = h_fused.grad().clone();
  Tensor out_val_fused = out_fused.value().clone();

  cell.zero_grad();
  nn::set_gru_fusion_enabled(false);
  Variable h_ref(h0.clone(), /*requires_grad=*/true);
  Variable out_ref = cell.forward(Variable(x, false), h_ref);
  out_ref = cell.forward(Variable(x, false), out_ref);
  ag::sum_all(out_ref).backward();
  nn::set_gru_fusion_enabled(true);

  expect_bits(out_val_fused, out_ref.value());
  expect_bits(h_grad_fused, h_ref.grad());
  const auto params = cell.parameters();
  ASSERT_EQ(params.size(), grads_fused.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    expect_bits(grads_fused[i], params[i].grad());
  }
  cell.zero_grad();
}

// ----------------------------- grad-ready accounting with fused nodes

class CountingObserver : public GradReadyObserver {
 public:
  void on_backward_start(const std::vector<Variable::Impl*>& leaves) override {
    for (Variable::Impl* l : leaves) ++starts_[l];
  }
  void on_grad_ready(const Variable::Impl* leaf) override { ++ready_[leaf]; }

  std::size_t leaf_count() const { return starts_.size(); }
  bool fired_once_each() const {
    if (ready_.size() != starts_.size()) return false;
    for (const auto& [leaf, n] : ready_) {
      if (n != 1) return false;
    }
    return true;
  }

 private:
  std::map<const Variable::Impl*, int> starts_;
  std::map<const Variable::Impl*, int> ready_;
};

TEST(DcgruFusion, GradReadyFiresOncePerLeafWithFusedTape) {
  // gru_gates makes its pre input a two-consumer parent; the ready
  // countdown must still fire exactly once per leaf.
  SensorNetworkOptions opt;
  opt.num_nodes = 8;
  opt.k_neighbors = 3;
  opt.seed = 95;
  auto supports =
      nn::GraphSupports::from(dual_random_walk_supports(build_sensor_network(opt).adjacency));
  Rng rng(96);
  nn::DCGRUCell cell(2, 4, supports, 1, rng);
  Variable h(Tensor::zeros({3, 8, 4}), false);
  Variable out = cell.forward(Variable(randn({3, 8, 2}, 97), false), h);
  CountingObserver obs;
  ag::sum_all(out).backward(&obs);
  EXPECT_EQ(obs.leaf_count(), cell.parameters().size());
  EXPECT_TRUE(obs.fired_once_each());
}

}  // namespace
}  // namespace pgti
