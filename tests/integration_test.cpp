// Cross-module integration and property sweeps over the public API.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pgt_i.h"
#include "tensor/tensor_ops.h"

namespace pgti::core {
namespace {

// ------------------------------------------------ pipeline-equality sweep

struct PipelineCase {
  data::DatasetKind kind;
  double scale;
  std::int64_t horizon;
  ModelKind model;
};

class PipelineEquality : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquality, AllBatchingModesTrainIdentically) {
  const PipelineCase pc = GetParam();
  TrainConfig cfg;
  cfg.spec = data::spec_for(pc.kind).scaled(pc.scale);
  cfg.spec.horizon = pc.horizon;
  cfg.spec.batch_size = 8;
  cfg.model = pc.model;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.num_layers = 1;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  cfg.seed = 77;

  cfg.mode = BatchingMode::kStandard;
  TrainResult standard = Trainer(cfg).run();
  cfg.mode = BatchingMode::kIndex;
  TrainResult index = Trainer(cfg).run();
  cfg.mode = BatchingMode::kGpuIndex;
  TrainResult gpu = Trainer(cfg).run();

  ASSERT_EQ(standard.curve.size(), index.curve.size());
  for (std::size_t e = 0; e < standard.curve.size(); ++e) {
    EXPECT_DOUBLE_EQ(standard.curve[e].train_mae, index.curve[e].train_mae);
    EXPECT_NEAR(index.curve[e].train_mae, gpu.curve[e].train_mae, 1e-9);
  }
  EXPECT_LT(index.peak_host_bytes, standard.peak_host_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineEquality,
    ::testing::Values(
        PipelineCase{data::DatasetKind::kPemsBay, 64, 4, ModelKind::kPgtDcrnn},
        PipelineCase{data::DatasetKind::kMetrLa, 32, 6, ModelKind::kPgtDcrnn},
        PipelineCase{data::DatasetKind::kChickenpoxHungary, 1, 4, ModelKind::kA3tgcn},
        PipelineCase{data::DatasetKind::kWindmillLarge, 16, 4, ModelKind::kPgtDcrnn},
        PipelineCase{data::DatasetKind::kPemsBay, 64, 4, ModelKind::kStllm}));

// ------------------------------------------------ distributed mode matrix

class DistModeMatrix : public ::testing::TestWithParam<std::tuple<DistMode, int>> {};

TEST_P(DistModeMatrix, TrainsAndAggregatesMetrics) {
  const auto [mode, world] = GetParam();
  DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 3;
  cfg.max_val_batches = 2;
  DistResult r = DistTrainer(cfg).run();
  ASSERT_EQ(r.curve.size(), 2u);
  for (const EpochMetrics& em : r.curve) {
    EXPECT_GT(em.train_mae, 0.0);
    EXPECT_GT(em.val_mae, 0.0);
  }
  if (world > 1) {
    EXPECT_GT(r.comm.allreduce_count, 0u);
  }
  const bool store_mode = mode == DistMode::kBaselineDdp ||
                          mode == DistMode::kBaselineDdpBatchShuffle;
  if (store_mode && world > 1) {
    EXPECT_GT(r.store.remote_snapshots, 0u);
  } else {
    EXPECT_EQ(r.store.remote_snapshots, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DistModeMatrix,
    ::testing::Combine(::testing::Values(DistMode::kDistributedIndex,
                                         DistMode::kBaselineDdp,
                                         DistMode::kGeneralizedIndex,
                                         DistMode::kBaselineDdpBatchShuffle),
                       ::testing::Values(1, 2, 4)));

// ------------------------------------------------------------ evaluation

class EvaluationTest : public ::testing::Test {
 protected:
  EvaluationTest() {
    spec_ = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
    spec_.horizon = 4;
    net_ = data::network_for(spec_);
    raw_ = data::generate_signal(spec_, net_, 5);
    dataset_ = std::make_unique<data::IndexDataset>(raw_, spec_);
    source_ = std::make_unique<data::IndexSource>(*dataset_);
    bundle_ = make_model(ModelKind::kPgtDcrnn, spec_, net_, 8, 1, 1, 5);
  }

  data::DatasetSpec spec_;
  SensorNetwork net_;
  Tensor raw_;
  std::unique_ptr<data::IndexDataset> dataset_;
  std::unique_ptr<data::IndexSource> source_;
  ModelBundle bundle_;
};

TEST_F(EvaluationTest, OneMetricPerPredictionStep) {
  EvalOptions opt;
  opt.batch_size = 8;
  opt.max_batches = 3;
  HorizonMetrics m = evaluate_horizon(*bundle_.model, *source_, 0, 100, opt);
  ASSERT_EQ(m.mae.size(), 4u);
  ASSERT_EQ(m.rmse.size(), 4u);
  ASSERT_EQ(m.mape.size(), 4u);
  EXPECT_EQ(m.samples, 24);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_GT(m.mae[t], 0.0);
    EXPECT_GE(m.rmse[t], m.mae[t]) << "RMSE >= MAE always";
    EXPECT_GT(m.mape[t], 0.0);
  }
}

TEST_F(EvaluationTest, PerfectModelScoresZero) {
  // Feed the targets back as "predictions" via a model-free check:
  // evaluate a model against its own outputs is impossible here, so
  // instead verify the metric math with a zero-error construction.
  HorizonMetrics m;
  m.mae = {0.0, 0.0};
  m.rmse = {0.0, 0.0};
  m.mape = {0.0, 0.0};
  EXPECT_EQ(m.overall_mae(), 0.0);
  EXPECT_EQ(m.overall_rmse(), 0.0);
}

TEST_F(EvaluationTest, ReportFormatsEveryStep) {
  EvalOptions opt;
  opt.batch_size = 8;
  opt.max_batches = 2;
  HorizonMetrics m = evaluate_horizon(*bundle_.model, *source_, 0, 50, opt);
  const std::string report = format_horizon_report(m, 5.0);
  EXPECT_NE(report.find("+5 min"), std::string::npos);
  EXPECT_NE(report.find("+20 min"), std::string::npos);
  EXPECT_NE(report.find("overall"), std::string::npos);
}

TEST_F(EvaluationTest, OverallRmseAggregatesPerStepMses) {
  HorizonMetrics m;
  m.rmse = {3.0, 4.0};
  EXPECT_NEAR(m.overall_rmse(), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
}

// ------------------------------------------------------ training-loop invariants

TEST(TrainingInvariants, DeterministicAcrossRuns) {
  TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = BatchingMode::kIndex;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  TrainResult a = Trainer(cfg).run();
  TrainResult b = Trainer(cfg).run();
  for (std::size_t e = 0; e < a.curve.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.curve[e].train_mae, b.curve[e].train_mae);
    EXPECT_DOUBLE_EQ(a.curve[e].val_mae, b.curve[e].val_mae);
  }
}

TEST(TrainingInvariants, SeedChangesTrajectory) {
  TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = BatchingMode::kIndex;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 4;
  cfg.max_val_batches = 2;
  cfg.seed = 1;
  TrainResult a = Trainer(cfg).run();
  cfg.seed = 2;
  TrainResult b = Trainer(cfg).run();
  EXPECT_NE(a.curve[0].train_mae, b.curve[0].train_mae);
}

TEST(TrainingInvariants, NoMemoryLeakAcrossRuns) {
  auto& tracker = MemoryTracker::instance();
  TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = BatchingMode::kIndex;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  cfg.max_batches_per_epoch = 2;
  cfg.max_val_batches = 1;
  Trainer(cfg).run();  // warm-up (device singletons etc.)
  const std::size_t before = tracker.current(kHostSpace);
  for (int i = 0; i < 3; ++i) Trainer(cfg).run();
  EXPECT_EQ(tracker.current(kHostSpace), before)
      << "workflow must release every tracked allocation";
}

}  // namespace
}  // namespace pgti::core
