#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset_spec.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace pgti::data {
namespace {

// ----------------------------------------------------- catalog & formulas

TEST(Catalog, HasSixDatasets) { EXPECT_EQ(paper_catalog().size(), 6u); }

TEST(Catalog, LookupByKind) {
  EXPECT_EQ(spec_for(DatasetKind::kPems).nodes, 11126);
  EXPECT_EQ(spec_for(DatasetKind::kChickenpoxHungary).entries, 522);
  EXPECT_EQ(spec_for(DatasetKind::kPemsBay).horizon, 12);
}

TEST(Catalog, SnapshotCountFormula) {
  DatasetSpec s = spec_for(DatasetKind::kMetrLa);
  EXPECT_EQ(s.num_snapshots(), s.entries - (2 * s.horizon - 1));
}

// The paper's Table 1 "Size After Preprocessing" column, reproduced from
// Eq. (1).  Units in the paper are mixed (decimal for Windmill/Chickenpox,
// binary for the traffic rows); we check against the right unit per row.
struct Table1Row {
  DatasetKind kind;
  double paper_after;  // value as printed in the paper
  double unit;         // bytes per printed unit
  double tol_frac;     // tolerance (entry-count off-by-ones in the paper)
};

class Table1SizeTest : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1SizeTest, Eq1MatchesPaperPublishedSize) {
  const Table1Row row = GetParam();
  const DatasetSpec spec = spec_for(row.kind);
  const double ours = standard_preprocessed_bytes(spec) / row.unit;
  EXPECT_NEAR(ours, row.paper_after, row.paper_after * row.tol_frac)
      << spec.name << ": got " << ours;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1SizeTest,
    ::testing::Values(
        // Chickenpox: 657.92 KB (decimal); paper uses S = entries-2h.
        Table1Row{DatasetKind::kChickenpoxHungary, 657.92, 1e3, 0.005},
        // Windmill: 712.80 MB decimal — exact.
        Table1Row{DatasetKind::kWindmillLarge, 712.80, 1e6, 0.001},
        // METR-LA: 2.54 GB binary (GiB).
        Table1Row{DatasetKind::kMetrLa, 2.54, 1073741824.0, 0.01},
        // PeMS-BAY: 6.05 GB binary.
        Table1Row{DatasetKind::kPemsBay, 6.05, 1073741824.0, 0.01},
        // PeMS-All-LA: 102.08 GB binary.
        Table1Row{DatasetKind::kPemsAllLa, 102.08, 1073741824.0, 0.005},
        // PeMS: 419.46 GB — the headline number, binary units like the
        // other traffic rows (449.0e9 bytes = 418.2 GiB).
        Table1Row{DatasetKind::kPems, 419.46, 1073741824.0, 0.01}));

TEST(SizeFormulas, PemsRawMatchesPaper) {
  // 8.71 GB before preprocessing (binary units).
  const DatasetSpec spec = spec_for(DatasetKind::kPems);
  EXPECT_NEAR(raw_bytes(spec) / 1073741824.0, 8.71, 0.05);
}

TEST(SizeFormulas, WindmillRawMatchesPaper) {
  const DatasetSpec spec = spec_for(DatasetKind::kWindmillLarge);
  EXPECT_NEAR(raw_bytes(spec) / 1e6, 44.59, 0.05);
}

TEST(SizeFormulas, IndexBatchingIsDramaticallySmaller) {
  // The 89% reduction claim: for PeMS, Eq. 2 vs Eq. 1.
  const DatasetSpec spec = spec_for(DatasetKind::kPems);
  const double standard = standard_preprocessed_bytes(spec);
  const double index = index_batching_bytes(spec);
  EXPECT_LT(index / standard, 0.05);  // > 95% smaller at full scale
}

TEST(SizeFormulas, IndexSizeIndependentOfHorizon) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay);
  spec.horizon = 12;
  const double h12 = index_batching_bytes(spec);
  spec.horizon = 48;
  const double h48 = index_batching_bytes(spec);
  // Only the (small) index array shrinks with larger horizons.
  EXPECT_NEAR(h12, h48, stage1_bytes(spec) * 0.001);
}

TEST(SizeFormulas, StandardSizeGrowsLinearlyWithHorizon) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay);
  spec.horizon = 6;
  const double h6 = standard_preprocessed_bytes(spec);
  spec.horizon = 12;
  const double h12 = standard_preprocessed_bytes(spec);
  EXPECT_NEAR(h12 / h6, 2.0, 0.01);
}

TEST(SizeFormulas, GrowthStagesMonotone) {
  const GrowthStages g = growth_stages(spec_for(DatasetKind::kPemsAllLa));
  EXPECT_LT(g.raw, g.with_time_feature);
  EXPECT_LT(g.with_time_feature, g.after_swa);
  EXPECT_LT(g.after_swa, g.after_xy_split);
  EXPECT_DOUBLE_EQ(g.after_xy_split, 2.0 * g.after_swa);
}

// Property sweep: Eq. (2) < Eq. (1) for every horizon/node/entry combo.
class MemoryModelProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MemoryModelProperty, IndexAlwaysSmallerThanStandard) {
  const auto [nodes, entries, horizon] = GetParam();
  DatasetSpec spec;
  spec.nodes = nodes;
  spec.entries = entries;
  spec.features = 2;
  spec.horizon = horizon;
  ASSERT_GT(spec.num_snapshots(), 0);
  EXPECT_LT(index_batching_bytes(spec), standard_preprocessed_bytes(spec));
  // Reduction ratio approaches 1/(2*horizon) for long series.
  const double ratio = index_batching_bytes(spec) / standard_preprocessed_bytes(spec);
  EXPECT_GT(ratio, 1.0 / (2.1 * static_cast<double>(horizon)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MemoryModelProperty,
                         ::testing::Combine(::testing::Values(10, 300, 5000),
                                            ::testing::Values(500, 10000, 100000),
                                            ::testing::Values(3, 12, 24)));

TEST(Scaled, PreservesStructure) {
  const DatasetSpec spec = spec_for(DatasetKind::kPems).scaled(16);
  EXPECT_EQ(spec.horizon, 12);
  EXPECT_EQ(spec.features, 2);
  EXPECT_NEAR(static_cast<double>(spec.nodes), 11126.0 / 16.0, 1.0);
  EXPECT_NEAR(static_cast<double>(spec.entries), 105120.0 / 16.0, 1.0);
}

TEST(Scaled, ClampsTinyResults) {
  const DatasetSpec spec = spec_for(DatasetKind::kChickenpoxHungary).scaled(1000);
  EXPECT_GE(spec.nodes, 8);
  EXPECT_GE(spec.entries, 8 * spec.horizon);
}

TEST(Scaled, FactorBelowOneRejected) {
  EXPECT_THROW(spec_for(DatasetKind::kPems).scaled(0.5), std::invalid_argument);
}

// ----------------------------------------------------------- generators

TEST(Synthetic, ShapeMatchesSpec) {
  const DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 1);
  EXPECT_EQ(raw.shape(), (Shape{spec.entries, spec.nodes, 1}));
}

TEST(Synthetic, DeterministicInSeed) {
  const DatasetSpec spec = spec_for(DatasetKind::kChickenpoxHungary);
  SensorNetwork net = network_for(spec);
  Tensor a = generate_signal(spec, net, 9);
  Tensor b = generate_signal(spec, net, 9);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0f);
  Tensor c = generate_signal(spec, net, 10);
  EXPECT_GT(ops::max_abs_diff(a, c), 0.0f);
}

TEST(Synthetic, TrafficSpeedsInPlausibleRange) {
  const DatasetSpec spec = spec_for(DatasetKind::kMetrLa).scaled(32);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 2);
  const float* p = raw.data();
  for (std::int64_t i = 0; i < raw.numel(); ++i) {
    EXPECT_GE(p[i], 0.0f);
    EXPECT_LE(p[i], 90.0f);
  }
}

TEST(Synthetic, EpidemicCountsNonNegative) {
  const DatasetSpec spec = spec_for(DatasetKind::kChickenpoxHungary);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 3);
  EXPECT_GE(ops::sum(raw), 0.0);
  const float* p = raw.data();
  for (std::int64_t i = 0; i < raw.numel(); ++i) EXPECT_GE(p[i], 0.0f);
}

TEST(Synthetic, TrafficHasDiurnalAutocorrelation) {
  // Speed at t and t+period should correlate more than t and t+period/2.
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(32);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 4);
  const std::int64_t period = spec.steps_per_period;
  const std::int64_t n = spec.nodes;
  auto corr_at_lag = [&](std::int64_t lag) {
    double num = 0.0, cnt = 0.0;
    for (std::int64_t t = 0; t + lag < spec.entries; t += 7) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double a = raw.at({t, j, 0});
        const double b = raw.at({t + lag, j, 0});
        num += (a - 60.0) * (b - 60.0);
        cnt += 1.0;
      }
    }
    return num / cnt;
  };
  EXPECT_GT(corr_at_lag(period), corr_at_lag(period / 2));
}

TEST(Synthetic, SpatialNeighborsCorrelate) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(16);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 5);
  // Average |v_i - v_j| for connected pairs should be below the average
  // for random pairs (spatial smoothing at work).
  double adj_diff = 0.0, adj_cnt = 0.0, rnd_diff = 0.0, rnd_cnt = 0.0;
  Rng rng(6);
  const auto& a = net.adjacency;
  for (std::int64_t t = 0; t < spec.entries; t += 97) {
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      for (std::int64_t k = a.row_ptr()[static_cast<std::size_t>(r)];
           k < a.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
        const std::int64_t c = a.col_idx()[static_cast<std::size_t>(k)];
        if (c == r) continue;
        adj_diff += std::fabs(raw.at({t, r, 0}) - raw.at({t, c, 0}));
        adj_cnt += 1.0;
      }
      const auto c2 = static_cast<std::int64_t>(rng.uniform_int(
          static_cast<std::uint64_t>(spec.nodes)));
      rnd_diff += std::fabs(raw.at({t, r, 0}) - raw.at({t, c2, 0}));
      rnd_cnt += 1.0;
    }
  }
  EXPECT_LT(adj_diff / adj_cnt, rnd_diff / rnd_cnt);
}

// --------------------------------------------------------- preprocessing

TEST(TimeFeature, AppendedForTraffic) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 7);
  Tensor stage1 = add_time_feature(raw, spec);
  ASSERT_EQ(stage1.shape(), (Shape{spec.entries, spec.nodes, 2}));
  // Feature 1 is time-of-day in [0, 1), periodic.
  EXPECT_EQ(stage1.at({0, 0, 1}), 0.0f);
  const std::int64_t p = spec.steps_per_period;
  if (spec.entries > p) {
    EXPECT_EQ(stage1.at({p, 0, 1}), 0.0f);
    EXPECT_NEAR(stage1.at({p / 2, 0, 1}), 0.5f, 1.0f / static_cast<float>(p));
  }
}

TEST(TimeFeature, SkippedForSingleFeatureDatasets) {
  DatasetSpec spec = spec_for(DatasetKind::kWindmillLarge).scaled(16);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 8);
  Tensor stage1 = add_time_feature(raw, spec);
  EXPECT_EQ(stage1.size(2), 1);
}

TEST(Scaler, NormalizesTrainRange) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 9);
  Tensor stage1 = add_time_feature(raw, spec);
  StandardScaler sc = fit_scaler(stage1, spec);
  EXPECT_GT(sc.stddev, 0.0);
  // transform/inverse round trip.
  EXPECT_NEAR(sc.inverse(sc.transform(57.5f)), 57.5f, 1e-3f);
}

TEST(Scaler, TrainSplitIs70Percent) {
  const SplitRanges r = split_ranges(1000);
  EXPECT_EQ(r.train_begin, 0);
  EXPECT_EQ(r.train_end, 700);
  EXPECT_EQ(r.val_end, 800);
  EXPECT_EQ(r.test_end, 1000);
}

TEST(StandardPreprocess, ShapesFollowAlgorithm1) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 6;
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 10);
  StandardDataset ds(raw, spec);
  const std::int64_t s = spec.num_snapshots();
  EXPECT_EQ(ds.x().shape(), (Shape{s, 6, spec.nodes, 2}));
  EXPECT_EQ(ds.y().shape(), (Shape{s, 6, spec.nodes, 2}));
}

TEST(StandardPreprocess, YIsXShiftedByHorizon) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 11);
  StandardDataset ds(raw, spec);
  // x[i + horizon] == y[i] (same underlying entries).
  const auto [xi, yi] = ds.get(3);
  const auto [xj, yj] = ds.get(3 + spec.horizon);
  EXPECT_EQ(ops::max_abs_diff(yi.contiguous(), xj.contiguous()), 0.0f);
}

TEST(StandardPreprocess, MetricFeatureIsStandardized) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 12);
  StandardDataset ds(raw, spec);
  // Mean of the standardized metric over the training x-range ~ 0.
  double sum = 0.0;
  std::int64_t cnt = 0;
  const std::int64_t train_end = ds.splits().train_end;
  for (std::int64_t i = 0; i < train_end; i += 5) {
    const auto [x, y] = ds.get(i);
    Tensor xc = x.contiguous();
    const float* p = xc.data();
    for (std::int64_t j = 0; j < xc.numel(); j += 2) {
      sum += p[j];
      ++cnt;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(cnt), 0.0, 0.1);
}

TEST(StandardPreprocess, SeriesTooShortThrows) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.entries = spec.horizon;  // not even one window pair
  Tensor raw = Tensor::zeros({spec.entries, spec.nodes, 1});
  EXPECT_THROW(StandardDataset(raw, spec), std::invalid_argument);
}

TEST(PaddedPreprocess, PadsToBatchMultiple) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  spec.batch_size = 32;
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 13);
  PaddedStandardDataset ds(raw, spec);
  EXPECT_EQ(ds.padded_snapshots() % 32, 0);
  EXPECT_GE(ds.padded_snapshots(), ds.num_snapshots());
  // Padding repeats the final sample.
  const auto [last_x, last_y] = ds.base().get(ds.num_snapshots() - 1);
  const auto [pad_x, pad_y] = ds.get(ds.padded_snapshots() - 1);
  EXPECT_EQ(ops::max_abs_diff(last_x.contiguous(), pad_x.contiguous()), 0.0f);
}

TEST(PaddedPreprocess, SteadyStateFootprintRoughlyDoubles) {
  // The padded loader keeps batch-aligned copies IN ADDITION to the
  // original arrays (paper §3.2), so its resident footprint after
  // preprocessing is ~2x the plain standard pipeline's.  (Both share
  // the same transient stack spike, so peaks alone don't separate them.)
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = 4;
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 14);
  auto& tracker = MemoryTracker::instance();

  const std::size_t base = tracker.current(kHostSpace);
  std::size_t std_resident, pad_resident;
  {
    StandardDataset ds(raw, spec);
    std_resident = tracker.current(kHostSpace) - base;
  }
  {
    PaddedStandardDataset ds(raw, spec);
    pad_resident = tracker.current(kHostSpace) - base;
  }
  EXPECT_GT(static_cast<double>(pad_resident), 1.8 * static_cast<double>(std_resident));
}

}  // namespace
}  // namespace pgti::data
