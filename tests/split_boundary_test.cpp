// Golden tests for index-batching equivalence at split boundaries.
//
// index_batching_test.cpp samples the snapshot range at a stride; here
// we pin down the edges, where off-by-one window arithmetic would hide:
// the FIRST and LAST snapshot of each of the train/val/test splits must
// be bit-identical between IndexDataset's zero-copy reconstruction and
// the materialized StandardDataset snapshot array (paper §4.1's
// "identical accuracy" rests on this equivalence).
#include <gtest/gtest.h>

#include <vector>

#include "data/index_dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "tensor/tensor_ops.h"

namespace pgti::data {
namespace {

DatasetSpec boundary_spec(std::int64_t horizon) {
  DatasetSpec spec = spec_for(DatasetKind::kPemsBay).scaled(64);
  spec.horizon = horizon;
  return spec;
}

std::vector<std::int64_t> boundary_ids(const SplitRanges& splits) {
  return {splits.train_begin, splits.train_end - 1, splits.val_begin,
          splits.val_end - 1,  splits.test_begin,   splits.test_end - 1};
}

class SplitBoundaries : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SplitBoundaries, IndexMatchesMaterializedSnapshotAtEverySplitEdge) {
  const DatasetSpec spec = boundary_spec(GetParam());
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 51);
  StandardDataset standard(raw, spec);
  IndexDataset index(raw, spec);
  ASSERT_EQ(standard.num_snapshots(), index.num_snapshots());

  const SplitRanges& splits = index.splits();
  ASSERT_LT(splits.train_begin, splits.train_end);
  ASSERT_LT(splits.val_begin, splits.val_end);
  ASSERT_LT(splits.test_begin, splits.test_end);
  EXPECT_EQ(splits.test_end, index.num_snapshots());

  for (std::int64_t i : boundary_ids(splits)) {
    const auto [sx, sy] = standard.get(i);
    const auto [ix, iy] = index.get(i);
    ASSERT_EQ(sx.shape(), ix.shape()) << "x shape @" << i;
    ASSERT_EQ(sy.shape(), iy.shape()) << "y shape @" << i;
    EXPECT_EQ(ops::max_abs_diff(sx.contiguous(), ix.contiguous()), 0.0f)
        << "x @" << i;
    EXPECT_EQ(ops::max_abs_diff(sy.contiguous(), iy.contiguous()), 0.0f)
        << "y @" << i;
  }
}

TEST_P(SplitBoundaries, SplitsAgreeBetweenPipelines) {
  const DatasetSpec spec = boundary_spec(GetParam());
  SensorNetwork net = network_for(spec);
  Tensor raw = generate_signal(spec, net, 52);
  StandardDataset standard(raw, spec);
  IndexDataset index(raw, spec);
  EXPECT_EQ(standard.splits().train_end, index.splits().train_end);
  EXPECT_EQ(standard.splits().val_begin, index.splits().val_begin);
  EXPECT_EQ(standard.splits().val_end, index.splits().val_end);
  EXPECT_EQ(standard.splits().test_begin, index.splits().test_begin);
  EXPECT_EQ(standard.splits().test_end, index.splits().test_end);
  EXPECT_DOUBLE_EQ(standard.scaler().mean, index.scaler().mean);
  EXPECT_DOUBLE_EQ(standard.scaler().stddev, index.scaler().stddev);
}

INSTANTIATE_TEST_SUITE_P(Horizons, SplitBoundaries, ::testing::Values(2, 6, 12));

}  // namespace
}  // namespace pgti::data
