// Ready-bucket gradient overlap (dist/overlap.h): grad-ready hooks in
// backward(), strict-mode bit-exactness against the serial GradBucket
// path, bounded-staleness convergence, mid-backward fault unwinding,
// and the exposed-seconds bench claim at trainer level.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "autograd/ops.h"
#include "core/dist_trainer.h"
#include "data/dataset_spec.h"
#include "dist/cluster_model.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "dist/overlap.h"
#include "runtime/rng.h"

namespace pgti::dist {
namespace {

// ----------------------------------------------------- grad-ready hooks

class RecordingObserver final : public GradReadyObserver {
 public:
  void on_backward_start(const std::vector<Variable::Impl*>& leaves) override {
    start_leaves = leaves;
  }
  void on_grad_ready(const Variable::Impl* leaf) override {
    ready_order.push_back(leaf);
    grads_at_fire.push_back(leaf->grad.clone());
  }

  std::vector<Variable::Impl*> start_leaves;
  std::vector<const Variable::Impl*> ready_order;
  std::vector<Tensor> grads_at_fire;
};

// Two-layer graph where w1 feeds TWO consumers (the matmul and a skip
// connection), so a naive fire-on-first-touch would announce w1 early
// with a partial gradient.
Variable two_consumer_loss(Variable& w1, Variable& w2, const Tensor& x,
                           const Tensor& target) {
  Variable h = ag::relu(ag::matmul(Variable(x, false), w1));
  Variable skip = ag::mul_scalar(ag::sum_all(w1), 1e-3f);
  Variable out = ag::matmul(h, w2);
  return ag::add(ag::mse_loss(out, target), skip);
}

TEST(GradReady, FiresOncePerParamWithFinalGradInDeterministicOrder) {
  Rng rng(31);
  Tensor x = Tensor::randn({6, 4}, rng);
  Tensor target = Tensor::randn({6, 3}, rng);
  Variable w1(Tensor::randn({4, 5}, rng), true);
  Variable w2(Tensor::randn({5, 3}, rng), true);

  RecordingObserver obs;
  two_consumer_loss(w1, w2, x, target).backward(&obs);

  // Both params announced at start, and each fires exactly once.
  ASSERT_EQ(obs.start_leaves.size(), 2u);
  ASSERT_EQ(obs.ready_order.size(), 2u);
  EXPECT_NE(obs.ready_order[0], obs.ready_order[1]);
  for (const Variable::Impl* leaf : obs.ready_order) {
    EXPECT_TRUE(leaf == w1.impl().get() || leaf == w2.impl().get());
  }

  // The gradient captured at fire time is the FINAL one: it must match
  // the post-backward gradient bit for bit (w1 has two consumers, so an
  // early fire would be caught here).
  for (std::size_t i = 0; i < obs.ready_order.size(); ++i) {
    const Tensor& final_grad = obs.ready_order[i] == w1.impl().get()
                                   ? w1.grad()
                                   : w2.grad();
    ASSERT_EQ(obs.grads_at_fire[i].numel(), final_grad.numel());
    EXPECT_EQ(std::memcmp(obs.grads_at_fire[i].data(), final_grad.data(),
                          static_cast<std::size_t>(final_grad.numel()) *
                              sizeof(float)),
              0)
        << "leaf " << i << " fired before its last accumulation";
  }

  // Ready order is a pure function of the tape: a second identical
  // sweep observes the identical sequence.
  RecordingObserver obs2;
  w1.zero_grad();
  w2.zero_grad();
  two_consumer_loss(w1, w2, x, target).backward(&obs2);
  EXPECT_EQ(obs2.ready_order, obs.ready_order);
}

TEST(GradReady, NonParticipatingParamNeverFires) {
  Rng rng(32);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor target = Tensor::randn({4, 3}, rng);
  Variable w1(Tensor::randn({4, 5}, rng), true);
  Variable w2(Tensor::randn({5, 3}, rng), true);
  Variable unused(Tensor::randn({7}, rng), true);

  RecordingObserver obs;
  two_consumer_loss(w1, w2, x, target).backward(&obs);

  for (const Variable::Impl* leaf : obs.start_leaves) {
    EXPECT_NE(leaf, unused.impl().get());
  }
  for (const Variable::Impl* leaf : obs.ready_order) {
    EXPECT_NE(leaf, unused.impl().get());
  }
}

// ------------------------------------------- strict-mode bit-exactness

// One rank's training micro-step: per-rank data, shared init.
struct RankProblem {
  Tensor x, target;
  std::vector<Variable> params;  // w1, w2

  RankProblem(int rank, int step) {
    Rng data_rng(1000ULL * static_cast<std::uint64_t>(rank + 1) +
                 static_cast<std::uint64_t>(step));
    x = Tensor::randn({6, 4}, data_rng);
    target = Tensor::randn({6, 3}, data_rng);
    Rng init_rng(5);  // identical replicas
    params.emplace_back(Tensor::randn({4, 5}, init_rng), true);
    params.emplace_back(Tensor::randn({5, 3}, init_rng), true);
  }

  Variable loss() {
    return two_consumer_loss(params[0], params[1], x, target);
  }
};

TEST(OverlappedBucket, StrictBitExactVsSerialGradBucket) {
  constexpr int kWorld = 4;
  constexpr int kSteps = 3;
  // Tiny bucket cap -> every param is its own bucket, so the ready
  // order genuinely drives multiple independent collectives per step.
  constexpr std::int64_t kBucketNumel = 8;

  // Serial reference: monolithic post-backward GradBucket sync.
  std::array<std::vector<Tensor>, kWorld> serial;  // [rank][param] grads
  {
    Cluster cluster(kWorld);
    cluster.run([&](Communicator& comm) {
      for (int step = 0; step < kSteps; ++step) {
        RankProblem prob(comm.rank(), step);
        prob.loss().backward();
        GradBucket bucket(prob.params, kBucketNumel);
        bucket.allreduce_average(comm, prob.params);
        if (step == kSteps - 1) {
          for (Variable& p : prob.params) {
            serial[static_cast<std::size_t>(comm.rank())].push_back(
                p.grad().clone());
          }
        }
      }
    });
  }

  // Overlapped strict path: identical per-rank data, ready-bucket
  // all-reduces under backward, drained before reading the grads.
  std::array<std::vector<Tensor>, kWorld> overlapped;
  {
    Cluster cluster(kWorld);
    cluster.run([&](Communicator& comm) {
      for (int step = 0; step < kSteps; ++step) {
        RankProblem prob(comm.rank(), step);
        OverlappedGradBucket ob(comm, prob.params,
                                OverlappedGradBucket::Mode::kStrict,
                                NetworkModel{}, kBucketNumel);
        EXPECT_GE(ob.bucket_count(), 2u);
        prob.loss().backward(&ob);
        ob.drain();
        ob.finish();
        if (step == kSteps - 1) {
          for (Variable& p : prob.params) {
            overlapped[static_cast<std::size_t>(comm.rank())].push_back(
                p.grad().clone());
          }
        }
      }
    });
  }

  for (int r = 0; r < kWorld; ++r) {
    ASSERT_EQ(serial[static_cast<std::size_t>(r)].size(),
              overlapped[static_cast<std::size_t>(r)].size());
    for (std::size_t p = 0; p < serial[static_cast<std::size_t>(r)].size();
         ++p) {
      const Tensor& a = serial[static_cast<std::size_t>(r)][p];
      const Tensor& b = overlapped[static_cast<std::size_t>(r)][p];
      ASSERT_EQ(a.numel(), b.numel());
      EXPECT_EQ(std::memcmp(a.data(), b.data(),
                            static_cast<std::size_t>(a.numel()) * sizeof(float)),
                0)
          << "rank " << r << " param " << p
          << ": overlap changed the averaged gradient bits";
    }
  }
}

TEST(OverlappedBucket, Stale1AppliesPreviousStepAndZerosAtStepZero) {
  Cluster cluster(2);
  cluster.run([&](Communicator& comm) {
    RankProblem prob(comm.rank(), /*step=*/0);
    OverlappedGradBucket ob(comm, prob.params,
                            OverlappedGradBucket::Mode::kStale1,
                            NetworkModel{});

    prob.loss().backward(&ob);
    ob.drain();  // step 0: applies zeros (nothing reduced yet)
    for (Variable& p : prob.params) {
      const Tensor& g = p.grad();
      for (std::int64_t i = 0; i < g.numel(); ++i) {
        ASSERT_EQ(g.data()[i], 0.0f) << "step 0 must apply zero gradients";
      }
    }

    // Step 1 applies step 0's reduced buckets: nonzero and identical
    // across ranks (the average of the two replicas' step-0 grads).
    for (Variable& p : prob.params) p.zero_grad();
    RankProblem step1(comm.rank(), /*step=*/1);
    // Reuse the SAME param objects so the observer mapping holds.
    Variable loss = two_consumer_loss(prob.params[0], prob.params[1], step1.x,
                                      step1.target);
    loss.backward(&ob);
    ob.drain();
    double sum = 0.0;
    for (Variable& p : prob.params) {
      const Tensor& g = p.grad();
      for (std::int64_t i = 0; i < g.numel(); ++i) {
        sum += static_cast<double>(g.data()[i]);
      }
    }
    EXPECT_NE(sum, 0.0);
    // Contract: pass a drain point before running our own collective —
    // step 1's bucket reduces are still in flight on the comm thread.
    ob.flush();
    const auto all = comm.allgather(sum);
    for (double v : all) EXPECT_EQ(v, all[0]);
    ob.finish();
  });
}

// ------------------------------------------------- mid-backward faults

TEST(OverlappedBucket, FaultDuringOverlappedReduceUnwindsCleanly) {
  // The last rank dies upon entering sync point `nth` — with overlap on,
  // the early sync points belong to comm-thread bucket reduces fired
  // mid-backward.  Sweeping nth across several buckets' worth of sync
  // points parks peers at every stage of an overlapped collective; all
  // ranks must unwind (comm thread -> drain() rethrow -> worker exit ->
  // PeerFailureError release) with no deadlock, and run() must rethrow
  // the original error.
  for (int w : {2, 4}) {
    const int points = Cluster::allreduce_sync_points(w);
    for (int nth = 0; nth < 3 * points; ++nth) {
      Cluster cluster(w);
      cluster.inject_fault_at_sync_point(w - 1, static_cast<std::uint64_t>(nth),
                                         "overlap fault");
      try {
        cluster.run([&](Communicator& comm) {
          // >= 2 buckets x several steps: far more sync points than the
          // sweep's upper bound, so the fault always lands mid-stream.
          for (int step = 0; step < 8; ++step) {
            RankProblem prob(comm.rank(), step);
            OverlappedGradBucket ob(comm, prob.params,
                                    OverlappedGradBucket::Mode::kStrict,
                                    NetworkModel{}, /*bucket_numel=*/8);
            prob.loss().backward(&ob);
            ob.drain();
            ob.finish();
          }
          ADD_FAILURE() << "rank " << comm.rank()
                        << " trained past a dead peer (w=" << w << ", nth="
                        << nth << ")";
        });
        FAIL() << "expected the original error (w=" << w << ", nth=" << nth
               << ")";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "overlap fault") << "w=" << w << ", nth=" << nth;
      }
    }
  }
}

// ---------------------------------------------------- trainer end to end

core::DistConfig overlap_dist(core::DistMode mode, int world) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = 2;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 2;
  cfg.max_val_batches = 1;
  cfg.seed = 53;
  return cfg;
}

TEST(GradOverlapTrainer, OffVsStrictBitIdenticalAllStrategiesWorldsDepths) {
  // The acceptance bar: strict overlap must not perturb a single loss
  // bit for any distribution strategy, world size, or prefetch depth.
  for (core::DistMode mode :
       {core::DistMode::kDistributedIndex, core::DistMode::kBaselineDdp,
        core::DistMode::kGeneralizedIndex,
        core::DistMode::kBaselineDdpBatchShuffle}) {
    for (int world : {1, 2, 4}) {
      for (int depth : {0, 2}) {
        core::DistConfig cfg = overlap_dist(mode, world);
        cfg.prefetch_depth = depth;
        cfg.grad_overlap = core::GradOverlap::kOff;
        const core::DistResult off = core::DistTrainer(cfg).run();
        cfg.grad_overlap = core::GradOverlap::kStrict;
        const core::DistResult strict = core::DistTrainer(cfg).run();
        ASSERT_EQ(strict.curve.size(), off.curve.size());
        for (std::size_t e = 0; e < off.curve.size(); ++e) {
          EXPECT_EQ(strict.curve[e].train_mae, off.curve[e].train_mae)
              << "mode " << static_cast<int>(mode) << " world " << world
              << " depth " << depth << " epoch " << e;
          EXPECT_EQ(strict.curve[e].val_mae, off.curve[e].val_mae)
              << "mode " << static_cast<int>(mode) << " world " << world
              << " depth " << depth << " epoch " << e;
        }
      }
    }
  }
}

TEST(GradOverlapTrainer, Stale1ConvergesWithinTolerance) {
  // Bounded staleness trades bit-exactness for overlap; it must still
  // land in the same neighborhood (MSPipe-style staleness bound).
  core::DistConfig cfg =
      overlap_dist(core::DistMode::kDistributedIndex, /*world=*/2);
  cfg.epochs = 4;
  cfg.max_batches_per_epoch = 4;
  cfg.grad_overlap = core::GradOverlap::kOff;
  const core::DistResult exact = core::DistTrainer(cfg).run();
  cfg.grad_overlap = core::GradOverlap::kStale1;
  const core::DistResult stale = core::DistTrainer(cfg).run();

  ASSERT_EQ(stale.curve.size(), exact.curve.size());
  const double v_exact = exact.curve.back().val_mae;
  const double v_stale = stale.curve.back().val_mae;
  EXPECT_GT(v_stale, 0.0);
  // Same neighborhood, not same bits: one-step staleness on a smooth
  // tiny problem stays within 25% of the exact trajectory's final MAE.
  EXPECT_LT(std::abs(v_stale - v_exact), 0.25 * v_exact)
      << "exact " << v_exact << " vs stale " << v_stale;
}

TEST(GradOverlapTrainer, ExposedGradSyncStrictlyLowerWithOverlap) {
  // The bench claim, as a test: at world 4 the exposed share of modeled
  // grad-sync time must strictly shrink when overlap is on, while the
  // losses stay bit-identical (checked exhaustively above).
  core::DistConfig cfg =
      overlap_dist(core::DistMode::kDistributedIndex, /*world=*/4);
  cfg.grad_overlap = core::GradOverlap::kOff;
  const core::DistResult off = core::DistTrainer(cfg).run();
  cfg.grad_overlap = core::GradOverlap::kStrict;
  const core::DistResult strict = core::DistTrainer(cfg).run();

  // Serial path: everything is exposed, nothing overlapped.
  EXPECT_GT(off.grad_sync_exposed_seconds, 0.0);
  EXPECT_EQ(off.grad_sync_overlapped_seconds, 0.0);

  // Overlapped path: same modeled total, split between hidden and
  // exposed — with the exposed share strictly lower.
  EXPECT_LT(strict.grad_sync_exposed_seconds, off.grad_sync_exposed_seconds);
  EXPECT_GT(strict.grad_sync_overlapped_seconds, 0.0);
  EXPECT_NEAR(
      strict.grad_sync_overlapped_seconds + strict.grad_sync_exposed_seconds,
      off.grad_sync_exposed_seconds, 1e-9);
}

TEST(GradOverlapTrainer, SingleWorkerOverlapIsFreeAndExact) {
  // World 1: the network model prices collectives at zero, so both
  // accounting legs must be zero while training still runs end to end.
  core::DistConfig cfg =
      overlap_dist(core::DistMode::kDistributedIndex, /*world=*/1);
  cfg.grad_overlap = core::GradOverlap::kStrict;
  const core::DistResult r = core::DistTrainer(cfg).run();
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_EQ(r.grad_sync_exposed_seconds, 0.0);
  EXPECT_EQ(r.grad_sync_overlapped_seconds, 0.0);
}

}  // namespace
}  // namespace pgti::dist
