// Fig. 7 (+ §5.3.1/5.3.2): strong-scaling study on full PeMS, 4-128
// GPUs — distributed-index-batching vs baseline DDP, with the
// computation / data-communication split.
//
// Paper anchors: dist-index reduces runtime up to 79.41x (workflow) /
// 115.49x (training-only) vs single GPU at 128 GPUs, and beats DDP by
// 2.16x (4 GPUs) to 11.78x (128 GPUs).  The 4..128-GPU timeline is
// composed by the calibrated ClusterModel (DESIGN.md substitution);
// the model's qualitative behaviour is validated against REAL
// thread-level DDP runs at small world sizes below.
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Fig. 7 — PeMS scaling study: DDP vs distributed-index-batching",
                "paper Fig. 7 (30 epochs, calibrated cluster model + functional "
                "validation)");

  dist::ClusterModel model(bench::pems_cluster_params());
  const std::vector<int> worlds{4, 8, 16, 32, 64, 128};
  const dist::ScalingPoint single = model.evaluate(1, dist::DistStrategy::kDistributedIndex);
  std::printf("single-GPU anchor (calibrated to paper Table 4): %.1f min\n",
              single.total_s() / 60.0);

  std::printf("\n%-5s | %-36s | %-36s | speedup\n", "GPUs",
              "DDP (compute + data comm) [min]", "dist-index (compute) [min]");
  double r4 = 0.0, r128 = 0.0;
  for (int w : worlds) {
    const auto ddp = model.evaluate(w, dist::DistStrategy::kBaselineDdp);
    const auto idx = model.evaluate(w, dist::DistStrategy::kDistributedIndex);
    const double ratio = ddp.total_s() / idx.total_s();
    if (w == 4) r4 = ratio;
    if (w == 128) r128 = ratio;
    std::printf("%-5d | total %7.1f = comp %6.1f + comm %6.1f | total %7.1f = comp %6.1f"
                " + comm %6.2f | %5.2fx\n",
                w, ddp.total_s() / 60.0, ddp.compute_s / 60.0,
                (ddp.data_comm_s + ddp.allreduce_s) / 60.0, idx.total_s() / 60.0,
                idx.compute_s / 60.0, (idx.data_comm_s + idx.allreduce_s) / 60.0, ratio);
  }

  const auto idx128 = model.evaluate(128, dist::DistStrategy::kDistributedIndex);
  const double workflow_speedup = single.total_s() / idx128.total_s();
  const double train_speedup = (single.total_s() - single.preprocess_s) /
                               (idx128.total_s() - idx128.preprocess_s);
  std::printf("\ndist-index 128-GPU speedup vs 1 GPU: workflow %.1fx (paper 79.41x), "
              "training-only %.1fx (paper 115.49x)\n",
              workflow_speedup, train_speedup);
  std::printf("DDP->dist-index gap: %.2fx @4 GPUs (paper 2.16x), %.2fx @128 GPUs "
              "(paper 11.78x)\n", r4, r128);

  // Functional validation at thread scale: the real DistTrainer shows
  // the same split — DDP fetches remotely, dist-index does not.
  core::DistConfig dcfg;
  dcfg.spec = data::spec_for(data::DatasetKind::kPems).scaled(160);
  dcfg.spec.batch_size = 8;
  dcfg.world = 4;
  dcfg.epochs = 1;
  dcfg.hidden_dim = 8;
  dcfg.diffusion_steps = 1;
  dcfg.max_batches_per_epoch = 4;
  dcfg.max_val_batches = 1;
  dcfg.mode = core::DistMode::kDistributedIndex;
  core::DistResult fr_idx = core::DistTrainer(dcfg).run();
  dcfg.mode = core::DistMode::kBaselineDdp;
  core::DistResult fr_ddp = core::DistTrainer(dcfg).run();
  std::printf("\nfunctional 4-worker validation: dist-index remote fetches=%llu, "
              "DDP remote fetches=%llu (%s moved)\n",
              static_cast<unsigned long long>(fr_idx.store.remote_snapshots),
              static_cast<unsigned long long>(fr_ddp.store.remote_snapshots),
              bench::gb(static_cast<double>(fr_ddp.store.remote_bytes)).c_str());

  bench::verdict(r4 > 1.5 && r128 > 8.0 && r128 > r4,
                 "dist-index beats DDP everywhere and the gap widens with scale "
                 "(paper: 2.16x -> 11.78x)");
  bench::verdict(workflow_speedup > 40.0 && train_speedup > workflow_speedup,
                 "near-linear early scaling; fixed preprocessing bounds workflow "
                 "speedup below training-only speedup");
  bench::verdict(fr_idx.store.remote_snapshots == 0 && fr_ddp.store.remote_snapshots > 0,
                 "functional runs confirm the communication split the model assumes");
  return 0;
}
