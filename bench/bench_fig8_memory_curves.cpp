// Fig. 8 companion (§5.3.2, §5.4): data-plane MEMORY as GPUs increase.
//
// The paper's distributed trade-off in bytes: distributed-index keeps
// one full raw copy PER worker (per-worker footprint constant, total
// grows linearly with W), the Dask/DDP baseline partitions the
// materialized snapshots (total constant at the Eq. 1 footprint,
// per-worker shrinking as 1/W), and generalized-index partitions the
// single raw copy (both per-worker and total stay near the Eq. 2
// footprint).  ClusterModel's data_bytes_* curves reproduce those
// shapes at full PeMS scale; this bench plots them against the paper's
// memory axis and checks every qualitative claim.
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Fig. 8 companion — data-plane memory vs GPU count",
                "paper §5.3.2/§5.4 (dist-index grows with W; DDP total fixed at "
                "the Eq. 1 footprint; generalized stays near Eq. 2)");

  const dist::ClusterModelParams params = bench::pems_cluster_params();
  dist::ClusterModel model(params);
  const std::vector<int> worlds{1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("%-6s %-24s %-24s %-24s\n", "GPUs", "dist-index (per/total)",
              "DDP baseline (per/total)", "generalized (per/total)");
  std::vector<dist::ScalingPoint> idx, ddp, gen;
  for (int w : worlds) {
    idx.push_back(model.evaluate(w, dist::DistStrategy::kDistributedIndex));
    ddp.push_back(model.evaluate(w, dist::DistStrategy::kBaselineDdp));
    gen.push_back(model.evaluate(w, dist::DistStrategy::kGeneralizedIndex));
    const auto& i = idx.back();
    const auto& d = ddp.back();
    const auto& g = gen.back();
    std::printf("%-6d %10s /%11s %10s /%11s %10s /%11s\n", w,
                bench::gb(static_cast<double>(i.data_bytes_per_worker)).c_str(),
                bench::gb(static_cast<double>(i.data_bytes_total)).c_str(),
                bench::gb(static_cast<double>(d.data_bytes_per_worker)).c_str(),
                bench::gb(static_cast<double>(d.data_bytes_total)).c_str(),
                bench::gb(static_cast<double>(g.data_bytes_per_worker)).c_str(),
                bench::gb(static_cast<double>(g.data_bytes_total)).c_str());
  }

  // Dist-index: constant per worker, linear total.
  bool idx_per_constant = true;
  bool idx_total_linear = true;
  for (std::size_t k = 0; k < worlds.size(); ++k) {
    idx_per_constant &= idx[k].data_bytes_per_worker == idx[0].data_bytes_per_worker;
    idx_total_linear &=
        idx[k].data_bytes_total == idx[0].data_bytes_total * worlds[k];
  }
  bench::verdict(idx_per_constant,
                 "dist-index keeps a full copy per worker: per-worker bytes "
                 "constant in W (paper §5.3.2)");
  bench::verdict(idx_total_linear,
                 "dist-index total data bytes grow linearly with W (the memory "
                 "cost §5.4 addresses)");

  // Baseline DDP: fixed total (Eq. 1 materialization), shrinking shard.
  bool ddp_total_constant = true;
  bool ddp_per_shrinks = true;
  for (std::size_t k = 0; k < worlds.size(); ++k) {
    ddp_total_constant &= ddp[k].data_bytes_total == ddp[0].data_bytes_total;
    if (k > 0) {
      ddp_per_shrinks &= ddp[k].data_bytes_per_worker < ddp[k - 1].data_bytes_per_worker;
    }
  }
  bench::verdict(ddp_total_constant && ddp_per_shrinks,
                 "DDP baseline partitions a fixed materialized total; per-worker "
                 "shard shrinks ~1/W");
  const double duplication = static_cast<double>(ddp[0].data_bytes_total) /
                             static_cast<double>(params.dataset_bytes);
  std::printf("\nmaterialization factor: DDP total / raw copy = %.1fx "
              "(Eq. 1 vs Eq. 2 duplication, horizon=%d)\n",
              duplication, 12);
  bench::verdict(duplication > 12.0,
                 "materialized snapshots duplicate the raw data by more than "
                 "the horizon factor (Eq. 1 vs Eq. 2)");

  // Generalized index: per-worker near dataset/W, total near one copy.
  bool gen_small = true;
  for (std::size_t k = 0; k < worlds.size(); ++k) {
    gen_small &= gen[k].data_bytes_per_worker <=
                 params.dataset_bytes / worlds[k] + params.sample_bytes;
    gen_small &= gen[k].data_bytes_total <
                 idx[k].data_bytes_total || worlds[k] == 1;
  }
  bench::verdict(gen_small,
                 "generalized-index holds ~dataset/W (+ boundary overlap) per "
                 "worker and ~one copy in total (paper §5.4)");

  // The §5.4 motivation: at some W the per-worker DDP shard undercuts
  // the full dist-index copy, yet generalized stays below both.
  int crossover = -1;
  for (std::size_t k = 0; k < worlds.size(); ++k) {
    if (ddp[k].data_bytes_per_worker < idx[k].data_bytes_per_worker) {
      crossover = worlds[k];
      break;
    }
  }
  std::printf("DDP per-worker shard undercuts the full index copy at W=%d\n",
              crossover);
  bool gen_wins = crossover > 0;
  for (std::size_t k = 0; k < worlds.size(); ++k) {
    if (worlds[k] >= crossover && crossover > 0) {
      gen_wins &= gen[k].data_bytes_per_worker <= ddp[k].data_bytes_per_worker;
      gen_wins &= gen[k].data_bytes_per_worker <= idx[k].data_bytes_per_worker;
    }
  }
  bench::verdict(gen_wins,
                 "beyond the crossover, generalized-index is the smallest "
                 "per-worker footprint of the three (paper §5.4 motivation)");

  bench::note("bytes come from ClusterModel's data_bytes_* curves at full PeMS "
              "scale; the functional DistStore moves (and ledgers) the same "
              "bytes at thread scale — see tests/trainer_test.cpp "
              "DdpLedgerEqualsBytesActuallyCopied");
  return 0;
}
