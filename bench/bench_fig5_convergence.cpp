// Fig. 5: validation-MAE convergence curves, baseline batching vs
// index-batching, on Chickenpox / Windmill / PeMS-BAY.
//
// Paper claim: "index-batching provides accuracy and convergence speed
// comparable to PGT with standard batching" — in this implementation
// the two paths consume identical batches, so the curves coincide
// exactly for the same seed.
#include "bench_util.h"

using namespace pgti;

namespace {

core::TrainResult run_curve(data::DatasetKind kind, double scale,
                            core::BatchingMode mode, int epochs) {
  core::TrainConfig cfg;
  cfg.spec = data::spec_for(kind).scaled(scale);
  cfg.model = core::ModelKind::kPgtDcrnn;
  cfg.mode = mode;
  cfg.epochs = epochs;
  cfg.hidden_dim = 16;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = bench::env_int("PGTI_BENCH_BATCHES", 10);
  cfg.max_val_batches = 4;
  cfg.seed = 21;
  return core::Trainer(cfg).run();
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 6);
  bench::header("Fig. 5 — single-GPU validation MAE convergence",
                "paper Fig. 5 (base vs index curves per dataset)");

  struct Ds {
    const char* name;
    data::DatasetKind kind;
    double scale;
  };
  const Ds sets[] = {
      {"Chickenpox", data::DatasetKind::kChickenpoxHungary, 1.0},
      {"Windmill", data::DatasetKind::kWindmillLarge, 8.0},
      {"PeMS-BAY", data::DatasetKind::kPemsBay, 16.0},
  };

  bool curves_match = true;
  bool converging = true;
  for (const Ds& ds : sets) {
    core::TrainResult base = run_curve(ds.kind, ds.scale, core::BatchingMode::kStandard, epochs);
    core::TrainResult index = run_curve(ds.kind, ds.scale, core::BatchingMode::kIndex, epochs);
    std::printf("\n%s (val MAE per epoch)\n  epoch:    ", ds.name);
    for (int e = 0; e < epochs; ++e) std::printf("%8d", e);
    std::printf("\n  baseline: ");
    for (const auto& em : base.curve) std::printf("%8.4f", em.val_mae);
    std::printf("\n  index:    ");
    for (const auto& em : index.curve) std::printf("%8.4f", em.val_mae);
    std::printf("\n");
    for (std::size_t e = 0; e < base.curve.size(); ++e) {
      curves_match = curves_match && base.curve[e].val_mae == index.curve[e].val_mae;
    }
    converging = converging && index.curve.back().val_mae <= index.curve.front().val_mae;
  }

  bench::verdict(curves_match,
                 "baseline and index-batching trace the SAME validation curve "
                 "(identical snapshots, identical seed)");
  bench::verdict(converging, "validation MAE improves over training on every dataset");
  return 0;
}
