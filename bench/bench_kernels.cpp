// Micro-benchmarks (google-benchmark) behind the paper's claims, plus
// the design-choice ablations called out in DESIGN.md §5:
//   * snapshot reconstruction: zero-copy views vs materialized copies
//   * batch assembly cost
//   * consolidated vs per-item remote fetch requests (baseline DDP opt)
//   * gradient bucketing vs per-tensor all-reduce
//   * core compute kernels (matmul / SpMM / fused DCGRU step) — each
//     with its retained pre-optimization `_reference` baseline, plus an
//     in-run before/after claims section (custom main below) so the
//     speedup and bit-exactness claims are measured in the same binary
//     and counted by scripts/run_benches.sh.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "core/pgt_i.h"
#include "nn/dcgru.h"
#include "optim/optim.h"
#include "runtime/arena.h"
#include "tensor/tensor_ops.h"

using namespace pgti;

namespace {

// Allocs-per-iteration column (DESIGN.md §16): real heap allocations
// the measured region charged to the MemoryTracker, averaged over the
// benchmark's iterations.  Arena pool hits and workspace-cache reuses
// don't count, so steady-state kernels read 0 here (the one-time
// planning/warm-up allocations amortize below 1 at real iteration
// counts).
void set_alloc_counter(benchmark::State& state, std::uint64_t heap_before) {
  state.counters["allocs_per_iter"] =
      benchmark::Counter(static_cast<double>(bench::heap_allocs() - heap_before),
                         benchmark::Counter::kAvgIterations);
}

data::DatasetSpec bench_spec() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(32);
  spec.horizon = 12;
  return spec;
}

Tensor bench_raw(const data::DatasetSpec& spec) {
  SensorNetwork net = data::network_for(spec);
  return data::generate_signal(spec, net, 11);
}

// --- snapshot reconstruction: the core index-batching claim -----------

void BM_SnapshotView(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  data::IndexDataset ds(bench_raw(spec), spec);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto [x, y] = ds.get(i);
    benchmark::DoNotOptimize(x.data());
    benchmark::DoNotOptimize(y.data());
    i = (i + 1) % ds.num_snapshots();
  }
}
BENCHMARK(BM_SnapshotView);

void BM_SnapshotMaterialize(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  data::IndexDataset ds(bench_raw(spec), spec);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto [x, y] = ds.get(i);
    Tensor xc = x.clone();  // what standard preprocessing stores per window
    Tensor yc = y.clone();
    benchmark::DoNotOptimize(xc.data());
    benchmark::DoNotOptimize(yc.data());
    i = (i + 1) % ds.num_snapshots();
  }
}
BENCHMARK(BM_SnapshotMaterialize);

// --- batch assembly -----------------------------------------------------

void BM_BatchAssembly(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  spec.batch_size = state.range(0);
  data::IndexDataset ds(bench_raw(spec), spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = spec.batch_size;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 1, spec.batch_size};
  data::DataLoader loader(source, opt, 0, ds.splits().train_end);
  loader.start_epoch(0);
  data::Batch b;
  for (auto _ : state) {
    if (!loader.next(b)) {
      loader.start_epoch(0);
      continue;
    }
    benchmark::DoNotOptimize(b.x.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.batch_size);
}
BENCHMARK(BM_BatchAssembly)->Arg(8)->Arg(32);

// --- remote-fetch consolidation ablation (paper §5 baseline tuning) -----

void BM_FetchRequests(benchmark::State& state) {
  const bool consolidate = state.range(0) != 0;
  dist::DistStore store(100000, 4 << 20, 16, dist::NetworkModel{}, consolidate);
  std::vector<std::int64_t> batch;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    batch.push_back(static_cast<std::int64_t>(rng.uniform_int(100000)));
  }
  double total = 0.0;
  for (auto _ : state) {
    total += store.fetch_batch(0, batch);
  }
  state.counters["modeled_s_per_batch"] = benchmark::Counter(
      store.stats().modeled_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FetchRequests)->Arg(0)->Arg(1);

// --- gradient bucketing ablation ------------------------------------------

void BM_AllreduceBucketed(benchmark::State& state) {
  const int world = 4;
  const std::int64_t n_params = 16;
  for (auto _ : state) {
    dist::Cluster cluster(world);
    cluster.run([&](dist::Communicator& comm) {
      std::vector<Variable> params;
      for (std::int64_t i = 0; i < n_params; ++i) {
        Variable p(Tensor::zeros({4096}), true);
        p.grad().fill_(static_cast<float>(comm.rank()));
        params.push_back(p);
      }
      dist::GradBucket bucket(params);
      for (int step = 0; step < 10; ++step) bucket.allreduce_average(comm, params);
    });
  }
}
BENCHMARK(BM_AllreduceBucketed)->Unit(benchmark::kMillisecond);

void BM_AllreducePerTensor(benchmark::State& state) {
  const int world = 4;
  const std::int64_t n_params = 16;
  for (auto _ : state) {
    dist::Cluster cluster(world);
    cluster.run([&](dist::Communicator& comm) {
      std::vector<Variable> params;
      for (std::int64_t i = 0; i < n_params; ++i) {
        Variable p(Tensor::zeros({4096}), true);
        p.grad().fill_(static_cast<float>(comm.rank()));
        params.push_back(p);
      }
      for (int step = 0; step < 10; ++step) {
        for (Variable& p : params) {
          comm.allreduce_mean(p.grad().data(), p.grad().numel());
        }
      }
    });
  }
}
BENCHMARK(BM_AllreducePerTensor)->Unit(benchmark::kMillisecond);

// --- compute kernels ----------------------------------------------------------

// Adds GFLOP/s and bytes-moved rate counters for a dense [n,n]x[n,n]
// matmul: 2n^3 flops, 3 n^2-float arrays touched per product.
void set_matmul_counters(benchmark::State& state, std::int64_t n) {
  const double per_iter_flops = 2.0 * static_cast<double>(n) * n * n;
  const double per_iter_bytes = 3.0 * static_cast<double>(n) * n * sizeof(float);
  state.counters["GFLOPs"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_iter_flops * 1e-9,
      benchmark::Counter::kIsRate);
  state.counters["bytes_moved"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_iter_bytes,
      benchmark::Counter::kIsRate);
}

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  runtime::TensorArena arena;
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  set_matmul_counters(state, n);
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// Pre-optimization naive triple loop, kept callable for the in-run
// before/after ratio (and as the bit-exactness oracle).
void BM_MatmulReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  runtime::TensorArena arena;
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    Tensor c = ops::matmul_reference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  set_matmul_counters(state, n);
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_MatmulReference)->Arg(64)->Arg(128)->Arg(256);

Csr bench_support(std::int64_t n) {
  SensorNetworkOptions opt;
  opt.num_nodes = n;
  SensorNetwork net = build_sensor_network(opt);
  return net.adjacency.row_normalized();
}

// Bytes a batched SpMM actually moves: per batch item, the gathered
// values+indices and the dense input/output rows.
double spmm_bytes(const Csr& p, std::int64_t b, std::int64_t c) {
  const double gather = static_cast<double>(p.nnz()) *
                        (sizeof(float) + sizeof(std::int64_t) + c * sizeof(float));
  const double dense = static_cast<double>(p.rows() + p.cols()) * c * sizeof(float);
  return static_cast<double>(b) * (gather + dense);
}

void BM_SpmmBatched(benchmark::State& state) {
  Csr p = bench_support(256);
  Rng rng(2);
  Tensor x = Tensor::randn({8, 256, 32}, rng);
  runtime::TensorArena arena;
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    Tensor y = p.spmm_batched(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * p.nnz() * 32);
  state.counters["bytes_moved"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * spmm_bytes(p, 8, 32),
      benchmark::Counter::kIsRate);
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_SpmmBatched);

// Pre-optimization batched kernel: parallel over the batch dim only.
void BM_SpmmBatchedReference(benchmark::State& state) {
  Csr p = bench_support(256);
  Rng rng(2);
  Tensor x = Tensor::randn({8, 256, 32}, rng);
  runtime::TensorArena arena;
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    Tensor y = p.spmm_batched_reference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * p.nnz() * 32);
  state.counters["bytes_moved"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * spmm_bytes(p, 8, 32),
      benchmark::Counter::kIsRate);
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_SpmmBatchedReference);

// Fused SpMM epilogue vs SpMM + bias pass + activation pass.
void BM_SpmmBiasAct(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  Csr p = bench_support(256);
  Rng rng(2);
  Tensor x = Tensor::randn({8, 256, 32}, rng);
  Tensor bias = Tensor::randn({32}, rng);
  runtime::TensorArena arena;
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    if (fused) {
      Tensor y = p.spmm_bias_act(x, bias, ops::Act::kTanh);
      benchmark::DoNotOptimize(y.data());
    } else {
      Tensor y = ops::add_bias(p.spmm_batched(x), bias);
      ops::apply_act_(y, ops::Act::kTanh);
      benchmark::DoNotOptimize(y.data());
    }
  }
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_SpmmBiasAct)->Arg(0)->Arg(1);

void dcgru_step(core::ModelBundle& bundle, const Tensor& x, const Tensor& y) {
  auto outs = bundle.model->forward_seq(x);
  Variable loss = core::seq_loss(outs, y);
  bundle.model->zero_grad();
  loss.backward();
  benchmark::DoNotOptimize(loss.value().item());
}

// DCGRU training-step spec sized so the gate/candidate matmuls and
// diffusion SpMMs dominate (nodes ~40, hidden 64, K=2) — the regime
// the full-size runs live in, rather than tape-overhead noise.
data::DatasetSpec dcgru_bench_spec() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(8);
  spec.horizon = 6;
  return spec;
}

void BM_DcgruForwardBackward(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  data::DatasetSpec spec = dcgru_bench_spec();
  SensorNetwork net = data::network_for(spec);
  auto bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 64, 2, 1, 3);
  Rng rng(4);
  Tensor x = Tensor::randn({8, 6, spec.nodes, spec.features}, rng);
  Tensor y = Tensor::randn({8, 6, spec.nodes, 1}, rng);
  nn::set_gru_fusion_enabled(fused);
  // Per-step arena scope, matching how EpochEngine drives this model;
  // the allocs column converges to 0 once the first step has planned
  // the pool.
  runtime::TensorArena arena;
  {
    // Untimed planning step so the column reads steady state.
    runtime::ArenaScope scope(arena);
    dcgru_step(bundle, x, y);
  }
  const std::uint64_t heap_before = bench::heap_allocs();
  for (auto _ : state) {
    runtime::ArenaScope scope(arena);
    dcgru_step(bundle, x, y);
  }
  nn::set_gru_fusion_enabled(true);
  state.SetItemsProcessed(state.iterations() * 8);
  set_alloc_counter(state, heap_before);
}
BENCHMARK(BM_DcgruForwardBackward)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// --- in-run before/after claims (DESIGN.md §14) ---------------------------

// Per-call wall time of fn(): batches calls into >= ~30 ms samples so
// sub-millisecond kernels aren't at the mercy of scheduler noise, and
// takes the best sample (the least-interfered-with run).
template <typename Fn>
double time_of(Fn&& fn, int samples = 5) {
  const auto once = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  once();  // warm
  const double probe = std::max(once(), 1e-9);
  const int inner = static_cast<int>(std::min(1000.0, std::max(1.0, 0.03 / probe)));
  double best = 1e100;
  for (int s = 0; s < samples; ++s) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count() / inner);
  }
  return best;
}

bool same_bits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.contiguous().data(), b.contiguous().data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

void run_kernel_claims() {
  bench::header("Fused/blocked kernel speedups (before vs after, this binary)",
                "DESIGN.md §14 hot-path optimization; determinism invariant intact");

  {
    const std::int64_t n = 256;
    Rng rng(1);
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    const double t_blocked = time_of([&] { benchmark::DoNotOptimize(ops::matmul(a, b).data()); });
    const double t_naive =
        time_of([&] { benchmark::DoNotOptimize(ops::matmul_reference(a, b).data()); });
    const double ratio = t_naive / t_blocked;
    std::printf("matmul n=256: blocked %.3f ms, naive reference %.3f ms, ratio %.2fx\n",
                t_blocked * 1e3, t_naive * 1e3, ratio);
    bench::verdict(ratio >= 2.0, "register-blocked matmul >= 2x over naive at n=256");
    bench::verdict(same_bits(ops::matmul(a, b), ops::matmul_reference(a, b)),
                   "blocked matmul bit-identical to naive reference");
  }

  {
    Csr p = bench_support(256);
    Rng rng(2);
    Tensor x = Tensor::randn({8, 256, 32}, rng);
    const double t_coll = time_of([&] { benchmark::DoNotOptimize(p.spmm_batched(x).data()); });
    const double t_ref =
        time_of([&] { benchmark::DoNotOptimize(p.spmm_batched_reference(x).data()); });
    std::printf("spmm_batched B=8 n=256 c=32: collapsed %.1f us, batch-parallel %.1f us\n",
                t_coll * 1e6, t_ref * 1e6);
    bench::verdict(t_coll <= t_ref * 1.10,
                   "collapsed (batch x row-block) SpMM no slower than batch-only kernel");
    bench::verdict(same_bits(p.spmm_batched(x), p.spmm_batched_reference(x)),
                   "collapsed SpMM bit-identical to batch-only reference");
  }

  {
    data::DatasetSpec spec = dcgru_bench_spec();
    SensorNetwork net = data::network_for(spec);
    auto bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 64, 2, 1, 3);
    Rng rng(4);
    Tensor x = Tensor::randn({8, 6, spec.nodes, spec.features}, rng);
    Tensor y = Tensor::randn({8, 6, spec.nodes, 1}, rng);
    auto loss_of = [&] {
      auto outs = bundle.model->forward_seq(x);
      Variable loss = core::seq_loss(outs, y);
      bundle.model->zero_grad();
      loss.backward();
      return loss.value().clone();
    };
    nn::set_gru_fusion_enabled(true);
    const double t_fused = time_of([&] { loss_of(); });
    const Tensor loss_fused = loss_of();
    nn::set_gru_fusion_enabled(false);
    const double t_ref = time_of([&] { loss_of(); });
    const Tensor loss_ref = loss_of();
    nn::set_gru_fusion_enabled(true);
    const double ratio = t_ref / t_fused;
    std::printf("DCGRU fwd+bwd B=8 T=6: fused %.2f ms, unfused reference %.2f ms, ratio %.2fx\n",
                t_fused * 1e3, t_ref * 1e3, ratio);
    bench::verdict(ratio >= 1.3,
                   "fused gate/matmul/SpMM kernels >= 1.3x on DCGRU forward+backward");
    bench::verdict(same_bits(loss_fused, loss_ref),
                   "DCGRU training loss bit-identical with fusion on vs off");
  }

  {
    // Fused backward epilogue (DESIGN.md §16): dz = g * act'(y) folded
    // into matmul_nt's row panels vs the two-pass composition this PR
    // replaced (which materialized dz as a fresh zero-initialized heap
    // tensor every backward).  Shape: full PeMS-BAY gate backward,
    // M = batch 8 x 325 nodes, 2H gate width, H+H input width.  The
    // fused path's dz is written in place (a pool hit in steady-state
    // training), so the ratio captures both the skipped pass over the
    // intermediate and the skipped alloc+memset.
    const std::int64_t m = 2600, kc = 128, n = 128;
    Rng rng(7);
    Tensor g = Tensor::randn({m, kc}, rng);
    Tensor y = Tensor::randn({m, kc}, rng);
    ops::apply_act_(y, ops::Act::kSigmoid);  // a real activation output
    Tensor w = Tensor::randn({n, kc}, rng);
    Tensor dz = Tensor::empty({m, kc});
    const double t_fused = time_of([&] {
      benchmark::DoNotOptimize(
          ops::matmul_nt_act_backward(g, y, ops::Act::kSigmoid, w, dz).data());
    });
    const double t_ref = time_of([&] {
      Tensor d = ops::act_backward(g, y, ops::Act::kSigmoid);
      benchmark::DoNotOptimize(ops::matmul_nt(d, w).data());
    });
    const double ratio = t_ref / t_fused;
    std::printf(
        "backward epilogue M=%lld K=%lld N=%lld: fused %.1f us, two-pass %.1f us, "
        "ratio %.2fx\n",
        static_cast<long long>(m), static_cast<long long>(kc),
        static_cast<long long>(n), t_fused * 1e6, t_ref * 1e6, ratio);
    bench::verdict(ratio >= 1.2,
                   "fused backward epilogue >= 1.2x over act_backward + matmul_nt");
    const Tensor d_ref = ops::act_backward(g, y, ops::Act::kSigmoid);
    const Tensor da_ref = ops::matmul_nt(d_ref, w);
    const Tensor da_fused = ops::matmul_nt_act_backward(g, y, ops::Act::kSigmoid, w, dz);
    bench::verdict(same_bits(da_fused, da_ref) && same_bits(dz, d_ref),
                   "fused epilogue bit-identical to the reference composition (da and dz)");
  }

  {
    // Steady-state allocation freedom (DESIGN.md §16): after the
    // arena's first-step planning pass, a full DCGRU train step makes
    // zero heap allocations — every tensor, tape node buffer, and
    // kernel workspace is a pool or cache hit.
    data::DatasetSpec spec = dcgru_bench_spec();
    SensorNetwork net = data::network_for(spec);
    auto bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 64, 2, 1, 3);
    Rng rng(4);
    Tensor x = Tensor::randn({8, 6, spec.nodes, spec.features}, rng);
    Tensor y = Tensor::randn({8, 6, spec.nodes, 1}, rng);
    runtime::TensorArena arena;
    auto step = [&] {
      runtime::ArenaScope scope(arena);
      dcgru_step(bundle, x, y);
    };
    step();  // planning pass: populates the pool and the workspace cache
    const std::uint64_t before = bench::heap_allocs();
    const int steps = 8;
    for (int i = 0; i < steps; ++i) step();
    const std::uint64_t allocs = bench::heap_allocs() - before;
    std::printf("DCGRU train step after arena planning: %llu heap allocs over %d steps\n",
                static_cast<unsigned long long>(allocs), steps);
    bench::verdict(allocs == 0, "DCGRU train step allocs-per-step == 0 after warmup");
  }

  {
    // Determinism under recycling (DESIGN.md §16): the arena hands back
    // uninitialized recycled blocks, so this only holds because every
    // kernel writes each output element it reads — proven here by
    // bitwise-identical Adam training trajectories with the arena on
    // vs off.
    auto losses_of = [&](bool arena_on) {
      runtime::set_arena_enabled(arena_on);
      data::DatasetSpec spec = dcgru_bench_spec();
      SensorNetwork net = data::network_for(spec);
      auto bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 64, 2, 1, 3);
      std::vector<Variable> params = bundle.model->parameters();
      optim::Adam opt(params, optim::Adam::Options{});
      Rng rng(4);
      Tensor x = Tensor::randn({8, 6, spec.nodes, spec.features}, rng);
      Tensor y = Tensor::randn({8, 6, spec.nodes, 1}, rng);
      runtime::TensorArena arena;
      std::vector<float> losses;
      for (int i = 0; i < 4; ++i) {
        runtime::ArenaScope scope(arena);
        auto outs = bundle.model->forward_seq(x);
        Variable loss = core::seq_loss(outs, y);
        opt.zero_grad();
        loss.backward();
        opt.step();
        losses.push_back(loss.value().item());
      }
      runtime::set_arena_enabled(true);
      return losses;
    };
    const std::vector<float> off = losses_of(false);
    const std::vector<float> on = losses_of(true);
    bench::verdict(!on.empty() && on == off,
                   "DCGRU Adam training losses bit-identical with arena on vs off");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  run_kernel_claims();
  return 0;
}
