// Micro-benchmarks (google-benchmark) behind the paper's claims, plus
// the design-choice ablations called out in DESIGN.md §5:
//   * snapshot reconstruction: zero-copy views vs materialized copies
//   * batch assembly cost
//   * consolidated vs per-item remote fetch requests (baseline DDP opt)
//   * gradient bucketing vs per-tensor all-reduce
//   * core compute kernels (matmul / SpMM)
#include <benchmark/benchmark.h>

#include "core/pgt_i.h"
#include "tensor/tensor_ops.h"

using namespace pgti;

namespace {

data::DatasetSpec bench_spec() {
  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(32);
  spec.horizon = 12;
  return spec;
}

Tensor bench_raw(const data::DatasetSpec& spec) {
  SensorNetwork net = data::network_for(spec);
  return data::generate_signal(spec, net, 11);
}

// --- snapshot reconstruction: the core index-batching claim -----------

void BM_SnapshotView(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  data::IndexDataset ds(bench_raw(spec), spec);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto [x, y] = ds.get(i);
    benchmark::DoNotOptimize(x.data());
    benchmark::DoNotOptimize(y.data());
    i = (i + 1) % ds.num_snapshots();
  }
}
BENCHMARK(BM_SnapshotView);

void BM_SnapshotMaterialize(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  data::IndexDataset ds(bench_raw(spec), spec);
  std::int64_t i = 0;
  for (auto _ : state) {
    auto [x, y] = ds.get(i);
    Tensor xc = x.clone();  // what standard preprocessing stores per window
    Tensor yc = y.clone();
    benchmark::DoNotOptimize(xc.data());
    benchmark::DoNotOptimize(yc.data());
    i = (i + 1) % ds.num_snapshots();
  }
}
BENCHMARK(BM_SnapshotMaterialize);

// --- batch assembly -----------------------------------------------------

void BM_BatchAssembly(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  spec.batch_size = state.range(0);
  data::IndexDataset ds(bench_raw(spec), spec);
  data::IndexSource source(ds);
  data::LoaderOptions opt;
  opt.batch_size = spec.batch_size;
  opt.sampler = data::SamplerOptions{data::ShuffleMode::kGlobal, 0, 1, 1, spec.batch_size};
  data::DataLoader loader(source, opt, 0, ds.splits().train_end);
  loader.start_epoch(0);
  data::Batch b;
  for (auto _ : state) {
    if (!loader.next(b)) {
      loader.start_epoch(0);
      continue;
    }
    benchmark::DoNotOptimize(b.x.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.batch_size);
}
BENCHMARK(BM_BatchAssembly)->Arg(8)->Arg(32);

// --- remote-fetch consolidation ablation (paper §5 baseline tuning) -----

void BM_FetchRequests(benchmark::State& state) {
  const bool consolidate = state.range(0) != 0;
  dist::DistStore store(100000, 4 << 20, 16, dist::NetworkModel{}, consolidate);
  std::vector<std::int64_t> batch;
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    batch.push_back(static_cast<std::int64_t>(rng.uniform_int(100000)));
  }
  double total = 0.0;
  for (auto _ : state) {
    total += store.fetch_batch(0, batch);
  }
  state.counters["modeled_s_per_batch"] = benchmark::Counter(
      store.stats().modeled_seconds / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FetchRequests)->Arg(0)->Arg(1);

// --- gradient bucketing ablation ------------------------------------------

void BM_AllreduceBucketed(benchmark::State& state) {
  const int world = 4;
  const std::int64_t n_params = 16;
  for (auto _ : state) {
    dist::Cluster cluster(world);
    cluster.run([&](dist::Communicator& comm) {
      std::vector<Variable> params;
      for (std::int64_t i = 0; i < n_params; ++i) {
        Variable p(Tensor::zeros({4096}), true);
        p.grad().fill_(static_cast<float>(comm.rank()));
        params.push_back(p);
      }
      dist::GradBucket bucket(params);
      for (int step = 0; step < 10; ++step) bucket.allreduce_average(comm, params);
    });
  }
}
BENCHMARK(BM_AllreduceBucketed)->Unit(benchmark::kMillisecond);

void BM_AllreducePerTensor(benchmark::State& state) {
  const int world = 4;
  const std::int64_t n_params = 16;
  for (auto _ : state) {
    dist::Cluster cluster(world);
    cluster.run([&](dist::Communicator& comm) {
      std::vector<Variable> params;
      for (std::int64_t i = 0; i < n_params; ++i) {
        Variable p(Tensor::zeros({4096}), true);
        p.grad().fill_(static_cast<float>(comm.rank()));
        params.push_back(p);
      }
      for (int step = 0; step < 10; ++step) {
        for (Variable& p : params) {
          comm.allreduce_mean(p.grad().data(), p.grad().numel());
        }
      }
    });
  }
}
BENCHMARK(BM_AllreducePerTensor)->Unit(benchmark::kMillisecond);

// --- compute kernels ----------------------------------------------------------

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpmmBatched(benchmark::State& state) {
  const std::int64_t n = 256;
  SensorNetworkOptions opt;
  opt.num_nodes = n;
  SensorNetwork net = build_sensor_network(opt);
  Csr p = net.adjacency.row_normalized();
  Rng rng(2);
  Tensor x = Tensor::randn({8, n, 32}, rng);
  for (auto _ : state) {
    Tensor y = p.spmm_batched(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * p.nnz() * 32);
}
BENCHMARK(BM_SpmmBatched);

void BM_DcgruForwardBackward(benchmark::State& state) {
  data::DatasetSpec spec = bench_spec();
  spec.horizon = 6;
  SensorNetwork net = data::network_for(spec);
  auto bundle = core::make_model(core::ModelKind::kPgtDcrnn, spec, net, 16, 1, 1, 3);
  Rng rng(4);
  Tensor x = Tensor::randn({8, 6, spec.nodes, spec.features}, rng);
  Tensor y = Tensor::randn({8, 6, spec.nodes, 1}, rng);
  for (auto _ : state) {
    auto outs = bundle.model->forward_seq(x);
    Variable loss = core::seq_loss(outs, y);
    bundle.model->zero_grad();
    loss.backward();
    benchmark::DoNotOptimize(loss.value().item());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DcgruForwardBackward)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
