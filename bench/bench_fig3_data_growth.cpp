// Fig. 3: stage-wise data growth while preprocessing PeMS-All-LA —
// raw file -> +time-of-day feature (stage 1) -> sliding-window
// snapshots (stage 2) -> x/y train-val-test split (stage 3).
//
// Analytic at paper scale, then verified against MEASURED allocation
// at simulator scale (the stage boundaries are sampled from the
// MemoryTracker while StandardDataset runs Algorithm 1).
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Fig. 3 — data growth across preprocessing stages (PeMS-All-LA)",
                "paper Fig. 3 / Eq. (1)");

  const auto spec = data::spec_for(data::DatasetKind::kPemsAllLa);
  const data::GrowthStages g = data::growth_stages(spec);
  std::printf("analytic, paper scale (float64):\n");
  std::printf("  raw file                : %s\n", bench::gb(g.raw).c_str());
  std::printf("  stage 1 (+time feature) : %s (x%.2f)\n",
              bench::gb(g.with_time_feature).c_str(), g.with_time_feature / g.raw);
  std::printf("  stage 2 (SWA snapshots) : %s (x%.2f)\n", bench::gb(g.after_swa).c_str(),
              g.after_swa / g.raw);
  std::printf("  stage 3 (x/y split)     : %s (x%.2f)  <- Eq. (1), paper: 102.08 GB\n",
              bench::gb(g.after_xy_split).c_str(), g.after_xy_split / g.raw);
  std::printf("  index-batching (Eq. 2)  : %s (x%.2f)\n",
              bench::gb(data::index_batching_bytes(spec)).c_str(),
              data::index_batching_bytes(spec) / g.raw);

  // Measured at simulator scale (float32): allocate through the real
  // Algorithm-1 implementation and compare the stage ratios.
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 32.0);
  data::DatasetSpec small = spec.scaled(scale);
  SensorNetwork net = data::network_for(small);
  Tensor raw = data::generate_signal(small, net, 3);
  auto& tracker = MemoryTracker::instance();
  const std::size_t base = tracker.current(kHostSpace);

  Tensor stage1 = data::add_time_feature(raw, small);
  const std::size_t m_stage1 = tracker.current(kHostSpace) - base;
  std::size_t m_stage3;
  {
    data::StandardDataset ds(raw, small);
    m_stage3 = static_cast<std::size_t>(ds.x().storage_bytes() + ds.y().storage_bytes());
  }
  const double m_raw = static_cast<double>(raw.storage_bytes());
  std::printf("\nmeasured, scaled 1/%d (float32):\n", static_cast<int>(scale));
  std::printf("  raw       : %s\n", bench::gb(m_raw).c_str());
  std::printf("  stage 1   : %s (x%.2f; analytic x%.2f)\n",
              bench::gb(static_cast<double>(m_stage1)).c_str(),
              static_cast<double>(m_stage1) / m_raw, g.with_time_feature / g.raw);
  std::printf("  stage 3   : %s (x%.2f; analytic x%.2f)\n",
              bench::gb(static_cast<double>(m_stage3)).c_str(),
              static_cast<double>(m_stage3) / m_raw, g.after_xy_split / g.raw);

  const double analytic_ratio = g.after_xy_split / g.with_time_feature;
  const double measured_ratio = static_cast<double>(m_stage3) / static_cast<double>(m_stage1);
  bench::verdict(std::abs(measured_ratio - analytic_ratio) / analytic_ratio < 0.05,
                 "measured stage-3/stage-1 growth matches Eq. (1)'s ~2*horizon factor");
  bench::verdict(g.after_xy_split / g.raw > 40.0,
                 "standard preprocessing inflates PeMS-All-LA ~48x over the raw file");
  return 0;
}
