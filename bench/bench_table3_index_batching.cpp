// Table 3: base PGT-DCRNN vs index-batching on Chickenpox-Hungary,
// Windmill-Large and PeMS-BAY — runtime, best val MAE, peak memory.
//
// Paper claims: <1% runtime difference, identical accuracy, memory
// reductions of ~0% (tiny Chickenpox), 46.88% (Windmill), 70.31%
// (PeMS-BAY).
#include "bench_util.h"

using namespace pgti;

namespace {

struct Row {
  const char* name;
  data::DatasetKind kind;
  double scale;
  const char* paper_runtime;
  const char* paper_mae;
  const char* paper_mem_base;
  const char* paper_mem_index;
};

core::TrainResult run_mode(const Row& row, core::BatchingMode mode, int epochs) {
  core::TrainConfig cfg;
  cfg.spec = data::spec_for(row.kind).scaled(row.scale);
  cfg.model = core::ModelKind::kPgtDcrnn;
  cfg.mode = mode;
  cfg.epochs = epochs;
  cfg.hidden_dim = 16;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = bench::env_int("PGTI_BENCH_BATCHES", 12);
  cfg.max_val_batches = 4;
  cfg.seed = 7;
  return core::Trainer(cfg).run();
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 4);
  bench::header("Table 3 — base vs index-batching (single GPU)",
                "paper Table 3 (100 epochs on Polaris; here " + std::to_string(epochs) +
                    " epochs at simulator scale)");

  const Row rows[] = {
      {"Chickenpox", data::DatasetKind::kChickenpoxHungary, 1.0,
       "188 vs 192 s", "0.6061 vs 0.6061", "1093 MB", "1089 MB"},
      {"Windmill", data::DatasetKind::kWindmillLarge, 8.0,
       "2323 vs 2339 s", "0.1707 vs 0.1606", "2455 MB", "1304 MB"},
      {"PeMS-BAY", data::DatasetKind::kPemsBay, 16.0,
       "3731 vs 3735 s", "1.8923 vs 1.8892", "4497 MB", "1335 MB"},
  };

  bool identical_mae = true;
  bool memory_wins = true;
  for (const Row& row : rows) {
    core::TrainResult base = run_mode(row, core::BatchingMode::kStandard, epochs);
    core::TrainResult index = run_mode(row, core::BatchingMode::kIndex, epochs);
    const double mem_reduction =
        1.0 - static_cast<double>(index.peak_host_bytes) /
                  static_cast<double>(base.peak_host_bytes);
    identical_mae = identical_mae && base.best_val_mae == index.best_val_mae;
    if (row.kind != data::DatasetKind::kChickenpoxHungary) {
      memory_wins = memory_wins && mem_reduction > 0.3;
    }
    std::printf("%-11s | runtime base/index: %6.2f/%6.2f s (paper %s)\n", row.name,
                base.total_seconds(), index.total_seconds(), row.paper_runtime);
    std::printf("%-11s | best val MAE base/index: %.4f/%.4f (paper %s)\n", "",
                base.best_val_mae, index.best_val_mae, row.paper_mae);
    std::printf("%-11s | peak mem base/index: %s/%s (paper %s / %s) -> %.2f%% saved\n",
                "", bench::gb(static_cast<double>(base.peak_host_bytes)).c_str(),
                bench::gb(static_cast<double>(index.peak_host_bytes)).c_str(),
                row.paper_mem_base, row.paper_mem_index, 100.0 * mem_reduction);
  }

  bench::verdict(identical_mae,
                 "index-batching reaches bit-identical accuracy (it feeds the model "
                 "the same snapshots)");
  bench::verdict(memory_wins,
                 "index-batching cuts peak memory substantially on Windmill/PeMS-BAY "
                 "(paper: 46.88% / 70.31%)");
  return 0;
}
