// Transport bench: what did splitting the collectives into an
// algorithm layer over pluggable transports (DESIGN.md §15) cost the
// existing in-process path, and what does the real TCP mesh cost on
// top?
//
// Three all-reduce engines, identical schedule and accumulation order:
//   seed-replica — the pre-refactor shared-memory staged all-reduce
//                  (ranks read peers' buffers directly; zero framing)
//   in-process   — dist::Cluster over InProcessTransport mailboxes
//   socket       — dist::SocketCluster over a loopback TCP full mesh
//
// Reports per-call latency and effective bandwidth across a payload
// sweep, asserts all three produce bit-identical results, and verdicts
// that the refactor leaves the in-process path within a small constant
// factor of the seed (the mailbox copies are the only new work) while
// the socket path pays the expected syscall/framing tax.
//
//   PGTI_BENCH_TRANSPORT_ITERS=50 ./build/bench/bench_transport
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dist/comm.h"
#include "dist/transport_socket.h"

using namespace pgti;

namespace {

/// Compact replica of the pre-refactor (PR 7 era) in-process
/// all-reduce: W threads over ONE shared staging buffer.  Same ceil
/// chunking, same stage s merges source ranks [2^s, 2^(s+1)) in rank
/// order, same stages+3 sync points — but ranks read each other's
/// slices straight out of shared memory, no frames, no mailboxes.
/// This is the fastest the thread-backed wire can possibly be, so it
/// anchors the "what did the transport seam cost" comparison.
class SeedReplica {
 public:
  explicit SeedReplica(int world) : world_(world), ptrs_(world) {}

  void run(const std::function<void(int)>& fn) {
    std::vector<std::thread> ts;
    for (int r = 0; r < world_; ++r) ts.emplace_back([&, r] { fn(r); });
    for (auto& t : ts) t.join();
  }

  void allreduce(int rank, float* data, std::int64_t n) {
    const int w = world_;
    const std::int64_t cn = (n + w - 1) / w;
    sync();  // collective entry (mirrors the seed's scratch-sizing sync)
    if (rank == 0) staged_.resize(static_cast<std::size_t>(cn) * w);
    ptrs_[rank] = data;
    sync();  // inputs visible
    const std::int64_t lo = std::min<std::int64_t>(rank * cn, n);
    const std::int64_t hi = std::min<std::int64_t>(lo + cn, n);
    float* chunk = staged_.data() + static_cast<std::size_t>(rank) * cn;
    for (int s = 0; s < dist::alg::allreduce_stages(w); ++s) {
      const int q0 = 1 << s;
      for (int q = s == 0 ? 0 : q0; q < std::min(q0 * 2, w); ++q) {
        const float* src = ptrs_[q] + lo;
        if (q == 0) {
          if (hi > lo) {
            std::memcpy(chunk, src, static_cast<std::size_t>(hi - lo) * 4);
          }
        } else {
          for (std::int64_t i = 0; i < hi - lo; ++i) chunk[i] += src[i];
        }
      }
      sync();  // stage boundary
    }
    for (int r = 0; r < w; ++r) {
      const std::int64_t rlo = std::min<std::int64_t>(r * cn, n);
      const std::int64_t rhi = std::min<std::int64_t>(rlo + cn, n);
      if (rhi > rlo) {
        std::memcpy(data + rlo, staged_.data() + static_cast<std::size_t>(r) * cn,
                    static_cast<std::size_t>(rhi - rlo) * 4);
      }
    }
    sync();  // gather complete
  }

  void sync() {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == world_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return generation_ != gen; });
    }
  }

 private:
  const int world_;
  std::vector<float*> ptrs_;
  std::vector<float> staged_;
  std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

std::vector<float> payload(int rank, std::int64_t n) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.001f * static_cast<float>((i * 31 + rank * 977) % 1000) - 0.5f;
  }
  return v;
}

struct Timing {
  double seconds_per_call = 0.0;
  std::vector<float> result;  ///< rank 0's reduced buffer (bit check)
};

Timing time_seed(int world, std::int64_t n, int iters) {
  SeedReplica seed(world);
  Timing out;
  double secs = 0.0;
  seed.run([&](int rank) {
    std::vector<float> base = payload(rank, n);
    std::vector<float> buf = base;
    seed.allreduce(rank, buf.data(), n);  // warm + correctness copy
    if (rank == 0) out.result = buf;
    seed.sync();
    WallTimer timer;
    for (int i = 0; i < iters; ++i) {
      buf = base;
      seed.allreduce(rank, buf.data(), n);
    }
    seed.sync();
    if (rank == 0) secs = timer.seconds();
  });
  out.seconds_per_call = secs / iters;
  return out;
}

template <typename ClusterT>
Timing time_cluster(ClusterT& cluster, std::int64_t n, int iters) {
  Timing out;
  double secs = 0.0;
  cluster.run([&](dist::Communicator& comm) {
    std::vector<float> base = payload(comm.rank(), n);
    std::vector<float> buf = base;
    comm.allreduce_sum(buf.data(), n);  // warm + correctness copy
    if (comm.rank() == 0) out.result = buf;
    comm.barrier();
    WallTimer timer;
    for (int i = 0; i < iters; ++i) {
      buf = base;
      comm.allreduce_sum(buf.data(), n);
    }
    comm.barrier();
    if (comm.rank() == 0) secs = timer.seconds();
  });
  out.seconds_per_call = secs / iters;
  return out;
}

bool bits_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * 4) == 0;
}

double mib_per_s(std::int64_t n, int world, double seconds) {
  // Bytes crossing rank boundaries per call, as CommStats ledgers it.
  const double bytes = static_cast<double>(n) * 4.0 * world;
  return bytes / seconds / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  const int world = 4;
  const int iters = bench::env_int("PGTI_BENCH_TRANSPORT_ITERS", 30);
  const std::int64_t sizes[] = {1024, 16384, 262144, 1048576};

  bench::header("all-reduce latency/bandwidth: transport seam cost (world=4)",
                "DESIGN.md §15 — algorithm layer over pluggable transports");
  bench::note("seed-replica = pre-refactor shared-memory staged all-reduce; "
              "in-process = InProcessTransport mailboxes; socket = loopback "
              "TCP full mesh.  " + std::to_string(iters) + " iters/point.");

  dist::Cluster inproc(world);
  dist::SocketCluster socket(world);

  std::printf("\n%12s %14s %14s %14s %12s %12s\n", "floats", "seed us/call",
              "inproc us/call", "socket us/call", "inproc MiB/s",
              "socket MiB/s");
  bool bits_ok = true;
  double worst_inproc_ratio = 0.0;
  double worst_socket_ratio = 0.0;
  for (const std::int64_t n : sizes) {
    const Timing seed = time_seed(world, n, iters);
    const Timing ip = time_cluster(inproc, n, iters);
    const Timing sk = time_cluster(socket, n, iters);
    bits_ok = bits_ok && bits_equal(seed.result, ip.result) &&
              bits_equal(seed.result, sk.result);
    worst_inproc_ratio = std::max(worst_inproc_ratio,
                                  ip.seconds_per_call / seed.seconds_per_call);
    worst_socket_ratio = std::max(worst_socket_ratio,
                                  sk.seconds_per_call / ip.seconds_per_call);
    std::printf("%12lld %14.1f %14.1f %14.1f %12.0f %12.0f\n",
                static_cast<long long>(n), seed.seconds_per_call * 1e6,
                ip.seconds_per_call * 1e6, sk.seconds_per_call * 1e6,
                mib_per_s(n, world, ip.seconds_per_call),
                mib_per_s(n, world, sk.seconds_per_call));
  }

  std::printf("\nworst in-process/seed ratio : %.2fx\n", worst_inproc_ratio);
  std::printf("worst socket/in-process ratio: %.2fx\n", worst_socket_ratio);

  bench::verdict(bits_ok,
                 "all three engines produce bit-identical all-reduce results");
  // The mailbox wire adds one staged copy out and one copy in per
  // payload versus reading shared memory directly; at these sizes that
  // bounds the tax well under the sync overhead it shares with the
  // seed.  3x is a deliberately loose ceiling so the verdict flags
  // regressions (an accidental O(n) allocation or an extra barrier),
  // not scheduler noise.
  bench::verdict(worst_inproc_ratio < 3.0,
                 "in-process path stays within 3x of the pre-refactor "
                 "shared-memory seed at every payload size");
  bench::verdict(worst_socket_ratio < 200.0,
                 "loopback TCP tax is bounded (syscalls + framing, not a "
                 "protocol stall)");
  return bits_ok && worst_inproc_ratio < 3.0 ? 0 : 1;
}
