// Table 1: dataset sizes before and after standard preprocessing.
//
// Fully analytic at paper scale — Eq. (1) applied to the published
// dataset dimensions reproduces the paper's byte counts, including the
// headline 419.46 GB for PeMS that OOMs a 512 GB Polaris node.
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Table 1 — dataset sizes before/after preprocessing",
                "paper Table 1 (Eq. 1 growth model, float64)");

  struct PaperRow {
    const char* before;
    const char* after;
  };
  // Values exactly as printed in the paper (its units are mixed:
  // decimal for Chickenpox/Windmill, binary for the traffic rows).
  const PaperRow paper[] = {
      {"83.36 KB", "657.92 KB"}, {"44.59 MB", "712.80 MB"}, {"54.39 MB", "2.54 GB"},
      {"129.62 MB", "6.05 GB"},  {"2.12 GB", "102.08 GB"},  {"8.71 GB", "419.46 GB"},
  };

  std::printf("%-22s %7s %8s %4s | %-22s %-22s | %-12s %-12s\n", "dataset", "nodes",
              "entries", "hor", "before: ours (paper)", "after: ours (paper)",
              "index Eq.2", "reduction");
  int i = 0;
  bool all_reduced = true;
  for (const auto& spec : data::paper_catalog()) {
    const double before = data::raw_bytes(spec);
    const double after = data::standard_preprocessed_bytes(spec);
    const double index = data::index_batching_bytes(spec);
    const double reduction = 1.0 - index / after;
    all_reduced = all_reduced && reduction > 0.5;
    std::printf("%-22s %7lld %8lld %4lld | %-9s (%-9s) | %-9s (%-9s) | %-12s %6.2f%%\n",
                spec.name.c_str(), static_cast<long long>(spec.nodes),
                static_cast<long long>(spec.entries),
                static_cast<long long>(spec.horizon), bench::gb(before).c_str(),
                paper[i].before, bench::gb(after).c_str(), paper[i].after,
                bench::gb(index).c_str(), 100.0 * reduction);
    ++i;
  }

  const auto pems = data::spec_for(data::DatasetKind::kPems);
  bench::note("paper Table 1 lists PeMS with 11,160 nodes; its byte sizes back out to "
              "the 11,126 sensors of §3, which we use (DESIGN.md §7)");
  bench::note("paper units are mixed (decimal vs binary); ours are decimal — e.g. "
              "449.01 GB == 418.2 GiB, printed as 419.46 GB in the paper");
  bench::verdict(data::standard_preprocessed_bytes(pems) > 512e9 * 0.8,
                 "PeMS preprocessed size is on the order of a 512 GB node's RAM "
                 "(OOM without index-batching)");
  bench::verdict(all_reduced,
                 "index-batching (Eq. 2) shrinks every dataset by >50% vs Eq. 1; "
                 "89%+ for horizon-12 traffic sets");
  return 0;
}
