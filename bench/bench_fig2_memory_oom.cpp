// Fig. 2: system memory during training — PeMS-All-LA trains under the
// 512 GB node limit, full PeMS OOM-crashes for BOTH DCRNN variants.
//
// We scale PeMS and PeMS-All-LA by the same factor and scale the
// "node" memory limit identically, then run the standard pipeline:
// the All-LA run must complete while the PeMS run must throw
// OutOfMemoryError during preprocessing — and index-batching must
// survive the same cap that kills the standard pipeline.
#include "bench_util.h"

using namespace pgti;

namespace {

struct Outcome {
  bool oom = false;
  std::size_t peak = 0;
};

Outcome run_capped(core::TrainConfig cfg, std::size_t cap) {
  auto& tracker = MemoryTracker::instance();
  const std::size_t baseline = tracker.current(kHostSpace);
  tracker.set_limit(kHostSpace, baseline + cap);
  Outcome out;
  try {
    core::TrainResult r = core::Trainer(cfg).run();
    out.peak = r.peak_host_bytes - baseline;
  } catch (const OutOfMemoryError&) {
    out.oom = true;
    out.peak = tracker.peak(kHostSpace) - baseline;
  }
  tracker.set_limit(kHostSpace, 0);
  return out;
}

}  // namespace

int main() {
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 40.0);
  // Memory scales with scale^2 (nodes and entries both shrink) and a
  // further 2x because we compute in float32 while the paper's
  // pipeline materializes float64.
  const auto cap = static_cast<std::size_t>(512e9 / (scale * scale) / 2.0);
  bench::header("Fig. 2 — memory ceiling: PeMS-All-LA trains, PeMS OOMs",
                "paper Fig. 2, scaled 1/" + std::to_string(static_cast<int>(scale)) +
                    " with node limit " + bench::gb(static_cast<double>(cap)));

  core::TrainConfig base;
  base.model = core::ModelKind::kPgtDcrnn;
  base.mode = core::BatchingMode::kStandard;
  base.epochs = 1;
  base.hidden_dim = 8;
  base.diffusion_steps = 1;
  base.max_batches_per_epoch = 4;
  base.max_val_batches = 1;

  core::TrainConfig alla = base;
  alla.spec = data::spec_for(data::DatasetKind::kPemsAllLa).scaled(scale);
  alla.spec.batch_size = 8;
  core::TrainConfig pems = base;
  pems.spec = data::spec_for(data::DatasetKind::kPems).scaled(scale);
  pems.spec.batch_size = 8;
  core::TrainConfig pems_index = pems;
  pems_index.mode = core::BatchingMode::kIndex;

  const Outcome o_alla = run_capped(alla, cap);
  const Outcome o_pems = run_capped(pems, cap);
  const Outcome o_index = run_capped(pems_index, cap);

  std::printf("%-34s | %-10s | %-12s | paper\n", "workflow", "outcome", "peak mem");
  std::printf("%-34s | %-10s | %-12s | trains (259.84 GB peak)\n",
              "PeMS-All-LA, standard batching", o_alla.oom ? "OOM" : "trains",
              bench::gb(static_cast<double>(o_alla.peak)).c_str());
  std::printf("%-34s | %-10s | %-12s | OOM at 512 GB\n", "PeMS, standard batching",
              o_pems.oom ? "OOM" : "trains",
              bench::gb(static_cast<double>(o_pems.peak)).c_str());
  std::printf("%-34s | %-10s | %-12s | trains (45.75 GB peak)\n",
              "PeMS, index-batching", o_index.oom ? "OOM" : "trains",
              bench::gb(static_cast<double>(o_index.peak)).c_str());

  bench::verdict(!o_alla.oom, "PeMS-All-LA fits under the (scaled) 512 GB node limit");
  bench::verdict(o_pems.oom, "full PeMS OOM-crashes the standard pipeline");
  bench::verdict(!o_index.oom, "index-batching trains PeMS under the same cap");
  return 0;
}
