// Table 5: optimal validation MAE — global shuffling vs local
// batch-level shuffling on PeMS-BAY with 4/8/16 GPUs.
//
// Paper: global 1.932/2.008/2.149 vs batch-level 1.913/1.868/1.833 —
// i.e. batch-level shuffling matches (even slightly beats) global
// shuffling, which justifies the generalized larger-than-memory mode.
#include "bench_util.h"

using namespace pgti;

namespace {

double run_shuffle(core::DistMode mode, int world, int epochs) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(24);
  cfg.spec.horizon = 6;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = world;
  cfg.epochs = epochs;
  cfg.lr = 2e-3f;
  cfg.hidden_dim = 12;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 10;
  cfg.max_val_batches = 3;
  cfg.seed = 13;
  return core::DistTrainer(cfg).run().best_val_mae;
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 5);
  bench::header("Table 5 — global vs local batch shuffling (PeMS-BAY)",
                "paper Table 5 (4/8/16 GPUs)");

  const double paper_global[] = {1.932, 2.008, 2.149};
  const double paper_batch[] = {1.913, 1.868, 1.833};
  const int worlds[] = {4, 8, 16};

  std::printf("%-6s | %-26s | %-26s\n", "GPUs", "global shuffle (ours/paper)",
              "batch-level shuffle (ours/paper)");
  bool comparable = true;
  for (int i = 0; i < 3; ++i) {
    const double g = run_shuffle(core::DistMode::kDistributedIndex, worlds[i], epochs);
    const double b = run_shuffle(core::DistMode::kGeneralizedIndex, worlds[i], epochs);
    std::printf("%-6d | %10.4f / %-10.3f | %10.4f / %-10.3f\n", worlds[i], g,
                paper_global[i], b, paper_batch[i]);
    // Batch-level must be within ~20% of global (paper: it is equal or
    // better).
    comparable = comparable && b < g * 1.2;
  }

  bench::verdict(comparable,
                 "local batch-level shuffling obtains accuracy similar to global "
                 "shuffling (enables the larger-than-memory mode)");
  return 0;
}
