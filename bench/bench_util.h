// Shared helpers for the experiment-reproduction benches.
//
// Every bench prints:
//   * the paper's published numbers for its table/figure,
//   * our measured/modeled numbers at the configured scale,
//   * whether the paper's qualitative claim reproduces.
// Scale and epoch counts are tunable via PGTI_BENCH_SCALE /
// PGTI_BENCH_EPOCHS so the suite finishes quickly by default but can
// be pushed toward fidelity on bigger machines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pgt_i.h"
#include "runtime/memory_tracker.h"

namespace pgti::bench {

/// Tracker-charged heap allocations so far (process-wide, all spaces).
/// Diff around a region to count its real heap traffic; pool hits from
/// the tensor arena and workspace-cache reuses are excluded by
/// construction (DESIGN.md §16), so the delta is the allocs-per-
/// iteration column the kernel benches print.
inline std::uint64_t heap_allocs() {
  return MemoryTracker::instance().heap_allocs_total();
}

inline double env_double(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) {
    const double x = std::atof(v);
    if (x > 0.0) return x;
  }
  return fallback;
}

inline int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int x = std::atoi(v);
    if (x > 0) return x;
  }
  return fallback;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=============================================================\n");
}

inline void note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

inline void verdict(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "REPRODUCED" : "DIVERGED", claim.c_str());
}

inline std::string gb(double bytes) { return format_bytes(bytes); }

/// ClusterModel parameters for the full-size PeMS + DCRNN workload,
/// calibrated to the paper's single-GPU anchor (Table 4: 333.58 min
/// for 30 epochs) — see EXPERIMENTS.md for the calibration notes.
inline dist::ClusterModelParams pems_cluster_params() {
  dist::ClusterModelParams p;
  const auto spec = data::spec_for(data::DatasetKind::kPems);
  const auto splits = data::split_ranges(spec.num_snapshots());
  p.train_samples = splits.train_end;
  p.batch_per_worker = spec.batch_size;
  p.model_parameters = 250000;  // DCRNN, hidden 64, K=2, 2+2 layers
  p.sample_bytes = 2 * spec.horizon * spec.nodes * spec.features *
                   static_cast<std::int64_t>(sizeof(float));
  p.dataset_bytes = spec.entries * spec.nodes * spec.features *
                    static_cast<std::int64_t>(sizeof(float));
  p.epochs = 30;
  // 333.58 min / 30 epochs over the training shard.
  p.t_sample = 333.58 * 60.0 / 30.0 / static_cast<double>(p.train_samples);
  p.index_preprocess_s = 26.05;   // paper §5.2 measured
  p.ddp_preprocess_base_s = 120.0;
  p.ddp_preprocess_scatter_per_worker_s = 1.45;  // 305 s at 128 workers
  p.epoch_fixed_s = 1.0;
  return p;
}

}  // namespace pgti::bench
