// Fig. 9 (+ §5.4): larger-than-memory mode — generalized-
// distributed-index-batching vs baseline DDP, both with batch-level
// shuffling, single epoch on PeMS, 4..128 GPUs.
//
// Paper: generalized-index beats the baseline's epoch time by up to
// 2.28x (DDP: 303 s @4 -> 231 s @128) by moving ~2*horizon times less
// data, and cuts 4-worker memory from 479.66 GB to 53.28 GB.
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Fig. 9 — batch-shuffling epoch runtime: generalized-index vs DDP",
                "paper Fig. 9 (single epoch, cluster model + functional memory "
                "measurement)");

  dist::ClusterModelParams params = bench::pems_cluster_params();
  params.epochs = 1;  // Fig. 9 reports one epoch
  dist::ClusterModel model(params);

  std::printf("%-5s | %-40s | %-40s | ratio\n", "GPUs",
              "DDP epoch [s] (comp + data comm)", "generalized-index epoch [s]");
  double worst_ratio = 1e9, best_ratio = 0.0;
  for (int w : {4, 8, 16, 32, 64, 128}) {
    const auto ddp = model.evaluate(w, dist::DistStrategy::kBaselineDdpBatchShuffle);
    const auto idx = model.evaluate(w, dist::DistStrategy::kGeneralizedIndex);
    const double de = ddp.epoch_s(1), ie = idx.epoch_s(1);
    const double ratio = de / ie;
    worst_ratio = std::min(worst_ratio, ratio);
    best_ratio = std::max(best_ratio, ratio);
    std::printf("%-5d | total %7.1f = comp %6.1f + comm %7.1f | total %7.1f = comp "
                "%6.1f + comm %6.1f | %5.2fx\n",
                w, de, ddp.compute_s + ddp.allreduce_s, ddp.data_comm_s, ie,
                idx.compute_s + idx.allreduce_s, idx.data_comm_s, ratio);
  }
  std::printf("(paper anchors: DDP 303 s @4 GPUs; generalized-index up to 2.28x "
              "faster; data volume ratio ~2*horizon = %lldx)\n",
              static_cast<long long>(2 * data::spec_for(data::DatasetKind::kPems).horizon));

  // Data-plane memory comparison at thread scale (paper §5.4 with 4
  // workers: 53.28 GB vs 479.66 GB): 4 partitioned IndexDatasets vs
  // the materialized snapshot arrays the baseline distributes.
  data::DatasetSpec mspec = data::spec_for(data::DatasetKind::kPems).scaled(60);
  SensorNetwork net = data::network_for(mspec);
  Tensor raw = data::generate_signal(mspec, net, 17);
  auto& tracker = MemoryTracker::instance();
  const int world = 4;

  std::size_t index_bytes;
  {
    const std::size_t before = tracker.current(kHostSpace);
    data::StandardScaler scaler;
    {
      Tensor stage1 = data::add_time_feature(raw, mspec);
      scaler = data::fit_scaler(stage1, mspec);
    }
    std::vector<std::unique_ptr<data::IndexDataset>> parts;
    const std::int64_t s = mspec.num_snapshots();
    const std::int64_t chunk = (s + world - 1) / world;
    for (int r = 0; r < world; ++r) {
      const std::int64_t lo = std::min<std::int64_t>(chunk * r, s);
      const std::int64_t hi = std::min<std::int64_t>(lo + chunk, s);
      const std::int64_t len =
          std::min(mspec.entries, hi - 1 + 2 * mspec.horizon) - lo;
      parts.push_back(std::make_unique<data::IndexDataset>(
          raw.slice(0, lo, len).clone(), mspec, lo, scaler, lo, hi));
    }
    index_bytes = tracker.current(kHostSpace) - before;
  }
  std::size_t ddp_bytes;
  {
    const std::size_t before = tracker.current(kHostSpace);
    data::StandardDataset shared(raw, mspec);
    ddp_bytes = tracker.current(kHostSpace) - before;
  }
  std::printf("\n4-worker data-plane memory: generalized-index %s vs baseline DDP %s "
              "(%.2fx; paper: 53.28 GB vs 479.66 GB = 9.0x)\n",
              bench::gb(static_cast<double>(index_bytes)).c_str(),
              bench::gb(static_cast<double>(ddp_bytes)).c_str(),
              static_cast<double>(ddp_bytes) / static_cast<double>(index_bytes));

  // Functional epoch at thread scale: batch shuffling keeps accesses local.
  core::DistConfig dcfg;
  dcfg.spec = data::spec_for(data::DatasetKind::kPems).scaled(120);
  dcfg.spec.batch_size = 8;
  dcfg.world = world;
  dcfg.epochs = 1;
  dcfg.hidden_dim = 8;
  dcfg.diffusion_steps = 1;
  dcfg.max_batches_per_epoch = 4;
  dcfg.max_val_batches = 1;
  dcfg.mode = core::DistMode::kGeneralizedIndex;
  core::DistResult idx_run = core::DistTrainer(dcfg).run();

  bench::verdict(worst_ratio > 1.3,
                 "generalized-index outperforms baseline DDP at every scale "
                 "(paper: up to 2.28x)");
  bench::verdict(index_bytes * 4 < ddp_bytes,
                 "partitioned raw data needs a fraction of the baseline's memory "
                 "(paper: 53.28 vs 479.66 GB)");
  bench::verdict(idx_run.store.remote_snapshots == 0,
                 "batch-level shuffling keeps every access partition-local");
  bench::note("our generalized mode scales better at 128 GPUs than the paper's "
              "(its Dask redistribution overheads persist at scale; our locality "
              "model is best-case)");
  return 0;
}
