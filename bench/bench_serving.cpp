// Streaming inference: micro-batched serving vs per-request forwards.
//
// Closed-loop load sweep over an InferenceEngine serving a published
// ModelSnapshot from a local provider: C client threads each keep one
// request in flight, so the coalescing window sees offered
// concurrency C and the batched engine fuses up to C same-horizon
// requests per forward.  The per-request baseline (max_batch = 1) runs
// the same traffic one forward per request.  For each load we report
// throughput, p50/p99 latency, and the average coalesced batch; the
// serving claims are (a) batched saturation throughput >= 2x the
// per-request baseline and (b) every response at every load is
// byte-identical to the reference single-request forward.
//
//   PGTI_SERVE_SECONDS   seconds per load point      (default 0.4)
//   PGTI_SERVE_CLIENTS   max client count in sweep   (default 32)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "serve/types.h"

namespace pgti {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr int kHorizon = 4;

struct LoadPoint {
  int clients = 0;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t mismatches = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double avg_batch = 0.0;
  double throughput() const { return static_cast<double>(completed) / seconds; }
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LoadPoint run_point(serve::SnapshotSlot& slot, data::SnapshotProvider& provider,
                    const serve::EngineConfig& cfg, int clients, double seconds,
                    const std::vector<std::int64_t>& ids,
                    const std::vector<Tensor>& refs) {
  serve::InferenceEngine engine(slot, provider, /*rank=*/0, cfg);
  engine.start();
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> mismatches{0};
  const auto until = Clock::now() + std::chrono::duration<double>(seconds);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::size_t k = static_cast<std::size_t>(c);
      while (Clock::now() < until) {
        const std::size_t which = k++ % ids.size();
        serve::ForecastRequest req;
        req.snapshot = ids[which];
        req.horizon = kHorizon;
        const auto t0 = Clock::now();
        const serve::Forecast f = engine.submit(req).get();
        lat[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
        const Tensor& ref = refs[which];
        if (f.prediction.shape() != ref.shape() ||
            std::memcmp(f.prediction.data(), ref.data(),
                        static_cast<std::size_t>(ref.numel()) * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  engine.stop();
  const serve::ServeStats s = engine.stats();
  LoadPoint pt;
  pt.clients = clients;
  pt.seconds = seconds;
  pt.completed = s.completed;
  pt.mismatches = mismatches.load();
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  pt.p50_ms = percentile(all, 0.50);
  pt.p99_ms = percentile(all, 0.99);
  pt.avg_batch =
      s.batches > 0 ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
                    : 0.0;
  return pt;
}

}  // namespace
}  // namespace pgti

int main() {
  using namespace pgti;
  bench::header("Streaming inference: micro-batched serving over a snapshot",
                "serving claim — coalesced micro-batches >= 2x per-request "
                "throughput at saturation, bit-identical at every load");

  const double seconds = bench::env_double("PGTI_SERVE_SECONDS", 0.4);
  const int max_clients = bench::env_int("PGTI_SERVE_CLIENTS", 64);

  data::DatasetSpec spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  spec.horizon = kHorizon;
  const SensorNetwork net = data::network_for(spec);
  const Tensor raw = data::generate_signal(spec, net, 11);
  data::IndexDataset ds(raw, spec);
  data::IndexProvider provider(ds);
  core::ModelBundle live = core::make_model(core::ModelKind::kPgtDcrnn, spec, net,
                                            /*hidden=*/8, /*diffusion=*/1,
                                            /*layers=*/1, /*seed=*/13);
  serve::SnapshotSlot slot(core::ModelKind::kPgtDcrnn, spec, net, 8, 1, 1, 13);
  const auto snap = slot.publish(*live.model, 0);

  // The request mix: four recent windows, cycled by every client.
  const std::int64_t head = provider.num_snapshots() - 1;
  const std::vector<std::int64_t> ids = {head, head - 1, head - 2, head - 3};

  // Byte-exact references, computed once through a batch-of-one
  // forward (the exact path the per-request engine runs).
  std::vector<Tensor> refs;
  for (const std::int64_t id : ids) {
    Tensor x = Tensor::empty({1, spec.horizon, spec.nodes, spec.features}, kHostSpace);
    auto [window, y] = ds.get(id);
    (void)y;
    x.select(0, 0).copy_from(window);
    const std::vector<Variable> outputs = snap->model().forward_seq(x);
    Tensor ref =
        Tensor::empty({kHorizon, spec.nodes, snap->model().output_dim()}, kHostSpace);
    for (int s = 0; s < kHorizon; ++s) {
      ref.select(0, s).copy_from(outputs[static_cast<std::size_t>(s)].value().select(0, 0));
    }
    refs.push_back(std::move(ref));
  }

  serve::EngineConfig batched;
  // Short window: closed-loop clients resubmit within microseconds of
  // a batch completing, so 300us captures the full offered
  // concurrency without dominating the batch cycle.
  batched.coalesce_window = 300us;
  batched.max_batch = 64;
  serve::EngineConfig per_request;
  per_request.coalesce_window = 0us;
  per_request.max_batch = 1;  // the no-coalescing baseline

  std::vector<int> loads;
  for (int c = 1; c <= max_clients; c *= 2) loads.push_back(c);

  std::printf("\n%-12s %8s %12s %10s %10s %10s\n", "engine", "clients", "req/s",
              "p50 ms", "p99 ms", "avg batch");
  double sat_batched = 0.0, sat_per_request = 0.0;
  std::uint64_t total_mismatches = 0;
  for (const int c : loads) {
    const LoadPoint pt =
        run_point(slot, provider, per_request, c, seconds, ids, refs);
    std::printf("%-12s %8d %12.1f %10.3f %10.3f %10.2f\n", "per-request",
                pt.clients, pt.throughput(), pt.p50_ms, pt.p99_ms, pt.avg_batch);
    sat_per_request = std::max(sat_per_request, pt.throughput());
    total_mismatches += pt.mismatches;
  }
  std::printf("\n");
  for (const int c : loads) {
    const LoadPoint pt = run_point(slot, provider, batched, c, seconds, ids, refs);
    std::printf("%-12s %8d %12.1f %10.3f %10.3f %10.2f\n", "batched", pt.clients,
                pt.throughput(), pt.p50_ms, pt.p99_ms, pt.avg_batch);
    sat_batched = std::max(sat_batched, pt.throughput());
    total_mismatches += pt.mismatches;
  }

  std::printf("\nsaturation: per-request %.1f req/s, batched %.1f req/s (%.2fx)\n",
              sat_per_request, sat_batched,
              sat_per_request > 0.0 ? sat_batched / sat_per_request : 0.0);
  bench::verdict(sat_batched >= 2.0 * sat_per_request,
                 "micro-batched serving reaches >= 2x the per-request "
                 "saturation throughput");
  bench::verdict(total_mismatches == 0,
                 "every forecast at every load is byte-identical to the "
                 "single-request reference forward");
  return 0;
}
