// Table 2 (+ §3 case study): single-epoch DCRNN vs PGT-DCRNN on
// PeMS-All-LA — runtime, peak system memory, peak GPU memory.
//
// Paper: DCRNN 68.48 min / 371.25 GB / 24.84 GB; PGT-DCRNN 4.48 min /
// 259.84 GB / 1.58 GB (15.3x runtime gap).  We run both at a scaled
// dataset size; the qualitative claims under test are (a) the original
// DCRNN's padded dataloader + encoder-decoder model cost a multiple of
// the lightweight PGT-DCRNN in both time and memory, and (b) neither
// path's memory is anywhere near index-batching's.
#include "bench_util.h"

using namespace pgti;

int main() {
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 48.0);
  bench::header("Table 2 — DCRNN vs PGT-DCRNN case study (PeMS-All-LA)",
                "paper Table 2 / Fig. 2, scaled 1/" + std::to_string(static_cast<int>(scale)));

  core::TrainConfig common;
  common.spec = data::spec_for(data::DatasetKind::kPemsAllLa).scaled(scale);
  common.spec.batch_size = 16;
  common.epochs = 1;
  common.hidden_dim = 16;
  common.diffusion_steps = 2;
  common.max_batches_per_epoch = bench::env_int("PGTI_BENCH_BATCHES", 12);
  common.max_val_batches = 2;

  // Original DCRNN: padded dataloader + full encoder-decoder model.
  core::TrainConfig dcrnn_cfg = common;
  dcrnn_cfg.model = core::ModelKind::kDcrnn;
  dcrnn_cfg.mode = core::BatchingMode::kPadded;
  dcrnn_cfg.num_layers = 2;

  // PGT-DCRNN: standard (non-padded) pipeline + lightweight model.
  core::TrainConfig pgt_cfg = common;
  pgt_cfg.model = core::ModelKind::kPgtDcrnn;
  pgt_cfg.mode = core::BatchingMode::kStandard;

  core::TrainResult dcrnn = core::Trainer(dcrnn_cfg).run();
  core::TrainResult pgt = core::Trainer(pgt_cfg).run();

  std::printf("%-12s | %-24s | %-26s | %-20s\n", "model", "epoch runtime (s)",
              "resident system memory", "peak GPU memory");
  std::printf("%-12s | ours %8.2f (paper 68.48 min) | ours %-9s (paper 371.25 GB) | "
              "ours %-9s (paper 24.84 GB)\n",
              "DCRNN", dcrnn.total_seconds(),
              bench::gb(static_cast<double>(dcrnn.resident_host_bytes)).c_str(),
              bench::gb(static_cast<double>(dcrnn.peak_device_bytes)).c_str());
  std::printf("%-12s | ours %8.2f (paper  4.48 min) | ours %-9s (paper 259.84 GB) | "
              "ours %-9s (paper  1.58 GB)\n",
              "PGT-DCRNN", pgt.total_seconds(),
              bench::gb(static_cast<double>(pgt.resident_host_bytes)).c_str(),
              bench::gb(static_cast<double>(pgt.peak_device_bytes)).c_str());

  const double runtime_ratio = dcrnn.total_seconds() / pgt.total_seconds();
  std::printf("runtime ratio DCRNN/PGT-DCRNN: %.2fx (paper: 15.30x)\n", runtime_ratio);
  bench::verdict(runtime_ratio > 2.0,
                 "PGT-DCRNN is several times faster than the original DCRNN");
  bench::verdict(dcrnn.resident_host_bytes > pgt.resident_host_bytes,
                 "DCRNN's padded dataloader keeps extra dataset copies resident");
  bench::verdict(dcrnn.peak_device_bytes > pgt.peak_device_bytes,
                 "the encoder-decoder model needs more GPU memory than the "
                 "single-layer PGT variant");
  bench::note("absolute numbers are at simulator scale; ratios carry the claim");
  return 0;
}
