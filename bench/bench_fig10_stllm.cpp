// Fig. 10 (+ §5.5): broader applicability — ST-LLM trained with
// distributed-index-batching on PeMS-BAY, 1/4/8/16/32 GPUs.
//
// Paper: 3.92x at 4 GPUs, 30.01x at 32 GPUs vs single-GPU
// index-batching; near-linear because PeMS-BAY is small and
// preprocessing takes at most 1.35 s.  We measure the ST-LLM
// surrogate's per-sample cost functionally, then compose the scaling
// curve with the cluster model (gradient sync uses the transformer's
// real parameter count).
#include "bench_util.h"

using namespace pgti;

int main() {
  bench::header("Fig. 10 — ST-LLM distributed-index-batching scaling (PeMS-BAY)",
                "paper Fig. 10 (1/4/8/16/32 GPUs)");

  // Functional measurement: a short single-worker ST-LLM run gives the
  // per-sample compute cost and the parameter count.
  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(24);
  cfg.spec.horizon = 6;
  cfg.spec.batch_size = 8;
  cfg.model = core::ModelKind::kStllm;
  cfg.mode = core::BatchingMode::kIndex;
  cfg.epochs = 1;
  cfg.hidden_dim = 16;
  cfg.max_batches_per_epoch = 6;
  cfg.max_val_batches = 1;
  core::TrainResult probe = core::Trainer(cfg).run();
  const double t_sample_measured =
      probe.train_seconds /
      (static_cast<double>(cfg.max_batches_per_epoch) * cfg.spec.batch_size + 8);
  std::printf("measured ST-LLM surrogate: %lld parameters, %.2f ms/sample "
              "(simulator scale)\n",
              static_cast<long long>(probe.model_parameters), t_sample_measured * 1e3);

  // Compose the paper-scale curve.  The single-GPU anchor is the
  // measured cost scaled to PeMS-BAY's full sample count.
  dist::ClusterModelParams p;
  const auto spec = data::spec_for(data::DatasetKind::kPemsBay);
  p.train_samples = data::split_ranges(spec.num_snapshots()).train_end;
  p.batch_per_worker = spec.batch_size;
  p.model_parameters = probe.model_parameters;
  p.sample_bytes = 2 * spec.horizon * spec.nodes * spec.features * 4;
  p.dataset_bytes = spec.entries * spec.nodes * spec.features * 4;
  p.epochs = 30;
  // Anchor the per-sample cost to the paper's single-GPU ST-LLM run
  // (~350 min for 30 epochs; Fig. 10's y-axis).  Our surrogate's
  // measured cost confirms the same O(samples) structure but a GPT-2
  // backbone is ~1000x heavier than the surrogate, so the anchor, not
  // the raw measurement, sets the absolute scale.
  p.t_sample = 350.0 * 60.0 / 30.0 / static_cast<double>(p.train_samples);
  p.index_preprocess_s = 1.35;  // paper §5.5
  p.epoch_fixed_s = 0.5;
  dist::ClusterModel model(p);

  const double t1 = model.evaluate(1, dist::DistStrategy::kDistributedIndex).total_s();
  std::printf("\n%-5s %-14s %-10s (paper: 3.92x @4, 30.01x @32)\n", "GPUs",
              "runtime [min]", "speedup");
  double s4 = 0.0, s32 = 0.0;
  for (int w : {1, 4, 8, 16, 32}) {
    const double t = model.evaluate(w, dist::DistStrategy::kDistributedIndex).total_s();
    const double speedup = t1 / t;
    if (w == 4) s4 = speedup;
    if (w == 32) s32 = speedup;
    std::printf("%-5d %-14.2f %-10.2fx\n", w, t / 60.0, speedup);
  }

  bench::verdict(s4 > 3.0 && s32 > 20.0,
                 "near-linear scaling (paper: 3.92x @4 GPUs, 30.01x @32 GPUs)");
  bench::verdict(p.index_preprocess_s < 2.0,
                 "preprocessing is a negligible fraction of the workflow (<= 1.35 s)");
  bench::note("index-batching is model-agnostic: the same loader drove DCRNN, "
              "A3T-GCN and this transformer");
  return 0;
}
