// Cache locality of the distribution strategies (extends the §5.4 /
// Table 5 locality story) plus the §7 prefetch-overlap experiment.
//
// The paper argues batch-level shuffling keeps accesses local; the
// same mechanism makes the DDP baseline's remote-fetch cache far more
// effective: with fixed batch contents each epoch re-touches the same
// remote snapshots, so a bounded per-rank LRU absorbs them from epoch
// 2 on, while global shuffling draws a fresh permutation chunk every
// epoch and keeps missing.  A byte-budgeted cache of the same size
// must behave identically.  Finally, the async prefetch pipeline must
// hide part of the modeled fetch time behind compute without touching
// a single loss bit.
#include "bench_util.h"

using namespace pgti;

namespace {

core::DistConfig locality_config(core::DistMode mode) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = 4;
  cfg.lr = 2e-3f;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_val_batches = 2;
  cfg.seed = 17;
  // Bounded cache that fits one rank's fixed (batch-level) remote
  // working set but only a fraction of the global-shuffle candidate
  // pool.
  cfg.store_cache_snapshots = 160;
  return cfg;
}

double hit_rate(const dist::StoreStats& st) {
  return st.remote_snapshots > 0
             ? static_cast<double>(st.cache_hits) /
                   static_cast<double>(st.remote_snapshots)
             : 0.0;
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 4);
  bench::header("Cache locality — shuffle strategy vs remote-cache hit rate",
                "extends paper §5.4 / Table 5 (locality of batch-level shuffling) "
                "and §7 (prefetching)");

  // ---- claim 1: batch-level shuffling hits the cache, global misses.
  core::DistConfig global_cfg = locality_config(core::DistMode::kBaselineDdp);
  global_cfg.epochs = epochs;
  const core::DistResult global_r = core::DistTrainer(global_cfg).run();

  core::DistConfig batch_cfg =
      locality_config(core::DistMode::kBaselineDdpBatchShuffle);
  batch_cfg.epochs = epochs;
  const core::DistResult batch_r = core::DistTrainer(batch_cfg).run();

  const double g_rate = hit_rate(global_r.store);
  const double b_rate = hit_rate(batch_r.store);
  std::printf("%-22s | %-10s | %-12s | %-12s | %s\n", "shuffle", "epochs",
              "remote", "cache hits", "hit rate");
  std::printf("%-22s | %-10d | %-12llu | %-12llu | %.1f%%\n", "global", epochs,
              static_cast<unsigned long long>(global_r.store.remote_snapshots),
              static_cast<unsigned long long>(global_r.store.cache_hits),
              100.0 * g_rate);
  std::printf("%-22s | %-10d | %-12llu | %-12llu | %.1f%%\n", "batch-level", epochs,
              static_cast<unsigned long long>(batch_r.store.remote_snapshots),
              static_cast<unsigned long long>(batch_r.store.cache_hits),
              100.0 * b_rate);
  bench::verdict(b_rate > 1.5 * g_rate && b_rate > 0.5,
                 "batch-level shuffling makes the bounded remote cache effective "
                 "(fixed batches re-hit from epoch 2 on) while global shuffling "
                 "keeps missing");

  // ---- claim 2: a byte budget of the same size behaves identically.
  core::DistConfig bytes_cfg = batch_cfg;
  bytes_cfg.store_cache_snapshots = 1 << 20;  // count bound slack
  bytes_cfg.store_cache_bytes =
      160 * 2 * bytes_cfg.spec.horizon * bytes_cfg.spec.nodes *
      bytes_cfg.spec.features * static_cast<std::int64_t>(sizeof(float));
  const core::DistResult bytes_r = core::DistTrainer(bytes_cfg).run();
  std::printf("bytes-bounded cache (same budget): hits %llu vs %llu, "
              "ledger %llu == %llu + %llu\n",
              static_cast<unsigned long long>(bytes_r.store.cache_hits),
              static_cast<unsigned long long>(batch_r.store.cache_hits),
              static_cast<unsigned long long>(bytes_r.store.remote_bytes),
              static_cast<unsigned long long>(bytes_r.store.bytes_copied),
              static_cast<unsigned long long>(bytes_r.store.cache_hit_bytes));
  bench::verdict(bytes_r.store.cache_hits == batch_r.store.cache_hits &&
                     bytes_r.store.remote_bytes ==
                         bytes_r.store.bytes_copied + bytes_r.store.cache_hit_bytes,
                 "a bytes-bounded cache with the equivalent budget reproduces the "
                 "snapshot-bounded behaviour and its ledger still decomposes into "
                 "real movement");

  // ---- claim 3: async prefetch hides fetch time, losses untouched.
  core::DistConfig sync_cfg = locality_config(core::DistMode::kBaselineDdp);
  sync_cfg.epochs = 2;
  sync_cfg.max_batches_per_epoch = 8;
  const core::DistResult sync_r = core::DistTrainer(sync_cfg).run();
  core::DistConfig pf_cfg = sync_cfg;
  pf_cfg.prefetch = true;
  const core::DistResult pf_r = core::DistTrainer(pf_cfg).run();
  std::printf("modeled fetch: total %.3fs | exposed without prefetch %.3fs | "
              "exposed with prefetch %.3fs (overlapped %.3fs)\n",
              sync_r.store.modeled_seconds, sync_r.modeled_fetch_seconds,
              pf_r.modeled_fetch_seconds, pf_r.store.overlapped_seconds);
  bool losses_identical = sync_r.curve.size() == pf_r.curve.size();
  for (std::size_t e = 0; losses_identical && e < sync_r.curve.size(); ++e) {
    losses_identical = sync_r.curve[e].train_mae == pf_r.curve[e].train_mae &&
                       sync_r.curve[e].val_mae == pf_r.curve[e].val_mae;
  }
  bench::verdict(losses_identical &&
                     pf_r.modeled_fetch_seconds < sync_r.modeled_fetch_seconds &&
                     pf_r.store.overlapped_seconds > 0.0,
                 "async prefetch overlaps modeled fetch time with compute "
                 "(strictly lower exposed seconds) while every per-epoch loss "
                 "stays bit-identical");
  return 0;
}
