// Cache locality of the distribution strategies (extends the §5.4 /
// Table 5 locality story) plus the §7 prefetch-overlap experiment.
//
// The paper argues batch-level shuffling keeps accesses local; the
// same mechanism makes the DDP baseline's remote-fetch cache far more
// effective: with fixed batch contents each epoch re-touches the same
// remote snapshots, so a bounded per-rank LRU absorbs them from epoch
// 2 on, while global shuffling draws a fresh permutation chunk every
// epoch and keeps missing.  A byte-budgeted cache of the same size
// must behave identically.  Finally, the async prefetch pipeline must
// hide part of the modeled fetch time behind compute without touching
// a single loss bit.
#include "bench_util.h"

using namespace pgti;

namespace {

core::DistConfig locality_config(core::DistMode mode) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
  cfg.spec.horizon = 4;
  cfg.spec.batch_size = 8;
  cfg.mode = mode;
  cfg.world = 4;
  cfg.lr = 2e-3f;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_val_batches = 2;
  cfg.seed = 17;
  // Bounded cache that fits one rank's fixed (batch-level) remote
  // working set but only a fraction of the global-shuffle candidate
  // pool.
  cfg.store_cache_snapshots = 160;
  return cfg;
}

double hit_rate(const dist::StoreStats& st) {
  return st.remote_snapshots > 0
             ? static_cast<double>(st.cache_hits) /
                   static_cast<double>(st.remote_snapshots)
             : 0.0;
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 4);
  bench::header("Cache locality — shuffle strategy vs remote-cache hit rate",
                "extends paper §5.4 / Table 5 (locality of batch-level shuffling) "
                "and §7 (prefetching)");

  // ---- claim 1: batch-level shuffling hits the cache, global misses.
  core::DistConfig global_cfg = locality_config(core::DistMode::kBaselineDdp);
  global_cfg.epochs = epochs;
  const core::DistResult global_r = core::DistTrainer(global_cfg).run();

  core::DistConfig batch_cfg =
      locality_config(core::DistMode::kBaselineDdpBatchShuffle);
  batch_cfg.epochs = epochs;
  const core::DistResult batch_r = core::DistTrainer(batch_cfg).run();

  const double g_rate = hit_rate(global_r.store);
  const double b_rate = hit_rate(batch_r.store);
  std::printf("%-22s | %-10s | %-12s | %-12s | %s\n", "shuffle", "epochs",
              "remote", "cache hits", "hit rate");
  std::printf("%-22s | %-10d | %-12llu | %-12llu | %.1f%%\n", "global", epochs,
              static_cast<unsigned long long>(global_r.store.remote_snapshots),
              static_cast<unsigned long long>(global_r.store.cache_hits),
              100.0 * g_rate);
  std::printf("%-22s | %-10d | %-12llu | %-12llu | %.1f%%\n", "batch-level", epochs,
              static_cast<unsigned long long>(batch_r.store.remote_snapshots),
              static_cast<unsigned long long>(batch_r.store.cache_hits),
              100.0 * b_rate);
  bench::verdict(b_rate > 1.5 * g_rate && b_rate > 0.5,
                 "batch-level shuffling makes the bounded remote cache effective "
                 "(fixed batches re-hit from epoch 2 on) while global shuffling "
                 "keeps missing");

  // ---- claim 2: a byte budget of the same size behaves identically.
  core::DistConfig bytes_cfg = batch_cfg;
  bytes_cfg.store_cache_snapshots = 1 << 20;  // count bound slack
  bytes_cfg.store_cache_bytes =
      160 * 2 * bytes_cfg.spec.horizon * bytes_cfg.spec.nodes *
      bytes_cfg.spec.features * static_cast<std::int64_t>(sizeof(float));
  const core::DistResult bytes_r = core::DistTrainer(bytes_cfg).run();
  std::printf("bytes-bounded cache (same budget): hits %llu vs %llu, "
              "ledger %llu == %llu + %llu\n",
              static_cast<unsigned long long>(bytes_r.store.cache_hits),
              static_cast<unsigned long long>(batch_r.store.cache_hits),
              static_cast<unsigned long long>(bytes_r.store.remote_bytes),
              static_cast<unsigned long long>(bytes_r.store.bytes_copied),
              static_cast<unsigned long long>(bytes_r.store.cache_hit_bytes));
  bench::verdict(bytes_r.store.cache_hits == batch_r.store.cache_hits &&
                     bytes_r.store.remote_bytes ==
                         bytes_r.store.bytes_copied + bytes_r.store.cache_hit_bytes,
                 "a bytes-bounded cache with the equivalent budget reproduces the "
                 "snapshot-bounded behaviour and its ledger still decomposes into "
                 "real movement");

  // ---- claim 3: async prefetch hides fetch time, losses untouched.
  core::DistConfig sync_cfg = locality_config(core::DistMode::kBaselineDdp);
  sync_cfg.epochs = 2;
  sync_cfg.max_batches_per_epoch = 8;
  const core::DistResult sync_r = core::DistTrainer(sync_cfg).run();
  core::DistConfig pf_cfg = sync_cfg;
  pf_cfg.prefetch_depth = 1;
  const core::DistResult pf_r = core::DistTrainer(pf_cfg).run();
  std::printf("modeled fetch: total %.3fs | exposed without prefetch %.3fs | "
              "exposed with prefetch %.3fs (overlapped %.3fs)\n",
              sync_r.store.modeled_seconds, sync_r.modeled_fetch_seconds,
              pf_r.modeled_fetch_seconds, pf_r.store.overlapped_seconds);
  bool losses_identical = sync_r.curve.size() == pf_r.curve.size();
  for (std::size_t e = 0; losses_identical && e < sync_r.curve.size(); ++e) {
    losses_identical = sync_r.curve[e].train_mae == pf_r.curve[e].train_mae &&
                       sync_r.curve[e].val_mae == pf_r.curve[e].val_mae;
  }
  bench::verdict(losses_identical &&
                     pf_r.modeled_fetch_seconds < sync_r.modeled_fetch_seconds &&
                     pf_r.store.overlapped_seconds > 0.0,
                 "async prefetch overlaps modeled fetch time with compute "
                 "(strictly lower exposed seconds) while every per-epoch loss "
                 "stays bit-identical");

  // ---- claim 4: depth sweep — the tail actually drops with depth.
  // W=4, global shuffle (remote-heavy), with enough compute per batch
  // that each extra batch of lookahead visibly widens the window the
  // staging hides behind.  Consumer-paced announcements keep exactly
  // `depth` batches in flight ahead of consumption (stage-time
  // announcing used to collapse the whole window into the epoch-start
  // burst and saturate the sweep near depth 2), so exposed fetch
  // seconds are monotonically non-increasing in depth AND strictly
  // lower at depth 4 than depth 1, while the remote-cache hit rate
  // (schedule-aware eviction protects still-scheduled residents) does
  // not regress.
  core::DistConfig sweep_cfg = locality_config(core::DistMode::kBaselineDdp);
  sweep_cfg.epochs = 2;
  sweep_cfg.max_batches_per_epoch = 6;
  sweep_cfg.hidden_dim = 48;
  sweep_cfg.diffusion_steps = 2;
  const core::DistResult sweep_sync = core::DistTrainer(sweep_cfg).run();
  std::printf("\n%-8s | %-14s | %-14s | %-10s\n", "depth", "modeled fetch",
              "exposed fetch", "hit rate");
  std::printf("%-8s | %-14.3f | %-14.3f | %.1f%%\n", "sync",
              sweep_sync.store.modeled_seconds, sweep_sync.modeled_fetch_seconds,
              100.0 * hit_rate(sweep_sync.store));
  bool monotone = true, hits_ok = true, sweep_losses_identical = true;
  double prev_exposed = sweep_sync.modeled_fetch_seconds;
  double depth1_exposed = 0.0, depth4_exposed = 0.0, depth1_rate = 0.0;
  // A whisker of wall-clock tolerance between adjacent depths: the
  // split is measured against real compute windows, so two depths that
  // both hide (almost) everything can land within scheduling noise of
  // each other.
  const double tol = 1e-3 + 0.02 * sweep_sync.modeled_fetch_seconds;
  for (int depth : {1, 2, 4}) {
    core::DistConfig depth_cfg = sweep_cfg;
    depth_cfg.prefetch_depth = depth;
    const core::DistResult r = core::DistTrainer(depth_cfg).run();
    const double rate = hit_rate(r.store);
    std::printf("%-8d | %-14.3f | %-14.3f | %.1f%%\n", depth,
                r.store.modeled_seconds, r.modeled_fetch_seconds, 100.0 * rate);
    monotone = monotone && r.modeled_fetch_seconds <= prev_exposed + tol;
    prev_exposed = std::min(prev_exposed, r.modeled_fetch_seconds);
    if (depth == 1) {
      depth1_exposed = r.modeled_fetch_seconds;
      depth1_rate = rate;
    } else {
      hits_ok = hits_ok && rate + 0.02 >= depth1_rate;
    }
    if (depth == 4) depth4_exposed = r.modeled_fetch_seconds;
    for (std::size_t e = 0; e < sweep_sync.curve.size(); ++e) {
      sweep_losses_identical = sweep_losses_identical &&
                               sweep_sync.curve[e].train_mae == r.curve[e].train_mae &&
                               sweep_sync.curve[e].val_mae == r.curve[e].val_mae;
    }
  }
  bench::verdict(monotone && depth4_exposed < depth1_exposed && hits_ok &&
                     sweep_losses_identical,
                 "exposed fetch seconds are monotonically non-increasing in "
                 "prefetch depth at W=4 and strictly lower at depth 4 than "
                 "depth 1 (paced announcements keep the sweep a real sweep), "
                 "the cache hit rate does not regress, and every loss stays "
                 "bit-identical with the synchronous run");

  // ---- claim 5: ready-bucket overlap hides grad-sync time exactly.
  // W=4, index mode (zero data communication, so the gradient plane is
  // the whole comm story): firing per-bucket all-reduces under the
  // tail of backward strictly shrinks the exposed share of modeled
  // grad-sync time, and — because the overlapped path runs the same
  // rank-ordered deterministic tree per bucket — every per-epoch loss
  // stays bit-identical to the serial sync.
  core::DistConfig grad_cfg = locality_config(core::DistMode::kDistributedIndex);
  grad_cfg.epochs = 2;
  grad_cfg.max_batches_per_epoch = 6;
  grad_cfg.hidden_dim = 48;
  grad_cfg.diffusion_steps = 2;
  grad_cfg.grad_overlap = core::GradOverlap::kOff;
  const core::DistResult serial_r = core::DistTrainer(grad_cfg).run();
  grad_cfg.grad_overlap = core::GradOverlap::kStrict;
  const core::DistResult overlap_r = core::DistTrainer(grad_cfg).run();
  std::printf("\ngrad sync (modeled): serial exposed %.3fs | overlapped "
              "exposed %.3fs (hidden %.3fs)\n",
              serial_r.grad_sync_exposed_seconds,
              overlap_r.grad_sync_exposed_seconds,
              overlap_r.grad_sync_overlapped_seconds);
  bool grad_losses_identical = serial_r.curve.size() == overlap_r.curve.size();
  for (std::size_t e = 0; grad_losses_identical && e < serial_r.curve.size();
       ++e) {
    grad_losses_identical =
        serial_r.curve[e].train_mae == overlap_r.curve[e].train_mae &&
        serial_r.curve[e].val_mae == overlap_r.curve[e].val_mae;
  }
  bench::verdict(grad_losses_identical &&
                     serial_r.grad_sync_exposed_seconds > 0.0 &&
                     overlap_r.grad_sync_exposed_seconds <
                         serial_r.grad_sync_exposed_seconds &&
                     overlap_r.grad_sync_overlapped_seconds > 0.0,
                 "ready-bucket overlap strictly shrinks exposed grad-sync "
                 "seconds at W=4 while every per-epoch loss stays "
                 "bit-identical to the serial sync");
  return 0;
}
