// Table 6 (+ §5.5): A3T-GCN single-GPU — baseline vs index-batching
// on METR-LA: runtime, CPU memory, test MSE.
//
// Paper: baseline 1041.95 s / 2426.26 MB / 0.5436 MSE vs index
// 1050.80 s / 1232.62 MB / 0.5427 MSE — a 49.20% memory reduction at
// unchanged runtime and accuracy, demonstrating that index-batching
// generalizes beyond DCRNN.
#include <algorithm>

#include "bench_util.h"

using namespace pgti;

int main() {
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 12.0);
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 3);
  bench::header("Table 6 — A3T-GCN base vs index-batching (METR-LA)",
                "paper Table 6, scaled 1/" + std::to_string(static_cast<int>(scale)));

  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kMetrLa).scaled(scale);
  cfg.spec.horizon = 6;
  cfg.spec.batch_size = 8;
  cfg.model = core::ModelKind::kA3tgcn;
  cfg.epochs = epochs;
  cfg.hidden_dim = 16;
  cfg.max_batches_per_epoch = bench::env_int("PGTI_BENCH_BATCHES", 10);
  cfg.max_val_batches = 4;
  cfg.seed = 3;

  // Best-of-N runtimes: the runs are short at default scale, so a
  // single sample is at the mercy of the scheduler; min is the
  // standard noise-robust estimator and leaves memory/MSE untouched
  // (they are deterministic across repetitions).
  const int reps = bench::env_int("PGTI_BENCH_REPS", 3);
  cfg.mode = core::BatchingMode::kStandard;
  core::TrainResult base = core::Trainer(cfg).run();
  cfg.mode = core::BatchingMode::kIndex;
  core::TrainResult index = core::Trainer(cfg).run();
  double base_s = base.total_seconds(), index_s = index.total_seconds();
  for (int r = 1; r < reps; ++r) {
    cfg.mode = core::BatchingMode::kStandard;
    base_s = std::min(base_s, core::Trainer(cfg).run().total_seconds());
    cfg.mode = core::BatchingMode::kIndex;
    index_s = std::min(index_s, core::Trainer(cfg).run().total_seconds());
  }

  std::printf("%-10s | %-24s | %-24s | %-18s\n", "mode", "runtime (s)", "CPU memory",
              "test MSE (normalized)");
  std::printf("%-10s | ours %7.2f (1041.95 s) | %-10s (2426.26 MB) | %.4f (0.5436)\n",
              "baseline", base_s,
              bench::gb(static_cast<double>(base.peak_host_bytes)).c_str(),
              base.final_test_mse);
  std::printf("%-10s | ours %7.2f (1050.80 s) | %-10s (1232.62 MB) | %.4f (0.5427)\n",
              "index", index_s,
              bench::gb(static_cast<double>(index.peak_host_bytes)).c_str(),
              index.final_test_mse);

  const double mem_saved = 1.0 - static_cast<double>(index.peak_host_bytes) /
                                     static_cast<double>(base.peak_host_bytes);
  const double runtime_delta = std::abs(index_s - base_s) / base_s;
  std::printf("memory saved: %.2f%% (paper 49.20%%); runtime delta: %.1f%%\n",
              100.0 * mem_saved, 100.0 * runtime_delta);

  bench::verdict(mem_saved > 0.3, "index-batching cuts A3T-GCN memory (paper: 49.20%)");
  bench::verdict(index.final_test_mse == base.final_test_mse,
                 "test MSE is unchanged (identical batches)");
  bench::verdict(runtime_delta < 0.25, "runtime impact is small (paper: <1%)");
  return 0;
}
