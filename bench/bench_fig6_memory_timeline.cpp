// Fig. 6: single-GPU memory usage over the PeMS workflow — standard
// PGT batching OOMs during preprocessing; index-batching spikes during
// its one standardization pass then plateaus low; GPU-index-batching
// moves the plateau into device memory.
#include "bench_util.h"

using namespace pgti;

namespace {

void print_timeline(const char* label, MemorySpaceId space) {
  std::printf("%s\n", label);
  for (const auto& s : MemoryTracker::instance().timeline(space)) {
    std::printf("  %5.2f  %10s  %s\n", s.progress,
                bench::gb(static_cast<double>(s.bytes)).c_str(), s.label.c_str());
  }
}

}  // namespace

int main() {
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 40.0);
  // scale^2 for both shrunk dimensions, 2x for float32 vs float64.
  const auto cap = static_cast<std::size_t>(512e9 / (scale * scale) / 2.0);
  bench::header("Fig. 6 — PeMS single-GPU memory over time",
                "paper Fig. 6, scaled 1/" + std::to_string(static_cast<int>(scale)) +
                    ", node limit " + bench::gb(static_cast<double>(cap)));

  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPems).scaled(scale);
  cfg.spec.batch_size = 8;
  cfg.model = core::ModelKind::kPgtDcrnn;
  cfg.epochs = 1;
  cfg.hidden_dim = 8;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 16;
  cfg.max_val_batches = 2;
  cfg.record_timeline = true;

  auto& tracker = MemoryTracker::instance();
  const std::size_t baseline = tracker.current(kHostSpace);

  // Standard batching under the node cap: crashes in preprocessing.
  tracker.set_limit(kHostSpace, baseline + cap);
  cfg.mode = core::BatchingMode::kStandard;
  bool standard_oom = false;
  std::size_t standard_peak = 0;
  try {
    core::Trainer(cfg).run();
  } catch (const OutOfMemoryError&) {
    standard_oom = true;
    standard_peak = tracker.peak(kHostSpace) - baseline;
  }
  tracker.set_limit(kHostSpace, 0);
  std::printf("PGT (standard batching): %s at %s (paper: OOM above 512 GB)\n",
              standard_oom ? "OOM" : "completed",
              bench::gb(static_cast<double>(standard_peak)).c_str());

  cfg.mode = core::BatchingMode::kIndex;
  core::TrainResult index = core::Trainer(cfg).run();
  print_timeline("\nPGT-index-batching host timeline (paper plateau: 45.75 GB):",
                 kHostSpace);

  cfg.mode = core::BatchingMode::kGpuIndex;
  core::TrainResult gpu = core::Trainer(cfg).run();
  print_timeline("\nPGT-GPU-index-batching host timeline (paper: lower spike, "
                 "dataset on device):",
                 kHostSpace);

  std::printf("\npeaks: index host=%s dev=%s | gpu-index host=%s dev=%s\n",
              bench::gb(static_cast<double>(index.peak_host_bytes)).c_str(),
              bench::gb(static_cast<double>(index.peak_device_bytes)).c_str(),
              bench::gb(static_cast<double>(gpu.peak_host_bytes)).c_str(),
              bench::gb(static_cast<double>(gpu.peak_device_bytes)).c_str());

  bench::verdict(standard_oom, "standard batching exceeds the (scaled) 512 GB limit");
  bench::verdict(index.peak_host_bytes < cap / 4,
                 "index-batching stays far below the node limit");
  bench::verdict(gpu.peak_host_bytes < index.peak_host_bytes,
                 "GPU-index-batching lowers the host spike (paper: 45.84 -> 18.20 GB)");
  return 0;
}
