// Table 4: single-GPU PeMS training — index-batching vs
// GPU-index-batching: runtime, CPU memory, GPU memory.
//
// Paper: index 333.58 min / 45.84 GB CPU / 5.50 GB GPU;
//        GPU-index 290.65 min / 18.20 GB CPU / 18.60 GB GPU
// (12.87% faster by eliminating per-batch CPU->GPU transfers; CPU
// memory down 60.30%).  We measure the transfer ledger for real at
// simulator scale and project the full-scale transfer savings with the
// calibrated pageable-copy model.
#include "bench_util.h"

using namespace pgti;

int main() {
  const double scale = bench::env_double("PGTI_BENCH_SCALE", 40.0);
  bench::header("Table 4 — index vs GPU-index batching (PeMS)",
                "paper Table 4, scaled 1/" + std::to_string(static_cast<int>(scale)));

  core::TrainConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPems).scaled(scale);
  cfg.spec.batch_size = 8;
  cfg.model = core::ModelKind::kPgtDcrnn;
  cfg.epochs = 1;
  cfg.hidden_dim = 16;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = bench::env_int("PGTI_BENCH_BATCHES", 10);
  cfg.max_val_batches = 2;

  cfg.mode = core::BatchingMode::kIndex;
  core::TrainResult index = core::Trainer(cfg).run();
  cfg.mode = core::BatchingMode::kGpuIndex;
  core::TrainResult gpu = core::Trainer(cfg).run();

  std::printf("%-11s | %-26s | %-22s | %-22s | %-16s\n", "mode", "runtime+transfers (s)",
              "CPU resident", "GPU peak", "h2d transfers");
  std::printf("%-11s | ours %7.2f (paper 333.58m) | %-9s (45.84 GB) | %-9s (5.50 GB)  | %llu (%s)\n",
              "index", index.total_with_transfers(),
              bench::gb(static_cast<double>(index.resident_host_bytes)).c_str(),
              bench::gb(static_cast<double>(index.peak_device_bytes)).c_str(),
              static_cast<unsigned long long>(index.transfers.h2d_count),
              bench::gb(static_cast<double>(index.transfers.h2d_bytes)).c_str());
  std::printf("%-11s | ours %7.2f (paper 290.65m) | %-9s (18.20 GB) | %-9s (18.60 GB) | %llu (%s)\n",
              "GPU-index", gpu.total_with_transfers(),
              bench::gb(static_cast<double>(gpu.resident_host_bytes)).c_str(),
              bench::gb(static_cast<double>(gpu.peak_device_bytes)).c_str(),
              static_cast<unsigned long long>(gpu.transfers.h2d_count),
              bench::gb(static_cast<double>(gpu.transfers.h2d_bytes)).c_str());

  // Full-scale projection of the transfer gap: per-epoch staged bytes
  // at paper dimensions over the calibrated effective pageable-copy
  // path (3.5 GB/s + 5 ms per batch; see EXPERIMENTS.md).
  const auto full = data::spec_for(data::DatasetKind::kPems);
  const auto splits = data::split_ranges(full.num_snapshots());
  const double x_bytes = static_cast<double>(full.horizon) * full.nodes * full.features * 4;
  const double y_bytes = static_cast<double>(full.horizon) * full.nodes * 1 * 4;
  const double steps = static_cast<double>(splits.train_end) / full.batch_size;
  const double per_epoch_s =
      steps * ((x_bytes + y_bytes) * full.batch_size / 3.5e9 + 5e-3);
  const double projected_min = per_epoch_s * 30.0 / 60.0;
  std::printf("projected full-scale transfer cost removed by GPU-index: %.1f min over "
              "30 epochs (paper gap: 42.93 min, 12.87%%)\n",
              projected_min);

  bench::verdict(gpu.transfers.h2d_count < index.transfers.h2d_count / 4,
                 "GPU-index-batching consolidates transfers to one upfront copy");
  bench::verdict(gpu.modeled_transfer_seconds < index.modeled_transfer_seconds,
                 "eliminating per-batch transfers reduces workflow time");
  bench::verdict(gpu.resident_host_bytes < index.resident_host_bytes &&
                     gpu.peak_device_bytes > index.peak_device_bytes,
                 "the dataset moves from CPU memory to GPU memory (paper: "
                 "45.84->18.20 GB CPU, 5.50->18.60 GB GPU)");
  return 0;
}
