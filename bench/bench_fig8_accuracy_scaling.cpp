// Fig. 8 (+ §5.3.3): training/validation MAE as GPUs increase.
//
// Paper: optimal MAE degrades from 1.66 (1 GPU) to 2.23 (128 GPUs);
// follow-up attributes most of it to the larger global batch, and LR
// scaling recovers much of the loss.  Here worker counts 1..8 run as
// REAL thread-level DDP (bit-exact gradient averaging); the global
// batch grows with the worker count exactly as in the paper's setup.
#include "bench_util.h"

using namespace pgti;

namespace {

core::DistResult run_world(int world, bool scale_lr, int epochs) {
  core::DistConfig cfg;
  cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(24);
  cfg.spec.horizon = 6;
  // Strong scaling as in the paper: the DATASET is fixed; every
  // configuration consumes the full training range each epoch, so more
  // workers means fewer optimizer steps at a larger global batch.
  cfg.spec.entries = 768;
  cfg.spec.batch_size = 8;  // per worker; global batch = 8 * world
  cfg.mode = core::DistMode::kDistributedIndex;
  cfg.world = world;
  cfg.epochs = epochs;
  cfg.lr = 2e-3f;
  cfg.scale_lr = scale_lr;
  cfg.hidden_dim = 12;
  cfg.diffusion_steps = 1;
  cfg.max_batches_per_epoch = 0;  // no cap: whole shard every epoch
  cfg.max_val_batches = 4;
  cfg.seed = 5;
  return core::DistTrainer(cfg).run();
}

}  // namespace

int main() {
  const int epochs = bench::env_int("PGTI_BENCH_EPOCHS", 5);
  bench::header("Fig. 8 — accuracy vs GPU count (global-batch effect)",
                "paper Fig. 8 (paper MAE 1.66@1 -> 2.23@128; here real thread-DDP "
                "at 1/2/4/8 workers)");

  std::printf("%-6s %-12s %-14s %-12s\n", "GPUs", "global batch", "best val MAE",
              "final train MAE");
  std::vector<double> best;
  for (int w : {1, 2, 4, 8}) {
    core::DistResult r = run_world(w, /*scale_lr=*/false, epochs);
    best.push_back(r.best_val_mae);
    std::printf("%-6d %-12d %-14.4f %-12.4f\n", w, 8 * w, r.best_val_mae,
                r.curve.back().train_mae);
  }

  // §5.3.3 follow-up: LR scaling mitigates the large-batch penalty.
  core::DistResult plain8 = run_world(8, false, epochs);
  core::DistResult scaled8 = run_world(8, true, epochs);
  std::printf("\n8 workers with linear LR scaling: best val MAE %.4f (vs %.4f plain)\n",
              scaled8.best_val_mae, plain8.best_val_mae);

  const bool degrades = best.back() > best.front();
  bench::verdict(degrades,
                 "optimal MAE degrades as workers (and the global batch) grow "
                 "(paper: 1.66 -> 2.23)");
  bench::verdict(scaled8.best_val_mae < plain8.best_val_mae * 1.05,
                 "LR scaling recovers much of the large-batch penalty (§5.3.3)");
  bench::note("worker counts beyond 8 need the cluster; the driver (global batch "
              "size) is fully exercised at thread scale");
  return 0;
}
