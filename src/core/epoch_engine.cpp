#include "core/epoch_engine.h"

#include <algorithm>
#include <chrono>

#include "core/trainer.h"

namespace pgti::core {

BatchPipeline::BatchPipeline(data::DataLoader& loader, int prefetch_depth,
                             std::function<void()> on_batch)
    : loader_(&loader), on_batch_(std::move(on_batch)) {
  if (prefetch_depth > 0) prefetch_.emplace(loader, prefetch_depth);
}

void BatchPipeline::start_epoch(int epoch, std::int64_t max_batches) {
  if (prefetch_) {
    prefetch_->start_epoch(epoch, max_batches);
  } else {
    loader_->set_max_batches(max_batches);
    loader_->start_epoch(epoch);
  }
}

bool BatchPipeline::next(data::Batch& out) {
  const bool have = prefetch_ ? prefetch_->next(out) : loader_->next(out);
  // The delivery (prefetched or not) may have accumulated exposed
  // modeled fetch time at the provider; charge it on the consumer,
  // where the distributed trainer's cluster clock lives.
  if (have && on_batch_) on_batch_();
  return have;
}

EpochEngine::EpochEngine(nn::SeqModel& model, optim::Adam& opt)
    : EpochEngine(model, opt, Hooks()) {}

EpochEngine::EpochEngine(nn::SeqModel& model, optim::Adam& opt, Hooks hooks)
    : model_(&model), opt_(&opt), hooks_(std::move(hooks)) {}

void EpochEngine::account_staging(const data::Batch& batch, bool prefetched) {
  if (batch.modeled_staging_seconds <= 0.0) return;
  double exposed = batch.modeled_staging_seconds;
  if (prefetched) {
    // Mirrors DistStore's first-need classification: the wall window
    // between the worker staging (and uploading) the batch and the
    // consumer needing it is real compute the modeled transfer hid
    // behind; only the remainder stays on the critical path.
    const double window = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - batch.staged_at)
                              .count();
    exposed = std::max(0.0, batch.modeled_staging_seconds - window);
  }
  pcie_exposed_ += exposed;
  pcie_overlapped_ += batch.modeled_staging_seconds - exposed;
}

EpochEngine::EpochSums EpochEngine::train_epoch(BatchPipeline& pipe, int epoch,
                                                std::int64_t max_steps) {
  pipe.start_epoch(epoch, max_steps);
  EpochSums sums;
  data::Batch batch;
  auto& tracker = MemoryTracker::instance();
  while (max_steps < 0 || sums.batches < max_steps) {
    // The scope opens before batch delivery so synchronous batch
    // assembly recycles pool blocks too; it closes (and returns the
    // step's tape to the pool) before the loss leaves the iteration.
    runtime::ArenaScope scope(arena_);
    const std::uint64_t heap_before = tracker.heap_allocs_total();
    if (!pipe.next(batch)) break;
    account_staging(batch, pipe.prefetching());
    std::vector<Variable> outputs = model_->forward_seq(batch.x);
    Variable loss = seq_loss(outputs, batch.y);
    opt_->zero_grad();
    loss.backward(hooks_.grad_observer);
    if (hooks_.sync_gradients) hooks_.sync_gradients();
    opt_->step();
    allocs_last_step_ = tracker.heap_allocs_total() - heap_before;
    sums.sum += static_cast<double>(loss.value().item());
    ++sums.batches;
    if (hooks_.on_train_step) hooks_.on_train_step(epoch, sums.batches);
  }
  if (hooks_.on_epoch_end) hooks_.on_epoch_end(epoch, sums.batches);
  return sums;
}

EpochEngine::EpochSums EpochEngine::eval_epoch(BatchPipeline& pipe,
                                               std::int64_t max_batches,
                                               Metric metric) {
  pipe.start_epoch(0, max_batches);
  EpochSums sums;
  data::Batch batch;
  while (max_batches < 0 || sums.batches < max_batches) {
    runtime::ArenaScope scope(arena_);
    if (!pipe.next(batch)) break;
    account_staging(batch, pipe.prefetching());
    std::vector<Variable> outputs = model_->forward_seq(batch.x);
    sums.sum += metric == Metric::kMae ? seq_mae(outputs, batch.y)
                                       : seq_mse(outputs, batch.y);
    ++sums.batches;
  }
  return sums;
}

}  // namespace pgti::core
