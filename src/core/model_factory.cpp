#include "core/model_factory.h"

#include <stdexcept>

namespace pgti::core {

ModelBundle make_model(ModelKind kind, const data::DatasetSpec& spec,
                       const SensorNetwork& net, std::int64_t hidden_dim,
                       int diffusion_steps, int num_layers, std::uint64_t seed) {
  ModelBundle bundle;
  switch (kind) {
    case ModelKind::kPgtDcrnn: {
      bundle.supports = std::make_unique<nn::GraphSupports>(
          nn::GraphSupports::from(dual_random_walk_supports(net.adjacency)));
      nn::PgtDcrnnOptions opt;
      opt.num_nodes = spec.nodes;
      opt.input_dim = spec.features;
      opt.hidden_dim = hidden_dim;
      opt.output_dim = 1;
      opt.max_diffusion_steps = diffusion_steps;
      opt.seed = seed;
      bundle.model = std::make_unique<nn::PGTDCRNN>(opt, *bundle.supports);
      return bundle;
    }
    case ModelKind::kDcrnn: {
      bundle.supports = std::make_unique<nn::GraphSupports>(
          nn::GraphSupports::from(dual_random_walk_supports(net.adjacency)));
      nn::DcrnnOptions opt;
      opt.num_nodes = spec.nodes;
      opt.input_dim = spec.features;
      opt.hidden_dim = hidden_dim;
      opt.output_dim = 1;
      opt.horizon = spec.horizon;
      opt.num_layers = num_layers;
      opt.max_diffusion_steps = diffusion_steps;
      opt.seed = seed;
      bundle.model = std::make_unique<nn::DCRNN>(opt, *bundle.supports);
      return bundle;
    }
    case ModelKind::kA3tgcn: {
      std::vector<Csr> supports;
      supports.push_back(sym_norm_adjacency(net.adjacency));
      bundle.supports = std::make_unique<nn::GraphSupports>(
          nn::GraphSupports::from(std::move(supports)));
      nn::A3tgcnOptions opt;
      opt.num_nodes = spec.nodes;
      opt.input_dim = spec.features;
      opt.hidden_dim = hidden_dim;
      opt.attention_dim = std::max<std::int64_t>(8, hidden_dim / 2);
      opt.horizon = spec.horizon;
      opt.seed = seed;
      bundle.model = std::make_unique<nn::A3TGCN>(opt, *bundle.supports);
      return bundle;
    }
    case ModelKind::kStllm: {
      bundle.supports = std::make_unique<nn::GraphSupports>();  // unused
      nn::StllmOptions opt;
      opt.num_nodes = spec.nodes;
      opt.input_dim = spec.features;
      opt.input_steps = spec.horizon;
      opt.model_dim = hidden_dim;
      opt.ffn_dim = 2 * hidden_dim;
      opt.num_layers = num_layers;
      opt.horizon = spec.horizon;
      opt.seed = seed;
      bundle.model = std::make_unique<nn::STLLM>(opt);
      return bundle;
    }
  }
  throw std::invalid_argument("make_model: unknown model kind");
}

}  // namespace pgti::core
