// Multi-worker PGT-I workflows (paper §4.2, §5.3, §5.4).
//
// DistTrainer runs W worker threads through a full DDP training loop
// with REAL collectives (bit-exact gradient averaging across replicas)
// and a real per-strategy data plane:
//
//  * kDistributedIndex   — every worker builds its own full
//    IndexDataset copy (memory grows with W, as the paper reports) and
//    samples a disjoint chunk of the same global permutation; zero
//    data communication.
//  * kBaselineDdp        — the materialized StandardDataset lives in a
//    partitioned DistStore; every batch's remote snapshots are
//    physically copied through a bounded per-rank LRU cache
//    (Dask-style batch-consolidated requests) and the fetch ledger is
//    asserted against the bytes that actually moved.
//  * kGeneralizedIndex   — raw entries are partitioned (plus the
//    2*horizon-1 boundary overlap); batch-level shuffling keeps every
//    access local (paper §5.4).
//  * kBaselineDdpBatchShuffle — the baseline with batch-level shuffle
//    (paper Fig. 9's DDP bars).
//
// All four strategies feed the DataLoader through the
// data::SnapshotProvider seam (snapshot_provider.h), so the index and
// baseline data planes are interchangeable behind it.
//
// Network/PCIe time is modeled (NetworkModel); accuracy results are
// real computation.  Runtime curves at paper scale come from
// dist::ClusterModel, calibrated against these functional runs.
#pragma once

#include "core/config.h"
#include "core/metrics.h"

namespace pgti::core {

class DistTrainer {
 public:
  explicit DistTrainer(DistConfig config) : cfg_(std::move(config)) {}

  /// In-process run: spawns a dist::Cluster of cfg.world thread-backed
  /// ranks and drives the full job.
  DistResult run();

  /// One rank of a multi-process run: the caller owns the transport
  /// (e.g. a SocketTransport mesh across forked rank processes — see
  /// examples/socket_ddp.cpp) and passes this rank's Communicator;
  /// comm.world() must equal cfg.world.  Every process rebuilds the
  /// synthetic raw signal deterministically from cfg.seed, so the data
  /// plane needs no shared memory; the store-backed baseline modes
  /// (kBaselineDdp*) require the in-process cluster and throw here.
  /// Losses are byte-identical to run(): the collectives are the same
  /// algorithm layer, only the transport differs (DESIGN.md §15).
  /// Rank 0's result carries the curve/stats; other ranks return a
  /// skeleton.
  DistResult run_rank(dist::Communicator& comm);

  const DistConfig& config() const noexcept { return cfg_; }

 private:
  DistConfig cfg_;
};

}  // namespace pgti::core
