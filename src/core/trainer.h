// Single-worker PGT-I workflow: preprocess -> train -> validate.
//
// One Trainer run reproduces a cell of the paper's single-GPU
// experiments: it generates the (synthetic) raw signal, preprocesses
// it under the configured BatchingMode, trains the configured model,
// and reports runtime, convergence, peak memory per space, and the
// PCIe transfer ledger.  The index/standard modes differ ONLY in the
// dataset representation — given the same seed they consume identical
// batches, which is the paper's "identical accuracy" property and is
// asserted in tests/trainer_test.cpp.
#pragma once

#include "core/config.h"
#include "core/metrics.h"
#include "core/model_factory.h"
#include "data/synthetic.h"

namespace pgti::core {

/// Contiguous target slice for prediction step `t`: y is
/// [B, horizon, N, 1] and every sequence metric compares output t
/// against this view.  The single step-slicing helper shared by
/// seq_loss/seq_mae/seq_mse.
Tensor step_target(const Tensor& y, std::size_t t);

/// Mean of the per-step MAE losses of a forward pass (the training
/// objective; normalized units).
Variable seq_loss(const std::vector<Variable>& outputs, const Tensor& y);

/// MAE of a forward pass in normalized units (no tape needed).
double seq_mae(const std::vector<Variable>& outputs, const Tensor& y);

/// MSE of a forward pass in normalized units.
double seq_mse(const std::vector<Variable>& outputs, const Tensor& y);

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : cfg_(std::move(config)) {}

  /// Runs the full workflow.  Throws OutOfMemoryError when a memory
  /// space limit is exceeded (paper Fig. 2's crash path).
  TrainResult run();

  const TrainConfig& config() const noexcept { return cfg_; }

 private:
  TrainConfig cfg_;
};

}  // namespace pgti::core
