// PGT-I umbrella header: the public API of the library.
//
// Quickstart:
//
//   #include "core/pgt_i.h"
//   using namespace pgti;
//
//   core::TrainConfig cfg;
//   cfg.spec = data::spec_for(data::DatasetKind::kPemsBay).scaled(64);
//   cfg.mode = core::BatchingMode::kIndex;   // the paper's contribution
//   cfg.epochs = 5;
//   core::TrainResult r = core::Trainer(cfg).run();
//
// See examples/ for runnable programs and DESIGN.md for the module map.
#pragma once

#include "core/config.h"
#include "core/dist_trainer.h"
#include "core/evaluation.h"
#include "core/metrics.h"
#include "core/model_factory.h"
#include "core/trainer.h"
#include "data/dataloader.h"
#include "data/dataset_spec.h"
#include "data/index_dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "dist/cluster_model.h"
#include "dist/comm.h"
#include "dist/ddp.h"
#include "dist/dist_store.h"
