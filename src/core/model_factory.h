// Builds the model + graph supports for a workflow configuration.
#pragma once

#include <memory>

#include "core/config.h"
#include "graph/spatial.h"
#include "nn/a3tgcn.h"
#include "nn/dcrnn.h"
#include "nn/stllm.h"

namespace pgti::core {

/// A model together with the graph supports it references (the
/// supports must outlive the model, so they travel together).
struct ModelBundle {
  std::unique_ptr<nn::GraphSupports> supports;
  std::unique_ptr<nn::SeqModel> model;
};

/// Constructs the configured model for `spec`'s graph.  Deterministic
/// in `seed`: two bundles built with identical arguments hold
/// bit-identical parameters (DDP replicas rely on this).
ModelBundle make_model(ModelKind kind, const data::DatasetSpec& spec,
                       const SensorNetwork& net, std::int64_t hidden_dim,
                       int diffusion_steps, int num_layers, std::uint64_t seed);

}  // namespace pgti::core
