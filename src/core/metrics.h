// Experiment result records shared by trainers, benches, and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.h"
#include "dist/comm.h"
#include "dist/dist_store.h"

namespace pgti::core {

struct EpochMetrics {
  int epoch = 0;
  double train_mae = 0.0;  ///< original units (scaler-inverse applied)
  double val_mae = 0.0;
  double wall_seconds = 0.0;
};

/// Single-worker workflow outcome.
struct TrainResult {
  std::vector<EpochMetrics> curve;
  double preprocess_seconds = 0.0;
  double train_seconds = 0.0;  ///< measured compute wall time
  double modeled_transfer_seconds = 0.0;  ///< PCIe model (device runs)
  /// Share of modeled_transfer_seconds still on the critical path
  /// after prefetch overlap: equal to modeled_transfer_seconds at
  /// prefetch_depth = 0; with a prefetch pipeline, each staged batch's
  /// upload hides behind the wall window between its staging and its
  /// consumption, and only the remainder is exposed.
  double exposed_transfer_seconds = 0.0;
  double best_val_mae = 0.0;
  std::size_t peak_host_bytes = 0;
  std::size_t peak_device_bytes = 0;
  /// Resident host bytes once preprocessing finished (the plateau the
  /// paper's Fig. 2 curves settle at; excludes the transient stack
  /// spike shared by all standard-pipeline variants).
  std::size_t resident_host_bytes = 0;
  TransferStats transfers;  ///< h2d/d2h ledger
  std::int64_t model_parameters = 0;
  std::int64_t train_samples = 0;
  double final_test_mse = 0.0;  ///< populated when a test pass runs
  /// Tracker-charged heap allocations during the last train step.
  /// With the tensor arena enabled (default) this is 0 once the
  /// first-step planning pass has populated the pool (DESIGN.md §16).
  std::uint64_t allocs_last_step = 0;

  double total_seconds() const { return preprocess_seconds + train_seconds; }
  /// Workflow time with modeled interconnect time added (the quantity
  /// compared across batching modes in Table 4).
  double total_with_transfers() const {
    return total_seconds() + modeled_transfer_seconds;
  }
};

/// Multi-worker workflow outcome (rank-0 view; metrics are globally
/// all-reduced).
struct DistResult {
  std::vector<EpochMetrics> curve;
  double preprocess_seconds = 0.0;
  double train_wall_seconds = 0.0;       ///< measured (oversubscribed threads)
  double modeled_allreduce_seconds = 0.0;
  /// Modeled fetch seconds the cluster was actually charged: the
  /// *exposed* share (store.exposed_seconds).  Without prefetch this
  /// equals store.modeled_seconds; with prefetch the overlapped share
  /// (store.overlapped_seconds) was hidden behind compute.
  double modeled_fetch_seconds = 0.0;
  /// Modeled gradient-sync seconds hidden under backward's tail /
  /// the next step's compute (rank 0's view; zero when grad_overlap
  /// is off).
  double grad_sync_overlapped_seconds = 0.0;
  /// Modeled gradient-sync seconds the training loop waited for.
  /// With grad_overlap off this is the full per-step bucket cost;
  /// with overlap on it is strictly lower whenever the network model
  /// charges a nonzero all-reduce cost (world > 1).
  double grad_sync_exposed_seconds = 0.0;
  double best_val_mae = 0.0;
  std::size_t peak_host_bytes = 0;
  dist::CommStats comm;
  dist::StoreStats store;
  std::int64_t model_parameters = 0;
  int world = 1;
  /// Rank 0's tracker-charged heap allocations during its last train
  /// step (process-wide counter delta, so concurrent ranks can bleed
  /// into each other's windows; converges to 0 with the arena enabled
  /// once every rank's pool is warm).
  std::uint64_t allocs_last_step = 0;
};

}  // namespace pgti::core
