#include "core/dist_trainer.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/epoch_engine.h"
#include "core/trainer.h"
#include "data/snapshot_provider.h"
#include "dist/ddp.h"
#include "dist/dist_store.h"
#include "dist/overlap.h"
#include "optim/optim.h"
#include "runtime/timer.h"

namespace pgti::core {
namespace {

data::ShuffleMode train_shuffle_for(DistMode mode) {
  switch (mode) {
    case DistMode::kDistributedIndex:
    case DistMode::kBaselineDdp:
      return data::ShuffleMode::kGlobal;
    case DistMode::kGeneralizedIndex:
    case DistMode::kBaselineDdpBatchShuffle:
      return data::ShuffleMode::kBatchLevel;
  }
  return data::ShuffleMode::kGlobal;
}

bool uses_store(DistMode mode) {
  return mode == DistMode::kBaselineDdp || mode == DistMode::kBaselineDdpBatchShuffle;
}

/// Everything one rank needs that is independent of which rank it is.
/// In-process, run() builds this once and all W threads share it; in a
/// multi-process run every rank process rebuilds an identical copy
/// deterministically from the config (same seed, same synthetic
/// signal), which is why no shared memory is required.
struct RankShared {
  const DistConfig& cfg;
  const data::DatasetSpec& spec;
  const SensorNetwork& net;
  const Tensor& raw;
  const data::SplitRanges& splits;
  dist::DistStore* store;  ///< null for the index strategies
  const data::StandardScaler& global_scaler;
};

/// Where one rank deposits results; rank 0 is the writer everywhere.
struct RankSinks {
  std::vector<EpochMetrics>* curve;
  double* local_pre_seconds_rank0;
  DistResult* result;
};

/// The per-rank training body, transport-agnostic: everything flows
/// through the Communicator — collectives, the NetworkModel, and
/// modeled-time charging (comm.charge_seconds hits the shared
/// CommContext, the same clock Cluster::charge_seconds feeds).
void rank_main(dist::Communicator& comm, const RankShared& sh,
               const RankSinks& out) {
  const DistConfig& cfg = sh.cfg;
  const data::DatasetSpec& spec = sh.spec;
  const data::SplitRanges& splits = sh.splits;
  const Tensor& raw = sh.raw;
  dist::DistStore* store = sh.store;
  const int rank = comm.rank();
  const int world = comm.world();

  // ---- local data plane -------------------------------------------
  // Both training modes flow through the SnapshotProvider seam: the
  // index family serves rank-local IndexDatasets, the baseline serves
  // the partitioned DistStore; the DataLoader cannot tell them apart.
  WallTimer local_pre;
  std::optional<data::IndexDataset> local_index;       // dist-index: full copy
  std::optional<data::IndexDataset> part_train;        // generalized
  std::optional<data::IndexDataset> part_val;          // generalized
  std::optional<data::IndexProvider> train_index_provider;
  std::optional<data::IndexProvider> val_index_provider;
  data::SnapshotProvider* train_provider = nullptr;
  data::SnapshotProvider* val_provider = nullptr;
  std::int64_t train_lo = splits.train_begin, train_hi = splits.train_end;
  std::int64_t val_lo = splits.val_begin, val_hi = splits.val_end;
  data::SamplerOptions train_sampler{train_shuffle_for(cfg.mode), rank, world,
                                     cfg.seed, spec.batch_size};
  data::SamplerOptions val_sampler{data::ShuffleMode::kNone, rank, world, cfg.seed,
                                   spec.batch_size};

  switch (cfg.mode) {
    case DistMode::kDistributedIndex: {
      local_index.emplace(raw, spec);  // full local copy per worker
      train_index_provider.emplace(*local_index);
      val_index_provider.emplace(*local_index);
      train_provider = &*train_index_provider;
      val_provider = &*val_index_provider;
      break;
    }
    case DistMode::kBaselineDdp:
    case DistMode::kBaselineDdpBatchShuffle: {
      train_provider = store;
      val_provider = store;
      break;
    }
    case DistMode::kGeneralizedIndex: {
      // Contiguous train partition (plus window overlap) owned locally.
      const std::int64_t n_train = splits.train_end - splits.train_begin;
      const std::int64_t chunk = (n_train + world - 1) / world;
      train_lo = std::min(splits.train_begin + chunk * rank, splits.train_end);
      train_hi = std::min(train_lo + chunk, splits.train_end);
      const std::int64_t entry_lo = train_lo;
      const std::int64_t entry_len =
          std::min(spec.entries, train_hi - 1 + 2 * spec.horizon) - entry_lo;
      part_train.emplace(raw.slice(0, entry_lo, entry_len).clone(), spec, entry_lo,
                         sh.global_scaler, train_lo, train_hi);
      // Validation shard.
      const std::int64_t n_val = splits.val_end - splits.val_begin;
      const std::int64_t vchunk = (n_val + world - 1) / world;
      val_lo = std::min(splits.val_begin + vchunk * rank, splits.val_end);
      val_hi = std::min(val_lo + vchunk, splits.val_end);
      const std::int64_t ventry_lo = val_lo;
      const std::int64_t ventry_len =
          std::min(spec.entries, val_hi - 1 + 2 * spec.horizon) - ventry_lo;
      part_val.emplace(raw.slice(0, ventry_lo, std::max<std::int64_t>(ventry_len, 0))
                           .clone(),
                       spec, ventry_lo, sh.global_scaler, val_lo, val_hi);
      train_index_provider.emplace(*part_train);
      val_index_provider.emplace(*part_val);
      train_provider = &*train_index_provider;
      val_provider = &*val_index_provider;
      // Partitioned data means each worker samples only its own
      // range; the loader sees world=1 over LOCAL snapshot ids
      // (IndexDataset::get maps them back to global windows).
      train_sampler.rank = 0;
      train_sampler.world = 1;
      val_sampler.rank = 0;
      val_sampler.world = 1;
      train_lo = 0;
      train_hi = part_train->num_snapshots();
      val_lo = 0;
      val_hi = part_val->num_snapshots();
      break;
    }
  }
  data::RankSource train_source(*train_provider, rank);
  data::RankSource val_source(*val_provider, rank);
  if (rank == 0) *out.local_pre_seconds_rank0 = local_pre.seconds();

  // ---- model replica -------------------------------------------------
  ModelBundle bundle = make_model(cfg.model, spec, sh.net, cfg.hidden_dim,
                                  cfg.diffusion_steps, /*num_layers=*/2, cfg.seed);
  std::vector<Variable> params = bundle.model->parameters();
  dist::broadcast_parameters(comm, params, /*root=*/0);
  if (rank == 0) out.result->model_parameters = bundle.model->parameter_count();
  optim::Adam::Options adam_opt;
  adam_opt.lr = cfg.lr;
  optim::Adam opt(params, adam_opt);
  optim::LinearScalingSchedule schedule(cfg.lr, world, cfg.warmup_epochs);

  // Gradient plane: serial bucketed averaging, or ready-bucket
  // overlap where backward itself launches each bucket's all-reduce
  // on a per-rank comm thread (DESIGN.md §13).  Both share the same
  // bucket partition and the same deterministic tree, so kStrict is
  // bit-identical to kOff.
  std::optional<dist::GradBucket> bucket;
  std::optional<dist::OverlappedGradBucket> obucket;
  double serial_sync_seconds = 0.0;  // off-mode exposed accumulation
  if (cfg.grad_overlap == GradOverlap::kOff) {
    bucket.emplace(params);
  } else {
    obucket.emplace(comm, params,
                    cfg.grad_overlap == GradOverlap::kStale1
                        ? dist::OverlappedGradBucket::Mode::kStale1
                        : dist::OverlappedGradBucket::Mode::kStrict,
                    comm.network());
  }

  // ---- the shared pipeline (DESIGN.md §12) -----------------------------
  // Each rank drives the same EpochEngine the single-process Trainer
  // uses: loaders feed BatchPipelines (depth-N PrefetchLoader rings
  // when prefetch_depth > 0), the per-batch hook charges the cluster
  // the *exposed* share of modeled fetch time the provider
  // accumulated staging the batch, and the gradient hook runs the
  // DDP all-reduce between backward and step.  The production cap
  // passed at start_epoch keeps train/val workers of a rank from
  // announcing concurrently.
  data::LoaderOptions train_opt;
  train_opt.batch_size = spec.batch_size;
  train_opt.sampler = train_sampler;
  train_opt.drop_last = true;
  train_opt.prefetch_lookahead = cfg.prefetch_depth;
  data::DataLoader train_loader(train_source, train_opt, train_lo, train_hi);

  data::LoaderOptions val_opt;
  val_opt.batch_size = spec.batch_size;
  val_opt.sampler = val_sampler;
  val_opt.drop_last = false;
  val_opt.prefetch_lookahead = cfg.prefetch_depth;
  data::DataLoader val_loader(val_source, val_opt, val_lo, val_hi);

  BatchPipeline train_pipe(train_loader, cfg.prefetch_depth, [&] {
    train_provider->notify_batch_delivered(rank);
    comm.charge_seconds(train_provider->drain_modeled_seconds(rank));
  });
  BatchPipeline val_pipe(val_loader, cfg.prefetch_depth, [&] {
    val_provider->notify_batch_delivered(rank);
    comm.charge_seconds(val_provider->drain_modeled_seconds(rank));
  });
  EpochEngine::Hooks hooks;
  if (obucket) {
    hooks.grad_observer = &*obucket;
    hooks.sync_gradients = [&] { obucket->drain(); };
  } else {
    // Serial path: the whole bucket sweep sits on the critical path,
    // so every step exposes its full modeled sync cost.
    const double step_sync = bucket->modeled_sync_seconds(comm.network(), world);
    hooks.sync_gradients = [&, step_sync] {
      bucket->allreduce_average(comm, params);
      serial_sync_seconds += step_sync;
    };
  }
  EpochEngine engine(*bundle.model, opt, hooks);

  // Every rank must issue the SAME number of gradient all-reduces per
  // epoch or the collective deadlocks; ranks can own unequal shards
  // (ceil-chunking, partitioned mode), so synchronize on the global
  // minimum step count — the same contract PyTorch's
  // DistributedSampler enforces by padding.
  std::int64_t steps_per_epoch = train_loader.batches_per_epoch();
  if (cfg.max_batches_per_epoch > 0) {
    steps_per_epoch = std::min(steps_per_epoch, cfg.max_batches_per_epoch);
  }
  for (double other : comm.allgather(static_cast<double>(steps_per_epoch))) {
    steps_per_epoch = std::min(steps_per_epoch, static_cast<std::int64_t>(other));
  }
  const std::int64_t val_cap = cfg.max_val_batches > 0 ? cfg.max_val_batches : -1;

  // ---- training --------------------------------------------------------
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.scale_lr) opt.set_lr(schedule.lr_for_epoch(epoch));
    comm.barrier();
    WallTimer epoch_timer;
    const EpochEngine::EpochSums train =
        engine.train_epoch(train_pipe, epoch, steps_per_epoch);

    // Validation: each rank scores its shard; sums are all-reduced
    // ("AllReduce operations to calculate validation accuracy", §5.3.1).
    const EpochEngine::EpochSums val =
        engine.eval_epoch(val_pipe, val_cap, EpochEngine::Metric::kMae);

    // The comm thread must be quiescent before the main thread
    // enters collectives of its own (one collective thread per rank
    // at a time).  In stale mode the final step's reduces just ran
    // under eval compute; the still-unapplied results carry across
    // the epoch boundary.
    if (obucket) obucket->flush();

    const double g_train_sum = comm.allreduce_scalar_sum(train.sum);
    const double g_train_cnt =
        comm.allreduce_scalar_sum(static_cast<double>(train.batches));
    const double g_val_sum = comm.allreduce_scalar_sum(val.sum);
    const double g_val_cnt =
        comm.allreduce_scalar_sum(static_cast<double>(val.batches));

    if (rank == 0) {
      const double sigma = train_source.scaler().stddev;
      EpochMetrics em;
      em.epoch = epoch;
      em.train_mae = g_train_cnt > 0 ? g_train_sum / g_train_cnt * sigma : 0.0;
      em.val_mae = g_val_cnt > 0 ? g_val_sum / g_val_cnt * sigma : 0.0;
      em.wall_seconds = epoch_timer.seconds();
      (*out.curve)[static_cast<std::size_t>(epoch)] = em;
    }
  }
  // Close out the gradient plane: any completed-but-unapplied stale
  // buckets never gated a step, so they classify as fully overlapped
  // (mirroring abandon_prefetches for the data plane).
  if (obucket) obucket->finish();
  if (rank == 0) {
    if (obucket) {
      out.result->grad_sync_overlapped_seconds = obucket->overlapped_seconds();
      out.result->grad_sync_exposed_seconds = obucket->exposed_seconds();
    } else {
      out.result->grad_sync_exposed_seconds = serial_sync_seconds;
    }
    out.result->allocs_last_step = engine.allocs_last_step();
  }
  comm.barrier();
}

}  // namespace

DistResult DistTrainer::run() {
  DistResult result;
  result.world = cfg_.world;
  auto& tracker = MemoryTracker::instance();

  const data::DatasetSpec& spec = cfg_.spec;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, cfg_.seed);

  tracker.reset_peak(kHostSpace);

  dist::Cluster cluster(cfg_.world);
  const std::int64_t s = spec.num_snapshots();
  const data::SplitRanges splits = data::split_ranges(s);

  // Shared pieces, built once (Dask would distribute them; memory-wise
  // this favours the baseline, which the paper also observes at high
  // worker counts).
  WallTimer pre_timer;
  std::optional<dist::DistStore> store;
  data::StandardScaler global_scaler;
  if (uses_store(cfg_.mode)) {
    // The baseline's data plane is a real partitioned store: the
    // materialized snapshots live in the store, each rank owns a
    // contiguous shard, and remote batches move actual bytes through a
    // bounded per-rank cache.  The store owns its cache defaults
    // (store_cache_snapshots < 0 resolves inside it) and, with
    // prefetch_depth > 0, stages announced batches on per-rank
    // background threads so only the exposed share of modeled fetch
    // time is charged.
    store.emplace(data::StandardDataset(raw, spec), cfg_.world, cluster.network(),
                  /*consolidate_requests=*/true, cfg_.store_cache_snapshots,
                  cfg_.store_cache_bytes,
                  /*async_prefetch=*/cfg_.prefetch_depth > 0);
    // Prefetch workers fetch up to `depth` batches ahead of compute;
    // the overlap split must be classified when batches reach the
    // consumer (the per-batch pipeline hook), not when the worker
    // assembles them.
    if (cfg_.prefetch_depth > 0) store->set_delivery_driven_classification(true);
  } else if (cfg_.mode == DistMode::kGeneralizedIndex) {
    Tensor stage1 = data::add_time_feature(raw, spec, kHostSpace);
    global_scaler = data::fit_scaler(stage1, spec);
  }
  const double shared_pre_seconds = pre_timer.seconds();

  // Per-epoch aggregates written by rank 0.
  std::vector<EpochMetrics> curve(static_cast<std::size_t>(cfg_.epochs));
  double local_pre_seconds_rank0 = 0.0;

  const RankShared shared{cfg_,    spec,
                          net,     raw,
                          splits,  store ? &*store : nullptr,
                          global_scaler};
  const RankSinks sinks{&curve, &local_pre_seconds_rank0, &result};
  cluster.run([&](dist::Communicator& comm) { rank_main(comm, shared, sinks); });

  result.curve = std::move(curve);
  result.preprocess_seconds = shared_pre_seconds + local_pre_seconds_rank0;
  result.best_val_mae = 1e30;
  result.train_wall_seconds = 0.0;
  for (const EpochMetrics& em : result.curve) {
    result.train_wall_seconds += em.wall_seconds;
    if (em.val_mae > 0.0) result.best_val_mae = std::min(result.best_val_mae, em.val_mae);
  }
  result.peak_host_bytes = tracker.peak(kHostSpace);
  result.comm = cluster.stats();
  if (store) {
    // Close out the prefetch pipeline: lookahead may have announced
    // batches a truncated epoch never consumed (fully overlapped by
    // definition — nobody waited), and classification since the last
    // in-loop drain still owes the cluster its exposed share.
    for (int r = 0; r < cfg_.world; ++r) {
      store->abandon_prefetches(r);
      cluster.charge_seconds(store->drain_modeled_seconds(r));
    }
    result.store = store->stats();
    result.modeled_fetch_seconds = result.store.exposed_seconds;
    // The fetch ledger is now backed by real movement: every modeled
    // remote byte must have been physically copied or absorbed by the
    // bounded per-rank cache.  A mismatch means the model and the
    // byte-moving store disagree — fail loudly rather than report
    // fiction.
    if (result.store.remote_bytes !=
        result.store.bytes_copied + result.store.cache_hit_bytes) {
      throw std::logic_error(
          "DistTrainer: DistStore modeled remote bytes (" +
          std::to_string(result.store.remote_bytes) +
          ") != bytes physically copied (" +
          std::to_string(result.store.bytes_copied) + ") + cache-absorbed (" +
          std::to_string(result.store.cache_hit_bytes) + ")");
    }
  }
  result.modeled_allreduce_seconds =
      cluster.modeled_comm_seconds() - result.modeled_fetch_seconds;
  return result;
}

DistResult DistTrainer::run_rank(dist::Communicator& comm) {
  if (uses_store(cfg_.mode)) {
    throw std::invalid_argument(
        "DistTrainer::run_rank: the store-backed baseline strategies "
        "(kBaselineDdp*) share one DistStore across ranks and require the "
        "in-process cluster (run()); use an index strategy for "
        "multi-process runs");
  }
  if (comm.world() != cfg_.world) {
    throw std::invalid_argument(
        "DistTrainer::run_rank: comm.world() != config world");
  }

  DistResult result;
  result.world = cfg_.world;
  auto& tracker = MemoryTracker::instance();

  // Deterministic rebuild: same spec + seed => bit-identical raw
  // signal, splits, and scaler in every rank process.
  const data::DatasetSpec& spec = cfg_.spec;
  SensorNetwork net = data::network_for(spec);
  Tensor raw = data::generate_signal(spec, net, cfg_.seed);

  tracker.reset_peak(kHostSpace);

  const data::SplitRanges splits = data::split_ranges(spec.num_snapshots());

  WallTimer pre_timer;
  data::StandardScaler global_scaler;
  if (cfg_.mode == DistMode::kGeneralizedIndex) {
    Tensor stage1 = data::add_time_feature(raw, spec, kHostSpace);
    global_scaler = data::fit_scaler(stage1, spec);
  }
  const double shared_pre_seconds = pre_timer.seconds();

  std::vector<EpochMetrics> curve(static_cast<std::size_t>(cfg_.epochs));
  double local_pre_seconds_rank0 = 0.0;

  const RankShared shared{cfg_, spec, net, raw, splits, nullptr, global_scaler};
  const RankSinks sinks{&curve, &local_pre_seconds_rank0, &result};
  rank_main(comm, shared, sinks);

  result.curve = std::move(curve);
  result.preprocess_seconds = shared_pre_seconds + local_pre_seconds_rank0;
  result.best_val_mae = 1e30;
  result.train_wall_seconds = 0.0;
  for (const EpochMetrics& em : result.curve) {
    result.train_wall_seconds += em.wall_seconds;
    if (em.val_mae > 0.0) result.best_val_mae = std::min(result.best_val_mae, em.val_mae);
  }
  result.peak_host_bytes = tracker.peak(kHostSpace);
  // Rank 0 charges all collective stats/modeled time (comm.h), so its
  // context's ledger is the job-level view a DistResult reports; other
  // ranks see zeros here, matching the "rank 0 writes" convention.
  result.comm = comm.context().stats();
  result.modeled_allreduce_seconds = comm.context().modeled_seconds();
  return result;
}

}  // namespace pgti::core
