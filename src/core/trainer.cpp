#include "core/trainer.h"

#include <memory>
#include <optional>

#include "optim/optim.h"
#include "runtime/timer.h"
#include "tensor/tensor_ops.h"

namespace pgti::core {

Variable seq_loss(const std::vector<Variable>& outputs, const Tensor& y) {
  Variable total;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    const Tensor yt = y.select(1, static_cast<std::int64_t>(t)).contiguous();
    Variable step = ag::mae_loss(outputs[t], yt);
    total = t == 0 ? step : ag::add(total, step);
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(outputs.size()));
}

double seq_mae(const std::vector<Variable>& outputs, const Tensor& y) {
  double acc = 0.0;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    acc += ops::mae(outputs[t].value(), y.select(1, static_cast<std::int64_t>(t)).contiguous());
  }
  return acc / static_cast<double>(outputs.size());
}

double seq_mse(const std::vector<Variable>& outputs, const Tensor& y) {
  double acc = 0.0;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    acc += ops::mse(outputs[t].value(), y.select(1, static_cast<std::int64_t>(t)).contiguous());
  }
  return acc / static_cast<double>(outputs.size());
}

TrainResult Trainer::run() {
  TrainResult result;
  auto& tracker = MemoryTracker::instance();
  SimDevice* device = cfg_.use_device ? &DeviceManager::instance().gpu(cfg_.device_index)
                                      : nullptr;
  if (device) device->reset_stats();

  const data::DatasetSpec& spec = cfg_.spec;
  SensorNetwork net = data::network_for(spec);
  std::optional<Tensor> raw = data::generate_signal(spec, net, cfg_.seed);

  tracker.reset_peak(kHostSpace);
  if (device) tracker.reset_peak(device->space());
  const bool timeline = cfg_.record_timeline;
  if (timeline) {
    tracker.clear_timeline(kHostSpace);
    if (device) tracker.clear_timeline(device->space());
    tracker.sample(kHostSpace, 0.0, "start");
  }

  // --- preprocessing ---------------------------------------------------
  WallTimer pre_timer;
  std::optional<data::StandardDataset> standard_ds;
  std::optional<data::PaddedStandardDataset> padded_ds;
  std::optional<data::IndexDataset> index_ds;
  std::unique_ptr<data::SnapshotSource> source;
  switch (cfg_.mode) {
    case BatchingMode::kStandard:
      standard_ds.emplace(*raw, spec);
      source = std::make_unique<data::StandardSource>(*standard_ds);
      break;
    case BatchingMode::kPadded:
      padded_ds.emplace(*raw, spec);
      source = std::make_unique<data::PaddedSource>(*padded_ds);
      break;
    case BatchingMode::kIndex:
      index_ds.emplace(*raw, spec);
      source = std::make_unique<data::IndexSource>(*index_ds);
      break;
    case BatchingMode::kGpuIndex:
      if (!device) throw std::logic_error("kGpuIndex requires use_device");
      index_ds.emplace(*raw, spec, *device);
      source = std::make_unique<data::IndexSource>(*index_ds);
      break;
  }
  result.preprocess_seconds = pre_timer.seconds();
  raw.reset();  // drop the raw file copy, as the reference workflow does
  result.resident_host_bytes = tracker.current(kHostSpace);
  if (timeline) {
    tracker.sample(kHostSpace, 0.05, "preprocess done");
    if (device) tracker.sample(device->space(), 0.05, "preprocess done");
  }

  // --- model ------------------------------------------------------------
  ModelBundle bundle = make_model(cfg_.model, spec, net, cfg_.hidden_dim,
                                  cfg_.diffusion_steps, cfg_.num_layers, cfg_.seed);
  if (device) {
    // Parameter upload is a real transfer on the ledger.
    for (Variable p : bundle.model->parameters()) {
      p.mutable_value() = device->upload(p.value());
    }
  }
  std::vector<Variable> params = bundle.model->parameters();
  result.model_parameters = bundle.model->parameter_count();
  optim::Adam::Options adam_opt;
  adam_opt.lr = cfg_.lr;
  optim::Adam opt(params, adam_opt);

  // --- loaders -----------------------------------------------------------
  const data::SplitRanges& splits = source->splits();
  data::LoaderOptions train_opt;
  train_opt.batch_size = spec.batch_size;
  train_opt.sampler = data::SamplerOptions{cfg_.shuffle, 0, 1, cfg_.seed, spec.batch_size};
  train_opt.drop_last = true;
  train_opt.device = device;
  data::DataLoader train_loader(*source, train_opt, splits.train_begin, splits.train_end);

  data::LoaderOptions eval_opt = train_opt;
  eval_opt.sampler.mode = data::ShuffleMode::kNone;
  eval_opt.drop_last = false;
  data::DataLoader val_loader(*source, eval_opt, splits.val_begin, splits.val_end);
  data::DataLoader test_loader(*source, eval_opt, splits.test_begin, splits.test_end);

  result.train_samples = splits.train_end - splits.train_begin;
  const double sigma = source->scaler().stddev;

  // --- training loop -------------------------------------------------------
  WallTimer train_timer;
  result.best_val_mae = 1e30;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    WallTimer epoch_timer;
    train_loader.start_epoch(epoch);
    data::Batch batch;
    double mae_sum = 0.0;
    std::int64_t batches = 0;
    while (train_loader.next(batch)) {
      std::vector<Variable> outputs = bundle.model->forward_seq(batch.x);
      Variable loss = seq_loss(outputs, batch.y);
      opt.zero_grad();
      loss.backward();
      opt.step();
      mae_sum += static_cast<double>(loss.value().item());
      ++batches;
      if (timeline && batches % 8 == 0) {
        const double prog = 0.05 + 0.95 * (static_cast<double>(epoch) +
                                           static_cast<double>(batches) /
                                               static_cast<double>(std::max<std::int64_t>(
                                                   1, train_loader.batches_per_epoch()))) /
                                       static_cast<double>(cfg_.epochs);
        tracker.sample(kHostSpace, prog, "train");
        if (device) tracker.sample(device->space(), prog, "train");
      }
      if (cfg_.max_batches_per_epoch > 0 && batches >= cfg_.max_batches_per_epoch) break;
    }

    // Validation pass (no optimizer step).
    val_loader.start_epoch(0);
    double val_sum = 0.0;
    std::int64_t val_batches = 0;
    while (val_loader.next(batch)) {
      std::vector<Variable> outputs = bundle.model->forward_seq(batch.x);
      val_sum += seq_mae(outputs, batch.y);
      ++val_batches;
      if (cfg_.max_val_batches > 0 && val_batches >= cfg_.max_val_batches) break;
    }

    EpochMetrics em;
    em.epoch = epoch;
    em.train_mae = batches > 0 ? mae_sum / static_cast<double>(batches) * sigma : 0.0;
    em.val_mae = val_batches > 0 ? val_sum / static_cast<double>(val_batches) * sigma : 0.0;
    em.wall_seconds = epoch_timer.seconds();
    result.curve.push_back(em);
    if (em.val_mae < result.best_val_mae && val_batches > 0) {
      result.best_val_mae = em.val_mae;
    }
  }
  result.train_seconds = train_timer.seconds();

  // Final test MSE (normalized units; Table 6 reports this).
  {
    test_loader.start_epoch(0);
    data::Batch batch;
    double mse_sum = 0.0;
    std::int64_t n = 0;
    while (test_loader.next(batch)) {
      std::vector<Variable> outputs = bundle.model->forward_seq(batch.x);
      mse_sum += seq_mse(outputs, batch.y);
      ++n;
      if (cfg_.max_val_batches > 0 && n >= cfg_.max_val_batches) break;
    }
    result.final_test_mse = n > 0 ? mse_sum / static_cast<double>(n) : 0.0;
  }

  result.peak_host_bytes = tracker.peak(kHostSpace);
  if (device) {
    result.peak_device_bytes = tracker.peak(device->space());
    result.transfers = device->stats();
    result.modeled_transfer_seconds = result.transfers.modeled_seconds;
  }
  if (timeline) tracker.sample(kHostSpace, 1.0, "done");
  return result;
}

}  // namespace pgti::core
