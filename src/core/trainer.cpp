#include "core/trainer.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "core/epoch_engine.h"
#include "optim/optim.h"
#include "runtime/timer.h"
#include "tensor/tensor_ops.h"

namespace pgti::core {

Tensor step_target(const Tensor& y, std::size_t t) {
  return y.select(1, static_cast<std::int64_t>(t)).contiguous();
}

Variable seq_loss(const std::vector<Variable>& outputs, const Tensor& y) {
  Variable total;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    Variable step = ag::mae_loss(outputs[t], step_target(y, t));
    total = t == 0 ? step : ag::add(total, step);
  }
  return ag::mul_scalar(total, 1.0f / static_cast<float>(outputs.size()));
}

double seq_mae(const std::vector<Variable>& outputs, const Tensor& y) {
  double acc = 0.0;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    acc += ops::mae(outputs[t].value(), step_target(y, t));
  }
  return acc / static_cast<double>(outputs.size());
}

double seq_mse(const std::vector<Variable>& outputs, const Tensor& y) {
  double acc = 0.0;
  for (std::size_t t = 0; t < outputs.size(); ++t) {
    acc += ops::mse(outputs[t].value(), step_target(y, t));
  }
  return acc / static_cast<double>(outputs.size());
}

TrainResult Trainer::run() {
  TrainResult result;
  auto& tracker = MemoryTracker::instance();
  SimDevice* device = cfg_.use_device ? &DeviceManager::instance().gpu(cfg_.device_index)
                                      : nullptr;
  if (device) device->reset_stats();

  const data::DatasetSpec& spec = cfg_.spec;
  SensorNetwork net = data::network_for(spec);
  std::optional<Tensor> raw = data::generate_signal(spec, net, cfg_.seed);

  tracker.reset_peak(kHostSpace);
  if (device) tracker.reset_peak(device->space());
  const bool timeline = cfg_.record_timeline;
  if (timeline) {
    tracker.clear_timeline(kHostSpace);
    if (device) tracker.clear_timeline(device->space());
    tracker.sample(kHostSpace, 0.0, "start");
  }

  // --- preprocessing ---------------------------------------------------
  WallTimer pre_timer;
  std::optional<data::StandardDataset> standard_ds;
  std::optional<data::PaddedStandardDataset> padded_ds;
  std::optional<data::IndexDataset> index_ds;
  std::unique_ptr<data::SnapshotSource> source;
  switch (cfg_.mode) {
    case BatchingMode::kStandard:
      standard_ds.emplace(*raw, spec);
      source = std::make_unique<data::StandardSource>(*standard_ds);
      break;
    case BatchingMode::kPadded:
      padded_ds.emplace(*raw, spec);
      source = std::make_unique<data::PaddedSource>(*padded_ds);
      break;
    case BatchingMode::kIndex:
      index_ds.emplace(*raw, spec);
      source = std::make_unique<data::IndexSource>(*index_ds);
      break;
    case BatchingMode::kGpuIndex:
      if (!device) throw std::logic_error("kGpuIndex requires use_device");
      index_ds.emplace(*raw, spec, *device);
      source = std::make_unique<data::IndexSource>(*index_ds);
      break;
  }
  result.preprocess_seconds = pre_timer.seconds();
  raw.reset();  // drop the raw file copy, as the reference workflow does
  result.resident_host_bytes = tracker.current(kHostSpace);
  if (timeline) {
    tracker.sample(kHostSpace, 0.05, "preprocess done");
    if (device) tracker.sample(device->space(), 0.05, "preprocess done");
  }

  // --- model ------------------------------------------------------------
  ModelBundle bundle = make_model(cfg_.model, spec, net, cfg_.hidden_dim,
                                  cfg_.diffusion_steps, cfg_.num_layers, cfg_.seed);
  if (device) {
    // Parameter upload is a real transfer on the ledger.
    for (Variable p : bundle.model->parameters()) {
      p.mutable_value() = device->upload(p.value());
    }
  }
  std::vector<Variable> params = bundle.model->parameters();
  result.model_parameters = bundle.model->parameter_count();
  optim::Adam::Options adam_opt;
  adam_opt.lr = cfg_.lr;
  optim::Adam opt(params, adam_opt);

  // --- loaders -----------------------------------------------------------
  const data::SplitRanges& splits = source->splits();
  data::LoaderOptions train_opt;
  train_opt.batch_size = spec.batch_size;
  train_opt.sampler = data::SamplerOptions{cfg_.shuffle, 0, 1, cfg_.seed, spec.batch_size};
  train_opt.drop_last = true;
  train_opt.device = device;
  train_opt.prefetch_lookahead = cfg_.prefetch_depth;
  data::DataLoader train_loader(*source, train_opt, splits.train_begin, splits.train_end);

  data::LoaderOptions eval_opt = train_opt;
  eval_opt.sampler.mode = data::ShuffleMode::kNone;
  eval_opt.drop_last = false;
  data::DataLoader val_loader(*source, eval_opt, splits.val_begin, splits.val_end);
  data::DataLoader test_loader(*source, eval_opt, splits.test_begin, splits.test_end);

  result.train_samples = splits.train_end - splits.train_begin;
  const double sigma = source->scaler().stddev;

  // --- the shared pipeline (DESIGN.md §12) -------------------------------
  // The same EpochEngine that drives every DistTrainer rank drives the
  // single-process workflow; prefetch_depth > 0 stages (and, on device
  // runs, uploads) batches ahead of compute through a depth-N
  // PrefetchLoader whose slots live in the compute space.
  EpochEngine::Hooks hooks;
  if (timeline) {
    hooks.on_train_step = [&](int epoch, std::int64_t batches) {
      if (batches % 8 != 0) return;
      const double prog = 0.05 + 0.95 * (static_cast<double>(epoch) +
                                         static_cast<double>(batches) /
                                             static_cast<double>(std::max<std::int64_t>(
                                                 1, train_loader.batches_per_epoch()))) /
                                     static_cast<double>(cfg_.epochs);
      tracker.sample(kHostSpace, prog, "train");
      if (device) tracker.sample(device->space(), prog, "train");
    };
  }
  EpochEngine engine(*bundle.model, opt, hooks);
  BatchPipeline train_pipe(train_loader, cfg_.prefetch_depth);
  BatchPipeline val_pipe(val_loader, cfg_.prefetch_depth);
  BatchPipeline test_pipe(test_loader, cfg_.prefetch_depth);
  const std::int64_t train_cap =
      cfg_.max_batches_per_epoch > 0 ? cfg_.max_batches_per_epoch : -1;
  const std::int64_t eval_cap = cfg_.max_val_batches > 0 ? cfg_.max_val_batches : -1;

  // --- training loop -------------------------------------------------------
  WallTimer train_timer;
  result.best_val_mae = 1e30;
  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    WallTimer epoch_timer;
    const EpochEngine::EpochSums train = engine.train_epoch(train_pipe, epoch, train_cap);
    const EpochEngine::EpochSums val =
        engine.eval_epoch(val_pipe, eval_cap, EpochEngine::Metric::kMae);

    EpochMetrics em;
    em.epoch = epoch;
    em.train_mae = train.batches > 0
                       ? train.sum / static_cast<double>(train.batches) * sigma
                       : 0.0;
    em.val_mae = val.batches > 0 ? val.sum / static_cast<double>(val.batches) * sigma
                                 : 0.0;
    em.wall_seconds = epoch_timer.seconds();
    result.curve.push_back(em);
    if (em.val_mae < result.best_val_mae && val.batches > 0) {
      result.best_val_mae = em.val_mae;
    }
  }
  result.train_seconds = train_timer.seconds();
  result.allocs_last_step = engine.allocs_last_step();

  // Final test MSE (normalized units; Table 6 reports this).
  {
    const EpochEngine::EpochSums test =
        engine.eval_epoch(test_pipe, eval_cap, EpochEngine::Metric::kMse);
    result.final_test_mse =
        test.batches > 0 ? test.sum / static_cast<double>(test.batches) : 0.0;
  }

  result.peak_host_bytes = tracker.peak(kHostSpace);
  if (device) {
    result.peak_device_bytes = tracker.peak(device->space());
    result.transfers = device->stats();
    result.modeled_transfer_seconds = result.transfers.modeled_seconds;
    // Batch staging the prefetch workers ran ahead of compute hid its
    // modeled upload time; everything else (the parameter upload, all
    // depth-0 staging) stays exposed.
    result.exposed_transfer_seconds =
        result.modeled_transfer_seconds - engine.overlapped_transfer_seconds();
  }
  if (timeline) tracker.sample(kHostSpace, 1.0, "done");
  return result;
}

}  // namespace pgti::core
