#include "core/evaluation.h"

#include <cmath>
#include <sstream>

namespace pgti::core {

double HorizonMetrics::overall_mae() const {
  double acc = 0.0;
  for (double v : mae) acc += v;
  return mae.empty() ? 0.0 : acc / static_cast<double>(mae.size());
}

double HorizonMetrics::overall_rmse() const {
  // RMSE of the union = sqrt(mean of per-step MSEs) for equal step sizes.
  double acc = 0.0;
  for (double v : rmse) acc += v * v;
  return rmse.empty() ? 0.0 : std::sqrt(acc / static_cast<double>(rmse.size()));
}

HorizonMetrics evaluate_horizon(const nn::SeqModel& model,
                                const data::SnapshotSource& source,
                                std::int64_t range_begin, std::int64_t range_end,
                                const EvalOptions& options) {
  data::LoaderOptions lopt;
  lopt.batch_size = options.batch_size;
  lopt.sampler = data::SamplerOptions{data::ShuffleMode::kNone, 0, 1, 1,
                                      options.batch_size};
  lopt.drop_last = false;
  lopt.device = options.device;
  data::DataLoader loader(source, lopt, range_begin, range_end);
  loader.start_epoch(0);

  const data::StandardScaler& scaler = source.scaler();
  const std::int64_t steps = model.output_steps(source.spec().horizon);
  std::vector<double> abs_sum(static_cast<std::size_t>(steps), 0.0);
  std::vector<double> sq_sum(static_cast<std::size_t>(steps), 0.0);
  std::vector<double> pct_sum(static_cast<std::size_t>(steps), 0.0);
  std::vector<std::int64_t> count(static_cast<std::size_t>(steps), 0);
  std::vector<std::int64_t> pct_count(static_cast<std::size_t>(steps), 0);

  HorizonMetrics out;
  data::Batch batch;
  std::int64_t batches = 0;
  while (loader.next(batch)) {
    const std::vector<Variable> preds = model.forward_seq(batch.x);
    for (std::int64_t t = 0; t < steps; ++t) {
      const Tensor p = preds[static_cast<std::size_t>(t)].value().contiguous();
      const Tensor y = batch.y.select(1, t).contiguous();
      const float* pp = p.data();
      const float* py = y.data();
      const auto ti = static_cast<std::size_t>(t);
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        const double pred = scaler.inverse(pp[i]);
        const double truth = scaler.inverse(py[i]);
        const double err = std::fabs(pred - truth);
        abs_sum[ti] += err;
        sq_sum[ti] += err * err;
        ++count[ti];
        if (std::fabs(truth) >= options.mape_floor) {
          pct_sum[ti] += err / std::fabs(truth);
          ++pct_count[ti];
        }
      }
    }
    out.samples += batch.size;
    ++batches;
    if (options.max_batches > 0 && batches >= options.max_batches) break;
  }

  out.mae.resize(static_cast<std::size_t>(steps));
  out.rmse.resize(static_cast<std::size_t>(steps));
  out.mape.resize(static_cast<std::size_t>(steps));
  for (std::size_t t = 0; t < static_cast<std::size_t>(steps); ++t) {
    const double n = count[t] > 0 ? static_cast<double>(count[t]) : 1.0;
    out.mae[t] = abs_sum[t] / n;
    out.rmse[t] = std::sqrt(sq_sum[t] / n);
    out.mape[t] = pct_count[t] > 0
                      ? 100.0 * pct_sum[t] / static_cast<double>(pct_count[t])
                      : 0.0;
  }
  return out;
}

std::string format_horizon_report(const HorizonMetrics& metrics,
                                  double minutes_per_step) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  for (std::size_t t = 0; t < metrics.mae.size(); ++t) {
    os << "  +" << static_cast<int>(minutes_per_step * static_cast<double>(t + 1))
       << " min | MAE " << metrics.mae[t] << " | RMSE " << metrics.rmse[t]
       << " | MAPE " << metrics.mape[t] << "%\n";
  }
  os << "  overall | MAE " << metrics.overall_mae() << " | RMSE "
     << metrics.overall_rmse() << " (" << metrics.samples << " samples)\n";
  return os.str();
}

}  // namespace pgti::core
