// The shared epoch machinery behind Trainer and DistTrainer.
//
// Both workflows used to carry their own copy of the same loop:
// wire a sampler into a DataLoader, optionally wrap it in a
// PrefetchLoader, iterate batches through forward/loss/backward/step,
// accumulate losses and metrics, and close out truncated epochs.
// EpochEngine owns that loop once:
//
//  * BatchPipeline binds one DataLoader to a prefetch depth (0 =
//    drive the loader synchronously; N >= 1 = a depth-N PrefetchLoader
//    ring whose worker stages — and, for device runs, uploads —
//    batches ahead of compute) plus an optional per-batch hook the
//    distributed trainer uses to drain/charge exposed fetch seconds.
//  * EpochEngine::train_epoch / eval_epoch run the actual loops.  A
//    sync_gradients hook between backward and step makes the same loop
//    serve DDP replicas; an on_train_step hook serves the
//    single-process timeline sampler.  Batch sequences — and therefore
//    every loss — are bit-identical across prefetch depths.
//
// The engine also splits the modeled PCIe leg of batch staging into
// overlapped/exposed seconds, mirroring DistStore's fetch-time split
// (DESIGN.md §10/§12): a batch staged by a prefetch worker hides its
// modeled upload behind the wall window between staging and
// consumption; only the remainder stays on the critical path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "autograd/variable.h"
#include "data/dataloader.h"
#include "data/prefetch.h"
#include "nn/dcrnn.h"
#include "optim/optim.h"
#include "runtime/arena.h"

namespace pgti::core {

/// One DataLoader bound to a prefetch depth.  All epoch iteration —
/// single-process or per-rank distributed — flows through this seam,
/// so prefetch on/off/deeper is a construction-time choice, not a
/// second code path.
class BatchPipeline {
 public:
  /// `on_batch` (optional) runs on the consumer thread once per
  /// delivered batch, right after delivery — distributed runs drain
  /// the provider's exposed modeled fetch seconds there.
  BatchPipeline(data::DataLoader& loader, int prefetch_depth,
                std::function<void()> on_batch = {});

  /// Starts an epoch; `max_batches` (-1 = none) caps both consumption
  /// and — crucially — the lookahead announcements of a truncated
  /// epoch (forwarded to the loader via set_max_batches).
  void start_epoch(int epoch, std::int64_t max_batches = -1);

  /// Delivers the next batch; returns false at epoch end.
  bool next(data::Batch& out);

  std::int64_t batches_per_epoch() const { return loader_->batches_per_epoch(); }
  bool prefetching() const noexcept { return prefetch_.has_value(); }

 private:
  data::DataLoader* loader_;
  std::optional<data::PrefetchLoader> prefetch_;
  std::function<void()> on_batch_;
};

/// Drives a SeqModel + Adam through training and evaluation epochs
/// over BatchPipelines.  One instance serves a whole workflow (or one
/// rank of one); the PCIe overlap accounting accumulates across all
/// epochs it runs.
class EpochEngine {
 public:
  struct Hooks {
    /// Runs between backward and optimizer step.  For serial DDP this
    /// IS the gradient averaging; with grad overlap it is a *drain
    /// point* — backward already launched the bucket reduces via
    /// grad_observer, and this hook only waits for (and applies) the
    /// results the step needs.  Absent for single-replica training.
    std::function<void()> sync_gradients;
    /// Runs after every train step with (epoch, batches done so far);
    /// the single-process trainer samples its memory timeline here.
    std::function<void(int, std::int64_t)> on_train_step;
    /// When set, train_epoch passes this observer to every backward()
    /// so ready gradient buckets can start reducing mid-sweep
    /// (dist::OverlappedGradBucket).  Pair with a draining
    /// sync_gradients.
    GradReadyObserver* grad_observer = nullptr;
    /// Runs once at the end of every training epoch with (epoch,
    /// batches consumed), after the last optimizer step and outside
    /// any step ArenaScope.  The serving path publishes its
    /// copy-on-publish ModelSnapshot here (serve::SnapshotSlot), so a
    /// live trainer streams fresh model versions to an overlapping
    /// InferenceEngine without locks on either hot path.
    std::function<void(int, std::int64_t)> on_epoch_end;
  };

  // (Two overloads rather than one defaulted argument: GCC 12 rejects
  // defaulting a nested aggregate that carries default member
  // initializers from inside the enclosing class.)
  EpochEngine(nn::SeqModel& model, optim::Adam& opt);
  EpochEngine(nn::SeqModel& model, optim::Adam& opt, Hooks hooks);

  struct EpochSums {
    double sum = 0.0;  ///< accumulated loss (train) or metric (eval)
    std::int64_t batches = 0;
  };

  /// One training epoch: forward, seq_loss, backward, [sync], step.
  /// `max_steps` (-1 = none) bounds consumed batches and the
  /// pipeline's production.
  EpochSums train_epoch(BatchPipeline& pipe, int epoch, std::int64_t max_steps);

  enum class Metric { kMae, kMse };

  /// One evaluation pass (no tape, no optimizer) accumulating the
  /// chosen metric; always epoch 0 (evaluation order is fixed).
  EpochSums eval_epoch(BatchPipeline& pipe, std::int64_t max_batches,
                       Metric metric);

  /// Modeled PCIe staging seconds hidden behind compute by prefetched
  /// pipelines so far (0 when every pipeline ran at depth 0).
  double overlapped_transfer_seconds() const noexcept { return pcie_overlapped_; }
  /// The exposed remainder of the modeled staging seconds observed.
  double exposed_transfer_seconds() const noexcept { return pcie_exposed_; }

  /// Tracker-charged heap allocations during the most recent train
  /// step (batch delivery + forward + backward + sync + step).  With
  /// the arena enabled this converges to 0 after the first (planning)
  /// step of a synchronous pipeline; prefetch workers allocate on
  /// their own threads and are counted process-wide, so deep pipelines
  /// report their staging traffic here too.
  std::uint64_t allocs_last_step() const noexcept { return allocs_last_step_; }

  /// Pool demand recorded by this engine's arena (planning high-water,
  /// pool hits, reserved bytes).
  runtime::ArenaStats arena_stats() const { return arena_.stats(); }

 private:
  void account_staging(const data::Batch& batch, bool prefetched);

  nn::SeqModel* model_;
  optim::Adam* opt_;
  Hooks hooks_;
  double pcie_overlapped_ = 0.0;
  double pcie_exposed_ = 0.0;
  // One arena per engine (per rank, for distributed runs): every
  // train/eval step opens an ArenaScope on it, so the first step plans
  // bucket demand and later steps replay against the pool.
  runtime::TensorArena arena_;
  std::uint64_t allocs_last_step_ = 0;
};

}  // namespace pgti::core
