// PGT-I public configuration types.
#pragma once

#include <cstdint>

#include "data/dataset_spec.h"
#include "data/dataloader.h"

namespace pgti::core {

/// How training batches are produced (paper §4.1).
enum class BatchingMode {
  kStandard,  ///< Algorithm 1: fully materialized x/y arrays
  kPadded,    ///< kStandard + the original DCRNN padded-copy dataloader
  kIndex,     ///< index-batching: host-resident single copy + views
  kGpuIndex,  ///< GPU-index-batching: device-resident single copy
};

/// Which sequence-to-sequence model trains.
enum class ModelKind { kPgtDcrnn, kDcrnn, kA3tgcn, kStllm };

/// Single-worker workflow configuration.
struct TrainConfig {
  data::DatasetSpec spec;
  ModelKind model = ModelKind::kPgtDcrnn;
  BatchingMode mode = BatchingMode::kIndex;
  int epochs = 10;
  float lr = 1e-3f;
  std::int64_t hidden_dim = 32;
  int diffusion_steps = 2;
  int num_layers = 2;  ///< DCRNN encoder/decoder depth
  std::uint64_t seed = 42;
  data::ShuffleMode shuffle = data::ShuffleMode::kGlobal;
  /// Train on a simulated device (GPU) vs. pure host execution.
  bool use_device = true;
  int device_index = 0;
  /// Record MemoryTracker timeline samples at phase/batch boundaries.
  bool record_timeline = false;
  /// Caps train batches per epoch (0 = no cap); benches use this to
  /// bound wall time at paper-faithful per-batch behaviour.
  std::int64_t max_batches_per_epoch = 0;
  std::int64_t max_val_batches = 0;
  /// Batches of lookahead in the single-process data pipeline (0 =
  /// loaders are driven synchronously).  With depth N the EpochEngine
  /// wraps each loader in a depth-N PrefetchLoader: batch staging —
  /// including the modeled PCIe upload of host-resident batches — runs
  /// up to N batches ahead on a worker thread and lands in
  /// compute-space (device) buffers, so only the *exposed* share of
  /// the modeled transfer leg stays on the critical path
  /// (TrainResult::exposed_transfer_seconds).  Batch sequences and
  /// losses are bit-identical across depths.
  int prefetch_depth = 0;
};

/// Distributed strategy (paper §4.2, §5.4).
enum class DistMode {
  kDistributedIndex,         ///< full local copy per worker, global shuffle
  kBaselineDdp,              ///< Dask-style partitioned store, global shuffle
  kGeneralizedIndex,         ///< partitioned index data, batch-level shuffle
  kBaselineDdpBatchShuffle,  ///< partitioned store, batch-level shuffle
};

/// When gradient all-reduces run relative to backward (DESIGN.md §13).
enum class GradOverlap {
  kOff,     ///< serial: backward completes, then every bucket reduces
  kStrict,  ///< ready-bucket overlap; losses bit-identical to kOff
  kStale1,  ///< bounded staleness: step k applies step k-1's buckets
};

/// Multi-worker workflow configuration.
struct DistConfig {
  data::DatasetSpec spec;
  ModelKind model = ModelKind::kPgtDcrnn;
  DistMode mode = DistMode::kDistributedIndex;
  int world = 4;
  int epochs = 10;
  float lr = 1e-3f;
  /// Apply the linear LR-scaling rule with warmup (paper §5.3.3).
  bool scale_lr = false;
  int warmup_epochs = 3;
  std::int64_t hidden_dim = 32;
  int diffusion_steps = 2;
  std::uint64_t seed = 42;
  std::int64_t max_batches_per_epoch = 0;
  std::int64_t max_val_batches = 0;
  /// Per-rank LRU capacity (in snapshots) of the baseline store's
  /// remote-fetch cache; negative = auto (the store owns the default
  /// and sizes it to a couple of batches).  Any value >= 0 is honored
  /// exactly — announced snapshots are pinned until consumed, so even
  /// a zero-capacity cache never double-prices a consolidated fetch.
  std::int64_t store_cache_snapshots = -1;
  /// Byte bound on each rank's remote-fetch cache, applied on top of
  /// the snapshot bound; 0 = no byte bound.
  std::int64_t store_cache_bytes = 0;
  /// Batches of lookahead in the distributed data pipeline (0 = fully
  /// synchronous).  With depth N the baseline store stages announced
  /// batches on per-rank background threads (prefetch_batch becomes an
  /// async enqueue), loaders announce N batches ahead plus the epoch
  /// schedule (which the store's cache evicts around), and batch
  /// assembly runs through a depth-N PrefetchLoader ring.  Batch
  /// contents and losses are bit-identical across every depth; only
  /// the *exposed* share of modeled fetch time (what the cluster is
  /// charged) shrinks as depth grows.
  int prefetch_depth = 0;
  /// Gradient-plane overlap: fire per-bucket all-reduces from a
  /// per-rank comm thread as buckets become ready during backward
  /// (kStrict keeps losses bit-identical to kOff at every world size
  /// and prefetch depth; kStale1 trades one step of staleness for a
  /// fully hidden gradient sync).  DistResult splits the modeled
  /// grad-sync time into overlapped vs exposed seconds either way.
  GradOverlap grad_overlap = GradOverlap::kOff;
};

}  // namespace pgti::core
