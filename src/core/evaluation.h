// Horizon-wise evaluation (the DCRNN-family reporting convention:
// MAE / RMSE / MAPE at 15 / 30 / 60 minutes, i.e. per prediction step).
//
// The paper reports single MAE numbers; downstream users of a traffic
// model almost always want the per-step breakdown, so the library
// ships it as a first-class evaluator over any SnapshotSource split.
#pragma once

#include <string>
#include <vector>

#include "data/dataloader.h"
#include "nn/dcrnn.h"

namespace pgti::core {

/// Per-prediction-step error metrics in ORIGINAL units (the scaler's
/// inverse is applied).  Vectors are indexed by step (0 = nearest).
struct HorizonMetrics {
  std::vector<double> mae;
  std::vector<double> rmse;
  std::vector<double> mape;  ///< mean absolute percentage error (%, valid targets only)
  std::int64_t samples = 0;

  double overall_mae() const;
  double overall_rmse() const;
};

struct EvalOptions {
  std::int64_t batch_size = 64;
  std::int64_t max_batches = 0;  ///< 0 = whole split
  SimDevice* device = nullptr;
  /// Targets with |value| below this (original units) are excluded
  /// from MAPE to avoid division blow-ups.
  double mape_floor = 1.0;
};

/// Runs `model` over snapshots [range_begin, range_end) of `source`
/// and accumulates per-step metrics.
HorizonMetrics evaluate_horizon(const nn::SeqModel& model,
                                const data::SnapshotSource& source,
                                std::int64_t range_begin, std::int64_t range_end,
                                const EvalOptions& options = {});

/// Pretty multi-line report ("step 3: MAE 2.31 RMSE 4.80 MAPE 5.4%").
std::string format_horizon_report(const HorizonMetrics& metrics,
                                  double minutes_per_step = 5.0);

}  // namespace pgti::core
