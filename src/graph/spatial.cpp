#include "graph/spatial.h"

#include <algorithm>
#include <cmath>

namespace pgti {

SensorNetwork build_sensor_network(const SensorNetworkOptions& options) {
  SensorNetwork net;
  const std::int64_t n = options.num_nodes;
  Rng rng(options.seed);
  net.x.resize(static_cast<std::size_t>(n));
  net.y.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    net.x[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform());
    net.y[static_cast<std::size_t>(i)] = static_cast<float>(rng.uniform());
  }

  const float sigma2 = options.kernel_sigma * options.kernel_sigma;
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(options.k_neighbors + 1));

  std::vector<std::pair<float, std::int64_t>> dists(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float dx = net.x[static_cast<std::size_t>(i)] - net.x[static_cast<std::size_t>(j)];
      const float dy = net.y[static_cast<std::size_t>(i)] - net.y[static_cast<std::size_t>(j)];
      dists[static_cast<std::size_t>(j)] = {dx * dx + dy * dy, j};
    }
    const std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(options.k_neighbors) + 1, static_cast<std::size_t>(n));
    std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                      dists.end());
    for (std::size_t kk = 0; kk < k; ++kk) {
      const auto [d2, j] = dists[kk];
      const float w = std::exp(-d2 / sigma2);
      if (w < options.weight_threshold) continue;
      entries.push_back(CooEntry{i, j, w});
    }
  }
  net.adjacency = Csr::from_coo(n, n, std::move(entries));
  return net;
}

std::vector<Csr> dual_random_walk_supports(const Csr& adjacency) {
  std::vector<Csr> supports;
  supports.push_back(adjacency.row_normalized());
  supports.push_back(adjacency.transpose().row_normalized());
  return supports;
}

Csr sym_norm_adjacency(const Csr& adjacency) {
  // W + I
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(adjacency.nnz() + adjacency.rows()));
  for (std::int64_t r = 0; r < adjacency.rows(); ++r) {
    for (std::int64_t k = adjacency.row_ptr()[static_cast<std::size_t>(r)];
         k < adjacency.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      entries.push_back(CooEntry{r, adjacency.col_idx()[static_cast<std::size_t>(k)],
                                 adjacency.values()[static_cast<std::size_t>(k)]});
    }
    entries.push_back(CooEntry{r, r, 1.0f});
  }
  Csr wi = Csr::from_coo(adjacency.rows(), adjacency.cols(), std::move(entries));

  const std::vector<float> deg = wi.row_sums();
  std::vector<CooEntry> norm_entries;
  norm_entries.reserve(static_cast<std::size_t>(wi.nnz()));
  for (std::int64_t r = 0; r < wi.rows(); ++r) {
    const float dr = deg[static_cast<std::size_t>(r)];
    for (std::int64_t k = wi.row_ptr()[static_cast<std::size_t>(r)];
         k < wi.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = wi.col_idx()[static_cast<std::size_t>(k)];
      const float dc = deg[static_cast<std::size_t>(c)];
      const float denom = std::sqrt(std::max(dr, 1e-12f)) * std::sqrt(std::max(dc, 1e-12f));
      norm_entries.push_back(
          CooEntry{r, c, wi.values()[static_cast<std::size_t>(k)] / denom});
    }
  }
  return Csr::from_coo(wi.rows(), wi.cols(), std::move(norm_entries));
}

}  // namespace pgti
