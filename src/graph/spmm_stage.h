#pragma once

#include "runtime/workspace.h"
#include "tensor/tensor.h"

namespace pgti::detail {

/// Returns a dense contiguous view of `t` for SpMM row gathers: `t`'s
/// own data pointer when it is already contiguous, otherwise a packed
/// copy in a buffer leased from the WorkspaceCache via `stage` (the
/// lease pins the buffer for the caller's scope).  Rank 2 or 3 only.
const float* stage_dense(const Tensor& t, runtime::WorkspaceCache::Handle& stage,
                         const char* what);

}  // namespace pgti::detail
