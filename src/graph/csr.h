// Compressed-sparse-row matrices and sparse-dense products.
//
// ST-GNN spatial layers are built on SpMM with graph transition
// matrices (DCRNN's dual random-walk diffusion, TGCN's symmetric
// normalized adjacency).  Row-major CSR with threaded SpMM over a
// collapsed (batch x row-block) iteration space, so small batches
// still saturate the thread pool.  The bias add and activation of the
// downstream layer can run in the SpMM store epilogue (spmm_bias_act)
// instead of as extra materializing passes; results are bit-identical
// to the unfused composition (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace pgti {

/// One (row, col, value) sparse entry.
struct CooEntry {
  std::int64_t row = 0;
  std::int64_t col = 0;
  float value = 0.0f;
};

/// Immutable CSR sparse matrix.
class Csr {
 public:
  Csr() = default;
  /// Builds from COO entries (duplicates are summed).
  static Csr from_coo(std::int64_t rows, std::int64_t cols,
                      std::vector<CooEntry> entries);
  /// Identity matrix of size n.
  static Csr identity(std::int64_t n);

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t nnz() const noexcept { return static_cast<std::int64_t>(col_idx_.size()); }

  const std::vector<std::int64_t>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<std::int64_t>& col_idx() const noexcept { return col_idx_; }
  const std::vector<float>& values() const noexcept { return values_; }

  /// A^T as CSR (two-pass counting transpose, O(nnz + rows + cols)).
  Csr transpose() const;

  /// D^{-1} A: rows scaled to sum to 1 (random-walk transition matrix).
  /// Zero rows stay zero.
  Csr row_normalized() const;

  /// Row sums as a dense vector of length rows().
  std::vector<float> row_sums() const;

  /// Dense copy (tests / small graphs only).
  Tensor to_dense() const;

  /// Y = A * X for X [cols, C] -> Y [rows, C].
  Tensor spmm(const Tensor& x) const;

  /// Batched: X [B, cols, C] -> Y [B, rows, C], parallel over the
  /// collapsed (batch x row-block) space.
  Tensor spmm_batched(const Tensor& x) const;

  /// Fused Y = act(A * X + bias) for X [cols, C] or [B, cols, C] and
  /// bias [C].  The gather, accumulate, bias add, and activation run in
  /// one pass per output row; bit-identical to
  /// act(add_bias(spmm(x), bias)).
  Tensor spmm_bias_act(const Tensor& x, const Tensor& bias, ops::Act act) const;

  /// Retained pre-optimization batched kernel (parallel over B only,
  /// serial rows inside).  bench_kernels measures the collapsed-space
  /// speedup in-run against this; tests assert bit-identical output.
  Tensor spmm_batched_reference(const Tensor& x) const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<float> values_;

  void spmm_into(const float* x, float* y, std::int64_t c) const;
  /// Rows [r_lo, r_hi) of one SpMM with optional fused epilogue.
  void spmm_rows(const float* x, float* y, std::int64_t c, std::int64_t r_lo,
                 std::int64_t r_hi, const float* bias, ops::Act act) const;
  Tensor spmm_impl(const Tensor& x, const float* bias, ops::Act act,
                   const char* what) const;
};

}  // namespace pgti
