#include "graph/spmm_stage.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/thread_pool.h"

namespace pgti::detail {

// Dense staging for strided SpMM inputs (views from index-batching).
// The buffer is leased from the WorkspaceCache instead of cloning into
// a fresh tensor: spmm runs at the same shapes every step, so
// steady-state calls recycle one buffer per shape.  Contiguous inputs
// skip the copy entirely and the lease stays empty.
//
// This lives in its own translation unit on purpose: the staging
// loops vectorize into a lot of code, and keeping them out of csr.cpp
// leaves the hot spmm_rows/spmm_impl inlining budget untouched.
const float* stage_dense(const Tensor& t, runtime::WorkspaceCache::Handle& stage,
                         const char* what) {
  if (t.is_contiguous()) return t.data();
  stage = runtime::WorkspaceCache::instance().acquire("spmm_stage", t.numel(),
                                                      t.space());
  float* dst = stage.data();
  if (t.dim() == 2) {
    const std::int64_t r = t.size(0), c = t.size(1);
    const std::int64_t s0 = t.strides()[0], s1 = t.strides()[1];
    const float* src = t.data();
    parallel_for(0, r, std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, c)),
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i) {
                     for (std::int64_t j = 0; j < c; ++j) {
                       dst[i * c + j] = src[i * s0 + j * s1];
                     }
                   }
                 });
    return dst;
  }
  if (t.dim() != 3) {
    throw std::invalid_argument(std::string(what) + ": staging needs rank 2 or 3");
  }
  const std::int64_t b = t.size(0), r = t.size(1), c = t.size(2);
  const std::int64_t s0 = t.strides()[0], s1 = t.strides()[1], s2 = t.strides()[2];
  const float* src = t.data();
  parallel_for(0, b * r, std::max<std::int64_t>(1, 16384 / std::max<std::int64_t>(1, c)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t t2 = lo; t2 < hi; ++t2) {
                   const std::int64_t i = t2 / r, j = t2 % r;
                   for (std::int64_t k = 0; k < c; ++k) {
                     dst[(i * r + j) * c + k] = src[i * s0 + j * s1 + k * s2];
                   }
                 }
               });
  return dst;
}

}  // namespace pgti::detail
