#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

#include "graph/spmm_stage.h"
#include "runtime/thread_pool.h"

namespace pgti {
namespace {

// Row-block width for the collapsed (batch x row-block) SpMM space:
// each task owns every output row it touches, so blocks are
// independent and the per-row accumulation order never depends on the
// task schedule.
constexpr std::int64_t kSpmmRowBlock = 64;

}  // namespace

Csr Csr::from_coo(std::int64_t rows, std::int64_t cols, std::vector<CooEntry> entries) {
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      throw std::out_of_range("Csr::from_coo: entry out of bounds");
    }
  }
  std::sort(entries.begin(), entries.end(), [](const CooEntry& a, const CooEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    float acc = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      acc += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(acc);
    ++m.row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
    i = j;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

Csr Csr::identity(std::int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) entries.push_back(CooEntry{i, i, 1.0f});
  return from_coo(n, n, std::move(entries));
}

Csr Csr::transpose() const {
  // Two-pass counting transpose: histogram the column indices, prefix-
  // sum into the transposed row_ptr, then scatter with per-row cursors.
  // Walking this matrix row-major emits each transposed row's entries
  // in ascending column (= our row) order, so the output is the same
  // canonical sorted CSR the old from_coo round-trip produced — without
  // the O(nnz log nnz) sort.
  Csr out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  const std::size_t n = values_.size();
  out.row_ptr_.assign(static_cast<std::size_t>(cols_) + 1, 0);
  out.col_idx_.resize(n);
  out.values_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    ++out.row_ptr_[static_cast<std::size_t>(col_idx_[k]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(cols_); ++c) {
    out.row_ptr_[c + 1] += out.row_ptr_[c];
  }
  std::vector<std::int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const std::int64_t c = col_idx_[static_cast<std::size_t>(k)];
      const std::int64_t dst = cursor[static_cast<std::size_t>(c)]++;
      out.col_idx_[static_cast<std::size_t>(dst)] = r;
      out.values_[static_cast<std::size_t>(dst)] = values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

std::vector<float> Csr::row_sums() const {
  // Single flat pass over values_; the row boundary walks forward with k.
  std::vector<float> sums(static_cast<std::size_t>(rows_), 0.0f);
  std::size_t r = 0;
  for (std::size_t k = 0; k < values_.size(); ++k) {
    while (static_cast<std::int64_t>(k) >= row_ptr_[r + 1]) ++r;
    sums[r] += values_[k];
  }
  return sums;
}

Csr Csr::row_normalized() const {
  const std::vector<float> sums = row_sums();
  Csr out = *this;
  std::size_t r = 0;
  for (std::size_t k = 0; k < out.values_.size(); ++k) {
    while (static_cast<std::int64_t>(k) >= row_ptr_[r + 1]) ++r;
    const float s = sums[r];
    if (s != 0.0f) out.values_[k] *= 1.0f / s;
  }
  return out;
}

Tensor Csr::to_dense() const {
  Tensor d = Tensor::zeros({rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      d.at({r, col_idx_[static_cast<std::size_t>(k)]}) =
          values_[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

void Csr::spmm_rows(const float* x, float* y, std::int64_t c, std::int64_t r_lo,
                    std::int64_t r_hi, const float* bias, ops::Act act) const {
  for (std::int64_t r = r_lo; r < r_hi; ++r) {
    float* yrow = y + r * c;
    std::fill(yrow, yrow + c, 0.0f);
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<std::size_t>(k)];
      const float* xrow = x + col_idx_[static_cast<std::size_t>(k)] * c;
      for (std::int64_t j = 0; j < c; ++j) yrow[j] += v * xrow[j];
    }
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < c; ++j) yrow[j] = ops::act_apply(act, yrow[j] + bias[j]);
    } else if (act != ops::Act::kIdentity) {
      for (std::int64_t j = 0; j < c; ++j) yrow[j] = ops::act_apply(act, yrow[j]);
    }
  }
}

void Csr::spmm_into(const float* x, float* y, std::int64_t c) const {
  spmm_rows(x, y, c, 0, rows_, nullptr, ops::Act::kIdentity);
}

Tensor Csr::spmm_impl(const Tensor& x, const float* bias, ops::Act act,
                      const char* what) const {
  // Strided x (a view from index-batching) needs dense staging before
  // the row gather; stage_dense leases the buffer from the
  // WorkspaceCache and is a no-op for contiguous x.  It lives in its
  // own translation unit so the staging loops don't eat into this
  // file's inlining budget around the hot row-gather dispatch below.
  runtime::WorkspaceCache::Handle stage;
  if (x.dim() == 2) {
    if (x.size(0) != cols_) {
      throw std::invalid_argument(std::string(what) + ": x must be [cols, C]");
    }
    const std::int64_t c = x.size(1);
    const float* px = detail::stage_dense(x, stage, what);
    Tensor y = Tensor::empty({rows_, c}, x.space());
    float* py = y.data();
    parallel_for(0, rows_, kSpmmRowBlock, [&](std::int64_t lo, std::int64_t hi) {
      spmm_rows(px, py, c, lo, hi, bias, act);
    });
    return y;
  }
  if (x.dim() != 3 || x.size(1) != cols_) {
    throw std::invalid_argument(std::string(what) + ": x must be [B, cols, C]");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t c = x.size(2);
  const float* px = detail::stage_dense(x, stage, what);
  Tensor y = Tensor::empty({b, rows_, c}, x.space());
  float* py = y.data();
  const std::int64_t in_stride = cols_ * c;
  const std::int64_t out_stride = rows_ * c;
  // Collapsed (batch x row-block) tasks: a batch of 1 still exposes
  // ceil(rows/kSpmmRowBlock) units of parallelism instead of one.
  const std::int64_t blocks = (rows_ + kSpmmRowBlock - 1) / kSpmmRowBlock;
  parallel_for(0, b * blocks, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const std::int64_t i = t / blocks;
      const std::int64_t r_lo = (t % blocks) * kSpmmRowBlock;
      const std::int64_t r_hi = std::min(rows_, r_lo + kSpmmRowBlock);
      spmm_rows(px + i * in_stride, py + i * out_stride, c, r_lo, r_hi, bias, act);
    }
  });
  return y;
}

Tensor Csr::spmm(const Tensor& x) const {
  if (x.dim() != 2) throw std::invalid_argument("Csr::spmm: x must be [cols, C]");
  return spmm_impl(x, nullptr, ops::Act::kIdentity, "Csr::spmm");
}

Tensor Csr::spmm_batched(const Tensor& x) const {
  if (x.dim() != 3) {
    throw std::invalid_argument("Csr::spmm_batched: x must be [B, cols, C]");
  }
  return spmm_impl(x, nullptr, ops::Act::kIdentity, "Csr::spmm_batched");
}

Tensor Csr::spmm_bias_act(const Tensor& x, const Tensor& bias, ops::Act act) const {
  const Tensor bc = bias.contiguous();
  const std::int64_t c = x.dim() >= 1 ? x.size(-1) : 0;
  if (bc.dim() != 1 || bc.size(0) != c) {
    throw std::invalid_argument("Csr::spmm_bias_act: bias must be [C]");
  }
  return spmm_impl(x, bc.data(), act, "Csr::spmm_bias_act");
}

Tensor Csr::spmm_batched_reference(const Tensor& x) const {
  if (x.dim() != 3 || x.size(1) != cols_) {
    throw std::invalid_argument("Csr::spmm_batched_reference: x must be [B, cols, C]");
  }
  const Tensor xc = x.contiguous();
  const std::int64_t b = x.size(0);
  const std::int64_t c = x.size(2);
  Tensor y = Tensor::empty({b, rows_, c}, x.space());
  const float* px = xc.data();
  float* py = y.data();
  const std::int64_t in_stride = cols_ * c;
  const std::int64_t out_stride = rows_ * c;
  parallel_for(0, b, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      spmm_into(px + i * in_stride, py + i * out_stride, c);
    }
  });
  return y;
}

}  // namespace pgti
