#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace pgti {

Csr Csr::from_coo(std::int64_t rows, std::int64_t cols, std::vector<CooEntry> entries) {
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols) {
      throw std::out_of_range("Csr::from_coo: entry out of bounds");
    }
  }
  std::sort(entries.begin(), entries.end(), [](const CooEntry& a, const CooEntry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    float acc = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      acc += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(acc);
    ++m.row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
    i = j;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    m.row_ptr_[r + 1] += m.row_ptr_[r];
  }
  return m;
}

Csr Csr::identity(std::int64_t n) {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) entries.push_back(CooEntry{i, i, 1.0f});
  return from_coo(n, n, std::move(entries));
}

Csr Csr::transpose() const {
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<std::size_t>(nnz()));
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      entries.push_back(CooEntry{col_idx_[static_cast<std::size_t>(k)], r,
                                 values_[static_cast<std::size_t>(k)]});
    }
  }
  return from_coo(cols_, rows_, std::move(entries));
}

std::vector<float> Csr::row_sums() const {
  std::vector<float> sums(static_cast<std::size_t>(rows_), 0.0f);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      sums[static_cast<std::size_t>(r)] += values_[static_cast<std::size_t>(k)];
    }
  }
  return sums;
}

Csr Csr::row_normalized() const {
  const std::vector<float> sums = row_sums();
  Csr out = *this;
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float s = sums[static_cast<std::size_t>(r)];
    if (s == 0.0f) continue;
    const float inv = 1.0f / s;
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      out.values_[static_cast<std::size_t>(k)] *= inv;
    }
  }
  return out;
}

Tensor Csr::to_dense() const {
  Tensor d = Tensor::zeros({rows_, cols_});
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      d.at({r, col_idx_[static_cast<std::size_t>(k)]}) =
          values_[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

void Csr::spmm_into(const float* x, float* y, std::int64_t c) const {
  for (std::int64_t r = 0; r < rows_; ++r) {
    float* yrow = y + r * c;
    std::fill(yrow, yrow + c, 0.0f);
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
         k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
      const float v = values_[static_cast<std::size_t>(k)];
      const float* xrow = x + col_idx_[static_cast<std::size_t>(k)] * c;
      for (std::int64_t j = 0; j < c; ++j) yrow[j] += v * xrow[j];
    }
  }
}

Tensor Csr::spmm(const Tensor& x) const {
  if (x.dim() != 2 || x.size(0) != cols_) {
    throw std::invalid_argument("Csr::spmm: x must be [cols, C]");
  }
  const Tensor xc = x.contiguous();
  Tensor y = Tensor::empty({rows_, x.size(1)}, x.space());
  const std::int64_t c = x.size(1);
  const float* px = xc.data();
  float* py = y.data();
  // Parallelize over row blocks: rows are independent.
  parallel_for(0, rows_, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      float* yrow = py + r * c;
      std::fill(yrow, yrow + c, 0.0f);
      for (std::int64_t k = row_ptr_[static_cast<std::size_t>(r)];
           k < row_ptr_[static_cast<std::size_t>(r) + 1]; ++k) {
        const float v = values_[static_cast<std::size_t>(k)];
        const float* xrow = px + col_idx_[static_cast<std::size_t>(k)] * c;
        for (std::int64_t j = 0; j < c; ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

Tensor Csr::spmm_batched(const Tensor& x) const {
  if (x.dim() != 3 || x.size(1) != cols_) {
    throw std::invalid_argument("Csr::spmm_batched: x must be [B, cols, C]");
  }
  const Tensor xc = x.contiguous();
  const std::int64_t b = x.size(0);
  const std::int64_t c = x.size(2);
  Tensor y = Tensor::empty({b, rows_, c}, x.space());
  const float* px = xc.data();
  float* py = y.data();
  const std::int64_t in_stride = cols_ * c;
  const std::int64_t out_stride = rows_ * c;
  parallel_for(0, b, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      spmm_into(px + i * in_stride, py + i * out_stride, c);
    }
  });
  return y;
}

}  // namespace pgti
