// Sensor-network construction and graph transforms.
//
// The paper encodes spatial structure by loading sensor coordinates and
// building a thresholded Gaussian-kernel weighted adjacency matrix
// (paper §2.1; DCRNN, Li et al. 2018).  Without access to the Caltrans
// metadata we synthesize a random geometric sensor layout — the
// standard substitution, since all experiments depend only on graph
// size/sparsity, not on real road topology.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "runtime/rng.h"

namespace pgti {

/// A synthetic sensor deployment: positions + weighted adjacency.
struct SensorNetwork {
  std::vector<float> x;  ///< sensor x coordinates in [0,1)
  std::vector<float> y;  ///< sensor y coordinates in [0,1)
  Csr adjacency;         ///< thresholded Gaussian-kernel weights (directed)
};

/// Options for building a synthetic sensor network.
struct SensorNetworkOptions {
  std::int64_t num_nodes = 207;
  int k_neighbors = 8;        ///< edges to nearest neighbours (directed)
  float kernel_sigma = 0.1f;  ///< Gaussian kernel bandwidth (same units as coords)
  float weight_threshold = 0.01f;  ///< drop edges with w < threshold
  std::uint64_t seed = 7;
};

/// Builds a random-geometric sensor network with Gaussian-kernel edge
/// weights w_ij = exp(-d_ij^2 / sigma^2), keeping each node's k nearest
/// neighbours plus a self-loop.
SensorNetwork build_sensor_network(const SensorNetworkOptions& options);

/// DCRNN dual random-walk diffusion supports: {D_O^{-1} W, D_I^{-1} W^T}.
/// The k=0 (identity) term is handled inside DiffusionConv.
std::vector<Csr> dual_random_walk_supports(const Csr& adjacency);

/// TGCN/GCN support: D^{-1/2} (W + I) D^{-1/2}.
Csr sym_norm_adjacency(const Csr& adjacency);

}  // namespace pgti
