// Weight initialization schemes.
#pragma once

#include <cmath>

#include "runtime/rng.h"
#include "tensor/tensor.h"

namespace pgti::nn {

/// Glorot/Xavier uniform: U(-s, s), s = sqrt(6 / (fan_in + fan_out)).
inline Tensor xavier_uniform(std::int64_t fan_in, std::int64_t fan_out, Rng& rng,
                             MemorySpaceId space = kHostSpace) {
  const float s = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform({fan_in, fan_out}, rng, -s, s, space);
}

}  // namespace pgti::nn
