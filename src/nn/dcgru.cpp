#include "nn/dcgru.h"

namespace pgti::nn {

DCGRUCell::DCGRUCell(std::int64_t input_dim, std::int64_t hidden_dim,
                     const GraphSupports& supports, int max_diffusion_steps, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      gates_(input_dim + hidden_dim, 2 * hidden_dim, supports, max_diffusion_steps, rng),
      candidate_(input_dim + hidden_dim, hidden_dim, supports, max_diffusion_steps, rng) {
  register_module("gates", &gates_);
  register_module("candidate", &candidate_);
}

Variable DCGRUCell::forward(const Variable& x, const Variable& h) const {
  Variable xh = ag::concat_lastdim({x, h});
  Variable ru = ag::sigmoid(gates_.forward(xh));
  Variable r = ag::slice_lastdim(ru, 0, hidden_);
  Variable u = ag::slice_lastdim(ru, hidden_, hidden_);
  Variable xc = ag::concat_lastdim({x, ag::mul(r, h)});
  Variable c = ag::tanh(candidate_.forward(xc));
  // h' = u*h + (1-u)*c  ==  c + u*(h - c)
  return ag::add(c, ag::mul(u, ag::sub(h, c)));
}

Variable DCGRUCell::forward(const Variable& x, const Variable& h,
                            const GraphSupports& supports) const {
  Variable xh = ag::concat_lastdim({x, h});
  Variable ru = ag::sigmoid(gates_.forward(xh, supports));
  Variable r = ag::slice_lastdim(ru, 0, hidden_);
  Variable u = ag::slice_lastdim(ru, hidden_, hidden_);
  Variable xc = ag::concat_lastdim({x, ag::mul(r, h)});
  Variable c = ag::tanh(candidate_.forward(xc, supports));
  return ag::add(c, ag::mul(u, ag::sub(h, c)));
}

}  // namespace pgti::nn
