#include "nn/dcgru.h"

#include <atomic>

namespace pgti::nn {
namespace {

std::atomic<bool> g_gru_fusion{true};

}  // namespace

bool gru_fusion_enabled() noexcept {
  return g_gru_fusion.load(std::memory_order_relaxed);
}

void set_gru_fusion_enabled(bool enabled) noexcept {
  g_gru_fusion.store(enabled, std::memory_order_relaxed);
}

DCGRUCell::DCGRUCell(std::int64_t input_dim, std::int64_t hidden_dim,
                     const GraphSupports& supports, int max_diffusion_steps, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      gates_(input_dim + hidden_dim, 2 * hidden_dim, supports, max_diffusion_steps, rng),
      candidate_(input_dim + hidden_dim, hidden_dim, supports, max_diffusion_steps, rng) {
  register_module("gates", &gates_);
  register_module("candidate", &candidate_);
}

Variable DCGRUCell::forward(const Variable& x, const Variable& h) const {
  if (!gru_fusion_enabled()) return forward_reference(x, h);
  Variable xh = ag::concat_lastdim({x, h});
  Variable pre = gates_.forward(xh);  // [B, N, 2H]
  auto [rh, u] = ag::gru_gates(pre, h);
  Variable xc = ag::concat_lastdim({x, rh});
  Variable c = candidate_.forward_act(xc, ops::Act::kTanh);
  return ag::gru_state(c, u, h);
}

Variable DCGRUCell::forward(const Variable& x, const Variable& h,
                            const GraphSupports& supports) const {
  if (!gru_fusion_enabled()) return forward_reference(x, h, supports);
  Variable xh = ag::concat_lastdim({x, h});
  Variable pre = gates_.forward(xh, supports);
  auto [rh, u] = ag::gru_gates(pre, h);
  Variable xc = ag::concat_lastdim({x, rh});
  Variable c = candidate_.forward_act(xc, supports, ops::Act::kTanh);
  return ag::gru_state(c, u, h);
}

Variable DCGRUCell::forward_reference(const Variable& x, const Variable& h) const {
  Variable xh = ag::concat_lastdim({x, h});
  Variable ru = ag::sigmoid(gates_.forward_reference(xh));
  Variable r = ag::slice_lastdim(ru, 0, hidden_);
  Variable u = ag::slice_lastdim(ru, hidden_, hidden_);
  Variable xc = ag::concat_lastdim({x, ag::mul(r, h)});
  Variable c = ag::tanh(candidate_.forward_reference(xc));
  // h' = u*h + (1-u)*c  ==  c + u*(h - c)
  return ag::add(c, ag::mul(u, ag::sub(h, c)));
}

Variable DCGRUCell::forward_reference(const Variable& x, const Variable& h,
                                      const GraphSupports& supports) const {
  Variable xh = ag::concat_lastdim({x, h});
  Variable ru = ag::sigmoid(gates_.forward_reference(xh, supports));
  Variable r = ag::slice_lastdim(ru, 0, hidden_);
  Variable u = ag::slice_lastdim(ru, hidden_, hidden_);
  Variable xc = ag::concat_lastdim({x, ag::mul(r, h)});
  Variable c = ag::tanh(candidate_.forward_reference(xc, supports));
  return ag::add(c, ag::mul(u, ag::sub(h, c)));
}

}  // namespace pgti::nn
