// Model checkpointing: save/load parameter tensors.
//
// Binary format: magic, count, then per parameter (name length, name,
// rank, dims, float32 data).  Loading matches by name and validates
// shapes, so checkpoints survive refactors that only reorder layers.
#pragma once

#include <string>

#include "nn/module.h"

namespace pgti::nn {

/// Writes every named parameter of `module` to `path`.
void save_checkpoint(const Module& module, const std::string& path);

/// Loads parameters by name into `module`.  Throws std::runtime_error
/// on missing names, shape mismatches, or a corrupt file.
void load_checkpoint(Module& module, const std::string& path);

}  // namespace pgti::nn
