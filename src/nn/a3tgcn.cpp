#include "nn/a3tgcn.h"

#include <stdexcept>

namespace pgti::nn {

A3TGCN::A3TGCN(const A3tgcnOptions& options, const GraphSupports& supports)
    : options_(options),
      rng_(options.seed),
      cell_(options.input_dim, options.hidden_dim, supports, /*max_diffusion_steps=*/1,
            rng_),
      att_score_(options.hidden_dim, options.attention_dim, rng_),
      att_vec_(options.attention_dim, 1, rng_),
      head_(options.hidden_dim, options.horizon, rng_) {
  register_module("cell", &cell_);
  register_module("att_score", &att_score_);
  register_module("att_vec", &att_vec_);
  register_module("head", &head_);
}

std::vector<Variable> A3TGCN::forward_seq(const Tensor& x) const {
  if (x.dim() != 4 || x.size(3) != options_.input_dim) {
    throw std::invalid_argument("A3TGCN: expected input [B, T, N, F]");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t t_steps = x.size(1);
  const std::int64_t n = x.size(2);
  const std::int64_t h_dim = options_.hidden_dim;

  // Stepwise TGCN encoding; keep every hidden state for attention.
  Variable h(Tensor::zeros({b, n, h_dim}, x.space()), false);
  std::vector<Variable> hidden_flat;  // each [B*N, H]
  std::vector<Variable> scores;       // each [B*N, 1]
  hidden_flat.reserve(static_cast<std::size_t>(t_steps));
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Variable xt(x.select(1, t).contiguous(), false);
    h = cell_.forward(xt, h);
    Variable flat = ag::reshape(h, {b * n, h_dim});
    hidden_flat.push_back(flat);
    scores.push_back(att_vec_.forward(att_score_.forward_act(flat, ops::Act::kTanh)));
  }

  // Global temporal attention: alpha = softmax_t(score_t).
  Variable score_mat = ag::concat_lastdim(scores);        // [B*N, T]
  Variable alpha = ag::softmax_lastdim(score_mat);        // [B*N, T]
  last_attention_ = alpha.value().clone();

  Variable context;  // sum_t alpha[:, t] * h_t  -> [B*N, H]
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Variable weighted =
        ag::mul_colvec(hidden_flat[static_cast<std::size_t>(t)],
                       ag::slice_lastdim(alpha, t, 1));
    context = t == 0 ? weighted : ag::add(context, weighted);
  }

  Variable preds = head_.forward(context);  // [B*N, horizon]
  std::vector<Variable> outputs;
  outputs.reserve(static_cast<std::size_t>(options_.horizon));
  for (std::int64_t t = 0; t < options_.horizon; ++t) {
    outputs.push_back(ag::reshape(ag::slice_lastdim(preds, t, 1), {b, n, 1}));
  }
  return outputs;
}

}  // namespace pgti::nn
