#include "nn/dcrnn.h"

#include <stdexcept>

namespace pgti::nn {
namespace {

// Wraps time step t of batch tensor x [B, T, N, F] as a constant
// Variable [B, N, F].
Variable step_input(const Tensor& x, std::int64_t t) {
  return Variable(x.select(1, t).contiguous(), /*requires_grad=*/false);
}

Variable zero_state(std::int64_t b, std::int64_t n, std::int64_t h, MemorySpaceId space) {
  return Variable(Tensor::zeros({b, n, h}, space), /*requires_grad=*/false);
}

}  // namespace

PGTDCRNN::PGTDCRNN(const PgtDcrnnOptions& options, const GraphSupports& supports)
    : options_(options),
      rng_(options.seed),
      cell_(options.input_dim, options.hidden_dim, supports, options.max_diffusion_steps,
            rng_),
      readout_(options.hidden_dim, options.output_dim, rng_) {
  register_module("cell", &cell_);
  register_module("readout", &readout_);
}

std::vector<Variable> PGTDCRNN::forward_seq(const Tensor& x) const {
  if (x.dim() != 4 || x.size(3) != options_.input_dim) {
    throw std::invalid_argument("PGTDCRNN: expected input [B, T, N, F]");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t t_steps = x.size(1);
  const std::int64_t n = x.size(2);

  Variable h = zero_state(b, n, options_.hidden_dim, x.space());
  std::vector<Variable> outputs;
  outputs.reserve(static_cast<std::size_t>(t_steps));
  for (std::int64_t t = 0; t < t_steps; ++t) {
    h = cell_.forward(step_input(x, t), h);
    Variable flat = ag::reshape(h, {b * n, options_.hidden_dim});
    Variable out = readout_.forward(flat);
    outputs.push_back(ag::reshape(out, {b, n, options_.output_dim}));
  }
  return outputs;
}

DCRNN::DCRNN(const DcrnnOptions& options, const GraphSupports& supports)
    : options_(options),
      rng_(options.seed),
      projection_(options.hidden_dim, options.output_dim, rng_) {
  for (int l = 0; l < options.num_layers; ++l) {
    const std::int64_t in_dim = l == 0 ? options.input_dim : options.hidden_dim;
    encoder_.push_back(std::make_unique<DCGRUCell>(
        in_dim, options.hidden_dim, supports, options.max_diffusion_steps, rng_));
    register_module("encoder" + std::to_string(l), encoder_.back().get());
  }
  for (int l = 0; l < options.num_layers; ++l) {
    const std::int64_t in_dim = l == 0 ? options.output_dim : options.hidden_dim;
    decoder_.push_back(std::make_unique<DCGRUCell>(
        in_dim, options.hidden_dim, supports, options.max_diffusion_steps, rng_));
    register_module("decoder" + std::to_string(l), decoder_.back().get());
  }
  register_module("projection", &projection_);
}

std::vector<Variable> DCRNN::forward_seq_scheduled(const Tensor& x, const Tensor& y,
                                                   float teacher_forcing_prob,
                                                   Rng& rng) const {
  if (y.dim() != 4 || y.size(1) < options_.horizon || y.size(3) != options_.output_dim) {
    throw std::invalid_argument("DCRNN: scheduled sampling targets [B, H, N, out]");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t t_steps = x.size(1);
  const std::int64_t n = x.size(2);

  std::vector<Variable> h;
  for (std::size_t l = 0; l < encoder_.size(); ++l) {
    h.push_back(zero_state(b, n, options_.hidden_dim, x.space()));
  }
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Variable input = step_input(x, t);
    for (std::size_t l = 0; l < encoder_.size(); ++l) {
      h[l] = encoder_[l]->forward(input, h[l]);
      input = h[l];
    }
  }

  std::vector<Variable> outputs;
  outputs.reserve(static_cast<std::size_t>(options_.horizon));
  Variable prev = zero_state(b, n, options_.output_dim, x.space());
  for (std::int64_t t = 0; t < options_.horizon; ++t) {
    Variable input = prev;
    for (std::size_t l = 0; l < decoder_.size(); ++l) {
      h[l] = decoder_[l]->forward(input, h[l]);
      input = h[l];
    }
    Variable flat = ag::reshape(h.back(), {b * n, options_.hidden_dim});
    Variable pred = ag::reshape(projection_.forward(flat), {b, n, options_.output_dim});
    outputs.push_back(pred);
    // Coin flip: feed ground truth (teacher forcing) or own prediction.
    if (t + 1 < options_.horizon && rng.uniform() < teacher_forcing_prob) {
      prev = Variable(y.select(1, t).contiguous(), /*requires_grad=*/false);
    } else {
      prev = pred;
    }
  }
  return outputs;
}

std::vector<Variable> DCRNN::forward_seq(const Tensor& x) const {
  if (x.dim() != 4 || x.size(3) != options_.input_dim) {
    throw std::invalid_argument("DCRNN: expected input [B, T, N, F]");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t t_steps = x.size(1);
  const std::int64_t n = x.size(2);

  // Encoder pass.
  std::vector<Variable> h;
  for (std::size_t l = 0; l < encoder_.size(); ++l) {
    h.push_back(zero_state(b, n, options_.hidden_dim, x.space()));
  }
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Variable input = step_input(x, t);
    for (std::size_t l = 0; l < encoder_.size(); ++l) {
      h[l] = encoder_[l]->forward(input, h[l]);
      input = h[l];
    }
  }

  // Decoder pass: starts from a GO symbol (zeros), consumes its own
  // previous prediction (no scheduled sampling).
  std::vector<Variable> outputs;
  outputs.reserve(static_cast<std::size_t>(options_.horizon));
  Variable prev = zero_state(b, n, options_.output_dim, x.space());
  for (std::int64_t t = 0; t < options_.horizon; ++t) {
    Variable input = prev;
    for (std::size_t l = 0; l < decoder_.size(); ++l) {
      h[l] = decoder_[l]->forward(input, h[l]);
      input = h[l];
    }
    Variable flat = ag::reshape(h.back(), {b * n, options_.hidden_dim});
    prev = ag::reshape(projection_.forward(flat), {b, n, options_.output_dim});
    outputs.push_back(prev);
  }
  return outputs;
}

}  // namespace pgti::nn
