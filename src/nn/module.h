// Neural-network module base: parameter registration and traversal.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace pgti::nn {

/// Base class for layers/models.  Subclasses register parameters (and
/// nested modules) in their constructors; parameters() flattens the
/// tree in registration order, which fixes the layout used by DDP
/// gradient buckets and optimizer state.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters (depth-first, registration order).
  std::vector<Variable> parameters() const;

  /// Named parameters with dotted paths ("encoder.gates.weight").
  std::vector<std::pair<std::string, Variable>> named_parameters() const;

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Total number of trainable scalars.
  std::int64_t parameter_count() const;

  /// Moves every parameter tensor to `space` (gradients are reset).
  /// Used to place a model replica in simulated-device memory; the
  /// caller is responsible for charging the transfer (SimDevice).
  void to_space(MemorySpaceId space);

 protected:
  Module() = default;

  /// Registers a trainable parameter initialized with `init`.
  Variable register_parameter(std::string name, Tensor init);

  /// Registers a nested module (must outlive this module).
  void register_module(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace pgti::nn
