#include "nn/layers.h"

#include <stdexcept>

#include "nn/init.h"

namespace pgti::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter("weight", xavier_uniform(in_features, out_features, rng));
  bias_ = register_parameter("bias", Tensor::zeros({out_features}));
}

Variable Linear::forward(const Variable& x) const {
  if (x.value().dim() != 2 || x.value().size(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [M, " + std::to_string(in_) +
                                "], got " + shape_to_string(x.value().shape()));
  }
  return ag::add_bias(ag::matmul(x, weight_), bias_);
}

GraphSupports GraphSupports::from(std::vector<Csr> supports) {
  GraphSupports out;
  out.transposed.reserve(supports.size());
  for (const Csr& s : supports) out.transposed.push_back(s.transpose());
  out.mats = std::move(supports);
  return out;
}

DiffusionConv::DiffusionConv(std::int64_t in_channels, std::int64_t out_channels,
                             const GraphSupports& supports, int max_diffusion_steps,
                             Rng& rng)
    : in_(in_channels),
      out_(out_channels),
      supports_(&supports),
      k_(max_diffusion_steps) {
  const std::int64_t num_matrices =
      1 + static_cast<std::int64_t>(supports.count()) * k_;
  weight_ = register_parameter(
      "weight", xavier_uniform(num_matrices * in_channels, out_channels, rng));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

Variable DiffusionConv::forward(const Variable& x) const {
  return forward(x, *supports_);
}

Variable DiffusionConv::forward(const Variable& x, const GraphSupports& supports) const {
  const Tensor& v = x.value();
  if (v.dim() != 3 || v.size(2) != in_) {
    throw std::invalid_argument("DiffusionConv::forward: expected [B, N, Cin]");
  }
  if (supports.count() != supports_->count()) {
    throw std::invalid_argument(
        "DiffusionConv::forward: support count differs from construction");
  }
  const std::int64_t b = v.size(0);
  const std::int64_t n = v.size(1);

  // K-hop propagation: x, P x, P^2 x, ... per support.
  std::vector<Variable> feats;
  feats.reserve(1 + supports.count() * static_cast<std::size_t>(k_));
  feats.push_back(x);
  for (std::size_t s = 0; s < supports.count(); ++s) {
    Variable cur = x;
    for (int hop = 0; hop < k_; ++hop) {
      cur = ag::spmm(supports.mats[s], supports.transposed[s], cur);
      feats.push_back(cur);
    }
  }
  Variable cat = ag::concat_lastdim(feats);  // [B, N, M*Cin]
  const std::int64_t total_c = cat.value().size(2);
  Variable flat = ag::reshape(cat, {b * n, total_c});
  Variable out = ag::add_bias(ag::matmul(flat, weight_), bias_);
  return ag::reshape(out, {b, n, out_});
}

}  // namespace pgti::nn
