#include "nn/layers.h"

#include <stdexcept>

#include "nn/init.h"

namespace pgti::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter("weight", xavier_uniform(in_features, out_features, rng));
  bias_ = register_parameter("bias", Tensor::zeros({out_features}));
}

Variable Linear::forward(const Variable& x) const {
  return forward_act(x, ops::Act::kIdentity);
}

Variable Linear::forward_act(const Variable& x, ops::Act act) const {
  if (x.value().dim() != 2 || x.value().size(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [M, " + std::to_string(in_) +
                                "], got " + shape_to_string(x.value().shape()));
  }
  return ag::matmul_bias_act(x, weight_, bias_, act);
}

Variable Linear::forward_reference(const Variable& x) const {
  if (x.value().dim() != 2 || x.value().size(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [M, " + std::to_string(in_) +
                                "], got " + shape_to_string(x.value().shape()));
  }
  return ag::add_bias(ag::matmul_reference(x, weight_), bias_);
}

GraphSupports GraphSupports::from(std::vector<Csr> supports) {
  GraphSupports out;
  out.transposed.reserve(supports.size());
  for (const Csr& s : supports) out.transposed.push_back(s.transpose());
  out.mats = std::move(supports);
  return out;
}

DiffusionConv::DiffusionConv(std::int64_t in_channels, std::int64_t out_channels,
                             const GraphSupports& supports, int max_diffusion_steps,
                             Rng& rng)
    : in_(in_channels),
      out_(out_channels),
      supports_(&supports),
      k_(max_diffusion_steps) {
  const std::int64_t num_matrices =
      1 + static_cast<std::int64_t>(supports.count()) * k_;
  weight_ = register_parameter(
      "weight", xavier_uniform(num_matrices * in_channels, out_channels, rng));
  bias_ = register_parameter("bias", Tensor::zeros({out_channels}));
}

namespace {

// Shared K-hop propagation + flatten for the DiffusionConv variants:
// x, P x, P^2 x, ... per support, concatenated to [B*N, M*Cin].
Variable diffusion_features(const Variable& x, const GraphSupports& supports, int k,
                            std::int64_t b, std::int64_t n) {
  std::vector<Variable> feats;
  feats.reserve(1 + supports.count() * static_cast<std::size_t>(k));
  feats.push_back(x);
  for (std::size_t s = 0; s < supports.count(); ++s) {
    Variable cur = x;
    for (int hop = 0; hop < k; ++hop) {
      cur = ag::spmm(supports.mats[s], supports.transposed[s], cur);
      feats.push_back(cur);
    }
  }
  Variable cat = ag::concat_lastdim(feats);  // [B, N, M*Cin]
  const std::int64_t total_c = cat.value().size(2);
  return ag::reshape(cat, {b * n, total_c});
}

}  // namespace

Variable DiffusionConv::forward(const Variable& x) const {
  return forward_act(x, *supports_, ops::Act::kIdentity);
}

Variable DiffusionConv::forward(const Variable& x, const GraphSupports& supports) const {
  return forward_act(x, supports, ops::Act::kIdentity);
}

Variable DiffusionConv::forward_act(const Variable& x, ops::Act act) const {
  return forward_act(x, *supports_, act);
}

Variable DiffusionConv::forward_act(const Variable& x, const GraphSupports& supports,
                                    ops::Act act) const {
  const Tensor& v = x.value();
  if (v.dim() != 3 || v.size(2) != in_) {
    throw std::invalid_argument("DiffusionConv::forward: expected [B, N, Cin]");
  }
  if (supports.count() != supports_->count()) {
    throw std::invalid_argument(
        "DiffusionConv::forward: support count differs from construction");
  }
  const std::int64_t b = v.size(0);
  const std::int64_t n = v.size(1);
  Variable flat = diffusion_features(x, supports, k_, b, n);
  // The activation commutes with the trailing reshape, so applying it
  // in the matmul epilogue is bit-identical to act(reshape(...)).
  Variable out = ag::matmul_bias_act(flat, weight_, bias_, act);
  return ag::reshape(out, {b, n, out_});
}

Variable DiffusionConv::forward_reference(const Variable& x) const {
  return forward_reference(x, *supports_);
}

Variable DiffusionConv::forward_reference(const Variable& x,
                                          const GraphSupports& supports) const {
  const Tensor& v = x.value();
  if (v.dim() != 3 || v.size(2) != in_) {
    throw std::invalid_argument("DiffusionConv::forward: expected [B, N, Cin]");
  }
  if (supports.count() != supports_->count()) {
    throw std::invalid_argument(
        "DiffusionConv::forward: support count differs from construction");
  }
  const std::int64_t b = v.size(0);
  const std::int64_t n = v.size(1);
  Variable flat = diffusion_features(x, supports, k_, b, n);
  Variable out = ag::add_bias(ag::matmul_reference(flat, weight_), bias_);
  return ag::reshape(out, {b, n, out_});
}

}  // namespace pgti::nn
