#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace pgti::nn {
namespace {

constexpr std::uint32_t kMagic = 0x50475449;  // "PGTI"

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return v;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path + " for writing");
  const auto named = module.named_parameters();
  std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  write_u64(os, named.size());
  for (const auto& [name, param] : named) {
    write_u64(os, name.size());
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    const Tensor value = param.value().contiguous();
    write_u64(os, static_cast<std::uint64_t>(value.dim()));
    for (int d = 0; d < value.dim(); ++d) {
      write_u64(os, static_cast<std::uint64_t>(value.size(d)));
    }
    os.write(reinterpret_cast<const char*>(value.data()),
             static_cast<std::streamsize>(value.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) throw std::runtime_error("checkpoint: bad magic in " + path);

  std::map<std::string, Variable> params;
  for (auto& [name, p] : module.named_parameters()) params.emplace(name, p);

  const std::uint64_t count = read_u64(is);
  std::uint64_t matched = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    const std::uint64_t rank = read_u64(is);
    Shape shape;
    for (std::uint64_t d = 0; d < rank; ++d) {
      shape.push_back(static_cast<std::int64_t>(read_u64(is)));
    }
    const std::int64_t numel = shape_numel(shape);
    auto it = params.find(name);
    if (it == params.end()) {
      throw std::runtime_error("checkpoint: unknown parameter '" + name + "'");
    }
    if (it->second.value().shape() != shape) {
      throw std::runtime_error("checkpoint: shape mismatch for '" + name + "'");
    }
    Tensor staged = Tensor::empty(shape);
    is.read(reinterpret_cast<char*>(staged.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated tensor data");
    it->second.mutable_value().copy_from(staged);
    ++matched;
  }
  if (matched != params.size()) {
    throw std::runtime_error("checkpoint: file is missing parameters");
  }
}

}  // namespace pgti::nn
