#include "nn/module.h"

namespace pgti::nn {

Variable Module::register_parameter(std::string name, Tensor init) {
  Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::register_module(std::string name, Module* child) {
  children_.emplace_back(std::move(name), child);
}

std::vector<Variable> Module::parameters() const {
  std::vector<Variable> out;
  for (const auto& [name, p] : params_) out.push_back(p);
  for (const auto& [name, child] : children_) {
    for (Variable& v : child->parameters()) out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, child] : children_) {
    for (auto& [sub, v] : child->named_parameters()) {
      out.emplace_back(name + "." + sub, v);
    }
  }
  return out;
}

void Module::zero_grad() {
  for (Variable& p : parameters()) p.zero_grad();
}

std::int64_t Module::parameter_count() const {
  std::int64_t n = 0;
  for (const Variable& p : parameters()) n += p.value().numel();
  return n;
}

void Module::to_space(MemorySpaceId space) {
  for (Variable p : parameters()) {
    if (p.value().space() != space) {
      p.mutable_value() = p.value().to(space);
      if (p.has_grad()) p.grad() = Tensor::zeros(p.value().shape(), space);
    }
  }
}

}  // namespace pgti::nn
