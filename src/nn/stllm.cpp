#include "nn/stllm.h"

#include <stdexcept>

#include "nn/init.h"
#include "runtime/thread_pool.h"

namespace pgti::nn {
namespace {

// Custom autograd op: tokens[b*N + n, :] += emb[n, :].
Variable add_node_embedding(const Variable& tokens, const Variable& emb,
                            std::int64_t batch) {
  const Tensor& vt = tokens.value();
  const Tensor& ve = emb.value();
  const std::int64_t n = ve.size(0);
  const std::int64_t d = ve.size(1);
  if (vt.dim() != 2 || vt.size(0) != batch * n || vt.size(1) != d) {
    throw std::invalid_argument("add_node_embedding: shape mismatch");
  }
  Tensor out = Tensor::empty(vt.shape(), vt.space());
  {
    const float* pt = vt.data();
    const float* pe = ve.data();
    float* po = out.data();
    parallel_for(0, batch * n, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t r = lo; r < hi; ++r) {
        const float* erow = pe + (r % n) * d;
        const float* trow = pt + r * d;
        float* orow = po + r * d;
        for (std::int64_t j = 0; j < d; ++j) orow[j] = trow[j] + erow[j];
      }
    });
  }
  auto it = tokens.impl();
  auto ie = emb.impl();
  return Variable::make_node(out, {tokens, emb}, [it, ie, batch, n, d](Variable::Impl& node) {
    Variable::accumulate(it, node.grad);
    // d_emb[n] = sum_b grad[b*N + n]
    Tensor de = Tensor::zeros({n, d}, node.grad.space());
    const float* pg = node.grad.data();
    float* pd = de.data();
    for (std::int64_t r = 0; r < batch * n; ++r) {
      const float* grow = pg + r * d;
      float* drow = pd + (r % n) * d;
      for (std::int64_t j = 0; j < d; ++j) drow[j] += grow[j];
    }
    Variable::accumulate(ie, de);
  });
}

// Rearranges x [B, T, N, F] into per-node windows [B*N, T*F] (constant
// input transform; no gradient flows into the raw data).
Tensor window_tokens(const Tensor& x) {
  const std::int64_t b = x.size(0), t = x.size(1), n = x.size(2), f = x.size(3);
  Tensor out = Tensor::empty({b * n, t * f}, x.space());
  const Tensor xc = x.contiguous();
  const float* px = xc.data();
  float* po = out.data();
  parallel_for(0, b * n, 16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const std::int64_t bi = r / n;
      const std::int64_t ni = r % n;
      float* orow = po + r * (t * f);
      for (std::int64_t ti = 0; ti < t; ++ti) {
        const float* src = px + ((bi * t + ti) * n + ni) * f;
        for (std::int64_t fi = 0; fi < f; ++fi) orow[ti * f + fi] = src[fi];
      }
    }
  });
  return out;
}

}  // namespace

STLLM::Block::Block(std::int64_t dim, std::int64_t ffn_dim, Rng& rng)
    : q(dim, dim, rng),
      k(dim, dim, rng),
      v(dim, dim, rng),
      proj(dim, dim, rng),
      ffn1(dim, ffn_dim, rng),
      ffn2(ffn_dim, dim, rng) {
  ln1_gamma = register_parameter("ln1_gamma", Tensor::ones({dim}));
  ln1_beta = register_parameter("ln1_beta", Tensor::zeros({dim}));
  ln2_gamma = register_parameter("ln2_gamma", Tensor::ones({dim}));
  ln2_beta = register_parameter("ln2_beta", Tensor::zeros({dim}));
  register_module("q", &q);
  register_module("k", &k);
  register_module("v", &v);
  register_module("proj", &proj);
  register_module("ffn1", &ffn1);
  register_module("ffn2", &ffn2);
}

Variable STLLM::Block::forward(const Variable& x, std::int64_t batch,
                               std::int64_t tokens) const {
  // Pre-LN attention with residual.
  Variable normed = ag::layer_norm(x, ln1_gamma, ln1_beta);
  Variable attn = ag::batched_attention(q.forward(normed), k.forward(normed),
                                        v.forward(normed), batch, tokens);
  Variable x1 = ag::add(x, proj.forward(attn));
  // Pre-LN FFN with residual.
  Variable normed2 = ag::layer_norm(x1, ln2_gamma, ln2_beta);
  Variable f = ffn2.forward(ffn1.forward_act(normed2, ops::Act::kRelu));
  return ag::add(x1, f);
}

STLLM::STLLM(const StllmOptions& options)
    : options_(options),
      rng_(options.seed),
      token_embed_(options.input_steps * options.input_dim, options.model_dim, rng_),
      head_(options.model_dim, options.horizon, rng_) {
  node_embed_ = register_parameter(
      "node_embed",
      Tensor::randn({options.num_nodes, options.model_dim}, rng_, 0.02f));
  register_module("token_embed", &token_embed_);
  for (int l = 0; l < options.num_layers; ++l) {
    blocks_.push_back(std::make_unique<Block>(options.model_dim, options.ffn_dim, rng_));
    register_module("block" + std::to_string(l), blocks_.back().get());
  }
  register_module("head", &head_);
}

std::vector<Variable> STLLM::forward_seq(const Tensor& x) const {
  if (x.dim() != 4 || x.size(1) != options_.input_steps ||
      x.size(2) != options_.num_nodes || x.size(3) != options_.input_dim) {
    throw std::invalid_argument("STLLM: expected input [B, T, N, F] matching options");
  }
  const std::int64_t b = x.size(0);
  const std::int64_t n = options_.num_nodes;

  Variable tokens(window_tokens(x), false);           // [B*N, T*F]
  Variable h = token_embed_.forward(tokens);          // [B*N, D]
  h = add_node_embedding(h, node_embed_, b);
  for (const auto& block : blocks_) h = block->forward(h, b, n);
  Variable preds = head_.forward(h);                  // [B*N, horizon]

  std::vector<Variable> outputs;
  outputs.reserve(static_cast<std::size_t>(options_.horizon));
  for (std::int64_t t = 0; t < options_.horizon; ++t) {
    outputs.push_back(ag::reshape(ag::slice_lastdim(preds, t, 1), {b, n, 1}));
  }
  return outputs;
}

}  // namespace pgti::nn
