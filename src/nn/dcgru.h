// Diffusion-convolutional GRU cell (the DCRNN building block).
#pragma once

#include "nn/layers.h"

namespace pgti::nn {

/// Global toggle for the fused DCGRU compute path (default on).  Off
/// routes forward() through forward_reference() — the pre-optimization
/// kernels — so benches can measure the fusion speedup in-run and tests
/// can assert bit-identical parity.  Losses are identical either way.
bool gru_fusion_enabled() noexcept;
void set_gru_fusion_enabled(bool enabled) noexcept;

/// GRU cell whose input/hidden transforms are diffusion convolutions
/// over the sensor graph (Li et al. 2018, Eq. 3):
///   r,u = sigmoid(DConv([x, h]))
///   c   = tanh(DConv([x, r*h]))
///   h'  = u*h + (1-u)*c
/// The default path fuses the gate sigmoids + r*h, the candidate tanh
/// (in the DConv projection epilogue), and the state update into three
/// kernel passes (ag::gru_gates / forward_act / ag::gru_state); values
/// and gradients are bit-identical to the reference composition
/// (DESIGN.md §14).
class DCGRUCell : public Module {
 public:
  DCGRUCell(std::int64_t input_dim, std::int64_t hidden_dim,
            const GraphSupports& supports, int max_diffusion_steps, Rng& rng);

  /// x [B, N, input_dim], h [B, N, hidden_dim] -> new hidden state.
  Variable forward(const Variable& x, const Variable& h) const;

  /// Dynamic-topology step: uses `supports` for this step's diffusion
  /// (paper §7's dynamic graphs with temporal signal).
  Variable forward(const Variable& x, const Variable& h,
                   const GraphSupports& supports) const;

  /// Pre-optimization composition (unfused slices/elementwise chain and
  /// reference matmul kernels); baseline for parity tests and benches.
  Variable forward_reference(const Variable& x, const Variable& h) const;
  Variable forward_reference(const Variable& x, const Variable& h,
                             const GraphSupports& supports) const;

  std::int64_t hidden_dim() const noexcept { return hidden_; }
  std::int64_t input_dim() const noexcept { return input_; }

 private:
  std::int64_t input_;
  std::int64_t hidden_;
  DiffusionConv gates_;      // -> [B, N, 2H] (r, u fused)
  DiffusionConv candidate_;  // -> [B, N, H]
};

}  // namespace pgti::nn
