// Diffusion-convolutional GRU cell (the DCRNN building block).
#pragma once

#include "nn/layers.h"

namespace pgti::nn {

/// GRU cell whose input/hidden transforms are diffusion convolutions
/// over the sensor graph (Li et al. 2018, Eq. 3):
///   r,u = sigmoid(DConv([x, h]))
///   c   = tanh(DConv([x, r*h]))
///   h'  = u*h + (1-u)*c
class DCGRUCell : public Module {
 public:
  DCGRUCell(std::int64_t input_dim, std::int64_t hidden_dim,
            const GraphSupports& supports, int max_diffusion_steps, Rng& rng);

  /// x [B, N, input_dim], h [B, N, hidden_dim] -> new hidden state.
  Variable forward(const Variable& x, const Variable& h) const;

  /// Dynamic-topology step: uses `supports` for this step's diffusion
  /// (paper §7's dynamic graphs with temporal signal).
  Variable forward(const Variable& x, const Variable& h,
                   const GraphSupports& supports) const;

  std::int64_t hidden_dim() const noexcept { return hidden_; }
  std::int64_t input_dim() const noexcept { return input_; }

 private:
  std::int64_t input_;
  std::int64_t hidden_;
  DiffusionConv gates_;      // -> [B, N, 2H] (r, u fused)
  DiffusionConv candidate_;  // -> [B, N, H]
};

}  // namespace pgti::nn
