// Core layers: Linear and graph diffusion convolution.
#pragma once

#include <vector>

#include "autograd/ops.h"
#include "graph/csr.h"
#include "nn/module.h"
#include "runtime/rng.h"

namespace pgti::nn {

/// Fully connected layer: y = x W + b for x [M, in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Variable forward(const Variable& x) const;
  /// Fused y = act(x W + b): the activation runs in the matmul store
  /// epilogue — one tape node, no intermediate tensors.  Bit-identical
  /// to act(forward(x)).
  Variable forward_act(const Variable& x, ops::Act act) const;
  /// Pre-optimization composition add_bias(matmul_reference(x, W), b);
  /// baseline for parity tests and in-run before/after benches.
  Variable forward_reference(const Variable& x) const;

  std::int64_t in_features() const noexcept { return in_; }
  std::int64_t out_features() const noexcept { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Variable weight_;
  Variable bias_;
};

/// Graph supports prepared for diffusion convolution: each transition
/// matrix is stored together with its transpose (for SpMM backward).
struct GraphSupports {
  std::vector<Csr> mats;
  std::vector<Csr> transposed;

  static GraphSupports from(std::vector<Csr> supports);
  std::size_t count() const noexcept { return mats.size(); }
};

/// Diffusion convolution (DCRNN, Li et al. 2018):
///   out = sum_{s in supports} sum_{k=1..K} (P_s^k x) W_{s,k}  +  x W_0  + b
/// computed by concatenating the K-hop propagated features and applying
/// one fused weight matrix.  Input [B, N, Cin] -> output [B, N, Cout].
class DiffusionConv : public Module {
 public:
  DiffusionConv(std::int64_t in_channels, std::int64_t out_channels,
                const GraphSupports& supports, int max_diffusion_steps, Rng& rng);

  Variable forward(const Variable& x) const;

  /// Forward with per-call graph supports (dynamic topology, paper §7
  /// future work).  `supports` must have the same count as the
  /// constructor's supports (the weight layout depends on it).
  Variable forward(const Variable& x, const GraphSupports& supports) const;

  /// Fused out = act(DConv(x)): the activation runs in the projection
  /// matmul's store epilogue.  Bit-identical to act(forward(x)).
  Variable forward_act(const Variable& x, ops::Act act) const;
  Variable forward_act(const Variable& x, const GraphSupports& supports,
                       ops::Act act) const;

  /// Pre-optimization composition (reference matmul + separate bias
  /// add); baseline for parity tests and in-run before/after benches.
  Variable forward_reference(const Variable& x) const;
  Variable forward_reference(const Variable& x, const GraphSupports& supports) const;

  std::int64_t in_channels() const noexcept { return in_; }
  std::int64_t out_channels() const noexcept { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  const GraphSupports* supports_;  // not owned; outlives the model
  int k_;
  Variable weight_;  // [(1 + S*K) * Cin, Cout]
  Variable bias_;    // [Cout]
};

}  // namespace pgti::nn
