// ST-LLM surrogate (Liu et al. 2024), used by the paper's broader
// applicability scaling study (§5.5, Fig. 10).
//
// The real ST-LLM embeds spatial-temporal context into tokens consumed
// by a (partially frozen) GPT-2.  Per DESIGN.md's substitution table we
// reproduce the *data path*, not the pretrained weights: one token per
// graph node (embedding of that node's input window plus a learned
// node embedding), a stack of pre-LN transformer encoder blocks with
// multi-head-free scaled-dot-product self-attention across the node
// tokens of each sample, and a regression head that emits the whole
// prediction horizon.
#pragma once

#include <memory>
#include <vector>

#include "nn/dcrnn.h"

namespace pgti::nn {

struct StllmOptions {
  std::int64_t num_nodes = 0;
  std::int64_t input_dim = 2;
  std::int64_t input_steps = 12;  ///< window length T
  std::int64_t model_dim = 64;
  std::int64_t ffn_dim = 128;
  int num_layers = 2;
  std::int64_t horizon = 12;  ///< prediction steps
  std::uint64_t seed = 42;
};

class STLLM : public SeqModel {
 public:
  explicit STLLM(const StllmOptions& options);

  std::vector<Variable> forward_seq(const Tensor& x) const override;
  std::int64_t output_dim() const override { return 1; }
  std::int64_t output_steps(std::int64_t /*input_steps*/) const override {
    return options_.horizon;
  }

 private:
  struct Block : public Module {
    Block(std::int64_t dim, std::int64_t ffn_dim, Rng& rng);
    Variable forward(const Variable& x, std::int64_t batch, std::int64_t tokens) const;

    Variable ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
    Linear q, k, v, proj, ffn1, ffn2;
  };

  StllmOptions options_;
  Rng rng_;
  Linear token_embed_;  // T*F -> D
  Variable node_embed_;  // [N, D] learned spatial embedding
  std::vector<std::unique_ptr<Block>> blocks_;
  Linear head_;  // D -> horizon
};

}  // namespace pgti::nn
