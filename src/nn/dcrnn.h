// DCRNN models.
//
// Two variants, mirroring the paper's case study (§3):
//  * DCRNN       — the original heavyweight encoder-decoder of Li et
//                  al. (2018): stacked DCGRU encoder, stacked DCGRU
//                  decoder fed its own predictions, projection head.
//  * PGTDCRNN    — the lightweight PyTorch-Geometric-Temporal variant:
//                  a single DCGRU layer applied stepwise with a
//                  maintained hidden state and a per-step linear
//                  readout, producing a prediction sequence of equal
//                  length to the input.
#pragma once

#include <vector>

#include "nn/dcgru.h"

namespace pgti::nn {

/// Common interface for sequence-to-sequence spatiotemporal models:
/// input [B, T, N, F] -> per-step predictions, each [B, N, output_dim].
class SeqModel : public Module {
 public:
  virtual std::vector<Variable> forward_seq(const Tensor& x) const = 0;
  virtual std::int64_t output_dim() const = 0;
  /// Number of prediction steps produced for an input with T steps.
  virtual std::int64_t output_steps(std::int64_t input_steps) const = 0;
};

struct PgtDcrnnOptions {
  std::int64_t num_nodes = 0;
  std::int64_t input_dim = 2;
  std::int64_t hidden_dim = 32;
  std::int64_t output_dim = 1;
  int max_diffusion_steps = 2;
  std::uint64_t seed = 42;
};

/// Lightweight PGT-DCRNN (paper §3): one DCGRU + stepwise readout.
class PGTDCRNN : public SeqModel {
 public:
  PGTDCRNN(const PgtDcrnnOptions& options, const GraphSupports& supports);

  std::vector<Variable> forward_seq(const Tensor& x) const override;
  std::int64_t output_dim() const override { return options_.output_dim; }
  std::int64_t output_steps(std::int64_t input_steps) const override {
    return input_steps;
  }

 private:
  PgtDcrnnOptions options_;
  Rng rng_;
  DCGRUCell cell_;
  Linear readout_;
};

struct DcrnnOptions {
  std::int64_t num_nodes = 0;
  std::int64_t input_dim = 2;
  std::int64_t hidden_dim = 32;
  std::int64_t output_dim = 1;
  std::int64_t horizon = 12;  ///< decoder steps
  int num_layers = 2;
  int max_diffusion_steps = 2;
  std::uint64_t seed = 42;
};

/// Full encoder-decoder DCRNN (Li et al. 2018), without scheduled
/// sampling (the decoder always consumes its own previous prediction).
class DCRNN : public SeqModel {
 public:
  DCRNN(const DcrnnOptions& options, const GraphSupports& supports);

  std::vector<Variable> forward_seq(const Tensor& x) const override;

  /// Training-time forward with scheduled sampling (Li et al. 2018):
  /// at each decoder step the ground-truth previous target `y`
  /// [B, horizon, N, output_dim] replaces the model's own prediction
  /// with probability `teacher_forcing_prob`.
  std::vector<Variable> forward_seq_scheduled(const Tensor& x, const Tensor& y,
                                              float teacher_forcing_prob,
                                              Rng& rng) const;
  std::int64_t output_dim() const override { return options_.output_dim; }
  std::int64_t output_steps(std::int64_t /*input_steps*/) const override {
    return options_.horizon;
  }

 private:
  DcrnnOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<DCGRUCell>> encoder_;
  std::vector<std::unique_ptr<DCGRUCell>> decoder_;
  Linear projection_;
};

}  // namespace pgti::nn
