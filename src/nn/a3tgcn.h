// A3T-GCN: Attention Temporal Graph Convolutional Network (Zhu et al.
// 2020), used by the paper's broader-applicability study (§5.5,
// Table 6).  A TGCN cell (GCN-gated GRU over the symmetric normalized
// adjacency) runs stepwise over the input window; a global temporal
// attention layer pools the hidden-state sequence into a context that
// a linear head maps to the prediction horizon.
#pragma once

#include <vector>

#include "nn/dcrnn.h"

namespace pgti::nn {

struct A3tgcnOptions {
  std::int64_t num_nodes = 0;
  std::int64_t input_dim = 2;
  std::int64_t hidden_dim = 32;
  std::int64_t attention_dim = 16;
  std::int64_t horizon = 12;  ///< prediction steps
  std::uint64_t seed = 42;
};

class A3TGCN : public SeqModel {
 public:
  /// `supports` should hold the single symmetric-normalized adjacency
  /// (sym_norm_adjacency); the cell then reduces to a TGCN cell.
  A3TGCN(const A3tgcnOptions& options, const GraphSupports& supports);

  std::vector<Variable> forward_seq(const Tensor& x) const override;
  std::int64_t output_dim() const override { return 1; }
  std::int64_t output_steps(std::int64_t /*input_steps*/) const override {
    return options_.horizon;
  }

  /// Attention weights from the most recent forward (for tests:
  /// each row sums to 1).
  const Tensor& last_attention() const noexcept { return last_attention_; }

 private:
  A3tgcnOptions options_;
  Rng rng_;
  DCGRUCell cell_;     // K=1 over sym-norm adjacency == TGCN cell
  Linear att_score_;   // H -> attention_dim
  Linear att_vec_;     // attention_dim -> 1
  Linear head_;        // H -> horizon
  mutable Tensor last_attention_;
};

}  // namespace pgti::nn
