// Copy-on-publish model snapshots (DESIGN.md §17).
//
// Serving must never read parameters the training thread is mutating,
// and training must never stall on a serving-side lock.  The contract
// here is copy-on-publish: at a publish point (end of a training
// epoch, via EpochEngine::Hooks::on_epoch_end) the trainer's live
// parameters are deep-copied into a freshly built model replica, the
// replica is frozen behind a shared_ptr<const ModelSnapshot>, and the
// slot's current pointer swaps to it.  The hot paths on both sides are
// lock-free: the training thread keeps stepping its live model, and a
// serving batch that already captured a snapshot pointer computes on
// an object nobody will ever write again.  In-flight requests finish
// on the snapshot they captured; requests that arrive after a publish
// see the new version — MSPipe-style bounded staleness, with the
// version number making the staleness observable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/config.h"
#include "core/model_factory.h"
#include "data/dataset_spec.h"
#include "graph/spatial.h"
#include "nn/module.h"

namespace pgti::serve {

/// An immutable, host-resident replica of the model at one publish
/// point.  The bundle's graph supports travel with it, so a snapshot
/// is self-contained: forwards against it touch no trainer state.
class ModelSnapshot {
 public:
  ModelSnapshot(core::ModelBundle bundle, std::uint64_t version, int epoch)
      : bundle_(std::move(bundle)), version_(version), epoch_(epoch) {}

  const nn::SeqModel& model() const noexcept { return *bundle_.model; }
  /// Monotonic publish counter (1 = first publish).
  std::uint64_t version() const noexcept { return version_; }
  /// Training epoch whose end published this snapshot.
  int epoch() const noexcept { return epoch_; }

 private:
  core::ModelBundle bundle_;
  std::uint64_t version_;
  int epoch_;
};

/// The single-writer publish slot between a live trainer and any
/// number of serving readers.  publish() runs on the training thread;
/// current() may be called from any thread at any time and returns the
/// latest snapshot (nullptr before the first publish).
class SnapshotSlot {
 public:
  /// Model-construction recipe: each publish builds a fresh replica
  /// with exactly these arguments (make_model is deterministic in
  /// them) and then overwrites its parameters from the live model.
  /// `net` is copied, so the slot outlives the caller's network.
  SnapshotSlot(core::ModelKind kind, data::DatasetSpec spec, SensorNetwork net,
               std::int64_t hidden_dim, int diffusion_steps, int num_layers,
               std::uint64_t seed);

  /// Deep-copies `live`'s parameters (any memory space; the copies
  /// land host-resident) into a fresh replica and atomically installs
  /// it as the current snapshot.  `live`'s parameter list must match
  /// the construction recipe — publishing a different architecture
  /// throws std::invalid_argument and leaves the slot unchanged.
  /// Returns the published snapshot.
  std::shared_ptr<const ModelSnapshot> publish(const nn::Module& live, int epoch);

  /// Latest published snapshot (nullptr before the first publish).
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Version of the current snapshot (0 before the first publish).
  std::uint64_t version() const;

 private:
  core::ModelKind kind_;
  data::DatasetSpec spec_;
  SensorNetwork net_;
  std::int64_t hidden_dim_;
  int diffusion_steps_;
  int num_layers_;
  std::uint64_t seed_;

  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_;
  std::uint64_t next_version_ = 1;
};

}  // namespace pgti::serve
