#include "serve/request_queue.h"

#include <stdexcept>
#include <utility>

namespace pgti::serve {

RequestQueue::RequestQueue(std::int64_t capacity) : capacity_(capacity) {
  if (capacity < 1) {
    throw std::invalid_argument("RequestQueue: capacity must be >= 1");
  }
}

void RequestQueue::push(PendingRequest&& pending) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) throw EngineStoppedError();
    if (static_cast<std::int64_t>(q_.size()) >= capacity_) throw QueueFullError();
    q_.push_back(std::move(pending));
  }
  cv_.notify_all();
}

bool RequestQueue::pop(PendingRequest& out) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return false;  // closed and drained
  out = std::move(q_.front());
  q_.pop_front();
  return true;
}

bool RequestQueue::pop_matching(int horizon,
                                std::chrono::steady_clock::time_point until,
                                PendingRequest& out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (!q_.empty()) {
      if (q_.front().request.horizon != horizon) return false;
      out = std::move(q_.front());
      q_.pop_front();
      return true;
    }
    if (closed_) return false;  // drain mode: never wait on an empty backlog
    // wait_until with a past deadline returns immediately, so the
    // head-first check above is what gives window 0 its semantics.
    if (cv_.wait_until(lk, until) == std::cv_status::timeout && q_.empty()) {
      return false;
    }
  }
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(q_.size());
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace pgti::serve
