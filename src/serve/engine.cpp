#include "serve/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace pgti::serve {
namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

InferenceEngine::InferenceEngine(SnapshotSlot& slot, data::SnapshotProvider& provider,
                                 int rank, EngineConfig config)
    : slot_(&slot),
      provider_(&provider),
      rank_(rank),
      cfg_(config),
      queue_(config.queue_capacity),
      head_(provider.num_snapshots() - 1) {
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("InferenceEngine: max_batch must be >= 1");
  }
  if (cfg_.hot_window < 0) {
    throw std::invalid_argument("InferenceEngine: hot_window must be >= 0");
  }
}

InferenceEngine::~InferenceEngine() { stop(); }

void InferenceEngine::start() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (stopped_) throw EngineStoppedError();
  if (started_) return;
  started_ = true;
  worker_ = std::thread([this] { worker_loop(); });
}

void InferenceEngine::stop() {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  if (started_) {
    // Drain mode: pops keep delivering the backlog, windows collapse
    // (a closed empty queue never waits), so the worker finishes every
    // queued future and exits on its own.
    worker_.join();
  } else {
    // Never started: drain the backlog inline, deterministically, on
    // the calling thread — same loop, same results.
    worker_loop();
  }
}

std::future<Forecast> InferenceEngine::submit(ForecastRequest request) {
  if (request.horizon < 1) {
    throw std::invalid_argument("InferenceEngine: horizon must be >= 1");
  }
  PendingRequest pending;
  pending.request = std::move(request);
  pending.submitted_at = std::chrono::steady_clock::now();
  std::future<Forecast> fut = pending.promise.get_future();
  try {
    queue_.push(std::move(pending));
  } catch (const QueueFullError&) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.rejected;
    throw;
  }
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.submitted;
  return fut;
}

void InferenceEngine::advance_to(std::int64_t latest) {
  if (latest < 0 || latest >= provider_->num_snapshots()) {
    throw std::out_of_range("InferenceEngine: snapshot " + std::to_string(latest) +
                            " outside [0, " +
                            std::to_string(provider_->num_snapshots()) + ")");
  }
  head_.store(latest);
  announce_hot_window({});
}

ServeStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void InferenceEngine::announce_hot_window(const std::vector<std::int64_t>& first) {
  if (cfg_.hot_window == 0 && first.empty()) return;
  std::vector<std::int64_t> sched = first;
  const std::int64_t head = head_.load();
  // Newest first: schedule position encodes retention priority for the
  // provider's schedule-aware eviction, so the freshest windows always
  // outlive stale residue.
  for (std::int64_t i = 0; i < cfg_.hot_window; ++i) {
    const std::int64_t id = head - i;
    if (id < 0) break;
    sched.push_back(id);
  }
  provider_->announce_schedule(rank_, sched);
}

void InferenceEngine::fail_request(PendingRequest& pending, std::exception_ptr error) {
  pending.promise.set_exception(std::move(error));
}

void InferenceEngine::worker_loop() {
  PendingRequest head;
  while (queue_.pop(head)) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= head.request.deadline) {
      // Expired in the queue: typed failure, no forward, no tensor —
      // the alloc-balance assertions in serve_test lean on this path
      // touching no memory at all.
      fail_request(head, std::make_exception_ptr(DeadlineExceededError()));
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.timed_out;
      continue;
    }
    const int horizon = head.request.horizon;
    std::vector<PendingRequest> batch;
    batch.push_back(std::move(head));
    // Hold the batch open for more same-horizon requests until the
    // window closes or the batch is full.  A different-horizon head
    // ends collection (it leads the next batch); window 0 still sweeps
    // everything already queued at this instant.
    const auto close_at = now + cfg_.coalesce_window;
    while (static_cast<std::int64_t>(batch.size()) < cfg_.max_batch) {
      PendingRequest next;
      if (!queue_.pop_matching(horizon, close_at, next)) break;
      if (std::chrono::steady_clock::now() >= next.request.deadline) {
        fail_request(next, std::make_exception_ptr(DeadlineExceededError()));
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.timed_out;
        continue;
      }
      batch.push_back(std::move(next));
    }
    serve_batch(batch);
  }
}

void InferenceEngine::serve_batch(std::vector<PendingRequest>& batch) {
  const auto formed_at = std::chrono::steady_clock::now();
  const std::shared_ptr<const ModelSnapshot> snap = slot_->current();
  if (!snap) {
    for (auto& p : batch) {
      fail_request(p, std::make_exception_ptr(SnapshotUnavailableError()));
    }
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.failed += batch.size();
    return;
  }

  const data::DatasetSpec& spec = provider_->spec();
  const std::int64_t T = spec.horizon;
  const std::int64_t N = spec.nodes;
  const std::int64_t F = spec.features;
  const int horizon = batch.front().request.horizon;
  const std::int64_t num = provider_->num_snapshots();
  const std::int64_t head_id = head_.load();

  if (horizon > snap->model().output_steps(T)) {
    auto err = std::make_exception_ptr(
        ServeError("serve: horizon " + std::to_string(horizon) +
                   " exceeds the model's " +
                   std::to_string(snap->model().output_steps(T)) +
                   " prediction steps"));
    for (auto& p : batch) fail_request(p, err);
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.failed += batch.size();
    return;
  }

  // Resolve snapshot ids (-1 = stream head) and validate per request;
  // a bad id or node set fails only its own request, the rest of the
  // batch still rides.
  std::vector<PendingRequest> live;
  std::vector<std::int64_t> ids;  // parallel to live
  live.reserve(batch.size());
  ids.reserve(batch.size());
  std::uint64_t rejected = 0;
  for (auto& p : batch) {
    const std::int64_t id = p.request.snapshot < 0 ? head_id : p.request.snapshot;
    if (id < 0 || id >= num) {
      fail_request(p, std::make_exception_ptr(ServeError(
                          "serve: snapshot " + std::to_string(id) + " outside [0, " +
                          std::to_string(num) + ")")));
      ++rejected;
      continue;
    }
    bool nodes_ok = true;
    for (std::int64_t node : p.request.nodes) {
      if (node < 0 || node >= N) {
        nodes_ok = false;
        break;
      }
    }
    if (!nodes_ok) {
      fail_request(p, std::make_exception_ptr(
                          ServeError("serve: node id outside [0, " +
                                     std::to_string(N) + ")")));
      ++rejected;
      continue;
    }
    ids.push_back(id);
    live.push_back(std::move(p));
  }
  if (rejected > 0) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.failed += rejected;
  }
  if (live.empty()) return;

  // Everything from here allocates inside the batch scope: the first
  // batch of a shape plans pool demand, later batches replay against
  // the pool.  Result tensors escape the scope by design and recycle
  // when the caller drops them.
  runtime::ArenaScope scope(arena_);

  // One consolidated fetch per distinct window (requests against the
  // same head coalesce into a single provider access).
  std::vector<std::int64_t> unique;
  unique.reserve(ids.size());
  for (std::int64_t id : ids) {
    if (std::find(unique.begin(), unique.end(), id) == unique.end()) {
      unique.push_back(id);
    }
  }

  const std::int64_t B = static_cast<std::int64_t>(live.size());
  std::vector<Variable> outputs;
  std::unordered_map<std::int64_t, Tensor> windows;
  try {
    announce_hot_window(unique);
    provider_->prefetch_batch(rank_, unique);
    windows.reserve(unique.size());
    for (std::int64_t id : unique) {
      auto [x, y] = provider_->fetch(rank_, id);
      (void)y;
      windows.emplace(id, std::move(x));
    }
    Tensor x = Tensor::empty({B, T, N, F}, kHostSpace);
    for (std::int64_t b = 0; b < B; ++b) {
      x.select(0, b).copy_from(windows.at(ids[static_cast<std::size_t>(b)]));
    }
    outputs = snap->model().forward_seq(x);
  } catch (...) {
    // A mid-batch fetch/forward failure must not strand announced
    // prefetches pinned in the provider's cache.
    provider_->abandon_prefetches(rank_);
    auto err = std::current_exception();
    for (auto& p : live) fail_request(p, err);
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.failed += live.size();
    return;
  }

  const std::int64_t out_dim = snap->model().output_dim();
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (std::int64_t b = 0; b < B; ++b) {
    PendingRequest& p = live[static_cast<std::size_t>(b)];
    try {
      const std::vector<std::int64_t>& nodes = p.request.nodes;
      const std::int64_t n_out =
          nodes.empty() ? N : static_cast<std::int64_t>(nodes.size());
      Tensor pred = Tensor::empty({horizon, n_out, out_dim}, kHostSpace);
      for (int s = 0; s < horizon; ++s) {
        const Tensor row = outputs[static_cast<std::size_t>(s)].value().select(0, b);
        Tensor dst = pred.select(0, s);
        if (nodes.empty()) {
          dst.copy_from(row);
        } else {
          for (std::int64_t j = 0; j < n_out; ++j) {
            dst.select(0, j).copy_from(
                row.select(0, nodes[static_cast<std::size_t>(j)]));
          }
        }
      }
      Forecast f;
      f.prediction = std::move(pred);
      f.snapshot_version = snap->version();
      f.coalesced_batch = B;
      f.queue_seconds = seconds_between(p.submitted_at, formed_at);
      p.promise.set_value(std::move(f));
      ++completed;
    } catch (...) {
      fail_request(p, std::current_exception());
      ++failed;
    }
  }

  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.batches;
  stats_.completed += completed;
  stats_.failed += failed;
  if (B > 1) stats_.coalesced_requests += completed;
  stats_.max_coalesced = std::max(stats_.max_coalesced, static_cast<std::uint64_t>(B));
}

}  // namespace pgti::serve
