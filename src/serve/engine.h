// Micro-batched streaming inference engine (DESIGN.md §17).
//
// DistTGL's serving-side lesson: per-request forwards waste the
// batched kernels the training path already has.  The engine therefore
// coalesces concurrent same-horizon requests inside a configurable
// micro-batch window into ONE fused forward over an immutable
// ModelSnapshot:
//
//   submit() -> bounded RequestQueue -> coalescing worker
//     -> [capture snapshot, ArenaScope, hot-window announce,
//         consolidated feature fetch, batched forward_seq,
//         per-request gather] -> promise/future
//
// Feature windows come through a read-only data::SnapshotProvider view
// (a DistStore reader rank in the distributed deployment), with the
// store's schedule-aware cache repurposed as a hot-window cache: the
// engine announces the most recent `hot_window` snapshot ids as its
// "schedule", so eviction keeps the freshest windows resident and
// repeated requests against the live head copy zero bytes.
//
// Every serving batch runs inside an ArenaScope on the worker thread —
// the first batch of a shape plans pool demand, every later batch
// replays alloc-free; result tensors escape the scope safely (arena
// blocks own a reference to the pool) and recycle when callers drop
// their forecasts.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "data/snapshot_provider.h"
#include "runtime/arena.h"
#include "serve/request_queue.h"
#include "serve/snapshot.h"
#include "serve/types.h"

namespace pgti::serve {

struct EngineConfig {
  /// Bounded queue size; submits beyond it throw QueueFullError.
  std::int64_t queue_capacity = 256;
  /// How long the worker holds a batch open for more same-horizon
  /// requests after the first one (0 = batch only what is already
  /// queued at that instant).
  std::chrono::microseconds coalesce_window{1000};
  /// Hard cap on requests per fused forward.
  std::int64_t max_batch = 64;
  /// Most-recent snapshot ids announced to the provider's
  /// schedule-aware cache so they stay resident (0 = no hot window).
  std::int64_t hot_window = 64;
};

/// Accepts concurrent forecast requests, coalesces them, and serves
/// them against SnapshotSlot::current() through a read-only provider
/// view.  One worker thread; submit() is safe from any thread.
class InferenceEngine {
 public:
  /// `slot` and `provider` must outlive the engine.  `rank` is the
  /// provider rank every fetch is attributed to (a DistStore reader
  /// rank from add_reader(), or 0 for a local IndexProvider).
  InferenceEngine(SnapshotSlot& slot, data::SnapshotProvider& provider, int rank,
                  EngineConfig config = EngineConfig());
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Spawns the coalescing worker.  Without start(), requests queue up
  /// and stop() drains them inline on the calling thread — useful for
  /// deterministic single-threaded tests.
  void start();

  /// Closes the queue (new submits throw EngineStoppedError), drains
  /// every queued request to completion — served or failed, every
  /// future is ready when stop() returns — and joins the worker.
  /// Idempotent.
  void stop();

  /// Enqueues a request; the forecast (or its typed error) arrives
  /// through the returned future.  Throws QueueFullError on
  /// backpressure, EngineStoppedError after stop(), and
  /// std::invalid_argument for a non-positive horizon.  Deadlines are
  /// checked when the worker picks the request up: an expired request
  /// fails with DeadlineExceededError without running the forward or
  /// allocating any tensor.
  std::future<Forecast> submit(ForecastRequest request);

  /// Moves the live stream head: requests with snapshot = -1 resolve
  /// to `latest`, and the hot window [latest - hot_window + 1, latest]
  /// is (re)announced to the provider's cache.
  void advance_to(std::int64_t latest);

  std::int64_t stream_head() const noexcept { return head_.load(); }

  ServeStats stats() const;
  runtime::ArenaStats arena_stats() const { return arena_.stats(); }

 private:
  void worker_loop();
  void serve_batch(std::vector<PendingRequest>& batch);
  /// Hot-window schedule announcement: `first` (the batch about to be
  /// consumed) followed by the most recent `hot_window` ids, newest
  /// first — so eviction victims are always the stalest windows.
  void announce_hot_window(const std::vector<std::int64_t>& first);
  void fail_request(PendingRequest& pending, std::exception_ptr error);

  SnapshotSlot* slot_;
  data::SnapshotProvider* provider_;
  int rank_;
  EngineConfig cfg_;
  RequestQueue queue_;
  std::atomic<std::int64_t> head_;
  runtime::TensorArena arena_;
  std::thread worker_;
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mu_;  ///< serializes start()/stop()

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace pgti::serve
