// Bounded FIFO request queue for the inference engine (DESIGN.md §17).
//
// Producers are client threads calling InferenceEngine::submit();
// the consumer is the engine's coalescing worker.  The queue is the
// backpressure point: a full queue rejects the submit with a typed
// QueueFullError instead of buffering unboundedly (load shedding),
// and close() flips the queue into drain mode — pushes fail with
// EngineStoppedError while pops keep delivering the backlog in FIFO
// order until it is empty, which is what makes shutdown deterministic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>

#include "serve/types.h"

namespace pgti::serve {

/// One queued request: the caller's parameters, the promise its
/// future resolves through, and the submit timestamp (queue-latency
/// accounting and deadline checks measure from it).
struct PendingRequest {
  ForecastRequest request;
  std::promise<Forecast> promise;
  std::chrono::steady_clock::time_point submitted_at;
};

/// Bounded MPSC queue (many submitters, one coalescing worker).
class RequestQueue {
 public:
  explicit RequestQueue(std::int64_t capacity);

  /// Enqueues; throws QueueFullError when at capacity and
  /// EngineStoppedError after close().
  void push(PendingRequest&& pending);

  /// Blocks for the next request; returns false only when the queue is
  /// closed AND empty (the drain is complete).
  bool pop(PendingRequest& out);

  /// Coalescing pop: waits until `until` for the head request, and
  /// takes it only if its horizon matches (same-horizon requests share
  /// one batched forward; a different-horizon head stays queued for
  /// the next batch).  Returns false when the window expires with no
  /// matching head, immediately on a horizon mismatch, or when the
  /// queue is closed and empty.  A `until` already in the past still
  /// examines the current head, so a zero-length coalescing window
  /// batches whatever is queued at that instant.
  bool pop_matching(int horizon, std::chrono::steady_clock::time_point until,
                    PendingRequest& out);

  /// Switches to drain mode: subsequent pushes throw, pops drain the
  /// backlog and then report exhaustion.  Idempotent.
  void close();

  std::int64_t size() const;
  std::int64_t capacity() const noexcept { return capacity_; }
  bool closed() const;

 private:
  const std::int64_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingRequest> q_;
  bool closed_ = false;
};

}  // namespace pgti::serve
