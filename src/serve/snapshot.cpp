#include "serve/snapshot.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace pgti::serve {

SnapshotSlot::SnapshotSlot(core::ModelKind kind, data::DatasetSpec spec,
                           SensorNetwork net, std::int64_t hidden_dim,
                           int diffusion_steps, int num_layers, std::uint64_t seed)
    : kind_(kind),
      spec_(std::move(spec)),
      net_(std::move(net)),
      hidden_dim_(hidden_dim),
      diffusion_steps_(diffusion_steps),
      num_layers_(num_layers),
      seed_(seed) {}

std::shared_ptr<const ModelSnapshot> SnapshotSlot::publish(const nn::Module& live,
                                                           int epoch) {
  // Build the replica from the recipe, then overwrite its parameters
  // with deep host-resident copies of the live values.  Matching by
  // dotted name (not just position) catches a recipe/model mismatch
  // before a silently transposed parameter ships wrong forecasts.
  core::ModelBundle bundle = core::make_model(kind_, spec_, net_, hidden_dim_,
                                              diffusion_steps_, num_layers_, seed_);
  const auto live_params = live.named_parameters();
  auto fresh_params = bundle.model->named_parameters();
  if (live_params.size() != fresh_params.size()) {
    throw std::invalid_argument(
        "SnapshotSlot: live model has " + std::to_string(live_params.size()) +
        " parameters, recipe builds " + std::to_string(fresh_params.size()));
  }
  for (std::size_t i = 0; i < live_params.size(); ++i) {
    if (live_params[i].first != fresh_params[i].first) {
      throw std::invalid_argument("SnapshotSlot: parameter name mismatch at index " +
                                  std::to_string(i) + ": live '" +
                                  live_params[i].first + "' vs recipe '" +
                                  fresh_params[i].first + "'");
    }
    // to() always deep-copies, so device-resident replicas land as
    // private host tensors and the snapshot shares no storage with the
    // trainer — the property that makes the serving forward lock-free.
    Tensor host_copy = live_params[i].second.value().to(kHostSpace);
    fresh_params[i].second.mutable_value() = std::move(host_copy);
  }

  std::lock_guard<std::mutex> lk(mu_);
  auto snap =
      std::make_shared<const ModelSnapshot>(std::move(bundle), next_version_++, epoch);
  current_ = snap;
  return snap;
}

std::shared_ptr<const ModelSnapshot> SnapshotSlot::current() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_;
}

std::uint64_t SnapshotSlot::version() const {
  std::lock_guard<std::mutex> lk(mu_);
  return current_ ? current_->version() : 0;
}

}  // namespace pgti::serve
