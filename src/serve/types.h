// Serving-path request/response types and typed errors (DESIGN.md §17).
//
// A ForecastRequest names an input window (a snapshot id from the same
// sliding-window id space the training data plane uses), the horizon
// of prediction steps wanted, and the node subset the caller cares
// about.  The InferenceEngine coalesces concurrent same-horizon
// requests into one batched forward; every failure mode a caller can
// hit is a distinct exception type delivered through the request's
// future, so clients can tell backpressure from deadline expiry from
// shutdown without parsing strings.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"

namespace pgti::serve {

/// Base of every serving-path error.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// submit() on a full bounded RequestQueue: the caller must back off
/// (the engine sheds load instead of queueing unboundedly).
class QueueFullError final : public ServeError {
 public:
  QueueFullError() : ServeError("serve: request queue full") {}
};

/// The request's deadline expired before the engine formed its batch;
/// the forward was never run and no per-request memory was allocated.
class DeadlineExceededError final : public ServeError {
 public:
  DeadlineExceededError() : ServeError("serve: deadline exceeded") {}
};

/// submit() after stop(): the engine is draining or drained and accepts
/// no new work.
class EngineStoppedError final : public ServeError {
 public:
  EngineStoppedError() : ServeError("serve: engine stopped") {}
};

/// No ModelSnapshot has been published yet (serving started before the
/// first copy-on-publish from the trainer).
class SnapshotUnavailableError final : public ServeError {
 public:
  SnapshotUnavailableError() : ServeError("serve: no model snapshot published") {}
};

/// One forecast request.  `snapshot` is the as-of input window (-1 =
/// the engine's current stream head, see InferenceEngine::advance_to);
/// `horizon` is the number of prediction steps wanted and is the
/// coalescing key — only same-horizon requests share a batched forward.
struct ForecastRequest {
  std::int64_t snapshot = -1;
  int horizon = 1;
  /// Node ids the prediction is sliced to; empty = every node.
  std::vector<std::int64_t> nodes;
  /// Absolute expiry; requests still queued past it fail with
  /// DeadlineExceededError instead of running.  Default: never.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// One fulfilled forecast.  `prediction` is a caller-owned contiguous
/// tensor [horizon, nodes, output_dim]; byte-identical to a
/// single-request forward of the same snapshot against the same
/// ModelSnapshot, regardless of how many requests shared the batch.
struct Forecast {
  Tensor prediction;
  std::uint64_t snapshot_version = 0;  ///< ModelSnapshot that served it
  std::int64_t coalesced_batch = 0;    ///< size of the batch it rode in
  double queue_seconds = 0.0;  ///< submit -> batch formation wait
};

/// Engine counters (monotonic since construction).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;   ///< failed with DeadlineExceededError
  std::uint64_t rejected = 0;    ///< submit() refused: queue full
  std::uint64_t failed = 0;      ///< any other per-request failure
  std::uint64_t batches = 0;     ///< batched forwards executed
  std::uint64_t coalesced_requests = 0;  ///< requests served in batches of > 1
  std::uint64_t max_coalesced = 0;       ///< largest batch observed
};

}  // namespace pgti::serve
