// Step-scoped pooled tensor allocation (DESIGN.md §16).
//
// The tape's intermediate tensors are allocated and freed thousands of
// times per training step in near-identical shape sequences; after the
// PR 7 kernel rebuild that malloc/free churn is the largest non-kernel
// cost in BM_DcgruForwardBackward.  TensorArena turns it into pointer
// recycling: blocks are size-bucketed (power-of-two float counts) and
// returned to a per-arena free list instead of the heap, so the first
// step of an epoch "plans" — heap-allocates and records high-water
// bucket demand — and every later step replays against the pool
// without touching the heap.
//
// Scoping is thread-local and RAII: EpochEngine opens one ArenaScope
// per train/eval step, tensor::Storage routes through the scope's
// arena when one is active and falls back to the plain heap otherwise
// (tests and benches that never open a scope see the seed allocator).
// Blocks may outlive both the scope and the arena object — parameter
// gradients and Adam state allocated inside a step scope survive the
// engine — so every block holds a shared_ptr to the arena's internal
// state and the pooled memory is freed only when the last block
// releases.
//
// MemoryTracker integration is unchanged from the seed: every acquire
// charges the requested tensor bytes (enforcing space limits / OOM)
// and every release refunds them, whether the block came from the pool
// or the heap.  The tracker's heap_alloc_count only advances on real
// heap allocations, which is what makes "alloc-free after warmup" a
// queryable number.  Under AddressSanitizer, pooled (free) blocks are
// poisoned so a use-after-release of recycled memory faults instead of
// silently reading stale floats.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/memory_tracker.h"

namespace pgti::runtime {

namespace detail {
struct ArenaState;
}

/// One pooled allocation handed out by TensorArena.  Holds the arena's
/// internal state alive so release() stays valid after the arena
/// object itself is destroyed.
struct ArenaBlock {
  float* data = nullptr;
  std::shared_ptr<detail::ArenaState> state;
  std::int32_t bucket = -1;
  MemorySpaceId space = kHostSpace;
  bool pool_hit = false;  ///< served from the free list (no heap traffic)

  explicit operator bool() const noexcept { return data != nullptr; }
};

/// Per-bucket demand record (one memory space, one size class).
struct ArenaBucketStats {
  MemorySpaceId space = kHostSpace;
  std::int64_t capacity = 0;      ///< block capacity in floats
  std::uint64_t heap_blocks = 0;  ///< blocks ever heap-allocated
  std::uint64_t pool_hits = 0;    ///< acquisitions served from the pool
  std::uint64_t outstanding = 0;  ///< currently acquired
  std::uint64_t high_water = 0;   ///< max simultaneous outstanding (the plan)
  std::uint64_t pooled = 0;       ///< free blocks waiting for reuse
};

struct ArenaStats {
  std::uint64_t heap_blocks = 0;
  std::uint64_t pool_hits = 0;
  std::size_t bytes_reserved = 0;  ///< heap bytes held (pooled + outstanding)
  std::vector<ArenaBucketStats> buckets;  ///< non-empty buckets only
};

/// Size-bucketed pool allocator for step-scoped tensor lifetimes.
/// Thread-safe; acquire/release may happen on different threads.
class TensorArena {
 public:
  TensorArena();
  ~TensorArena();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Acquires a block of >= numel floats in `space`.  Charges the
  /// MemoryTracker with the requested bytes (may throw OutOfMemoryError,
  /// in which case no block is taken).  Pool hits return recycled,
  /// UNINITIALIZED memory; fresh heap blocks are zeroed to match the
  /// heap fallback's value semantics on first touch.
  ArenaBlock acquire(std::int64_t numel, MemorySpaceId space);

  /// Returns a block to its pool (NOT to the heap).  Valid after the
  /// owning arena is destroyed; the pooled memory is freed when the
  /// last block of a dead arena releases.  Does not touch the
  /// MemoryTracker — the caller refunds its own charge.
  static void release(ArenaBlock& block) noexcept;

  ArenaStats stats() const;

 private:
  std::shared_ptr<detail::ArenaState> state_;
};

/// RAII thread-local scope: while alive (and the arena feature is
/// enabled), tensor Storage allocations on this thread route through
/// `arena`.  Nests — the previous scope is restored on destruction,
/// including during exception unwinding.
class ArenaScope {
 public:
  explicit ArenaScope(TensorArena& arena) noexcept;
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  TensorArena* prev_ = nullptr;
  bool installed_ = false;
};

/// The arena the current thread's allocations route through (nullptr
/// when no scope is active on this thread).
TensorArena* current_arena() noexcept;

/// Process-wide feature toggle (default on).  When off, ArenaScope is
/// a no-op and every allocation takes the heap path — the seed
/// allocator, bit for bit.  Toggle OUTSIDE any active scope.
bool arena_enabled() noexcept;
void set_arena_enabled(bool enabled) noexcept;

}  // namespace pgti::runtime
