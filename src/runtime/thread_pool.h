// Shared-memory parallelism substrate (OpenMP-style structured loops).
//
// Compute kernels (matmul, SpMM, elementwise ops) parallelize across a
// process-wide pool via parallel_for, mirroring the `#pragma omp
// parallel for` idiom: fork at loop entry, join at loop exit, no tasks
// escape the construct.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pgti {

/// Fixed-size worker pool executing half-open index ranges.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over [begin, end) split into roughly equal
  /// chunks across the pool (including the calling thread) and blocks
  /// until all chunks complete.  Exceptions from workers are rethrown
  /// on the calling thread.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Process-wide pool sized to hardware concurrency (override with
  /// the PGTI_NUM_THREADS environment variable).
  static ThreadPool& global();

 private:
  struct TaskImpl;

  void worker_loop(int worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<TaskImpl> pending_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
/// `grain` is the minimum chunk size; small ranges run inline.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace pgti
