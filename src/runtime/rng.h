// Deterministic random number generation.
//
// Every stochastic component (synthetic data, weight init, shuffling)
// takes an explicit seed so experiments are bit-reproducible across
// runs and across worker counts (distributed global shuffling requires
// all workers to draw the *same* permutation; see paper §4.2).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace pgti {

/// splitmix64 / xoshiro256** generator: tiny, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (auto& s : state_) {
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
      z += 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller.
  double normal() {
    const double u1 = 1.0 - uniform();  // avoid log(0)
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pgti
