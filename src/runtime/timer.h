// Wall-clock timing plus a simulated clock.
//
// Measured quantities (kernel compute) use WallTimer.  Modeled
// quantities (PCIe transfers, network collectives, remote fetches —
// hardware this environment does not have) are *accounted* on a
// SimClock instead of slept, so experiment "runtimes" compose measured
// compute with modeled communication exactly as DESIGN.md documents.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pgti {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Thread-safe accumulator of modeled time, in seconds.
class SimClock {
 public:
  void add(double seconds) {
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + seconds,
                                           std::memory_order_relaxed)) {
    }
  }

  double seconds() const { return seconds_.load(std::memory_order_relaxed); }
  void reset() { seconds_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> seconds_{0.0};
};

}  // namespace pgti
