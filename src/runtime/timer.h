// Wall-clock timing plus a simulated clock.
//
// Measured quantities (kernel compute) use WallTimer.  Modeled
// quantities (PCIe transfers, network collectives, remote fetches —
// hardware this environment does not have) are *accounted* on a
// SimClock instead of slept, so experiment "runtimes" compose measured
// compute with modeled communication exactly as DESIGN.md documents.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace pgti {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Thread-safe accumulator of modeled time, in seconds.
///
/// Atomicity guarantee: add() is a lock-free CAS loop on one
/// std::atomic<double>, so concurrent charges from any number of
/// threads are each applied exactly once — no lost updates, no torn
/// reads — and Cluster::charge_seconds / Communicator::charge_seconds
/// are safe to call from per-rank comm threads (OverlappedGradBucket),
/// prefetch staging threads, and the main thread simultaneously.  The
/// accumulated value can depend on arrival order only through
/// floating-point non-associativity; callers that assert exact totals
/// (tests/dist_transport_test.cpp's TSan-covered hammer) use
/// dyadic-rational increments, for which addition is exact in any
/// order.  seconds()/reset() are single atomic ops; reset() is only
/// called from run() entry points while no charger is live.
class SimClock {
 public:
  void add(double seconds) {
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + seconds,
                                           std::memory_order_relaxed)) {
    }
  }

  double seconds() const { return seconds_.load(std::memory_order_relaxed); }
  void reset() { seconds_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> seconds_{0.0};
};

}  // namespace pgti
