#include "runtime/workspace.h"

#include <cstring>

namespace pgti::runtime {

struct WorkspaceCache::Entry {
  std::string tag;
  std::int64_t numel = 0;
  MemorySpaceId space = kHostSpace;
  std::vector<float*> free;  ///< idle buffers for this key

  // The cache retains buffers for the process lifetime, but the
  // singleton's static destructor must still hand them back so leak
  // checkers see a clean exit.  (Buffers on lease at that point belong
  // to their Handle.)
  ~Entry() {
    for (float* p : free) delete[] p;
  }
};

WorkspaceCache& WorkspaceCache::instance() {
  static WorkspaceCache cache;
  return cache;
}

WorkspaceCache::Handle WorkspaceCache::acquire(const char* tag, std::int64_t numel,
                                               MemorySpaceId space) {
  const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = nullptr;
  // Linear scan: the key population is tiny (a handful of kernel tags
  // times a handful of live shapes) and scanning is alloc-free, unlike
  // map lookups keyed by freshly built strings.
  for (const auto& e : entries_) {
    if (e->numel == numel && e->space == space && e->tag == tag) {
      entry = e.get();
      break;
    }
  }
  if (entry == nullptr) {
    entries_.push_back(std::make_unique<Entry>());
    entry = entries_.back().get();
    entry->tag = tag;
    entry->numel = numel;
    entry->space = space;
  }

  Handle h;
  h.entry_ = entry;
  ++acquires_;
  if (!entry->free.empty()) {
    MemoryTracker::instance().on_alloc(space, bytes, /*from_heap=*/false);
    h.data_ = entry->free.back();
    entry->free.pop_back();
  } else {
    MemoryTracker::instance().on_alloc(space, bytes, /*from_heap=*/true);
    try {
      h.data_ = new float[static_cast<std::size_t>(numel)];
    } catch (...) {
      MemoryTracker::instance().on_free(space, bytes);
      throw;
    }
    ++allocations_;
  }
  return h;
}

void WorkspaceCache::Handle::reset() noexcept {
  if (data_ == nullptr || entry_ == nullptr) return;
  WorkspaceCache& cache = WorkspaceCache::instance();
  {
    std::lock_guard<std::mutex> lock(cache.mu_);
    entry_->free.push_back(data_);
  }
  MemoryTracker::instance().on_free(
      entry_->space, static_cast<std::size_t>(entry_->numel) * sizeof(float));
  data_ = nullptr;
  entry_ = nullptr;
}

WorkspaceCache::Stats WorkspaceCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.acquires = acquires_;
  s.allocations = allocations_;
  for (const auto& e : entries_) {
    s.buffers_cached += static_cast<std::uint64_t>(e->free.size());
    s.bytes_cached +=
        e->free.size() * static_cast<std::size_t>(e->numel) * sizeof(float);
  }
  return s;
}

void WorkspaceCache::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    for (float* p : e->free) delete[] p;
    e->free.clear();
  }
}

}  // namespace pgti::runtime
