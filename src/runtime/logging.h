// Minimal leveled logger (stderr), controlled by PGTI_LOG_LEVEL.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace pgti {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
std::mutex& log_mutex();
const char* level_name(LogLevel level);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  std::lock_guard<std::mutex> lock(detail::log_mutex());
  std::cerr << "[pgti " << detail::level_name(level) << "] " << os.str() << "\n";
}

template <typename... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}

template <typename... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}

template <typename... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}

}  // namespace pgti
