// Process-wide keyed scratch-buffer cache (DESIGN.md §16).
//
// Kernels like matmul_nt need shape-dependent scratch (the [K, N]
// transpose of B) that the seed reallocated on every call even when
// the shape never changed — per-call heap traffic on the hottest
// backward path.  WorkspaceCache keys buffers by (tag, numel, space)
// and hands out RAII handles: acquire pops a cached buffer or
// heap-allocates one, the handle's destructor returns it to the cache.
// Distinct concurrent acquires of the same key get distinct buffers
// (pop-or-allocate), so ranks running in parallel never share scratch.
//
// Buffers are charged to the MemoryTracker only while acquired —
// mirroring TensorArena — so the paper's in-use accounting is
// unaffected by what the cache retains.  Workspace contents are
// UNINITIALIZED on acquire; every user fully writes its scratch before
// reading it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/memory_tracker.h"

namespace pgti::runtime {

class WorkspaceCache {
 public:
  struct Entry;  // internal; stable address per (tag, numel, space) key

  /// Move-only RAII lease on one workspace buffer.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { swap(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        reset();
        swap(other);
      }
      return *this;
    }
    ~Handle() { reset(); }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    float* data() const noexcept { return data_; }
    explicit operator bool() const noexcept { return data_ != nullptr; }

    /// Returns the buffer to the cache early (idempotent).
    void reset() noexcept;

   private:
    friend class WorkspaceCache;
    void swap(Handle& other) noexcept {
      std::swap(data_, other.data_);
      std::swap(entry_, other.entry_);
    }
    float* data_ = nullptr;
    Entry* entry_ = nullptr;
  };

  static WorkspaceCache& instance();

  /// Leases a buffer of exactly `numel` floats for key (tag, numel,
  /// space).  Charges the MemoryTracker (may throw OutOfMemoryError);
  /// the handle's destructor refunds the charge and recycles the
  /// buffer.  Contents are uninitialized.
  Handle acquire(const char* tag, std::int64_t numel,
                 MemorySpaceId space = kHostSpace);

  struct Stats {
    std::uint64_t acquires = 0;     ///< total leases handed out
    std::uint64_t allocations = 0;  ///< leases that hit the heap
    std::uint64_t buffers_cached = 0;
    std::size_t bytes_cached = 0;  ///< idle bytes retained for reuse
  };
  Stats stats() const;

  /// Frees every idle cached buffer (keys persist).  For tests.
  void trim();

 private:
  WorkspaceCache() = default;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t acquires_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace pgti::runtime
