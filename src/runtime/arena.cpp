#include "runtime/arena.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#if defined(__SANITIZE_ADDRESS__)
#define PGTI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PGTI_ASAN 1
#endif
#endif

#if defined(PGTI_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace pgti::runtime {
namespace {

// Smallest bucket: 64 floats (256 B).  Anything below still gets a
// 64-float block; buckets double from there.
constexpr std::int64_t kMinBucketNumel = 64;
constexpr int kNumBuckets = 40;

int bucket_for(std::int64_t numel) {
  std::int64_t cap = kMinBucketNumel;
  int b = 0;
  while (cap < numel) {
    cap <<= 1;
    ++b;
  }
  return b;
}

std::int64_t bucket_capacity(int bucket) { return kMinBucketNumel << bucket; }

void poison_block(float* p, std::int64_t cap) {
#if defined(PGTI_ASAN)
  __asan_poison_memory_region(p, static_cast<std::size_t>(cap) * sizeof(float));
#else
  (void)p;
  (void)cap;
#endif
}

void unpoison_block(float* p, std::int64_t cap) {
#if defined(PGTI_ASAN)
  __asan_unpoison_memory_region(p, static_cast<std::size_t>(cap) * sizeof(float));
#else
  (void)p;
  (void)cap;
#endif
}

thread_local TensorArena* t_current_arena = nullptr;
std::atomic<bool> g_arena_enabled{true};

}  // namespace

namespace detail {

struct ArenaState {
  struct Bucket {
    std::vector<float*> free;
    std::uint64_t heap_blocks = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t outstanding = 0;
    std::uint64_t high_water = 0;
  };
  struct SpacePools {
    Bucket buckets[kNumBuckets];
  };

  mutable std::mutex mu;
  std::vector<SpacePools> spaces;  // indexed by MemorySpaceId
  std::uint64_t heap_blocks = 0;
  std::uint64_t pool_hits = 0;
  std::size_t bytes_reserved = 0;

  ~ArenaState() {
    // Only free-list blocks can exist here: every outstanding block
    // holds a shared_ptr to this state.
    for (SpacePools& sp : spaces) {
      for (int b = 0; b < kNumBuckets; ++b) {
        for (float* p : sp.buckets[b].free) {
          unpoison_block(p, bucket_capacity(b));
          delete[] p;
        }
        sp.buckets[b].free.clear();
      }
    }
  }
};

}  // namespace detail

TensorArena::TensorArena() : state_(std::make_shared<detail::ArenaState>()) {}

TensorArena::~TensorArena() = default;

ArenaBlock TensorArena::acquire(std::int64_t numel, MemorySpaceId space) {
  const int bucket = bucket_for(numel);
  const std::int64_t cap = bucket_capacity(bucket);
  const std::size_t bytes = static_cast<std::size_t>(numel) * sizeof(float);

  std::lock_guard<std::mutex> lock(state_->mu);
  if (static_cast<std::size_t>(space) >= state_->spaces.size()) {
    state_->spaces.resize(static_cast<std::size_t>(space) + 1);
  }
  auto& b = state_->spaces[static_cast<std::size_t>(space)].buckets[bucket];

  ArenaBlock block;
  block.bucket = bucket;
  block.space = space;
  if (!b.free.empty()) {
    // Charge the tracker before committing: a limit violation must
    // leave the pool untouched.
    MemoryTracker::instance().on_alloc(space, bytes, /*from_heap=*/false);
    block.data = b.free.back();
    b.free.pop_back();
    unpoison_block(block.data, cap);
    block.pool_hit = true;
    ++b.pool_hits;
    ++state_->pool_hits;
  } else {
    MemoryTracker::instance().on_alloc(space, bytes, /*from_heap=*/true);
    try {
      block.data = new float[static_cast<std::size_t>(cap)]();
    } catch (...) {
      MemoryTracker::instance().on_free(space, bytes);
      throw;
    }
    ++b.heap_blocks;
    ++state_->heap_blocks;
    state_->bytes_reserved += static_cast<std::size_t>(cap) * sizeof(float);
  }
  ++b.outstanding;
  b.high_water = std::max(b.high_water, b.outstanding);
  block.state = state_;
  return block;
}

void TensorArena::release(ArenaBlock& block) noexcept {
  if (block.data == nullptr || !block.state) return;
  {
    std::lock_guard<std::mutex> lock(block.state->mu);
    auto& b =
        block.state->spaces[static_cast<std::size_t>(block.space)].buckets[block.bucket];
    poison_block(block.data, bucket_capacity(block.bucket));
    b.free.push_back(block.data);
    --b.outstanding;
  }
  block.data = nullptr;
  block.state.reset();  // may free the pool if the arena is already gone
}

ArenaStats TensorArena::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  ArenaStats out;
  out.heap_blocks = state_->heap_blocks;
  out.pool_hits = state_->pool_hits;
  out.bytes_reserved = state_->bytes_reserved;
  for (std::size_t s = 0; s < state_->spaces.size(); ++s) {
    for (int b = 0; b < kNumBuckets; ++b) {
      const auto& bk = state_->spaces[s].buckets[b];
      if (bk.heap_blocks == 0 && bk.pool_hits == 0) continue;
      ArenaBucketStats bs;
      bs.space = static_cast<MemorySpaceId>(s);
      bs.capacity = bucket_capacity(b);
      bs.heap_blocks = bk.heap_blocks;
      bs.pool_hits = bk.pool_hits;
      bs.outstanding = bk.outstanding;
      bs.high_water = bk.high_water;
      bs.pooled = static_cast<std::uint64_t>(bk.free.size());
      out.buckets.push_back(bs);
    }
  }
  return out;
}

ArenaScope::ArenaScope(TensorArena& arena) noexcept {
  if (!arena_enabled()) return;
  prev_ = t_current_arena;
  t_current_arena = &arena;
  installed_ = true;
}

ArenaScope::~ArenaScope() {
  if (installed_) t_current_arena = prev_;
}

TensorArena* current_arena() noexcept { return t_current_arena; }

bool arena_enabled() noexcept {
  return g_arena_enabled.load(std::memory_order_relaxed);
}

void set_arena_enabled(bool enabled) noexcept {
  g_arena_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace pgti::runtime
