#include "runtime/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pgti {
namespace {

std::atomic<int>& threshold_storage() {
  static std::atomic<int> level([] {
    if (const char* env = std::getenv("PGTI_LOG_LEVEL")) {
      if (std::strcmp(env, "debug") == 0) return 0;
      if (std::strcmp(env, "info") == 0) return 1;
      if (std::strcmp(env, "warn") == 0) return 2;
      if (std::strcmp(env, "error") == 0) return 3;
      if (std::strcmp(env, "off") == 0) return 4;
    }
    return 2;  // default: warnings and errors only
  }());
  return level;
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace detail
}  // namespace pgti
