#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace pgti {
namespace {

/// Per-parallel_for completion state.  Each invocation owns one, so
/// concurrent callers (e.g. DDP worker threads) never wait on each
/// other's loops.
struct Invocation {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::atomic<int> remaining{0};
  std::exception_ptr error;
  std::mutex error_mu;
};

}  // namespace

struct ThreadPool::TaskImpl {
  Invocation* inv = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

ThreadPool::ThreadPool(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop(int /*worker_index*/) {
  for (;;) {
    TaskImpl task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_ && pending_.empty()) return;
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.inv->fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.inv->error_mu);
      if (!task.inv->error) task.inv->error = std::current_exception();
    }
    if (task.inv->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of this invocation: wake its caller.
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;
  const int nthreads = size();
  if (nthreads == 1 || n == 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(n, nthreads);
  const std::int64_t chunk = (n + chunks - 1) / chunks;

  Invocation inv;
  inv.fn = &fn;

  // The calling thread keeps the first chunk; the rest are queued.
  const std::int64_t self_end = std::min(begin + chunk, end);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t s = self_end; s < end; s += chunk) {
      pending_.push_back(TaskImpl{&inv, s, std::min(s + chunk, end)});
      inv.remaining.fetch_add(1, std::memory_order_relaxed);
    }
  }
  cv_work_.notify_all();

  std::exception_ptr self_error;
  try {
    fn(begin, self_end);
  } catch (...) {
    self_error = std::current_exception();
  }

  // Help drain the queue while waiting: execute ANY pending task (not
  // just ours) so oversubscribed callers make progress instead of
  // blocking on the two pool threads.
  for (;;) {
    if (inv.remaining.load(std::memory_order_acquire) == 0) break;
    TaskImpl task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_.empty()) {
        cv_done_.wait(lock, [&] {
          return inv.remaining.load(std::memory_order_acquire) == 0 ||
                 !pending_.empty();
        });
        continue;
      }
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.inv->fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.inv->error_mu);
      if (!task.inv->error) task.inv->error = std::current_exception();
    }
    if (task.inv->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      cv_done_.notify_all();
    }
  }

  if (self_error) std::rethrow_exception(self_error);
  if (inv.error) std::rethrow_exception(inv.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("PGTI_NUM_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : static_cast<int>(hw);
  }());
  return pool;
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end - begin <= std::max<std::int64_t>(grain, 1)) {
    if (begin < end) fn(begin, end);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace pgti
