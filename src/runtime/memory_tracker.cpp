#include "runtime/memory_tracker.h"

#include <algorithm>
#include <sstream>

namespace pgti {

OutOfMemoryError::OutOfMemoryError(const std::string& space, std::size_t requested,
                                   std::size_t in_use, std::size_t limit)
    : std::runtime_error("out of memory in space '" + space + "': requested " +
                         format_bytes(static_cast<double>(requested)) + ", in use " +
                         format_bytes(static_cast<double>(in_use)) + ", limit " +
                         format_bytes(static_cast<double>(limit))),
      requested_(requested),
      in_use_(in_use),
      limit_(limit) {}

MemoryTracker::MemoryTracker() {
  Space host;
  host.name = "host";
  spaces_.push_back(std::move(host));
}

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

MemorySpaceId MemoryTracker::register_space(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < spaces_.size(); ++i) {
    if (spaces_[i].name == name) return static_cast<MemorySpaceId>(i);
  }
  Space s;
  s.name = name;
  spaces_.push_back(std::move(s));
  return static_cast<MemorySpaceId>(spaces_.size() - 1);
}

void MemoryTracker::set_limit(MemorySpaceId space, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  spaces_.at(static_cast<std::size_t>(space)).limit = bytes;
}

void MemoryTracker::on_alloc(MemorySpaceId space, std::size_t bytes, bool from_heap) {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_.at(static_cast<std::size_t>(space));
  if (s.limit != 0 && s.current + bytes > s.limit) {
    throw OutOfMemoryError(s.name, bytes, s.current, s.limit);
  }
  s.current += bytes;
  s.peak = std::max(s.peak, s.current);
  ++s.alloc_count;
  if (from_heap) {
    ++s.heap_alloc_count;
    ++heap_allocs_total_;
  }
}

void MemoryTracker::on_free(MemorySpaceId space, std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_[static_cast<std::size_t>(space)];
  s.current = bytes > s.current ? 0 : s.current - bytes;
}

std::size_t MemoryTracker::current(MemorySpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spaces_.at(static_cast<std::size_t>(space)).current;
}

std::size_t MemoryTracker::peak(MemorySpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spaces_.at(static_cast<std::size_t>(space)).peak;
}

MemorySpaceStats MemoryTracker::stats(MemorySpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Space& s = spaces_.at(static_cast<std::size_t>(space));
  return MemorySpaceStats{s.name,  s.current,      s.peak,
                          s.limit, s.alloc_count, s.heap_alloc_count};
}

std::vector<MemorySpaceStats> MemoryTracker::all_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MemorySpaceStats> out;
  out.reserve(spaces_.size());
  for (const Space& s : spaces_) {
    out.push_back(MemorySpaceStats{s.name,  s.current,      s.peak,
                                   s.limit, s.alloc_count, s.heap_alloc_count});
  }
  return out;
}

void MemoryTracker::reset_peak(MemorySpaceId space) {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_.at(static_cast<std::size_t>(space));
  s.peak = s.current;
}

void MemoryTracker::sample(MemorySpaceId space, double progress, const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  Space& s = spaces_.at(static_cast<std::size_t>(space));
  s.timeline.push_back(MemorySample{progress, s.current, label});
}

std::vector<MemorySample> MemoryTracker::timeline(MemorySpaceId space) const {
  std::lock_guard<std::mutex> lock(mu_);
  return spaces_.at(static_cast<std::size_t>(space)).timeline;
}

void MemoryTracker::clear_timeline(MemorySpaceId space) {
  std::lock_guard<std::mutex> lock(mu_);
  spaces_.at(static_cast<std::size_t>(space)).timeline.clear();
}

int MemoryTracker::space_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(spaces_.size());
}

std::uint64_t MemoryTracker::heap_allocs_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_allocs_total_;
}

ScopedPeakWatch::ScopedPeakWatch(MemorySpaceId space) : space_(space) {
  MemoryTracker::instance().reset_peak(space_);
  base_ = MemoryTracker::instance().current(space_);
}

std::size_t ScopedPeakWatch::peak_bytes() const {
  return MemoryTracker::instance().peak(space_);
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1000.0 && u < 4) {
    bytes /= 1000.0;
    ++u;
  }
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << bytes << " " << units[u];
  return os.str();
}

}  // namespace pgti
