// Memory accounting for simulated memory spaces (host RAM, simulated GPUs).
//
// The paper's headline claims are about *peak memory*: standard ST-GNN
// preprocessing OOMs a 512 GB Polaris node on PeMS while index-batching
// peaks at 45.75 GB (paper Fig. 2/6, Tables 2-4).  Every tensor
// allocation in this library is routed through MemoryTracker so that
// peak usage, usage timelines, and configurable OOM limits reproduce
// those experiments faithfully on scaled-down data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace pgti {

/// Thrown when an allocation would push a memory space past its
/// configured limit.  Mirrors the OOM crashes in paper Fig. 2.
class OutOfMemoryError : public std::runtime_error {
 public:
  OutOfMemoryError(const std::string& space, std::size_t requested,
                   std::size_t in_use, std::size_t limit);

  std::size_t requested() const noexcept { return requested_; }
  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t requested_;
  std::size_t in_use_;
  std::size_t limit_;
};

/// Identifier of a memory space.  Space 0 is always "host".
using MemorySpaceId = int;

inline constexpr MemorySpaceId kHostSpace = 0;

/// A single (usage, label) sample on a space's usage timeline.
struct MemorySample {
  double progress = 0.0;  ///< caller-supplied progress marker (0..1 or seconds)
  std::size_t bytes = 0;  ///< bytes in use when sampled
  std::string label;      ///< optional phase label ("preprocess", "epoch 3", ...)
};

/// Point-in-time statistics for one memory space.
struct MemorySpaceStats {
  std::string name;
  std::size_t current = 0;
  std::size_t peak = 0;
  std::size_t limit = 0;  ///< 0 == unlimited
  std::uint64_t alloc_count = 0;       ///< every charge (heap or pool-served)
  std::uint64_t heap_alloc_count = 0;  ///< charges that actually hit the heap
};

/// Process-wide registry of memory spaces.
///
/// Thread-safe.  Allocation bookkeeping is performed by tensor Storage;
/// user code normally only reads statistics and sets limits.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  /// Registers (or looks up) a named space and returns its id.
  MemorySpaceId register_space(const std::string& name);

  /// Sets the capacity of a space in bytes.  0 removes the limit.
  void set_limit(MemorySpaceId space, std::size_t bytes);

  /// Records an allocation; throws OutOfMemoryError when over limit.
  /// `from_heap` distinguishes real heap allocations from charges
  /// served by a pool (TensorArena / WorkspaceCache reuse): both count
  /// toward usage, limits, and alloc_count, but only heap allocations
  /// advance heap_alloc_count — the number the "alloc-free after
  /// warmup" claims are measured against.
  void on_alloc(MemorySpaceId space, std::size_t bytes, bool from_heap = true);

  /// Records a deallocation.
  void on_free(MemorySpaceId space, std::size_t bytes) noexcept;

  std::size_t current(MemorySpaceId space) const;
  std::size_t peak(MemorySpaceId space) const;
  MemorySpaceStats stats(MemorySpaceId space) const;
  std::vector<MemorySpaceStats> all_stats() const;

  /// Resets the peak of a space to its current usage (for scoped peaks).
  void reset_peak(MemorySpaceId space);

  /// Appends a sample to the space's usage timeline.
  void sample(MemorySpaceId space, double progress, const std::string& label = {});
  std::vector<MemorySample> timeline(MemorySpaceId space) const;
  void clear_timeline(MemorySpaceId space);

  /// Number of registered spaces.
  int space_count() const;

  /// Total heap allocations across all spaces since process start.
  /// EpochEngine snapshots this around each train step to compute the
  /// per-step delta surfaced as TrainResult/DistResult.allocs_last_step.
  std::uint64_t heap_allocs_total() const;

 private:
  MemoryTracker();

  struct Space {
    std::string name;
    std::size_t current = 0;
    std::size_t peak = 0;
    std::size_t limit = 0;
    std::uint64_t alloc_count = 0;
    std::uint64_t heap_alloc_count = 0;
    std::vector<MemorySample> timeline;
  };

  mutable std::mutex mu_;
  std::vector<Space> spaces_;
  std::uint64_t heap_allocs_total_ = 0;
};

/// RAII helper: resets a space's peak on construction and reports the
/// peak observed during its lifetime.
class ScopedPeakWatch {
 public:
  explicit ScopedPeakWatch(MemorySpaceId space);
  std::size_t peak_bytes() const;

 private:
  MemorySpaceId space_;
  std::size_t base_;
};

/// Pretty-prints a byte count ("45.75 GB").
std::string format_bytes(double bytes);

}  // namespace pgti
