#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

#include "tensor/tensor_ops.h"

namespace pgti {

Variable::Variable(Tensor value, bool requires_grad) : impl_(std::make_shared<Impl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
  impl_->needs_grad = requires_grad;
}

const Tensor& Variable::value() const {
  if (!impl_) throw std::logic_error("Variable::value on undefined variable");
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  if (!impl_) throw std::logic_error("Variable::mutable_value on undefined variable");
  return impl_->value;
}

Tensor& Variable::grad() {
  if (!impl_) throw std::logic_error("Variable::grad on undefined variable");
  if (!impl_->grad.defined()) {
    impl_->grad = Tensor::zeros(impl_->value.shape(), impl_->value.space());
  }
  return impl_->grad;
}

const Tensor& Variable::grad() const {
  if (!impl_ || !impl_->grad.defined()) {
    throw std::logic_error("Variable::grad: gradient not populated");
  }
  return impl_->grad;
}

void Variable::zero_grad() {
  if (impl_ && impl_->grad.defined()) impl_->grad.fill_(0.0f);
}

Variable Variable::detach() const {
  if (!impl_) return Variable();
  return Variable(impl_->value, /*requires_grad=*/false);
}

Variable Variable::make_node(Tensor value, std::vector<Variable> inputs,
                             std::function<void(Impl&)> backward_fn) {
  auto impl = std::make_shared<Impl>();
  impl->value = std::move(value);
  bool needs = false;
  for (const Variable& v : inputs) {
    if (v.defined() && v.needs_grad()) {
      needs = true;
      break;
    }
  }
  impl->needs_grad = needs;
  if (needs) {
    impl->parents.reserve(inputs.size());
    for (const Variable& v : inputs) {
      if (v.defined()) impl->parents.push_back(v.impl());
    }
    impl->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(impl));
}

void Variable::accumulate(const std::shared_ptr<Impl>& impl, const Tensor& delta) {
  if (!impl || !impl->needs_grad) return;
  if (!impl->grad.defined()) {
    impl->grad = Tensor::zeros(impl->value.shape(), impl->value.space());
  }
  Tensor d = delta.contiguous();
  ops::add_(impl->grad, d);
}

namespace {

void topo_visit(const std::shared_ptr<Variable::Impl>& node,
                std::unordered_set<Variable::Impl*>& seen,
                std::vector<std::shared_ptr<Variable::Impl>>& order) {
  if (!node || !node->needs_grad) return;
  if (!seen.insert(node.get()).second) return;
  for (const auto& p : node->parents) topo_visit(p, seen, order);
  order.push_back(node);
}

}  // namespace

void Variable::backward() {
  if (!impl_) throw std::logic_error("Variable::backward on undefined variable");
  if (impl_->value.numel() != 1) {
    throw std::logic_error("Variable::backward without seed requires a scalar value");
  }
  backward(Tensor::ones(impl_->value.shape(), impl_->value.space()));
}

void Variable::backward(const Tensor& grad_output) {
  if (!impl_) throw std::logic_error("Variable::backward on undefined variable");
  if (grad_output.shape() != impl_->value.shape()) {
    throw std::invalid_argument("Variable::backward: grad_output shape mismatch");
  }
  accumulate(impl_, grad_output);

  std::unordered_set<Impl*> seen;
  std::vector<std::shared_ptr<Impl>> order;
  topo_visit(impl_, seen, order);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Impl& node = **it;
    if (node.backward_fn && node.grad.defined()) {
      node.backward_fn(node);
      // Free intermediate gradients eagerly; only leaves retain grads
      // (so repeated backward() calls accumulate exactly once per call).
      if (!node.requires_grad) node.grad = Tensor();
    }
  }
}

}  // namespace pgti
