#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "tensor/tensor_ops.h"

namespace pgti {

Variable::Variable(Tensor value, bool requires_grad) : impl_(std::make_shared<Impl>()) {
  impl_->value = std::move(value);
  impl_->requires_grad = requires_grad;
  impl_->needs_grad = requires_grad;
}

const Tensor& Variable::value() const {
  if (!impl_) throw std::logic_error("Variable::value on undefined variable");
  return impl_->value;
}

Tensor& Variable::mutable_value() {
  if (!impl_) throw std::logic_error("Variable::mutable_value on undefined variable");
  return impl_->value;
}

Tensor& Variable::grad() {
  if (!impl_) throw std::logic_error("Variable::grad on undefined variable");
  if (!impl_->grad.defined()) {
    impl_->grad = Tensor::zeros(impl_->value.shape(), impl_->value.space());
  }
  return impl_->grad;
}

const Tensor& Variable::grad() const {
  if (!impl_ || !impl_->grad.defined()) {
    throw std::logic_error("Variable::grad: gradient not populated");
  }
  return impl_->grad;
}

void Variable::zero_grad() {
  if (impl_ && impl_->grad.defined()) impl_->grad.fill_(0.0f);
}

Variable Variable::detach() const {
  if (!impl_) return Variable();
  return Variable(impl_->value, /*requires_grad=*/false);
}

Variable Variable::make_node(Tensor value, std::vector<Variable> inputs,
                             std::function<void(Impl&)> backward_fn) {
  auto impl = std::make_shared<Impl>();
  impl->value = std::move(value);
  bool needs = false;
  for (const Variable& v : inputs) {
    if (v.defined() && v.needs_grad()) {
      needs = true;
      break;
    }
  }
  impl->needs_grad = needs;
  if (needs) {
    impl->parents.reserve(inputs.size());
    for (const Variable& v : inputs) {
      if (v.defined()) impl->parents.push_back(v.impl());
    }
    impl->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(impl));
}

void Variable::accumulate(const std::shared_ptr<Impl>& impl, const Tensor& delta) {
  if (!impl || !impl->needs_grad) return;
  if (!impl->grad.defined()) {
    impl->grad = Tensor::zeros(impl->value.shape(), impl->value.space());
  }
  Tensor d = delta.contiguous();
  ops::add_(impl->grad, d);
}

namespace {

void topo_visit(const std::shared_ptr<Variable::Impl>& node,
                std::unordered_set<Variable::Impl*>& seen,
                std::vector<std::shared_ptr<Variable::Impl>>& order) {
  if (!node || !node->needs_grad) return;
  if (!seen.insert(node.get()).second) return;
  for (const auto& p : node->parents) topo_visit(p, seen, order);
  order.push_back(node);
}

}  // namespace

void Variable::backward() { backward(static_cast<GradReadyObserver*>(nullptr)); }

void Variable::backward(const Tensor& grad_output) {
  backward(grad_output, nullptr);
}

void Variable::backward(GradReadyObserver* observer) {
  if (!impl_) throw std::logic_error("Variable::backward on undefined variable");
  if (impl_->value.numel() != 1) {
    throw std::logic_error("Variable::backward without seed requires a scalar value");
  }
  backward(Tensor::ones(impl_->value.shape(), impl_->value.space()), observer);
}

void Variable::backward(const Tensor& grad_output, GradReadyObserver* observer) {
  if (!impl_) throw std::logic_error("Variable::backward on undefined variable");
  if (grad_output.shape() != impl_->value.shape()) {
    throw std::invalid_argument("Variable::backward: grad_output shape mismatch");
  }
  accumulate(impl_, grad_output);

  std::unordered_set<Impl*> seen;
  std::vector<std::shared_ptr<Impl>> order;
  topo_visit(impl_, seen, order);

  // Producer countdown for grad-ready notification: a requires_grad
  // node's gradient is final once every distinct consumer that can
  // accumulate into it has retired.  Counts are taken over the sweep's
  // own tape, so leaves unreachable from the root never fire.
  std::unordered_map<Impl*, int> pending;
  std::unordered_set<Impl*> counted;
  if (observer) {
    std::vector<Impl*> leaves;
    for (const auto& n : order) {
      if (n->requires_grad) {
        pending.emplace(n.get(), 0);
        leaves.push_back(n.get());
      }
    }
    for (const auto& n : order) {
      if (n->parents.empty()) continue;
      counted.clear();
      for (const auto& p : n->parents) {
        auto it = pending.find(p.get());
        if (it != pending.end() && counted.insert(p.get()).second) ++it->second;
      }
    }
    observer->on_backward_start(leaves);
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Impl& node = **it;
    if (node.backward_fn && node.grad.defined()) {
      node.backward_fn(node);
      // Free intermediate gradients eagerly; only leaves retain grads
      // (so repeated backward() calls accumulate exactly once per call).
      if (!node.requires_grad) node.grad = Tensor();
    }
    if (!observer) continue;
    // Reverse-topo order retires every consumer before the leaf itself
    // is reached, so by a leaf's own retirement its count has already
    // drained — except when the leaf *is* the root, covered here.
    if (node.requires_grad) {
      auto self = pending.find(&node);
      if (self != pending.end() && self->second == 0) {
        self->second = -1;  // fired
        observer->on_grad_ready(&node);
      }
    }
    counted.clear();
    for (const auto& p : node.parents) {
      auto pit = pending.find(p.get());
      if (pit == pending.end() || pit->second < 0) continue;
      if (!counted.insert(p.get()).second) continue;
      if (--pit->second == 0) {
        pit->second = -1;  // fired
        observer->on_grad_ready(p.get());
      }
    }
  }
}

}  // namespace pgti
