// Contract every backward_fn here upholds (and that backward()'s
// grad-ready counting relies on, see GradReadyObserver in variable.h):
// a node's backward_fn accumulates the ENTIRE contribution into each
// parent exactly once, synchronously, before it returns.  A backward_fn
// that deferred part of a parent's accumulation — or touched a Variable
// it did not list as an input — would make backward() fire
// on_grad_ready with a partial gradient and silently corrupt the
// overlapped all-reduce.
#include "autograd/ops.h"

#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"
#include "tensor/tensor_ops.h"

namespace pgti::ag {
namespace {

using Impl = Variable::Impl;
using ImplPtr = std::shared_ptr<Variable::Impl>;

// Direct-accumulation access to a parent's gradient buffer: returns
// nullptr when the parent doesn't participate, otherwise the (zeroed on
// first use) grad data.  Writing `+=` through this pointer is the
// alloc-free equivalent of Variable::accumulate(impl, delta) — the
// whole contribution must still land before backward_fn returns (the
// contract at the top of this file).
float* grad_data(const ImplPtr& impl) {
  if (!impl || !impl->needs_grad) return nullptr;
  if (!impl->grad.defined()) {
    impl->grad = Tensor::zeros(impl->value.shape(), impl->value.space());
  }
  return impl->grad.data();
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  ImplPtr ia = a.impl(), ib = b.impl();
  return Variable::make_node(ops::add(a.value(), b.value()), {a, b},
                             [ia, ib](Impl& node) {
                               Variable::accumulate(ia, node.grad);
                               Variable::accumulate(ib, node.grad);
                             });
}

Variable sub(const Variable& a, const Variable& b) {
  ImplPtr ia = a.impl(), ib = b.impl();
  return Variable::make_node(ops::sub(a.value(), b.value()), {a, b},
                             [ia, ib](Impl& node) {
                               Variable::accumulate(ia, node.grad);
                               Variable::accumulate(ib, ops::neg(node.grad));
                             });
}

Variable mul(const Variable& a, const Variable& b) {
  ImplPtr ia = a.impl(), ib = b.impl();
  Tensor va = a.value(), vb = b.value();
  return Variable::make_node(ops::mul(va, vb), {a, b}, [ia, ib, va, vb](Impl& node) {
    Variable::accumulate(ia, ops::mul(node.grad, vb));
    Variable::accumulate(ib, ops::mul(node.grad, va));
  });
}

Variable neg(const Variable& a) {
  ImplPtr ia = a.impl();
  return Variable::make_node(ops::neg(a.value()), {a}, [ia](Impl& node) {
    Variable::accumulate(ia, ops::neg(node.grad));
  });
}

Variable mul_scalar(const Variable& a, float s) {
  ImplPtr ia = a.impl();
  return Variable::make_node(ops::mul_scalar(a.value(), s), {a}, [ia, s](Impl& node) {
    Variable::accumulate(ia, ops::mul_scalar(node.grad, s));
  });
}

Variable add_scalar(const Variable& a, float s) {
  ImplPtr ia = a.impl();
  return Variable::make_node(ops::add_scalar(a.value(), s), {a}, [ia](Impl& node) {
    Variable::accumulate(ia, node.grad);
  });
}

Variable add_bias(const Variable& m, const Variable& bias) {
  ImplPtr im = m.impl(), ib = bias.impl();
  return Variable::make_node(ops::add_bias(m.value(), bias.value()), {m, bias},
                             [im, ib](Impl& node) {
                               Variable::accumulate(im, node.grad);
                               Variable::accumulate(ib, ops::colsum(node.grad));
                             });
}

Variable mul_colvec(const Variable& m, const Variable& col) {
  ImplPtr im = m.impl(), ic = col.impl();
  Tensor vm = m.value(), vc = col.value();
  return Variable::make_node(ops::mul_colvec(vm, vc), {m, col},
                             [im, ic, vm, vc](Impl& node) {
                               Variable::accumulate(im, ops::mul_colvec(node.grad, vc));
                               Variable::accumulate(ic, ops::rowsum(ops::mul(node.grad, vm)));
                             });
}

Variable matmul(const Variable& a, const Variable& b) {
  ImplPtr ia = a.impl(), ib = b.impl();
  Tensor va = a.value(), vb = b.value();
  return Variable::make_node(ops::matmul(va, vb), {a, b}, [ia, ib, va, vb](Impl& node) {
    Variable::accumulate(ia, ops::matmul_nt(node.grad, vb));
    Variable::accumulate(ib, ops::matmul_tn(va, node.grad));
  });
}

Variable matmul_reference(const Variable& a, const Variable& b) {
  ImplPtr ia = a.impl(), ib = b.impl();
  Tensor va = a.value(), vb = b.value();
  // Backward uses the retained pre-optimization tn/nt kernels so the
  // reference path's training-step cost is the honest "before" for the
  // in-run bench ratio; their bits match the blocked kernels exactly.
  return Variable::make_node(ops::matmul_reference(va, vb), {a, b},
                             [ia, ib, va, vb](Impl& node) {
                               Variable::accumulate(ia, ops::matmul_nt_reference(node.grad, vb));
                               Variable::accumulate(ib, ops::matmul_tn_reference(va, node.grad));
                             });
}

Variable spmm(const Csr& p, const Csr& p_transpose, const Variable& x) {
  ImplPtr ix = x.impl();
  const bool batched = x.value().dim() == 3;
  Tensor y = batched ? p.spmm_batched(x.value()) : p.spmm(x.value());
  // The caller owns the graph structure; capture the transpose by value
  // (CSR copies are cheap relative to model tensors and keep the tape
  // self-contained).
  Csr pt = p_transpose;
  return Variable::make_node(std::move(y), {x}, [ix, pt, batched](Impl& node) {
    Variable::accumulate(ix, batched ? pt.spmm_batched(node.grad) : pt.spmm(node.grad));
  });
}

Variable matmul_bias_act(const Variable& a, const Variable& w, const Variable& bias,
                         ops::Act act) {
  ImplPtr ia = a.impl(), iw = w.impl(), ib = bias.impl();
  Tensor va = a.value(), vw = w.value();
  Tensor y = ops::matmul_bias_act(va, vw, bias.value(), act);
  return Variable::make_node(y, {a, w, bias}, [ia, iw, ib, va, vw, y, act](Impl& node) {
    if (act == ops::Act::kIdentity) {
      // No epilogue to fuse: dz aliases the incoming gradient.
      Variable::accumulate(ia, ops::matmul_nt(node.grad, vw));
      Variable::accumulate(iw, ops::matmul_tn(va, node.grad));
      Variable::accumulate(ib, ops::colsum(node.grad));
      return;
    }
    // Fused backward epilogue: act' and the NT gemm in one dispatch;
    // dz stays materialized for the tn/colsum accumulations.
    Tensor dz = Tensor::empty(y.shape(), y.space());
    Variable::accumulate(ia, ops::matmul_nt_act_backward(node.grad, y, act, vw, dz));
    Variable::accumulate(iw, ops::matmul_tn(va, dz));
    Variable::accumulate(ib, ops::colsum(dz));
  });
}

Variable spmm_bias_act(const Csr& p, const Csr& p_transpose, const Variable& x,
                       const Variable& bias, ops::Act act) {
  ImplPtr ix = x.impl(), ib = bias.impl();
  const bool batched = x.value().dim() == 3;
  Tensor y = p.spmm_bias_act(x.value(), bias.value(), act);
  Csr pt = p_transpose;
  return Variable::make_node(y, {x, bias}, [ix, ib, y, pt, batched, act](Impl& node) {
    Tensor dz = ops::act_backward(node.grad, y, act);
    Variable::accumulate(ix, batched ? pt.spmm_batched(dz) : pt.spmm(dz));
    Variable::accumulate(ib, ops::colsum(dz));
  });
}

std::pair<Variable, Variable> gru_gates(const Variable& pre, const Variable& h) {
  const Tensor& vh = h.value();
  Tensor r = Tensor::empty(vh.shape(), vh.space());
  Tensor u = Tensor::empty(vh.shape(), vh.space());
  Tensor rh = Tensor::empty(vh.shape(), vh.space());
  ops::gru_gates(pre.value(), vh, r, u, rh);
  const std::int64_t hidden = vh.size(-1);
  ImplPtr ipre = pre.impl(), ih = h.impl();
  Tensor vhc = vh.contiguous();
  // Two nodes over one kernel pass.  Both write disjoint column halves
  // of pre's gradient directly, so neither allocates a [.., 2H] delta;
  // the expressions match the unfused mul/slice/sigmoid backward chain
  // element for element.
  Variable rh_var = Variable::make_node(
      rh, {pre, h}, [ipre, ih, r, vhc, hidden](Impl& node) {
        const std::int64_t rows = r.numel() / hidden;
        const float* pg = node.grad.data();
        const float* pr = r.data();
        const float* ph = vhc.data();
        float* gh = grad_data(ih);
        float* gp = grad_data(ipre);
        parallel_for(0, rows, std::max<std::int64_t>(1, 16384 / hidden),
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) {
                         const std::int64_t off = i * hidden;
                         float* gprow = gp == nullptr ? nullptr : gp + i * 2 * hidden;
                         for (std::int64_t j = 0; j < hidden; ++j) {
                           const float g = pg[off + j];
                           if (gh != nullptr) gh[off + j] += g * pr[off + j];
                           if (gprow != nullptr) {
                             // d(pre_r) = ((g*h) * r) * (1-r), the sliced
                             // sigmoid backward of the reference chain.
                             gprow[j] += g * ph[off + j] * pr[off + j] *
                                         (1.0f - pr[off + j]);
                           }
                         }
                       }
                     });
      });
  Variable u_var = Variable::make_node(u, {pre}, [ipre, u, hidden](Impl& node) {
    const std::int64_t rows = u.numel() / hidden;
    const float* pg = node.grad.data();
    const float* pu = u.data();
    float* gp = grad_data(ipre);
    if (gp == nullptr) return;
    parallel_for(0, rows, std::max<std::int64_t>(1, 16384 / hidden),
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t i = lo; i < hi; ++i) {
                     const std::int64_t off = i * hidden;
                     float* gprow = gp + i * 2 * hidden + hidden;
                     for (std::int64_t j = 0; j < hidden; ++j) {
                       gprow[j] += pg[off + j] * pu[off + j] * (1.0f - pu[off + j]);
                     }
                   }
                 });
  });
  return {rh_var, u_var};
}

Variable gru_state(const Variable& c, const Variable& u, const Variable& h) {
  ImplPtr ic = c.impl(), iu = u.impl(), ih = h.impl();
  Tensor vc = c.value().contiguous(), vu = u.value().contiguous(),
         vhc = h.value().contiguous();
  Tensor y = ops::gru_state(vc, vu, vhc);
  return Variable::make_node(y, {c, u, h}, [ic, iu, ih, vc, vu, vhc](Impl& node) {
    const float* pg = node.grad.data();
    const float* pc = vc.data();
    const float* pu = vu.data();
    const float* ph = vhc.data();
    float* gc = grad_data(ic);
    float* gu = grad_data(iu);
    float* gh = grad_data(ih);
    parallel_for(0, vc.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const float g = pg[i];
        // d_c = g + (-(g*u)): the add-then-negated-sub accumulation of
        // the unfused c + u*(h-c) chain, in its tape order.
        if (gc != nullptr) gc[i] += g + (-(g * pu[i]));
        if (gu != nullptr) gu[i] += g * (ph[i] - pc[i]);
        if (gh != nullptr) gh[i] += g * pu[i];
      }
    });
  });
}

Variable sigmoid(const Variable& a) {
  ImplPtr ia = a.impl();
  Tensor y = ops::sigmoid(a.value());
  return Variable::make_node(y, {a}, [ia, y](Impl& node) {
    // dx = g * y * (1 - y), accumulated in place — no dx temporary.
    float* pd = grad_data(ia);
    if (pd == nullptr) return;
    const float* py = y.data();
    const float* pg = node.grad.data();
    parallel_for(0, y.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) pd[i] += pg[i] * py[i] * (1.0f - py[i]);
    });
  });
}

Variable tanh(const Variable& a) {
  ImplPtr ia = a.impl();
  Tensor y = ops::tanh(a.value());
  return Variable::make_node(y, {a}, [ia, y](Impl& node) {
    float* pd = grad_data(ia);
    if (pd == nullptr) return;
    const float* py = y.data();
    const float* pg = node.grad.data();
    parallel_for(0, y.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) pd[i] += pg[i] * (1.0f - py[i] * py[i]);
    });
  });
}

Variable relu(const Variable& a) {
  ImplPtr ia = a.impl();
  Tensor y = ops::relu(a.value());
  return Variable::make_node(y, {a}, [ia, y](Impl& node) {
    float* pd = grad_data(ia);
    if (pd == nullptr) return;
    const float* py = y.data();
    const float* pg = node.grad.data();
    parallel_for(0, y.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) pd[i] += py[i] > 0.0f ? pg[i] : 0.0f;
    });
  });
}

Variable reshape(const Variable& a, const Shape& shape) {
  ImplPtr ia = a.impl();
  Shape original = a.value().shape();
  return Variable::make_node(a.value().contiguous().reshape(shape), {a},
                             [ia, original](Impl& node) {
                               Variable::accumulate(
                                   ia, node.grad.contiguous().reshape(original));
                             });
}

Variable concat_lastdim(const std::vector<Variable>& parts) {
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<ImplPtr> impls;
  impls.reserve(parts.size());
  std::vector<std::int64_t> widths;
  widths.reserve(parts.size());
  for (const Variable& p : parts) {
    values.push_back(p.value());
    impls.push_back(p.impl());
    widths.push_back(p.value().size(-1));
  }
  return Variable::make_node(
      ops::concat_lastdim(values), parts, [impls, widths](Impl& node) {
        std::int64_t off = 0;
        for (std::size_t i = 0; i < impls.size(); ++i) {
          Variable::accumulate(impls[i], node.grad.slice(-1, off, widths[i]));
          off += widths[i];
        }
      });
}

Variable slice_dim0(const Variable& a, std::int64_t start, std::int64_t length) {
  ImplPtr ia = a.impl();
  Shape parent_shape = a.value().shape();
  MemorySpaceId space = a.value().space();
  return Variable::make_node(
      a.value().slice(0, start, length).contiguous(), {a},
      [ia, parent_shape, space, start, length](Impl& node) {
        Tensor delta = Tensor::zeros(parent_shape, space);
        delta.slice(0, start, length).copy_from(node.grad);
        Variable::accumulate(ia, delta);
      });
}

Variable slice_lastdim(const Variable& a, std::int64_t start, std::int64_t length) {
  ImplPtr ia = a.impl();
  Shape parent_shape = a.value().shape();
  MemorySpaceId space = a.value().space();
  return Variable::make_node(
      a.value().slice(-1, start, length).contiguous(), {a},
      [ia, parent_shape, space, start, length](Impl& node) {
        Tensor delta = Tensor::zeros(parent_shape, space);
        delta.slice(-1, start, length).copy_from(node.grad);
        Variable::accumulate(ia, delta);
      });
}

Variable sum_all(const Variable& a) {
  ImplPtr ia = a.impl();
  Shape shape = a.value().shape();
  MemorySpaceId space = a.value().space();
  Tensor out = Tensor::full({1}, static_cast<float>(ops::sum(a.value())), space);
  return Variable::make_node(out, {a}, [ia, shape, space](Impl& node) {
    Variable::accumulate(ia, Tensor::full(shape, node.grad.item(), space));
  });
}

Variable mean_all(const Variable& a) {
  ImplPtr ia = a.impl();
  Shape shape = a.value().shape();
  MemorySpaceId space = a.value().space();
  const float inv_n = 1.0f / static_cast<float>(a.value().numel());
  Tensor out = Tensor::full({1}, static_cast<float>(ops::mean(a.value())), space);
  return Variable::make_node(out, {a}, [ia, shape, space, inv_n](Impl& node) {
    Variable::accumulate(ia, Tensor::full(shape, node.grad.item() * inv_n, space));
  });
}

Variable softmax_lastdim(const Variable& a) {
  ImplPtr ia = a.impl();
  Tensor y = ops::softmax_lastdim(a.value());
  return Variable::make_node(y, {a}, [ia, y](Impl& node) {
    // dx = y * (g - rowsum(g * y)); gy doubles as the dx buffer once
    // its rowsum is taken.
    Tensor gy = ops::mul(node.grad, y);
    Tensor s = ops::rowsum(gy);
    ops::sub_into(gy, ops::mul_colvec(y, s), gy);
    Variable::accumulate(ia, gy);
  });
}

Variable layer_norm(const Variable& a, const Variable& gamma, const Variable& beta,
                    float eps) {
  const Tensor& x = a.value();
  if (x.dim() < 1 || gamma.value().dim() != 1 || beta.value().dim() != 1 ||
      gamma.value().size(0) != x.size(-1) || beta.value().size(0) != x.size(-1)) {
    throw std::invalid_argument("layer_norm: gamma/beta must be [C]");
  }
  const std::int64_t c = x.size(-1);
  const std::int64_t rows = x.numel() / c;

  Tensor xhat = Tensor::empty(x.shape(), x.space());
  Tensor inv_std = Tensor::empty({rows, 1}, x.space());
  {
    float* ph = xhat.data();
    float* pis = inv_std.data();
    const Tensor xc = x.contiguous();
    const float* pxc = xc.data();
    parallel_for(0, rows, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t r = lo; r < hi; ++r) {
        const float* src = pxc + r * c;
        float mu = 0.0f;
        for (std::int64_t j = 0; j < c; ++j) mu += src[j];
        mu /= static_cast<float>(c);
        float var = 0.0f;
        for (std::int64_t j = 0; j < c; ++j) {
          const float d = src[j] - mu;
          var += d * d;
        }
        var /= static_cast<float>(c);
        const float is = 1.0f / std::sqrt(var + eps);
        pis[r] = is;
        float* dst = ph + r * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] = (src[j] - mu) * is;
      }
    });
  }

  // y = xhat * gamma + beta, gamma/beta broadcast over rows.
  Tensor y = Tensor::empty(x.shape(), x.space());
  {
    const float* ph = xhat.data();
    const float* pgam = gamma.value().data();
    const float* pbet = beta.value().data();
    float* py = y.data();
    parallel_for(0, rows, 64, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t r = lo; r < hi; ++r) {
        const float* src = ph + r * c;
        float* dst = py + r * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] = src[j] * pgam[j] + pbet[j];
      }
    });
  }
  ImplPtr ia = a.impl(), ig = gamma.impl(), ib = beta.impl();
  Tensor vgamma = gamma.value();
  return Variable::make_node(
      y, {a, gamma, beta}, [ia, ig, ib, xhat, inv_std, vgamma, c, rows](Impl& node) {
        const Tensor& g = node.grad;
        Variable::accumulate(ib, ops::colsum(g));
        Variable::accumulate(ig, ops::colsum(ops::mul(g, xhat)));
        // dxhat = g * gamma (broadcast over rows)
        Tensor dxhat = Tensor::empty(xhat.shape(), xhat.space());
        {
          const float* pg = g.data();
          const float* pgam = vgamma.data();
          float* pd = dxhat.data();
          parallel_for(0, rows, 64, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t r = lo; r < hi; ++r) {
              const float* srow = pg + r * c;
              float* drow = pd + r * c;
              for (std::int64_t j = 0; j < c; ++j) drow[j] = srow[j] * pgam[j];
            }
          });
        }
        // dx = inv_std/C * (C*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
        Tensor dx = Tensor::empty(xhat.shape(), xhat.space());
        {
          const float* ph = xhat.data();
          const float* pdh = dxhat.data();
          const float* pis = inv_std.data();
          float* pd = dx.data();
          parallel_for(0, rows, 64, [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t r = lo; r < hi; ++r) {
              const float* hrow = ph + r * c;
              const float* dhrow = pdh + r * c;
              float s1 = 0.0f, s2 = 0.0f;
              for (std::int64_t j = 0; j < c; ++j) {
                s1 += dhrow[j];
                s2 += dhrow[j] * hrow[j];
              }
              const float scale = pis[r] / static_cast<float>(c);
              float* drow = pd + r * c;
              for (std::int64_t j = 0; j < c; ++j) {
                drow[j] = scale * (static_cast<float>(c) * dhrow[j] - s1 - hrow[j] * s2);
              }
            }
          });
        }
        Variable::accumulate(ia, dx);
      });
}

Variable batched_attention(const Variable& q, const Variable& k, const Variable& v,
                           std::int64_t batch, std::int64_t tokens) {
  const Tensor& vq = q.value();
  const Tensor& vk = k.value();
  const Tensor& vv = v.value();
  if (vq.dim() != 2 || vq.shape() != vk.shape() || vq.shape() != vv.shape() ||
      vq.size(0) != batch * tokens) {
    throw std::invalid_argument("batched_attention: q/k/v must be [B*N, D]");
  }
  const std::int64_t d = vq.size(1);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  Tensor out = Tensor::empty(vq.shape(), vq.space());
  Tensor attn = Tensor::empty({batch, tokens, tokens}, vq.space());
  for (std::int64_t b = 0; b < batch; ++b) {
    const Tensor qb = vq.slice(0, b * tokens, tokens);
    const Tensor kb = vk.slice(0, b * tokens, tokens);
    const Tensor vb = vv.slice(0, b * tokens, tokens);
    Tensor s = ops::matmul_nt(qb, kb);  // [N, N]
    ops::scale_(s, scale);
    Tensor a = ops::softmax_lastdim(s);
    attn.select(0, b).copy_from(a);
    out.slice(0, b * tokens, tokens).copy_from(ops::matmul(a, vb));
  }

  ImplPtr iq = q.impl(), ik = k.impl(), iv = v.impl();
  return Variable::make_node(
      out, {q, k, v},
      [iq, ik, iv, vq, vk, vv, attn, batch, tokens, scale](Impl& node) {
        Tensor dq = Tensor::zeros(vq.shape(), vq.space());
        Tensor dk = Tensor::zeros(vk.shape(), vk.space());
        Tensor dv = Tensor::zeros(vv.shape(), vv.space());
        for (std::int64_t b = 0; b < batch; ++b) {
          const Tensor qb = vq.slice(0, b * tokens, tokens);
          const Tensor kb = vk.slice(0, b * tokens, tokens);
          const Tensor vb = vv.slice(0, b * tokens, tokens);
          const Tensor a = attn.select(0, b).contiguous();
          const Tensor go = node.grad.slice(0, b * tokens, tokens).contiguous();
          // dV = A^T go
          dv.slice(0, b * tokens, tokens).copy_from(ops::matmul_tn(a, go));
          // dA = go V^T
          Tensor da = ops::matmul_nt(go, vb.contiguous());
          // dS = A * (dA - rowsum(dA * A))
          Tensor s_row = ops::rowsum(ops::mul(da, a));
          Tensor ds = ops::mul(a, da);
          ops::sub_into(ds, ops::mul_colvec(a, s_row), ds);
          ops::scale_(ds, scale);
          dq.slice(0, b * tokens, tokens).copy_from(ops::matmul(ds, kb.contiguous()));
          dk.slice(0, b * tokens, tokens)
              .copy_from(ops::matmul_tn(ds, qb.contiguous()));
        }
        Variable::accumulate(iq, dq);
        Variable::accumulate(ik, dk);
        Variable::accumulate(iv, dv);
      });
}

Variable mae_loss(const Variable& pred, const Tensor& target) {
  ImplPtr ip = pred.impl();
  Tensor vp = pred.value();
  Tensor vt = target.contiguous();
  Tensor out = Tensor::full({1}, static_cast<float>(ops::mae(vp, vt)), vp.space());
  return Variable::make_node(out, {pred}, [ip, vp, vt](Impl& node) {
    const float g = node.grad.item() / static_cast<float>(vp.numel());
    Tensor dx = Tensor::empty(vp.shape(), vp.space());
    const float* pp = vp.data();
    const float* pt = vt.data();
    float* pd = dx.data();
    parallel_for(0, vp.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const float diff = pp[i] - pt[i];
        pd[i] = diff > 0.0f ? g : (diff < 0.0f ? -g : 0.0f);
      }
    });
    Variable::accumulate(ip, dx);
  });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  ImplPtr ip = pred.impl();
  Tensor vp = pred.value();
  Tensor vt = target.contiguous();
  Tensor out = Tensor::full({1}, static_cast<float>(ops::mse(vp, vt)), vp.space());
  return Variable::make_node(out, {pred}, [ip, vp, vt](Impl& node) {
    const float g = 2.0f * node.grad.item() / static_cast<float>(vp.numel());
    Tensor dx = Tensor::empty(vp.shape(), vp.space());
    const float* pp = vp.data();
    const float* pt = vt.data();
    float* pd = dx.data();
    parallel_for(0, vp.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) pd[i] = g * (pp[i] - pt[i]);
    });
    Variable::accumulate(ip, dx);
  });
}

Variable masked_mae_loss(const Variable& pred, const Tensor& target, float null_value) {
  ImplPtr ip = pred.impl();
  Tensor vp = pred.value();
  Tensor vt = target.contiguous();
  // Forward: mean |p - t| over entries with t != null_value.
  const float* pp = vp.data();
  const float* pt = vt.data();
  double acc = 0.0;
  std::int64_t valid = 0;
  for (std::int64_t i = 0, n = vp.numel(); i < n; ++i) {
    if (pt[i] == null_value) continue;
    acc += std::fabs(static_cast<double>(pp[i]) - pt[i]);
    ++valid;
  }
  const float inv_valid = valid > 0 ? 1.0f / static_cast<float>(valid) : 0.0f;
  Tensor out = Tensor::full(
      {1}, valid > 0 ? static_cast<float>(acc / static_cast<double>(valid)) : 0.0f,
      vp.space());
  return Variable::make_node(out, {pred}, [ip, vp, vt, null_value, inv_valid](Impl& node) {
    const float g = node.grad.item() * inv_valid;
    Tensor dx = Tensor::empty(vp.shape(), vp.space());
    const float* p = vp.data();
    const float* t = vt.data();
    float* pd = dx.data();
    parallel_for(0, vp.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        if (t[i] == null_value) {
          pd[i] = 0.0f;
          continue;
        }
        const float diff = p[i] - t[i];
        pd[i] = diff > 0.0f ? g : (diff < 0.0f ? -g : 0.0f);
      }
    });
    Variable::accumulate(ip, dx);
  });
}

Variable huber_loss(const Variable& pred, const Tensor& target, float delta) {
  ImplPtr ip = pred.impl();
  Tensor vp = pred.value();
  Tensor vt = target.contiguous();
  const float* pp = vp.data();
  const float* pt = vt.data();
  double acc = 0.0;
  const std::int64_t n = vp.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = std::fabs(static_cast<double>(pp[i]) - pt[i]);
    acc += d <= delta ? 0.5 * d * d : delta * (d - 0.5 * delta);
  }
  Tensor out =
      Tensor::full({1}, static_cast<float>(acc / static_cast<double>(n)), vp.space());
  return Variable::make_node(out, {pred}, [ip, vp, vt, delta](Impl& node) {
    const float g = node.grad.item() / static_cast<float>(vp.numel());
    Tensor dx = Tensor::empty(vp.shape(), vp.space());
    const float* p = vp.data();
    const float* t = vt.data();
    float* pd = dx.data();
    parallel_for(0, vp.numel(), 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const float diff = p[i] - t[i];
        if (diff > delta) {
          pd[i] = g * delta;
        } else if (diff < -delta) {
          pd[i] = -g * delta;
        } else {
          pd[i] = g * diff;
        }
      }
    });
    Variable::accumulate(ip, dx);
  });
}

}  // namespace pgti::ag
