// Differentiable operations.
//
// Forward computation delegates to pgti::ops kernels; each function
// installs a closed-form backward.  All gradients are exercised by
// finite-difference tests (tests/autograd_test.cpp).
#pragma once

#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "graph/csr.h"
#include "tensor/tensor_ops.h"

namespace pgti::ag {

// --- arithmetic -------------------------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable neg(const Variable& a);
Variable mul_scalar(const Variable& a, float s);
Variable add_scalar(const Variable& a, float s);

/// m[M,C] + bias[C] broadcast over rows.
Variable add_bias(const Variable& m, const Variable& bias);
/// m[M,C] * col[M,1] broadcast over columns.
Variable mul_colvec(const Variable& m, const Variable& col);

// --- linear algebra ----------------------------------------------------
/// [M,K] x [K,N] -> [M,N]
Variable matmul(const Variable& a, const Variable& b);
/// Same op with the retained naive forward kernel
/// (ops::matmul_reference); the pre-optimization baseline that parity
/// tests and in-run before/after benches compare against.
Variable matmul_reference(const Variable& a, const Variable& b);
/// Sparse graph propagation: y = P x for x [N,C] or [B,N,C].
/// `p_transpose` must be P^T (used for the input gradient).
Variable spmm(const Csr& p, const Csr& p_transpose, const Variable& x);

// --- fused ops (DESIGN.md §14) -----------------------------------------
// Forward runs the bias add and activation in the producing kernel's
// store epilogue; backward applies the activation derivative once and
// feeds the matmul/SpMM/colsum gradients directly.  Values and
// gradients are bit-identical to the unfused composition
// act(add_bias(matmul(a, w), bias)) etc.
/// act(a * w + bias) in one node.
Variable matmul_bias_act(const Variable& a, const Variable& w, const Variable& bias,
                         ops::Act act);
/// act(P x + bias) in one node, x [N,C] or [B,N,C], bias [C].
Variable spmm_bias_act(const Csr& p, const Csr& p_transpose, const Variable& x,
                       const Variable& bias, ops::Act act);
/// Fused DCGRU gate block over pre [.., 2H] and hidden state h [.., H]:
/// r = sigmoid(pre[.., :H]), u = sigmoid(pre[.., H:]), returns
/// {r*h, u} as two nodes.  Replaces sigmoid + two slices + mul (four
/// tape nodes, four materialized tensors) with one kernel pass.
std::pair<Variable, Variable> gru_gates(const Variable& pre, const Variable& h);
/// c + u*(h - c) in one node (the GRU state update) without the
/// sub/mul/add temporaries.
Variable gru_state(const Variable& c, const Variable& u, const Variable& h);

// --- activations -------------------------------------------------------
Variable sigmoid(const Variable& a);
Variable tanh(const Variable& a);
Variable relu(const Variable& a);

// --- shape -----------------------------------------------------------------
Variable reshape(const Variable& a, const Shape& shape);
Variable concat_lastdim(const std::vector<Variable>& parts);
/// Contiguous subrange along dimension 0.
Variable slice_dim0(const Variable& a, std::int64_t start, std::int64_t length);
/// Subrange along the last dimension (gate splitting in GRU cells).
Variable slice_lastdim(const Variable& a, std::int64_t start, std::int64_t length);

// --- reductions -------------------------------------------------------------
Variable sum_all(const Variable& a);   ///< scalar [1]
Variable mean_all(const Variable& a);  ///< scalar [1]

// --- normalization / attention ------------------------------------------------
Variable softmax_lastdim(const Variable& a);
/// LayerNorm over the last dimension with affine parameters.
Variable layer_norm(const Variable& a, const Variable& gamma, const Variable& beta,
                    float eps = 1e-5f);
/// Fused scaled-dot-product self-attention over B batches of N tokens:
/// inputs q,k,v are [B*N, D]; output is [B*N, D].  Softmax over each
/// batch's N keys.
Variable batched_attention(const Variable& q, const Variable& k, const Variable& v,
                           std::int64_t batch, std::int64_t tokens);

// --- losses (target is constant) ----------------------------------------------
Variable mae_loss(const Variable& pred, const Tensor& target);
Variable mse_loss(const Variable& pred, const Tensor& target);
/// Masked MAE as used by DCRNN on PeMS: entries where the target equals
/// `null_value` (missing sensor readings) contribute neither loss nor
/// gradient; the mean is over valid entries only.
Variable masked_mae_loss(const Variable& pred, const Tensor& target,
                         float null_value = 0.0f);
/// Huber/smooth-L1 loss with threshold delta.
Variable huber_loss(const Variable& pred, const Tensor& target, float delta = 1.0f);

}  // namespace pgti::ag
