// Finite-difference gradient checking used throughout the test suite.
#pragma once

#include <cmath>
#include <functional>

#include "autograd/variable.h"

namespace pgti::ag {

/// Result of a gradient check: worst absolute / relative error over
/// all coordinates of `input`.
struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
};

/// Compares the analytic gradient of scalar-valued fn(input) against
/// central finite differences.  `fn` must return a scalar Variable and
/// be a pure function of the input's value.
inline GradCheckResult gradcheck(const std::function<Variable(const Variable&)>& fn,
                                 Variable& input, float eps = 1e-3f) {
  Variable out = fn(input);
  input.zero_grad();
  out.backward();
  Tensor analytic = input.grad().clone();

  GradCheckResult result;
  Tensor& x = input.mutable_value();
  float* px = x.data();
  const float* pa = analytic.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float orig = px[i];
    px[i] = orig + eps;
    const double fp = static_cast<double>(fn(input).value().item());
    px[i] = orig - eps;
    const double fm = static_cast<double>(fn(input).value().item());
    px[i] = orig;
    const double numeric = (fp - fm) / (2.0 * static_cast<double>(eps));
    const double abs_err = std::fabs(numeric - static_cast<double>(pa[i]));
    const double denom = std::max(1.0, std::max(std::fabs(numeric),
                                                std::fabs(static_cast<double>(pa[i]))));
    result.max_abs_err = std::max(result.max_abs_err, abs_err);
    result.max_rel_err = std::max(result.max_rel_err, abs_err / denom);
  }
  return result;
}

}  // namespace pgti::ag
