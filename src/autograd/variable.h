// Reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor and (optionally) a node in a dynamically
// built computation tape.  backward() performs a topological sweep and
// accumulates gradients into every Variable that requires them.  This
// is the training substrate for DCRNN / A3T-GCN / ST-LLM; op gradients
// are verified against central finite differences in the test suite.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pgti {

class GradReadyObserver;

class Variable {
 public:
  struct Impl {
    Tensor value;
    Tensor grad;  // lazily allocated, same shape/space as value
    bool requires_grad = false;
    bool needs_grad = false;  // requires_grad or any ancestor does
    std::vector<std::shared_ptr<Impl>> parents;
    // Reads this->grad, accumulates into parents' grads.
    std::function<void(Impl&)> backward_fn;
  };

  Variable() = default;

  /// Leaf variable.  requires_grad marks it a trainable parameter.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const noexcept { return impl_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  bool requires_grad() const noexcept { return impl_ && impl_->requires_grad; }
  bool needs_grad() const noexcept { return impl_ && impl_->needs_grad; }

  /// Gradient tensor (allocated zeros on first access).
  Tensor& grad();
  const Tensor& grad() const;
  bool has_grad() const noexcept { return impl_ && impl_->grad.defined(); }
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) variable.
  void backward();
  /// Runs reverse-mode accumulation seeding with grad_output.
  void backward(const Tensor& grad_output);
  /// As above, additionally notifying `observer` as each participating
  /// requires_grad leaf receives its final gradient contribution.
  /// A null observer is equivalent to the plain overloads.
  void backward(GradReadyObserver* observer);
  void backward(const Tensor& grad_output, GradReadyObserver* observer);

  /// Detached view of the same value (cuts the tape).
  Variable detach() const;

  std::shared_ptr<Impl> impl() const { return impl_; }

  /// Internal: builds a non-leaf node.  Used by ops.
  static Variable make_node(Tensor value, std::vector<Variable> inputs,
                            std::function<void(Impl&)> backward_fn);

  /// Internal: adds `delta` into impl->grad (allocating if needed).
  static void accumulate(const std::shared_ptr<Impl>& impl, const Tensor& delta);

 private:
  explicit Variable(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

/// Observes gradient completion during backward().
///
/// backward() counts, for every requires_grad leaf reachable from the
/// root, the distinct consumer nodes that can still accumulate into it.
/// When the last such consumer retires, the leaf's gradient is final
/// for this sweep and on_grad_ready fires — while the rest of the
/// reverse sweep is still running.  dist::OverlappedGradBucket uses
/// this to launch per-bucket all-reduces under the tail of backward.
///
/// Both callbacks run on the thread that called backward().  Callback
/// order is a pure function of the tape, so replicas that build
/// identical graphs observe identical ready sequences — the property
/// the deterministic overlapped all-reduce relies on.
class GradReadyObserver {
 public:
  virtual ~GradReadyObserver() = default;

  /// Called once per sweep, before any backward_fn runs, with every
  /// participating requires_grad leaf in deterministic (topological
  /// discovery) order.  Leaves absent from this list receive no
  /// on_grad_ready this sweep.
  virtual void on_backward_start(const std::vector<Variable::Impl*>& leaves) = 0;

  /// Called exactly once per participating leaf, when its gradient has
  /// received the last accumulation of this sweep.
  virtual void on_grad_ready(const Variable::Impl* leaf) = 0;
};

}  // namespace pgti
