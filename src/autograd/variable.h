// Reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor and (optionally) a node in a dynamically
// built computation tape.  backward() performs a topological sweep and
// accumulates gradients into every Variable that requires them.  This
// is the training substrate for DCRNN / A3T-GCN / ST-LLM; op gradients
// are verified against central finite differences in the test suite.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace pgti {

class Variable {
 public:
  struct Impl {
    Tensor value;
    Tensor grad;  // lazily allocated, same shape/space as value
    bool requires_grad = false;
    bool needs_grad = false;  // requires_grad or any ancestor does
    std::vector<std::shared_ptr<Impl>> parents;
    // Reads this->grad, accumulates into parents' grads.
    std::function<void(Impl&)> backward_fn;
  };

  Variable() = default;

  /// Leaf variable.  requires_grad marks it a trainable parameter.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const noexcept { return impl_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  bool requires_grad() const noexcept { return impl_ && impl_->requires_grad; }
  bool needs_grad() const noexcept { return impl_ && impl_->needs_grad; }

  /// Gradient tensor (allocated zeros on first access).
  Tensor& grad();
  const Tensor& grad() const;
  bool has_grad() const noexcept { return impl_ && impl_->grad.defined(); }
  void zero_grad();

  /// Runs reverse-mode accumulation from this (scalar) variable.
  void backward();
  /// Runs reverse-mode accumulation seeding with grad_output.
  void backward(const Tensor& grad_output);

  /// Detached view of the same value (cuts the tape).
  Variable detach() const;

  std::shared_ptr<Impl> impl() const { return impl_; }

  /// Internal: builds a non-leaf node.  Used by ops.
  static Variable make_node(Tensor value, std::vector<Variable> inputs,
                            std::function<void(Impl&)> backward_fn);

  /// Internal: adds `delta` into impl->grad (allocating if needed).
  static void accumulate(const std::shared_ptr<Impl>& impl, const Tensor& delta);

 private:
  explicit Variable(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace pgti
