// SocketTransport: ranks as separate OS processes over a TCP full
// mesh (loopback or a real network), speaking the framed wire format
// of dist/transport.h.
//
// Rendezvous (DESIGN.md §15): rank 0 listens on a well-known port.
// Every rank > 0 first binds its own mesh listener (ephemeral port),
// connects to rank 0, and sends HELLO{rank, mesh_port}; once all W-1
// HELLOs are in, rank 0 answers each with a PEERS frame carrying the
// full port table.  The rendezvous connections become the (0,q) mesh
// edges; for every remaining pair a < b the higher rank dials the
// lower rank's mesh listener and identifies itself with a CONNECT
// frame.  Listener backlogs make the dial order deadlock-free.
//
// Data plane: send() copies the payload into a per-peer writer-thread
// queue and returns — one writer per edge, so a slow or dead peer can
// never head-of-line-block frames to a different peer (the property
// the sync protocol's liveness rests on).  recv() reads directly into
// the caller's buffer after validating the 16-byte header.  sync() is
// a star barrier in control frames: every rank sends ARRIVE to rank 0
// and blocks for RELEASE; rank 0 collects W-1 ARRIVEs, then releases
// everyone.
//
// Failure semantics: a rank that unwinds calls shutdown(), which
// half-closes every edge; peers observe EOF (or ECONNRESET/EPIPE) on
// their next read or write of that edge and throw PeerFailureError,
// cascading the unwind exactly like the in-process failure flag — a
// dying peer never hangs a socket read.  Every blocking read also
// carries a generous poll timeout as a last-resort liveness backstop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/comm.h"
#include "dist/transport.h"

namespace pgti::dist {

/// Binds a listening TCP socket on host:port (port 0 = ephemeral) and
/// returns {fd, resolved port}.  The caller owns the fd.  Used by the
/// multi-process launcher to bind the rendezvous port before forking.
std::pair<int, std::uint16_t> socket_listen(const std::string& host,
                                            std::uint16_t port, int backlog);

struct SocketOptions {
  int rank = 0;
  int world = 1;
  std::string host = "127.0.0.1";  ///< rendezvous + mesh interface
  std::uint16_t port = 0;          ///< rendezvous port (ranks > 0 dial it)
  /// Rank 0 only: an already-listening socket to accept rendezvous
  /// connections on (ownership transfers; -1 = bind host:port here).
  int listen_fd = -1;
  /// Liveness backstop for every blocking read; generous so loaded CI
  /// never trips it, small enough that a protocol bug cannot hang a
  /// suite past its ctest timeout.
  int recv_timeout_ms = 120000;
};

class SocketTransport final : public Transport {
 public:
  /// Performs the full rendezvous + mesh handshake; returns connected.
  explicit SocketTransport(const SocketOptions& options);
  ~SocketTransport() override;

  int rank() const noexcept override { return rank_; }
  int world() const noexcept override { return world_; }

  void send(int peer, const void* data, std::size_t bytes) override;
  void recv(int peer, void* data, std::size_t bytes) override;
  void sync() override;
  void inject_fault_at_sync_point(std::uint64_t nth, std::string message) override;
  void shutdown() noexcept override;

 private:
  struct Peer {
    int fd = -1;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<char>> queue;
    std::vector<std::vector<char>> pool;  ///< recycled frame buffers
    bool stop = false;     ///< drain the queue, then exit
    bool abort = false;    ///< exit now, dropping the queue
    bool edge_failed = false;
  };

  void connect_mesh(const SocketOptions& options);
  void writer_loop(Peer& peer);
  void enqueue_frame(int peer, frame::Type type, const void* payload,
                     std::size_t bytes);
  /// Reads one frame of `expected` type from `peer`, validating the
  /// header and that the payload length is exactly `bytes`.
  void read_frame(int peer, frame::Type expected, void* payload,
                  std::size_t bytes);
  void close_all() noexcept;

  const int rank_;
  const int world_;
  const int recv_timeout_ms_;
  std::vector<std::unique_ptr<Peer>> peers_;  ///< index = peer rank
  std::atomic<bool> shutdown_{false};

  // One-shot fault injection; written before the collective script
  // starts, read only by this rank's collective thread (see
  // dist/transport.h's single-collective-thread contract).
  std::uint64_t sync_seen_ = 0;
  bool fault_armed_ = false;
  std::uint64_t fault_at_ = 0;
  std::string fault_message_;
};

/// Thread harness mirroring dist::Cluster, but every rank talks
/// through a real SocketTransport over loopback — the socket suite's
/// and bench's way to exercise the TCP wire with in-process
/// convenience (ephemeral ports, so ctest-parallel safe).  For true
/// multi-process ranks, construct SocketTransport + Communicator
/// directly (see examples/socket_ddp.cpp).
class SocketCluster {
 public:
  explicit SocketCluster(int world, NetworkModel network = NetworkModel{});

  /// Runs `fn(comm)` on every rank, joins all workers, and rethrows
  /// the first original worker exception (never a PeerFailureError
  /// when a real error caused the unwind).
  void run(const std::function<void(Communicator&)>& fn);

  int world() const noexcept { return world_; }
  const NetworkModel& network() const noexcept { return context_.network(); }
  CommStats stats() const { return context_.stats(); }
  double modeled_comm_seconds() const { return context_.modeled_seconds(); }
  void charge_seconds(double seconds) { context_.charge_seconds(seconds); }
  CommContext& context() noexcept { return context_; }

  /// Same one-shot semantics as Cluster::inject_fault_at_sync_point:
  /// arms the NEXT run() only; run() disarms on completion.
  void inject_fault_at_sync_point(int rank, std::uint64_t nth, std::string message);

 private:
  int world_;
  CommContext context_;
  int fault_rank_ = -1;
  std::uint64_t fault_at_ = 0;
  std::string fault_message_;
};

}  // namespace pgti::dist
