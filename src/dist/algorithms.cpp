#include "dist/algorithms.h"

#include <algorithm>
#include <cstring>

namespace pgti::dist::alg {
namespace {

struct ChunkRange {
  std::int64_t lo;
  std::int64_t hi;
};

/// Contiguous ceil-chunk owned by rank r in the reduce-scatter layout;
/// empty ([n, n)) for trailing ranks when n < world.
ChunkRange chunk_of(std::int64_t n, int world, int r) {
  const std::int64_t chunk = (n + world - 1) / world;
  const std::int64_t lo = std::min<std::int64_t>(chunk * r, n);
  const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n);
  return {lo, hi};
}

}  // namespace

int allreduce_stages(int world) noexcept {
  // Prefix-doubling: after stage s every chunk holds the rank-ordered
  // sum of ranks [0, min(2^(s+1), world)).  ceil(log2(world)) stages;
  // a single rank still runs one (copy) stage.
  int stages = 1;
  while ((std::int64_t{1} << stages) < world) ++stages;
  return stages;
}

int allreduce_sync_points(int world) noexcept {
  // collective entry + input exchange + one per tree stage + gather.
  return allreduce_stages(world) + 3;
}

int broadcast_sync_points(int world) noexcept {
  // payload staging + one per delivery stage.
  return allreduce_stages(world) + 1;
}

void tree_allreduce(Transport& t, float* data, std::int64_t n, bool mean,
                    AllreduceScratch& scratch) {
  const int w = t.world();
  const int rank = t.rank();
  const ChunkRange own = chunk_of(n, w, rank);
  const std::size_t cn = static_cast<std::size_t>(own.hi - own.lo);

  t.sync();  // collective entry: the previous collective's scratch is free

  // Input exchange (reduce-scatter): every rank ships each peer the
  // slice of its input that falls in the peer's owned chunk, then
  // collects the W slices of its own chunk.  All sends are posted
  // before the first recv (deadlock freedom); recvs drain in ascending
  // rank order.  The staged copies mean no tree stage ever reads a
  // caller's (unwindable) buffer.
  scratch.staged.resize(cn * static_cast<std::size_t>(w));
  for (int q = 0; q < w; ++q) {
    if (q == rank) continue;
    const ChunkRange theirs = chunk_of(n, w, q);
    t.send(q, data + theirs.lo,
           static_cast<std::size_t>(theirs.hi - theirs.lo) * sizeof(float));
  }
  if (cn > 0) {
    std::memcpy(scratch.staged.data() + cn * static_cast<std::size_t>(rank),
                data + own.lo, cn * sizeof(float));
  }
  for (int q = 0; q < w; ++q) {
    if (q == rank) continue;
    t.recv(q, scratch.staged.data() + cn * static_cast<std::size_t>(q),
           cn * sizeof(float));
  }
  t.sync();  // all inputs exchanged

  // Accumulate this rank's chunk through the fixed prefix-doubling
  // stage schedule: stage s merges source ranks [2^s, 2^(s+1)) into
  // the accumulated prefix [0, 2^s) (stage 0 also seeds the chunk with
  // rank 0's slice).  Per-element addition order is strictly rank
  // 0..W-1 — identical bits to a flat rank-ordered reduction.
  scratch.chunk.resize(cn);
  float* out = scratch.chunk.data();
  const int stages = allreduce_stages(w);
  for (int s = 0; s < stages; ++s) {
    const int src_begin = s == 0 ? 0 : 1 << s;
    const int src_end = std::min(w, 1 << (s + 1));
    for (int q = src_begin; q < src_end; ++q) {
      const float* src = scratch.staged.data() + cn * static_cast<std::size_t>(q);
      if (q == 0) {
        if (cn > 0) std::memcpy(out, src, cn * sizeof(float));
      } else {
        for (std::size_t i = 0; i < cn; ++i) out[i] += src[i];
      }
    }
    if (s + 1 == stages && mean) {
      const float inv = 1.0f / static_cast<float>(w);
      for (std::size_t i = 0; i < cn; ++i) out[i] *= inv;
    }
    t.sync();  // tree stage s complete on every chunk
  }

  // Gather: every rank broadcasts its reduced chunk; the full result
  // assembles in-place in rank order.  Pure copies — no rounding.
  for (int q = 0; q < w; ++q) {
    if (q == rank) continue;
    t.send(q, out, cn * sizeof(float));
  }
  if (cn > 0) std::memcpy(data + own.lo, out, cn * sizeof(float));
  for (int q = 0; q < w; ++q) {
    if (q == rank) continue;
    const ChunkRange theirs = chunk_of(n, w, q);
    t.recv(q, data + theirs.lo,
           static_cast<std::size_t>(theirs.hi - theirs.lo) * sizeof(float));
  }
  t.sync();  // everyone gathered; scratch reusable
}

void tree_broadcast(Transport& t, float* data, std::int64_t n, int root) {
  const int w = t.world();
  const int rank = t.rank();
  if (root < 0 || root >= w) {
    throw std::invalid_argument("broadcast: root " + std::to_string(root) +
                                " outside [0, " + std::to_string(w) + ")");
  }
  const std::size_t bytes = static_cast<std::size_t>(n) * sizeof(float);

  t.sync();  // payload staged (every rank finished the previous collective)

  // Prefix-doubling delivery mirroring the all-reduce pairing schedule
  // (DESIGN.md §8): stage s reaches root-relative ranks [2^s, 2^(s+1)).
  // The root ships each stage's frames just before that stage's sync
  // point, so a dead peer releases the others at every tree depth.
  const int rel = (rank - root + w) % w;
  const int stages = allreduce_stages(w);
  for (int s = 0; s < stages; ++s) {
    const int lo = 1 << s;
    const int hi = std::min(w, 1 << (s + 1));
    if (rank == root) {
      for (int target_rel = lo; target_rel < hi; ++target_rel) {
        t.send((root + target_rel) % w, data, bytes);
      }
    } else if (rel >= lo && rel < hi) {
      t.recv(root, data, bytes);
    }
    t.sync();  // delivery stage s complete
  }
}

double scalar_sum(Transport& t, double value) {
  const int w = t.world();
  const int rank = t.rank();
  double result = value;
  std::vector<double> vals;
  if (rank == 0) {
    vals.resize(static_cast<std::size_t>(w));
    vals[0] = value;
    for (int q = 1; q < w; ++q) {
      t.recv(q, &vals[static_cast<std::size_t>(q)], sizeof(double));
    }
  } else {
    t.send(0, &value, sizeof(double));
  }
  t.sync();  // all values published at rank 0

  if (rank == 0) {
    // One accumulation site, strictly rank-ordered: every rank sees
    // the same rounding on every transport.
    double acc = 0.0;
    for (int q = 0; q < w; ++q) acc += vals[static_cast<std::size_t>(q)];
    result = acc;
    for (int q = 1; q < w; ++q) t.send(q, &result, sizeof(double));
  } else {
    t.recv(0, &result, sizeof(double));
  }
  t.sync();  // sum distributed

  t.sync();  // everyone read; mirrors the in-process scratch-reuse point
  return result;
}

std::vector<double> allgather_scalar(Transport& t, double value) {
  const int w = t.world();
  const int rank = t.rank();
  std::vector<double> result(static_cast<std::size_t>(w), 0.0);
  result[static_cast<std::size_t>(rank)] = value;
  for (int q = 0; q < w; ++q) {
    if (q != rank) t.send(q, &value, sizeof(double));
  }
  for (int q = 0; q < w; ++q) {
    if (q != rank) t.recv(q, &result[static_cast<std::size_t>(q)], sizeof(double));
  }
  t.sync();  // all values exchanged

  t.sync();  // everyone copied; mirrors the in-process scratch-reuse point
  return result;
}

void barrier(Transport& t) { t.sync(); }

}  // namespace pgti::dist::alg
