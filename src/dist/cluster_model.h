// Analytic cluster-scale model (paper §5.3, Figs. 7-10).
//
// The thread-level Cluster in comm.h reproduces the paper's *behaviour*
// (bit-exact collectives, fetch accounting) at small world sizes; this
// file reproduces its *numbers* at paper scale.  ClusterModel composes
// per-sample compute cost (calibrated against the paper's single-GPU
// Table 4 anchor), a ring-all-reduce NetworkModel, and a Dask-style
// remote-fetch cost model into runtime and memory curves for 1..128
// workers under each distribution strategy.  The same NetworkModel
// instance prices the functional runs (Cluster, DistStore), so modeled
// and measured experiments share one cost basis.
#pragma once

#include <cstdint>

namespace pgti::dist {

/// Interconnect cost model: ring all-reduce over NVLink-class links
/// inside a node and a slower network across nodes, plus a Dask-style
/// object-store channel for remote snapshot fetches.  Bandwidths are
/// bytes/second.  Defaults are calibrated so that the PeMS/DCRNN
/// workload reproduces the paper's DDP-vs-index gap (2.16x at 4
/// workers, 11.78x at 128).
struct NetworkModel {
  double latency_s = 25e-6;        ///< per-hop collective latency
  double intra_node_bw = 12.5e9;   ///< NVLink-class, within a node
  double inter_node_bw = 1.25e9;   ///< network, across nodes
  int gpus_per_node = 4;           ///< Polaris-like node fan-out
  double fetch_bw = 300e6;         ///< remote snapshot fetch bandwidth
  double fetch_latency_s = 0.112;  ///< scheduler round-trip per request

  /// Bottleneck link bandwidth for a W-worker collective.
  double effective_bw(int world) const;

  /// Ring all-reduce time for `bytes` per rank across `world` ranks:
  /// 2(W-1)/W buffer traversals plus 2(W-1) latency hops.  Free for a
  /// single worker.
  double allreduce_seconds(std::int64_t bytes, int world) const;

  /// Remote fetch of `bytes` split over `messages` requests.
  double fetch_seconds(std::int64_t bytes, std::int64_t messages) const;
};

/// Data-distribution strategy (paper §4.2, §5.4).  Mirrors
/// core::DistMode; kept separate so the model layer has no core
/// dependency.
enum class DistStrategy {
  kDistributedIndex,         ///< full index copy per worker, zero data comm
  kBaselineDdp,              ///< Dask-partitioned store, global shuffle
  kGeneralizedIndex,         ///< partitioned index data, batch-level shuffle
  kBaselineDdpBatchShuffle,  ///< partitioned store, batch-level shuffle
};

/// Workload description + calibration anchors for one dataset/model
/// pair.  Time defaults correspond to the paper's PeMS measurements
/// (§5.2: 26.05 s index preprocessing; DDP scatter grows to ~305 s at
/// 128 workers).
struct ClusterModelParams {
  std::int64_t train_samples = 0;     ///< snapshots in the training split
  std::int64_t batch_per_worker = 64;
  std::int64_t model_parameters = 0;  ///< gradient elements all-reduced
  std::int64_t sample_bytes = 0;      ///< one materialized (x, y) snapshot
  std::int64_t dataset_bytes = 0;     ///< the single raw copy index-batching keeps
  int epochs = 1;
  double t_sample = 0.0;              ///< compute seconds per sample (calibrated)
  double index_preprocess_s = 26.05;
  double ddp_preprocess_base_s = 120.0;
  double ddp_preprocess_scatter_per_worker_s = 1.45;
  double epoch_fixed_s = 1.0;         ///< loader/validation overhead per epoch
  NetworkModel network;
};

/// One point on a scaling curve: the additive runtime components for a
/// full run of `epochs` epochs at `world` workers, plus the data-plane
/// memory footprint.
struct ScalingPoint {
  int world = 1;
  int epochs = 1;
  double preprocess_s = 0.0;
  double compute_s = 0.0;
  double allreduce_s = 0.0;
  double data_comm_s = 0.0;
  double fixed_s = 0.0;
  std::int64_t data_bytes_per_worker = 0;
  std::int64_t data_bytes_total = 0;

  /// Full-workflow runtime (the quantity in paper Fig. 7).
  double total_s() const {
    return preprocess_s + compute_s + allreduce_s + data_comm_s + fixed_s;
  }
  /// Steady-state runtime of `n` epochs, preprocessing excluded (the
  /// quantity in paper Fig. 9).
  double epoch_s(int n) const {
    return (total_s() - preprocess_s) / static_cast<double>(epochs) *
           static_cast<double>(n);
  }
};

/// Evaluates runtime/memory curves for a workload at any world size.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterModelParams params);

  /// Runtime + memory breakdown at `world` workers under `strategy`.
  ScalingPoint evaluate(int world, DistStrategy strategy) const;

  const ClusterModelParams& params() const noexcept { return params_; }

 private:
  ClusterModelParams params_;
};

}  // namespace pgti::dist
