// Distributed data parallelism over autograd parameters.
//
// GradBucket implements PyTorch-DDP-style bucketed gradient averaging:
// parameter gradients are packed into a small number of flat buckets,
// each bucket is all-reduced once (amortizing per-collective latency —
// the ablation bench_kernels.cpp measures), and the averaged values are
// scattered back.  Because Communicator collectives are rank-ordered
// and bit-exact, replicas stay bit-identical after every step, which is
// what lets W-worker runs match the large-batch single-worker gradient
// exactly (tests/dist_test.cpp, Ddp.DistributedGradEqualsLargeBatchGrad).
//
// Construction preallocates every parameter's gradient tensor (zeros),
// so the steady-state pack/unpack path is pure memcpy: no per-step
// zero-fill for absent grads and no lazy allocations inside the sync.
// Replicas stay bit-identical even when ranks populate different
// subsets of gradients, because zeros enter the average exactly as the
// old fill-on-pack path produced.
//
// The bucket layout (buckets(), pack_bucket(), unpack_bucket()) is
// public so OverlappedGradBucket (dist/overlap.h) can reuse the same
// partition for ready-bucket all-reduces fired during backward.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "dist/cluster_model.h"
#include "dist/comm.h"

namespace pgti::dist {

/// Flat-buffer gradient averager for a fixed parameter list.
class GradBucket {
 public:
  /// Default bucket capacity, in gradient elements (1 MiB of floats).
  static constexpr std::int64_t kDefaultBucketNumel = 1 << 18;

  /// A contiguous run of parameters reduced in one collective.
  struct Bucket {
    std::vector<std::size_t> param_indices;
    std::int64_t numel = 0;
  };

  /// Captures the parameter layout (shapes/order must not change
  /// afterwards) and preallocates every parameter's gradient.
  explicit GradBucket(std::vector<Variable>& params,
                      std::int64_t bucket_numel = kDefaultBucketNumel);

  /// Total gradient elements across all parameters.
  std::int64_t numel() const noexcept { return total_numel_; }
  /// Number of flat buckets the parameters were packed into.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  /// The bucket partition, in reduction order.
  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }
  /// Largest single bucket, in elements (flat staging buffer size).
  std::int64_t max_bucket_numel() const noexcept { return max_bucket_numel_; }

  /// Throws if `params` no longer matches the construction-time layout.
  void verify_layout(const std::vector<Variable>& params) const;

  /// Copies bucket `b`'s parameter gradients into `dst` (contiguous,
  /// buckets()[b].numel floats).  Grads exist from construction, so
  /// this is branch-free memcpy.
  void pack_bucket(std::size_t b, const std::vector<Variable>& params,
                   float* dst) const;
  /// Scatters `src` back into bucket `b`'s parameter gradients.
  void unpack_bucket(std::size_t b, std::vector<Variable>& params,
                     const float* src) const;

  /// Averages grads across ranks in place: pack, one allreduce_mean per
  /// bucket, unpack into every parameter.  `params` must match the
  /// construction-time list.
  void allreduce_average(Communicator& comm, std::vector<Variable>& params);

  /// Modeled wall seconds one full gradient sync costs on `net` — the
  /// sum over buckets of allreduce_seconds(numel * sizeof(float)).
  double modeled_sync_seconds(const NetworkModel& net, int world) const;

 private:
  std::vector<std::int64_t> param_numels_;
  std::vector<Bucket> buckets_;
  std::vector<float> flat_;
  std::int64_t total_numel_ = 0;
  std::int64_t max_bucket_numel_ = 0;
};

/// One-shot convenience: average `params`' gradients across ranks.
void allreduce_gradients(Communicator& comm, std::vector<Variable>& params);

/// Copies root's parameter values to every other rank so all replicas
/// start (or resume) bit-identical.
void broadcast_parameters(Communicator& comm, std::vector<Variable>& params,
                          int root);

}  // namespace pgti::dist
