// Distributed data parallelism over autograd parameters.
//
// GradBucket implements PyTorch-DDP-style bucketed gradient averaging:
// parameter gradients are packed into a small number of flat buckets,
// each bucket is all-reduced once (amortizing per-collective latency —
// the ablation bench_kernels.cpp measures), and the averaged values are
// scattered back.  Because Communicator collectives are rank-ordered
// and bit-exact, replicas stay bit-identical after every step, which is
// what lets W-worker runs match the large-batch single-worker gradient
// exactly (tests/dist_test.cpp, Ddp.DistributedGradEqualsLargeBatchGrad).
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "dist/comm.h"

namespace pgti::dist {

/// Flat-buffer gradient averager for a fixed parameter list.
class GradBucket {
 public:
  /// Default bucket capacity, in gradient elements (1 MiB of floats).
  static constexpr std::int64_t kDefaultBucketNumel = 1 << 18;

  /// Captures the parameter layout (shapes/order must not change
  /// afterwards).
  explicit GradBucket(const std::vector<Variable>& params,
                      std::int64_t bucket_numel = kDefaultBucketNumel);

  /// Total gradient elements across all parameters.
  std::int64_t numel() const noexcept { return total_numel_; }
  /// Number of flat buckets the parameters were packed into.
  std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Averages grads across ranks in place: pack (missing grads
  /// contribute zeros), one allreduce_mean per bucket, unpack into
  /// every parameter (allocating zero grads where absent, so replicas
  /// stay bit-identical even when has_grad differs across ranks).
  /// `params` must match the construction-time list.
  void allreduce_average(Communicator& comm, std::vector<Variable>& params);

 private:
  struct Bucket {
    std::vector<std::size_t> param_indices;
    std::int64_t numel = 0;
  };

  std::vector<std::int64_t> param_numels_;
  std::vector<Bucket> buckets_;
  std::vector<float> flat_;
  std::int64_t total_numel_ = 0;
};

/// One-shot convenience: average `params`' gradients across ranks.
void allreduce_gradients(Communicator& comm, std::vector<Variable>& params);

/// Copies root's parameter values to every other rank so all replicas
/// start (or resume) bit-identical.
void broadcast_parameters(Communicator& comm, std::vector<Variable>& params,
                          int root);

}  // namespace pgti::dist
