// InProcessTransport: the thread-backed wire under dist::Cluster.
//
// W ranks share one InProcessHub: a per-(src,dst) mailbox matrix of
// framed byte buffers plus the sense-reversing barrier that PRs 2-6
// ran the collectives on directly.  The hub preserves that barrier's
// exact failure semantics — a completed generation outranks a failure
// flag raised afterwards; peers blocked in sync or recv release with
// PeerFailureError the moment any rank records a failure — and its
// per-rank sync counters feed the same deterministic fault injection
// (Cluster::inject_fault_at_sync_point) the failure-depth sweeps use.
//
// send() copies the payload into a hub-owned pooled buffer before
// returning (never blocks on the receiver; an unwinding sender cannot
// invalidate bytes in flight), and recv() copies out under a
// length-check.  Buffers recycle through a free pool so steady-state
// collectives allocate nothing.  Critical sections only move pointers;
// payload memcpys run outside the hub mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dist/transport.h"

namespace pgti::dist {

class InProcessTransport;

/// Shared state of one in-process cluster: mailboxes, barrier,
/// failure flag, fault injection.  Owned by Cluster; endpoints hold a
/// reference.
class InProcessHub {
 public:
  explicit InProcessHub(int world);

  int world() const noexcept { return world_; }

  /// Clears mailboxes, barrier state, failure state, and the per-rank
  /// sync counters.  Called at the top of every Cluster::run so a
  /// reused cluster (including one that just unwound a fault) starts
  /// clean.  Traffic/fault arming is managed by the caller.
  void reset_for_run();

  /// Arms the one-shot fault for `rank` (see Transport contract);
  /// rank == -1 disarms.
  void arm_fault(int rank, std::uint64_t nth, std::string message);

  /// Raises the failure flag and releases every rank blocked in
  /// sync()/recv().  Idempotent.
  void release_failure() noexcept;

 private:
  friend class InProcessTransport;

  std::deque<std::vector<char>>& mailbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(world_) +
                 static_cast<std::size_t>(dst)];
  }

  const int world_;

  std::mutex mu_;
  std::condition_variable cv_;

  // Sense-reversing barrier (exactly the pre-refactor Cluster barrier).
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool failed_ = false;

  // Fault injection (test-only); fault_rank_ == -1 means disabled.
  // Armed before run()'s threads spawn and read without the lock, like
  // the per-rank sync counters below: only one thread per rank sits in
  // a collective at a time (Transport contract), and the comm-thread
  // handoff in OverlappedGradBucket is ordered by its drain/flush
  // mutexes, so the counter stays race-free and `nth` deterministic.
  int fault_rank_ = -1;
  std::uint64_t fault_at_ = 0;
  std::string fault_message_;
  std::vector<std::uint64_t> sync_seen_;

  // mail_[src * world + dst]: frames in flight; pool_: recycled buffers.
  std::vector<std::deque<std::vector<char>>> mail_;
  std::vector<std::vector<char>> pool_;
};

/// One rank's endpoint on an InProcessHub.
class InProcessTransport final : public Transport {
 public:
  InProcessTransport(InProcessHub& hub, int rank) : hub_(&hub), rank_(rank) {}

  int rank() const noexcept override { return rank_; }
  int world() const noexcept override { return hub_->world(); }

  void send(int peer, const void* data, std::size_t bytes) override;
  void recv(int peer, void* data, std::size_t bytes) override;
  void sync() override;
  void inject_fault_at_sync_point(std::uint64_t nth, std::string message) override;
  void shutdown() noexcept override { hub_->release_failure(); }

 private:
  InProcessHub* hub_;
  int rank_;
};

}  // namespace pgti::dist
