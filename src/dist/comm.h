// In-process distributed runtime: W worker threads + collectives.
//
// Cluster::run spawns one thread per rank and hands each a
// Communicator.  allreduce_{sum,mean} executes a deterministic tree
// all-reduce (reduce-scatter over contiguous element chunks + shared
// gather): every rank owns ~n/W elements and accumulates all W
// contributions for them through a fixed prefix-doubling stage
// schedule — stage s adds source ranks [2^s, 2^(s+1)) — so per-element
// accumulation is strictly rank-ordered 0..W-1.  The result is
// therefore a pure function of the inputs: bit-identical to a flat
// rank-ordered reduction, identical across runs, thread schedules, and
// world sizes (including non-powers-of-two), which is what makes
// W-worker training reproduce single-worker training exactly (paper
// §5.3's "identical accuracy" claim depends on it).  Unlike the flat
// reduction, the W chunks reduce in parallel.
//
// Failure semantics mirror a well-behaved NCCL + torchrun stack: when
// any worker throws, peers blocked in a collective are released with
// PeerFailureError instead of deadlocking — at EVERY tree stage, since
// each stage ends in a sync point — the cluster unwinds, and run()
// rethrows the ORIGINAL worker exception.  All-reduce inputs are
// staged into cluster-owned memory before any stage runs, so an
// unwinding rank can never invalidate a buffer a surviving peer still
// reads.
//
// Wall-clock is measured; network time is *modeled*: each collective
// charges its ring-all-reduce cost (NetworkModel) to a SimClock, so
// experiment runtimes compose measured compute with modeled
// communication (see runtime/timer.h).  Traffic stats accumulate
// across run() calls; modeled time is per-run (run() resets the
// SimClock so back-to-back runs report independent modeled times).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/cluster_model.h"
#include "runtime/timer.h"

namespace pgti::dist {

/// Collective-traffic ledger (what DistResult reports).
struct CommStats {
  std::uint64_t allreduce_count = 0;
  std::uint64_t allreduce_bytes = 0;  ///< summed over all ranks' buffers
  std::uint64_t broadcast_count = 0;
  std::uint64_t broadcast_bytes = 0;
  std::uint64_t allgather_count = 0;
  std::uint64_t barrier_count = 0;
};

/// Thrown inside surviving workers when a peer dies mid-collective.
/// Cluster::run swallows these in favour of the peer's original error.
class PeerFailureError : public std::runtime_error {
 public:
  PeerFailureError()
      : std::runtime_error("peer worker failed; collective aborted") {}
};

class Cluster;

/// Per-rank handle passed to the worker function.  All collectives must
/// be entered by every rank of the cluster (standard SPMD contract).
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int world() const noexcept;

  /// In-place sum across ranks; identical bits on every rank.
  void allreduce_sum(float* data, std::int64_t n);
  /// In-place mean across ranks; identical bits on every rank.
  void allreduce_mean(float* data, std::int64_t n);
  /// Rank-ordered scalar sum (validation metric aggregation).
  double allreduce_scalar_sum(double value);
  /// Every rank's value, ordered by rank.
  std::vector<double> allgather(double value);
  /// Copies root's buffer into every other rank's buffer through a
  /// prefix-doubling tree mirroring the all-reduce pairing schedule:
  /// stage s delivers to root-relative ranks [2^s, 2^(s+1)), and each
  /// stage ends in a sync point so peers unwind (PeerFailureError) at
  /// every tree depth.  Copies are bit-safe, so the tree costs no
  /// determinism.
  void broadcast(float* data, std::int64_t n, int root);
  /// Blocks until every live rank arrives (throws PeerFailureError if
  /// a peer died instead).
  void barrier();

 private:
  friend class Cluster;
  Communicator(Cluster& cluster, int rank) : cluster_(&cluster), rank_(rank) {}

  Cluster* cluster_;
  int rank_;
};

/// W thread-backed workers sharing one address space — the test- and
/// bench-scale stand-in for a multi-GPU job.  Reusable: each run()
/// resets failure state and the modeled-time clock; traffic stats
/// accumulate across runs.
class Cluster {
 public:
  explicit Cluster(int world, NetworkModel network = NetworkModel{});

  /// Runs `fn(comm)` on every rank, joins all workers, and rethrows the
  /// first original worker exception (never a PeerFailureError when a
  /// real error caused the unwind).
  void run(const std::function<void(Communicator&)>& fn);

  int world() const noexcept { return world_; }
  const NetworkModel& network() const noexcept { return network_; }

  /// Reduce-stage count (tree depth) of one all-reduce at `world`
  /// ranks: ceil(log2(world)), and 1 for a single rank (the copy
  /// stage).  Stage s accumulates source ranks [2^s, 2^(s+1)).
  static int allreduce_stages(int world) noexcept;

  /// Internal sync points one all-reduce passes through (scratch
  /// sizing + input staging + one per tree stage + final gather).
  /// Peers must be releasable by PeerFailureError at every one of
  /// them; tests/dist_determinism_test.cpp sweeps them all.
  static int allreduce_sync_points(int world) noexcept;

  /// Internal sync points one broadcast passes through (payload
  /// staging + one per delivery stage); the tree mirrors
  /// allreduce_stages(world).  tests/dist_test.cpp sweeps them all.
  static int broadcast_sync_points(int world) noexcept;

  /// Deterministic fault injection for failure-semantics tests: worker
  /// `rank` throws std::runtime_error(message) upon entering its `nth`
  /// sync point (0-based, counted per rank and reset by run()).  Lets
  /// a test park peers at any internal tree stage of a collective.
  /// One-shot: the injection arms the NEXT run() only; run() disarms
  /// it on completion so a reused Cluster can recover.
  /// Inputs are staged into cluster-owned memory before the reduction,
  /// so a rank unwinding mid-collective can never invalidate memory a
  /// surviving peer still reads.
  void inject_fault_at_sync_point(int rank, std::uint64_t nth, std::string message);

  /// Collective-traffic totals so far.
  CommStats stats() const;

  /// Modeled communication seconds of the current/most recent run
  /// (collectives plus anything charged via charge_seconds).
  double modeled_comm_seconds() const { return sim_clock_.seconds(); }

  /// Adds externally modeled time (e.g. DistStore fetches) to the
  /// communication clock.
  void charge_seconds(double seconds) { sim_clock_.add(seconds); }

 private:
  friend class Communicator;

  /// Sense-reversing barrier; throws PeerFailureError once failed_.
  /// `rank` identifies the arriving worker (fault injection + per-rank
  /// sync counting).
  void sync_point(int rank);
  /// Records a worker exception and releases ranks blocked in sync_point.
  void record_failure(std::exception_ptr error, bool is_peer_failure);

  void allreduce(float* data, std::int64_t n, int rank, bool mean);

  int world_;
  NetworkModel network_;
  SimClock sim_clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool failed_ = false;
  std::exception_ptr first_error_;
  bool first_error_is_peer_failure_ = false;

  // Fault injection (test-only); fault_rank_ == -1 means disabled.
  int fault_rank_ = -1;
  std::uint64_t fault_at_ = 0;
  std::string fault_message_;
  // Per-rank sync-point counter.  Only one thread per rank may sit in
  // a collective at a time; when OverlappedGradBucket hands collectives
  // to a comm thread, its drain/flush mutex orders the handoff, so the
  // counter stays race-free and the fault-injection `nth` deterministic.
  std::vector<std::uint64_t> sync_seen_;

  // Collective scratch state, valid between sync points.  input_buf_
  // holds every rank's staged all-reduce input so tree stages never
  // read a caller's (unwindable) buffer; reduce_buf_ holds the chunks
  // being reduced; bcast_buf_ holds the root's staged broadcast
  // payload, so delivery stages never read a caller's buffer either.
  std::vector<double> double_slots_;
  std::vector<float> input_buf_;
  std::vector<float> reduce_buf_;
  std::vector<float> bcast_buf_;
  double scalar_result_ = 0.0;

  CommStats stats_;
};

}  // namespace pgti::dist
