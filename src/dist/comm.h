// Distributed runtime: deterministic collectives over pluggable
// transports.
//
// The stack has three layers (DESIGN.md §15):
//
//   dist/algorithms.h   — transport-agnostic tree schedules.  Stage
//                         order and accumulation order live here, so
//                         results are bit-identical on every backend
//                         (paper §5.3's "identical accuracy" claim).
//   dist/transport.h    — the wire: framed send/recv + sync points
//                         with PeerFailureError semantics.  Two
//                         implementations: InProcessTransport (thread
//                         mailboxes, this file's Cluster) and
//                         SocketTransport (TCP full mesh, ranks as
//                         separate OS processes; transport_socket.h).
//   Communicator        — the per-rank API the trainers use.  Binds a
//                         Transport endpoint to a shared CommContext
//                         (traffic stats + modeled-time clock) and
//                         runs the algorithm layer.
//
// Failure semantics mirror a well-behaved NCCL + torchrun stack: when
// any worker throws, peers blocked in a collective are released with
// PeerFailureError instead of deadlocking — at EVERY tree stage, since
// each stage ends in a sync point — the cluster unwinds, and run()
// rethrows the ORIGINAL worker exception.
//
// Wall-clock is measured; network time is *modeled*: each collective
// charges its ring-all-reduce cost (NetworkModel) to a SimClock, so
// experiment runtimes compose measured compute with modeled
// communication (see runtime/timer.h).  Traffic stats accumulate
// across run() calls; modeled time is per-run (run() resets the
// SimClock so back-to-back runs report independent modeled times).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/algorithms.h"
#include "dist/cluster_model.h"
#include "dist/transport.h"
#include "dist/transport_inprocess.h"
#include "runtime/timer.h"

namespace pgti::dist {

/// Collective-traffic ledger (what DistResult reports).  Every
/// collective counts symmetrically: calls plus the payload bytes that
/// cross rank boundaries.
struct CommStats {
  std::uint64_t allreduce_count = 0;
  std::uint64_t allreduce_bytes = 0;  ///< summed over all ranks' buffers
  std::uint64_t broadcast_count = 0;
  std::uint64_t broadcast_bytes = 0;  ///< payload x (world - 1) receivers
  std::uint64_t allgather_count = 0;
  /// Payload bytes crossing rank boundaries per allgather: each rank's
  /// value delivered to the other world-1 ranks (0 at world == 1).
  std::uint64_t allgather_bytes = 0;
  std::uint64_t barrier_count = 0;
  /// Barrier traffic: a barrier moves no payload, so its cost is the
  /// sync-point control frames — world-1 ARRIVE plus world-1 RELEASE
  /// frames of frame::kHeaderBytes each (what SocketTransport puts on
  /// the wire; the in-process backend ledgers the same number so the
  /// stats are transport-invariant).
  std::uint64_t barrier_bytes = 0;
};

/// Shared model/ledger facade behind every Communicator of one
/// cluster: the NetworkModel, the modeled-time SimClock, and the
/// traffic stats.  In-process, one CommContext is shared by all W
/// ranks; in multi-process socket runs each rank process owns its own
/// (rank 0's is the one a DistResult reports, and since stats are
/// charged by rank 0 only, the view is identical).
///
/// Thread-safety: stats_ is guarded by mu_; sim_clock is a lock-free
/// atomic accumulator (runtime/timer.h), so charge_seconds is safe
/// from per-rank comm threads and the main thread concurrently —
/// dist_transport_test hammers it under TSan.
class CommContext {
 public:
  explicit CommContext(NetworkModel network = NetworkModel{})
      : network_(network) {}

  const NetworkModel& network() const noexcept { return network_; }

  /// Adds externally modeled time (e.g. DistStore fetches) to the
  /// communication clock.  Thread-safe (atomic accumulate).
  void charge_seconds(double seconds) { sim_clock_.add(seconds); }

  /// Modeled communication seconds since the last reset_clock().
  double modeled_seconds() const { return sim_clock_.seconds(); }

  /// Modeled time is per-run; traffic stats accumulate across runs.
  void reset_clock() { sim_clock_.reset(); }

  CommStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  friend class Communicator;

  NetworkModel network_;
  SimClock sim_clock_;
  mutable std::mutex mu_;
  CommStats stats_;
};

/// Per-rank handle passed to the worker function: binds one Transport
/// endpoint to the shared CommContext and runs the algorithm layer.
/// All collectives must be entered by every rank of the cluster
/// (standard SPMD contract); only one thread per rank may sit in a
/// collective at a time (see dist/transport.h).
class Communicator {
 public:
  Communicator(Transport& transport, CommContext& context)
      : transport_(&transport), context_(&context) {}
  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const noexcept { return transport_->rank(); }
  int world() const noexcept { return transport_->world(); }

  /// In-place sum across ranks; identical bits on every rank.
  void allreduce_sum(float* data, std::int64_t n);
  /// In-place mean across ranks; identical bits on every rank.
  void allreduce_mean(float* data, std::int64_t n);
  /// Rank-ordered scalar sum (validation metric aggregation).
  double allreduce_scalar_sum(double value);
  /// Every rank's value, ordered by rank.
  std::vector<double> allgather(double value);
  /// Copies root's buffer into every other rank's buffer through a
  /// prefix-doubling tree mirroring the all-reduce pairing schedule:
  /// stage s delivers to root-relative ranks [2^s, 2^(s+1)), and each
  /// stage ends in a sync point so peers unwind (PeerFailureError) at
  /// every tree depth.  Copies are bit-safe, so the tree costs no
  /// determinism.
  void broadcast(float* data, std::int64_t n, int root);
  /// Blocks until every live rank arrives (throws PeerFailureError if
  /// a peer died instead).
  void barrier();

  /// The shared model/ledger facade (modeled-time plumbing for code
  /// that holds only a Communicator, e.g. DistTrainer rank bodies in
  /// multi-process runs).
  const NetworkModel& network() const noexcept { return context_->network(); }
  void charge_seconds(double seconds) { context_->charge_seconds(seconds); }
  const CommContext& context() const noexcept { return *context_; }

 private:
  void allreduce(float* data, std::int64_t n, bool mean);

  Transport* transport_;
  CommContext* context_;
  alg::AllreduceScratch scratch_;
};

/// W thread-backed workers sharing one address space — the test- and
/// bench-scale stand-in for a multi-GPU job, now one InProcessTransport
/// endpoint per rank over a shared mailbox hub.  Reusable: each run()
/// resets failure state and the modeled-time clock; traffic stats
/// accumulate across runs.
class Cluster {
 public:
  explicit Cluster(int world, NetworkModel network = NetworkModel{});

  /// Runs `fn(comm)` on every rank, joins all workers, and rethrows the
  /// first original worker exception (never a PeerFailureError when a
  /// real error caused the unwind).
  void run(const std::function<void(Communicator&)>& fn);

  int world() const noexcept { return world_; }
  const NetworkModel& network() const noexcept { return context_.network(); }

  /// Reduce-stage count (tree depth) of one all-reduce at `world`
  /// ranks: ceil(log2(world)), and 1 for a single rank (the copy
  /// stage).  Stage s accumulates source ranks [2^s, 2^(s+1)).
  static int allreduce_stages(int world) noexcept {
    return alg::allreduce_stages(world);
  }

  /// Internal sync points one all-reduce passes through (collective
  /// entry + input exchange + one per tree stage + final gather).
  /// Peers must be releasable by PeerFailureError at every one of
  /// them; tests/dist_determinism_test.cpp sweeps them all.
  static int allreduce_sync_points(int world) noexcept {
    return alg::allreduce_sync_points(world);
  }

  /// Internal sync points one broadcast passes through (payload
  /// staging + one per delivery stage); the tree mirrors
  /// allreduce_stages(world).  tests/dist_test.cpp sweeps them all.
  static int broadcast_sync_points(int world) noexcept {
    return alg::broadcast_sync_points(world);
  }

  /// Deterministic fault injection for failure-semantics tests: worker
  /// `rank` throws std::runtime_error(message) upon entering its `nth`
  /// sync point (0-based, counted per rank and reset by run()).  Lets
  /// a test park peers at any internal tree stage of a collective.
  /// One-shot: the injection arms the NEXT run() only; run() disarms
  /// it on completion so a reused Cluster can recover.
  /// Collective inputs are staged out of caller buffers before any
  /// stage runs (transport send-copies + algorithm scratch), so a rank
  /// unwinding mid-collective can never invalidate memory a surviving
  /// peer still reads.
  void inject_fault_at_sync_point(int rank, std::uint64_t nth, std::string message);

  /// Collective-traffic totals so far.
  CommStats stats() const { return context_.stats(); }

  /// Modeled communication seconds of the current/most recent run
  /// (collectives plus anything charged via charge_seconds).
  double modeled_comm_seconds() const { return context_.modeled_seconds(); }

  /// Adds externally modeled time (e.g. DistStore fetches) to the
  /// communication clock.  Thread-safe: SimClock accumulates with an
  /// atomic CAS loop, so per-rank comm threads and the main thread may
  /// charge concurrently (see runtime/timer.h).
  void charge_seconds(double seconds) { context_.charge_seconds(seconds); }

  /// The shared model/ledger facade (for harnesses that construct
  /// their own Communicators over other transports).
  CommContext& context() noexcept { return context_; }

 private:
  int world_;
  CommContext context_;
  InProcessHub hub_;
};

}  // namespace pgti::dist
