// Ready-bucket gradient overlap: fire each bucket's all-reduce as soon
// as its last parameter gradient lands during backward, instead of one
// monolithic sync afterwards.
//
// OverlappedGradBucket implements GradReadyObserver.  backward() counts
// producers per requires_grad leaf (autograd/variable.h); each ready
// leaf decrements its bucket's dependency count, and when a bucket
// drains, the main thread packs it into a staging buffer and enqueues
// an all-reduce job on this rank's comm thread.  The comm thread runs
// the ordinary rank-ordered deterministic tree (Communicator::
// allreduce_mean), so per-bucket results are bit-identical to the
// serial GradBucket path — overlap changes *when* collectives run,
// never *what* they compute.  Because every replica builds the same
// tape, the ready order — and therefore the anonymous collective
// pairing across ranks — is identical everywhere.
//
// Threading contract (what keeps the Cluster's one-collective-thread-
// per-rank invariant): the comm thread only runs collectives between a
// job pop and its completion notification, both under this class's
// mutex; the main thread never enters a collective of its own without
// first passing a drain point (drain()/flush()) that waits for comm-
// thread quiescence through the same mutex.  The mutex chain also
// gives TSan the happens-before edges for the Cluster's per-rank
// bookkeeping (sync_seen_).
//
// Modes:
//   kStrict — drain() at step k waits for step k's buckets and applies
//     them: losses bit-identical to the serial path at every world
//     size and prefetch depth, with the reduce latency hidden under
//     the tail of backward.
//   kStale1 — bounded staleness (MSPipe's staleness-bound pipelining,
//     DistTGL's memory-staleness argument): drain() at step k waits
//     only for step k-1's buckets and applies those; step k's reduces
//     overlap the *next* step's compute.  Step 0 applies zeros (an
//     Adam step with zero gradient and zero weight decay is exactly a
//     no-op).  Staleness carries across epoch boundaries; convergence
//     is asserted within tolerance, not bit-exactness.
//
// Accounting mirrors the DistStore fetch split: each bucket's modeled
// allreduce seconds are classified against the wall window between
// enqueue and the drain that needed the result — exposed = max(0,
// modeled - window) — so DistResult can report overlapped vs exposed
// grad-sync time exactly as PR 3/4 report fetch time.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "autograd/variable.h"
#include "dist/cluster_model.h"
#include "dist/comm.h"
#include "dist/ddp.h"

namespace pgti::dist {

/// Per-rank overlapped gradient averager.  Construct inside the worker
/// function (one per rank); `params` and `comm` must outlive it.
class OverlappedGradBucket final : public GradReadyObserver {
 public:
  enum class Mode { kStrict, kStale1 };

  OverlappedGradBucket(Communicator& comm, std::vector<Variable>& params,
                       Mode mode, const NetworkModel& net,
                       std::int64_t bucket_numel = GradBucket::kDefaultBucketNumel);
  ~OverlappedGradBucket() override;

  OverlappedGradBucket(const OverlappedGradBucket&) = delete;
  OverlappedGradBucket& operator=(const OverlappedGradBucket&) = delete;

  // GradReadyObserver -------------------------------------------------
  void on_backward_start(const std::vector<Variable::Impl*>& leaves) override;
  void on_grad_ready(const Variable::Impl* leaf) override;

  /// Drain point: call once per training step, after backward and
  /// before the optimizer step (EpochEngine's sync_gradients hook).
  /// Strict: waits for this step's buckets and applies them.  Stale1:
  /// waits for the previous step's buckets and applies them (zeros at
  /// step 0).  Rethrows any comm-thread failure (fault injection,
  /// PeerFailureError) on the calling thread.
  void drain();

  /// Waits for comm-thread quiescence without applying anything.  Must
  /// be called before the main thread runs any collective of its own
  /// (end-of-epoch barriers / metric reductions).  In stale mode the
  /// completed-but-unapplied step stays buffered across the boundary.
  void flush();

  /// End of run: flush, then classify any still-unapplied bucket
  /// results as fully overlapped (they never gated a step), mirroring
  /// DistStore::abandon_prefetches.
  void finish();

  std::size_t bucket_count() const noexcept { return layout_.bucket_count(); }
  /// Modeled grad-sync seconds hidden under compute so far.
  double overlapped_seconds() const noexcept { return overlapped_; }
  /// Modeled grad-sync seconds the training loop actually waited for.
  double exposed_seconds() const noexcept { return exposed_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::size_t bucket = 0;
    int parity = 0;
    std::int64_t step = 0;
    double modeled_seconds = 0.0;
    Clock::time_point enqueued_at;
  };

  void enqueue_bucket_locked(std::size_t b);
  void comm_loop();
  void wait_parity_complete(std::unique_lock<std::mutex>& lock, bool both,
                            int parity);
  void classify_done_locked(std::int64_t max_step, Clock::time_point need);

  Communicator* comm_;
  std::vector<Variable>* params_;
  Mode mode_;
  NetworkModel net_;
  GradBucket layout_;

  std::unordered_map<const Variable::Impl*, std::size_t> bucket_of_;
  std::vector<double> bucket_modeled_;  // per bucket, allreduce seconds
  std::vector<int> pending_;            // per bucket, this sweep
  // Double-buffered staging: bufs_[step % 2][bucket].  Stale mode keeps
  // step k-1's results alive while step k packs the other parity.
  std::vector<std::vector<float>> bufs_[2];

  std::int64_t steps_started_ = 0;  // backward sweeps observed

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::vector<Job> done_;
  std::int64_t enqueued_[2] = {0, 0};   // per parity, current occupant step
  std::int64_t completed_[2] = {0, 0};
  std::exception_ptr error_;
  bool stop_ = false;
  std::thread comm_thread_;

  // Main-thread only.
  double overlapped_ = 0.0;
  double exposed_ = 0.0;
};

}  // namespace pgti::dist
