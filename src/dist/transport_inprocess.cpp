#include "dist/transport_inprocess.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace pgti::dist {

InProcessHub::InProcessHub(int world) : world_(world) {
  if (world < 1) throw std::invalid_argument("InProcessHub: world must be >= 1");
  sync_seen_.assign(static_cast<std::size_t>(world), 0);
  mail_.resize(static_cast<std::size_t>(world) * static_cast<std::size_t>(world));
}

void InProcessHub::reset_for_run() {
  std::lock_guard<std::mutex> lk(mu_);
  arrived_ = 0;
  generation_ = 0;
  failed_ = false;
  std::fill(sync_seen_.begin(), sync_seen_.end(), 0);
  for (auto& box : mail_) {
    // Recycle frames a failed run left in flight.
    while (!box.empty()) {
      pool_.push_back(std::move(box.front()));
      box.pop_front();
    }
  }
}

void InProcessHub::arm_fault(int rank, std::uint64_t nth, std::string message) {
  std::lock_guard<std::mutex> lk(mu_);
  fault_rank_ = rank;
  fault_at_ = nth;
  fault_message_ = std::move(message);
}

void InProcessHub::release_failure() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  failed_ = true;
  cv_.notify_all();
}

void InProcessTransport::send(int peer, const void* data, std::size_t bytes) {
  InProcessHub& h = *hub_;
  std::vector<char> buf;
  {
    std::lock_guard<std::mutex> lk(h.mu_);
    if (!h.pool_.empty()) {
      buf = std::move(h.pool_.back());
      h.pool_.pop_back();
    }
  }
  buf.resize(bytes);
  if (bytes > 0) std::memcpy(buf.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lk(h.mu_);
    // Delivery to a failed hub is harmless — reset_for_run recycles
    // undelivered frames — and letting the sender finish its posting
    // phase keeps the schedules' "all sends, then recvs" shape simple.
    h.mailbox(rank_, peer).push_back(std::move(buf));
  }
  h.cv_.notify_all();
}

void InProcessTransport::recv(int peer, void* data, std::size_t bytes) {
  InProcessHub& h = *hub_;
  std::vector<char> buf;
  {
    std::unique_lock<std::mutex> lk(h.mu_);
    auto& box = h.mailbox(peer, rank_);
    h.cv_.wait(lk, [&] { return h.failed_ || !box.empty(); });
    // Deliver frames that beat the failure flag: the sender completed
    // that send before unwinding, so the bytes are coherent.  Only an
    // EMPTY mailbox plus a failure means the frame will never come.
    if (box.empty()) throw PeerFailureError();
    buf = std::move(box.front());
    box.pop_front();
  }
  if (buf.size() != bytes) {
    throw TransportError("in-process recv: expected " + std::to_string(bytes) +
                         " bytes from rank " + std::to_string(peer) + ", got " +
                         std::to_string(buf.size()));
  }
  if (bytes > 0) std::memcpy(data, buf.data(), bytes);
  {
    std::lock_guard<std::mutex> lk(h.mu_);
    h.pool_.push_back(std::move(buf));
  }
}

void InProcessTransport::sync() {
  InProcessHub& h = *hub_;
  // Per-rank sync counting feeds the deterministic fault injection the
  // failure-depth tests use; each slot is touched only by its rank
  // (Transport single-collective-thread contract).
  const std::uint64_t seen = h.sync_seen_[static_cast<std::size_t>(rank_)]++;
  if (rank_ == h.fault_rank_ && seen == h.fault_at_) {
    throw std::runtime_error(h.fault_message_);
  }
  std::unique_lock<std::mutex> lk(h.mu_);
  if (h.failed_) throw PeerFailureError();
  if (++h.arrived_ == h.world_) {
    h.arrived_ = 0;
    ++h.generation_;
    h.cv_.notify_all();
    return;
  }
  const std::uint64_t gen = h.generation_;
  h.cv_.wait(lk, [&] { return h.failed_ || h.generation_ != gen; });
  // A completed generation outranks a failure flag raised afterwards:
  // the collective finished; the failure surfaces at the next entry.
  if (h.generation_ == gen) throw PeerFailureError();
}

void InProcessTransport::inject_fault_at_sync_point(std::uint64_t nth,
                                                    std::string message) {
  hub_->arm_fault(rank_, nth, std::move(message));
}

}  // namespace pgti::dist
