// Transport-agnostic collective schedules (the "algorithm layer" of
// the gloo-style algorithm/context split).
//
// Every collective here is a deterministic message-passing rewrite of
// the schedules PRs 2-3 ran over shared memory, with two invariants
// carried over unchanged:
//
//  1. Bit-identity.  All floating-point accumulation is LOCAL and
//     strictly rank-ordered: tree_allreduce reduce-scatters contiguous
//     ceil-chunks, and the owning rank adds the W staged contributions
//     for its chunk through the fixed prefix-doubling stage schedule —
//     stage s merges source ranks [2^s, 2^(s+1)) — so per-element
//     addition order is 0..W-1 regardless of transport, thread
//     schedule, or message arrival order.  The wire only ever moves
//     bytes (memcpy semantics), so the result is bit-identical to a
//     flat rank-ordered reduction on every backend (paper §5.3).
//
//  2. Sync-point counts.  Each collective passes through exactly the
//     same number of global sync points as the in-process original —
//     allreduce: allreduce_stages(w) + 3, broadcast: stages + 1,
//     scalar sum: 3, allgather: 2, barrier: 1 — so the fault-injection
//     sweeps in dist_test / dist_determinism_test / grad_overlap_test
//     (which index faults by per-rank sync ordinal) hold on every
//     transport, and a dying peer releases survivors at every tree
//     depth.
//
// Deadlock freedom: within every exchange phase a rank posts ALL its
// sends before its first recv, and Transport::send is non-blocking by
// contract, so no cyclic wait exists; recvs then drain in ascending
// rank order against per-edge FIFO delivery.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/transport.h"

namespace pgti::dist::alg {

/// Reduce-stage count (tree depth) of one all-reduce at `world` ranks:
/// ceil(log2(world)), and 1 for a single rank (the copy stage).
int allreduce_stages(int world) noexcept;

/// Sync points one all-reduce passes through: collective entry + input
/// exchange + one per tree stage + reduced-chunk gather.
int allreduce_sync_points(int world) noexcept;

/// Sync points one broadcast passes through: payload staging + one per
/// delivery stage (the tree mirrors allreduce_stages(world)).
int broadcast_sync_points(int world) noexcept;

/// Sync points of the remaining collectives (fault sweeps index these).
constexpr int kScalarSumSyncPoints = 3;
constexpr int kAllgatherSyncPoints = 2;
constexpr int kBarrierSyncPoints = 1;

/// Reusable scratch for tree_allreduce so the hot path (per-bucket
/// gradient sync every step) allocates only on first use / growth.
/// One per Communicator; collectives are serialized per rank, so no
/// locking is needed.
struct AllreduceScratch {
  std::vector<float> staged;  ///< W slices of this rank's owned chunk
  std::vector<float> chunk;   ///< the reduced chunk being accumulated
};

/// In-place sum (or mean) across ranks; identical bits on every rank
/// and every transport.
void tree_allreduce(Transport& t, float* data, std::int64_t n, bool mean,
                    AllreduceScratch& scratch);

/// Copies root's buffer into every other rank's buffer through the
/// prefix-doubling tree: stage s delivers to root-relative ranks
/// [2^s, 2^(s+1)).  Copies are bit-safe, so the tree costs no
/// determinism; the stage schedule buys failure granularity (a sync
/// point per depth), not parallelism.
void tree_broadcast(Transport& t, float* data, std::int64_t n, int root);

/// Rank-ordered scalar sum: rank 0 gathers every value, accumulates in
/// rank order 0..W-1 (one rounding order, every transport), and
/// distributes the result.
double scalar_sum(Transport& t, double value);

/// Every rank's value, ordered by rank.
std::vector<double> allgather_scalar(Transport& t, double value);

/// Blocks until every live rank arrives (throws PeerFailureError if a
/// peer died instead).
void barrier(Transport& t);

}  // namespace pgti::dist::alg
