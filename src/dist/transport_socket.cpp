#include "dist/transport_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <utility>

namespace pgti::dist {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Collective frames are latency-sensitive request/response pairs;
  // Nagle would serialize the sync-point control frames.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("socket: bad IPv4 host '" + host + "'");
  }
  return addr;
}

/// Blocking exact-length read with a poll() liveness backstop.
/// Peer death surfaces as PeerFailureError (EOF / ECONNRESET); a
/// timeout or any other error is a TransportError.
void read_all(int fd, void* data, std::size_t bytes, int timeout_ms) {
  std::size_t got = 0;
  char* out = static_cast<char*>(data);
  while (got < bytes) {
    pollfd pfd{fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) throw TransportError("socket read timed out");
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket poll failed");
    }
    const ssize_t r = ::recv(fd, out + got, bytes - got, 0);
    if (r == 0) throw PeerFailureError();
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) throw PeerFailureError();
      throw_errno("socket read failed");
    }
    got += static_cast<std::size_t>(r);
  }
}

/// Best-effort exact-length write; false once the peer is gone
/// (EPIPE/ECONNRESET) or the edge was shut down under us.
bool write_all(int fd, const char* data, std::size_t bytes) {
  std::size_t sent = 0;
  while (sent < bytes) {
    const ssize_t r = ::send(fd, data + sent, bytes - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

int accept_one(int listen_fd, int timeout_ms) {
  for (;;) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) throw TransportError("rendezvous accept timed out");
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno("rendezvous poll failed");
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    throw_errno("rendezvous accept failed");
  }
}

int connect_to(const std::string& host, std::uint16_t port, int timeout_ms) {
  const sockaddr_in addr = make_addr(host, port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // A listener that has not reached listen() yet (rank processes
    // racing through startup) refuses; retry until the backstop.
    if ((err == ECONNREFUSED || err == EINTR) &&
        std::chrono::steady_clock::now() < deadline) {
      struct timespec ts{0, 5 * 1000 * 1000};  // 5 ms
      ::nanosleep(&ts, nullptr);
      continue;
    }
    errno = err;
    throw_errno("connect to " + host + ":" + std::to_string(port) + " failed");
  }
}

frame::Header read_header(int fd, int timeout_ms) {
  frame::Header h{};
  read_all(fd, &h, frame::kHeaderBytes, timeout_ms);
  if (h.magic != frame::kMagic) {
    throw TransportError("socket frame: bad magic");
  }
  return h;
}

void write_frame_direct(int fd, frame::Type type, int sender_rank,
                        const void* payload, std::size_t bytes) {
  std::vector<char> buf(frame::kHeaderBytes + bytes);
  frame::Header h{frame::kMagic, static_cast<std::uint16_t>(type),
                  static_cast<std::uint16_t>(sender_rank),
                  static_cast<std::uint64_t>(bytes)};
  std::memcpy(buf.data(), &h, frame::kHeaderBytes);
  if (bytes > 0) std::memcpy(buf.data() + frame::kHeaderBytes, payload, bytes);
  if (!write_all(fd, buf.data(), buf.size())) {
    throw TransportError("rendezvous write failed");
  }
}

}  // namespace

std::pair<int, std::uint16_t> socket_listen(const std::string& host,
                                            std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  try {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(host, port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind " + host + ":" + std::to_string(port) + " failed");
    }
    if (::listen(fd, backlog) != 0) throw_errno("listen failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      throw_errno("getsockname failed");
    }
    return {fd, ntohs(bound.sin_port)};
  } catch (...) {
    ::close(fd);
    throw;
  }
}

SocketTransport::SocketTransport(const SocketOptions& options)
    : rank_(options.rank),
      world_(options.world),
      recv_timeout_ms_(options.recv_timeout_ms) {
  if (world_ < 1 || rank_ < 0 || rank_ >= world_) {
    throw std::invalid_argument("SocketTransport: bad rank/world");
  }
  peers_.resize(static_cast<std::size_t>(world_));
  for (auto& p : peers_) p = std::make_unique<Peer>();
  try {
    connect_mesh(options);
  } catch (...) {
    close_all();
    throw;
  }
  for (int q = 0; q < world_; ++q) {
    if (q == rank_) continue;
    Peer* p = peers_[static_cast<std::size_t>(q)].get();
    p->writer = std::thread([this, p] { writer_loop(*p); });
  }
}

void SocketTransport::connect_mesh(const SocketOptions& options) {
  if (world_ == 1) {
    if (options.listen_fd >= 0) ::close(options.listen_fd);
    return;
  }

  if (rank_ == 0) {
    int lfd = options.listen_fd;
    if (lfd < 0) {
      lfd = socket_listen(options.host, options.port, world_).first;
    }
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(world_), 0);
    try {
      for (int i = 0; i < world_ - 1; ++i) {
        const int fd = accept_one(lfd, recv_timeout_ms_);
        set_nodelay(fd);
        const frame::Header h = read_header(fd, recv_timeout_ms_);
        if (h.type != static_cast<std::uint16_t>(frame::Type::kHello) ||
            h.bytes != sizeof(std::uint16_t)) {
          ::close(fd);
          throw TransportError("rendezvous: expected HELLO frame");
        }
        std::uint16_t mesh_port = 0;
        read_all(fd, &mesh_port, sizeof(mesh_port), recv_timeout_ms_);
        const int q = h.rank;
        if (q <= 0 || q >= world_ ||
            peers_[static_cast<std::size_t>(q)]->fd >= 0) {
          ::close(fd);
          throw TransportError("rendezvous: bad or duplicate HELLO rank " +
                               std::to_string(q));
        }
        peers_[static_cast<std::size_t>(q)]->fd = fd;
        ports[static_cast<std::size_t>(q)] = mesh_port;
      }
    } catch (...) {
      ::close(lfd);
      throw;
    }
    ::close(lfd);
    for (int q = 1; q < world_; ++q) {
      write_frame_direct(peers_[static_cast<std::size_t>(q)]->fd,
                         frame::Type::kPeers, 0, ports.data(),
                         ports.size() * sizeof(std::uint16_t));
    }
    return;
  }

  // Ranks > 0: mesh listener first, so its port rides in the HELLO and
  // is guaranteed live before any peer learns it from the PEERS table.
  auto [mesh_lfd, mesh_port] = socket_listen(options.host, 0, world_);
  try {
    const int fd0 = connect_to(options.host, options.port, recv_timeout_ms_);
    peers_[0]->fd = fd0;
    set_nodelay(fd0);
    write_frame_direct(fd0, frame::Type::kHello, rank_, &mesh_port,
                       sizeof(mesh_port));

    const frame::Header ph = read_header(fd0, recv_timeout_ms_);
    if (ph.type != static_cast<std::uint16_t>(frame::Type::kPeers) ||
        ph.rank != 0 ||
        ph.bytes != static_cast<std::uint64_t>(world_) * sizeof(std::uint16_t)) {
      throw TransportError("rendezvous: expected PEERS frame");
    }
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(world_), 0);
    read_all(fd0, ports.data(), ports.size() * sizeof(std::uint16_t),
             recv_timeout_ms_);

    // Dial every lower nonzero rank; they identify us by the CONNECT
    // frame.  Listener backlogs absorb the dials, so the global dial
    // order (everyone dials down before accepting up) cannot deadlock.
    for (int a = 1; a < rank_; ++a) {
      const int fd = connect_to(options.host, ports[static_cast<std::size_t>(a)],
                                recv_timeout_ms_);
      set_nodelay(fd);
      write_frame_direct(fd, frame::Type::kConnect, rank_, nullptr, 0);
      peers_[static_cast<std::size_t>(a)]->fd = fd;
    }
    // Accept every higher rank.
    for (int i = 0; i < world_ - 1 - rank_; ++i) {
      const int fd = accept_one(mesh_lfd, recv_timeout_ms_);
      set_nodelay(fd);
      const frame::Header h = read_header(fd, recv_timeout_ms_);
      const int q = h.rank;
      if (h.type != static_cast<std::uint16_t>(frame::Type::kConnect) ||
          h.bytes != 0 || q <= rank_ || q >= world_ ||
          peers_[static_cast<std::size_t>(q)]->fd >= 0) {
        ::close(fd);
        throw TransportError("mesh: bad or duplicate CONNECT");
      }
      peers_[static_cast<std::size_t>(q)]->fd = fd;
    }
  } catch (...) {
    ::close(mesh_lfd);
    throw;
  }
  ::close(mesh_lfd);
}

SocketTransport::~SocketTransport() {
  for (auto& p : peers_) {
    if (!p) continue;
    {
      std::lock_guard<std::mutex> lk(p->mu);
      p->stop = true;
    }
    p->cv.notify_all();
  }
  for (auto& p : peers_) {
    if (p && p->writer.joinable()) p->writer.join();
  }
  close_all();
}

void SocketTransport::close_all() noexcept {
  for (auto& p : peers_) {
    if (p && p->fd >= 0) {
      ::close(p->fd);
      p->fd = -1;
    }
  }
}

void SocketTransport::writer_loop(Peer& peer) {
  for (;;) {
    std::vector<char> buf;
    {
      std::unique_lock<std::mutex> lk(peer.mu);
      peer.cv.wait(lk, [&] {
        return peer.abort || peer.stop || !peer.queue.empty();
      });
      if (peer.abort) return;
      if (peer.queue.empty()) {
        if (peer.stop) return;  // drained
        continue;
      }
      buf = std::move(peer.queue.front());
      peer.queue.pop_front();
    }
    if (!write_all(peer.fd, buf.data(), buf.size())) {
      std::lock_guard<std::mutex> lk(peer.mu);
      peer.edge_failed = true;
      return;
    }
    std::lock_guard<std::mutex> lk(peer.mu);
    peer.pool.push_back(std::move(buf));
  }
}

void SocketTransport::enqueue_frame(int peer, frame::Type type,
                                    const void* payload, std::size_t bytes) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  std::vector<char> buf;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (p.edge_failed) throw PeerFailureError();
    if (!p.pool.empty()) {
      buf = std::move(p.pool.back());
      p.pool.pop_back();
    }
  }
  buf.resize(frame::kHeaderBytes + bytes);
  frame::Header h{frame::kMagic, static_cast<std::uint16_t>(type),
                  static_cast<std::uint16_t>(rank_),
                  static_cast<std::uint64_t>(bytes)};
  std::memcpy(buf.data(), &h, frame::kHeaderBytes);
  if (bytes > 0) std::memcpy(buf.data() + frame::kHeaderBytes, payload, bytes);
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (p.edge_failed) throw PeerFailureError();
    p.queue.push_back(std::move(buf));
  }
  p.cv.notify_all();
}

void SocketTransport::read_frame(int peer, frame::Type expected, void* payload,
                                 std::size_t bytes) {
  Peer& p = *peers_[static_cast<std::size_t>(peer)];
  const frame::Header h = read_header(p.fd, recv_timeout_ms_);
  if (h.type != static_cast<std::uint16_t>(expected) || h.rank != peer) {
    throw TransportError(
        "socket frame: expected type " +
        std::to_string(static_cast<int>(expected)) + " from rank " +
        std::to_string(peer) + ", got type " + std::to_string(h.type) +
        " from rank " + std::to_string(h.rank));
  }
  if (h.bytes != bytes) {
    throw TransportError("socket frame: expected " + std::to_string(bytes) +
                         " payload bytes from rank " + std::to_string(peer) +
                         ", got " + std::to_string(h.bytes));
  }
  if (bytes > 0) read_all(p.fd, payload, bytes, recv_timeout_ms_);
}

void SocketTransport::send(int peer, const void* data, std::size_t bytes) {
  if (peer < 0 || peer >= world_ || peer == rank_) {
    throw TransportError("socket send: bad peer " + std::to_string(peer));
  }
  enqueue_frame(peer, frame::Type::kData, data, bytes);
}

void SocketTransport::recv(int peer, void* data, std::size_t bytes) {
  if (peer < 0 || peer >= world_ || peer == rank_) {
    throw TransportError("socket recv: bad peer " + std::to_string(peer));
  }
  read_frame(peer, frame::Type::kData, data, bytes);
}

void SocketTransport::sync() {
  // Per-endpoint sync counting feeds the deterministic fault injection
  // (see dist/transport.h); the injected rank throws BEFORE arriving,
  // parking peers exactly as a real mid-collective death would.
  const std::uint64_t seen = sync_seen_++;
  if (fault_armed_ && seen == fault_at_) {
    fault_armed_ = false;
    throw std::runtime_error(fault_message_);
  }
  if (world_ == 1) return;
  if (rank_ == 0) {
    for (int q = 1; q < world_; ++q) {
      read_frame(q, frame::Type::kArrive, nullptr, 0);
    }
    for (int q = 1; q < world_; ++q) {
      enqueue_frame(q, frame::Type::kRelease, nullptr, 0);
    }
  } else {
    enqueue_frame(0, frame::Type::kArrive, nullptr, 0);
    read_frame(0, frame::Type::kRelease, nullptr, 0);
  }
}

void SocketTransport::inject_fault_at_sync_point(std::uint64_t nth,
                                                 std::string message) {
  fault_armed_ = true;
  fault_at_ = nth;
  fault_message_ = std::move(message);
}

void SocketTransport::shutdown() noexcept {
  if (shutdown_.exchange(true)) return;
  // Half-close every edge first: peers blocked in read_all observe EOF
  // and unwind with PeerFailureError; our own writers' in-flight
  // send() fails and they exit via abort below.  fds stay open until
  // the destructor so no concurrent thread can race a recycled fd.
  for (auto& p : peers_) {
    if (p && p->fd >= 0) ::shutdown(p->fd, SHUT_RDWR);
  }
  for (auto& p : peers_) {
    if (!p) continue;
    {
      std::lock_guard<std::mutex> lk(p->mu);
      p->abort = true;
    }
    p->cv.notify_all();
  }
}

SocketCluster::SocketCluster(int world, NetworkModel network)
    : world_(world), context_(network) {
  if (world < 1) throw std::invalid_argument("SocketCluster: world must be >= 1");
}

void SocketCluster::inject_fault_at_sync_point(int rank, std::uint64_t nth,
                                               std::string message) {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("inject_fault_at_sync_point: bad rank");
  }
  fault_rank_ = rank;
  fault_at_ = nth;
  fault_message_ = std::move(message);
}

void SocketCluster::run(const std::function<void(Communicator&)>& fn) {
  // Modeled time is per-run; traffic stats accumulate across runs
  // (mirrors Cluster::run).
  context_.reset_clock();

  auto [listen_fd, port] = socket_listen("127.0.0.1", 0, world_);

  std::mutex err_mu;
  std::exception_ptr first_error;
  bool first_error_is_peer_failure = false;
  auto record_failure = [&](std::exception_ptr error, bool is_peer_failure) {
    std::lock_guard<std::mutex> lk(err_mu);
    if (!first_error || (first_error_is_peer_failure && !is_peer_failure)) {
      first_error = error;
      first_error_is_peer_failure = is_peer_failure;
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    workers.emplace_back([this, r, listen_fd = listen_fd, port = port, &fn,
                          &record_failure] {
      std::unique_ptr<SocketTransport> endpoint;
      try {
        SocketOptions opt;
        opt.rank = r;
        opt.world = world_;
        opt.port = port;
        if (r == 0) opt.listen_fd = listen_fd;
        endpoint = std::make_unique<SocketTransport>(opt);
        if (r == fault_rank_) {
          endpoint->inject_fault_at_sync_point(fault_at_, fault_message_);
        }
        Communicator comm(*endpoint, context_);
        fn(comm);
      } catch (const PeerFailureError&) {
        record_failure(std::current_exception(), /*is_peer_failure=*/true);
        if (endpoint) endpoint->shutdown();
      } catch (...) {
        record_failure(std::current_exception(), /*is_peer_failure=*/false);
        if (endpoint) endpoint->shutdown();
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // One-shot injection, mirroring Cluster::run.
  fault_rank_ = -1;

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pgti::dist
