// Dask-style distributed snapshot store (the paper's DDP baseline).
//
// The baseline materializes every snapshot and partitions them
// contiguously across workers; a worker whose shuffled batch contains
// snapshots owned elsewhere must fetch them over the network.
// DistStore is that ownership map plus the fetch ledger: local
// accesses are free, remote accesses are counted (snapshots, bytes,
// request messages) and priced by the NetworkModel.  With
// consolidate_requests, all items owned by one peer travel in a single
// request per batch — the Dask batching optimization §5.1 applies to
// the baseline to keep the comparison fair.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "dist/cluster_model.h"

namespace pgti::dist {

/// Remote-fetch ledger (what DistResult reports).
struct StoreStats {
  std::uint64_t local_snapshots = 0;
  std::uint64_t remote_snapshots = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t request_messages = 0;
  double modeled_seconds = 0.0;
};

/// Contiguous ceil-chunked ownership of `num_snapshots` snapshots
/// across `world` workers, with per-batch fetch accounting.
/// Thread-safe: worker threads call fetch_batch concurrently.
class DistStore {
 public:
  DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes, int world,
            NetworkModel network, bool consolidate_requests = true);

  /// Owning rank of a snapshot; throws std::out_of_range for ids
  /// outside [0, num_snapshots).
  int owner(std::int64_t snapshot) const;

  /// [begin, end) snapshot range owned by `rank`.
  std::pair<std::int64_t, std::int64_t> partition(int rank) const;

  /// Accounts one batch of snapshot accesses by `rank` and returns the
  /// modeled seconds this batch spent fetching remote snapshots.
  double fetch_batch(int rank, const std::vector<std::int64_t>& snapshots);

  StoreStats stats() const;

  std::int64_t num_snapshots() const noexcept { return num_snapshots_; }
  std::int64_t snapshot_bytes() const noexcept { return snapshot_bytes_; }
  int world() const noexcept { return world_; }
  bool consolidates_requests() const noexcept { return consolidate_requests_; }

 private:
  std::int64_t num_snapshots_;
  std::int64_t snapshot_bytes_;
  int world_;
  std::int64_t chunk_ = 1;
  NetworkModel network_;
  bool consolidate_requests_;

  mutable std::mutex mu_;
  StoreStats stats_;
};

}  // namespace pgti::dist
