// Dask-style distributed snapshot store (the paper's DDP baseline).
//
// The baseline materializes every snapshot and partitions them
// contiguously across workers; a worker whose shuffled batch contains
// snapshots owned elsewhere must fetch them over the network.
//
// DistStore exists in two modes:
//
//  * Ledger-only (num_snapshots/snapshot_bytes ctor): the ownership
//    map plus fetch accounting from PR 1 — remote accesses are counted
//    (snapshots, bytes, request messages) and priced by the
//    NetworkModel, but no data exists.  ClusterModel-style validation
//    and microbenches use this mode.
//  * Materialized (StandardDataset ctor): a real partitioned snapshot
//    store implementing data::SnapshotProvider.  Each rank owns the
//    contiguous shard [partition(rank)) of the materialized x/y arrays
//    (shard_x/shard_y expose the owned slices); fetch() returns actual
//    tensor data — a zero-copy view for rank-local snapshots, a real
//    copied tensor served through a bounded per-rank LRU cache for
//    remote ones.  The StoreStats ledger keeps the PR 1 *model*
//    (every remote access priced, consolidation per owner) and adds
//    the *measured* movement (bytes_copied, cache hits), so modeled
//    bytes can be asserted against bytes that physically moved:
//    remote_bytes == bytes_copied + cache_hit_bytes always holds.
//
// Announcement protocol (the consolidation contract): a batch of
// snapshot ids is announced once (fetch_batch / prefetch_batch) and
// each announced remote snapshot is then consumed by exactly one
// fetch().  Announced snapshots are *pinned* in the cache until
// consumed, so even a zero-capacity or byte-tight cache can never
// evict a snapshot between its announcement and its consumption — the
// failure mode that used to re-price announced fetches as their own
// single-snapshot requests.  abandon_prefetches(rank) releases
// announcements that will never be consumed (epoch truncation).
//
// Async prefetch pipeline (paper §7 future work): with
// async_prefetch, prefetch_batch() prices the batch and enqueues it on
// a per-rank background staging thread instead of copying inline;
// fetch() blocks only on snapshots not yet staged.  Loaders may keep
// any number of batches in flight (depth-N lookahead) — the staging
// queue is FIFO and every in-flight batch's snapshots stay pinned.
// Modeled fetch time then splits into *overlapped* seconds (hidden
// behind the real compute that elapsed between the announcement and
// the first time the consumer needed the batch) and *exposed* seconds
// (the remainder, the part still on the critical path).
// drain_modeled_seconds() drains only the exposed share — the
// synchronous path exposes everything, so the two modes price
// identical ledgers and differ only in the split.
//
// Schedule-aware eviction: announce_schedule(rank, ids) installs the
// epoch's consumption order; when the cache must evict, victims are
// unpinned entries with no remaining scheduled use first (LRU among
// them), then the farthest-scheduled (Belady fallback) — so a
// snapshot scheduled for a nearer-future batch always outlives
// already-consumed residue.  Without a schedule, eviction degrades to
// plain pinned-aware LRU.
//
// With consolidate_requests, all items owned by one peer travel in a
// single request per batch — the Dask batching optimization §5.1
// applies to the baseline to keep the comparison fair.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/preprocess.h"
#include "data/snapshot_provider.h"
#include "dist/cluster_model.h"
#include "runtime/arena.h"

namespace pgti::dist {

/// Remote-fetch ledger (what DistResult reports).  The first block is
/// the fetch *model* (every remote access priced); the second is the
/// *measured* movement of a materialized store.  Invariant for
/// materialized stores: remote_bytes == bytes_copied + cache_hit_bytes.
struct StoreStats {
  std::uint64_t local_snapshots = 0;
  std::uint64_t remote_snapshots = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t request_messages = 0;
  double modeled_seconds = 0.0;

  /// Split of modeled_seconds by whether the async staging pipeline hid
  /// the time behind compute.  overlapped + exposed converges to
  /// modeled_seconds once every announced batch has been consumed or
  /// abandoned (synchronous fetches are exposed in full).
  double overlapped_seconds = 0.0;
  double exposed_seconds = 0.0;

  std::uint64_t bytes_copied = 0;     ///< bytes physically cloned on cache misses
  std::uint64_t cache_hits = 0;       ///< remote accesses served from the LRU cache
  std::uint64_t cache_hit_bytes = 0;  ///< modeled bytes the cache absorbed
  std::uint64_t cache_evictions = 0;
};

/// Contiguous ceil-chunked ownership of `num_snapshots` snapshots
/// across `world` workers, with per-batch fetch accounting and
/// (materialized mode) real byte-moving snapshot storage.
/// Thread-safe for concurrent calls with DISTINCT ranks; within one
/// rank, the consumer, the staging thread, and a drainer may run
/// concurrently (per-rank state is mutex-protected).
class DistStore final : public data::SnapshotProvider {
 public:
  /// Default per-rank LRU cache capacity, in snapshots.
  static constexpr std::int64_t kDefaultCacheSnapshots = 64;

  /// Ledger-only mode: ownership map + fetch accounting, no data.
  DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes, int world,
            NetworkModel network, bool consolidate_requests = true);

  /// Materialized mode: takes ownership of the dataset and partitions
  /// its snapshots contiguously across `world` ranks.
  /// `cache_snapshots_per_rank` bounds each rank's remote cache in
  /// snapshots (0 is a valid zero-capacity cache: announced snapshots
  /// survive until consumed, then evict immediately; negative = auto —
  /// the store owns its default and sizes the cache to a couple of
  /// batches of the dataset's spec, never below
  /// kDefaultCacheSnapshots); `cache_bytes_per_rank` adds a byte bound
  /// on top (0 = no byte bound).  `async_prefetch` spawns one staging
  /// thread per rank and turns prefetch_batch into an asynchronous
  /// enqueue.
  DistStore(data::StandardDataset dataset, int world, NetworkModel network,
            bool consolidate_requests = true,
            std::int64_t cache_snapshots_per_rank = -1,
            std::int64_t cache_bytes_per_rank = 0, bool async_prefetch = false);

  ~DistStore() override;

  DistStore(const DistStore&) = delete;
  DistStore& operator=(const DistStore&) = delete;

  /// Registers a read-only rank (a serving-side view of the store) and
  /// returns its rank id.  Readers own no partition — every fetch is
  /// remote, priced and cached exactly like a worker's remote accesses
  /// — so training shards are untouched by serving traffic.  With
  /// async_prefetch the reader gets its own staging thread.  Setup
  /// time only: call before any concurrent use of the store (rank
  /// registration is not synchronized against in-flight accesses).
  int add_reader();

  /// Ranks registered via add_reader() so far.
  int reader_ranks() const noexcept { return reader_ranks_; }

  /// Owning rank of a snapshot; throws std::out_of_range for ids
  /// outside [0, num_snapshots).
  int owner(std::int64_t snapshot) const;

  /// [begin, end) snapshot range owned by `rank`.
  std::pair<std::int64_t, std::int64_t> partition(int rank) const;

  /// Accounts one batch of snapshot accesses by `rank` and returns the
  /// modeled seconds this batch spent fetching remote snapshots.  In
  /// materialized mode this is also where remote bytes physically move:
  /// missing snapshots are copied into `rank`'s LRU cache and pinned
  /// until consumed by fetch().  Always synchronous (the async pipeline
  /// goes through prefetch_batch).
  double fetch_batch(int rank, const std::vector<std::int64_t>& snapshots);

  StoreStats stats() const;

  std::int64_t snapshot_bytes() const noexcept { return snapshot_bytes_; }
  int world() const noexcept { return world_; }
  bool consolidates_requests() const noexcept { return consolidate_requests_; }
  bool materialized() const noexcept { return dataset_.has_value(); }
  bool async_prefetch() const noexcept { return async_prefetch_; }
  std::int64_t cache_capacity() const noexcept { return cache_capacity_; }
  std::int64_t cache_bytes_capacity() const noexcept { return cache_bytes_capacity_; }

  /// The materialized x/y shard owned by `rank`: zero-copy views of
  /// the snapshot range [partition(rank)).  Materialized mode only.
  Tensor shard_x(int rank) const;
  Tensor shard_y(int rank) const;

  // --- data::SnapshotProvider (materialized mode only, except
  // num_snapshots; the data accessors throw std::logic_error on a
  // ledger-only store) -------------------------------------------------
  std::pair<Tensor, Tensor> fetch(int rank, std::int64_t i) override;
  void prefetch_batch(int rank, const std::vector<std::int64_t>& ids) override;
  void abandon_prefetches(int rank) override;
  void notify_batch_delivered(int rank) override;
  /// Switches first-need classification from the fetching thread to
  /// notify_batch_delivered (FIFO, one request per delivery).  Enable
  /// BEFORE any consumer runs when a prefetch pipeline assembles
  /// batches ahead of compute — the worker's fetch happens up to
  /// `depth` batches before the consumer's need, and classifying there
  /// would shrink the measured window as depth grows.  Requests a
  /// truncated epoch consumed but never delivered are reconciled as
  /// fully overlapped by abandon_prefetches.
  void set_delivery_driven_classification(bool on) { delivery_driven_ = on; }
  /// Installs `rank`'s announced consumption order for schedule-aware
  /// eviction (replaces any previous schedule; ids may repeat —
  /// loaders announce the current epoch's order followed by the next
  /// epoch's, so end-of-epoch residue the coming epoch reuses keeps a
  /// future position across the boundary).  Position in `ids` =
  /// consumption order; eviction victims are chosen among unpinned
  /// entries preferring ones with no remaining scheduled use, then the
  /// farthest-scheduled (Belady fallback) — a snapshot scheduled for a
  /// nearer-future batch is never evicted while an already-consumed
  /// one is resident.  The schedule survives abandon_prefetches (the
  /// following start_epoch replaces it) so boundary eviction still
  /// sees the next epoch's needs.
  void announce_schedule(int rank, const std::vector<std::int64_t>& ids) override;
  double drain_modeled_seconds(int rank) override;
  std::int64_t num_snapshots() const noexcept override { return num_snapshots_; }
  MemorySpaceId space() const override;
  const data::StandardScaler& scaler() const override;
  const data::SplitRanges& splits() const override;
  const data::DatasetSpec& spec() const override;

 private:
  struct CacheEntry {
    Tensor x, y;
    std::list<std::int64_t>::iterator lru_it;
    std::int64_t bytes = 0;
    /// Outstanding announcements: > 0 means announced but not yet
    /// consumed by fetch(); pinned entries are never evicted.
    int pins = 0;
  };

  /// One asynchronously announced batch: the remote ids to stage, the
  /// modeled price charged at enqueue, and the enqueue timestamp the
  /// overlapped/exposed classification measures the compute window
  /// from.
  struct StageRequest {
    std::vector<std::int64_t> remote_ids;
    double modeled_seconds = 0.0;
    std::chrono::steady_clock::time_point enqueued_at;
    bool staged = false;
    bool classified = false;
    bool awaiting_delivery = false;  ///< consumed, queued for delivery classification
    bool orphaned = false;  ///< abandoned before staging: stage unpinned
    /// Staging failure (e.g. bad_alloc in a clone), rethrown on the
    /// consumer that waits for this request instead of terminating the
    /// staging thread's process.
    std::exception_ptr error;
  };

  /// Per-rank remote-snapshot cache, staging pipeline, and
  /// exposed-time drain accumulator.  `m` serializes the rank's
  /// consumer thread, its staging thread, and drain callers.
  struct RankState {
    std::mutex m;
    std::condition_variable cv;
    std::list<std::int64_t> lru;  // front = most recently used
    std::unordered_map<std::int64_t, CacheEntry> cache;
    std::int64_t cache_bytes = 0;
    double pending_exposed_seconds = 0.0;
    std::deque<std::shared_ptr<StageRequest>> queue;  // enqueued, not yet staged
    /// Announced-but-unconsumed remote ids -> the request staging them.
    std::unordered_map<std::int64_t, std::shared_ptr<StageRequest>> in_flight;
    /// Delivery-driven mode: requests the (worker) consumer fetched,
    /// FIFO, waiting for notify_batch_delivered to classify them.
    std::deque<std::shared_ptr<StageRequest>> awaiting_delivery;
    std::thread stager;
    bool staging = false;  ///< a popped request is mid-staging
    bool stop = false;

    /// Epoch schedule for schedule-aware eviction: id -> ALL positions
    /// (ascending) in the announced consumption order.  Loaders
    /// announce the current epoch followed by the next one (both are
    /// pure functions of the seed), so an id may appear several times;
    /// only its first position at or past schedule_progress matters.
    /// Positions below schedule_progress have already been consumed
    /// (remote consumes advance it).
    std::unordered_map<std::int64_t, std::vector<std::int64_t>> schedule_pos;
    std::int64_t schedule_progress = 0;

    /// Pool for the staging thread's snapshot clones: the stager runs
    /// under an ArenaScope on this arena, so after the first pass over
    /// a shape the per-batch remote copies recycle pool blocks instead
    /// of hitting the heap (clones fully overwrite, so recycled
    /// uninitialized memory is safe).  Cache evictions release blocks
    /// from the consumer thread; the arena is thread-safe for that.
    runtime::TensorArena arena;
  };

  /// Per-owner-consolidated price of one announced batch (the PR 1
  /// fetch model, unchanged).
  struct BatchPrice {
    std::uint64_t local = 0;
    std::uint64_t remote = 0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double seconds = 0.0;
    std::vector<std::int64_t> remote_ids;
  };

  const data::StandardDataset& dataset_ref() const;
  RankState& rank_state(int rank);
  void check_rank(int rank) const;
  BatchPrice price_batch(int rank, const std::vector<std::int64_t>& snapshots) const;

  /// Serves remote snapshot `i` into `rank`'s cache (rs.m held),
  /// physically cloning it in on a miss.  `pin` marks the snapshot
  /// announced-until-consumed.  Updates the measured-movement stats.
  void stage_locked(RankState& rs, std::int64_t i, bool pin);
  /// Hit half of stage_locked (rs.m held): if `i` is resident, records
  /// the cache hit, refreshes LRU, optionally pins, and returns true.
  bool try_stage_hit_locked(RankState& rs, std::int64_t i, bool pin);
  /// Miss half of stage_locked (rs.m held): inserts the cloned
  /// tensors, records the copied bytes, and enforces the bounds.
  void insert_entry_locked(RankState& rs, std::int64_t i, Tensor x, Tensor y,
                           bool pin);
  /// Hands the cached snapshot to the consumer (rs.m held): unpins one
  /// announcement and enforces the cache bounds.
  std::pair<Tensor, Tensor> consume_locked(RankState& rs, std::int64_t i);
  /// Evicts unpinned entries while over either bound (rs.m held);
  /// victim choice is schedule-aware: entries with no remaining
  /// scheduled use go first (LRU order among them), then the
  /// farthest-scheduled; pinned (announced, unconsumed) entries are
  /// never victims.  Evictions count into stats_.cache_evictions.
  void evict_over_capacity_locked(RankState& rs);
  /// Next scheduled position of `i` in `rs`'s announced epoch order,
  /// or -1 when `i` is unscheduled / already past (rs.m held).
  static std::int64_t future_schedule_pos_locked(const RankState& rs,
                                                 std::int64_t i);
  /// First-need classification of an async request (rs.m held):
  /// exposed = max(0, modeled - wall seconds since enqueue).
  void classify_locked(RankState& rs, StageRequest& req, bool fully_overlapped);

  void stager_loop(int rank);

  std::int64_t num_snapshots_;
  std::int64_t snapshot_bytes_;
  int world_;
  int reader_ranks_ = 0;  ///< read-only ranks appended after the workers
  std::int64_t chunk_ = 1;
  NetworkModel network_;
  bool consolidate_requests_;
  std::int64_t cache_capacity_ = kDefaultCacheSnapshots;
  std::int64_t cache_bytes_capacity_ = 0;  ///< 0 = no byte bound
  bool async_prefetch_ = false;
  bool delivery_driven_ = false;  ///< set before consumers run, const after

  std::optional<data::StandardDataset> dataset_;
  std::vector<std::unique_ptr<RankState>> ranks_;

  mutable std::mutex mu_;
  StoreStats stats_;
};

}  // namespace pgti::dist
