// Dask-style distributed snapshot store (the paper's DDP baseline).
//
// The baseline materializes every snapshot and partitions them
// contiguously across workers; a worker whose shuffled batch contains
// snapshots owned elsewhere must fetch them over the network.
//
// DistStore exists in two modes:
//
//  * Ledger-only (num_snapshots/snapshot_bytes ctor): the ownership
//    map plus fetch accounting from PR 1 — remote accesses are counted
//    (snapshots, bytes, request messages) and priced by the
//    NetworkModel, but no data exists.  ClusterModel-style validation
//    and microbenches use this mode.
//  * Materialized (StandardDataset ctor): a real partitioned snapshot
//    store implementing data::SnapshotProvider.  Each rank owns the
//    contiguous shard [partition(rank)) of the materialized x/y arrays
//    (shard_x/shard_y expose the owned slices); fetch() returns actual
//    tensor data — a zero-copy view for rank-local snapshots, a real
//    copied tensor served through a bounded per-rank LRU cache for
//    remote ones.  The StoreStats ledger keeps the PR 1 *model*
//    (every remote access priced, consolidation per owner) and adds
//    the *measured* movement (bytes_copied, cache hits), so modeled
//    bytes can be asserted against bytes that physically moved:
//    remote_bytes == bytes_copied + cache_hit_bytes always holds.
//
// With consolidate_requests, all items owned by one peer travel in a
// single request per batch — the Dask batching optimization §5.1
// applies to the baseline to keep the comparison fair.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/preprocess.h"
#include "data/snapshot_provider.h"
#include "dist/cluster_model.h"

namespace pgti::dist {

/// Remote-fetch ledger (what DistResult reports).  The first block is
/// the fetch *model* (every remote access priced); the second is the
/// *measured* movement of a materialized store.  Invariant for
/// materialized stores: remote_bytes == bytes_copied + cache_hit_bytes.
struct StoreStats {
  std::uint64_t local_snapshots = 0;
  std::uint64_t remote_snapshots = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t request_messages = 0;
  double modeled_seconds = 0.0;

  std::uint64_t bytes_copied = 0;     ///< bytes physically cloned on cache misses
  std::uint64_t cache_hits = 0;       ///< remote accesses served from the LRU cache
  std::uint64_t cache_hit_bytes = 0;  ///< modeled bytes the cache absorbed
  std::uint64_t cache_evictions = 0;
};

/// Contiguous ceil-chunked ownership of `num_snapshots` snapshots
/// across `world` workers, with per-batch fetch accounting and
/// (materialized mode) real byte-moving snapshot storage.
/// Thread-safe for concurrent calls with DISTINCT ranks; the per-rank
/// caches are unsynchronized (one worker thread per rank).
class DistStore final : public data::SnapshotProvider {
 public:
  /// Default per-rank LRU cache capacity, in snapshots.
  static constexpr std::int64_t kDefaultCacheSnapshots = 64;

  /// Ledger-only mode: ownership map + fetch accounting, no data.
  DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes, int world,
            NetworkModel network, bool consolidate_requests = true);

  /// Materialized mode: takes ownership of the dataset and partitions
  /// its snapshots contiguously across `world` ranks.
  DistStore(data::StandardDataset dataset, int world, NetworkModel network,
            bool consolidate_requests = true,
            std::int64_t cache_snapshots_per_rank = kDefaultCacheSnapshots);

  /// Owning rank of a snapshot; throws std::out_of_range for ids
  /// outside [0, num_snapshots).
  int owner(std::int64_t snapshot) const;

  /// [begin, end) snapshot range owned by `rank`.
  std::pair<std::int64_t, std::int64_t> partition(int rank) const;

  /// Accounts one batch of snapshot accesses by `rank` and returns the
  /// modeled seconds this batch spent fetching remote snapshots.  In
  /// materialized mode this is also where remote bytes physically move:
  /// missing snapshots are copied into `rank`'s LRU cache.
  double fetch_batch(int rank, const std::vector<std::int64_t>& snapshots);

  StoreStats stats() const;

  std::int64_t snapshot_bytes() const noexcept { return snapshot_bytes_; }
  int world() const noexcept { return world_; }
  bool consolidates_requests() const noexcept { return consolidate_requests_; }
  bool materialized() const noexcept { return dataset_.has_value(); }
  std::int64_t cache_capacity() const noexcept { return cache_capacity_; }

  /// The materialized x/y shard owned by `rank`: zero-copy views of
  /// the snapshot range [partition(rank)).  Materialized mode only.
  Tensor shard_x(int rank) const;
  Tensor shard_y(int rank) const;

  // --- data::SnapshotProvider (materialized mode only, except
  // num_snapshots; the data accessors throw std::logic_error on a
  // ledger-only store) -------------------------------------------------
  std::pair<Tensor, Tensor> fetch(int rank, std::int64_t i) override;
  void prefetch_batch(int rank, const std::vector<std::int64_t>& ids) override;
  double drain_modeled_seconds(int rank) override;
  std::int64_t num_snapshots() const noexcept override { return num_snapshots_; }
  MemorySpaceId space() const override;
  const data::StandardScaler& scaler() const override;
  const data::SplitRanges& splits() const override;
  const data::DatasetSpec& spec() const override;

 private:
  struct CacheEntry {
    Tensor x, y;
    std::list<std::int64_t>::iterator lru_it;
  };
  /// Per-rank remote-snapshot cache + modeled-time drain accumulator.
  /// Touched only by its rank's thread; no lock.
  struct RankState {
    std::list<std::int64_t> lru;  // front = most recently used
    std::unordered_map<std::int64_t, CacheEntry> cache;
    double pending_modeled_seconds = 0.0;
  };

  const data::StandardDataset& dataset_ref() const;
  /// Serves remote snapshot `i` from `rank`'s cache, physically
  /// cloning it in on a miss.  Updates the measured-movement stats.
  std::pair<Tensor, Tensor> cache_fetch(int rank, std::int64_t i);

  std::int64_t num_snapshots_;
  std::int64_t snapshot_bytes_;
  int world_;
  std::int64_t chunk_ = 1;
  NetworkModel network_;
  bool consolidate_requests_;
  std::int64_t cache_capacity_ = kDefaultCacheSnapshots;

  std::optional<data::StandardDataset> dataset_;
  std::vector<RankState> ranks_;

  mutable std::mutex mu_;
  StoreStats stats_;
};

}  // namespace pgti::dist
