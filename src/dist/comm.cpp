#include "dist/comm.h"

#include <thread>
#include <utility>

namespace pgti::dist {

void Communicator::allreduce(float* data, std::int64_t n, bool mean) {
  alg::tree_allreduce(*transport_, data, n, mean, scratch_);
  if (rank() == 0) {
    {
      std::lock_guard<std::mutex> lk(context_->mu_);
      ++context_->stats_.allreduce_count;
      context_->stats_.allreduce_bytes +=
          static_cast<std::uint64_t>(n) * sizeof(float) *
          static_cast<std::uint64_t>(world());
    }
    context_->sim_clock_.add(context_->network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), world()));
  }
}

void Communicator::allreduce_sum(float* data, std::int64_t n) {
  allreduce(data, n, /*mean=*/false);
}

void Communicator::allreduce_mean(float* data, std::int64_t n) {
  allreduce(data, n, /*mean=*/true);
}

double Communicator::allreduce_scalar_sum(double value) {
  const double result = alg::scalar_sum(*transport_, value);
  if (rank() == 0) {
    {
      std::lock_guard<std::mutex> lk(context_->mu_);
      ++context_->stats_.allreduce_count;
      context_->stats_.allreduce_bytes +=
          static_cast<std::uint64_t>(world()) * sizeof(double);
    }
    context_->sim_clock_.add(
        context_->network_.allreduce_seconds(sizeof(double), world()));
  }
  return result;
}

std::vector<double> Communicator::allgather(double value) {
  std::vector<double> result = alg::allgather_scalar(*transport_, value);
  if (rank() == 0) {
    {
      std::lock_guard<std::mutex> lk(context_->mu_);
      ++context_->stats_.allgather_count;
      context_->stats_.allgather_bytes +=
          static_cast<std::uint64_t>(sizeof(double)) *
          static_cast<std::uint64_t>(world()) *
          static_cast<std::uint64_t>(world() - 1);
    }
    context_->sim_clock_.add(
        context_->network_.allreduce_seconds(sizeof(double), world()));
  }
  return result;
}

void Communicator::broadcast(float* data, std::int64_t n, int root) {
  alg::tree_broadcast(*transport_, data, n, root);
  if (rank() == root) {
    {
      std::lock_guard<std::mutex> lk(context_->mu_);
      ++context_->stats_.broadcast_count;
      context_->stats_.broadcast_bytes +=
          static_cast<std::uint64_t>(n) * sizeof(float) *
          static_cast<std::uint64_t>(world() - 1);
    }
    context_->sim_clock_.add(context_->network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), world()));
  }
}

void Communicator::barrier() {
  alg::barrier(*transport_);
  if (rank() == 0) {
    std::lock_guard<std::mutex> lk(context_->mu_);
    ++context_->stats_.barrier_count;
    context_->stats_.barrier_bytes +=
        2u * static_cast<std::uint64_t>(world() - 1) * frame::kHeaderBytes;
  }
}

Cluster::Cluster(int world, NetworkModel network)
    : world_(world), context_(network), hub_(world) {
  if (world < 1) throw std::invalid_argument("Cluster: world must be >= 1");
}

void Cluster::inject_fault_at_sync_point(int rank, std::uint64_t nth,
                                         std::string message) {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("inject_fault_at_sync_point: bad rank");
  }
  hub_.arm_fault(rank, nth, std::move(message));
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  hub_.reset_for_run();
  // Modeled time is per-run; traffic stats accumulate across runs.
  context_.reset_clock();

  // Error collection lives in the harness, not the transport: the
  // first non-peer-failure error wins, and the hub's failure flag is
  // raised (releasing blocked peers) only after the error is recorded.
  std::mutex err_mu;
  std::exception_ptr first_error;
  bool first_error_is_peer_failure = false;
  auto record_failure = [&](std::exception_ptr error, bool is_peer_failure) {
    std::lock_guard<std::mutex> lk(err_mu);
    if (!first_error || (first_error_is_peer_failure && !is_peer_failure)) {
      first_error = error;
      first_error_is_peer_failure = is_peer_failure;
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    workers.emplace_back([this, r, &fn, &record_failure] {
      InProcessTransport endpoint(hub_, r);
      Communicator comm(endpoint, context_);
      try {
        fn(comm);
      } catch (const PeerFailureError&) {
        // Secondary casualty: keep unwinding, but never let it mask the
        // peer's original error.
        record_failure(std::current_exception(), /*is_peer_failure=*/true);
        endpoint.shutdown();
      } catch (...) {
        record_failure(std::current_exception(), /*is_peer_failure=*/false);
        endpoint.shutdown();
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // Injected faults are one-shot: disarm so a reused Cluster's next
  // run() (a supported pattern, e.g. a recovery pass after a
  // fault-injection pass) does not deterministically re-throw.
  hub_.arm_fault(-1, 0, std::string());

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pgti::dist
