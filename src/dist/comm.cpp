#include "dist/comm.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

namespace pgti::dist {

int Communicator::world() const noexcept { return cluster_->world_; }

void Communicator::allreduce_sum(float* data, std::int64_t n) {
  cluster_->allreduce(data, n, rank_, /*mean=*/false);
}

void Communicator::allreduce_mean(float* data, std::int64_t n) {
  cluster_->allreduce(data, n, rank_, /*mean=*/true);
}

double Communicator::allreduce_scalar_sum(double value) {
  Cluster& c = *cluster_;
  c.double_slots_[static_cast<std::size_t>(rank_)] = value;
  c.sync_point(rank_);  // all values published
  if (rank_ == 0) {
    double acc = 0.0;
    for (int r = 0; r < c.world_; ++r) {
      acc += c.double_slots_[static_cast<std::size_t>(r)];
    }
    c.scalar_result_ = acc;
    {
      std::lock_guard<std::mutex> lk(c.mu_);
      ++c.stats_.allreduce_count;
      c.stats_.allreduce_bytes +=
          static_cast<std::uint64_t>(c.world_) * sizeof(double);
    }
    c.sim_clock_.add(c.network_.allreduce_seconds(sizeof(double), c.world_));
  }
  c.sync_point(rank_);  // sum ready
  const double result = c.scalar_result_;
  c.sync_point(rank_);  // everyone read; scratch reusable
  return result;
}

std::vector<double> Communicator::allgather(double value) {
  Cluster& c = *cluster_;
  c.double_slots_[static_cast<std::size_t>(rank_)] = value;
  c.sync_point(rank_);  // all values published
  std::vector<double> result(c.double_slots_.begin(), c.double_slots_.end());
  if (rank_ == 0) {
    {
      std::lock_guard<std::mutex> lk(c.mu_);
      ++c.stats_.allgather_count;
    }
    c.sim_clock_.add(c.network_.allreduce_seconds(sizeof(double), c.world_));
  }
  c.sync_point(rank_);  // everyone copied; scratch reusable
  return result;
}

void Communicator::broadcast(float* data, std::int64_t n, int root) {
  Cluster& c = *cluster_;
  if (root < 0 || root >= c.world_) {
    throw std::invalid_argument("broadcast: root " + std::to_string(root) +
                                " outside [0, " + std::to_string(c.world_) + ")");
  }
  const std::size_t count = static_cast<std::size_t>(n);
  if (rank_ == root) {
    // Safe pre-sync: every rank passed the previous collective's final
    // sync point before any rank could enter this one.  Staging the
    // payload in cluster-owned memory means delivery stages never read
    // the root caller's (unwindable) buffer.
    c.bcast_buf_.resize(count);
    std::memcpy(c.bcast_buf_.data(), data, count * sizeof(float));
    {
      std::lock_guard<std::mutex> lk(c.mu_);
      ++c.stats_.broadcast_count;
      c.stats_.broadcast_bytes += static_cast<std::uint64_t>(n) * sizeof(float) *
                                  static_cast<std::uint64_t>(c.world_ - 1);
    }
    c.sim_clock_.add(c.network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), c.world_));
  }
  c.sync_point(rank_);  // payload staged

  // Prefix-doubling delivery mirroring the all-reduce pairing schedule
  // (DESIGN.md §8): stage s reaches root-relative ranks [2^s, 2^(s+1)).
  // As with the all-reduce tree, the stage schedule buys failure
  // granularity — each stage ends in a sync point, so a dead peer
  // releases the others at every tree depth — not parallelism; copies
  // cannot perturb float bits, so the result is identical to the flat
  // root-to-all copy.
  const int rel = (rank_ - root + c.world_) % c.world_;
  const int stages = Cluster::allreduce_stages(c.world_);
  for (int s = 0; s < stages; ++s) {
    if (rel >= (1 << s) && rel < (1 << (s + 1))) {
      std::memcpy(data, c.bcast_buf_.data(), count * sizeof(float));
    }
    c.sync_point(rank_);  // delivery stage s complete
  }
}

void Communicator::barrier() {
  Cluster& c = *cluster_;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(c.mu_);
    ++c.stats_.barrier_count;
  }
  c.sync_point(rank_);
}

Cluster::Cluster(int world, NetworkModel network)
    : world_(world), network_(network) {
  if (world < 1) throw std::invalid_argument("Cluster: world must be >= 1");
  double_slots_.assign(static_cast<std::size_t>(world), 0.0);
  sync_seen_.assign(static_cast<std::size_t>(world), 0);
}

void Cluster::inject_fault_at_sync_point(int rank, std::uint64_t nth,
                                         std::string message) {
  if (rank < 0 || rank >= world_) {
    throw std::invalid_argument("inject_fault_at_sync_point: bad rank");
  }
  std::lock_guard<std::mutex> lk(mu_);
  fault_rank_ = rank;
  fault_at_ = nth;
  fault_message_ = std::move(message);
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    arrived_ = 0;
    generation_ = 0;
    failed_ = false;
    first_error_ = nullptr;
    first_error_is_peer_failure_ = false;
    std::fill(double_slots_.begin(), double_slots_.end(), 0.0);
    std::fill(sync_seen_.begin(), sync_seen_.end(), 0);
    // Modeled time is per-run; traffic stats accumulate across runs.
    sim_clock_.reset();
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    workers.emplace_back([this, r, &fn] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (const PeerFailureError&) {
        // Secondary casualty: keep unwinding, but never let it mask the
        // peer's original error.
        record_failure(std::current_exception(), /*is_peer_failure=*/true);
      } catch (...) {
        record_failure(std::current_exception(), /*is_peer_failure=*/false);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = first_error_;
    // Injected faults are one-shot: disarm so a reused Cluster's next
    // run() (a supported pattern, e.g. a recovery pass after a
    // fault-injection pass) does not deterministically re-throw.
    fault_rank_ = -1;
  }
  if (error) std::rethrow_exception(error);
}

CommStats Cluster::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Cluster::sync_point(int rank) {
  // Per-rank sync counting feeds the deterministic fault injection the
  // failure-depth tests use; each slot is touched only by its rank.
  const std::uint64_t seen = sync_seen_[static_cast<std::size_t>(rank)]++;
  if (rank == fault_rank_ && seen == fault_at_) {
    throw std::runtime_error(fault_message_);
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (failed_) throw PeerFailureError();
  if (++arrived_ == world_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t gen = generation_;
  cv_.wait(lk, [&] { return failed_ || generation_ != gen; });
  // A completed generation outranks a failure flag raised afterwards:
  // the collective finished; the failure surfaces at the next entry.
  if (generation_ == gen) throw PeerFailureError();
}

void Cluster::record_failure(std::exception_ptr error, bool is_peer_failure) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!first_error_ || (first_error_is_peer_failure_ && !is_peer_failure)) {
    first_error_ = error;
    first_error_is_peer_failure_ = is_peer_failure;
  }
  failed_ = true;
  cv_.notify_all();
}

int Cluster::allreduce_stages(int world) noexcept {
  // Prefix-doubling: after stage s every chunk holds the rank-ordered
  // sum of ranks [0, min(2^(s+1), world)).  ceil(log2(world)) stages;
  // a single rank still runs one (copy) stage.
  int stages = 1;
  while ((std::int64_t{1} << stages) < world) ++stages;
  return stages;
}

int Cluster::allreduce_sync_points(int world) noexcept {
  // scratch sizing + input staging + one per tree stage + final gather.
  return allreduce_stages(world) + 3;
}

int Cluster::broadcast_sync_points(int world) noexcept {
  // payload staging + one per delivery stage.
  return allreduce_stages(world) + 1;
}

void Cluster::allreduce(float* data, std::int64_t n, int rank, bool mean) {
  const std::size_t count = static_cast<std::size_t>(n);
  if (rank == 0) {
    // Safe pre-sync: every rank passed the previous collective's final
    // sync point before any rank could enter this one, so nobody is
    // still touching the scratch buffers.
    input_buf_.resize(count * static_cast<std::size_t>(world_));
    reduce_buf_.resize(count);
  }
  sync_point(rank);  // scratch sized

  // Stage the input in cluster-owned memory: tree stages only ever
  // read input_buf_/reduce_buf_, so a rank unwinding mid-collective
  // (PeerFailureError, injected fault) cannot invalidate memory a
  // surviving peer still reads.
  std::memcpy(input_buf_.data() + count * static_cast<std::size_t>(rank), data,
              count * sizeof(float));
  sync_point(rank);  // all inputs staged

  // Reduce-scatter layout: this rank owns one contiguous element chunk
  // and accumulates every rank's contribution for it.  Per-element
  // addition order is strictly rank 0..W-1 regardless of how stages
  // split the work, so the result is bit-identical to a flat
  // rank-ordered reduction and invariant to thread scheduling; the W
  // chunks reduce in parallel.
  const std::int64_t chunk = (n + world_ - 1) / world_;
  const std::int64_t clo = std::min<std::int64_t>(chunk * rank, n);
  const std::int64_t chi = std::min<std::int64_t>(clo + chunk, n);
  float* out = reduce_buf_.data();

  const int stages = allreduce_stages(world_);
  for (int s = 0; s < stages; ++s) {
    // Fixed pairing schedule: stage s merges source ranks
    // [2^s, 2^(s+1)) into the accumulated prefix [0, 2^s) (stage 0
    // also seeds the chunk with rank 0's input).
    const int src_begin = s == 0 ? 0 : 1 << s;
    const int src_end = std::min(world_, 1 << (s + 1));
    for (int r = src_begin; r < src_end; ++r) {
      const float* src = input_buf_.data() + count * static_cast<std::size_t>(r);
      if (r == 0) {
        std::memcpy(out + clo, src + clo,
                    static_cast<std::size_t>(chi - clo) * sizeof(float));
      } else {
        for (std::int64_t i = clo; i < chi; ++i) out[i] += src[i];
      }
    }
    if (s + 1 == stages && mean) {
      const float inv = 1.0f / static_cast<float>(world_);
      for (std::int64_t i = clo; i < chi; ++i) out[i] *= inv;
    }
    sync_point(rank);  // tree stage s complete on every chunk
  }

  if (rank == 0) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.allreduce_count;
      stats_.allreduce_bytes += static_cast<std::uint64_t>(n) * sizeof(float) *
                                static_cast<std::uint64_t>(world_);
    }
    sim_clock_.add(network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), world_));
  }
  std::memcpy(data, out, count * sizeof(float));
  sync_point(rank);  // everyone gathered; scratch reusable
}

}  // namespace pgti::dist
