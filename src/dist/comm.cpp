#include "dist/comm.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>

namespace pgti::dist {

int Communicator::world() const noexcept { return cluster_->world_; }

void Communicator::allreduce_sum(float* data, std::int64_t n) {
  cluster_->allreduce(data, n, rank_, /*mean=*/false);
}

void Communicator::allreduce_mean(float* data, std::int64_t n) {
  cluster_->allreduce(data, n, rank_, /*mean=*/true);
}

double Communicator::allreduce_scalar_sum(double value) {
  Cluster& c = *cluster_;
  c.double_slots_[static_cast<std::size_t>(rank_)] = value;
  c.sync_point();  // all values published
  if (rank_ == 0) {
    double acc = 0.0;
    for (int r = 0; r < c.world_; ++r) {
      acc += c.double_slots_[static_cast<std::size_t>(r)];
    }
    c.scalar_result_ = acc;
    {
      std::lock_guard<std::mutex> lk(c.mu_);
      ++c.stats_.allreduce_count;
      c.stats_.allreduce_bytes +=
          static_cast<std::uint64_t>(c.world_) * sizeof(double);
    }
    c.sim_clock_.add(c.network_.allreduce_seconds(sizeof(double), c.world_));
  }
  c.sync_point();  // sum ready
  const double result = c.scalar_result_;
  c.sync_point();  // everyone read; scratch reusable
  return result;
}

std::vector<double> Communicator::allgather(double value) {
  Cluster& c = *cluster_;
  c.double_slots_[static_cast<std::size_t>(rank_)] = value;
  c.sync_point();  // all values published
  std::vector<double> result(c.double_slots_.begin(), c.double_slots_.end());
  if (rank_ == 0) {
    {
      std::lock_guard<std::mutex> lk(c.mu_);
      ++c.stats_.allgather_count;
    }
    c.sim_clock_.add(c.network_.allreduce_seconds(sizeof(double), c.world_));
  }
  c.sync_point();  // everyone copied; scratch reusable
  return result;
}

void Communicator::broadcast(float* data, std::int64_t n, int root) {
  Cluster& c = *cluster_;
  if (root < 0 || root >= c.world_) {
    throw std::invalid_argument("broadcast: root " + std::to_string(root) +
                                " outside [0, " + std::to_string(c.world_) + ")");
  }
  if (rank_ == root) {
    c.broadcast_src_ = data;
    std::lock_guard<std::mutex> lk(c.mu_);
    ++c.stats_.broadcast_count;
    c.stats_.broadcast_bytes += static_cast<std::uint64_t>(n) * sizeof(float) *
                                static_cast<std::uint64_t>(c.world_ - 1);
  }
  c.sync_point();  // source pointer published
  if (rank_ != root) {
    std::memcpy(data, c.broadcast_src_, static_cast<std::size_t>(n) * sizeof(float));
  }
  if (rank_ == 0) {
    c.sim_clock_.add(c.network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), c.world_));
  }
  c.sync_point();  // everyone copied; source frame may unwind
}

void Communicator::barrier() {
  Cluster& c = *cluster_;
  if (rank_ == 0) {
    std::lock_guard<std::mutex> lk(c.mu_);
    ++c.stats_.barrier_count;
  }
  c.sync_point();
}

Cluster::Cluster(int world, NetworkModel network)
    : world_(world), network_(network) {
  if (world < 1) throw std::invalid_argument("Cluster: world must be >= 1");
  float_slots_.assign(static_cast<std::size_t>(world), nullptr);
  double_slots_.assign(static_cast<std::size_t>(world), 0.0);
}

void Cluster::run(const std::function<void(Communicator&)>& fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    arrived_ = 0;
    generation_ = 0;
    failed_ = false;
    first_error_ = nullptr;
    first_error_is_peer_failure_ = false;
    std::fill(float_slots_.begin(), float_slots_.end(), nullptr);
    std::fill(double_slots_.begin(), double_slots_.end(), 0.0);
    broadcast_src_ = nullptr;
  }

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    workers.emplace_back([this, r, &fn] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (const PeerFailureError&) {
        // Secondary casualty: keep unwinding, but never let it mask the
        // peer's original error.
        record_failure(std::current_exception(), /*is_peer_failure=*/true);
      } catch (...) {
        record_failure(std::current_exception(), /*is_peer_failure=*/false);
      }
    });
  }
  for (std::thread& t : workers) t.join();

  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

CommStats Cluster::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Cluster::sync_point() {
  std::unique_lock<std::mutex> lk(mu_);
  if (failed_) throw PeerFailureError();
  if (++arrived_ == world_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const std::uint64_t gen = generation_;
  cv_.wait(lk, [&] { return failed_ || generation_ != gen; });
  // A completed generation outranks a failure flag raised afterwards:
  // the collective finished; the failure surfaces at the next entry.
  if (generation_ == gen) throw PeerFailureError();
}

void Cluster::record_failure(std::exception_ptr error, bool is_peer_failure) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!first_error_ || (first_error_is_peer_failure_ && !is_peer_failure)) {
    first_error_ = error;
    first_error_is_peer_failure_ = is_peer_failure;
  }
  failed_ = true;
  cv_.notify_all();
}

void Cluster::allreduce(float* data, std::int64_t n, int rank, bool mean) {
  const std::size_t count = static_cast<std::size_t>(n);
  float_slots_[static_cast<std::size_t>(rank)] = data;
  sync_point();  // all rank buffers published
  if (rank == 0) {
    // Rank-ordered accumulation on one thread: the result is a pure
    // function of the inputs, so every rank receives identical bits no
    // matter how threads interleave.
    reduce_buf_.resize(count);
    std::memcpy(reduce_buf_.data(), float_slots_[0], count * sizeof(float));
    for (int r = 1; r < world_; ++r) {
      const float* src = float_slots_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < count; ++i) reduce_buf_[i] += src[i];
    }
    if (mean) {
      const float inv = 1.0f / static_cast<float>(world_);
      for (float& v : reduce_buf_) v *= inv;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.allreduce_count;
      stats_.allreduce_bytes += static_cast<std::uint64_t>(n) * sizeof(float) *
                                static_cast<std::uint64_t>(world_);
    }
    sim_clock_.add(network_.allreduce_seconds(
        n * static_cast<std::int64_t>(sizeof(float)), world_));
  }
  sync_point();  // reduced buffer ready
  std::memcpy(data, reduce_buf_.data(), count * sizeof(float));
  sync_point();  // everyone copied; scratch reusable
}

}  // namespace pgti::dist
