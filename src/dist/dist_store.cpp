#include "dist/dist_store.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pgti::dist {
namespace {

std::int64_t spec_snapshot_bytes(const data::DatasetSpec& spec) {
  // One materialized (x, y) snapshot: both [horizon, N, F] float arrays.
  return 2 * spec.horizon * spec.nodes * spec.features *
         static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

DistStore::DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes,
                     int world, NetworkModel network, bool consolidate_requests)
    : num_snapshots_(num_snapshots),
      snapshot_bytes_(snapshot_bytes),
      world_(world),
      network_(network),
      consolidate_requests_(consolidate_requests) {
  if (num_snapshots < 1) {
    throw std::invalid_argument("DistStore: num_snapshots must be >= 1");
  }
  if (world < 1) throw std::invalid_argument("DistStore: world must be >= 1");
  chunk_ = (num_snapshots + world - 1) / world;
  ranks_.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) ranks_.push_back(std::make_unique<RankState>());
}

DistStore::DistStore(data::StandardDataset dataset, int world, NetworkModel network,
                     bool consolidate_requests, std::int64_t cache_snapshots_per_rank,
                     std::int64_t cache_bytes_per_rank, bool async_prefetch)
    : DistStore(dataset.num_snapshots(), spec_snapshot_bytes(dataset.spec()), world,
                network, consolidate_requests) {
  // The store owns its cache defaults: negative = auto, sized to a
  // couple of batches of this dataset's spec (the lookahead working
  // set) and never below the historical default.
  cache_capacity_ = cache_snapshots_per_rank >= 0
                        ? cache_snapshots_per_rank
                        : std::max(kDefaultCacheSnapshots,
                                   2 * dataset.spec().batch_size);
  cache_bytes_capacity_ = std::max<std::int64_t>(0, cache_bytes_per_rank);
  async_prefetch_ = async_prefetch;
  dataset_.emplace(std::move(dataset));
  if (async_prefetch_) {
    for (int r = 0; r < world_; ++r) {
      ranks_[static_cast<std::size_t>(r)]->stager =
          std::thread([this, r] { stager_loop(r); });
    }
  }
}

DistStore::~DistStore() {
  for (auto& rsp : ranks_) {
    RankState& rs = *rsp;
    if (!rs.stager.joinable()) continue;
    {
      std::lock_guard<std::mutex> lk(rs.m);
      rs.stop = true;
    }
    rs.cv.notify_all();
    rs.stager.join();
  }
  // Close the overlap split: announced batches nobody ever waited on
  // were fully hidden behind compute.
  for (auto& rsp : ranks_) {
    RankState& rs = *rsp;
    std::lock_guard<std::mutex> lk(rs.m);
    for (auto& [id, req] : rs.in_flight) {
      (void)id;
      if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/true);
    }
    for (auto& req : rs.queue) {
      if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/true);
    }
    for (auto& req : rs.awaiting_delivery) {
      if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/true);
    }
    rs.in_flight.clear();
    rs.queue.clear();
    rs.awaiting_delivery.clear();
  }
}

int DistStore::add_reader() {
  const int rank = world_ + reader_ranks_;
  ++reader_ranks_;
  ranks_.push_back(std::make_unique<RankState>());
  // Readers own nothing: partition(rank) is empty by construction
  // (chunk_ * rank clamps to num_snapshots_), owner() never returns a
  // reader, so price_batch treats every access as remote — the serving
  // path pays the same modeled fetch costs a worker would for foreign
  // snapshots.
  if (async_prefetch_) {
    ranks_.back()->stager = std::thread([this, rank] { stager_loop(rank); });
  }
  return rank;
}

void DistStore::check_rank(int rank) const {
  const int limit = world_ + reader_ranks_;
  if (rank < 0 || rank >= limit) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(limit) + ")");
  }
}

DistStore::RankState& DistStore::rank_state(int rank) {
  return *ranks_[static_cast<std::size_t>(rank)];
}

int DistStore::owner(std::int64_t snapshot) const {
  if (snapshot < 0 || snapshot >= num_snapshots_) {
    throw std::out_of_range("DistStore: snapshot " + std::to_string(snapshot) +
                            " outside [0, " + std::to_string(num_snapshots_) + ")");
  }
  return static_cast<int>(snapshot / chunk_);
}

std::pair<std::int64_t, std::int64_t> DistStore::partition(int rank) const {
  check_rank(rank);
  const std::int64_t lo = std::min(chunk_ * rank, num_snapshots_);
  const std::int64_t hi = std::min(lo + chunk_, num_snapshots_);
  return {lo, hi};
}

const data::StandardDataset& DistStore::dataset_ref() const {
  if (!dataset_) {
    throw std::logic_error("DistStore: data access requires a materialized store "
                           "(ledger-only stores carry no snapshot tensors)");
  }
  return *dataset_;
}

Tensor DistStore::shard_x(int rank) const {
  const auto [lo, hi] = partition(rank);
  return dataset_ref().x().slice(0, lo, hi - lo);
}

Tensor DistStore::shard_y(int rank) const {
  const auto [lo, hi] = partition(rank);
  return dataset_ref().y().slice(0, lo, hi - lo);
}

MemorySpaceId DistStore::space() const { return dataset_ref().x().space(); }
const data::StandardScaler& DistStore::scaler() const { return dataset_ref().scaler(); }
const data::SplitRanges& DistStore::splits() const { return dataset_ref().splits(); }
const data::DatasetSpec& DistStore::spec() const { return dataset_ref().spec(); }

DistStore::BatchPrice DistStore::price_batch(
    int rank, const std::vector<std::int64_t>& snapshots) const {
  BatchPrice p;
  std::vector<bool> owner_contacted;
  if (consolidate_requests_) {
    owner_contacted.assign(static_cast<std::size_t>(world_), false);
  }
  for (std::int64_t snapshot : snapshots) {
    const int own = owner(snapshot);
    if (own == rank) {
      ++p.local;
      continue;
    }
    ++p.remote;
    p.remote_ids.push_back(snapshot);
    if (consolidate_requests_) {
      if (!owner_contacted[static_cast<std::size_t>(own)]) {
        owner_contacted[static_cast<std::size_t>(own)] = true;
        ++p.messages;
      }
    } else {
      ++p.messages;
    }
  }
  p.bytes = p.remote * static_cast<std::uint64_t>(snapshot_bytes_);
  p.seconds =
      p.remote > 0 ? network_.fetch_seconds(static_cast<std::int64_t>(p.bytes),
                                            static_cast<std::int64_t>(p.messages))
                   : 0.0;
  return p;
}

std::int64_t DistStore::future_schedule_pos_locked(const RankState& rs,
                                                   std::int64_t i) {
  // An id may be scheduled several times (the loader announces this
  // epoch's order followed by the next one); its eviction priority is
  // the first occurrence that has not been consumed yet.
  const auto it = rs.schedule_pos.find(i);
  if (it == rs.schedule_pos.end()) return -1;
  const auto p = std::lower_bound(it->second.begin(), it->second.end(),
                                  rs.schedule_progress);
  return p == it->second.end() ? -1 : *p;
}

void DistStore::evict_over_capacity_locked(RankState& rs) {
  const auto over = [&] {
    if (static_cast<std::int64_t>(rs.cache.size()) > cache_capacity_) return true;
    return cache_bytes_capacity_ > 0 && rs.cache_bytes > cache_bytes_capacity_;
  };
  if (!over()) return;
  // Schedule-aware victim selection, one walk: unpinned entries with
  // no remaining scheduled use evict first (already-consumed residue,
  // least recently used first), then — only if the bounds still bite —
  // still-scheduled entries by farthest next use (Belady fallback), so
  // a nearer-scheduled entry never evicts while consumed residue
  // exists.  Pinned entries (announced but not yet consumed) must
  // survive regardless of the configured bounds or the consolidated
  // fetch model breaks.  Pins and schedule positions cannot change
  // while rs.m is held, so the candidate partition stays valid across
  // the whole pass.
  std::vector<std::int64_t> residue;  // LRU-oldest first
  std::vector<std::pair<std::int64_t, std::int64_t>> scheduled;  // (pos, id)
  for (auto it = rs.lru.rbegin(); it != rs.lru.rend(); ++it) {
    const auto ce = rs.cache.find(*it);
    if (ce->second.pins > 0) continue;
    const std::int64_t pos = future_schedule_pos_locked(rs, *it);
    if (pos < 0) {
      residue.push_back(*it);
    } else {
      scheduled.emplace_back(pos, *it);
    }
  }
  std::sort(scheduled.begin(), scheduled.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::uint64_t evicted = 0;
  const auto evict_id = [&](std::int64_t id) {
    const auto ce = rs.cache.find(id);
    rs.cache_bytes -= ce->second.bytes;
    rs.lru.erase(ce->second.lru_it);
    rs.cache.erase(ce);
    ++evicted;
  };
  for (std::size_t i = 0; over() && i < residue.size(); ++i) evict_id(residue[i]);
  for (std::size_t i = 0; over() && i < scheduled.size(); ++i) {
    evict_id(scheduled[i].second);
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.cache_evictions += evicted;
  }
}

bool DistStore::try_stage_hit_locked(RankState& rs, std::int64_t i, bool pin) {
  auto it = rs.cache.find(i);
  if (it == rs.cache.end()) return false;
  // The cache absorbed a fetch the model priced: a snapshot's worth
  // of modeled bytes that did not physically move.
  if (pin) ++it->second.pins;
  rs.lru.splice(rs.lru.begin(), rs.lru, it->second.lru_it);
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.cache_hits;
  stats_.cache_hit_bytes += static_cast<std::uint64_t>(snapshot_bytes_);
  return true;
}

void DistStore::insert_entry_locked(RankState& rs, std::int64_t i, Tensor x,
                                    Tensor y, bool pin) {
  const std::int64_t moved =
      static_cast<std::int64_t>(x.storage_bytes() + y.storage_bytes());
  rs.lru.push_front(i);
  rs.cache.emplace(i, CacheEntry{x, y, rs.lru.begin(), moved, pin ? 1 : 0});
  rs.cache_bytes += moved;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.bytes_copied += static_cast<std::uint64_t>(moved);
  }
  evict_over_capacity_locked(rs);
}

void DistStore::stage_locked(RankState& rs, std::int64_t i, bool pin) {
  if (try_stage_hit_locked(rs, i, pin)) return;
  // Miss: this is where remote bytes physically move — a deep copy of
  // the owning shard's snapshot into the requesting rank's cache.
  const auto [xv, yv] = dataset_ref().get(i);
  insert_entry_locked(rs, i, xv.clone(), yv.clone(), pin);
}

std::pair<Tensor, Tensor> DistStore::consume_locked(RankState& rs, std::int64_t i) {
  auto it = rs.cache.find(i);
  CacheEntry& e = it->second;
  rs.lru.splice(rs.lru.begin(), rs.lru, e.lru_it);
  if (e.pins > 0) --e.pins;
  // Consuming a scheduled snapshot advances the schedule cursor past
  // its first unconsumed occurrence: every position at or before it is
  // now in the past for eviction purposes (later occurrences of the
  // same id — next epoch's reuse — stay future).
  const auto sp = rs.schedule_pos.find(i);
  if (sp != rs.schedule_pos.end()) {
    const auto p = std::lower_bound(sp->second.begin(), sp->second.end(),
                                    rs.schedule_progress);
    if (p != sp->second.end()) rs.schedule_progress = *p + 1;
  }
  // Handles (shared storage) taken before the eviction pass may drop
  // the freshly unpinned entry from a zero/tiny-capacity cache.
  Tensor x = e.x;
  Tensor y = e.y;
  evict_over_capacity_locked(rs);
  return {x, y};
}

void DistStore::classify_locked(RankState& rs, StageRequest& req,
                                bool fully_overlapped) {
  req.classified = true;
  double exposed = 0.0;
  if (!fully_overlapped) {
    // The wall time between the announcement and the first moment the
    // consumer needed the batch is real compute the modeled fetch hid
    // behind; only the remainder stays on the critical path.
    const double window = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - req.enqueued_at)
                              .count();
    exposed = std::max(0.0, req.modeled_seconds - window);
  }
  rs.pending_exposed_seconds += exposed;
  std::lock_guard<std::mutex> lk(mu_);
  stats_.exposed_seconds += exposed;
  stats_.overlapped_seconds += req.modeled_seconds - exposed;
}

double DistStore::fetch_batch(int rank, const std::vector<std::int64_t>& snapshots) {
  check_rank(rank);
  BatchPrice p = price_batch(rank, snapshots);
  RankState& rs = rank_state(rank);
  {
    std::lock_guard<std::mutex> lk(rs.m);
    if (dataset_) {
      // Materialized stores move the bytes right here: every remote
      // snapshot lands in the rank's cache pinned until consumed
      // (hit/miss classified inside).
      for (std::int64_t id : p.remote_ids) stage_locked(rs, id, /*pin=*/true);
    }
    rs.pending_exposed_seconds += p.seconds;
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.local_snapshots += p.local;
  stats_.remote_snapshots += p.remote;
  stats_.remote_bytes += p.bytes;
  stats_.request_messages += p.messages;
  stats_.modeled_seconds += p.seconds;
  stats_.exposed_seconds += p.seconds;  // synchronous: nothing overlaps
  return p.seconds;
}

void DistStore::prefetch_batch(int rank, const std::vector<std::int64_t>& ids) {
  if (!async_prefetch_ || !dataset_) {
    fetch_batch(rank, ids);
    return;
  }
  check_rank(rank);
  BatchPrice p = price_batch(rank, ids);
  {
    // The async pipeline prices the batch at enqueue exactly like the
    // synchronous path, so the ledger is identical with prefetch on or
    // off; only the overlapped/exposed split differs (classified at
    // first need).
    std::lock_guard<std::mutex> lk(mu_);
    stats_.local_snapshots += p.local;
    stats_.remote_snapshots += p.remote;
    stats_.remote_bytes += p.bytes;
    stats_.request_messages += p.messages;
    stats_.modeled_seconds += p.seconds;
  }
  if (p.remote_ids.empty()) return;

  auto req = std::make_shared<StageRequest>();
  req->remote_ids = std::move(p.remote_ids);
  req->modeled_seconds = p.seconds;
  req->enqueued_at = std::chrono::steady_clock::now();
  RankState& rs = rank_state(rank);
  {
    std::lock_guard<std::mutex> lk(rs.m);
    // Announce-once/consume-once: a second announcement of an id whose
    // first is still outstanding would leak the older request
    // unclassified and unbalance its pin — fail loudly on misuse
    // (validated before any insert so the map is never left partial).
    for (std::int64_t id : req->remote_ids) {
      if (rs.in_flight.count(id) != 0) {
        throw std::logic_error("DistStore: snapshot " + std::to_string(id) +
                               " announced twice without an intervening fetch");
      }
    }
    for (std::int64_t id : req->remote_ids) rs.in_flight.emplace(id, req);
    rs.queue.push_back(req);
  }
  rs.cv.notify_all();
}

void DistStore::stager_loop(int rank) {
  RankState& rs = rank_state(rank);
  // The staging thread clones whole batches of remote snapshots every
  // epoch in a repeating shape sequence — exactly the lifetime pattern
  // the arena pools.  One scope for the thread's lifetime: the first
  // epoch plans bucket demand, later epochs stage alloc-free (clones
  // fully overwrite recycled blocks; evictions release them back from
  // the consumer side).
  runtime::ArenaScope scope(rs.arena);
  std::unique_lock<std::mutex> lk(rs.m);
  for (;;) {
    rs.cv.wait(lk, [&] { return rs.stop || !rs.queue.empty(); });
    if (rs.stop) return;
    std::shared_ptr<StageRequest> req = rs.queue.front();
    rs.queue.pop_front();
    rs.staging = true;
    // Orphaned announcements (abandoned epochs) still move their bytes
    // — they were priced at enqueue and the ledger must stay backed by
    // real movement — but land unpinned, immediately evictable.
    // Clones run with rs.m RELEASED so the rank's consumer (a fetch of
    // a resident snapshot, the per-batch exposed-time drain) never
    // stalls behind a whole batch of physical copies; re-check the
    // cache after re-locking in case the consumer faulted the id in
    // meanwhile.
    try {
      for (std::int64_t id : req->remote_ids) {
        if (try_stage_hit_locked(rs, id, /*pin=*/!req->orphaned)) continue;
        lk.unlock();
        const auto [xv, yv] = dataset_ref().get(id);
        Tensor x = xv.clone();
        Tensor y = yv.clone();
        lk.lock();
        if (!try_stage_hit_locked(rs, id, /*pin=*/!req->orphaned)) {
          insert_entry_locked(rs, id, x, y, /*pin=*/!req->orphaned);
        }
      }
    } catch (...) {
      // Surface the failure on the consumer waiting for this request
      // rather than letting it escape the thread (std::terminate) and
      // strand the waiter.
      if (!lk.owns_lock()) lk.lock();
      req->error = std::current_exception();
    }
    req->staged = true;
    rs.staging = false;
    rs.cv.notify_all();
  }
}

std::pair<Tensor, Tensor> DistStore::fetch(int rank, std::int64_t i) {
  const int own = owner(i);
  check_rank(rank);
  const data::StandardDataset& ds = dataset_ref();
  if (own == rank) return ds.get(i);  // zero-copy view of the owned shard

  RankState& rs = rank_state(rank);
  std::unique_lock<std::mutex> lk(rs.m);
  auto fit = rs.in_flight.find(i);
  if (fit != rs.in_flight.end()) {
    // Announced asynchronously: classify the request's modeled time at
    // the consumer's first need, then block until the stager has
    // processed the request.  Waiting on req->staged — not on the id
    // becoming resident — keeps pins balanced: the stager's pin always
    // precedes this consume, even when the id was already resident
    // from an earlier epoch (consuming early would leave the stager's
    // later pin with no matching unpin, exempting the entry from
    // eviction for the rest of the epoch).  It also covers a
    // concurrent abandon_prefetches orphaning the request: its
    // snapshots land unpinned and may already be evicted, in which
    // case we fall through and fault the id back in.
    std::shared_ptr<StageRequest> req = fit->second;
    rs.in_flight.erase(fit);
    if (!req->classified && !req->awaiting_delivery) {
      if (delivery_driven_) {
        // A prefetch worker is fetching ahead of compute: the window
        // that really hides this request runs until the batch reaches
        // the consumer (notify_batch_delivered), not until here.
        req->awaiting_delivery = true;
        rs.awaiting_delivery.push_back(req);
      } else {
        classify_locked(rs, *req, /*fully_overlapped=*/false);
      }
    }
    rs.cv.wait(lk, [&] { return req->staged; });
    if (rs.cache.count(i) != 0) return consume_locked(rs, i);
    if (req->error) std::rethrow_exception(req->error);
  }
  if (rs.cache.count(i) != 0) {
    // Announced via a synchronous prefetch_batch (or still resident):
    // the batch-level accounting already classified this snapshot;
    // reading the staged copy is free.
    return consume_locked(rs, i);
  }

  // Unannounced remote access: price and move it as its own
  // single-snapshot request, exposed in full.
  const double seconds = network_.fetch_seconds(snapshot_bytes_, 1);
  rs.pending_exposed_seconds += seconds;
  {
    std::lock_guard<std::mutex> lk2(mu_);
    ++stats_.remote_snapshots;
    stats_.remote_bytes += static_cast<std::uint64_t>(snapshot_bytes_);
    ++stats_.request_messages;
    stats_.modeled_seconds += seconds;
    stats_.exposed_seconds += seconds;
  }
  stage_locked(rs, i, /*pin=*/true);
  return consume_locked(rs, i);
}

void DistStore::abandon_prefetches(int rank) {
  check_rank(rank);
  if (!dataset_) return;
  RankState& rs = rank_state(rank);
  std::unique_lock<std::mutex> lk(rs.m);
  for (auto& [id, req] : rs.in_flight) {
    (void)id;
    // Never waited on: whatever compute ran since the announcement
    // fully hid the modeled time.
    if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/true);
    req->orphaned = true;
  }
  rs.in_flight.clear();
  // Delivery-driven requests a truncated epoch assembled but never
  // delivered: the consumer never computed on them, so the modeled
  // time was fully hidden.
  for (auto& req : rs.awaiting_delivery) {
    if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/true);
  }
  rs.awaiting_delivery.clear();
  // Quiesce the pipeline: orphaned requests still move their bytes
  // (the ledger was priced at enqueue and must stay backed by real
  // movement), so wait until the stager has drained the queue — and
  // finished any in-progress request — before releasing pins;
  // afterwards stats() decomposes exactly again.
  rs.cv.wait(lk, [&] { return rs.queue.empty() && !rs.staging; });
  for (auto& [id, entry] : rs.cache) {
    (void)id;
    entry.pins = 0;
  }
  // Keep the announced schedule across the boundary: it already
  // extends into the next epoch (loaders announce two epochs' worth),
  // so residue the coming epoch reuses holds a future position during
  // this eviction pass instead of looking like dead weight.  Positions
  // belonging to the truncated remainder of the current epoch are
  // stale, but only transiently — the next start_epoch replaces the
  // whole schedule — and capacity is still enforced below either way.
  evict_over_capacity_locked(rs);
}

void DistStore::notify_batch_delivered(int rank) {
  check_rank(rank);
  if (!dataset_ || !delivery_driven_) return;
  RankState& rs = rank_state(rank);
  std::lock_guard<std::mutex> lk(rs.m);
  if (rs.awaiting_delivery.empty()) return;
  // One request per delivery, FIFO: requests are enqueued and consumed
  // in batch order, so the oldest unclassified one belongs to this (or
  // an earlier, remote-free) batch — classifying it now measures the
  // window to the consumer's need, never past it.
  std::shared_ptr<StageRequest> req = rs.awaiting_delivery.front();
  rs.awaiting_delivery.pop_front();
  if (!req->classified) classify_locked(rs, *req, /*fully_overlapped=*/false);
}

void DistStore::announce_schedule(int rank, const std::vector<std::int64_t>& ids) {
  check_rank(rank);
  if (!dataset_) return;
  RankState& rs = rank_state(rank);
  std::lock_guard<std::mutex> lk(rs.m);
  rs.schedule_pos.clear();
  rs.schedule_progress = 0;
  std::int64_t pos = 0;
  // Ids may repeat (current epoch + next epoch in one announcement);
  // record every position, ascending by construction.
  for (std::int64_t id : ids) rs.schedule_pos[id].push_back(pos++);
}

double DistStore::drain_modeled_seconds(int rank) {
  check_rank(rank);
  RankState& rs = rank_state(rank);
  std::lock_guard<std::mutex> lk(rs.m);
  const double out = rs.pending_exposed_seconds;
  rs.pending_exposed_seconds = 0.0;
  return out;
}

StoreStats DistStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace pgti::dist
