#include "dist/dist_store.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pgti::dist {

DistStore::DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes,
                     int world, NetworkModel network, bool consolidate_requests)
    : num_snapshots_(num_snapshots),
      snapshot_bytes_(snapshot_bytes),
      world_(world),
      network_(network),
      consolidate_requests_(consolidate_requests) {
  if (num_snapshots < 1) {
    throw std::invalid_argument("DistStore: num_snapshots must be >= 1");
  }
  if (world < 1) throw std::invalid_argument("DistStore: world must be >= 1");
  chunk_ = (num_snapshots + world - 1) / world;
}

int DistStore::owner(std::int64_t snapshot) const {
  if (snapshot < 0 || snapshot >= num_snapshots_) {
    throw std::out_of_range("DistStore: snapshot " + std::to_string(snapshot) +
                            " outside [0, " + std::to_string(num_snapshots_) + ")");
  }
  return static_cast<int>(snapshot / chunk_);
}

std::pair<std::int64_t, std::int64_t> DistStore::partition(int rank) const {
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(world_) + ")");
  }
  const std::int64_t lo = std::min(chunk_ * rank, num_snapshots_);
  const std::int64_t hi = std::min(lo + chunk_, num_snapshots_);
  return {lo, hi};
}

double DistStore::fetch_batch(int rank, const std::vector<std::int64_t>& snapshots) {
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  std::uint64_t messages = 0;
  std::vector<bool> owner_contacted;
  if (consolidate_requests_) {
    owner_contacted.assign(static_cast<std::size_t>(world_), false);
  }
  for (std::int64_t snapshot : snapshots) {
    const int own = owner(snapshot);
    if (own == rank) {
      ++local;
      continue;
    }
    ++remote;
    if (consolidate_requests_) {
      if (!owner_contacted[static_cast<std::size_t>(own)]) {
        owner_contacted[static_cast<std::size_t>(own)] = true;
        ++messages;
      }
    } else {
      ++messages;
    }
  }

  const std::uint64_t bytes =
      remote * static_cast<std::uint64_t>(snapshot_bytes_);
  const double seconds =
      remote > 0 ? network_.fetch_seconds(static_cast<std::int64_t>(bytes),
                                          static_cast<std::int64_t>(messages))
                 : 0.0;

  std::lock_guard<std::mutex> lk(mu_);
  stats_.local_snapshots += local;
  stats_.remote_snapshots += remote;
  stats_.remote_bytes += bytes;
  stats_.request_messages += messages;
  stats_.modeled_seconds += seconds;
  return seconds;
}

StoreStats DistStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace pgti::dist
