#include "dist/dist_store.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace pgti::dist {
namespace {

std::int64_t spec_snapshot_bytes(const data::DatasetSpec& spec) {
  // One materialized (x, y) snapshot: both [horizon, N, F] float arrays.
  return 2 * spec.horizon * spec.nodes * spec.features *
         static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

DistStore::DistStore(std::int64_t num_snapshots, std::int64_t snapshot_bytes,
                     int world, NetworkModel network, bool consolidate_requests)
    : num_snapshots_(num_snapshots),
      snapshot_bytes_(snapshot_bytes),
      world_(world),
      network_(network),
      consolidate_requests_(consolidate_requests) {
  if (num_snapshots < 1) {
    throw std::invalid_argument("DistStore: num_snapshots must be >= 1");
  }
  if (world < 1) throw std::invalid_argument("DistStore: world must be >= 1");
  chunk_ = (num_snapshots + world - 1) / world;
  ranks_.resize(static_cast<std::size_t>(world));
}

DistStore::DistStore(data::StandardDataset dataset, int world, NetworkModel network,
                     bool consolidate_requests, std::int64_t cache_snapshots_per_rank)
    : DistStore(dataset.num_snapshots(), spec_snapshot_bytes(dataset.spec()), world,
                network, consolidate_requests) {
  cache_capacity_ = std::max<std::int64_t>(0, cache_snapshots_per_rank);
  dataset_.emplace(std::move(dataset));
}

int DistStore::owner(std::int64_t snapshot) const {
  if (snapshot < 0 || snapshot >= num_snapshots_) {
    throw std::out_of_range("DistStore: snapshot " + std::to_string(snapshot) +
                            " outside [0, " + std::to_string(num_snapshots_) + ")");
  }
  return static_cast<int>(snapshot / chunk_);
}

std::pair<std::int64_t, std::int64_t> DistStore::partition(int rank) const {
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(world_) + ")");
  }
  const std::int64_t lo = std::min(chunk_ * rank, num_snapshots_);
  const std::int64_t hi = std::min(lo + chunk_, num_snapshots_);
  return {lo, hi};
}

const data::StandardDataset& DistStore::dataset_ref() const {
  if (!dataset_) {
    throw std::logic_error("DistStore: data access requires a materialized store "
                           "(ledger-only stores carry no snapshot tensors)");
  }
  return *dataset_;
}

Tensor DistStore::shard_x(int rank) const {
  const auto [lo, hi] = partition(rank);
  return dataset_ref().x().slice(0, lo, hi - lo);
}

Tensor DistStore::shard_y(int rank) const {
  const auto [lo, hi] = partition(rank);
  return dataset_ref().y().slice(0, lo, hi - lo);
}

MemorySpaceId DistStore::space() const { return dataset_ref().x().space(); }
const data::StandardScaler& DistStore::scaler() const { return dataset_ref().scaler(); }
const data::SplitRanges& DistStore::splits() const { return dataset_ref().splits(); }
const data::DatasetSpec& DistStore::spec() const { return dataset_ref().spec(); }

std::pair<Tensor, Tensor> DistStore::cache_fetch(int rank, std::int64_t i) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = rs.cache.find(i);
  if (it != rs.cache.end()) {
    // The cache absorbed a fetch the model priced: a snapshot's worth
    // of modeled bytes that did not physically move.
    rs.lru.splice(rs.lru.begin(), rs.lru, it->second.lru_it);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.cache_hits;
    stats_.cache_hit_bytes += static_cast<std::uint64_t>(snapshot_bytes_);
    return {it->second.x, it->second.y};
  }

  // Miss: this is where remote bytes physically move — a deep copy of
  // the owning shard's snapshot into the requesting rank's cache.
  const auto [xv, yv] = dataset_ref().get(i);
  Tensor x = xv.clone();
  Tensor y = yv.clone();
  const std::uint64_t moved =
      static_cast<std::uint64_t>(x.storage_bytes() + y.storage_bytes());
  rs.lru.push_front(i);
  rs.cache.emplace(i, CacheEntry{x, y, rs.lru.begin()});
  std::uint64_t evictions = 0;
  while (static_cast<std::int64_t>(rs.cache.size()) > cache_capacity_) {
    rs.cache.erase(rs.lru.back());
    rs.lru.pop_back();
    ++evictions;
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.bytes_copied += moved;
  stats_.cache_evictions += evictions;
  return {x, y};
}

double DistStore::fetch_batch(int rank, const std::vector<std::int64_t>& snapshots) {
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(world_) + ")");
  }
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  std::uint64_t messages = 0;
  std::vector<bool> owner_contacted;
  if (consolidate_requests_) {
    owner_contacted.assign(static_cast<std::size_t>(world_), false);
  }
  for (std::int64_t snapshot : snapshots) {
    const int own = owner(snapshot);
    if (own == rank) {
      ++local;
      continue;
    }
    ++remote;
    if (consolidate_requests_) {
      if (!owner_contacted[static_cast<std::size_t>(own)]) {
        owner_contacted[static_cast<std::size_t>(own)] = true;
        ++messages;
      }
    } else {
      ++messages;
    }
    // Materialized stores move the bytes right here: the snapshot
    // lands in the rank's cache (hit/miss classified inside).
    if (dataset_) cache_fetch(rank, snapshot);
  }

  const std::uint64_t bytes =
      remote * static_cast<std::uint64_t>(snapshot_bytes_);
  const double seconds =
      remote > 0 ? network_.fetch_seconds(static_cast<std::int64_t>(bytes),
                                          static_cast<std::int64_t>(messages))
                 : 0.0;
  ranks_[static_cast<std::size_t>(rank)].pending_modeled_seconds += seconds;

  std::lock_guard<std::mutex> lk(mu_);
  stats_.local_snapshots += local;
  stats_.remote_snapshots += remote;
  stats_.remote_bytes += bytes;
  stats_.request_messages += messages;
  stats_.modeled_seconds += seconds;
  return seconds;
}

std::pair<Tensor, Tensor> DistStore::fetch(int rank, std::int64_t i) {
  const int own = owner(i);
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(world_) + ")");
  }
  const data::StandardDataset& ds = dataset_ref();
  if (own == rank) return ds.get(i);  // zero-copy view of the owned shard

  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  auto it = rs.cache.find(i);
  if (it != rs.cache.end()) {
    // Announced via prefetch_batch (or still resident): the batch-level
    // accounting already classified this snapshot; reading the staged
    // copy is free.
    rs.lru.splice(rs.lru.begin(), rs.lru, it->second.lru_it);
    return {it->second.x, it->second.y};
  }

  // Unannounced remote access: price and move it as its own
  // single-snapshot request.
  const double seconds = network_.fetch_seconds(snapshot_bytes_, 1);
  rs.pending_modeled_seconds += seconds;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.remote_snapshots;
    stats_.remote_bytes += static_cast<std::uint64_t>(snapshot_bytes_);
    ++stats_.request_messages;
    stats_.modeled_seconds += seconds;
  }
  return cache_fetch(rank, i);
}

void DistStore::prefetch_batch(int rank, const std::vector<std::int64_t>& ids) {
  fetch_batch(rank, ids);
}

double DistStore::drain_modeled_seconds(int rank) {
  if (rank < 0 || rank >= world_) {
    throw std::out_of_range("DistStore: rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(world_) + ")");
  }
  double& pending = ranks_[static_cast<std::size_t>(rank)].pending_modeled_seconds;
  const double out = pending;
  pending = 0.0;
  return out;
}

StoreStats DistStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace pgti::dist
