#include "dist/ddp.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pgti::dist {
namespace {

void check_layout(const std::vector<Variable>& params,
                  const std::vector<std::int64_t>& expected_numels) {
  if (params.size() != expected_numels.size()) {
    throw std::invalid_argument("GradBucket: parameter list size changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().numel() != expected_numels[i]) {
      throw std::invalid_argument("GradBucket: parameter shape changed");
    }
  }
}

}  // namespace

GradBucket::GradBucket(const std::vector<Variable>& params,
                       std::int64_t bucket_numel) {
  if (bucket_numel < 1) {
    throw std::invalid_argument("GradBucket: bucket_numel must be >= 1");
  }
  param_numels_.reserve(params.size());
  Bucket current;
  std::int64_t max_bucket = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::int64_t n = params[i].value().numel();
    param_numels_.push_back(n);
    total_numel_ += n;
    // A parameter larger than the cap gets a bucket of its own rather
    // than being split across collectives.
    if (current.numel > 0 && current.numel + n > bucket_numel) {
      buckets_.push_back(std::move(current));
      current = Bucket{};
    }
    current.param_indices.push_back(i);
    current.numel += n;
    max_bucket = std::max(max_bucket, current.numel);
  }
  if (current.numel > 0 || buckets_.empty()) buckets_.push_back(std::move(current));
  flat_.resize(static_cast<std::size_t>(max_bucket));
}

void GradBucket::allreduce_average(Communicator& comm,
                                   std::vector<Variable>& params) {
  check_layout(params, param_numels_);
  for (const Bucket& bucket : buckets_) {
    if (bucket.numel == 0) continue;
    std::int64_t offset = 0;
    for (std::size_t idx : bucket.param_indices) {
      const std::int64_t n = param_numels_[idx];
      float* dst = flat_.data() + offset;
      if (params[idx].has_grad()) {
        const Tensor grad = params[idx].grad().contiguous();
        std::memcpy(dst, grad.data(), static_cast<std::size_t>(n) * sizeof(float));
      } else {
        std::fill(dst, dst + n, 0.0f);
      }
      offset += n;
    }
    comm.allreduce_mean(flat_.data(), bucket.numel);
    offset = 0;
    for (std::size_t idx : bucket.param_indices) {
      const std::int64_t n = param_numels_[idx];
      // Write back unconditionally (grad() lazily allocates zeros): a
      // rank whose shard skipped a layer must still adopt its peers'
      // averaged gradient, or replicas diverge silently.
      Tensor& grad = params[idx].grad();
      std::memcpy(grad.data(), flat_.data() + offset,
                  static_cast<std::size_t>(n) * sizeof(float));
      offset += n;
    }
  }
}

void allreduce_gradients(Communicator& comm, std::vector<Variable>& params) {
  GradBucket bucket(params);
  bucket.allreduce_average(comm, params);
}

void broadcast_parameters(Communicator& comm, std::vector<Variable>& params,
                          int root) {
  for (Variable& p : params) {
    Tensor& value = p.mutable_value();
    if (!value.is_contiguous()) {
      throw std::invalid_argument(
          "broadcast_parameters: parameter tensors must be contiguous");
    }
    comm.broadcast(value.data(), value.numel(), root);
  }
}

}  // namespace pgti::dist
