#include "dist/ddp.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace pgti::dist {

GradBucket::GradBucket(std::vector<Variable>& params,
                       std::int64_t bucket_numel) {
  if (bucket_numel < 1) {
    throw std::invalid_argument("GradBucket: bucket_numel must be >= 1");
  }
  param_numels_.reserve(params.size());
  Bucket current;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::int64_t n = params[i].value().numel();
    if (!params[i].grad().is_contiguous()) {
      throw std::invalid_argument("GradBucket: gradients must be contiguous");
    }
    param_numels_.push_back(n);
    total_numel_ += n;
    // A parameter larger than the cap gets a bucket of its own rather
    // than being split across collectives.
    if (current.numel > 0 && current.numel + n > bucket_numel) {
      buckets_.push_back(std::move(current));
      current = Bucket{};
    }
    current.param_indices.push_back(i);
    current.numel += n;
    max_bucket_numel_ = std::max(max_bucket_numel_, current.numel);
  }
  if (current.numel > 0 || buckets_.empty()) buckets_.push_back(std::move(current));
  flat_.resize(static_cast<std::size_t>(max_bucket_numel_));
}

void GradBucket::verify_layout(const std::vector<Variable>& params) const {
  if (params.size() != param_numels_.size()) {
    throw std::invalid_argument("GradBucket: parameter list size changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].value().numel() != param_numels_[i]) {
      throw std::invalid_argument("GradBucket: parameter shape changed");
    }
  }
}

void GradBucket::pack_bucket(std::size_t b, const std::vector<Variable>& params,
                             float* dst) const {
  std::int64_t offset = 0;
  for (std::size_t idx : buckets_[b].param_indices) {
    const std::int64_t n = param_numels_[idx];
    std::memcpy(dst + offset, params[idx].grad().data(),
                static_cast<std::size_t>(n) * sizeof(float));
    offset += n;
  }
}

void GradBucket::unpack_bucket(std::size_t b, std::vector<Variable>& params,
                               const float* src) const {
  std::int64_t offset = 0;
  for (std::size_t idx : buckets_[b].param_indices) {
    const std::int64_t n = param_numels_[idx];
    // Write back unconditionally: a rank whose shard skipped a layer
    // must still adopt its peers' averaged gradient, or replicas
    // diverge silently.
    std::memcpy(params[idx].grad().data(), src + offset,
                static_cast<std::size_t>(n) * sizeof(float));
    offset += n;
  }
}

void GradBucket::allreduce_average(Communicator& comm,
                                   std::vector<Variable>& params) {
  verify_layout(params);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].numel == 0) continue;
    pack_bucket(b, params, flat_.data());
    comm.allreduce_mean(flat_.data(), buckets_[b].numel);
    unpack_bucket(b, params, flat_.data());
  }
}

double GradBucket::modeled_sync_seconds(const NetworkModel& net,
                                        int world) const {
  double total = 0.0;
  for (const Bucket& bucket : buckets_) {
    if (bucket.numel == 0) continue;
    total += net.allreduce_seconds(
        bucket.numel * static_cast<std::int64_t>(sizeof(float)), world);
  }
  return total;
}

void allreduce_gradients(Communicator& comm, std::vector<Variable>& params) {
  GradBucket bucket(params);
  bucket.allreduce_average(comm, params);
}

void broadcast_parameters(Communicator& comm, std::vector<Variable>& params,
                          int root) {
  for (Variable& p : params) {
    Tensor& value = p.mutable_value();
    if (!value.is_contiguous()) {
      throw std::invalid_argument(
          "broadcast_parameters: parameter tensors must be contiguous");
    }
    comm.broadcast(value.data(), value.numel(), root);
  }
}

}  // namespace pgti::dist
