// Transport: the wire layer under the collective algorithm layer.
//
// The deterministic tree schedules in dist/algorithms.h are written
// against this interface only — point-to-point send/recv of framed
// byte buffers plus a global sync-point primitive — so the same
// schedule (and therefore the same per-element accumulation order,
// the paper §5.3 bit-identity contract) runs unchanged whether ranks
// are threads in one address space (InProcessTransport) or separate
// OS processes connected by TCP (SocketTransport).
//
// Contracts every implementation must honour:
//
//  * One collective thread per rank.  A rank's send/recv/sync calls
//    are issued by exactly one thread at a time; when a comm thread
//    takes over (OverlappedGradBucket), the handoff is ordered by the
//    bucket's drain/flush mutexes.  Implementations may therefore keep
//    per-rank state (sync counters, fault injection) unsynchronized.
//
//  * send() never blocks on the application.  Payloads are copied out
//    of the caller's buffer before send() returns (into a mailbox or a
//    writer-thread queue), so the deadlock-freedom argument of the
//    schedules — "post every send of a phase, then recv" — holds, and
//    an unwinding rank can never invalidate bytes a surviving peer has
//    yet to read.
//
//  * recv() is blocking and length-checked.  The schedules are
//    deterministic, so the receiver always knows the exact payload
//    size; a mismatched frame is a protocol bug (TransportError), not
//    a truncation.  Zero-byte messages are legal (ceil-chunked
//    collectives produce empty slices when n < world) and still
//    consume one frame.
//
//  * Failure semantics: when any rank unwinds, every peer blocked in
//    recv() or sync() must be released with PeerFailureError — never a
//    hang, and never silently completing a collective past a dead
//    peer.  The harness (Cluster / SocketCluster / a dying process)
//    calls shutdown() on the failing rank's endpoint to trigger the
//    release: in-process it raises the hub's failed flag; over sockets
//    it half-closes every edge so peers observe EOF.
//
//  * Fault injection: inject_fault_at_sync_point(nth, msg) arms a
//    one-shot fault on THIS endpoint — its nth sync() entry (0-based,
//    counted since the counter was last reset) throws
//    std::runtime_error(msg) BEFORE arriving at the sync, so peers are
//    parked exactly as a real mid-collective death would park them.
//    tests sweep every sync point of every collective on both
//    backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pgti::dist {

/// Thrown inside surviving workers when a peer dies mid-collective.
/// Cluster::run / SocketCluster::run swallow these in favour of the
/// peer's original error.
class PeerFailureError : public std::runtime_error {
 public:
  PeerFailureError()
      : std::runtime_error("peer worker failed; collective aborted") {}
};

/// A violated framing/protocol invariant (wrong magic, wrong frame
/// type, length mismatch, malformed rendezvous).  Distinct from
/// PeerFailureError: this is a bug, not a casualty.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace frame {

/// Wire format shared by SocketTransport and modeled by the stats
/// ledger (CommStats::barrier_bytes): every message is one 16-byte
/// little-endian header followed by `bytes` of payload.
///
///   [u32 magic "PGT1"] [u16 type] [u16 sender rank] [u64 payload bytes]
///
/// DATA frames carry collective payloads; ARRIVE/RELEASE are the
/// zero-payload sync-point control frames (every rank sends ARRIVE to
/// rank 0, rank 0 answers RELEASE); HELLO/PEERS/CONNECT implement the
/// rendezvous + mesh handshake (DESIGN.md §15).
constexpr std::uint32_t kMagic = 0x50475431u;  // "PGT1"

enum class Type : std::uint16_t {
  kData = 1,
  kArrive = 2,
  kRelease = 3,
  kHello = 4,
  kPeers = 5,
  kConnect = 6,
};

struct Header {
  std::uint32_t magic;
  std::uint16_t type;
  std::uint16_t rank;
  std::uint64_t bytes;
};

constexpr std::size_t kHeaderBytes = sizeof(Header);
static_assert(sizeof(Header) == 16, "frame header must pack to 16 bytes");

}  // namespace frame

/// Per-rank endpoint: what one rank of the cluster sees of the wire.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int rank() const noexcept = 0;
  virtual int world() const noexcept = 0;

  /// Copies `bytes` of `data` toward `peer` and returns without
  /// waiting for the receiver (see header contract).  Per-edge FIFO:
  /// two sends to the same peer arrive in order.
  virtual void send(int peer, const void* data, std::size_t bytes) = 0;

  /// Blocks until the next frame from `peer` arrives, validates that
  /// its payload length is exactly `bytes`, and copies it into `data`.
  /// Throws PeerFailureError if the peer died instead.
  virtual void recv(int peer, void* data, std::size_t bytes) = 0;

  /// Global sync point: blocks until every live rank arrives; throws
  /// PeerFailureError if a peer died instead.  Counts this endpoint's
  /// entries for fault injection.
  virtual void sync() = 0;

  /// Arms a one-shot injected fault: this endpoint's `nth` upcoming
  /// sync() entry throws std::runtime_error(message) before arriving.
  virtual void inject_fault_at_sync_point(std::uint64_t nth,
                                          std::string message) = 0;

  /// Marks this rank as failed and releases every peer blocked on it
  /// (PeerFailureError on their side).  Idempotent; called by the run
  /// harness while unwinding, so it must not throw.
  virtual void shutdown() noexcept = 0;
};

}  // namespace pgti::dist
