#include "dist/overlap.h"

#include <algorithm>

namespace pgti::dist {

OverlappedGradBucket::OverlappedGradBucket(Communicator& comm,
                                           std::vector<Variable>& params,
                                           Mode mode, const NetworkModel& net,
                                           std::int64_t bucket_numel)
    : comm_(&comm),
      params_(&params),
      mode_(mode),
      net_(net),
      layout_(params, bucket_numel) {
  const auto& buckets = layout_.buckets();
  bucket_modeled_.resize(buckets.size(), 0.0);
  pending_.assign(buckets.size(), 0);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    bucket_modeled_[b] = net_.allreduce_seconds(
        buckets[b].numel * static_cast<std::int64_t>(sizeof(float)),
        comm_->world());
    for (std::size_t idx : buckets[b].param_indices) {
      bucket_of_.emplace(params[idx].impl().get(), b);
    }
    for (int parity = 0; parity < 2; ++parity) {
      bufs_[parity].emplace_back(static_cast<std::size_t>(buckets[b].numel));
    }
  }
  comm_thread_ = std::thread([this] { comm_loop(); });
}

OverlappedGradBucket::~OverlappedGradBucket() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (comm_thread_.joinable()) comm_thread_.join();
}

void OverlappedGradBucket::on_backward_start(
    const std::vector<Variable::Impl*>& leaves) {
  const std::int64_t step = steps_started_++;
  const int parity = static_cast<int>(step % 2);

  // Dependency counts cover only this sweep's participants; buckets
  // whose tracked parameters all sat out are complete immediately
  // (their grads are the zeros zero_grad() left behind — exactly what
  // the serial path packs for them).
  std::fill(pending_.begin(), pending_.end(), 0);
  for (const Variable::Impl* leaf : leaves) {
    auto it = bucket_of_.find(leaf);
    if (it != bucket_of_.end()) ++pending_[it->second];
  }

  std::lock_guard<std::mutex> lock(mu_);
  // drain()/flush() guarantee the parity slot we are about to reuse
  // finished two steps ago; reset its occupancy for this step.
  enqueued_[parity] = 0;
  completed_[parity] = 0;
  for (std::size_t b = 0; b < layout_.bucket_count(); ++b) {
    if (layout_.buckets()[b].numel == 0) continue;
    if (pending_[b] == 0) enqueue_bucket_locked(b);
  }
  if (!queue_.empty()) cv_.notify_all();
}

void OverlappedGradBucket::on_grad_ready(const Variable::Impl* leaf) {
  auto it = bucket_of_.find(leaf);
  if (it == bucket_of_.end()) return;
  const std::size_t b = it->second;
  if (--pending_[b] > 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  enqueue_bucket_locked(b);
  cv_.notify_all();
}

void OverlappedGradBucket::enqueue_bucket_locked(std::size_t b) {
  const std::int64_t step = steps_started_ - 1;
  const int parity = static_cast<int>(step % 2);
  // Grads in this bucket are final for the sweep; stage them now so
  // the comm thread never reads a tensor backward() still writes.
  layout_.pack_bucket(b, *params_, bufs_[parity][b].data());
  Job job;
  job.bucket = b;
  job.parity = parity;
  job.step = step;
  job.modeled_seconds = bucket_modeled_[b];
  job.enqueued_at = Clock::now();
  queue_.push_back(job);
  ++enqueued_[parity];
}

void OverlappedGradBucket::comm_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = queue_.front();
      queue_.pop_front();
    }
    try {
      comm_->allreduce_mean(bufs_[job.parity][job.bucket].data(),
                            layout_.buckets()[job.bucket].numel);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = std::current_exception();
      queue_.clear();
      cv_.notify_all();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_.push_back(job);
      ++completed_[job.parity];
      cv_.notify_all();
    }
  }
}

void OverlappedGradBucket::wait_parity_complete(
    std::unique_lock<std::mutex>& lock, bool both, int parity) {
  cv_.wait(lock, [&] {
    if (error_) return true;
    if (both) {
      return completed_[0] == enqueued_[0] && completed_[1] == enqueued_[1];
    }
    return completed_[parity] == enqueued_[parity];
  });
  if (error_) std::rethrow_exception(error_);
}

void OverlappedGradBucket::classify_done_locked(std::int64_t max_step,
                                                Clock::time_point need) {
  auto it = done_.begin();
  while (it != done_.end()) {
    if (it->step > max_step) {
      ++it;
      continue;
    }
    const double window =
        std::chrono::duration<double>(need - it->enqueued_at).count();
    const double exposed = std::max(0.0, it->modeled_seconds - window);
    exposed_ += exposed;
    overlapped_ += it->modeled_seconds - exposed;
    it = done_.erase(it);
  }
}

void OverlappedGradBucket::drain() {
  const std::int64_t step = steps_started_ - 1;
  const int parity = static_cast<int>(step % 2);
  const Clock::time_point need = Clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  if (mode_ == Mode::kStrict) {
    wait_parity_complete(lock, /*both=*/true, parity);
    classify_done_locked(step, need);
    lock.unlock();
    for (std::size_t b = 0; b < layout_.bucket_count(); ++b) {
      if (layout_.buckets()[b].numel == 0) continue;
      layout_.unpack_bucket(b, *params_, bufs_[parity][b].data());
    }
    return;
  }

  // Stale1: need step-1's results; step's own reduces keep running
  // under the next step's compute.
  wait_parity_complete(lock, /*both=*/false, 1 - parity);
  classify_done_locked(step - 1, need);
  lock.unlock();
  if (step == 0) {
    // No step -1 exists; apply its gradient: zero.
    for (Variable& p : *params_) p.grad().fill_(0.0f);
    return;
  }
  for (std::size_t b = 0; b < layout_.bucket_count(); ++b) {
    if (layout_.buckets()[b].numel == 0) continue;
    layout_.unpack_bucket(b, *params_, bufs_[1 - parity][b].data());
  }
}

void OverlappedGradBucket::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  wait_parity_complete(lock, /*both=*/true, 0);
}

void OverlappedGradBucket::finish() {
  flush();
  std::lock_guard<std::mutex> lock(mu_);
  for (const Job& job : done_) overlapped_ += job.modeled_seconds;
  done_.clear();
}

}  // namespace pgti::dist
