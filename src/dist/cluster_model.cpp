#include "dist/cluster_model.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace pgti::dist {

double NetworkModel::effective_bw(int world) const {
  return world <= gpus_per_node ? intra_node_bw : inter_node_bw;
}

double NetworkModel::allreduce_seconds(std::int64_t bytes, int world) const {
  if (world <= 1 || bytes <= 0) return 0.0;
  const double w = static_cast<double>(world);
  const double traversal =
      2.0 * (w - 1.0) / w * static_cast<double>(bytes) / effective_bw(world);
  const double hops = 2.0 * (w - 1.0) * latency_s;
  return traversal + hops;
}

double NetworkModel::fetch_seconds(std::int64_t bytes, std::int64_t messages) const {
  if (bytes <= 0 && messages <= 0) return 0.0;
  return static_cast<double>(messages) * fetch_latency_s +
         static_cast<double>(bytes) / fetch_bw;
}

ClusterModel::ClusterModel(ClusterModelParams params) : params_(std::move(params)) {
  if (params_.train_samples <= 0) {
    throw std::invalid_argument("ClusterModel: train_samples must be positive");
  }
  if (params_.batch_per_worker <= 0) {
    throw std::invalid_argument("ClusterModel: batch_per_worker must be positive");
  }
  if (params_.epochs < 1) {
    throw std::invalid_argument("ClusterModel: epochs must be >= 1");
  }
}

ScalingPoint ClusterModel::evaluate(int world, DistStrategy strategy) const {
  if (world < 1) throw std::invalid_argument("ClusterModel: world must be >= 1");
  const ClusterModelParams& p = params_;
  const NetworkModel& net = p.network;
  const double w = static_cast<double>(world);
  const double epochs = static_cast<double>(p.epochs);
  const double samples_per_worker = static_cast<double>(p.train_samples) / w;
  const double steps_per_epoch =
      samples_per_worker / static_cast<double>(p.batch_per_worker);
  const std::int64_t grad_bytes =
      p.model_parameters * static_cast<std::int64_t>(sizeof(float));

  ScalingPoint pt;
  pt.world = world;
  pt.epochs = p.epochs;
  pt.compute_s = epochs * samples_per_worker * p.t_sample;
  pt.allreduce_s = epochs * steps_per_epoch * net.allreduce_seconds(grad_bytes, world);
  pt.fixed_s = epochs * p.epoch_fixed_s;

  const bool index_family = strategy == DistStrategy::kDistributedIndex ||
                            strategy == DistStrategy::kGeneralizedIndex;
  // Index preprocessing builds the window-start array once per worker in
  // parallel (constant in W, paper §5.2); the baseline materializes and
  // scatters Dask chunks, which grows with W (~305 s at 128 workers).
  pt.preprocess_s = index_family
                        ? p.index_preprocess_s
                        : p.ddp_preprocess_base_s +
                              p.ddp_preprocess_scatter_per_worker_s * w;

  switch (strategy) {
    case DistStrategy::kDistributedIndex:
      // Every worker holds the whole raw copy: zero data movement during
      // training, memory grows linearly with W (the trade-off §5.4
      // addresses).
      pt.data_comm_s = 0.0;
      pt.data_bytes_per_worker = p.dataset_bytes;
      pt.data_bytes_total = p.dataset_bytes * world;
      break;
    case DistStrategy::kGeneralizedIndex: {
      // Contiguous partitions plus the 2*horizon-1 window overlap: the
      // only movement is a one-time boundary exchange of roughly one
      // sample window per partition seam — W partitions have W-1 seams
      // (the last partition ends at the dataset edge).  It happens
      // during data distribution, so it is preprocessing, not a
      // recurring per-epoch cost (epoch_s must not amortize it).
      const std::int64_t seams = world - 1;
      if (seams > 0) {
        pt.preprocess_s += net.fetch_seconds(p.sample_bytes * seams, seams);
      }
      pt.data_comm_s = 0.0;
      pt.data_bytes_per_worker = p.dataset_bytes / world + p.sample_bytes;
      pt.data_bytes_total = p.dataset_bytes + p.sample_bytes * seams;
      break;
    }
    case DistStrategy::kBaselineDdp: {
      // Global shuffling over a Dask-partitioned store: a (W-1)/W
      // fraction of every batch is remote, consolidated into one request
      // per remote owner per step (min(W-1, batch) messages).
      const double remote_frac = (w - 1.0) / w;
      const double bytes_per_epoch = samples_per_worker *
                                     static_cast<double>(p.sample_bytes) *
                                     remote_frac;
      const double messages_per_epoch =
          steps_per_epoch *
          static_cast<double>(std::min<std::int64_t>(world - 1, p.batch_per_worker));
      pt.data_comm_s =
          epochs * net.fetch_seconds(static_cast<std::int64_t>(bytes_per_epoch),
                                     static_cast<std::int64_t>(messages_per_epoch));
      // Materialized snapshots duplicate each raw value ~2*horizon times
      // (Eq. 1); sample_bytes already carries that duplication.
      pt.data_bytes_total = p.train_samples * p.sample_bytes;
      pt.data_bytes_per_worker = pt.data_bytes_total / world;
      break;
    }
    case DistStrategy::kBaselineDdpBatchShuffle: {
      // Batch-level shuffling keeps each batch chunk-contiguous, but the
      // scheduler still scatters every global batch from its owning
      // chunk to all W replicas — the per-epoch message count
      // (global_batches * W = train_samples / batch) is independent of
      // W, which is why the baseline's epoch time plateaus (Fig. 9).
      const double remote_frac = (w - 1.0) / w;
      const double bytes_per_epoch = samples_per_worker *
                                     static_cast<double>(p.sample_bytes) *
                                     remote_frac;
      const double messages_per_epoch = steps_per_epoch * w;
      pt.data_comm_s =
          epochs * net.fetch_seconds(static_cast<std::int64_t>(bytes_per_epoch),
                                     static_cast<std::int64_t>(messages_per_epoch));
      pt.data_bytes_total = p.train_samples * p.sample_bytes;
      pt.data_bytes_per_worker = pt.data_bytes_total / world;
      break;
    }
  }
  return pt;
}

}  // namespace pgti::dist
