// Rank-aware snapshot access — the seam that makes the index-batched
// and DDP-baseline data planes interchangeable behind the DataLoader.
//
// A SnapshotProvider serves materialized (x, y) snapshot tensors to a
// specific rank.  dist::DistStore implements it with real partitioned
// storage (zero-copy views of the rank's own shard, byte-moving
// LRU-cached copies of remote snapshots); IndexProvider implements it
// over an IndexDataset, where every access is local by construction.
// RankSource binds (provider, rank) into the SnapshotSource interface
// the DataLoader consumes, and forwards the loader's per-batch
// prefetch_batch announcement so providers can move remote data in
// consolidated, Dask-style requests.
#pragma once

#include <utility>
#include <vector>

#include "data/dataloader.h"

namespace pgti::data {

/// Snapshot access with an explicit requesting rank.  Thread-safety
/// contract: concurrent calls with DISTINCT ranks never contend, and
/// within ONE rank implementations must tolerate a consumer thread
/// (fetch/prefetch_batch/abandon_prefetches) running concurrently with
/// a drainer (drain_modeled_seconds) — DistTrainer's prefetch mode
/// drains on the rank thread while a PrefetchLoader worker fetches.
/// Guard per-rank state accordingly (DistStore uses a per-rank mutex;
/// providers whose accesses are all local may be stateless instead).
class SnapshotProvider {
 public:
  virtual ~SnapshotProvider() = default;

  /// Snapshot `i` as seen by `rank`: (x, y), each [horizon, N, F].
  /// Rank-local data comes back as zero-copy views; remote data as a
  /// (possibly cached) copy whose bytes really moved.
  virtual std::pair<Tensor, Tensor> fetch(int rank, std::int64_t i) = 0;

  /// Announces one batch of snapshot ids `rank` is about to fetch, so
  /// the provider can consolidate remote requests per owner (and, for
  /// async-prefetching providers, start moving them in the background).
  virtual void prefetch_batch(int rank, const std::vector<std::int64_t>& ids) = 0;

  /// Releases `rank`'s announced-but-unconsumed prefetches (called at
  /// epoch boundaries when lookahead announcements outran consumption).
  virtual void abandon_prefetches(int rank) { (void)rank; }

  /// Tells the provider that `rank`'s consumer received one assembled
  /// batch (called on the consumer thread, in delivery order).
  /// Delivery-driven providers classify the overlap split of their
  /// oldest consumed-but-unclassified announced request here: when a
  /// prefetch worker assembles batches ahead of compute, the wall
  /// window that really hides a transfer runs from its announcement to
  /// the batch's *delivery*, not to the worker's (much earlier) need.
  /// Default: ignore.
  virtual void notify_batch_delivered(int rank) { (void)rank; }

  /// Announces `rank`'s full epoch consumption order (once per
  /// start_epoch, before any prefetch_batch of that epoch).
  /// Schedule-aware providers use it to pick cache eviction victims:
  /// an entry scheduled for a nearer-future batch must outlive
  /// already-consumed ones.  Providers whose accesses are all local
  /// ignore it.
  virtual void announce_schedule(int rank, const std::vector<std::int64_t>& ids) {
    (void)rank;
    (void)ids;
  }

  /// *Exposed* modeled fetch seconds accumulated by `rank` since the
  /// last drain — the share of modeled fetch time still on the critical
  /// path after any prefetch overlap (synchronous providers expose all
  /// of it; zero for providers whose accesses are all local).
  virtual double drain_modeled_seconds(int rank) = 0;

  virtual std::int64_t num_snapshots() const = 0;
  virtual MemorySpaceId space() const = 0;
  virtual const StandardScaler& scaler() const = 0;
  virtual const SplitRanges& splits() const = 0;
  virtual const DatasetSpec& spec() const = 0;
};

/// Index-batching's data plane: the rank holds the dataset (or its
/// partition) in full, so every fetch is a local zero-copy view and no
/// time is ever modeled.
class IndexProvider final : public SnapshotProvider {
 public:
  explicit IndexProvider(const IndexDataset& d) : d_(&d) {}

  std::pair<Tensor, Tensor> fetch(int, std::int64_t i) override { return d_->get(i); }
  void prefetch_batch(int, const std::vector<std::int64_t>&) override {}
  double drain_modeled_seconds(int) override { return 0.0; }
  std::int64_t num_snapshots() const override { return d_->num_snapshots(); }
  MemorySpaceId space() const override { return d_->space(); }
  const StandardScaler& scaler() const override { return d_->scaler(); }
  const SplitRanges& splits() const override { return d_->splits(); }
  const DatasetSpec& spec() const override { return d_->spec(); }

 private:
  const IndexDataset* d_;
};

/// (provider, rank) bound into the SnapshotSource seam: the DataLoader
/// stays rank-agnostic while every access it makes is attributed — and
/// physically served — to one rank.
class RankSource final : public SnapshotSource {
 public:
  RankSource(SnapshotProvider& provider, int rank) : p_(&provider), rank_(rank) {}

  std::pair<Tensor, Tensor> get(std::int64_t i) const override {
    return p_->fetch(rank_, i);
  }
  void prefetch_batch(const std::vector<std::int64_t>& ids) const override {
    p_->prefetch_batch(rank_, ids);
  }
  void abandon_prefetches() const override { p_->abandon_prefetches(rank_); }
  void announce_schedule(const std::vector<std::int64_t>& ids) const override {
    p_->announce_schedule(rank_, ids);
  }
  std::int64_t num_snapshots() const override { return p_->num_snapshots(); }
  MemorySpaceId space() const override { return p_->space(); }
  const StandardScaler& scaler() const override { return p_->scaler(); }
  const SplitRanges& splits() const override { return p_->splits(); }
  const DatasetSpec& spec() const override { return p_->spec(); }

  int rank() const noexcept { return rank_; }

 private:
  SnapshotProvider* p_;
  int rank_;
};

}  // namespace pgti::data
