#include "data/dataloader.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/rng.h"

namespace pgti::data {

std::vector<std::int64_t> sample_epoch(std::int64_t range_begin, std::int64_t range_end,
                                       const SamplerOptions& options, int epoch) {
  const std::int64_t n = range_end - range_begin;
  if (n <= 0) return {};
  if (options.world < 1 || options.rank < 0 || options.rank >= options.world) {
    throw std::invalid_argument("sample_epoch: bad rank/world");
  }

  std::vector<std::int64_t> all(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = range_begin + i;

  const std::int64_t chunk = (n + options.world - 1) / options.world;
  const std::int64_t lo = std::min<std::int64_t>(chunk * options.rank, n);
  const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n);

  switch (options.mode) {
    case ShuffleMode::kNone: {
      return {all.begin() + lo, all.begin() + hi};
    }
    case ShuffleMode::kGlobal: {
      // Same seed on every rank -> identical permutation everywhere;
      // each rank takes a disjoint chunk.  No communication needed.
      Rng rng(options.seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(epoch));
      rng.shuffle(all);
      return {all.begin() + lo, all.begin() + hi};
    }
    case ShuffleMode::kLocalPartition: {
      // Fixed partition; shuffle only inside it.
      std::vector<std::int64_t> part(all.begin() + lo, all.begin() + hi);
      Rng rng(options.seed * 0x85ebca6bULL + static_cast<std::uint64_t>(epoch) * 1315423911ULL +
              static_cast<std::uint64_t>(options.rank + 1));
      rng.shuffle(part);
      return part;
    }
    case ShuffleMode::kBatchLevel: {
      // Fixed partition; fixed batch contents; shuffled batch order.
      std::vector<std::int64_t> part(all.begin() + lo, all.begin() + hi);
      const std::int64_t b = std::max<std::int64_t>(1, options.batch_size);
      const std::int64_t num_batches =
          (static_cast<std::int64_t>(part.size()) + b - 1) / b;
      std::vector<std::int64_t> batch_order(static_cast<std::size_t>(num_batches));
      for (std::int64_t i = 0; i < num_batches; ++i) {
        batch_order[static_cast<std::size_t>(i)] = i;
      }
      Rng rng(options.seed * 0xc2b2ae35ULL + static_cast<std::uint64_t>(epoch) * 2654435761ULL +
              static_cast<std::uint64_t>(options.rank + 1));
      rng.shuffle(batch_order);
      std::vector<std::int64_t> out;
      out.reserve(part.size());
      for (std::int64_t bi : batch_order) {
        const std::int64_t s = bi * b;
        const std::int64_t e = std::min<std::int64_t>(s + b,
                                                      static_cast<std::int64_t>(part.size()));
        for (std::int64_t i = s; i < e; ++i) out.push_back(part[static_cast<std::size_t>(i)]);
      }
      return out;
    }
  }
  throw std::logic_error("sample_epoch: unknown shuffle mode");
}

DataLoader::DataLoader(const SnapshotSource& source, const LoaderOptions& options,
                       std::int64_t range_begin, std::int64_t range_end)
    : source_(&source),
      options_(options),
      range_begin_(range_begin),
      range_end_(range_end) {
  if (range_begin < 0 || range_end > source.num_snapshots() || range_begin > range_end) {
    throw std::out_of_range("DataLoader: bad snapshot range");
  }
}

void DataLoader::start_epoch(int epoch) {
  SamplerOptions s = options_.sampler;
  s.batch_size = options_.batch_size;
  order_ = sample_epoch(range_begin_, range_end_, s, epoch);
  cursor_ = 0;
  if (options_.prefetch_lookahead > 0) {
    // A truncated previous epoch may have left announcements that were
    // never consumed; release them first.
    source_->abandon_prefetches();
    // Announce the epoch's full consumption order (batch by batch,
    // respecting drop_last and the max-batches cap): schedule-aware
    // caches evict around it — an entry scheduled for a nearer batch
    // outlives already-consumed ones.  The NEXT epoch's order is
    // already a pure function of (seed, epoch + 1), so append it too:
    // end-of-epoch residue the coming epoch will reuse then carries a
    // future schedule position instead of looking like dead weight and
    // being evicted at the boundary.
    schedule_ids_.clear();
    append_epoch_batches(order_, schedule_ids_);
    append_epoch_batches(sample_epoch(range_begin_, range_end_, s, epoch + 1),
                         schedule_ids_);
    source_->announce_schedule(schedule_ids_);
    // Kick off the first `depth` batches so they stage while the
    // caller finishes its own epoch setup.
    int announced = 0;
    for (int j = 0; j < options_.prefetch_lookahead; ++j) {
      batch_ids_at(static_cast<std::size_t>(j) *
                       static_cast<std::size_t>(options_.batch_size),
                   lookahead_ids_);
      if (lookahead_ids_.empty()) break;
      source_->prefetch_batch(lookahead_ids_);
      ++announced;
    }
    announce_cursor_ = static_cast<std::size_t>(announced) *
                       static_cast<std::size_t>(options_.batch_size);
  }
}

void DataLoader::append_epoch_batches(const std::vector<std::int64_t>& order,
                                      std::vector<std::int64_t>& out) const {
  std::int64_t batches = 0;
  for (std::size_t c = 0; c < order.size();
       c += static_cast<std::size_t>(options_.batch_size)) {
    if (max_batches_ >= 0 && batches >= max_batches_) break;
    const std::int64_t remaining =
        static_cast<std::int64_t>(order.size()) - static_cast<std::int64_t>(c);
    const std::int64_t b = std::min<std::int64_t>(options_.batch_size, remaining);
    if (options_.drop_last && b < options_.batch_size) break;
    out.insert(out.end(), order.begin() + static_cast<std::ptrdiff_t>(c),
               order.begin() + static_cast<std::ptrdiff_t>(c) +
                   static_cast<std::ptrdiff_t>(b));
    ++batches;
  }
}

void DataLoader::announce_next_batch() {
  if (options_.prefetch_lookahead <= 0 || !paced_announcements_) return;
  batch_ids_at(announce_cursor_, lookahead_ids_);
  if (lookahead_ids_.empty()) return;
  source_->prefetch_batch(lookahead_ids_);
  announce_cursor_ += static_cast<std::size_t>(options_.batch_size);
}

std::int64_t DataLoader::samples_per_epoch() const {
  SamplerOptions s = options_.sampler;
  s.batch_size = options_.batch_size;
  // Chunk arithmetic only; no RNG draw needed.
  const std::int64_t n = range_end_ - range_begin_;
  const std::int64_t chunk = (n + s.world - 1) / s.world;
  const std::int64_t lo = std::min<std::int64_t>(chunk * s.rank, n);
  const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n);
  return hi - lo;
}

std::int64_t DataLoader::batches_per_epoch() const {
  const std::int64_t n = samples_per_epoch();
  return options_.drop_last ? n / options_.batch_size
                            : (n + options_.batch_size - 1) / options_.batch_size;
}

void DataLoader::batch_ids_at(std::size_t cursor,
                              std::vector<std::int64_t>& out) const {
  out.clear();
  if (max_batches_ >= 0 &&
      static_cast<std::int64_t>(cursor) >= max_batches_ * options_.batch_size) {
    return;
  }
  const std::int64_t remaining = static_cast<std::int64_t>(order_.size()) -
                                 static_cast<std::int64_t>(cursor);
  if (remaining <= 0) return;
  const std::int64_t b = std::min<std::int64_t>(options_.batch_size, remaining);
  if (options_.drop_last && b < options_.batch_size) return;
  out.insert(out.end(), order_.begin() + static_cast<std::ptrdiff_t>(cursor),
             order_.begin() + static_cast<std::ptrdiff_t>(cursor) +
                 static_cast<std::ptrdiff_t>(b));
}

bool DataLoader::next(Batch& out) {
  batch_ids_at(cursor_, out.indices);
  if (out.indices.empty()) return false;
  const std::int64_t b = static_cast<std::int64_t>(out.indices.size());
  out.staged_at = std::chrono::steady_clock::now();
  out.modeled_staging_seconds = 0.0;

  const DatasetSpec& spec = source_->spec();
  const std::int64_t h = spec.horizon;
  const std::int64_t n = spec.nodes;
  const std::int64_t f = spec.features;
  const std::int64_t bmax = options_.batch_size;

  const bool on_device = options_.device != nullptr;
  const MemorySpaceId data_space = source_->space();
  const MemorySpaceId compute_space =
      on_device ? options_.device->space() : kHostSpace;

  // Lazily allocate reusable buffers.
  auto ensure = [&](Tensor& x, Tensor& y, MemorySpaceId space) {
    if (!x.defined()) {
      x = Tensor::empty({bmax, h, n, f}, space);
      y = Tensor::empty({bmax, h, n, 1}, space);
    }
  };

  // Choose the assembly target: directly into the compute-space buffer
  // when source data is already there, otherwise stage on host.
  const bool direct = data_space == compute_space;
  Tensor* asm_x;
  Tensor* asm_y;
  if (direct) {
    ensure(dev_x_, dev_y_, compute_space);
    asm_x = &dev_x_;
    asm_y = &dev_y_;
  } else {
    ensure(host_x_, host_y_, kHostSpace);
    asm_x = &host_x_;
    asm_y = &host_y_;
  }

  if (options_.prefetch_lookahead > 0) {
    // This batch was announced `depth` batches ago (or at
    // start_epoch).  Who announces batch k+depth depends on pacing:
    // with consumer pacing (PrefetchLoader) the consumer announces it
    // after the k-th *delivery* via announce_next_batch(); without, it
    // is announced here at stage time.  (Every non-tail batch starts
    // at a multiple of batch_size, and past the tail the lookup is
    // empty anyway.)
    if (!paced_announcements_) {
      batch_ids_at(cursor_ + static_cast<std::size_t>(options_.prefetch_lookahead) *
                                 static_cast<std::size_t>(options_.batch_size),
                   lookahead_ids_);
      if (!lookahead_ids_.empty()) source_->prefetch_batch(lookahead_ids_);
    }
  } else {
    // Announce the whole batch before staging it: remote-backed sources
    // move the missing snapshots in one consolidated request per owner.
    source_->prefetch_batch(out.indices);
  }
  for (std::int64_t i = 0; i < b; ++i) {
    const auto [xv, yv] = source_->get(out.indices[static_cast<std::size_t>(i)]);
    asm_x->select(0, i).copy_from(xv);
    // Target is the metric feature only.
    asm_y->select(0, i).copy_from(yv.slice(-1, 0, 1));
  }
  cursor_ += static_cast<std::size_t>(b);

  if (!direct && on_device) {
    // Host-resident data, device compute: the staged batch crosses
    // PCIe (this is the per-batch transfer GPU-index-batching removes).
    ensure(dev_x_, dev_y_, compute_space);
    Tensor hx = host_x_.slice(0, 0, b);
    Tensor hy = host_y_.slice(0, 0, b);
    Tensor dx = dev_x_.slice(0, 0, b);
    Tensor dy = dev_y_.slice(0, 0, b);
    options_.device->upload_into(hx, dx);
    options_.device->upload_into(hy, dy);
    // Mirror the PcieModel charge upload_into just recorded so the
    // consumer can split it into overlapped/exposed without re-reading
    // the (shared) device ledger.
    const PcieModel& pcie = options_.device->pcie();
    out.modeled_staging_seconds =
        pcie.transfer_seconds(hx.numel() * static_cast<std::int64_t>(sizeof(float))) +
        pcie.transfer_seconds(hy.numel() * static_cast<std::int64_t>(sizeof(float)));
    out.x = dx;
    out.y = dy;
  } else {
    out.x = asm_x->slice(0, 0, b);
    out.y = asm_y->slice(0, 0, b);
  }
  out.size = b;
  return true;
}

}  // namespace pgti::data
