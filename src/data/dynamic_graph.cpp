#include "data/dynamic_graph.h"

#include <set>
#include <stdexcept>

#include "data/synthetic.h"

namespace pgti::data {

DynamicGraphSignal generate_dynamic_graph_signal(const DatasetSpec& spec,
                                                 std::uint64_t seed,
                                                 int rewires_per_period) {
  SensorNetwork net = network_for(spec, seed);
  DynamicGraphSignal out;
  out.signal = generate_signal(spec, net, seed);
  out.graphs.reserve(static_cast<std::size_t>(spec.entries));

  Rng rng(seed ^ 0xD1CEULL);
  auto current = std::make_shared<const Csr>(net.adjacency);
  for (std::int64_t t = 0; t < spec.entries; ++t) {
    if (t > 0 && t % spec.steps_per_period == 0) {
      // Rewire: drop some directed edges, add random new ones with a
      // mid-strength weight (incident opens/closes road segments).
      std::vector<CooEntry> entries;
      const Csr& g = *current;
      std::set<std::int64_t> dropped;
      for (int k = 0; k < rewires_per_period && g.nnz() > 0; ++k) {
        dropped.insert(static_cast<std::int64_t>(
            rng.uniform_int(static_cast<std::uint64_t>(g.nnz()))));
      }
      std::int64_t flat = 0;
      for (std::int64_t r = 0; r < g.rows(); ++r) {
        for (std::int64_t e = g.row_ptr()[static_cast<std::size_t>(r)];
             e < g.row_ptr()[static_cast<std::size_t>(r) + 1]; ++e, ++flat) {
          if (dropped.count(flat) != 0 &&
              g.col_idx()[static_cast<std::size_t>(e)] != r) {
            continue;  // never drop self loops
          }
          entries.push_back(CooEntry{r, g.col_idx()[static_cast<std::size_t>(e)],
                                     g.values()[static_cast<std::size_t>(e)]});
        }
      }
      for (int k = 0; k < rewires_per_period; ++k) {
        const auto a = static_cast<std::int64_t>(
            rng.uniform_int(static_cast<std::uint64_t>(spec.nodes)));
        const auto b = static_cast<std::int64_t>(
            rng.uniform_int(static_cast<std::uint64_t>(spec.nodes)));
        if (a != b) entries.push_back(CooEntry{a, b, 0.5f});
      }
      current = std::make_shared<const Csr>(
          Csr::from_coo(spec.nodes, spec.nodes, std::move(entries)));
    }
    out.graphs.push_back(current);
  }
  return out;
}

DynamicIndexDataset::DynamicIndexDataset(DynamicGraphSignal series,
                                         const DatasetSpec& spec)
    : spec_(spec), graphs_(std::move(series.graphs)) {
  if (static_cast<std::int64_t>(graphs_.size()) != spec.entries) {
    throw std::invalid_argument("DynamicIndexDataset: one graph per entry required");
  }
  Tensor stage1 = add_time_feature(series.signal, spec, kHostSpace);
  scaler_ = fit_scaler(stage1, spec);
  data_ = std::move(stage1);
  {
    float* p = data_.data();
    const std::int64_t f = data_.size(2);
    for (std::int64_t i = 0, rows = data_.numel() / f; i < rows; ++i) {
      p[i * f] = scaler_.transform(p[i * f]);
    }
  }
  const std::int64_t s = spec.num_snapshots();
  if (s <= 0) throw std::invalid_argument("DynamicIndexDataset: series too short");
  starts_.reserve(static_cast<std::size_t>(s));
  for (std::int64_t i = 0; i < s; ++i) starts_.push_back(i);
  splits_ = split_ranges(s);
}

DynamicSnapshot DynamicIndexDataset::get(std::int64_t i) const {
  if (i < 0 || i >= num_snapshots()) {
    throw std::out_of_range("DynamicIndexDataset::get: out of range");
  }
  const std::int64_t start = starts_[static_cast<std::size_t>(i)];
  const std::int64_t h = spec_.horizon;
  DynamicSnapshot snap;
  snap.x = data_.slice(0, start, h);
  snap.y = data_.slice(0, start + h, h);
  snap.graphs.assign(graphs_.begin() + start, graphs_.begin() + start + h);
  return snap;
}

std::size_t DynamicIndexDataset::distinct_graphs() const {
  std::set<const Csr*> unique;
  for (const auto& g : graphs_) unique.insert(g.get());
  return unique.size();
}

}  // namespace pgti::data
