// Index-batching (the paper's primary contribution, §4.1).
//
// Instead of materializing every overlapping snapshot, IndexDataset
// keeps exactly one standardized copy of the raw series plus an array
// of window-start graph IDs.  Snapshot i is reconstructed at request
// time as two zero-copy views:
//
//   x_i = data[start_i           : start_i + horizon]
//   y_i = data[start_i + horizon : start_i + 2*horizon]
//
// which is paper Fig. 4 verbatim.  Space usage follows Eq. (2).  The
// same class implements GPU-index-batching: constructed with a
// SimDevice, the single raw copy is uploaded once (one PCIe crossing)
// and all snapshot views alias device memory, so batch assembly never
// touches the host again.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "data/preprocess.h"
#include "device/device.h"
#include "tensor/tensor.h"

namespace pgti::data {

class IndexDataset {
 public:
  /// CPU index-batching: one standardized copy of raw [T, N, 1] in
  /// host memory (time feature appended per spec).
  IndexDataset(const Tensor& raw, const DatasetSpec& spec);

  /// GPU-index-batching: the copy lives in `device` memory; exactly
  /// one host-to-device transfer is performed, up front.
  IndexDataset(const Tensor& raw, const DatasetSpec& spec, SimDevice& device);

  ~IndexDataset();

  IndexDataset(const IndexDataset&) = delete;
  IndexDataset& operator=(const IndexDataset&) = delete;
  IndexDataset(IndexDataset&&) = default;

  std::int64_t num_snapshots() const {
    return static_cast<std::int64_t>(starts_.size());
  }

  /// Zero-copy snapshot reconstruction (paper Fig. 4): both tensors
  /// are views of the single data copy; no bytes are moved.
  std::pair<Tensor, Tensor> get(std::int64_t i) const;

  /// The window-start graph IDs ("indices" in Fig. 4).
  const std::vector<std::int64_t>& starts() const noexcept { return starts_; }

  const Tensor& data() const noexcept { return data_; }
  const StandardScaler& scaler() const noexcept { return scaler_; }
  const SplitRanges& splits() const noexcept { return splits_; }
  const DatasetSpec& spec() const noexcept { return spec_; }
  MemorySpaceId space() const { return data_.space(); }

  /// Builds an IndexDataset holding only raw entries
  /// [entry_begin, entry_end) — the partitioned variant used by
  /// generalized-distributed-index-batching (paper §5.4).  Snapshot
  /// ids remain global; scaler statistics must be supplied (they are
  /// computed from the global training range).
  IndexDataset(const Tensor& raw_partition, const DatasetSpec& spec,
               std::int64_t entry_begin, const StandardScaler& scaler,
               std::int64_t snapshot_begin, std::int64_t snapshot_end);

  /// First raw entry held by this (possibly partitioned) dataset.
  std::int64_t entry_offset() const noexcept { return entry_offset_; }

 private:
  void init_from_stage1(Tensor stage1, const DatasetSpec& spec);
  void track_index_array();

  DatasetSpec spec_;
  Tensor data_;  // [T_local, N, F], standardized
  std::vector<std::int64_t> starts_;
  StandardScaler scaler_;
  SplitRanges splits_;
  std::int64_t entry_offset_ = 0;
  std::size_t tracked_index_bytes_ = 0;
};

}  // namespace pgti::data
