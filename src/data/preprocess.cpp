#include "data/preprocess.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.h"

namespace pgti::data {

SplitRanges split_ranges(std::int64_t num_snapshots) {
  SplitRanges r;
  r.train_begin = 0;
  r.train_end = static_cast<std::int64_t>(std::llround(0.7 * static_cast<double>(num_snapshots)));
  r.val_begin = r.train_end;
  r.val_end = static_cast<std::int64_t>(std::llround(0.8 * static_cast<double>(num_snapshots)));
  r.test_begin = r.val_end;
  r.test_end = num_snapshots;
  return r;
}

Tensor add_time_feature(const Tensor& raw, const DatasetSpec& spec, MemorySpaceId space) {
  if (raw.dim() != 3 || raw.size(2) != 1) {
    throw std::invalid_argument("add_time_feature: raw must be [T, N, 1]");
  }
  if (spec.features == 1) {
    return raw.space() == space ? raw.clone() : raw.to(space);
  }
  const std::int64_t t_steps = raw.size(0);
  const std::int64_t n = raw.size(1);
  Tensor out = Tensor::empty({t_steps, n, spec.features}, space);
  const Tensor rc = raw.contiguous();
  const float* pr = rc.data();
  float* po = out.data();
  const std::int64_t f = spec.features;
  parallel_for(0, t_steps, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      const float tod = static_cast<float>(t % spec.steps_per_period) /
                        static_cast<float>(spec.steps_per_period);
      for (std::int64_t nn = 0; nn < n; ++nn) {
        float* dst = po + (t * n + nn) * f;
        dst[0] = pr[t * n + nn];
        dst[1] = tod;
        for (std::int64_t ff = 2; ff < f; ++ff) dst[ff] = 0.0f;
      }
    }
  });
  return out;
}

StandardScaler fit_scaler(const Tensor& stage1, const DatasetSpec& spec) {
  const std::int64_t s = spec.num_snapshots();
  const SplitRanges r = split_ranges(s);
  // Raw entries covered by the training windows: [0, train_end + horizon).
  const std::int64_t train_entries =
      std::min<std::int64_t>(stage1.size(0), r.train_end + spec.horizon);
  const std::int64_t n = stage1.size(1);
  const std::int64_t f = stage1.size(2);
  const float* p = stage1.contiguous().data();

  double sum = 0.0, sumsq = 0.0;
  const std::int64_t count = train_entries * n;
  for (std::int64_t t = 0; t < train_entries; ++t) {
    for (std::int64_t nn = 0; nn < n; ++nn) {
      const double v = p[(t * n + nn) * f];  // metric feature only
      sum += v;
      sumsq += v * v;
    }
  }
  StandardScaler sc;
  sc.mean = sum / static_cast<double>(count);
  const double var = sumsq / static_cast<double>(count) - sc.mean * sc.mean;
  sc.stddev = std::sqrt(std::max(var, 1e-12));
  return sc;
}

namespace {

/// Applies the scaler to the metric feature (index 0) of a [.., F] tensor.
void normalize_metric_feature(Tensor& t, const StandardScaler& sc, std::int64_t features) {
  float* p = t.data();
  const std::int64_t n = t.numel();
  parallel_for(0, n / features, 16384, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      p[i * features] = sc.transform(p[i * features]);
    }
  });
}

}  // namespace

StandardDataset::StandardDataset(const Tensor& raw, const DatasetSpec& spec,
                                 MemorySpaceId space)
    : spec_(spec) {
  // Stage 1: append time feature.
  Tensor stage1 = add_time_feature(raw, spec, space);
  scaler_ = fit_scaler(stage1, spec);

  const std::int64_t s = spec.num_snapshots();
  if (s <= 0) throw std::invalid_argument("StandardDataset: series too short for horizon");
  splits_ = split_ranges(s);
  const std::int64_t h = spec.horizon;
  const std::int64_t n = stage1.size(1);
  const std::int64_t f = stage1.size(2);

  // Stages 2+3, mirroring the reference implementation: collect every
  // window as its own copy (the Python `x.append(data[window])` loop),
  // then stack.  The windows list and the stacked array coexist, which
  // is the transient 2x peak the paper measures.
  {
    std::vector<Tensor> x_windows;
    std::vector<Tensor> y_windows;
    x_windows.reserve(static_cast<std::size_t>(s));
    y_windows.reserve(static_cast<std::size_t>(s));
    for (std::int64_t i = 0; i < s; ++i) {
      x_windows.push_back(stage1.slice(0, i, h).clone());
      y_windows.push_back(stage1.slice(0, i + h, h).clone());
    }
    x_ = Tensor::empty({s, h, n, f}, space);
    y_ = Tensor::empty({s, h, n, f}, space);
    for (std::int64_t i = 0; i < s; ++i) {
      x_.select(0, i).copy_from(x_windows[static_cast<std::size_t>(i)]);
      y_.select(0, i).copy_from(y_windows[static_cast<std::size_t>(i)]);
    }
  }

  // Standardize x and y with the training-range statistics.
  normalize_metric_feature(x_, scaler_, f);
  normalize_metric_feature(y_, scaler_, f);
}

std::pair<Tensor, Tensor> StandardDataset::get(std::int64_t i) const {
  return {x_.select(0, i), y_.select(0, i)};
}

PaddedStandardDataset::PaddedStandardDataset(const Tensor& raw, const DatasetSpec& spec,
                                             MemorySpaceId space)
    : base_(raw, spec, space) {
  const std::int64_t s = base_.num_snapshots();
  const std::int64_t b = spec.batch_size;
  const std::int64_t padded = (s + b - 1) / b * b;
  const Tensor& x = base_.x();
  const Tensor& y = base_.y();
  padded_x_ = Tensor::empty({padded, x.size(1), x.size(2), x.size(3)}, space);
  padded_y_ = Tensor::empty({padded, y.size(1), y.size(2), y.size(3)}, space);
  for (std::int64_t i = 0; i < padded; ++i) {
    const std::int64_t src = std::min(i, s - 1);  // repeat the last sample
    padded_x_.select(0, i).copy_from(x.select(0, src));
    padded_y_.select(0, i).copy_from(y.select(0, src));
  }
}

std::pair<Tensor, Tensor> PaddedStandardDataset::get(std::int64_t i) const {
  return {padded_x_.select(0, i), padded_y_.select(0, i)};
}

}  // namespace pgti::data
