// Dynamic graphs with temporal signal (paper §7 future work: "extend
// PGT-I to support additional spatiotemporal data structures such as
// dynamic graphs with temporal signal").
//
// PGT's DynamicGraphTemporalSignal pairs each time step with its own
// edge set.  Index-batching applies unchanged: one copy of the node
// signal, one vector of per-step graphs (stored ONCE, referenced by
// every overlapping window), and snapshots reconstructed as views plus
// a span of graph indices — standard preprocessing would replicate
// both the signal slices and the graph lists into every window.
#pragma once

#include <memory>
#include <vector>

#include "data/index_dataset.h"
#include "graph/spatial.h"

namespace pgti::data {

/// A spatiotemporal series whose topology evolves: graphs[t] is the
/// adjacency in force at time step t.  Consecutive steps often share a
/// graph; shared_ptr keeps storage deduplicated.
struct DynamicGraphSignal {
  Tensor signal;  ///< [T, N, F_raw]
  std::vector<std::shared_ptr<const Csr>> graphs;  ///< size T
};

/// One reconstructed snapshot: zero-copy signal views plus the graphs
/// active during the input window.
struct DynamicSnapshot {
  Tensor x;  ///< [horizon, N, F] view
  Tensor y;  ///< [horizon, N, F] view
  std::vector<std::shared_ptr<const Csr>> graphs;  ///< size horizon (input window)
};

/// Generates a dynamic-topology variant of `spec`: starts from the
/// static sensor network and rewires `rewires_per_period` random edges
/// once per steps_per_period (road closures / incidents).
DynamicGraphSignal generate_dynamic_graph_signal(const DatasetSpec& spec,
                                                 std::uint64_t seed,
                                                 int rewires_per_period = 4);

/// Index-batching over a dynamic graph signal.
class DynamicIndexDataset {
 public:
  DynamicIndexDataset(DynamicGraphSignal series, const DatasetSpec& spec);

  std::int64_t num_snapshots() const {
    return static_cast<std::int64_t>(starts_.size());
  }

  /// Zero-copy reconstruction; the graph list aliases the shared
  /// per-step graphs (no duplication).
  DynamicSnapshot get(std::int64_t i) const;

  const StandardScaler& scaler() const noexcept { return scaler_; }
  const SplitRanges& splits() const noexcept { return splits_; }
  const Tensor& data() const noexcept { return data_; }
  /// Count of distinct graph objects held (tests assert deduplication).
  std::size_t distinct_graphs() const;

 private:
  DatasetSpec spec_;
  Tensor data_;  // standardized [T, N, F]
  std::vector<std::shared_ptr<const Csr>> graphs_;
  std::vector<std::int64_t> starts_;
  StandardScaler scaler_;
  SplitRanges splits_;
};

}  // namespace pgti::data
