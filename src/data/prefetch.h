// Background batch prefetching (paper §7 future work: "explore data
// distribution strategies ... and implement prefetching").
//
// A PrefetchLoader drives an inner DataLoader on a worker thread and
// double-buffers assembled batches, overlapping batch staging (and any
// modeled PCIe/store traffic it triggers) with model compute.  The
// batch sequence is identical to the inner loader's.
#pragma once

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "data/dataloader.h"

namespace pgti::data {

class PrefetchLoader {
 public:
  /// Takes ownership semantics over loader's iteration: callers must
  /// not call loader.next() directly while prefetching.
  explicit PrefetchLoader(DataLoader& loader);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Starts (re)filling from the given epoch.  `max_batches` bounds
  /// how many batches the epoch assembles (-1 = the whole epoch);
  /// callers that consume a truncated epoch (steps_per_epoch caps)
  /// pass the cap so the worker goes quiescent — and stops issuing
  /// lookahead announcements — once the last consumable batch is
  /// staged.  Forwarded to the inner loader via set_max_batches (the
  /// single capping mechanism).
  void start_epoch(int epoch, std::int64_t max_batches = -1);

  /// Delivers the next prefetched batch; returns false at epoch end.
  /// The returned tensors are deep copies owned by the PrefetchLoader
  /// and stay valid until the next-but-one call (double buffered).
  /// An exception thrown by the inner loader on the worker thread
  /// (e.g. a staging failure surfaced by the source) is rethrown here,
  /// on the real consumer; restarting via start_epoch discards a
  /// pending error (explicit recovery).
  bool next(Batch& out);

 private:
  void worker_loop();
  static void deep_copy(const Batch& src, Batch& dst);

  DataLoader* inner_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  Batch slots_[2];
  bool slot_full_[2] = {false, false};
  bool epoch_done_ = true;
  bool fill_requested_ = false;
  bool abort_ = false;
  bool stop_ = false;
  int produce_idx_ = 0;
  int consume_idx_ = 0;
  int in_use_idx_ = -1;  ///< slot handed to the caller, pinned until next()
  int epoch_ = 0;
  std::int64_t max_batches_ = -1;  ///< forwarded to the inner loader (-1 = none)
  std::exception_ptr worker_error_;  ///< inner-loader throw, rethrown in next()
};

}  // namespace pgti::data
