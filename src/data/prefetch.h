// Background batch prefetching (paper §7 future work: "explore data
// distribution strategies ... and implement prefetching").
//
// A PrefetchLoader drives an inner DataLoader on a worker thread and
// double-buffers assembled batches, overlapping batch staging (and any
// modeled PCIe/store traffic it triggers) with model compute.  The
// batch sequence is identical to the inner loader's.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "data/dataloader.h"

namespace pgti::data {

class PrefetchLoader {
 public:
  /// Takes ownership semantics over loader's iteration: callers must
  /// not call loader.next() directly while prefetching.
  explicit PrefetchLoader(DataLoader& loader);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Starts (re)filling from the given epoch.
  void start_epoch(int epoch);

  /// Delivers the next prefetched batch; returns false at epoch end.
  /// The returned tensors are deep copies owned by the PrefetchLoader
  /// and stay valid until the next-but-one call (double buffered).
  bool next(Batch& out);

 private:
  void worker_loop();
  static void deep_copy(const Batch& src, Batch& dst);

  DataLoader* inner_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  Batch slots_[2];
  bool slot_full_[2] = {false, false};
  bool epoch_done_ = true;
  bool fill_requested_ = false;
  bool abort_ = false;
  bool stop_ = false;
  int produce_idx_ = 0;
  int consume_idx_ = 0;
  int in_use_idx_ = -1;  ///< slot handed to the caller, pinned until next()
  int epoch_ = 0;
};

}  // namespace pgti::data
