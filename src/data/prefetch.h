// Background batch prefetching (paper §7 future work: "explore data
// distribution strategies ... and implement prefetching").
//
// A PrefetchLoader drives an inner DataLoader on a worker thread and
// buffers up to `depth` assembled batches in a ring of depth+1 slots,
// overlapping batch staging (and any modeled PCIe/store traffic it
// triggers) with model compute.  depth = 1 is classic double
// buffering; deeper rings let the worker run further ahead, which —
// combined with the loader's own depth-N lookahead announcements —
// pushes the exposed share of modeled fetch time toward zero.  The
// batch sequence is identical to the inner loader's at every depth.
#pragma once

#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataloader.h"
#include "runtime/arena.h"

namespace pgti::data {

class PrefetchLoader {
 public:
  /// Takes ownership semantics over loader's iteration: callers must
  /// not call loader.next() directly while prefetching.  `depth` >= 1
  /// is the number of assembled batches the worker may run ahead of
  /// the consumer (ring of depth+1 slots).
  explicit PrefetchLoader(DataLoader& loader, int depth = 1);
  ~PrefetchLoader();

  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Starts (re)filling from the given epoch.  `max_batches` bounds
  /// how many batches the epoch assembles (-1 = the whole epoch);
  /// callers that consume a truncated epoch (steps_per_epoch caps)
  /// pass the cap so the worker goes quiescent — and stops issuing
  /// lookahead announcements — once the last consumable batch is
  /// staged.  Forwarded to the inner loader via set_max_batches (the
  /// single capping mechanism).
  void start_epoch(int epoch, std::int64_t max_batches = -1);

  /// Delivers the next prefetched batch; returns false at epoch end.
  /// The returned tensors are deep copies owned by the PrefetchLoader
  /// and stay valid until the slot cycles back around (depth+1 calls).
  /// An exception thrown by the inner loader on the worker thread
  /// (e.g. a staging failure surfaced by the source) is rethrown here,
  /// on the real consumer; restarting via start_epoch discards a
  /// pending error (explicit recovery).
  bool next(Batch& out);

  int depth() const noexcept { return static_cast<int>(slots_.size()) - 1; }

  /// Pool demand recorded by the worker's staging arena (planning
  /// high-water, pool hits): the worker thread runs under an
  /// ArenaScope, so after the first epoch plans the ring's buffer
  /// shapes, steady-state staging allocates nothing from the heap.
  runtime::ArenaStats arena_stats() const { return arena_.stats(); }

 private:
  void worker_loop();
  static void deep_copy(const Batch& src, Batch& dst);
  int advance(int idx) const noexcept {
    return (idx + 1) % static_cast<int>(slots_.size());
  }

  DataLoader* inner_;
  // The worker's staging pool (declared before worker_ so it outlives
  // the thread's scope on every destruction path).  Ring slots and the
  // inner loader's staging buffers are allocated on the worker thread,
  // so routing that thread through an arena closes the last scope-less
  // allocation path of a prefetched pipeline: the first epoch plans,
  // later epochs stage alloc-free.  Slot tensors escape to the
  // consumer as views; blocks recycle when slots cycle or the ring
  // dies, never mid-lease.
  runtime::TensorArena arena_;
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Batch> slots_;     ///< ring of depth+1 reusable batches
  std::vector<char> slot_full_;  ///< parallel to slots_
  bool epoch_done_ = true;
  bool fill_requested_ = false;
  bool abort_ = false;
  bool stop_ = false;
  int produce_idx_ = 0;
  int consume_idx_ = 0;
  int in_use_idx_ = -1;  ///< slot handed to the caller, pinned until next()
  int epoch_ = 0;
  std::int64_t max_batches_ = -1;  ///< forwarded to the inner loader (-1 = none)
  // Consumer-paced announcements (on when the inner loader announces
  // lookahead): the worker may stage batch k only once k < depth +
  // deliveries, so at most `depth` announced batches are ever in
  // flight ahead of consumption — the depth sweep stays a real sweep
  // instead of saturating at the epoch-start announcement burst.
  bool paced_ = false;
  std::int64_t produced_ = 0;         ///< batches the worker has staged
  std::int64_t announce_budget_ = 0;  ///< depth + deliveries so far
  std::exception_ptr worker_error_;  ///< inner-loader throw, rethrown in next()
};

}  // namespace pgti::data
