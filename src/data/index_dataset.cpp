#include "data/index_dataset.h"

#include <stdexcept>

#include "runtime/thread_pool.h"

namespace pgti::data {
namespace {

void normalize_metric(Tensor& t, const StandardScaler& sc, std::int64_t features) {
  float* p = t.data();
  const std::int64_t rows = t.numel() / features;
  parallel_for(0, rows, 16384, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      p[i * features] = sc.transform(p[i * features]);
    }
  });
}

}  // namespace

IndexDataset::IndexDataset(const Tensor& raw, const DatasetSpec& spec) : spec_(spec) {
  Tensor stage1 = add_time_feature(raw, spec, kHostSpace);
  scaler_ = fit_scaler(stage1, spec);
  init_from_stage1(std::move(stage1), spec);
}

IndexDataset::IndexDataset(const Tensor& raw, const DatasetSpec& spec, SimDevice& device)
    : spec_(spec) {
  // Preprocessing happens on-device after a single upfront transfer:
  // the raw series crosses PCIe once, then the time feature and the
  // standardization are computed in device memory (paper §4.1,
  // "GPU-index-batching ... consolidates CPU-to-GPU memory transfers
  // to a single operation at the beginning of preprocessing").
  Tensor raw_dev = device.upload(raw.contiguous());
  Tensor stage1 = add_time_feature(raw_dev, spec, device.space());
  scaler_ = fit_scaler(stage1, spec);
  init_from_stage1(std::move(stage1), spec);
}

IndexDataset::IndexDataset(const Tensor& raw_partition, const DatasetSpec& spec,
                           std::int64_t entry_begin, const StandardScaler& scaler,
                           std::int64_t snapshot_begin, std::int64_t snapshot_end)
    : spec_(spec), scaler_(scaler), entry_offset_(entry_begin) {
  Tensor stage1 = add_time_feature(raw_partition, spec, kHostSpace);
  // Time feature must reflect *global* time, not partition-local time;
  // recompute it with the global offset.
  if (spec.features >= 2) {
    float* p = stage1.data();
    const std::int64_t n = stage1.size(1);
    const std::int64_t f = stage1.size(2);
    for (std::int64_t t = 0; t < stage1.size(0); ++t) {
      const float tod = static_cast<float>((t + entry_begin) % spec.steps_per_period) /
                        static_cast<float>(spec.steps_per_period);
      for (std::int64_t nn = 0; nn < n; ++nn) p[(t * n + nn) * f + 1] = tod;
    }
  }
  data_ = std::move(stage1);
  normalize_metric(data_, scaler_, data_.size(2));
  starts_.reserve(static_cast<std::size_t>(snapshot_end - snapshot_begin));
  for (std::int64_t s = snapshot_begin; s < snapshot_end; ++s) starts_.push_back(s);
  splits_ = split_ranges(spec.num_snapshots());
  track_index_array();
}

void IndexDataset::init_from_stage1(Tensor stage1, const DatasetSpec& spec) {
  const std::int64_t s = spec.num_snapshots();
  if (s <= 0) throw std::invalid_argument("IndexDataset: series too short for horizon");
  data_ = std::move(stage1);
  normalize_metric(data_, scaler_, data_.size(2));
  starts_.reserve(static_cast<std::size_t>(s));
  for (std::int64_t i = 0; i < s; ++i) starts_.push_back(i);
  splits_ = split_ranges(s);
  track_index_array();
}

void IndexDataset::track_index_array() {
  tracked_index_bytes_ = starts_.size() * sizeof(std::int64_t);
  MemoryTracker::instance().on_alloc(data_.space(), tracked_index_bytes_);
}

IndexDataset::~IndexDataset() {
  if (tracked_index_bytes_ != 0 && data_.defined()) {
    MemoryTracker::instance().on_free(data_.space(), tracked_index_bytes_);
  }
}

std::pair<Tensor, Tensor> IndexDataset::get(std::int64_t i) const {
  if (i < 0 || i >= num_snapshots()) {
    throw std::out_of_range("IndexDataset::get: snapshot out of range");
  }
  const std::int64_t start = starts_[static_cast<std::size_t>(i)] - entry_offset_;
  const std::int64_t h = spec_.horizon;
  if (start < 0 || start + 2 * h > data_.size(0)) {
    throw std::out_of_range("IndexDataset::get: snapshot not resident in this partition");
  }
  return {data_.slice(0, start, h), data_.slice(0, start + h, h)};
}

}  // namespace pgti::data
