// Standard ST-GNN preprocessing (paper Algorithm 1) — the baseline.
//
// This is the memory-hungry path PGT-I replaces: sliding-window
// analysis materializes every overlapping (x, y) snapshot, duplicating
// each raw value up to 2*horizon times (paper Eq. 1, Fig. 3).  The
// implementation deliberately mirrors the open-source reference
// (list-of-windows then stack), including its transient peak of
// roughly twice the final size, because paper Fig. 2/6 measure exactly
// that spike.  PaddedStandardDataset adds the original DCRNN
// dataloader's extra batch-aligned copies (paper §3.2, Table 2).
#pragma once

#include <utility>

#include "data/dataset_spec.h"
#include "tensor/tensor.h"

namespace pgti::data {

/// Z-score normalization statistics (computed on the training range of
/// the metric feature; the time-of-day feature is already in [0, 1)).
struct StandardScaler {
  double mean = 0.0;
  double stddev = 1.0;

  float transform(float v) const {
    return static_cast<float>((static_cast<double>(v) - mean) / stddev);
  }
  float inverse(float v) const {
    return static_cast<float>(static_cast<double>(v) * stddev + mean);
  }
};

/// Snapshot index ranges of the 70/10/20 train/val/test split.
struct SplitRanges {
  std::int64_t train_begin = 0, train_end = 0;
  std::int64_t val_begin = 0, val_end = 0;
  std::int64_t test_begin = 0, test_end = 0;
};
SplitRanges split_ranges(std::int64_t num_snapshots);

/// Stage 1 of Fig. 3: appends the normalized time-of-day feature when
/// spec.features == 2.  raw is [T, N, 1]; result is [T, N, features].
Tensor add_time_feature(const Tensor& raw, const DatasetSpec& spec,
                        MemorySpaceId space = kHostSpace);

/// Scaler statistics from the raw entries covered by training windows
/// (entries [0, train_end + horizon), metric feature only).  Both the
/// standard and the index path use this definition so that their
/// batches are bit-identical — the basis of the paper's "identical
/// accuracy" claim.
StandardScaler fit_scaler(const Tensor& stage1, const DatasetSpec& spec);

/// Fully materialized dataset (Algorithm 1 output).
class StandardDataset {
 public:
  /// Runs Algorithm 1 on raw [T, N, 1] in `space`.
  StandardDataset(const Tensor& raw, const DatasetSpec& spec,
                  MemorySpaceId space = kHostSpace);

  std::int64_t num_snapshots() const { return x_.size(0); }
  /// Views into the materialized x/y arrays: each [horizon, N, F].
  std::pair<Tensor, Tensor> get(std::int64_t i) const;

  const Tensor& x() const noexcept { return x_; }
  const Tensor& y() const noexcept { return y_; }
  const StandardScaler& scaler() const noexcept { return scaler_; }
  const SplitRanges& splits() const noexcept { return splits_; }
  const DatasetSpec& spec() const noexcept { return spec_; }

 private:
  DatasetSpec spec_;
  Tensor x_;  // [S, horizon, N, F]
  Tensor y_;  // [S, horizon, N, F]
  StandardScaler scaler_;
  SplitRanges splits_;
};

/// The original DCRNN dataloader kept, in addition to the plain x/y
/// arrays, copies padded to a multiple of the batch size (paper §3.2:
/// "stores extra copies of the dataset — padded to align with the
/// batch size — in addition to the original data").
class PaddedStandardDataset {
 public:
  PaddedStandardDataset(const Tensor& raw, const DatasetSpec& spec,
                        MemorySpaceId space = kHostSpace);

  std::int64_t num_snapshots() const { return base_.num_snapshots(); }
  std::int64_t padded_snapshots() const { return padded_x_.size(0); }
  std::pair<Tensor, Tensor> get(std::int64_t i) const;

  const StandardDataset& base() const noexcept { return base_; }
  const StandardScaler& scaler() const noexcept { return base_.scaler(); }
  const SplitRanges& splits() const noexcept { return base_.splits(); }

 private:
  StandardDataset base_;
  Tensor padded_x_;
  Tensor padded_y_;
};

}  // namespace pgti::data
