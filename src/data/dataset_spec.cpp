#include "data/dataset_spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pgti::data {

DatasetSpec DatasetSpec::scaled(double factor) const {
  if (factor < 1.0) throw std::invalid_argument("DatasetSpec::scaled: factor >= 1");
  DatasetSpec s = *this;
  s.nodes = std::max<std::int64_t>(8, static_cast<std::int64_t>(
                                          std::llround(static_cast<double>(nodes) / factor)));
  s.entries = std::max<std::int64_t>(8 * horizon,
                                     static_cast<std::int64_t>(std::llround(
                                         static_cast<double>(entries) / factor)));
  if (factor > 1.0) s.name = name + "-sim/" + std::to_string(static_cast<int>(factor));
  return s;
}

std::vector<DatasetSpec> paper_catalog() {
  std::vector<DatasetSpec> specs;
  specs.push_back(DatasetSpec{"Chickenpox-Hungary", DatasetKind::kChickenpoxHungary,
                              Domain::kEpidemiological,
                              /*nodes=*/20, /*entries=*/522, /*raw_features=*/1,
                              /*features=*/1, /*horizon=*/4, /*batch_size=*/4,
                              /*steps_per_period=*/52});
  specs.push_back(DatasetSpec{"Windmill-Large", DatasetKind::kWindmillLarge,
                              Domain::kEnergy,
                              /*nodes=*/319, /*entries=*/17472, /*raw_features=*/1,
                              /*features=*/1, /*horizon=*/8, /*batch_size=*/64,
                              /*steps_per_period=*/24});
  specs.push_back(DatasetSpec{"METR-LA", DatasetKind::kMetrLa, Domain::kTraffic,
                              /*nodes=*/207, /*entries=*/34272, /*raw_features=*/1,
                              /*features=*/2, /*horizon=*/12, /*batch_size=*/64,
                              /*steps_per_period=*/288});
  specs.push_back(DatasetSpec{"PeMS-BAY", DatasetKind::kPemsBay, Domain::kTraffic,
                              /*nodes=*/325, /*entries=*/52105, /*raw_features=*/1,
                              /*features=*/2, /*horizon=*/12, /*batch_size=*/64,
                              /*steps_per_period=*/288});
  specs.push_back(DatasetSpec{"PeMS-All-LA", DatasetKind::kPemsAllLa, Domain::kTraffic,
                              /*nodes=*/2716, /*entries=*/105120, /*raw_features=*/1,
                              /*features=*/2, /*horizon=*/12, /*batch_size=*/32,
                              /*steps_per_period=*/288});
  specs.push_back(DatasetSpec{"PeMS", DatasetKind::kPems, Domain::kTraffic,
                              /*nodes=*/11126, /*entries=*/105120, /*raw_features=*/1,
                              /*features=*/2, /*horizon=*/12, /*batch_size=*/64,
                              /*steps_per_period=*/288});
  return specs;
}

DatasetSpec spec_for(DatasetKind kind) {
  for (DatasetSpec& s : paper_catalog()) {
    if (s.kind == kind) return s;
  }
  throw std::invalid_argument("spec_for: unknown dataset kind");
}

double raw_bytes(const DatasetSpec& spec, double b) {
  return static_cast<double>(spec.entries) * static_cast<double>(spec.nodes) *
         static_cast<double>(spec.raw_features) * b;
}

double stage1_bytes(const DatasetSpec& spec, double b) {
  return static_cast<double>(spec.entries) * static_cast<double>(spec.nodes) *
         static_cast<double>(spec.features) * b;
}

double stage2_bytes(const DatasetSpec& spec, double b) {
  return static_cast<double>(spec.num_snapshots()) * static_cast<double>(spec.horizon) *
         static_cast<double>(spec.nodes) * static_cast<double>(spec.features) * b;
}

double standard_preprocessed_bytes(const DatasetSpec& spec, double b) {
  return 2.0 * stage2_bytes(spec, b);
}

double index_batching_bytes(const DatasetSpec& spec, double b) {
  return stage1_bytes(spec, b) + static_cast<double>(spec.num_snapshots()) * b;
}

GrowthStages growth_stages(const DatasetSpec& spec, double b) {
  GrowthStages g;
  g.raw = raw_bytes(spec, b);
  g.with_time_feature = stage1_bytes(spec, b);
  g.after_swa = stage2_bytes(spec, b);
  g.after_xy_split = standard_preprocessed_bytes(spec, b);
  return g;
}

}  // namespace pgti::data
