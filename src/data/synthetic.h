// Synthetic spatiotemporal signal generators.
//
// The paper evaluates on real sensor feeds (Caltrans PeMS traffic
// speeds, Hungarian chickenpox counts, windmill power output).  Those
// files are not available offline, so per DESIGN.md we generate
// signals with the same shape and the statistical structure the models
// rely on: diurnal/weekly periodicity, spatial correlation along graph
// edges, localized shocks (congestion / outbreaks / weather fronts)
// and sensor noise.  Generators are deterministic in the seed.
#pragma once

#include "data/dataset_spec.h"
#include "graph/spatial.h"
#include "tensor/tensor.h"

namespace pgti::data {

/// Generates a raw signal tensor [entries, nodes, 1] for `spec` whose
/// spatial correlation follows `net`'s adjacency.
Tensor generate_signal(const DatasetSpec& spec, const SensorNetwork& net,
                       std::uint64_t seed);

/// Builds a sensor network sized for `spec` (deterministic in seed).
SensorNetwork network_for(const DatasetSpec& spec, std::uint64_t seed = 7);

/// Zeroes out stretches of readings to mimic PeMS sensor dropouts
/// (loop detectors go dark for hours).  `missing_fraction` is the
/// expected fraction of zeroed entries; dropouts come in runs of
/// `mean_run` consecutive steps per sensor.  Pair with
/// ag::masked_mae_loss(null_value=0) during training.
void inject_missing_data(Tensor& raw, double missing_fraction, std::int64_t mean_run,
                         std::uint64_t seed);

}  // namespace pgti::data
