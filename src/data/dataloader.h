// Batch assembly and shuffling strategies.
//
// The paper distinguishes three shuffles (§4.2, §5.4, Table 5):
//  * global      — all workers draw the SAME epoch permutation of the
//                  full training range (seeded identically) and take
//                  disjoint contiguous chunks; with index-batching this
//                  is communication-free because every worker holds the
//                  whole (small) dataset.
//  * local       — each worker shuffles only within its fixed partition.
//  * batch-level — fixed partition, fixed batch contents; only the
//                  ORDER of batches is shuffled (the generalized
//                  larger-than-memory variant; improves locality).
//
// DataLoader stages snapshots into preallocated contiguous batch
// buffers.  When the model computes on a simulated device and the data
// lives on the host, every batch crosses PCIe (standard- and
// CPU-index-batching); when the data is device-resident
// (GPU-index-batching), assembly is device-local and the transfer
// ledger stays at the single upfront upload — exactly the effect
// measured in paper Table 4.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "data/index_dataset.h"
#include "data/preprocess.h"
#include "device/device.h"

namespace pgti::data {

/// Uniform view over the dataset representations (and, via RankSource
/// in snapshot_provider.h, over rank-partitioned remote stores).
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  virtual std::pair<Tensor, Tensor> get(std::int64_t i) const = 0;
  /// Called by the loader once per batch with the snapshot ids about
  /// to be staged, before any get() for them.  Sources backed by
  /// remote storage override it to fetch in consolidated requests;
  /// purely local sources ignore it.
  virtual void prefetch_batch(const std::vector<std::int64_t>& ids) const {
    (void)ids;
  }
  /// Releases announced-but-unconsumed prefetches (the loader calls it
  /// at epoch boundaries when lookahead announcements may have outrun
  /// consumption).  No-op for purely local sources.
  virtual void abandon_prefetches() const {}
  /// Announces the epoch's full consumption order (called once per
  /// start_epoch when lookahead is on, before any prefetch_batch).
  /// Schedule-aware caches use it to pick eviction victims: an entry
  /// scheduled for a nearer-future batch outlives already-consumed
  /// ones.  No-op for purely local sources.
  virtual void announce_schedule(const std::vector<std::int64_t>& ids) const {
    (void)ids;
  }
  virtual std::int64_t num_snapshots() const = 0;
  virtual MemorySpaceId space() const = 0;
  virtual const StandardScaler& scaler() const = 0;
  virtual const SplitRanges& splits() const = 0;
  virtual const DatasetSpec& spec() const = 0;
};

class IndexSource final : public SnapshotSource {
 public:
  explicit IndexSource(const IndexDataset& d) : d_(&d) {}
  std::pair<Tensor, Tensor> get(std::int64_t i) const override { return d_->get(i); }
  std::int64_t num_snapshots() const override { return d_->num_snapshots(); }
  MemorySpaceId space() const override { return d_->space(); }
  const StandardScaler& scaler() const override { return d_->scaler(); }
  const SplitRanges& splits() const override { return d_->splits(); }
  const DatasetSpec& spec() const override { return d_->spec(); }

 private:
  const IndexDataset* d_;
};

class StandardSource final : public SnapshotSource {
 public:
  explicit StandardSource(const StandardDataset& d) : d_(&d) {}
  std::pair<Tensor, Tensor> get(std::int64_t i) const override { return d_->get(i); }
  std::int64_t num_snapshots() const override { return d_->num_snapshots(); }
  MemorySpaceId space() const override { return d_->x().space(); }
  const StandardScaler& scaler() const override { return d_->scaler(); }
  const SplitRanges& splits() const override { return d_->splits(); }
  const DatasetSpec& spec() const override { return d_->spec(); }

 private:
  const StandardDataset* d_;
};

class PaddedSource final : public SnapshotSource {
 public:
  explicit PaddedSource(const PaddedStandardDataset& d) : d_(&d) {}
  std::pair<Tensor, Tensor> get(std::int64_t i) const override { return d_->get(i); }
  std::int64_t num_snapshots() const override { return d_->num_snapshots(); }
  MemorySpaceId space() const override { return d_->base().x().space(); }
  const StandardScaler& scaler() const override { return d_->scaler(); }
  const SplitRanges& splits() const override { return d_->splits(); }
  const DatasetSpec& spec() const override { return d_->base().spec(); }

 private:
  const PaddedStandardDataset* d_;
};

enum class ShuffleMode { kNone, kGlobal, kLocalPartition, kBatchLevel };

struct SamplerOptions {
  ShuffleMode mode = ShuffleMode::kGlobal;
  int rank = 0;
  int world = 1;
  std::uint64_t seed = 1;
  std::int64_t batch_size = 64;  ///< used by kBatchLevel grouping
};

/// Snapshot indices (within [range_begin, range_end)) that `rank`
/// processes in `epoch`, in processing order.  For kGlobal all ranks
/// must pass the same seed; the permutation is identical everywhere
/// and rank r takes the r-th contiguous chunk (communication-free
/// global shuffling, paper §4.2).
std::vector<std::int64_t> sample_epoch(std::int64_t range_begin, std::int64_t range_end,
                                       const SamplerOptions& options, int epoch);

/// One staged batch.  Tensors are views of the loader's reusable
/// buffers, valid until the next call to next().
struct Batch {
  Tensor x;  ///< [b, horizon, N, F] in the compute space
  Tensor y;  ///< [b, horizon, N, 1] metric targets in the compute space
  std::int64_t size = 0;
  /// Snapshot ids staged into this batch (distributed stores use these
  /// to account remote fetches).
  std::vector<std::int64_t> indices;
  /// Modeled PCIe seconds this batch's staging incurred (nonzero only
  /// when host-resident data is uploaded to a device) and the moment
  /// staging began.  When a prefetch pipeline stages batches ahead of
  /// consumption, the EpochEngine uses the pair to split the modeled
  /// transfer leg into overlapped (hidden behind the wall window since
  /// staging began) and exposed seconds.
  double modeled_staging_seconds = 0.0;
  std::chrono::steady_clock::time_point staged_at{};
};

struct LoaderOptions {
  std::int64_t batch_size = 64;
  SamplerOptions sampler;
  bool drop_last = true;
  /// When set, the model computes on this device: batches are staged
  /// there (incurring PCIe transfers unless the source data already
  /// lives on the device).
  SimDevice* device = nullptr;
  /// Batches of lookahead announced to the source (0 = announce each
  /// batch right before staging it).  With depth N > 0 the loader
  /// announces the epoch schedule plus batches 0..N-1 at start_epoch
  /// and batch k+N while batch k stages, so an async-prefetching
  /// source keeps N batches in flight in the background while the
  /// current batch computes; epoch boundaries abandon announced
  /// batches that were never consumed.
  int prefetch_lookahead = 0;
};

class DataLoader {
 public:
  /// Iterates snapshots [range_begin, range_end) of `source` (one of
  /// the split ranges).  `source` must outlive the loader.
  DataLoader(const SnapshotSource& source, const LoaderOptions& options,
             std::int64_t range_begin, std::int64_t range_end);

  /// Draws this epoch's sample order.
  void start_epoch(int epoch);

  /// Stages the next batch; returns false at epoch end.
  bool next(Batch& out);

  /// Caps batches per epoch (-1 = none).  Callers that stop consuming
  /// early (DistTrainer's synchronized steps_per_epoch) set this so
  /// next() — and, crucially, the lookahead announcements — stop at
  /// the cap instead of announcing (and physically staging) a batch
  /// nobody will consume.  Does not affect batches_per_epoch().
  void set_max_batches(std::int64_t max_batches) { max_batches_ = max_batches; }

  int prefetch_lookahead() const noexcept { return options_.prefetch_lookahead; }

  /// Consumer-paced announcements: when on, next() stops announcing
  /// batch k+N at stage time — the *consumer* announces it by calling
  /// announce_next_batch() after the k-th delivery.  Stage-time
  /// announcing measures lookahead in *staged* batches, so a prefetch
  /// worker running ahead of deliveries collapses every announcement
  /// into the first compute window and the depth sweep saturates near
  /// depth 2; delivery pacing keeps exactly N batches in flight ahead
  /// of consumption.  PrefetchLoader turns this on for its inner
  /// loader; synchronously driven loaders keep stage-time announcing
  /// (there, staging IS consumption).
  void set_paced_announcements(bool on) noexcept { paced_announcements_ = on; }

  /// Announces the next not-yet-announced batch of the current epoch
  /// (no-op when the schedule is exhausted, lookahead is 0, or pacing
  /// is off).  Called by the prefetch consumer once per delivery; safe
  /// concurrently with the worker staging batches, because with pacing
  /// on the staging path never touches announcement state.
  void announce_next_batch();

  std::int64_t batches_per_epoch() const;
  std::int64_t samples_per_epoch() const;

 private:
  void ensure_buffers(MemorySpaceId space, Tensor& x, Tensor& y) const;
  /// Fills `out` with the snapshot ids of the batch starting at
  /// `cursor` in this epoch's order (empty at epoch end, past the
  /// max-batches cap, or for a short tail under drop_last).
  void batch_ids_at(std::size_t cursor, std::vector<std::int64_t>& out) const;
  /// Appends every consumable batch of `order` (respecting drop_last
  /// and the max-batches cap, both per epoch) to `out`.
  void append_epoch_batches(const std::vector<std::int64_t>& order,
                            std::vector<std::int64_t>& out) const;

  const SnapshotSource* source_;
  LoaderOptions options_;
  std::int64_t range_begin_;
  std::int64_t range_end_;
  std::vector<std::int64_t> order_;
  std::size_t cursor_ = 0;
  bool paced_announcements_ = false;
  std::size_t announce_cursor_ = 0;  ///< next unannounced batch (paced mode)
  std::int64_t max_batches_ = -1;
  mutable std::vector<std::int64_t> lookahead_ids_;  // reusable scratch
  mutable std::vector<std::int64_t> schedule_ids_;   // reusable scratch

  // Reusable staging buffers (allocated lazily to the max batch size).
  mutable Tensor host_x_, host_y_;   // host staging
  mutable Tensor dev_x_, dev_y_;     // device-resident batch
};

}  // namespace pgti::data
