#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace pgti::data {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Localized multiplicative shock (congestion event / outbreak):
/// a set of (node, start, duration, magnitude) pulses smoothed both in
/// time (triangular ramp) and space (one diffusion pass handled by the
/// caller's smoothing).
struct Shock {
  std::int64_t node;
  std::int64_t start;
  std::int64_t duration;
  float magnitude;
};

std::vector<Shock> make_shocks(const DatasetSpec& spec, Rng& rng, double rate,
                               float magnitude_lo, float magnitude_hi) {
  const auto count = static_cast<std::int64_t>(
      rate * static_cast<double>(spec.entries) / static_cast<double>(spec.steps_per_period) *
      static_cast<double>(spec.nodes) / 32.0);
  std::vector<Shock> shocks;
  shocks.reserve(static_cast<std::size_t>(std::max<std::int64_t>(count, 1)));
  for (std::int64_t i = 0; i < std::max<std::int64_t>(count, 1); ++i) {
    Shock s;
    s.node = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(spec.nodes)));
    s.start = static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(spec.entries)));
    s.duration = 4 + static_cast<std::int64_t>(rng.uniform_int(
                         static_cast<std::uint64_t>(spec.steps_per_period / 4 + 1)));
    s.magnitude = static_cast<float>(rng.uniform(magnitude_lo, magnitude_hi));
    shocks.push_back(s);
  }
  return shocks;
}

// One spatial smoothing pass: signal <- (1-alpha)*signal + alpha * P signal,
// applied per time step, where P is the random-walk transition matrix.
void smooth_in_space(Tensor& data, const Csr& transition, float alpha) {
  const std::int64_t t_steps = data.size(0);
  for (std::int64_t t = 0; t < t_steps; ++t) {
    Tensor frame = data.select(0, t).contiguous();  // [N, 1]
    Tensor mixed = transition.spmm(frame);
    float* pd = data.select(0, t).data();  // contiguous (leading slice)
    const float* pf = frame.data();
    const float* pm = mixed.data();
    for (std::int64_t i = 0; i < frame.numel(); ++i) {
      pd[i] = (1.0f - alpha) * pf[i] + alpha * pm[i];
    }
  }
}

Tensor generate_traffic(const DatasetSpec& spec, const SensorNetwork& net,
                        std::uint64_t seed) {
  Rng rng(seed);
  Tensor data = Tensor::empty({spec.entries, spec.nodes, 1});
  // Per-node characteristics.
  std::vector<float> base(static_cast<std::size_t>(spec.nodes));
  std::vector<float> phase(static_cast<std::size_t>(spec.nodes));
  std::vector<float> amp(static_cast<std::size_t>(spec.nodes));
  for (std::int64_t nn = 0; nn < spec.nodes; ++nn) {
    base[static_cast<std::size_t>(nn)] = static_cast<float>(rng.uniform(55.0, 70.0));
    phase[static_cast<std::size_t>(nn)] = static_cast<float>(rng.uniform(0.0, kTwoPi));
    amp[static_cast<std::size_t>(nn)] = static_cast<float>(rng.uniform(6.0, 14.0));
  }
  const auto shocks = make_shocks(spec, rng, /*rate=*/3.0, 10.0f, 35.0f);

  float* pd = data.data();
  const double steps_per_day = static_cast<double>(spec.steps_per_period);
  for (std::int64_t t = 0; t < spec.entries; ++t) {
    const double tod = static_cast<double>(t % spec.steps_per_period) / steps_per_day;
    const double dow = static_cast<double>((t / spec.steps_per_period) % 7) / 7.0;
    // Rush-hour dips morning and evening; weekends lighter.
    const double diurnal = std::sin(kTwoPi * tod) + 0.5 * std::sin(2.0 * kTwoPi * tod);
    const double weekend = dow >= 5.0 / 7.0 ? 4.0 : 0.0;
    for (std::int64_t nn = 0; nn < spec.nodes; ++nn) {
      const auto ni = static_cast<std::size_t>(nn);
      double v = base[ni] - amp[ni] * 0.5 *
                     (diurnal * std::cos(phase[ni]) + std::sin(kTwoPi * tod + phase[ni])) +
                 weekend + rng.normal(0.0, 1.5);
      pd[(t * spec.nodes + nn)] = static_cast<float>(std::clamp(v, 3.0, 85.0));
    }
  }
  // Congestion shocks with triangular temporal profile.
  for (const Shock& s : shocks) {
    const std::int64_t end = std::min(s.start + s.duration, spec.entries);
    for (std::int64_t t = s.start; t < end; ++t) {
      const float frac = static_cast<float>(t - s.start) / static_cast<float>(s.duration);
      const float ramp = 1.0f - std::fabs(2.0f * frac - 1.0f);
      float& v = pd[t * spec.nodes + s.node];
      v = std::max(3.0f, v - s.magnitude * ramp);
    }
  }
  smooth_in_space(data, net.adjacency.row_normalized(), 0.35f);
  return data;
}

Tensor generate_epidemiological(const DatasetSpec& spec, const SensorNetwork& net,
                                std::uint64_t seed) {
  Rng rng(seed);
  Tensor data = Tensor::empty({spec.entries, spec.nodes, 1});
  std::vector<float> level(static_cast<std::size_t>(spec.nodes));
  for (auto& l : level) l = static_cast<float>(rng.uniform(2.0, 20.0));
  const auto shocks = make_shocks(spec, rng, /*rate=*/4.0, 8.0f, 40.0f);

  float* pd = data.data();
  for (std::int64_t t = 0; t < spec.entries; ++t) {
    const double season =
        1.0 + 0.6 * std::sin(kTwoPi * static_cast<double>(t % spec.steps_per_period) /
                             static_cast<double>(spec.steps_per_period));
    for (std::int64_t nn = 0; nn < spec.nodes; ++nn) {
      const auto ni = static_cast<std::size_t>(nn);
      // AR(1) around a seasonal mean with Poisson-like noise.
      level[ni] = 0.85f * level[ni] +
                  0.15f * static_cast<float>(10.0 * season) +
                  static_cast<float>(rng.normal(0.0, 1.2));
      pd[t * spec.nodes + nn] = std::max(0.0f, level[ni]);
    }
  }
  for (const Shock& s : shocks) {  // outbreaks
    const std::int64_t end = std::min(s.start + s.duration, spec.entries);
    for (std::int64_t t = s.start; t < end; ++t) {
      const float frac = static_cast<float>(t - s.start) / static_cast<float>(s.duration);
      pd[t * spec.nodes + s.node] += s.magnitude * (1.0f - std::fabs(2.0f * frac - 1.0f));
    }
  }
  smooth_in_space(data, net.adjacency.row_normalized(), 0.25f);
  return data;
}

Tensor generate_energy(const DatasetSpec& spec, const SensorNetwork& net,
                       std::uint64_t seed) {
  Rng rng(seed);
  Tensor data = Tensor::empty({spec.entries, spec.nodes, 1});
  std::vector<float> wind(static_cast<std::size_t>(spec.nodes));
  for (auto& w : wind) w = static_cast<float>(rng.uniform(0.2, 0.8));

  float* pd = data.data();
  for (std::int64_t t = 0; t < spec.entries; ++t) {
    const double diurnal =
        0.15 * std::sin(kTwoPi * static_cast<double>(t % spec.steps_per_period) /
                        static_cast<double>(spec.steps_per_period));
    for (std::int64_t nn = 0; nn < spec.nodes; ++nn) {
      const auto ni = static_cast<std::size_t>(nn);
      wind[ni] = std::clamp(0.9f * wind[ni] + static_cast<float>(rng.normal(0.05, 0.08)),
                            0.0f, 1.2f);
      pd[t * spec.nodes + nn] =
          std::max(0.0f, wind[ni] + static_cast<float>(diurnal) +
                             static_cast<float>(rng.normal(0.0, 0.03)));
    }
  }
  smooth_in_space(data, net.adjacency.row_normalized(), 0.3f);
  return data;
}

}  // namespace

Tensor generate_signal(const DatasetSpec& spec, const SensorNetwork& net,
                       std::uint64_t seed) {
  switch (spec.domain) {
    case Domain::kTraffic: return generate_traffic(spec, net, seed);
    case Domain::kEpidemiological: return generate_epidemiological(spec, net, seed);
    case Domain::kEnergy: return generate_energy(spec, net, seed);
  }
  throw std::invalid_argument("generate_signal: unknown domain");
}

SensorNetwork network_for(const DatasetSpec& spec, std::uint64_t seed) {
  SensorNetworkOptions opt;
  opt.num_nodes = spec.nodes;
  opt.k_neighbors = static_cast<int>(std::min<std::int64_t>(8, spec.nodes - 1));
  opt.seed = seed;
  return build_sensor_network(opt);
}

void inject_missing_data(Tensor& raw, double missing_fraction, std::int64_t mean_run,
                         std::uint64_t seed) {
  if (raw.dim() != 3) throw std::invalid_argument("inject_missing_data: raw [T, N, F]");
  if (missing_fraction <= 0.0) return;
  Rng rng(seed);
  const std::int64_t t_steps = raw.size(0);
  const std::int64_t n = raw.size(1);
  const std::int64_t f = raw.size(2);
  float* p = raw.data();
  // Expected dropout runs per sensor so that runs * mean_run covers
  // missing_fraction of the series.
  const double runs_per_sensor =
      missing_fraction * static_cast<double>(t_steps) / static_cast<double>(mean_run);
  for (std::int64_t nn = 0; nn < n; ++nn) {
    double budget = runs_per_sensor;
    while (budget > 0.0) {
      if (budget < 1.0 && rng.uniform() > budget) break;
      budget -= 1.0;
      const auto start = static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(t_steps)));
      const auto run = 1 + static_cast<std::int64_t>(rng.uniform_int(
                               static_cast<std::uint64_t>(2 * mean_run)));
      for (std::int64_t t = start; t < std::min(start + run, t_steps); ++t) {
        for (std::int64_t ff = 0; ff < f; ++ff) p[(t * n + nn) * f + ff] = 0.0f;
      }
    }
  }
}

}  // namespace pgti::data
