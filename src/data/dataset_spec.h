// Dataset catalog and the paper's memory-growth formulas.
//
// Table 1 of the paper lists six benchmark datasets; Eq. (1) gives the
// bytes materialized by standard sliding-window preprocessing and
// Eq. (2) the bytes held by index-batching.  We reproduce both
// analytically at full scale (the numbers match the paper's published
// sizes; see tests/dataset_spec_test.cpp) and run measured experiments
// on scaled-down instances produced by DatasetSpec::scaled().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pgti::data {

enum class Domain { kEpidemiological, kEnergy, kTraffic };

enum class DatasetKind {
  kChickenpoxHungary,
  kWindmillLarge,
  kMetrLa,
  kPemsBay,
  kPemsAllLa,
  kPems,
};

struct DatasetSpec {
  std::string name;
  DatasetKind kind = DatasetKind::kMetrLa;
  Domain domain = Domain::kTraffic;
  std::int64_t nodes = 0;    ///< graph nodes (sensors/regions/turbines)
  std::int64_t entries = 0;  ///< time steps in the raw series
  std::int64_t raw_features = 1;  ///< features in the raw file (the metric)
  std::int64_t features = 1;  ///< features after stage 1 (time-of-day added for traffic)
  std::int64_t horizon = 12;  ///< window length == prediction steps
  std::int64_t batch_size = 64;
  std::int64_t steps_per_period = 288;  ///< time steps per diurnal/seasonal cycle

  /// Number of sliding-window snapshots: entries - (2*horizon - 1).
  std::int64_t num_snapshots() const { return entries - (2 * horizon - 1); }

  /// Returns a copy with nodes and entries divided by `factor`
  /// (clamped so at least a few full windows remain).  Used to fit
  /// paper-scale workloads into this environment.
  DatasetSpec scaled(double factor) const;
};

/// The six datasets of paper Table 1.  PeMS is listed there with
/// 11,160 nodes, but the published byte sizes back out to the 11,126
/// sensors quoted in the paper's §3; we use 11,126 (see DESIGN.md §7).
std::vector<DatasetSpec> paper_catalog();

/// Catalog lookup.
DatasetSpec spec_for(DatasetKind kind);

// --- memory models (double precision, matching the paper's float64) ---

/// Bytes of the raw on-disk array: entries * nodes * raw_features * 8.
double raw_bytes(const DatasetSpec& spec, double bytes_per_element = 8.0);

/// Stage-1 bytes (time-of-day feature appended for traffic datasets):
/// entries * nodes * features * 8.
double stage1_bytes(const DatasetSpec& spec, double bytes_per_element = 8.0);

/// Stage-2 bytes (sliding-window snapshots, x only):
/// (entries - (2*horizon - 1)) * horizon * nodes * features * 8.
double stage2_bytes(const DatasetSpec& spec, double bytes_per_element = 8.0);

/// Paper Eq. (1): bytes after full standard preprocessing (x and y):
/// 2 * (entries - (2*horizon - 1)) * horizon * nodes * features * 8.
double standard_preprocessed_bytes(const DatasetSpec& spec,
                                   double bytes_per_element = 8.0);

/// Paper Eq. (2): bytes held by index-batching — one copy of the data
/// plus the index array:
/// entries*nodes*features*8 + (entries - (2*horizon - 1))*8.
double index_batching_bytes(const DatasetSpec& spec, double bytes_per_element = 8.0);

/// Data-growth stages of paper Fig. 3.
struct GrowthStages {
  double raw = 0.0;
  double with_time_feature = 0.0;  ///< stage 1
  double after_swa = 0.0;          ///< stage 2
  double after_xy_split = 0.0;     ///< stage 3 == Eq. (1)
};
GrowthStages growth_stages(const DatasetSpec& spec, double bytes_per_element = 8.0);

}  // namespace pgti::data
