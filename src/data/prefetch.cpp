#include "data/prefetch.h"

#include <algorithm>

namespace pgti::data {

PrefetchLoader::PrefetchLoader(DataLoader& loader, int depth)
    : inner_(&loader),
      slots_(static_cast<std::size_t>(std::max(depth, 1) + 1)),
      slot_full_(slots_.size(), 0) {
  if (loader.prefetch_lookahead() > 0) {
    // The worker outruns deliveries by design, so stage-time
    // announcing would collapse the lookahead window; pace
    // announcements by delivery instead (one per consumed batch).
    loader.set_paced_announcements(true);
    paced_ = true;
  }
  worker_ = std::thread([this] { worker_loop(); });
}

PrefetchLoader::~PrefetchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void PrefetchLoader::deep_copy(const Batch& src, Batch& dst) {
  if (!dst.x.defined() || dst.x.shape() != src.x.shape()) {
    dst.x = Tensor::empty(src.x.shape(), src.x.space());
    dst.y = Tensor::empty(src.y.shape(), src.y.space());
  }
  dst.x.copy_from(src.x);
  dst.y.copy_from(src.y);
  dst.size = src.size;
  dst.indices = src.indices;
  dst.modeled_staging_seconds = src.modeled_staging_seconds;
  dst.staged_at = src.staged_at;
}

void PrefetchLoader::start_epoch(int epoch, std::int64_t max_batches) {
  std::unique_lock<std::mutex> lock(mu_);
  // Abort any in-flight fill (frees the producer if it is waiting on a
  // slot the consumer abandoned) and wait for it to drain.
  abort_ = true;
  std::fill(slot_full_.begin(), slot_full_.end(), 0);
  cv_.notify_all();
  cv_.wait(lock, [this] { return !fill_requested_ || stop_; });
  if (stop_) return;
  abort_ = false;
  std::fill(slot_full_.begin(), slot_full_.end(), 0);
  produce_idx_ = consume_idx_ = 0;
  in_use_idx_ = -1;
  epoch_ = epoch;
  max_batches_ = max_batches;
  produced_ = 0;
  announce_budget_ = inner_->prefetch_lookahead();
  worker_error_ = nullptr;  // a restart is explicit recovery
  epoch_done_ = false;
  fill_requested_ = true;
  cv_.notify_all();
}

bool PrefetchLoader::next(Batch& out) {
  std::unique_lock<std::mutex> lock(mu_);
  // Release the slot handed out by the previous call: only now may the
  // producer overwrite it (the caller is done with those views).
  if (in_use_idx_ >= 0) {
    slot_full_[static_cast<std::size_t>(in_use_idx_)] = 0;
    in_use_idx_ = -1;
    cv_.notify_all();
  }
  cv_.wait(lock, [this] {
    return worker_error_ || slot_full_[static_cast<std::size_t>(consume_idx_)] ||
           (epoch_done_ && !fill_requested_) || stop_;
  });
  if (worker_error_) {
    std::exception_ptr error = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(error);
  }
  if (!slot_full_[static_cast<std::size_t>(consume_idx_)]) return false;
  const Batch& slot = slots_[static_cast<std::size_t>(consume_idx_)];
  out.x = slot.x;
  out.y = slot.y;
  out.size = slot.size;
  out.indices = slot.indices;
  out.modeled_staging_seconds = slot.modeled_staging_seconds;
  out.staged_at = slot.staged_at;
  in_use_idx_ = consume_idx_;  // stays full until the next call
  consume_idx_ = advance(consume_idx_);
  if (paced_) {
    // Delivery k announces batch k+depth (consumer-side, so the
    // announcement lands in batch k's compute window, not the
    // epoch-start burst), THEN raises the worker's staging budget —
    // in that order, so the worker can never stage an unannounced
    // batch.
    lock.unlock();
    inner_->announce_next_batch();
    lock.lock();
    ++announce_budget_;
    cv_.notify_all();
  }
  return true;
}

void PrefetchLoader::worker_loop() {
  // Staging allocations (the inner loader's reusable buffers, the ring
  // slots' deep copies, any per-batch scratch the source needs) happen
  // on this thread; one scope for its lifetime pools them all.  Pool
  // reuse hands back uninitialized memory, which is safe here: every
  // staging buffer is fully overwritten (copy_from / clone) before any
  // consumer reads it.
  runtime::ArenaScope scope(arena_);
  Batch staged;
  for (;;) {
    int epoch;
    std::int64_t cap;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return fill_requested_ || stop_; });
      if (stop_) return;
      if (abort_) {
        // The fill was aborted before it ever started (restart with
        // zero batches consumed).  Acknowledge it here or the
        // restarting consumer waits for a drain that never happens
        // while this thread waits for the abort to clear.
        fill_requested_ = false;
        epoch_done_ = true;
        cv_.notify_all();
        continue;
      }
      // Snapshot epoch_/max_batches_ while still holding mu_:
      // start_epoch writes them under the same lock, and an unlocked
      // read here would race with the next (re)start.
      epoch = epoch_;
      cap = max_batches_;
    }
    try {
      // One capping mechanism: the cap is forwarded to the inner
      // loader, whose next() (and lookahead announcements) stop at the
      // bound.
      inner_->set_max_batches(cap);
      inner_->start_epoch(epoch);
      for (;;) {
        if (paced_) {
          // Budget gate: batch k may stage only once k < depth +
          // deliveries, i.e. once it has been announced.  Always
          // deadlock-free at the tail: after the final delivery the
          // budget exceeds the batch count, so the probe that
          // discovers epoch end is always permitted.
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [this] {
            return produced_ < announce_budget_ || abort_ || stop_;
          });
          if (stop_) return;
          if (abort_) {
            epoch_done_ = true;
            fill_requested_ = false;
            cv_.notify_all();
            break;
          }
          ++produced_;
        }
        const bool have = inner_->next(staged);
        std::unique_lock<std::mutex> lock(mu_);
        if (!have || abort_) {
          epoch_done_ = true;
          fill_requested_ = false;
          cv_.notify_all();
          break;
        }
        cv_.wait(lock, [this] {
          return !slot_full_[static_cast<std::size_t>(produce_idx_)] || abort_ ||
                 stop_;
        });
        if (stop_) return;
        if (abort_) {
          epoch_done_ = true;
          fill_requested_ = false;
          cv_.notify_all();
          break;
        }
        deep_copy(staged, slots_[static_cast<std::size_t>(produce_idx_)]);
        slot_full_[static_cast<std::size_t>(produce_idx_)] = 1;
        produce_idx_ = advance(produce_idx_);
        cv_.notify_all();
      }
    } catch (...) {
      // An inner-loader throw (e.g. a staging failure the source
      // rethrows on its consumer — which is this worker) must reach
      // the real consumer in next(), not escape the thread and
      // terminate the process.
      std::lock_guard<std::mutex> lock(mu_);
      worker_error_ = std::current_exception();
      epoch_done_ = true;
      fill_requested_ = false;
      cv_.notify_all();
    }
  }
}

}  // namespace pgti::data
