// Optimizers and learning-rate scheduling.
//
// Adam is the paper's optimizer ("default PyTorch Adam", §5).  The
// linear LR-scaling rule with warmup (Goyal et al. 2017, You et al.
// 2017) implements the paper's §5.3.3 follow-up: most of the MAE
// degradation at large worker counts comes from the larger global
// batch and is mitigated by scaling the learning rate.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"

namespace pgti::optim {

/// Common optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update from the parameters' current gradients.
  virtual void step() = 0;

  void zero_grad();
  float lr() const noexcept { return lr_; }
  void set_lr(float lr) noexcept { lr_ = lr; }
  const std::vector<Variable>& params() const noexcept { return params_; }

 protected:
  std::vector<Variable> params_;
  float lr_;
};

/// SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Variable> params, const Options& options);
  void step() override;

 private:
  Options opt_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Linear-scaling rule with warmup: lr(w, epoch) ramps from base_lr to
/// base_lr * num_workers over `warmup_epochs`, then holds.
class LinearScalingSchedule {
 public:
  LinearScalingSchedule(float base_lr, int num_workers, int warmup_epochs);
  float lr_for_epoch(int epoch) const;

 private:
  float base_lr_;
  int num_workers_;
  int warmup_epochs_;
};

/// Multiplicative step decay (DCRNN's original schedule: decay by
/// `gamma` every `step_epochs`).
class StepDecaySchedule {
 public:
  StepDecaySchedule(float base_lr, int step_epochs, float gamma);
  float lr_for_epoch(int epoch) const;

 private:
  float base_lr_;
  int step_epochs_;
  float gamma_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, float min_lr, int total_epochs);
  float lr_for_epoch(int epoch) const;

 private:
  float base_lr_;
  float min_lr_;
  int total_epochs_;
};

}  // namespace pgti::optim
