#include "optim/optim.h"

#include <cmath>

#include "runtime/thread_pool.h"

namespace pgti::optim {

Optimizer::Optimizer(std::vector<Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {}

void Optimizer::zero_grad() {
  for (Variable& p : params_) p.zero_grad();
}

Sgd::Sgd(std::vector<Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Variable& p : params_) {
      velocity_.push_back(Tensor::zeros(p.value().shape(), p.value().space()));
    }
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    const std::int64_t n = p.value().numel();
    if (momentum_ == 0.0f) {
      const float lr = lr_;
      parallel_for(0, n, 16384, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) w[j] -= lr * g[j];
      });
    } else {
      float* vel = velocity_[i].data();
      const float lr = lr_;
      const float mom = momentum_;
      parallel_for(0, n, 16384, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) {
          vel[j] = mom * vel[j] + g[j];
          w[j] -= lr * vel[j];
        }
      });
    }
  }
}

Adam::Adam(std::vector<Variable> params, const Options& options)
    : Optimizer(std::move(params), options.lr), opt_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Variable& p : params_) {
    m_.push_back(Tensor::zeros(p.value().shape(), p.value().space()));
    v_.push_back(Tensor::zeros(p.value().shape(), p.value().space()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(opt_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(opt_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Variable& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::int64_t n = p.value().numel();
    const float lr = lr_;
    const float b1 = opt_.beta1, b2 = opt_.beta2, eps = opt_.eps, wd = opt_.weight_decay;
    parallel_for(0, n, 16384, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) {
        const float grad = g[j] + wd * w[j];
        m[j] = b1 * m[j] + (1.0f - b1) * grad;
        v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
        const float mhat = m[j] / bc1;
        const float vhat = v[j] / bc2;
        w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
      }
    });
  }
}

LinearScalingSchedule::LinearScalingSchedule(float base_lr, int num_workers,
                                             int warmup_epochs)
    : base_lr_(base_lr), num_workers_(num_workers), warmup_epochs_(warmup_epochs) {}

float LinearScalingSchedule::lr_for_epoch(int epoch) const {
  const float target = base_lr_ * static_cast<float>(num_workers_);
  if (warmup_epochs_ <= 0 || epoch >= warmup_epochs_) return target;
  const float frac = static_cast<float>(epoch + 1) / static_cast<float>(warmup_epochs_);
  return base_lr_ + (target - base_lr_) * frac;
}

StepDecaySchedule::StepDecaySchedule(float base_lr, int step_epochs, float gamma)
    : base_lr_(base_lr), step_epochs_(step_epochs), gamma_(gamma) {}

float StepDecaySchedule::lr_for_epoch(int epoch) const {
  if (step_epochs_ <= 0) return base_lr_;
  return base_lr_ * std::pow(gamma_, static_cast<float>(epoch / step_epochs_));
}

CosineSchedule::CosineSchedule(float base_lr, float min_lr, int total_epochs)
    : base_lr_(base_lr), min_lr_(min_lr), total_epochs_(total_epochs) {}

float CosineSchedule::lr_for_epoch(int epoch) const {
  if (total_epochs_ <= 1) return min_lr_;
  const float t = std::min(1.0f, static_cast<float>(epoch) /
                                     static_cast<float>(total_epochs_ - 1));
  constexpr float kPi = 3.14159265358979323846f;
  return min_lr_ + 0.5f * (base_lr_ - min_lr_) * (1.0f + std::cos(kPi * t));
}

}  // namespace pgti::optim
