#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/thread_pool.h"

namespace pgti::ops {
namespace {

constexpr std::int64_t kGrain = 16384;  // min elements per parallel chunk

const Tensor& require_contiguous(const Tensor& t, const char* what) {
  if (!t.is_contiguous()) {
    throw std::logic_error(std::string(what) + ": tensor must be contiguous");
  }
  return t;
}

void require_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
}

template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* what, F f) {
  require_same_shape(a, b, what);
  require_contiguous(a, what);
  require_contiguous(b, what);
  Tensor out = Tensor::empty(a.shape(), a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
  });
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& t, const char* what, F f) {
  require_contiguous(t, what);
  Tensor out = Tensor::empty(t.shape(), t.space());
  const float* pt = t.data();
  float* po = out.data();
  parallel_for(0, t.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = f(pt[i]);
  });
  return out;
}

// Rows/cols of a tensor treated as a [M, C] matrix (flatten leading dims).
std::pair<std::int64_t, std::int64_t> as_matrix(const Tensor& t, const char* what) {
  if (t.dim() < 1) throw std::invalid_argument(std::string(what) + ": rank 0");
  const std::int64_t c = t.size(-1);
  return {t.numel() / (c == 0 ? 1 : c), c};
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "div", [](float x, float y) { return x / y; });
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, "add_scalar", [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, "mul_scalar", [s](float x) { return x * s; });
}

void add_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_");
  require_contiguous(a, "add_");
  require_contiguous(b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void sub_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] -= pb[i];
  });
}

void mul_(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] *= pb[i];
  });
}

void scale_(Tensor& a, float s) {
  float* pa = a.data();
  parallel_for(0, a.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] *= s;
  });
}

void axpy_(float alpha, const Tensor& x, Tensor& y) {
  require_same_shape(x, y, "axpy_");
  const float* px = x.data();
  float* py = y.data();
  parallel_for(0, x.numel(), kGrain, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

Tensor sigmoid(const Tensor& t) {
  return unary_op(t, "sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor tanh(const Tensor& t) {
  return unary_op(t, "tanh", [](float x) { return std::tanh(x); });
}
Tensor relu(const Tensor& t) {
  return unary_op(t, "relu", [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor exp(const Tensor& t) {
  return unary_op(t, "exp", [](float x) { return std::exp(x); });
}
Tensor abs(const Tensor& t) {
  return unary_op(t, "abs", [](float x) { return std::fabs(x); });
}
Tensor neg(const Tensor& t) {
  return unary_op(t, "neg", [](float x) { return -x; });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul");
  require_contiguous(b, "matmul");
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(1);
  Tensor out = Tensor::zeros({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, K * N / M + 1)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const float* arow = pa + i * K;
                   float* crow = pc + i * N;
                   for (std::int64_t k = 0; k < K; ++k) {
                     const float aik = arow[k];
                     if (aik == 0.0f) continue;
                     const float* brow = pb + k * N;
                     for (std::int64_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
                   }
                 }
               });
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_tn");
  require_contiguous(b, "matmul_tn");
  if (a.dim() != 2 || b.dim() != 2 || a.size(0) != b.size(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes");
  }
  const std::int64_t K = a.size(0), M = a.size(1), N = b.size(1);
  Tensor out = Tensor::zeros({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // C[m, n] = sum_k A[k, m] * B[k, n].  Parallelizing over m would race
  // nothing, but the k-major layout favours accumulating rank-1 updates;
  // chunk over m and walk k inside to stay race-free.
  parallel_for(0, M, 8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = 0; k < K; ++k) {
      const float* arow = pa + k * M;
      const float* brow = pb + k * N;
      for (std::int64_t m = lo; m < hi; ++m) {
        const float akm = arow[m];
        if (akm == 0.0f) continue;
        float* crow = pc + m * N;
        for (std::int64_t n = 0; n < N; ++n) crow[n] += akm * brow[n];
      }
    }
  });
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_contiguous(a, "matmul_nt");
  require_contiguous(b, "matmul_nt");
  if (a.dim() != 2 || b.dim() != 2 || a.size(1) != b.size(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes");
  }
  const std::int64_t M = a.size(0), K = a.size(1), N = b.size(0);
  Tensor out = Tensor::empty({M, N}, a.space());
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  parallel_for(0, M, 8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * K;
      float* crow = pc + i * N;
      for (std::int64_t j = 0; j < N; ++j) {
        const float* brow = pb + j * K;
        float acc = 0.0f;
        for (std::int64_t k = 0; k < K; ++k) acc += arow[k] * brow[k];
        crow[j] = acc;
      }
    }
  });
  return out;
}

Tensor add_bias(const Tensor& m, const Tensor& bias) {
  require_contiguous(m, "add_bias");
  require_contiguous(bias, "add_bias");
  const auto [rows, cols] = as_matrix(m, "add_bias");
  if (bias.dim() != 1 || bias.size(0) != cols) {
    throw std::invalid_argument("add_bias: bias must be [C]");
  }
  Tensor out = Tensor::empty(m.shape(), m.space());
  const float* pm = m.data();
  const float* pb = bias.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pm + r * cols;
                   float* dst = po + r * cols;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] = src[c] + pb[c];
                 }
               });
  return out;
}

Tensor mul_colvec(const Tensor& m, const Tensor& col) {
  require_contiguous(m, "mul_colvec");
  require_contiguous(col, "mul_colvec");
  const auto [rows, cols] = as_matrix(m, "mul_colvec");
  if (col.numel() != rows) {
    throw std::invalid_argument("mul_colvec: col must have one entry per row");
  }
  Tensor out = Tensor::empty(m.shape(), m.space());
  const float* pm = m.data();
  const float* pc = col.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float s = pc[r];
                   const float* src = pm + r * cols;
                   float* dst = po + r * cols;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] = src[c] * s;
                 }
               });
  return out;
}

double sum(const Tensor& t) {
  require_contiguous(t, "sum");
  const float* p = t.data();
  double acc = 0.0;
  for (std::int64_t i = 0, n = t.numel(); i < n; ++i) acc += p[i];
  return acc;
}

double mean(const Tensor& t) {
  const std::int64_t n = t.numel();
  return n == 0 ? 0.0 : sum(t) / static_cast<double>(n);
}

float max_abs(const Tensor& t) {
  require_contiguous(t, "max_abs");
  const float* p = t.data();
  float m = 0.0f;
  for (std::int64_t i = 0, n = t.numel(); i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

Tensor colsum(const Tensor& m) {
  require_contiguous(m, "colsum");
  const auto [rows, cols] = as_matrix(m, "colsum");
  Tensor out = Tensor::zeros({cols}, m.space());
  const float* pm = m.data();
  float* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = pm + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) po[c] += src[c];
  }
  return out;
}

Tensor rowsum(const Tensor& m) {
  require_contiguous(m, "rowsum");
  const auto [rows, cols] = as_matrix(m, "rowsum");
  Tensor out = Tensor::zeros({rows, 1}, m.space());
  const float* pm = m.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pm + r * cols;
                   float acc = 0.0f;
                   for (std::int64_t c = 0; c < cols; ++c) acc += src[c];
                   po[r] = acc;
                 }
               });
  return out;
}

Tensor concat_lastdim(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_lastdim: no inputs");
  std::int64_t total_c = 0;
  for (const Tensor& p : parts) {
    require_contiguous(p, "concat_lastdim");
    if (p.dim() != parts[0].dim()) {
      throw std::invalid_argument("concat_lastdim: rank mismatch");
    }
    for (int d = 0; d + 1 < p.dim(); ++d) {
      if (p.size(d) != parts[0].size(d)) {
        throw std::invalid_argument("concat_lastdim: leading dim mismatch");
      }
    }
    total_c += p.size(-1);
  }
  Shape out_shape = parts[0].shape();
  out_shape.back() = total_c;
  Tensor out = Tensor::empty(out_shape, parts[0].space());
  const std::int64_t rows = out.numel() / total_c;
  float* po = out.data();
  std::int64_t col_off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t c = p.size(-1);
    const float* pp = p.data();
    parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, c)),
                 [&](std::int64_t lo, std::int64_t hi) {
                   for (std::int64_t r = lo; r < hi; ++r) {
                     std::copy(pp + r * c, pp + (r + 1) * c, po + r * total_c + col_off);
                   }
                 });
    col_off += c;
  }
  return out;
}

Tensor softmax_lastdim(const Tensor& t) {
  require_contiguous(t, "softmax_lastdim");
  const auto [rows, cols] = as_matrix(t, "softmax_lastdim");
  Tensor out = Tensor::empty(t.shape(), t.space());
  const float* pt = t.data();
  float* po = out.data();
  parallel_for(0, rows, std::max<std::int64_t>(1, kGrain / std::max<std::int64_t>(1, cols)),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t r = lo; r < hi; ++r) {
                   const float* src = pt + r * cols;
                   float* dst = po + r * cols;
                   float mx = src[0];
                   for (std::int64_t c = 1; c < cols; ++c) mx = std::max(mx, src[c]);
                   float z = 0.0f;
                   for (std::int64_t c = 0; c < cols; ++c) {
                     dst[c] = std::exp(src[c] - mx);
                     z += dst[c];
                   }
                   const float inv = 1.0f / z;
                   for (std::int64_t c = 0; c < cols; ++c) dst[c] *= inv;
                 }
               });
  return out;
}

double mae(const Tensor& pred, const Tensor& target) {
  require_same_shape(pred, target, "mae");
  const float* pp = pred.data();
  const float* pt = target.data();
  double acc = 0.0;
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += std::fabs(static_cast<double>(pp[i]) - pt[i]);
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double mse(const Tensor& pred, const Tensor& target) {
  require_same_shape(pred, target, "mse");
  const float* pp = pred.data();
  const float* pt = target.data();
  double acc = 0.0;
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    acc += d * d;
  }
  return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "max_abs_diff");
  const Tensor ca = a.contiguous();
  const Tensor cb = b.contiguous();
  const float* pa = ca.data();
  const float* pb = cb.data();
  float m = 0.0f;
  for (std::int64_t i = 0, n = ca.numel(); i < n; ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace pgti::ops
